package webfountain

// Backend is the document-platform surface every deployment shape
// provides: the single-process Platform and the replicated
// DistributedPlatform both implement it, so applications, examples and
// the conformance tests are written once and run against either. The
// miner runtime and analytics pipelines remain Platform-specific (they
// iterate a local store); in a distributed deployment each storage node
// runs its own miners and the router merges the indexed results.
type Backend interface {
	// Ingest stores documents and indexes their tokens, assigning IDs to
	// documents that have none; the IDs come back in input order.
	Ingest(docs []Document) ([]string, error)
	// Entity returns a stored document by ID.
	Entity(id string) (Document, bool)
	// Delete removes a document and its postings; unknown IDs are a
	// no-op.
	Delete(id string) error
	// NumEntities is the number of distinct stored documents.
	NumEntities() int
	// SearchAll returns IDs of documents containing every term.
	SearchAll(terms ...string) []string
	// SearchPhrase returns IDs of documents containing the words
	// consecutively.
	SearchPhrase(words ...string) []string
	// Degraded reports whether the deployment has lost capacity (a
	// degraded store, a suspected node) and why.
	Degraded() (bool, string)
	// Close releases the deployment.
	Close() error
}

// Both deployment shapes satisfy the contract.
var (
	_ Backend = (*Platform)(nil)
	_ Backend = (*DistributedPlatform)(nil)
)
