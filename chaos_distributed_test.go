package webfountain

// The distributed chaos harness: seeded faults.ClusterPlans drive node
// kills, network partitions and kills-during-handoff against a
// replicated DistributedPlatform while an acked write stream and read
// sweeps run on top. Each archetype asserts the distributed
// resilience invariants:
//
//  1. no acknowledged write is lost across kill + rebalance — after
//     convergence every acked document reads back byte-identical and
//     sits on exactly its ring-assigned replica set;
//  2. reads are served throughout a failure — the first read after a
//     kill succeeds from a live replica, and one probe interval later
//     the victim is suspected and (on a clean network) receives zero
//     further read attempts;
//  3. acked deletes never resurrect — a document deleted while its
//     replica was down stays deleted after that replica rejoins;
//  4. convergence is byte-deterministic per seed — two runs of one
//     plan end on identical ring epochs, ring digests and per-node
//     placements, because aborted handoffs never bump the epoch.
//
// The plan is a pure function of (seed, archetype, node set) and the
// harness sequences every event itself, so the only wall-clock in a
// run is the victim's downtime window. When CHAOS_INVARIANT_LOG names
// a file, every invariant checkpoint is appended to it — CI uploads
// that file as the run's artifact.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"webfountain/internal/faults"
	"webfountain/internal/vinci"
)

// tripwireDisarmed parks a tripwire counter far below zero so the
// fire-on-exactly-minus-one check can never trigger spuriously.
const tripwireDisarmed = -1 << 30

// tripwireClient kills a node's gate after a set number of further
// calls reach it — the deterministic way to crash a node in the middle
// of a shard handoff, since catch-up's call sequence against a given
// cluster state is itself deterministic.
type tripwireClient struct {
	gate  *faults.Gate
	armed *atomic.Int64
	c     vinci.Client
}

func (tc *tripwireClient) Call(req vinci.Request) (vinci.Response, error) {
	if tc.armed.Load() >= 0 && tc.armed.Add(-1) == -1 {
		tc.gate.Kill()
	}
	return tc.c.Call(req)
}

func (tc *tripwireClient) Close() error { return tc.c.Close() }

// distChaos owns one replicated deployment plus the fault surfaces the
// harness drives: a gate per node (kill/partition) and one injector
// for the plan's background network weather.
type distChaos struct {
	dp    *DistributedPlatform
	in    *faults.Injector
	gates map[string]*faults.Gate
	trips map[string]*atomic.Int64

	acked   map[string]string // id -> text, every acknowledged write
	order   []string          // acked ids in write order
	deleted map[string]bool   // acked deletes
}

// newDistChaos builds the availability-mode (W=1) harness the three
// original archetypes run on: they keep writing while an owner is down
// and drive replication to completion themselves (see write). The W=2
// guarantees have their own archetypes in chaos_quorum_test.go, built
// through newDistChaosQuorum.
func newDistChaos(t *testing.T, plan faults.ClusterPlan) *distChaos {
	t.Helper()
	return newDistChaosQuorum(t, plan, 1, 1)
}

// newDistChaosQuorum builds the harness at an explicit consistency
// level (W write quorum, R read quorum).
func newDistChaosQuorum(t *testing.T, plan faults.ClusterPlan, w, r int) *distChaos {
	t.Helper()
	netCfg := plan.Net
	netCfg.Seed = plan.Seed
	dc := &distChaos{
		in:      faults.New(netCfg),
		gates:   map[string]*faults.Gate{},
		trips:   map[string]*atomic.Int64{},
		acked:   map[string]string{},
		deleted: map[string]bool{},
	}
	dp, err := NewDistributedPlatform(DistributedConfig{
		Nodes:       3,
		Replicas:    2,
		Seed:        plan.Seed,
		WriteQuorum: w,
		ReadQuorum:  r,
		WrapNodeClient: func(name string, c vinci.Client) vinci.Client {
			g := faults.NewGate(name)
			armed := &atomic.Int64{}
			armed.Store(tripwireDisarmed)
			dc.gates[name] = g
			dc.trips[name] = armed
			return &tripwireClient{gate: g, armed: armed, c: g.Client(dc.in.Client(c))}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dc.dp = dp
	return dc
}

// write drives one document onto every live owner before counting it
// acked. The router acknowledges on the first replica (availability
// under a dead node), but this harness asserts the stronger guarantee
// — so, like a real client that needs it, it retries the idempotent
// ingest until each reachable member of the replica set holds the
// document. That discipline also keeps the holder-set invariant exact:
// catch-up conservatively keeps (and re-replicates) sole copies with
// no tombstone evidence, so a half-replicated write would still
// converge — but to a holder set the placement check could not predict.
func (dc *distChaos) write(t *testing.T, id, text string) {
	t.Helper()
	doc := Document{ID: id, Source: "chaos", Text: text}
	for attempt := 0; attempt < 200; attempt++ {
		// Quorum writes ack before their stragglers land; on a single-P
		// runtime a tight poll would starve those background goroutines
		// forever, so every retry yields first.
		runtime.Gosched()
		if _, err := dc.dp.Ingest([]Document{doc}); err != nil {
			continue
		}
		ring := dc.dp.Router().Ring()
		full := true
		for _, n := range dc.dp.NodeNames() {
			if ring.Owns(n, id) && !dc.gates[n].Down() && !dc.dp.NodeHas(n, id) {
				full = false
				break
			}
		}
		if full {
			if _, seen := dc.acked[id]; !seen {
				dc.order = append(dc.order, id)
			}
			dc.acked[id] = text
			return
		}
	}
	t.Fatalf("write %s: not on every live replica in 200 attempts", id)
}

// read fetches one acked document back through the router.
func (dc *distChaos) read(t *testing.T, id string) Document {
	t.Helper()
	for attempt := 0; attempt < 200; attempt++ {
		runtime.Gosched()
		if d, ok := dc.dp.Entity(id); ok {
			return d
		}
	}
	t.Fatalf("read %s: no success in 200 attempts", id)
	return Document{}
}

// delete drives one delete to full application on every live node.
// Ack-on-one is not enough here: under network weather a replica can
// drop the delete while staying up, and no catch-up can later tell its
// stale copy from a legitimate write — so the harness (like a real
// client that needs the stronger guarantee) retries the idempotent
// delete until no reachable node holds the document. Stale copies then
// exist only on down nodes, which is exactly the case tombstone
// reconciliation covers.
func (dc *distChaos) delete(t *testing.T, id string) {
	t.Helper()
	for attempt := 0; attempt < 200; attempt++ {
		runtime.Gosched()
		if err := dc.dp.Delete(id); err != nil {
			continue
		}
		clean := true
		for _, n := range dc.dp.NodeNames() {
			if !dc.gates[n].Down() && dc.dp.NodeHas(n, id) {
				clean = false
				break
			}
		}
		if clean {
			dc.deleted[id] = true
			return
		}
	}
	t.Fatalf("delete %s: not fully applied in 200 attempts", id)
}

// live returns the acked-and-not-deleted ids in sorted order.
func (dc *distChaos) live() []string {
	ids := make([]string, 0, len(dc.acked))
	for id := range dc.acked {
		if !dc.deleted[id] {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// ownedBy returns sorted acked ids whose replica set contains node.
func (dc *distChaos) ownedBy(node string) []string {
	ring := dc.dp.Router().Ring()
	var ids []string
	for _, id := range dc.live() {
		if ring.Owns(node, id) {
			ids = append(ids, id)
		}
	}
	return ids
}

// checkConverged asserts the steady-state invariants: every acked
// write readable with identical text and placed on exactly its replica
// set, every acked delete gone everywhere, and the cluster-wide count
// consistent.
func (dc *distChaos) checkConverged(t *testing.T, tag string) {
	t.Helper()
	dc.dp.Router().Quiesce()
	ring := dc.dp.Router().Ring()
	names := dc.dp.NodeNames()
	for id, text := range dc.acked {
		if dc.deleted[id] {
			if _, ok := dc.dp.Entity(id); ok {
				t.Fatalf("%s: deleted %s resurrected", tag, id)
			}
			for _, n := range names {
				if dc.dp.NodeHas(n, id) {
					t.Fatalf("%s: deleted %s still on %s", tag, id, n)
				}
			}
			continue
		}
		d := dc.read(t, id)
		if d.Text != text {
			t.Fatalf("%s: acked %s read back different text", tag, id)
		}
		for _, n := range names {
			has, owns := dc.dp.NodeHas(n, id), ring.Owns(n, id)
			if has != owns {
				t.Fatalf("%s: %s on %s: held=%v owned=%v", tag, id, n, has, owns)
			}
		}
	}
	want := len(dc.live())
	got := -1
	for attempt := 0; attempt < 200; attempt++ {
		runtime.Gosched()
		if got = dc.dp.NumEntities(); got == want {
			return
		}
	}
	t.Fatalf("%s: NumEntities = %d, want %d", tag, got, want)
}

// digest fingerprints the converged cluster: ring epoch + digest and
// every acked id's fate and holder set. Two runs of one plan must
// produce identical bytes.
func (dc *distChaos) digest() (string, uint64) {
	dc.dp.Router().Quiesce() // holder sets must be final before fingerprinting
	ring := dc.dp.Router().Ring()
	h := sha256.New()
	fmt.Fprintf(h, "epoch=%d ring=%s\n", ring.Epoch(), ring.Digest())
	ids := make([]string, 0, len(dc.acked))
	for id := range dc.acked {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		var holders []string
		for _, n := range dc.dp.NodeNames() {
			if dc.dp.NodeHas(n, id) {
				holders = append(holders, n)
			}
		}
		fmt.Fprintf(h, "%s del=%v holders=%s\n", id, dc.deleted[id], strings.Join(holders, ","))
	}
	return hex.EncodeToString(h.Sum(nil)), ring.Epoch()
}

// rejoinUntilConverged retries the victim's rejoin until the catch-up
// completes, asserting that every aborted attempt leaves the ring
// epoch untouched and the one success bumps it exactly once.
func (dc *distChaos) rejoinUntilConverged(t *testing.T, victim string) {
	t.Helper()
	r := dc.dp.Router()
	before := r.Ring().Epoch()
	for attempt := 0; attempt < 100; attempt++ {
		err := r.Rejoin(victim)
		if err == nil {
			if got := r.Ring().Epoch(); got != before+1 {
				t.Fatalf("rejoin %s: epoch %d -> %d, want exactly +1", victim, before, got)
			}
			return
		}
		if got := r.Ring().Epoch(); got != before {
			t.Fatalf("aborted rejoin moved the epoch: %d -> %d (%v)", before, got, err)
		}
	}
	t.Fatalf("rejoin %s: no convergence in 100 attempts", victim)
}

// chaosInvariantLog returns a logger that mirrors checkpoints to the
// CHAOS_INVARIANT_LOG file when CI sets it.
func chaosInvariantLog(t *testing.T) func(format string, args ...any) {
	t.Helper()
	var f *os.File
	if path := os.Getenv("CHAOS_INVARIANT_LOG"); path != "" {
		var err error
		f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatalf("open invariant log: %v", err)
		}
		t.Cleanup(func() { f.Close() })
	}
	return func(format string, args ...any) {
		t.Logf(format, args...)
		if f != nil {
			fmt.Fprintf(f, format+"\n", args...)
		}
	}
}

// failAndObserve downs the victim and asserts invariant 2: a read of a
// victim-owned document succeeds immediately (failover via hedge/scan,
// before any probe has run), one probe suffices to suspect the victim,
// and on a clean network the post-suspicion read sweep sends the dead
// node zero requests.
func (dc *distChaos) failAndObserve(t *testing.T, plan faults.ClusterPlan, logf func(string, ...any), round int) {
	t.Helper()
	// Let every straggler finish (and report its success) before the
	// fault, or late evidence from a pre-fault call could reset the
	// victim's failure count after the probe observed it down.
	dc.dp.Router().Quiesce()
	gate := dc.gates[plan.Victim]
	if plan.Archetype == faults.ArchetypePartition {
		gate.Partition()
	} else {
		gate.Kill()
	}
	owned := dc.ownedBy(plan.Victim)
	if len(owned) == 0 {
		t.Fatalf("round %d: victim %s owns no acked documents", round, plan.Victim)
	}
	dc.read(t, owned[0]) // served before any probe ran
	dc.dp.Router().ProbeOnce()
	if !dc.dp.Router().Detector().Suspect(plan.Victim) {
		t.Fatalf("round %d: %s not suspected after one probe interval", round, plan.Victim)
	}
	cleanNet := plan.Net == (faults.Config{})
	gate.ResetCounts()
	for _, id := range dc.live() {
		dc.read(t, id)
	}
	_, refused := gate.Counts()
	if cleanNet && refused != 0 {
		t.Fatalf("round %d: %d reads routed at %s after suspicion", round, refused, plan.Victim)
	}
	logf("seed=%d archetype=%s round=%d: failover ok, suspected after 1 probe, refused-after-suspect=%d",
		plan.Seed, plan.Archetype, round, refused)
}

// runClusterChaos executes one plan end to end and returns the
// converged cluster fingerprint.
func runClusterChaos(t *testing.T, plan faults.ClusterPlan, logf func(string, ...any)) (string, uint64) {
	t.Helper()
	dc := newDistChaos(t, plan)
	defer dc.dp.Close()
	logf("%s", plan)

	for i := 0; i < plan.WarmWrites; i++ {
		id := fmt.Sprintf("wf-%03d", i)
		dc.write(t, id, fmt.Sprintf("warm body of %s", id))
	}

	gate := dc.gates[plan.Victim]
	for round := 0; round < plan.Rounds; round++ {
		dc.failAndObserve(t, plan, logf, round)

		// The cluster must keep accepting writes and deletes with a
		// replica down; the victim misses all of them and owes them to
		// the catch-up.
		for i := 0; i < 10; i++ {
			id := fmt.Sprintf("wf-down-r%d-%02d", round, i)
			dc.write(t, id, fmt.Sprintf("written during round %d downtime: %s", round, id))
		}
		if owned := dc.ownedBy(plan.Victim); len(owned) >= 2 {
			dc.delete(t, owned[0])
			dc.delete(t, owned[1])
		}

		time.Sleep(plan.Downtime)
		if plan.Archetype == faults.ArchetypePartition {
			gate.Heal()
		} else {
			gate.Revive()
		}
		dc.rejoinUntilConverged(t, plan.Victim)
		dc.checkConverged(t, fmt.Sprintf("seed %d round %d", plan.Seed, round))
		logf("seed=%d archetype=%s round=%d: converged, epoch=%d, acked=%d, deleted=%d",
			plan.Seed, plan.Archetype, round, dc.dp.Router().Ring().Epoch(), len(dc.acked), len(dc.deleted))
	}

	digest, epoch := dc.digest()
	logf("seed=%d archetype=%s: final epoch=%d digest=%s injected=%v",
		plan.Seed, plan.Archetype, epoch, digest[:16], dc.in.Stats())
	return digest, epoch
}

// runHandoffChaos executes the kill-during-handoff plan: the victim
// crashes partway through its own catch-up (a tripwire fires on the
// second post-arm call to reach it), the handoff must abort with the
// epoch untouched, and the retried handoff after revival converges.
func runHandoffChaos(t *testing.T, plan faults.ClusterPlan, logf func(string, ...any)) (string, uint64) {
	t.Helper()
	dc := newDistChaos(t, plan)
	defer dc.dp.Close()
	logf("%s", plan)

	for i := 0; i < plan.WarmWrites; i++ {
		id := fmt.Sprintf("wf-%03d", i)
		dc.write(t, id, fmt.Sprintf("warm body of %s", id))
	}
	gate := dc.gates[plan.Victim]
	gate.Kill()
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("wf-delta-%02d", i)
		dc.write(t, id, fmt.Sprintf("missed while down: %s", id))
	}
	time.Sleep(plan.Downtime)
	gate.Revive()

	// The victim must actually owe the handoff something, or the
	// tripwire has no transfer to interrupt.
	owes := 0
	for _, id := range dc.ownedBy(plan.Victim) {
		if !dc.dp.NodeHas(plan.Victim, id) {
			owes++
		}
	}
	if owes == 0 {
		t.Fatalf("victim %s missed no owned writes; plan cannot exercise the handoff", plan.Victim)
	}
	logf("seed=%d archetype=%s: victim=%s owes %d entities, arming mid-handoff kill",
		plan.Seed, plan.Archetype, plan.Victim, owes)

	// Allow one more call through (the catch-up census), then crash the
	// victim — the shipment lands on a dead node and must abort. Quiesce
	// first so a queued straggler cannot burn the tripwire budget.
	dc.dp.Router().Quiesce()
	dc.trips[plan.Victim].Store(1)
	r := dc.dp.Router()
	before := r.Ring().Epoch()
	beforeDigest := r.Ring().Digest()
	sawMidHandoffKill := false
	for attempt := 0; attempt < 100; attempt++ {
		err := r.Rejoin(plan.Victim)
		if err == nil {
			break
		}
		if got := r.Ring().Epoch(); got != before {
			t.Fatalf("aborted handoff moved the epoch: %d -> %d (%v)", before, got, err)
		}
		if got := r.Ring().Digest(); got != beforeDigest {
			t.Fatalf("aborted handoff moved the ring digest (%v)", err)
		}
		if gate.Down() {
			sawMidHandoffKill = true
			gate.Revive()
		}
		if attempt == 99 {
			t.Fatalf("handoff never converged after mid-handoff kill (last: %v)", err)
		}
	}
	if !sawMidHandoffKill {
		t.Fatal("tripwire never fired: the handoff was not interrupted")
	}
	if got := r.Ring().Epoch(); got != before+1 {
		t.Fatalf("converged epoch %d, want %d (+1 regardless of aborted attempts)", got, before+1)
	}
	dc.checkConverged(t, fmt.Sprintf("seed %d handoff", plan.Seed))

	digest, epoch := dc.digest()
	logf("seed=%d archetype=%s: final epoch=%d digest=%s injected=%v",
		plan.Seed, plan.Archetype, epoch, digest[:16], dc.in.Stats())
	return digest, epoch
}

// runDistArchetype replays an archetype's plan twice per pinned seed
// and asserts the two runs converge to identical fingerprints.
func runDistArchetype(t *testing.T, archetype string,
	run func(*testing.T, faults.ClusterPlan, func(string, ...any)) (string, uint64)) {
	t.Helper()
	logf := chaosInvariantLog(t)
	nodes := []string{"node-1", "node-2", "node-3"}
	for _, seed := range chaosSeeds {
		plan := faults.NewClusterPlan(seed, archetype, nodes)
		d1, e1 := run(t, plan, logf)
		d2, e2 := run(t, plan, logf)
		if d1 != d2 || e1 != e2 {
			t.Errorf("seed %d %s: two runs diverged:\n  epoch=%d digest=%s\n  epoch=%d digest=%s",
				seed, archetype, e1, d1, e2, d2)
		}
	}
}

// TestChaosDistributedNodeKill: crash a replica (possibly repeatedly),
// keep writing, and prove rejoin ships every missed write and tombstone
// without losing an acked one.
func TestChaosDistributedNodeKill(t *testing.T) {
	runDistArchetype(t, faults.ArchetypeNodeKill, runClusterChaos)
}

// TestChaosDistributedPartition: cut a replica off the network; the
// heal-and-catch-up path must behave exactly like crash recovery.
func TestChaosDistributedPartition(t *testing.T) {
	runDistArchetype(t, faults.ArchetypePartition, runClusterChaos)
}

// TestChaosDistributedKillDuringHandoff: crash the victim in the
// middle of its own catch-up; the handoff aborts without an epoch bump
// and the retry converges to the same ring as an undisturbed rejoin.
func TestChaosDistributedKillDuringHandoff(t *testing.T) {
	runDistArchetype(t, faults.ArchetypeKillDuringHandoff, runHandoffChaos)
}
