package webfountain

import (
	"webfountain/internal/feature"
)

// FeatureTerm is a discovered topic-feature term with its likelihood-ratio
// score.
type FeatureTerm struct {
	// Term is the feature term (lower-cased).
	Term string
	// Score is Dunning's -2 log lambda statistic.
	Score float64
	// DocsOnTopic and DocsOffTopic are document frequencies in the two
	// collections.
	DocsOnTopic, DocsOffTopic int
}

// FeatureConfig tunes feature extraction.
type FeatureConfig struct {
	// Confidence is the chi-square acceptance level: one of 0.90, 0.95,
	// 0.99 or 0.999 (default 0.999, the paper's strict setting).
	Confidence float64
	// AllBaseNounPhrases switches from the paper's bBNP heuristic
	// (definite base noun phrases at sentence starts) to every base noun
	// phrase — the noisiest ablation baseline.
	AllBaseNounPhrases bool
	// DefiniteAnywhere selects the intermediate dBNP heuristic: definite
	// base noun phrases anywhere in the sentence. Ignored when
	// AllBaseNounPhrases is set.
	DefiniteAnywhere bool
}

// ExtractFeatures runs the paper's bBNP-L pipeline: candidate feature
// terms are definite base noun phrases at the beginning of sentences
// followed by a verb phrase, selected by Dunning's likelihood-ratio test
// against an off-topic collection. onTopic is D+ (documents about the
// topic), offTopic is D-.
func ExtractFeatures(onTopic, offTopic []string, cfg FeatureConfig) []FeatureTerm {
	h := feature.BBNP
	switch {
	case cfg.AllBaseNounPhrases:
		h = feature.AllBNP
	case cfg.DefiniteAnywhere:
		h = feature.DBNP
	}
	scored := feature.ExtractAndSelect(feature.NewExtractor(h), onTopic, offTopic, cfg.Confidence)
	out := make([]FeatureTerm, 0, len(scored))
	for _, st := range scored {
		out = append(out, FeatureTerm{
			Term:         st.Term,
			Score:        st.Score,
			DocsOnTopic:  st.DocsOn,
			DocsOffTopic: st.DocsOff,
		})
	}
	return out
}
