package webfountain

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"webfountain/internal/corpus"
)

// ingestBatch converts a generated corpus into an ingest batch.
func ingestBatch(seed int64, n int) []Document {
	generated := corpus.DigitalCameraReviews(seed, n)
	batch := make([]Document, len(generated))
	for i := range generated {
		batch[i] = Document{
			Source: "review",
			Title:  generated[i].Title,
			Date:   generated[i].Date,
			Text:   generated[i].Text(),
		}
	}
	return batch
}

// TestParallelIngestDeterministic: a batch ingested by the worker pool
// must be indistinguishable from the same batch ingested serially —
// identical generated IDs in input order, and byte-identical answers to
// term and phrase queries.
func TestParallelIngestDeterministic(t *testing.T) {
	batch := ingestBatch(3, 120)

	serial := NewPlatform(PlatformConfig{IngestWorkers: 1})
	serialIDs, err := serial.Ingest(append([]Document(nil), batch...))
	if err != nil {
		t.Fatal(err)
	}

	parallel := NewPlatform(PlatformConfig{IngestWorkers: 8})
	parallelIDs, err := parallel.Ingest(append([]Document(nil), batch...))
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serialIDs, parallelIDs) {
		t.Fatalf("generated IDs diverge:\nserial   %v\nparallel %v", serialIDs, parallelIDs)
	}
	if s, p := serial.NumEntities(), parallel.NumEntities(); s != p {
		t.Fatalf("entity counts diverge: serial %d, parallel %d", s, p)
	}
	queries := [][]string{
		{"camera"}, {"battery"}, {"battery", "life"}, {"excellent", "pictures"},
	}
	for _, q := range queries {
		s, p := serial.SearchAll(q...), parallel.SearchAll(q...)
		if !reflect.DeepEqual(s, p) {
			t.Errorf("SearchAll(%v) diverges:\nserial   %v\nparallel %v", q, s, p)
		}
	}
	phrases := [][]string{{"battery", "life"}, {"the", "camera"}}
	for _, ph := range phrases {
		s, p := serial.SearchPhrase(ph...), parallel.SearchPhrase(ph...)
		if !reflect.DeepEqual(s, p) {
			t.Errorf("SearchPhrase(%v) diverges:\nserial   %v\nparallel %v", ph, s, p)
		}
	}
}

// TestParallelIngestFirstErrorPrefix: when every put fails (a closed
// durable platform), the pool must report the earliest failing document
// and return only the IDs ingested before it — here, none.
func TestParallelIngestFirstErrorPrefix(t *testing.T) {
	p, err := OpenPlatform(PlatformConfig{DataDir: t.TempDir(), IngestWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	ids, err := p.Ingest(ingestBatch(5, 64))
	if err == nil {
		t.Fatal("ingest into a closed platform succeeded")
	}
	// Document 0's put must fail, so the successful prefix is empty —
	// regardless of which workers claimed later documents first.
	if len(ids) != 0 {
		t.Fatalf("got %d ids before the first error, want 0: %v", len(ids), ids)
	}
}

// TestParallelIngestSerialFallbacks: worker counts are clamped to the
// batch size, so tiny batches and explicit serial configs share the
// same path and contract.
func TestParallelIngestSerialFallbacks(t *testing.T) {
	for _, workers := range []int{0, 1, 16} {
		p := NewPlatform(PlatformConfig{IngestWorkers: workers})
		ids, err := p.Ingest(ingestBatch(1, 3))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(ids) != 3 || p.NumEntities() != 3 {
			t.Fatalf("workers=%d: ids=%v entities=%d", workers, ids, p.NumEntities())
		}
	}
}

// TestConcurrentIngestSearchDelete is the -race stress test at platform
// level: batches ingest while other goroutines search and delete.
func TestConcurrentIngestSearchDelete(t *testing.T) {
	p := NewPlatform(PlatformConfig{IngestWorkers: 4})
	const batches = 6

	var wg sync.WaitGroup
	idCh := make(chan string, 256)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(idCh)
		for b := 0; b < batches; b++ {
			ids, err := p.Ingest(ingestBatch(int64(b+10), 20))
			if err != nil {
				t.Errorf("batch %d: %v", b, err)
				return
			}
			for _, id := range ids {
				idCh <- id
			}
		}
	}()

	// Deleter: removes every fourth ingested document as IDs stream in.
	deleted := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for id := range idCh {
			if i%4 == 0 {
				if err := p.Delete(id); err != nil {
					t.Errorf("delete %s: %v", id, err)
					return
				}
				deleted++
			}
			i++
		}
	}()

	// Searchers: run all query shapes against the moving index.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				p.SearchAll("camera", "battery")
				p.SearchPhrase("battery", "life")
				p.NumEntities()
			}
		}()
	}
	wg.Wait()

	if want := batches*20 - deleted; p.NumEntities() != want {
		t.Fatalf("entities = %d, want %d (deleted %d)", p.NumEntities(), want, deleted)
	}
}

// TestParseGeneratedID pins the manual parse against the formats the
// platform actually generates, plus the near-misses Sscanf used to
// accept.
func TestParseGeneratedID(t *testing.T) {
	cases := []struct {
		id   string
		n    int64
		want bool
	}{
		{"doc-000001", 1, true},
		{"doc-000120", 120, true},
		{"doc-9", 9, true},
		{fmt.Sprintf("doc-%06d", 987654), 987654, true},
		{"doc-", 0, false},
		{"doc", 0, false},
		{"doc-12x", 0, false},  // trailing junk: not a generated ID
		{"doc-1 2", 0, false},  // embedded space
		{"review-12", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		n, ok := parseGeneratedID(c.id)
		if ok != c.want || (ok && n != c.n) {
			t.Errorf("parseGeneratedID(%q) = (%d, %v), want (%d, %v)", c.id, n, ok, c.n, c.want)
		}
	}
}

// TestReindexAdvancesIDGeneratorPastRecovered: after recovery, freshly
// generated IDs must not collide with recovered generated IDs even when
// the recovered maximum was written by a parallel ingest.
func TestReindexAdvancesIDGeneratorPastRecovered(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPlatform(PlatformConfig{DataDir: dir, IngestWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	firstIDs, err := p.Ingest(ingestBatch(2, 30))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := OpenPlatform(PlatformConfig{DataDir: dir, IngestWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	moreIDs, err := rec.Ingest(ingestBatch(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(firstIDs))
	for _, id := range firstIDs {
		seen[id] = true
	}
	for _, id := range moreIDs {
		if seen[id] {
			t.Fatalf("recovered platform reissued ID %s", id)
		}
	}
	if got := rec.NumEntities(); got != 40 {
		t.Fatalf("entities after recovery+ingest = %d, want 40", got)
	}
	// The recovered index must answer queries over both generations.
	if len(rec.SearchAll("camera")) == 0 {
		t.Fatal("recovered index answers nothing")
	}
}
