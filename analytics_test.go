package webfountain

import (
	"fmt"
	"testing"
)

func analyticsPlatform(t *testing.T) *Platform {
	t.Helper()
	p := NewPlatform(PlatformConfig{Shards: 4})
	var docs []Document
	// A hub page everyone links to, camera pages, oil pages, and one
	// near-duplicate pair.
	docs = append(docs, Document{ID: "hub", URL: "http://site.example/hub", Date: "2004-01-05",
		Text: "The portal lists camera reviews and oil coverage from Texas and Japan."})
	camBodies := []string{
		"Camera review one: the lens focused instantly while the zoom hunted in dim light across California.",
		"Our second camera test measured battery stamina and flash recycling through a long California weekend.",
		"Field notes: the viewfinder and the menu of this camera felt dated, though the zoom impressed testers.",
		"Lab charts compare sensor noise, lens sharpness, and battery curves for the camera lineup this spring.",
	}
	for i, body := range camBodies {
		docs = append(docs, Document{
			ID: fmt.Sprintf("cam%d", i), URL: "http://site.example/cam", Date: fmt.Sprintf("2004-%02d-10", 2+i),
			Links: []string{"hub"},
			Text:  body,
		})
	}
	oilBodies := []string{
		"Crude output from Saudi Arabia climbed as pipeline capacity expanded near the coast.",
		"Refinery margins in Kuwait narrowed while tanker schedules slipped a week.",
		"An exploration consortium mapped new oil fields under deep water leases.",
		"Pipeline maintenance idled two pumping stations and trimmed weekly crude flows.",
	}
	for i, body := range oilBodies {
		docs = append(docs, Document{
			ID: fmt.Sprintf("oil%d", i), URL: "http://site.example/oil", Date: fmt.Sprintf("2004-%02d-12", 6+i),
			Links: []string{"hub"},
			Text:  body,
		})
	}
	dupText := "This exact boilerplate press release repeats verbatim across the wire services without any change at all whatsoever today."
	docs = append(docs,
		Document{ID: "dupA", URL: "http://wire.example/a", Date: "2004-03-01", Text: dupText},
		Document{ID: "dupB", URL: "http://wire.example/b", Date: "2004-03-02", Text: dupText},
	)
	if _, err := p.Ingest(docs); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunAnalyticsReport(t *testing.T) {
	p := analyticsPlatform(t)
	rep, err := p.RunAnalytics(AnalyticsConfig{TopTerms: 5, Clusters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Documents != 11 || rep.Stats.Vocabulary == 0 || rep.Stats.AvgDocTokens <= 0 {
		t.Errorf("stats = %+v", rep.Stats)
	}
	if len(rep.Stats.TopTerms) != 5 {
		t.Errorf("top terms = %+v", rep.Stats.TopTerms)
	}
	// The duplicate press release pair is found.
	if len(rep.DuplicateClusters) != 1 || len(rep.DuplicateClusters[0]) != 2 {
		t.Errorf("duplicates = %v", rep.DuplicateClusters)
	}
	// The hub is the top-ranked page.
	if len(rep.TopRanked) == 0 || rep.TopRanked[0].ID != "hub" {
		t.Errorf("top ranked = %+v", rep.TopRanked)
	}
	// Geographic regions detected.
	if rep.Regions["north-america"] == 0 {
		t.Errorf("regions = %v", rep.Regions)
	}
	// Two clusters with sizes summing to the corpus.
	total := 0
	for _, c := range rep.Clusters {
		total += c.Size
	}
	if len(rep.Clusters) != 2 || total != 11 {
		t.Errorf("clusters = %+v", rep.Clusters)
	}
}

func TestSentimentTrend(t *testing.T) {
	p := NewPlatform(PlatformConfig{Shards: 2})
	var docs []Document
	// Early months negative, late months positive.
	for i := 0; i < 3; i++ {
		docs = append(docs, Document{
			ID: fmt.Sprintf("early%d", i), Date: fmt.Sprintf("2004-0%d-10", i+1),
			Text: "The Aurora sounded bland. The Aurora disappointed critics.",
		})
	}
	for i := 0; i < 3; i++ {
		docs = append(docs, Document{
			ID: fmt.Sprintf("late%d", i), Date: fmt.Sprintf("2004-1%d-10", i%2),
			Text: "The Aurora is gorgeous. Critics praised Aurora.",
		})
	}
	if _, err := p.Ingest(docs); err != nil {
		t.Fatal(err)
	}
	m, err := NewSentimentMiner(MinerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	series, momentum, ok := p.SentimentTrend("Aurora")
	if !ok {
		t.Fatalf("no trend data (series=%v)", series)
	}
	if len(series) < 2 {
		t.Fatalf("series = %+v", series)
	}
	if momentum <= 0 {
		t.Errorf("momentum = %v, want positive (reputation improved)", momentum)
	}
	// Chronological order.
	for i := 1; i < len(series); i++ {
		if series[i-1].Month >= series[i].Month {
			t.Errorf("series out of order: %+v", series)
		}
	}
}

func TestSentimentTrendNoData(t *testing.T) {
	p := NewPlatform(PlatformConfig{})
	if _, _, ok := p.SentimentTrend("nothing"); ok {
		t.Error("empty platform should report no trend")
	}
}
