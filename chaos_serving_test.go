package webfountain

// The serving-tier chaos suite: seeded disk faults and hard kills
// against the crash-recoverable serving tier. Three archetypes cover
// the crash windows the checkpoint/repair design closes:
//
//   - kill mid-ingest-batch — a WAL fault degrades the store inside a
//     batch, the process dies with durably-acked documents never
//     published to the aggregates;
//   - kill mid-checkpoint-write — the checkpoint temp file is torn by
//     the injector, the process dies, the previous generation must
//     still stand;
//   - checkpoint bit rot — the newest published checkpoint is
//     corrupted on disk, the loader must quarantine it and fall back.
//
// Every archetype asserts the serving resilience invariants after a
// kill + restart:
//
//  1. recovered aggregates are byte-identical to an offline full
//     re-mine of the recovered store (View.Fingerprint and the full
//     sentiment-index dump);
//  2. no acknowledged ingest is lost — every id the tier (or the
//     platform) acked reads back from the recovered store, with its
//     sentiment annotation written exactly once;
//  3. the cache-invalidation generation never regresses across the
//     restart — a cached client can't see time move backwards;
//  4. recovery is byte-deterministic per seed — two runs of one
//     scenario end on identical fingerprints, generations and repair
//     counts.
//
// Faults come from the same seeded injector the store's crash suite
// uses, and the WAL is appended serially (single ingest worker), so a
// scenario replays byte-for-byte under a fixed seed. When
// CHAOS_INVARIANT_LOG names a file, every invariant checkpoint is
// appended to it — CI uploads that file as the run's artifact.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"webfountain/internal/faults"
	"webfountain/internal/serve"
	"webfountain/internal/store"
)

// servingChaos owns one durable serving deployment plus the record of
// everything the run acknowledged.
type servingChaos struct {
	t       *testing.T
	dataDir string
	ckptDir string

	p    *Platform
	m    *SentimentMiner
	tier *ServingTier
	rec  ServingRecovery

	rng     *rand.Rand
	nextDoc int
	acked   []string // every tier- or platform-acked doc id, in order
	lastGen uint64   // highest generation ever observed pre-crash
}

func newServingChaos(t *testing.T, seed int64) *servingChaos {
	t.Helper()
	base := t.TempDir()
	return &servingChaos{
		t:       t,
		dataDir: filepath.Join(base, "data"),
		ckptDir: filepath.Join(base, "ckpt"),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// open boots (or re-boots) the durable platform + miner + tier over
// the harness directories. wrapWAL and wrapCkpt install the injected
// disk faults; nil means a healthy disk.
func (sc *servingChaos) open(wrapWAL func(store.WALFile) store.WALFile, cfg ServingTierConfig) {
	sc.t.Helper()
	st, err := store.Open(sc.dataDir, store.Options{Shards: 4, WrapWAL: wrapWAL})
	if err != nil {
		sc.t.Fatal(err)
	}
	p := platformOver(st, PlatformConfig{IngestWorkers: 1}.normalized())
	p.reindex()
	m, err := NewSentimentMiner(MinerConfig{})
	if err != nil {
		sc.t.Fatal(err)
	}
	cfg.CheckpointDir = sc.ckptDir
	tier, rec, err := RecoverServingTier(p, m, cfg)
	if err != nil {
		sc.t.Fatal(err)
	}
	sc.p, sc.m, sc.tier, sc.rec = p, m, tier, rec
	if g := tier.View().Generation(); g > sc.lastGen {
		sc.lastGen = g
	}
}

// crash abandons the running deployment without Close — no final
// checkpoint, no WAL flush beyond what each ack already synced.
func (sc *servingChaos) crash() { sc.p, sc.m, sc.tier = nil, nil, nil }

// nextDocs draws the next n documents from the seeded generator: one
// subject and one unambiguous sentiment sentence each, so every stored
// document contributes exactly one fact and one annotation.
func (sc *servingChaos) nextDocs(n int) []serve.Doc {
	docs := make([]serve.Doc, n)
	for i := range docs {
		subject := fmt.Sprintf("KX%03d", sc.rng.Intn(400))
		text := fmt.Sprintf("The %s takes excellent pictures.", subject)
		if sc.rng.Intn(2) == 1 {
			text = fmt.Sprintf("The %s disappointed every reviewer.", subject)
		}
		docs[i] = serve.Doc{
			ID:   fmt.Sprintf("doc-%04d", sc.nextDoc),
			Date: fmt.Sprintf("2003-%02d-%02d", 1+sc.rng.Intn(12), 1+sc.rng.Intn(28)),
			Text: text,
		}
		sc.nextDoc++
	}
	return docs
}

// ingestBatches drives the tier's online write path, recording every
// acked id and asserting the generation never regresses mid-run.
func (sc *servingChaos) ingestBatches(batches, size int) {
	sc.t.Helper()
	for b := 0; b < batches; b++ {
		ids, _, _ := sc.tier.Ingest(context.Background(), sc.nextDocs(size))
		sc.acked = append(sc.acked, ids...)
		if g := sc.tier.View().Generation(); g < sc.lastGen {
			sc.t.Fatalf("generation regressed mid-run: %d -> %d", sc.lastGen, g)
		} else {
			sc.lastGen = g
		}
	}
}

// directIngest stores documents through the platform only — the
// durable ack that never reaches the tier, i.e. the crash window
// between Platform.Ingest and the aggregate publish.
func (sc *servingChaos) directIngest(n int) {
	sc.t.Helper()
	docs := sc.nextDocs(n)
	batch := make([]Document, len(docs))
	for i, d := range docs {
		batch[i] = Document{ID: d.ID, Date: d.Date, Text: d.Text}
	}
	ids, _ := sc.p.Ingest(batch)
	sc.acked = append(sc.acked, ids...)
}

// offlineRemine rebuilds the ground truth from scratch: every document
// the recovered store holds, ingested into a fresh in-memory platform
// and mined by a cold batch run. Returns the aggregate fingerprint and
// the sentiment-index digest the recovered tier must match.
func offlineRemine(t *testing.T, st *store.Store) (string, string) {
	t.Helper()
	var docs []Document
	st.ForEach(func(e *store.Entity) error {
		docs = append(docs, Document{
			ID: e.ID, Source: e.Source, Title: e.Title, Date: e.Date, Text: e.Text,
		})
		return nil
	})
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
	p := NewPlatform(PlatformConfig{})
	if _, err := p.Ingest(docs); err != nil {
		t.Fatal(err)
	}
	m, err := NewSentimentMiner(MinerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	facts, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	tier := NewServingTier(p, m, facts)
	return tier.View().Fingerprint(), sidxDigest(m)
}

// sidxDigest hashes the full deterministic sentiment-index dump.
func sidxDigest(m *SentimentMiner) string {
	h := sha256.New()
	for _, e := range m.sidx.All() {
		fmt.Fprintf(h, "%s|%d|%s|%d|%s|%s\n", e.DocID, e.Sentence, e.Subject, e.Polarity, e.Snippet, e.Feature)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// verifyRecovered checks invariants 1–3 against the freshly recovered
// deployment and returns the run's determinism digest (invariant 4).
func (sc *servingChaos) verifyRecovered(logf func(string, ...any), scenario string, seed int64) string {
	sc.t.Helper()
	st := sc.p.internalStore()

	// Invariant 2: every acked document is durable, served, and
	// annotated exactly once (repair must never double-annotate).
	for _, id := range sc.acked {
		anns := 0
		if !st.View(id, func(e *store.Entity) { anns = len(e.AnnotationsBy(MinerName)) }) {
			sc.t.Fatalf("%s/seed=%d: acked doc %s lost across the kill", scenario, seed, id)
		}
		if anns != 1 {
			sc.t.Fatalf("%s/seed=%d: doc %s has %d sentiment annotations, want exactly 1", scenario, seed, id, anns)
		}
	}
	logf("%s seed=%d: all %d acked docs durable and single-annotated", scenario, seed, len(sc.acked))

	// Invariant 1: recovered aggregates == offline full re-mine.
	wantFP, wantSidx := offlineRemine(sc.t, st)
	gotFP := sc.tier.View().Fingerprint()
	if gotFP != wantFP {
		sc.t.Fatalf("%s/seed=%d: recovered aggregates diverge from offline re-mine\n got %s\nwant %s",
			scenario, seed, gotFP, wantFP)
	}
	if got := sidxDigest(sc.m); got != wantSidx {
		sc.t.Fatalf("%s/seed=%d: recovered sentiment index diverges from offline re-mine", scenario, seed)
	}
	logf("%s seed=%d: fingerprint %s matches offline re-mine", scenario, seed, gotFP[:12])

	// Invariant 3: the generation survived the restart monotonically.
	gen := sc.tier.View().Generation()
	if gen < sc.lastGen {
		sc.t.Fatalf("%s/seed=%d: generation regressed across restart: %d -> %d", scenario, seed, sc.lastGen, gen)
	}
	logf("%s seed=%d: generation %d >= pre-crash %d (repaired=%d quarantined=%d)",
		scenario, seed, gen, sc.lastGen, sc.rec.RepairedDocs, sc.rec.Quarantined)

	return fmt.Sprintf("fp=%s sidx=%s gen=%d acked=%d repaired=%d quarantined=%d",
		gotFP, sidxDigest(sc.m), gen, len(sc.acked), sc.rec.RepairedDocs, sc.rec.Quarantined)
}

// runTwiceDeterministic runs one scenario twice per seed and asserts
// identical digests — invariant 4.
func runTwiceDeterministic(t *testing.T, scenario string, run func(t *testing.T, seed int64) string) {
	t.Helper()
	logf := chaosInvariantLog(t)
	for _, seed := range chaosSeeds {
		a := run(t, seed)
		b := run(t, seed)
		if a != b {
			t.Fatalf("%s/seed=%d: nondeterministic recovery\nrun1 %s\nrun2 %s", scenario, seed, a, b)
		}
		logf("%s seed=%d: two runs byte-identical: %s", scenario, seed, a)
	}
}

// TestChaosServingKillMidIngestBatch: WAL faults degrade the store
// inside ingest batches, documents land durably that the tier never
// published, and the process is killed without a final checkpoint.
// Recovery must repair exactly the unpublished tail.
func TestChaosServingKillMidIngestBatch(t *testing.T) {
	runTwiceDeterministic(t, "kill-mid-ingest", func(t *testing.T, seed int64) string {
		logf := chaosInvariantLog(t)
		sc := newServingChaos(t, seed)
		in := faults.New(faults.Config{Seed: seed, TornWriteRate: 0.04, SyncFailRate: 0.03})
		wrap := func(w store.WALFile) store.WALFile { return in.File(w.(faults.File)) }

		sc.open(wrap, ServingTierConfig{CheckpointEvery: 2})
		sc.ingestBatches(10, 3)
		if deg, reason := sc.p.Degraded(); deg {
			logf("kill-mid-ingest seed=%d: store degraded mid-run (%s), %d docs acked", seed, reason, len(sc.acked))
		} else {
			// The disk stayed healthy this seed; open the crash window
			// explicitly with a durable ack the tier never sees.
			sc.directIngest(2)
		}
		sc.crash()

		sc.open(nil, ServingTierConfig{CheckpointEvery: 2})
		return sc.verifyRecovered(logf, "kill-mid-ingest", seed)
	})
}

// TestChaosServingKillMidCheckpointWrite: the checkpoint temp file is
// torn by the injector, so checkpoint attempts fail mid-write; the
// previous published generation must keep standing and recovery must
// repair from it — never from a torn file.
func TestChaosServingKillMidCheckpointWrite(t *testing.T) {
	runTwiceDeterministic(t, "kill-mid-checkpoint", func(t *testing.T, seed int64) string {
		logf := chaosInvariantLog(t)
		sc := newServingChaos(t, seed)
		in := faults.New(faults.Config{Seed: seed, TornWriteRate: 0.5})

		sc.open(nil, ServingTierConfig{CheckpointEvery: 1, WrapCheckpoint: in.Writer})
		sc.ingestBatches(10, 2)
		sc.directIngest(2)
		sc.crash()
		if torn := in.Stats().TornWrites; torn == 0 {
			t.Fatalf("seed=%d: no checkpoint write was torn; the scenario exercised nothing", seed)
		} else {
			logf("kill-mid-checkpoint seed=%d: %d checkpoint writes torn", seed, torn)
		}

		sc.open(nil, ServingTierConfig{CheckpointEvery: 1})
		if sc.rec.Quarantined != 0 {
			t.Fatalf("seed=%d: %d checkpoints quarantined — a torn write reached a published name", seed, sc.rec.Quarantined)
		}
		assertNoTempFiles(t, sc.ckptDir)
		return sc.verifyRecovered(logf, "kill-mid-checkpoint", seed)
	})
}

// TestChaosServingCheckpointBitRot: the newest published checkpoint is
// silently corrupted on disk and a stray temp file is planted; the
// loader must quarantine the rotten file, delete the stray, fall back
// a generation and repair the difference.
func TestChaosServingCheckpointBitRot(t *testing.T) {
	runTwiceDeterministic(t, "checkpoint-bit-rot", func(t *testing.T, seed int64) string {
		logf := chaosInvariantLog(t)
		sc := newServingChaos(t, seed)

		sc.open(nil, ServingTierConfig{CheckpointEvery: 1})
		sc.ingestBatches(6, 2)
		sc.directIngest(2)
		sc.crash()

		// Bit-rot the newest checkpoint at a seeded offset and plant the
		// debris of a crash mid-write.
		newest := newestCheckpointPath(t, sc.ckptDir)
		data, err := os.ReadFile(newest)
		if err != nil {
			t.Fatal(err)
		}
		data[8+sc.rng.Intn(len(data)-8)] ^= 0x20
		if err := os.WriteFile(newest, data, 0o644); err != nil {
			t.Fatal(err)
		}
		stray := filepath.Join(sc.ckptDir, "checkpoint-9999.tmp")
		if err := os.WriteFile(stray, []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}

		sc.open(nil, ServingTierConfig{CheckpointEvery: 1})
		if sc.rec.Quarantined != 1 {
			t.Fatalf("seed=%d: quarantined %d checkpoints, want exactly the rotten one", seed, sc.rec.Quarantined)
		}
		if !sc.rec.CheckpointLoaded {
			t.Fatalf("seed=%d: no fallback checkpoint loaded after quarantine", seed)
		}
		if _, err := os.Stat(newest + ".corrupt"); err != nil {
			t.Fatalf("seed=%d: rotten checkpoint not quarantined: %v", seed, err)
		}
		if _, err := os.Stat(stray); !os.IsNotExist(err) {
			t.Fatalf("seed=%d: stray temp file survived recovery", seed)
		}
		logf("checkpoint-bit-rot seed=%d: rotten file quarantined, fell back to gen %d", seed, sc.rec.CheckpointGen)
		return sc.verifyRecovered(logf, "checkpoint-bit-rot", seed)
	})
}

// newestCheckpointPath returns the highest-generation checkpoint file.
func newestCheckpointPath(t *testing.T, dir string) string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, de := range des {
		if strings.HasPrefix(de.Name(), "checkpoint-") && strings.HasSuffix(de.Name(), ".ck") {
			if newest == "" || de.Name() > newest {
				newest = de.Name()
			}
		}
	}
	if newest == "" {
		t.Fatal("no checkpoint files on disk")
	}
	return filepath.Join(dir, newest)
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".tmp") {
			t.Fatalf("temp file %s survived recovery", de.Name())
		}
	}
}
