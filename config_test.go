package webfountain

import (
	"errors"
	"strings"
	"testing"
)

// Zero and negative tuning fields select defaults rather than producing
// degenerate platforms (0 ingest workers would deadlock ingestion, 0
// shards would panic the store).
func TestNewPlatformClampsNonsenseTuning(t *testing.T) {
	p := NewPlatform(PlatformConfig{Shards: -3, IngestWorkers: -1, IndexShards: 0})
	if _, err := p.Ingest([]Document{{ID: "a", Text: "The NR70 takes excellent pictures."}}); err != nil {
		t.Fatalf("ingest on clamped platform: %v", err)
	}
	if p.NumEntities() != 1 {
		t.Errorf("NumEntities = %d, want 1", p.NumEntities())
	}
	if got := p.SearchAll("excellent"); len(got) != 1 {
		t.Errorf("SearchAll = %v", got)
	}
}

func TestValidateRejectsNonsenseConfigs(t *testing.T) {
	cases := []struct {
		name  string
		cfg   PlatformConfig
		field string
	}{
		{"shards over max", PlatformConfig{Shards: maxShards + 1}, "Shards"},
		{"index shards over max", PlatformConfig{IndexShards: maxShards + 1}, "IndexShards"},
		{"ingest workers over max", PlatformConfig{IngestWorkers: maxShards + 1}, "IngestWorkers"},
		{"negative sync cadence", PlatformConfig{SyncEvery: -1}, "SyncEvery"},
		{"negative compaction cadence", PlatformConfig{CompactEvery: -2}, "CompactEvery"},
		{"negative miner backoff", PlatformConfig{MinerBackoff: -1}, "MinerBackoff"},
		{"negative entity timeout", PlatformConfig{EntityTimeout: -1}, "EntityTimeout"},
		{"negative group commit window", PlatformConfig{GroupCommitWindow: -1}, "GroupCommitWindow"},
		{"group commit without data dir", PlatformConfig{GroupCommit: true}, "GroupCommit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			var cerr *ConfigError
			if !errors.As(err, &cerr) {
				t.Fatalf("Validate() = %v, want *ConfigError", err)
			}
			if cerr.Field != tc.field {
				t.Errorf("Field = %q, want %q", cerr.Field, tc.field)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Errorf("Error() = %q, should name the field", err.Error())
			}
		})
	}

	if err := (PlatformConfig{Shards: -1, SyncEvery: 0}).Validate(); err != nil {
		t.Errorf("clampable config should validate, got %v", err)
	}
}

func TestOpenPlatformValidates(t *testing.T) {
	var cerr *ConfigError
	if _, err := OpenPlatform(PlatformConfig{}); !errors.As(err, &cerr) || cerr.Field != "DataDir" {
		t.Errorf("empty DataDir: err = %v", err)
	}
	if _, err := OpenPlatform(PlatformConfig{DataDir: t.TempDir(), SyncEvery: -1}); !errors.As(err, &cerr) || cerr.Field != "SyncEvery" {
		t.Errorf("negative SyncEvery: err = %v", err)
	}

	// A clampable config opens fine and is durable end to end.
	dir := t.TempDir()
	p, err := OpenPlatform(PlatformConfig{DataDir: dir, Shards: -1, IngestWorkers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest([]Document{{ID: "a", Text: "ok"}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
