package webfountain

import (
	"testing"

	"webfountain/internal/store"
)

var durableCorpus = []Document{
	{Source: "review", Date: "2004-06-01", Text: "The Aurora album is gorgeous. Critics praised Aurora."},
	{ID: "d-tempest", Source: "review", Date: "2004-06-08", Text: "The Tempest fails to impress. Tempest sounded bland."},
	{Source: "news", Text: "Nothing notable happened today."},
}

// TestOpenPlatformRecoversCorpusAndIndex: a durable platform reopened
// after Close answers the same searches as one that never went down —
// the rebuilt inverted index must be behaviorally identical.
func TestOpenPlatformRecoversCorpusAndIndex(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPlatform(PlatformConfig{Shards: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := p.Ingest(durableCorpus)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	live := NewPlatform(PlatformConfig{Shards: 4})
	if _, err := live.Ingest(durableCorpus); err != nil {
		t.Fatal(err)
	}
	rec, err := OpenPlatform(PlatformConfig{Shards: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	if rec.NumEntities() != live.NumEntities() {
		t.Fatalf("recovered %d entities, want %d", rec.NumEntities(), live.NumEntities())
	}
	for _, q := range [][]string{{"aurora"}, {"tempest", "bland"}, {"notable"}, {"absent"}} {
		got, want := rec.SearchAll(q...), live.SearchAll(q...)
		if len(got) != len(want) {
			t.Errorf("SearchAll(%v) = %v, never-crashed platform says %v", q, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("SearchAll(%v) = %v, want %v", q, got, want)
				break
			}
		}
	}
	if got := rec.SearchPhrase("fails", "to", "impress"); len(got) != 1 || got[0] != "d-tempest" {
		t.Errorf("SearchPhrase after recovery = %v", got)
	}
	doc, ok := rec.Entity(ids[0])
	if !ok || doc.Date != "2004-06-01" {
		t.Errorf("recovered entity = %+v, %v", doc, ok)
	}

	// The ID generator must have advanced past every recovered generated
	// ID, so a post-recovery ingest cannot overwrite a recovered doc.
	newIDs, err := rec.Ingest([]Document{{Text: "fresh after recovery"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range ids {
		if newIDs[0] == old {
			t.Fatalf("post-recovery ingest reused recovered ID %s", old)
		}
	}
}

// TestOpenPlatformRecoversMinerAnnotations: sentiment annotations written
// back by a mining run are WAL-logged and survive reopen, so the
// recovered platform still serves the mined sentiment.
func TestOpenPlatformRecoversMinerAnnotations(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPlatform(PlatformConfig{Shards: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest(durableCorpus); err != nil {
		t.Fatal(err)
	}
	m, err := NewSentimentMiner(MinerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	facts, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) == 0 {
		t.Fatal("no facts mined")
	}
	annotated := 0
	_ = p.internalStore().ForEach(func(e *store.Entity) error {
		annotated += len(e.Annotations)
		return nil
	})
	if annotated == 0 {
		t.Fatal("mining run wrote no annotations")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := OpenPlatform(PlatformConfig{Shards: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	recovered := 0
	_ = rec.internalStore().ForEach(func(e *store.Entity) error {
		recovered += len(e.Annotations)
		return nil
	})
	if recovered != annotated {
		t.Errorf("recovered %d annotations, want %d", recovered, annotated)
	}
}

// TestOpenPlatformCompact: Compact on a platform folds the log into a
// snapshot; a reopen after it still serves the full corpus.
func TestOpenPlatformCompact(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPlatform(PlatformConfig{Shards: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest(durableCorpus); err != nil {
		t.Fatal(err)
	}
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete("d-tempest"); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := OpenPlatform(PlatformConfig{Shards: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.NumEntities() != len(durableCorpus)-1 {
		t.Errorf("recovered %d entities, want %d", rec.NumEntities(), len(durableCorpus)-1)
	}
	if got := rec.SearchAll("tempest"); len(got) != 0 {
		t.Errorf("deleted doc still indexed after recovery: %v", got)
	}
}

// TestInMemoryPlatformDurabilityNoOps: the durability surface degrades
// gracefully on an in-memory platform.
func TestInMemoryPlatformDurabilityNoOps(t *testing.T) {
	p := NewPlatform(PlatformConfig{})
	if err := p.Close(); err != nil {
		t.Errorf("in-memory Close: %v", err)
	}
	if deg, _ := p.Degraded(); deg {
		t.Error("in-memory platform reports degraded")
	}
	if err := p.Compact(); err == nil {
		t.Error("in-memory Compact should error")
	}
	if _, err := OpenPlatform(PlatformConfig{}); err == nil {
		t.Error("OpenPlatform without DataDir should error")
	}
}

// TestPlatformWriteAfterCloseFails pins the error contract: once a
// durable platform is closed, ingests and deletes are refused and never
// reach the (flushed) log, so a reopen sees only what was acknowledged.
func TestPlatformWriteAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPlatform(PlatformConfig{Shards: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest(durableCorpus[:1]); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest(durableCorpus[1:2]); err == nil {
		t.Fatal("ingest after close succeeded")
	}
	// A clean close is not degradation: the store flushed and shut down.
	if deg, _ := p.Degraded(); deg {
		t.Error("cleanly closed platform reports degraded")
	}
	rec, err := OpenPlatform(PlatformConfig{Shards: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.NumEntities() != 1 {
		t.Errorf("recovered %d entities, want only the acknowledged 1", rec.NumEntities())
	}
}
