module webfountain

go 1.22
