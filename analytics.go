package webfountain

import (
	"fmt"

	"webfountain/internal/cluster"
	"webfountain/internal/miners"
	"webfountain/internal/store"
)

// AnalyticsConfig tunes the standard miner suite.
type AnalyticsConfig struct {
	// TopTerms is how many corpus-wide top terms to report (default 20).
	TopTerms int
	// DuplicateThreshold is the minhash Jaccard threshold for duplicate
	// clustering (default 0.8).
	DuplicateThreshold float64
	// Clusters is k for document clustering; 0 disables clustering.
	Clusters int
	// PageRankTop is how many top-ranked documents to report (default 10).
	PageRankTop int
}

// CorpusStats are corpus-wide aggregates.
type CorpusStats struct {
	Documents    int
	Tokens       int
	Vocabulary   int
	AvgDocTokens float64
	BySource     map[string]int
	TopTerms     []TermCount
}

// TermCount is a term with its corpus frequency.
type TermCount struct {
	Term  string
	Count int
}

// RankedDocument is one document with its link-graph score.
type RankedDocument struct {
	ID    string
	Score float64
}

// DocumentCluster is one k-means cluster.
type DocumentCluster struct {
	// Size is the number of member documents.
	Size int
	// TopTerms characterize the cluster's centroid.
	TopTerms []string
}

// AnalyticsReport is the output of the standard miner suite.
type AnalyticsReport struct {
	// Stats are the corpus aggregates.
	Stats CorpusStats
	// DuplicateClusters groups near-duplicate document IDs.
	DuplicateClusters [][]string
	// TopRanked are the highest PageRank documents.
	TopRanked []RankedDocument
	// Regions counts documents per dominant geographic region.
	Regions map[string]int
	// Clusters describes the k-means document clusters (empty when
	// clustering was disabled).
	Clusters []DocumentCluster
}

// RunAnalytics deploys the platform's standard miner suite — the
// geographic context discoverer (entity-level) followed by aggregate
// statistics, duplicate detection, page ranking and optional clustering
// (corpus-level) — and returns the combined report.
func (p *Platform) RunAnalytics(cfg AnalyticsConfig) (*AnalyticsReport, error) {
	if cfg.PageRankTop == 0 {
		cfg.PageRankTop = 10
	}
	geo := miners.NewGeoContext()
	agg := &miners.AggregateStats{TopK: cfg.TopTerms}
	dd := &miners.DuplicateDetector{Threshold: cfg.DuplicateThreshold}
	pr := &miners.PageRank{}
	corpusMiners := []cluster.CorpusMiner{agg, dd, pr}
	var km *miners.KMeans
	if cfg.Clusters > 0 {
		km = &miners.KMeans{K: cfg.Clusters}
		corpusMiners = append(corpusMiners, km)
	}
	if _, err := p.internalCluster().RunPipeline(
		[]cluster.EntityMiner{geo}, corpusMiners); err != nil {
		return nil, fmt.Errorf("webfountain: analytics: %w", err)
	}

	report := &AnalyticsReport{
		Stats: CorpusStats{
			Documents:    agg.Documents,
			Tokens:       agg.Tokens,
			Vocabulary:   agg.Vocabulary,
			AvgDocTokens: agg.AvgDocTokens,
			BySource:     agg.BySource,
		},
		DuplicateClusters: dd.Clusters(),
		Regions:           map[string]int{},
	}
	for _, tc := range agg.TopTerms {
		report.Stats.TopTerms = append(report.Stats.TopTerms, TermCount{Term: tc.Term, Count: tc.Count})
	}
	for _, r := range pr.Top(cfg.PageRankTop) {
		report.TopRanked = append(report.TopRanked, RankedDocument{ID: r.ID, Score: r.Score})
	}
	_ = p.internalStore().ForEach(func(e *store.Entity) error {
		if region := miners.Region(e); region != "" {
			report.Regions[region]++
		}
		return nil
	})
	if km != nil {
		for c, size := range km.Sizes() {
			report.Clusters = append(report.Clusters, DocumentCluster{
				Size:     size,
				TopTerms: km.TopTerms(c),
			})
		}
	}
	return report, nil
}

// SentimentTrend reports a subject's monthly sentiment series after a
// SentimentMiner has run over the platform (it consumes the miner's
// annotations and the documents' dates).
type TrendPoint struct {
	// Month is "YYYY-MM".
	Month string
	// Positive and Negative are the month's polar mention counts.
	Positive, Negative int
}

// SentimentTrend computes a subject's sentiment trend. Momentum is the
// change in positive share between the first and second half of the
// series (0 with ok=false when there is not enough data).
func (p *Platform) SentimentTrend(subject string) (series []TrendPoint, momentum float64, ok bool) {
	tr := &miners.Trend{SentimentMiner: MinerName}
	if err := tr.Run(p.internalStore()); err != nil {
		return nil, 0, false
	}
	for _, pt := range tr.Series(subject) {
		series = append(series, TrendPoint{Month: pt.Month, Positive: pt.Positive, Negative: pt.Negative})
	}
	momentum, ok = tr.Momentum(subject)
	return series, momentum, ok
}
