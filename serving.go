package webfountain

import (
	"fmt"
	"net/http"
	"sync"

	"webfountain/internal/serve"
	"webfountain/internal/store"
)

// Aliases re-exporting the serving tier's wire and config types, so
// library users can drive ServingTier and mount its gateway without
// importing internal/serve (which the internal rule forbids outside
// this module).
type (
	// ServingDoc is one document submitted to ServingTier.Ingest.
	ServingDoc = serve.Doc
	// ServingEntry is one sentiment-bearing mention as served.
	ServingEntry = serve.Entry
	// ServingView is an immutable aggregate snapshot.
	ServingView = serve.View
	// ServingGatewayConfig tunes NewServingGateway.
	ServingGatewayConfig = serve.GatewayConfig
)

// NewServingGateway mounts the tier's HTTP/JSON API (the /api/*
// endpoints and /healthz of cmd/wfserver) on any mux: result caching,
// per-tenant rate limits and degraded-mode semantics included.
func NewServingGateway(t *ServingTier, cfg ServingGatewayConfig) http.Handler {
	return serve.NewGateway(t, cfg)
}

// ServingTier is the live serving tier over a mined platform: it keeps
// the materialized sentiment aggregates (per subject × feature ×
// polarity × time bucket) in lock-step with the corpus, mining new
// documents online at ingest instead of re-running the batch miner. It
// implements serve.Backend, so serve.NewGateway(tier, cfg) is the whole
// HTTP serving stack.
//
// Consistency contract: Ingest publishes a new aggregate snapshot (and
// bumps the cache-invalidation generation) before it returns, so a
// query issued after an ingest batch acks can never observe aggregates
// staler than that batch. Queries concurrent with an in-flight batch
// may see the previous snapshot — a staleness bound of exactly one
// batch.
type ServingTier struct {
	mu  sync.Mutex // serializes ingest batches
	p   *Platform
	m   *SentimentMiner
	agg *serve.Aggregates
}

// NewServingTier builds the tier over a platform and a miner that has
// already run (facts are Run's output, seeding the aggregates so the
// first query is served from the materialized view, not a corpus scan).
func NewServingTier(p *Platform, m *SentimentMiner, facts []SubjectSentiment) *ServingTier {
	t := &ServingTier{p: p, m: m, agg: serve.NewAggregates()}
	t.agg.Apply(t.toFacts(facts))
	return t
}

// toFacts converts mined facts to aggregate facts, resolving each
// document's publication date for the time-bucket dimension.
func (t *ServingTier) toFacts(facts []SubjectSentiment) []serve.Fact {
	dates := map[string]string{}
	out := make([]serve.Fact, 0, len(facts))
	for _, f := range facts {
		date, ok := dates[f.DocID]
		if !ok {
			if e, found := t.p.Entity(f.DocID); found {
				date = e.Date
			}
			dates[f.DocID] = date
		}
		out = append(out, serve.Fact{
			Subject:  f.Subject,
			Feature:  f.Feature,
			Date:     date,
			Positive: f.Polarity == Positive,
		})
	}
	return out
}

// View returns the current aggregate snapshot (serve.Backend).
func (t *ServingTier) View() *serve.View { return t.agg.View() }

// NumDocs returns the number of stored documents (serve.Backend).
func (t *ServingTier) NumDocs() int { return t.p.NumEntities() }

// Degraded reports the store's degraded read-only mode (serve.Backend).
func (t *ServingTier) Degraded() (bool, string) { return t.p.Degraded() }

// Entries returns a subject's sentiment-bearing mentions from the
// query-time sentiment index (serve.Backend).
func (t *ServingTier) Entries(subject string) []serve.Entry {
	facts := t.m.Query(subject)
	out := make([]serve.Entry, 0, len(facts))
	for _, f := range facts {
		out = append(out, serve.Entry{
			Subject:  f.Subject,
			Polarity: f.Polarity.String(),
			Doc:      f.DocID,
			Sentence: f.Sentence,
			Snippet:  f.Snippet,
			Feature:  f.Feature,
		})
	}
	return out
}

// Ingest implements serve.Backend's online write path: the documents
// are stored and indexed, each one is mined as it lands (facts go to
// the query-time sentiment index and are annotated onto the entity, so
// the offline trend miner sees them too), and the batch's facts are
// folded into the aggregates — the generation bump that invalidates
// every cached response. Batches are serialized; on a partial ingest
// failure the successfully-ingested prefix is still mined and
// published, matching Platform.Ingest's prefix semantics.
func (t *ServingTier) Ingest(docs []serve.Doc) ([]string, int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	batch := make([]Document, len(docs))
	for i, d := range docs {
		batch[i] = Document{
			ID: d.ID, Source: d.Source, Title: d.Title, Date: d.Date, Text: d.Text,
		}
	}
	ids, ingestErr := t.p.Ingest(batch)
	var facts []SubjectSentiment
	for i, id := range ids {
		mined := t.m.MineDocument(id, batch[i].Text)
		if len(mined) == 0 {
			continue
		}
		facts = append(facts, mined...)
		anns := make([]store.Annotation, 0, len(mined))
		for _, f := range mined {
			anns = append(anns, store.Annotation{
				Miner:    MinerName,
				Type:     "polarity",
				Key:      f.Subject,
				Value:    f.Polarity.String(),
				Sentence: f.Sentence,
			})
		}
		if _, err := t.p.internalStore().Annotate(id, anns); err != nil && ingestErr == nil {
			ingestErr = fmt.Errorf("webfountain: serving annotate %s: %w", id, err)
		}
	}
	// Publish even an empty batch: the corpus changed, so cached
	// responses keyed on the old generation must re-render.
	t.agg.Apply(t.toFacts(facts))
	return ids, len(facts), ingestErr
}
