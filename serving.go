package webfountain

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"webfountain/internal/index"
	"webfountain/internal/metrics"
	"webfountain/internal/serve"
	"webfountain/internal/store"
)

// Aliases re-exporting the serving tier's wire and config types, so
// library users can drive ServingTier and mount its gateway without
// importing internal/serve (which the internal rule forbids outside
// this module).
type (
	// ServingDoc is one document submitted to ServingTier.Ingest.
	ServingDoc = serve.Doc
	// ServingEntry is one sentiment-bearing mention as served.
	ServingEntry = serve.Entry
	// ServingView is an immutable aggregate snapshot.
	ServingView = serve.View
	// ServingGatewayConfig tunes NewServingGateway.
	ServingGatewayConfig = serve.GatewayConfig
)

var (
	servingCheckpoints    = metrics.Default().Counter("serving.checkpoints")
	servingCheckpointErrs = metrics.Default().Counter("serving.checkpoint.errors")
	servingRepairedDocs   = metrics.Default().Counter("serving.recovery.repaired.docs")
)

// NewServingGateway mounts the tier's HTTP/JSON API (the /api/*
// endpoints and /healthz of cmd/wfserver) on any mux: result caching,
// per-tenant rate limits and degraded-mode semantics included.
func NewServingGateway(t *ServingTier, cfg ServingGatewayConfig) http.Handler {
	return serve.NewGateway(t, cfg)
}

// ServingTierConfig tunes the tier's durability. The zero value
// disables checkpointing entirely (the PR 9 memory-only behavior).
type ServingTierConfig struct {
	// CheckpointDir, when non-empty, is where the tier persists its
	// aggregate checkpoints — see RecoverServingTier for how they are
	// used at startup.
	CheckpointDir string
	// CheckpointEvery writes a checkpoint every N ingest batches
	// (0: only on Close or an explicit Checkpoint call).
	CheckpointEvery int
	// WrapCheckpoint, when set, wraps the checkpoint temp-file handle —
	// the deterministic disk-fault injector's hook in crash tests.
	WrapCheckpoint func(io.WriteCloser) io.WriteCloser
}

// ServingRecovery describes what RecoverServingTier found and did.
type ServingRecovery struct {
	// CheckpointLoaded reports whether a valid checkpoint was restored
	// (false means a cold start: every document was re-mined).
	CheckpointLoaded bool
	// CheckpointGen is the restored checkpoint's aggregate generation.
	CheckpointGen uint64
	// Quarantined counts checkpoint files that failed verification and
	// were renamed *.corrupt before an older valid one was found.
	Quarantined int
	// RepairedDocs counts the documents mined forward from the
	// watermark — the store held them durably but the checkpoint's
	// aggregates did not include them yet.
	RepairedDocs int
}

// ServingTier is the live serving tier over a mined platform: it keeps
// the materialized sentiment aggregates (per subject × feature ×
// polarity × time bucket) in lock-step with the corpus, mining new
// documents online at ingest instead of re-running the batch miner. It
// implements serve.Backend, so serve.NewGateway(tier, cfg) is the whole
// HTTP serving stack.
//
// Consistency contract: Ingest publishes a new aggregate snapshot (and
// bumps the cache-invalidation generation) before it returns, so a
// query issued after an ingest batch acks can never observe aggregates
// staler than that batch. Queries concurrent with an in-flight batch
// may see the previous snapshot — a staleness bound of exactly one
// batch.
//
// Durability contract: with a CheckpointDir configured, the tier
// persists CRC-guarded checkpoints of the aggregate table, the
// query-time sentiment entries and the mined-document watermark.
// RecoverServingTier restores the newest valid checkpoint and re-mines
// only the documents the durable store holds past the watermark, so a
// crash between a durable Platform.Ingest ack and the aggregate
// publish loses nothing: the missing documents are exactly the ones
// past the watermark, and repair folds them in before the tier serves.
type ServingTier struct {
	mu  sync.Mutex // serializes ingest batches, repair and checkpoints
	p   *Platform
	m   *SentimentMiner
	agg *serve.Aggregates
	cfg ServingTierConfig

	// mined holds the IDs of every document whose facts are folded
	// into the aggregates and the sentiment index — the recovery
	// watermark a checkpoint persists.
	mined map[string]struct{}
	// pendingMine holds stored (durably acked) documents not yet
	// mined: the suffix of a batch whose request deadline expired
	// mid-mine. The next batch drains it; recovery repairs it.
	pendingMine []string
	// pendingAnn holds mined documents whose entity annotation was
	// refused (degraded store) — an annotation debt settled by
	// recovery once the store accepts writes again.
	pendingAnn map[string]struct{}
	// batches counts ingest batches since the last checkpoint.
	batches int
}

func newServingTier(p *Platform, m *SentimentMiner, cfg ServingTierConfig) *ServingTier {
	return &ServingTier{
		p: p, m: m, agg: serve.NewAggregates(), cfg: cfg,
		mined:      map[string]struct{}{},
		pendingAnn: map[string]struct{}{},
	}
}

// NewServingTier builds the tier over a platform and a miner that has
// already run (facts are Run's output, seeding the aggregates so the
// first query is served from the materialized view, not a corpus scan).
// The tier does not checkpoint; use RecoverServingTier for a tier that
// survives restarts.
func NewServingTier(p *Platform, m *SentimentMiner, facts []SubjectSentiment) *ServingTier {
	t := newServingTier(p, m, ServingTierConfig{})
	t.agg.Apply(t.toFacts(facts))
	for _, id := range p.internalStore().IDs() {
		t.mined[id] = struct{}{}
	}
	return t
}

// RecoverServingTier builds the tier from its durable state: it loads
// the newest valid checkpoint in cfg.CheckpointDir (quarantining
// corrupt ones), restores the aggregate table, the sentiment index and
// the mined-document watermark from it, and then repairs forward by
// mining every document the store holds past the watermark — the
// store's durable doc set is ground truth. Without a usable checkpoint
// the same repair pass simply covers the whole corpus. Repair
// annotates only documents that carry no sentiment annotations yet, so
// a crash after the annotate but before the checkpoint does not
// double-annotate on the next boot. A fresh checkpoint is written when
// recovery completes, so the next restart starts from here.
func RecoverServingTier(p *Platform, m *SentimentMiner, cfg ServingTierConfig) (*ServingTier, ServingRecovery, error) {
	t := newServingTier(p, m, cfg)
	var rec ServingRecovery
	if cfg.CheckpointDir != "" {
		ck, quarantined, err := serve.LoadCheckpoint(cfg.CheckpointDir)
		rec.Quarantined = quarantined
		if err != nil {
			return nil, rec, err
		}
		if ck != nil {
			rec.CheckpointLoaded = true
			rec.CheckpointGen = ck.View.Generation()
			t.agg = serve.NewAggregatesFrom(ck.View)
			for _, e := range ck.Entries {
				m.restoreSentiment(index.SentimentEntry{
					DocID:    e.Doc,
					Sentence: e.Sentence,
					Subject:  e.Subject,
					Polarity: parsePolarity(e.Polarity),
					Snippet:  e.Snippet,
					Feature:  e.Feature,
				})
			}
			for _, id := range ck.MinedDocs {
				t.mined[id] = struct{}{}
			}
			for _, id := range ck.PendingAnnotate {
				t.pendingAnn[id] = struct{}{}
			}
		}
	}
	rec.RepairedDocs = t.repairForward()
	servingRepairedDocs.Add(int64(rec.RepairedDocs))
	if cfg.CheckpointDir != "" {
		// Persist the repaired state immediately: the next crash's
		// recovery starts from this watermark, not the pre-crash one.
		// Best-effort — a failing checkpoint disk must not keep the
		// tier down when the repaired in-memory state is already
		// serving-ready; the error counter records it and the ingest
		// cadence retries.
		t.Checkpoint() //nolint:errcheck
	}
	return t, rec, nil
}

// repairForward mines every stored document not yet behind the
// watermark, in sorted ID order so two recoveries of the same store
// converge to identical aggregates and generations. Each repaired
// document gets its own aggregate publish: the generation strictly
// grows past every batch the crash erased, so a cached client can
// never observe the generation move backwards across a restart.
func (t *ServingTier) repairForward() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := t.p.internalStore().IDs()
	sort.Strings(ids)
	repaired := 0
	for _, id := range ids {
		if _, ok := t.mined[id]; ok {
			continue
		}
		if t.repairDoc(id) {
			repaired++
		}
	}
	t.settleAnnotations()
	return repaired
}

// repairDoc re-mines one stored document into the sentiment index and
// the aggregates, annotating the entity only when it carries no
// sentiment annotations yet (the crash may have landed the annotate
// without the checkpoint). Reports whether the document existed.
func (t *ServingTier) repairDoc(id string) bool {
	var text, date string
	annotated := false
	st := t.p.internalStore()
	ok := st.View(id, func(e *store.Entity) {
		text, date = e.Text, e.Date
		annotated = len(e.AnnotationsBy(MinerName)) > 0
	})
	if !ok {
		return false
	}
	mined := t.m.MineDocument(id, text)
	t.mined[id] = struct{}{}
	if len(mined) > 0 && !annotated {
		if _, err := st.Annotate(id, annotationsOf(mined)); err != nil {
			t.pendingAnn[id] = struct{}{}
		}
	}
	t.agg.Apply(datedFacts(mined, date))
	return true
}

// settleAnnotations retries the annotation debt: documents whose facts
// are already folded in but whose entity annotation was refused by a
// degraded store. The facts are re-derived from the text (the analyzer
// is deterministic) without touching the sentiment index again.
func (t *ServingTier) settleAnnotations() {
	st := t.p.internalStore()
	for _, id := range sortedSet(t.pendingAnn) {
		var text string
		annotated := false
		ok := st.View(id, func(e *store.Entity) {
			text = e.Text
			annotated = len(e.AnnotationsBy(MinerName)) > 0
		})
		if !ok || annotated {
			delete(t.pendingAnn, id)
			continue
		}
		facts := t.m.analyzeEntity(id, text)
		if len(facts) == 0 {
			delete(t.pendingAnn, id)
			continue
		}
		if _, err := st.Annotate(id, annotationsOf(facts)); err == nil {
			delete(t.pendingAnn, id)
		}
	}
}

// Checkpoint persists the tier's current state — aggregate table,
// sentiment entries, mined-document watermark and annotation debt —
// atomically into the configured checkpoint directory.
func (t *ServingTier) Checkpoint() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.checkpointLocked()
}

func (t *ServingTier) checkpointLocked() error {
	if t.cfg.CheckpointDir == "" {
		return errors.New("webfountain: serving tier has no checkpoint directory")
	}
	all := t.m.sidx.All()
	entries := make([]serve.Entry, 0, len(all))
	for _, e := range all {
		entries = append(entries, serve.Entry{
			Subject:  e.Subject,
			Polarity: Polarity(e.Polarity).String(),
			Doc:      e.DocID,
			Sentence: e.Sentence,
			Snippet:  e.Snippet,
			Feature:  e.Feature,
		})
	}
	ck := &serve.Checkpoint{
		View:            t.agg.View(),
		Entries:         entries,
		MinedDocs:       sortedSet(t.mined),
		PendingAnnotate: sortedSet(t.pendingAnn),
	}
	if _, err := serve.WriteCheckpoint(t.cfg.CheckpointDir, ck, t.cfg.WrapCheckpoint); err != nil {
		servingCheckpointErrs.Inc()
		return err
	}
	servingCheckpoints.Inc()
	t.batches = 0
	return nil
}

// Close persists a final checkpoint (graceful shutdown). A tier
// without a checkpoint directory closes as a no-op.
func (t *ServingTier) Close() error {
	if t.cfg.CheckpointDir == "" {
		return nil
	}
	return t.Checkpoint()
}

// toFacts converts mined facts to aggregate facts, resolving each
// document's publication date for the time-bucket dimension.
func (t *ServingTier) toFacts(facts []SubjectSentiment) []serve.Fact {
	dates := map[string]string{}
	out := make([]serve.Fact, 0, len(facts))
	for _, f := range facts {
		date, ok := dates[f.DocID]
		if !ok {
			if e, found := t.p.Entity(f.DocID); found {
				date = e.Date
			}
			dates[f.DocID] = date
		}
		out = append(out, serve.Fact{
			Subject:  f.Subject,
			Feature:  f.Feature,
			Date:     date,
			Positive: f.Polarity == Positive,
		})
	}
	return out
}

// View returns the current aggregate snapshot (serve.Backend).
func (t *ServingTier) View() *serve.View { return t.agg.View() }

// NumDocs returns the number of stored documents (serve.Backend).
func (t *ServingTier) NumDocs() int { return t.p.NumEntities() }

// Degraded reports the store's degraded read-only mode (serve.Backend).
func (t *ServingTier) Degraded() (bool, string) { return t.p.Degraded() }

// Entries returns a subject's sentiment-bearing mentions from the
// query-time sentiment index (serve.Backend). An already-expired
// request deadline short-circuits to an empty answer.
func (t *ServingTier) Entries(ctx context.Context, subject string) []serve.Entry {
	if ctx != nil && ctx.Err() != nil {
		return nil
	}
	facts := t.m.Query(subject)
	out := make([]serve.Entry, 0, len(facts))
	for _, f := range facts {
		out = append(out, serve.Entry{
			Subject:  f.Subject,
			Polarity: f.Polarity.String(),
			Doc:      f.DocID,
			Sentence: f.Sentence,
			Snippet:  f.Snippet,
			Feature:  f.Feature,
		})
	}
	return out
}

// Ingest implements serve.Backend's online write path: the documents
// are stored and indexed, each one is mined as it lands (facts go to
// the query-time sentiment index and are annotated onto the entity, so
// the offline trend miner sees them too), and the batch's facts are
// folded into the aggregates — the generation bump that invalidates
// every cached response. Batches are serialized; on a partial ingest
// failure the successfully-ingested prefix is still mined and
// published, matching Platform.Ingest's prefix semantics, and every
// failure along the way (store refusal, annotate refusal, expired
// deadline) is reported joined rather than first-wins.
//
// The context carries the request deadline. A deadline that expires
// mid-batch stops the mining, not the durability: the remaining
// documents are already stored (acked) and are queued as mine-debt
// that the next batch — or crash recovery — folds in.
func (t *ServingTier) Ingest(ctx context.Context, docs []serve.Doc) ([]string, int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, fmt.Errorf("webfountain: serving ingest: %w", err)
	}
	var errs []error
	var facts []serve.Fact

	// Drain the mine-debt of a previous deadline-aborted batch first:
	// those documents are durably acked, their facts ride this publish.
	if n := len(t.pendingMine); n > 0 {
		debt := t.pendingMine
		t.pendingMine = nil
		for _, id := range debt {
			var text, date string
			if !t.p.internalStore().View(id, func(e *store.Entity) { text, date = e.Text, e.Date }) {
				continue
			}
			fs, err := t.mineDoc(id, text, date)
			facts = append(facts, fs...)
			if err != nil {
				errs = append(errs, err)
			}
		}
	}

	batch := make([]Document, len(docs))
	for i, d := range docs {
		batch[i] = Document{
			ID: d.ID, Source: d.Source, Title: d.Title, Date: d.Date, Text: d.Text,
		}
	}
	ids, ingestErr := t.p.Ingest(batch)
	if ingestErr != nil {
		errs = append(errs, ingestErr)
	}
	for i, id := range ids {
		if cerr := ctx.Err(); cerr != nil {
			// Deadline mid-batch: the rest are stored (acked) but not
			// yet mined — queue the debt instead of dropping it.
			t.pendingMine = append(t.pendingMine, ids[i:]...)
			errs = append(errs, fmt.Errorf(
				"webfountain: serving mine deferred for %d of %d docs: %w",
				len(ids)-i, len(ids), cerr))
			break
		}
		fs, err := t.mineDoc(id, batch[i].Text, batch[i].Date)
		facts = append(facts, fs...)
		if err != nil {
			errs = append(errs, err)
		}
	}
	// Publish even an empty successful batch: the corpus changed, so
	// cached responses keyed on the old generation must re-render. A
	// batch that stored nothing and failed changed nothing — skipping
	// its publish keeps the generation meaningful across recovery
	// (recovery replays documents, not failed attempts).
	if len(ids) > 0 || len(errs) == 0 {
		t.agg.Apply(facts)
		t.batches++
		if t.cfg.CheckpointDir != "" && t.cfg.CheckpointEvery > 0 &&
			t.batches >= t.cfg.CheckpointEvery {
			// Best-effort: a failed checkpoint must not fail an acked
			// ingest; the error counter records it and the cadence
			// retries on the next batch.
			t.checkpointLocked() //nolint:errcheck
		}
	}
	return ids, len(facts), errors.Join(errs...)
}

// mineDoc mines one stored document into the sentiment index, records
// it behind the watermark, annotates the entity (recording an
// annotation debt when the store refuses) and returns the dated facts
// for the aggregate publish.
func (t *ServingTier) mineDoc(id, text, date string) ([]serve.Fact, error) {
	mined := t.m.MineDocument(id, text)
	t.mined[id] = struct{}{}
	if len(mined) == 0 {
		return nil, nil
	}
	if _, err := t.p.internalStore().Annotate(id, annotationsOf(mined)); err != nil {
		t.pendingAnn[id] = struct{}{}
		return datedFacts(mined, date), fmt.Errorf("webfountain: serving annotate %s: %w", id, err)
	}
	return datedFacts(mined, date), nil
}

// annotationsOf converts mined facts to the store annotations the
// offline trend miner consumes.
func annotationsOf(facts []SubjectSentiment) []store.Annotation {
	anns := make([]store.Annotation, 0, len(facts))
	for _, f := range facts {
		anns = append(anns, store.Annotation{
			Miner:    MinerName,
			Type:     "polarity",
			Key:      f.Subject,
			Value:    f.Polarity.String(),
			Sentence: f.Sentence,
		})
	}
	return anns
}

// datedFacts converts one document's mined facts to aggregate facts,
// all carrying the document's publication date.
func datedFacts(facts []SubjectSentiment, date string) []serve.Fact {
	out := make([]serve.Fact, 0, len(facts))
	for _, f := range facts {
		out = append(out, serve.Fact{
			Subject:  f.Subject,
			Feature:  f.Feature,
			Date:     date,
			Positive: f.Polarity == Positive,
		})
	}
	return out
}

// parsePolarity inverts Polarity.String.
func parsePolarity(s string) int {
	switch s {
	case "+":
		return int(Positive)
	case "-":
		return int(Negative)
	}
	return int(Neutral)
}

// sortedSet returns a set's keys, sorted.
func sortedSet(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
