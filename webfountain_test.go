package webfountain

import (
	"strings"
	"testing"
)

func TestPlatformIngestAndSearch(t *testing.T) {
	p := NewPlatform(PlatformConfig{})
	ids, err := p.Ingest([]Document{
		{Title: "A", Source: "review", Text: "The NR70 takes excellent pictures."},
		{ID: "custom", Title: "B", Source: "web", Text: "The battery life is short."},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[1] != "custom" || ids[0] == "" {
		t.Fatalf("ids = %v", ids)
	}
	if p.NumEntities() != 2 {
		t.Errorf("NumEntities = %d", p.NumEntities())
	}
	doc, ok := p.Entity("custom")
	if !ok || doc.Title != "B" {
		t.Errorf("Entity = %+v, %v", doc, ok)
	}
	if got := p.SearchAll("excellent", "pictures"); len(got) != 1 || got[0] != ids[0] {
		t.Errorf("SearchAll = %v", got)
	}
	if got := p.SearchPhrase("battery", "life"); len(got) != 1 || got[0] != "custom" {
		t.Errorf("SearchPhrase = %v", got)
	}
}

func TestMinerAdHocTextEntityMode(t *testing.T) {
	m, err := NewSentimentMiner(MinerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	facts := m.AnalyzeText("The NR70 takes excellent pictures. The CLIE disappointed every reviewer.")
	bysubj := map[string]Polarity{}
	for _, f := range facts {
		bysubj[f.Subject] = f.Polarity
	}
	if bysubj["NR70"] != Positive {
		t.Errorf("NR70 = %v (%+v)", bysubj["NR70"], facts)
	}
	if bysubj["CLIE"] != Negative {
		t.Errorf("CLIE = %v (%+v)", bysubj["CLIE"], facts)
	}
}

func TestMinerPredefinedSubjectsMode(t *testing.T) {
	m, err := NewSentimentMiner(MinerConfig{
		Subjects: []Subject{
			{Canonical: "NR70"},
			{Canonical: "T series", Terms: []string{"T series", "T series CLIEs"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	facts := m.AnalyzeText("Unlike the T series CLIEs, the NR70 does not require an adapter.")
	bysubj := map[string]Polarity{}
	for _, f := range facts {
		bysubj[f.Subject] = f.Polarity
	}
	if bysubj["nr70"] != Positive {
		t.Errorf("nr70 = %v (%+v)", bysubj["nr70"], facts)
	}
	if bysubj["t series"] != Negative {
		t.Errorf("t series = %v (%+v)", bysubj["t series"], facts)
	}
}

func TestMinerDisambiguationFiltersOffTopicSpots(t *testing.T) {
	m, err := NewSentimentMiner(MinerConfig{
		Subjects: []Subject{{
			Canonical: "SUN",
			OnTopic:   []string{"server", "java", "solaris", "workstation"},
			OffTopic:  []string{"sunday", "sunshine", "beach", "sky"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Off-topic use of SUN: beautiful weather, not the company.
	facts := m.AnalyzeText("The SUN was gorgeous over the beach on sunday under a clear sky.")
	if len(facts) != 0 {
		t.Errorf("off-topic SUN produced facts: %+v", facts)
	}
	// On-topic use.
	facts = m.AnalyzeText("The SUN server line is excellent, and its solaris and java workstation business grew.")
	found := false
	for _, f := range facts {
		if f.Subject == "sun" && f.Polarity == Positive {
			found = true
		}
	}
	if !found {
		t.Errorf("on-topic SUN missed: %+v", facts)
	}
}

func TestMinerRunBuildsIndexAndAnnotations(t *testing.T) {
	p := NewPlatform(PlatformConfig{Shards: 4})
	_, err := p.Ingest([]Document{
		{ID: "d1", Text: "The Aurora album is gorgeous. Critics praised Aurora."},
		{ID: "d2", Text: "The Tempest fails to impress. Tempest sounded bland."},
		{ID: "d3", Text: "Nothing notable happened today."},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSentimentMiner(MinerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	facts, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) == 0 {
		t.Fatal("no facts extracted")
	}
	pos, neg := m.Counts("Aurora")
	if pos < 1 || neg != 0 {
		t.Errorf("Aurora counts = %d/%d (%+v)", pos, neg, m.Query("Aurora"))
	}
	pos, neg = m.Counts("Tempest")
	if neg < 1 {
		t.Errorf("Tempest counts = %d/%d", pos, neg)
	}
	if subs := m.Subjects(); len(subs) < 2 {
		t.Errorf("Subjects = %v", subs)
	}
	// Facts are sorted by (DocID, Sentence, Subject).
	for i := 1; i < len(facts); i++ {
		a, b := facts[i-1], facts[i]
		if a.DocID > b.DocID {
			t.Fatalf("facts unsorted: %+v before %+v", a, b)
		}
	}
	// Query returns snippets.
	entries := m.Query("aurora")
	if len(entries) == 0 || entries[0].Snippet == "" {
		t.Errorf("Query = %+v", entries)
	}
}

func TestMinerExtraResources(t *testing.T) {
	m, err := NewSentimentMiner(MinerConfig{
		ExtraLexicon:  strings.NewReader(`"zorptastic" JJ +`),
		ExtraPatterns: strings.NewReader("radiate CP SP"),
	})
	if err != nil {
		t.Fatal(err)
	}
	facts := m.AnalyzeText("The Aurora is zorptastic.")
	if len(facts) == 0 || facts[0].Polarity != Positive {
		t.Errorf("extra lexicon unused: %+v", facts)
	}
}

func TestMinerExtraResourceErrors(t *testing.T) {
	if _, err := NewSentimentMiner(MinerConfig{ExtraLexicon: strings.NewReader("broken")}); err == nil {
		t.Error("bad lexicon should fail")
	}
	if _, err := NewSentimentMiner(MinerConfig{ExtraPatterns: strings.NewReader("a b")}); err == nil {
		t.Error("bad patterns should fail")
	}
}

func TestMinerContextWindowFallback(t *testing.T) {
	m, err := NewSentimentMiner(MinerConfig{
		Subjects:      []Subject{{Canonical: "NR70"}},
		ContextWindow: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The focus sentence with the spot is neutral; the neighbour carries
	// the sentiment under the same head noun.
	facts := m.AnalyzeText("The NR70 shipped in April. The NR70 takes gorgeous pictures.")
	if len(facts) < 2 {
		t.Errorf("window fallback inactive: %+v", facts)
	}
}

func TestExtractFeaturesFacade(t *testing.T) {
	on := []string{
		"The battery life is excellent. The zoom works well.",
		"The battery life disappointed me. The zoom is responsive.",
		"The zoom shines. The battery life lasts all day.",
		"The battery life is short. The zoom is superb.",
	}
	off := []string{
		"The weather was nice. We walked along the shore.",
		"The meeting ran long. The agenda was packed.",
		"The weather turned cold. The traffic was terrible.",
	}
	feats := ExtractFeatures(on, off, FeatureConfig{Confidence: 0.95})
	if len(feats) == 0 {
		t.Fatal("no features")
	}
	names := map[string]bool{}
	for _, f := range feats {
		names[f.Term] = true
		if f.Score <= 0 {
			t.Errorf("non-positive score: %+v", f)
		}
	}
	if !names["battery life"] || !names["zoom"] {
		t.Errorf("features = %+v", feats)
	}
}

func TestPolarityReexport(t *testing.T) {
	if Positive.String() != "+" || Negative.String() != "-" || Neutral.String() != "0" {
		t.Error("polarity re-export broken")
	}
}

func TestPlatformSnapshotRestore(t *testing.T) {
	p := NewPlatform(PlatformConfig{Shards: 4})
	if _, err := p.Ingest([]Document{
		{ID: "a", Text: "The NR70 takes excellent pictures.", Date: "2004-02-01"},
		{ID: "b", Text: "The battery life is short.", Links: []string{"a"}},
	}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := p.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewPlatform(PlatformConfig{Shards: 2})
	n, err := fresh.Restore(strings.NewReader(buf.String()))
	if err != nil || n != 2 {
		t.Fatalf("restored %d, %v", n, err)
	}
	// Restored documents are searchable (re-indexed).
	if got := fresh.SearchPhrase("battery", "life"); len(got) != 1 || got[0] != "b" {
		t.Errorf("search after restore = %v", got)
	}
	doc, ok := fresh.Entity("b")
	if !ok || len(doc.Links) != 1 || doc.Links[0] != "a" {
		t.Errorf("entity after restore = %+v", doc)
	}
	if _, err := fresh.Restore(strings.NewReader("<broken")); err == nil {
		t.Error("bad snapshot should fail")
	}
}

func TestPlatformDelete(t *testing.T) {
	p := NewPlatform(PlatformConfig{Shards: 2})
	if _, err := p.Ingest([]Document{{ID: "x", Text: "unique snowflake words"}}); err != nil {
		t.Fatal(err)
	}
	p.Delete("x")
	if _, ok := p.Entity("x"); ok {
		t.Error("entity survives delete")
	}
	if got := p.SearchAll("snowflake"); len(got) != 0 {
		t.Errorf("index survives delete: %v", got)
	}
	p.Delete("missing") // no-op
}
