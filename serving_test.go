package webfountain

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"webfountain/internal/corpus"
	"webfountain/internal/serve"
)

// newServingFixture ingests a generated corpus, runs the batch miner
// and wraps the result in a serving tier.
func newServingFixture(t *testing.T, docs int) (*ServingTier, *Platform, *SentimentMiner) {
	t.Helper()
	generated := corpus.PharmaWeb(3, docs)
	batch := make([]Document, len(generated))
	for i := range generated {
		batch[i] = Document{
			ID: generated[i].ID, Source: generated[i].Source,
			Title: generated[i].Title, Date: generated[i].Date,
			Text: generated[i].Text(),
		}
	}
	p := NewPlatform(PlatformConfig{})
	if _, err := p.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	m, err := NewSentimentMiner(MinerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	facts, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return NewServingTier(p, m, facts), p, m
}

// TestServingTierSeededFromRun: the tier's materialized view must agree
// with the sentiment index the batch run built — same subjects, same
// counts — so the first query is served from the view with no scan.
func TestServingTierSeededFromRun(t *testing.T) {
	tier, _, m := newServingFixture(t, 30)
	v := tier.View()
	if v.Generation() != 1 {
		t.Fatalf("seed generation = %d", v.Generation())
	}
	subjects := m.Subjects()
	if len(subjects) == 0 {
		t.Fatal("no mined subjects")
	}
	if got := v.Subjects(); !reflect.DeepEqual(got, subjects) {
		t.Fatalf("view subjects %v != index subjects %v", got, subjects)
	}
	for _, s := range subjects {
		pos, neg := m.Counts(s)
		if c := v.Counts(s); c.Positive != pos || c.Negative != neg {
			t.Errorf("%s: view counts %+v != index counts (%d, %d)", s, c, pos, neg)
		}
	}
}

// TestServingTierOnlineMatchesOffline: ingesting the same corpus one
// batch at a time through the live tier must materialize exactly the
// aggregates a batch run would have produced — the online maintenance
// path is the offline computation, incrementalized.
func TestServingTierOnlineMatchesOffline(t *testing.T) {
	const docs = 30
	offline, _, _ := newServingFixture(t, docs)

	generated := corpus.PharmaWeb(3, docs)
	p := NewPlatform(PlatformConfig{})
	m, err := NewSentimentMiner(MinerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	online := NewServingTier(p, m, nil)
	for i := range generated {
		_, _, err := online.Ingest(context.Background(), []serve.Doc{{
			ID: generated[i].ID, Source: generated[i].Source,
			Title: generated[i].Title, Date: generated[i].Date,
			Text: generated[i].Text(),
		}})
		if err != nil {
			t.Fatal(err)
		}
	}

	ov, nv := offline.View(), online.View()
	if !reflect.DeepEqual(ov.Subjects(), nv.Subjects()) {
		t.Fatalf("subjects differ: offline %v online %v", ov.Subjects(), nv.Subjects())
	}
	if ov.Totals() != nv.Totals() {
		t.Fatalf("totals differ: offline %+v online %+v", ov.Totals(), nv.Totals())
	}
	for _, s := range ov.Subjects() {
		if ov.Counts(s) != nv.Counts(s) {
			t.Errorf("%s counts differ: offline %+v online %+v", s, ov.Counts(s), nv.Counts(s))
		}
		if !reflect.DeepEqual(ov.Series(s), nv.Series(s)) {
			t.Errorf("%s series differ:\noffline %+v\nonline  %+v", s, ov.Series(s), nv.Series(s))
		}
		if !reflect.DeepEqual(ov.Aspects(s), nv.Aspects(s)) {
			t.Errorf("%s aspects differ", s)
		}
	}
}

// TestServingTierMaterializedSeriesMatchesTrendMiner: the online
// annotations written at ingest must feed the offline trend miner the
// same data the materialized view serves — the scan path and the
// aggregate path agree, they just pay wildly different query costs.
func TestServingTierMaterializedSeriesMatchesTrendMiner(t *testing.T) {
	const docs = 30
	generated := corpus.PharmaWeb(3, docs)
	p := NewPlatform(PlatformConfig{})
	m, err := NewSentimentMiner(MinerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tier := NewServingTier(p, m, nil)
	for i := range generated {
		if _, _, err := tier.Ingest(context.Background(), []serve.Doc{{
			ID: generated[i].ID, Date: generated[i].Date, Text: generated[i].Text(),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	v := tier.View()
	checked := 0
	for _, s := range v.Subjects() {
		series, _, ok := p.SentimentTrend(s)
		if !ok && len(v.Series(s)) < 2 {
			continue // not enough data for the trend miner to report
		}
		checked++
		mat := v.Series(s)
		if len(series) != len(mat) {
			t.Fatalf("%s: trend miner %d buckets, view %d", s, len(series), len(mat))
		}
		for i := range series {
			if series[i].Month != mat[i].Month ||
				series[i].Positive != mat[i].Positive ||
				series[i].Negative != mat[i].Negative {
				t.Fatalf("%s bucket %d: trend %+v view %+v", s, i, series[i], mat[i])
			}
		}
	}
	if checked == 0 {
		t.Fatal("no subject had trend data to cross-check")
	}
}

// TestServingTierIngestFreshness: after Ingest returns, the new batch's
// facts are visible — generation bumped, subject present, entries
// served — proving a post-ingest query is never staler than one batch.
func TestServingTierIngestFreshness(t *testing.T) {
	tier, _, m := newServingFixture(t, 10)
	for i := 0; i < 5; i++ {
		subject := fmt.Sprintf("ZX%d00", i+1) // a fresh model name per batch
		text := fmt.Sprintf("The %s takes excellent pictures. The %s is disappointing in low light.",
			subject, subject)
		before := tier.View().Generation()
		ids, facts, err := tier.Ingest(context.Background(), []serve.Doc{{
			Title: subject, Date: fmt.Sprintf("2004-%02d-10", i+1), Text: text,
		}})
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 1 {
			t.Fatalf("batch %d ids = %v", i, ids)
		}
		if facts == 0 {
			t.Fatalf("batch %d mined no facts", i)
		}
		v := tier.View()
		if v.Generation() != before+1 {
			t.Fatalf("batch %d generation %d -> %d", i, before, v.Generation())
		}
		c := v.Counts(subject)
		if c.Total() == 0 {
			t.Fatalf("batch %d: subject %s not aggregated after ack", i, subject)
		}
		if len(tier.Entries(context.Background(), subject)) == 0 {
			t.Fatalf("batch %d: no entries for %s after ack", i, subject)
		}
		if pos, neg := m.Counts(subject); pos != c.Positive || neg != c.Negative {
			t.Fatalf("batch %d: view %+v != index (%d, %d)", i, c, pos, neg)
		}
		if len(v.Series(subject)) == 0 {
			t.Fatalf("batch %d: no time bucket for dated doc", i)
		}
	}
}

// TestServingTierConcurrentReadsDuringIngest hammers lock-free readers
// while batches land, under -race: every observed snapshot must be
// internally coherent and generations must never go backwards.
func TestServingTierConcurrentReadsDuringIngest(t *testing.T) {
	tier, _, _ := newServingFixture(t, 10)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := tier.View()
				if v.Generation() < lastGen {
					t.Errorf("generation went backwards: %d -> %d", lastGen, v.Generation())
					return
				}
				lastGen = v.Generation()
				sum := serve.Counts{}
				for _, s := range v.Subjects() {
					c := v.Counts(s)
					sum.Positive += c.Positive
					sum.Negative += c.Negative
				}
				if sum != v.Totals() {
					t.Errorf("torn snapshot: %+v != %+v", sum, v.Totals())
					return
				}
				tier.Entries(context.Background(), "medicure")
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if _, _, err := tier.Ingest(context.Background(), []serve.Doc{{
			Date: "2004-06-15",
			Text: fmt.Sprintf("The QX%d10 takes excellent pictures.", i),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
