package webfountain

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"webfountain/internal/chunk"
	"webfountain/internal/cluster"
	"webfountain/internal/disambig"
	"webfountain/internal/index"
	"webfountain/internal/lexicon"
	"webfountain/internal/metrics"
	"webfountain/internal/ne"
	"webfountain/internal/patterns"
	"webfountain/internal/pos"
	"webfountain/internal/sentiment"
	"webfountain/internal/spotter"
	"webfountain/internal/store"
	"webfountain/internal/tokenize"
)

// Per-stage latency histograms of the mining pipeline, resolved once.
// Mode 2 (named entities) exercises every stage separately; mode 1
// (predefined subjects) folds POS tagging and chunking into the
// sentiment stage, because its analyzer tags and chunks internally per
// subject context.
var (
	stageTokenize  = metrics.Default().Stage(metrics.StageTokenize)
	stagePOS       = metrics.Default().Stage(metrics.StagePOS)
	stageChunk     = metrics.Default().Stage(metrics.StageChunk)
	stageSpot      = metrics.Default().Stage(metrics.StageSpot)
	stageDisambig  = metrics.Default().Stage(metrics.StageDisambig)
	stageSentiment = metrics.Default().Stage(metrics.StageSentiment)
	minedDocs      = metrics.Default().Counter("miner.docs")
	minedFacts     = metrics.Default().Counter("miner.facts")
	docPipelineNs  = metrics.Default().Histogram("pipeline.doc.ns")
)

// Polarity is a sentiment orientation as reported by the miner.
type Polarity = lexicon.Polarity

// Polarity values.
const (
	Neutral  = lexicon.Neutral
	Positive = lexicon.Positive
	Negative = lexicon.Negative
)

// Subject describes one subject of interest for the predefined-subjects
// mode: a synonym set plus optional disambiguation resources.
type Subject struct {
	// ID identifies the subject; defaults to a lower-cased Canonical.
	ID string
	// Canonical is the display name.
	Canonical string
	// Terms are the surface variants to spot. Defaults to {Canonical}.
	Terms []string
	// OnTopic and OffTopic feed the disambiguator; when both are empty
	// every spot of the subject is accepted.
	OnTopic  []string
	OffTopic []string
}

// AnalyzerOptions re-exports the ablation switches of the core analyzer.
type AnalyzerOptions = sentiment.Options

// MinerConfig configures a SentimentMiner.
type MinerConfig struct {
	// Subjects enables the predefined-subjects mode. Leave empty for the
	// query-time mode driven by the named entity spotter.
	Subjects []Subject
	// ExtraLexicon optionally supplies additional sentiment lexicon
	// entries in the paper's "<term> <POS> <polarity>" format.
	ExtraLexicon io.Reader
	// ExtraPatterns optionally supplies additional predicate patterns in
	// the paper's "<predicate> <category> <target>" format.
	ExtraPatterns io.Reader
	// ContextWindow is the number of sentences on each side of a spot
	// included in its sentiment context (default 0: the sentence alone).
	ContextWindow int
	// Options ablate parts of the algorithm; the zero value is the full
	// algorithm.
	Options AnalyzerOptions
}

// SubjectSentiment is one extracted (subject, sentiment) fact.
type SubjectSentiment struct {
	// Subject is the subject the sentiment is about (synonym-set ID in
	// the predefined mode, the entity surface form otherwise).
	Subject string
	// Polarity is the extracted sentiment, never Neutral.
	Polarity Polarity
	// DocID locates the document ("" for ad-hoc text analysis).
	DocID string
	// Sentence is the sentence index within the document.
	Sentence int
	// Snippet is the sentiment-bearing sentence, quoted verbatim from
	// the source text.
	Snippet string
	// Pattern names the sentiment pattern that fired, for tracing.
	Pattern string
	// Feature is the target phrase the sentiment was directed at
	// (determiners stripped) — the feature-level dimension of the
	// paper's aggregates ("battery life" vs the camera itself). Empty
	// when the analyzer did not resolve a target phrase.
	Feature string
}

// SentimentMiner implements the paper's miner in both operational modes.
// It is safe for concurrent use once constructed.
type SentimentMiner struct {
	cfg      MinerConfig
	tagger   *pos.Tagger
	tk       *tokenize.Tokenizer
	analyzer *sentiment.Analyzer
	spot     *spotter.Spotter // nil without predefined subjects
	disamb   map[string]*disambig.Disambiguator
	nespot   *ne.Spotter
	sidx     *index.SentimentIndex
	arenas   sync.Pool // of *pipelineArena
}

// pipelineArena owns one in-flight document's scratch buffers across
// every pipeline stage: tokenize → split → spot → disambiguate → tag →
// chunk → analyze. Each miner worker checks one out per document and all
// stage outputs are carved from it, so in steady state a document's trip
// through the pipeline allocates only the facts it extracts.
//
// The reuse contract: a buffer's contents are valid until the arena
// starts the next document. Stages therefore always finish consuming a
// buffer before the stage that owns it runs again.
type pipelineArena struct {
	tokens []tokenize.Token    // whole-document token stream
	sents  []tokenize.Sentence // subslice views over tokens
	spots  []spotter.Spot      // raw spotter output, one sentence at a time
	keep   []spotter.Spot      // maximal() survivors
	seen   map[string]bool     // per-sentence subject dedup
	one    [1]spotter.Spot     // disambiguator's single-spot argument
	ents   []ne.Entity         // mode 2: named entities of one sentence
	hits   []sentiment.Assignment
	sa     sentiment.Scratch // mode 1: per-spot tag→chunk→analyze buffers

	// Mode 2 drives the stages itself, so it owns the stage buffers
	// directly instead of going through the sentiment scratch.
	tagged  []pos.TaggedToken
	ck      chunk.Chunker
	cs      chunk.Scratch
	assigns []sentiment.Assignment
}

func (m *SentimentMiner) arena() *pipelineArena {
	return m.arenas.Get().(*pipelineArena)
}

// NewSentimentMiner builds a miner. It fails only when ExtraLexicon or
// ExtraPatterns contain malformed entries; a zero config always succeeds.
func NewSentimentMiner(cfg MinerConfig) (*SentimentMiner, error) {
	// Without extra entries the embedded resources are immutable, so every
	// miner shares the process-wide compiled copies instead of rebuilding
	// its own maps and automata.
	lex := lexicon.Shared()
	if cfg.ExtraLexicon != nil {
		lex = lexicon.Default()
		if err := lex.Load(cfg.ExtraLexicon); err != nil {
			return nil, fmt.Errorf("webfountain: extra lexicon: %w", err)
		}
	}
	db := patterns.Shared()
	if cfg.ExtraPatterns != nil {
		db = patterns.Default()
		if err := db.Load(cfg.ExtraPatterns); err != nil {
			return nil, fmt.Errorf("webfountain: extra patterns: %w", err)
		}
	}
	m := &SentimentMiner{
		cfg:      cfg,
		tagger:   pos.NewTagger(),
		tk:       tokenize.New(),
		analyzer: sentiment.NewWithOptions(lex, db, cfg.Options),
		nespot:   ne.New(),
		sidx:     index.NewSentimentIndex(),
		disamb:   map[string]*disambig.Disambiguator{},
	}
	m.arenas.New = func() any { return &pipelineArena{seen: map[string]bool{}} }
	if len(cfg.Subjects) > 0 {
		sets := make([]spotter.SynonymSet, 0, len(cfg.Subjects))
		for _, s := range cfg.Subjects {
			id := s.ID
			if id == "" {
				id = strings.ToLower(s.Canonical)
			}
			terms := s.Terms
			if len(terms) == 0 {
				terms = []string{s.Canonical}
			}
			sets = append(sets, spotter.SynonymSet{ID: id, Canonical: s.Canonical, Terms: terms})
			if len(s.OnTopic) > 0 || len(s.OffTopic) > 0 {
				m.disamb[id] = disambig.New(disambig.Config{
					OnTopic:  s.OnTopic,
					OffTopic: s.OffTopic,
				})
			}
		}
		m.spot = spotter.New(sets)
	}
	return m, nil
}

// AnalyzeText runs the miner over a single text outside any platform. In
// the predefined-subjects mode it reports sentiment per subject spot; in
// the query-time mode it reports sentiment for named entities and for
// whatever phrase each sentiment associates with.
func (m *SentimentMiner) AnalyzeText(text string) []SubjectSentiment {
	return m.analyzeEntity("", text)
}

// analyzeEntity extracts the (subject, sentiment) facts of one document,
// stamping the trip through the pipeline stages into the registry. The
// document is tokenized exactly once; sentences are subslice views over
// the arena's token buffer, shared by every downstream stage.
func (m *SentimentMiner) analyzeEntity(docID, text string) []SubjectSentiment {
	a := m.arena()
	defer m.arenas.Put(a)
	doc := docPipelineNs.Start()
	tok := stageTokenize.Start()
	a.tokens = m.tk.AppendTokens(a.tokens[:0], text)
	a.sents = m.tk.AppendSentences(a.sents[:0], a.tokens)
	tok.End()
	var out []SubjectSentiment
	if m.spot != nil {
		out = m.mineWithSubjects(a, docID, text)
	} else {
		out = m.mineEntities(a, docID, text)
	}
	doc.End()
	minedDocs.Inc()
	minedFacts.Add(int64(len(out)))
	return out
}

// mineWithSubjects is mode 1: spot subjects, disambiguate, build a
// sentiment context per spot and analyze it.
func (m *SentimentMiner) mineWithSubjects(a *pipelineArena, docID, text string) []SubjectSentiment {
	var out []SubjectSentiment
	// Sentences partition the document token stream, so a running offset
	// turns sentence-local token indices into document-level ones for the
	// disambiguator's local window.
	offset := 0
	for _, s := range a.sents {
		sentOffset := offset
		offset += len(s.Tokens)
		sspan := stageSpot.Start()
		a.spots = m.spot.AppendSpots(a.spots[:0], s.Tokens, -1)
		spotter.Sort(a.spots)
		a.keep = maximalInto(a.keep[:0], a.spots)
		sspan.End()
		clear(a.seen)
		for _, sp := range a.keep {
			if a.seen[sp.SetID] {
				continue
			}
			a.seen[sp.SetID] = true
			if d, ok := m.disamb[sp.SetID]; ok {
				dspan := stageDisambig.Start()
				a.one[0] = spotter.Spot{
					SetID: sp.SetID, Term: sp.Term,
					Start: sentOffset + sp.Start, End: sentOffset + sp.End,
				}
				kept := d.Filter(a.tokens, a.one[:])
				dspan.End()
				if len(kept) == 0 {
					continue
				}
			}
			span := stageSentiment.Start()
			ctx := sentiment.BuildContext(a.sents, s.Index, m.cfg.ContextWindow, sp.Start, sp.End)
			hits, ok := m.analyzer.SubjectSentimentInto(&a.sa, m.tagger, ctx)
			span.End()
			if !ok {
				continue
			}
			for _, h := range hits {
				out = append(out, SubjectSentiment{
					Subject:  sp.SetID,
					Polarity: h.Polarity,
					DocID:    docID,
					Sentence: s.Index,
					Snippet:  text[s.Start:s.End], // verbatim span: no render
					Pattern:  h.Pattern,
					Feature:  h.Target,
				})
			}
		}
	}
	return out
}

// mineEntities is mode 2's analysis half: named entities become subjects;
// every sentiment-bearing sentence contributes (entity, polarity) facts.
func (m *SentimentMiner) mineEntities(a *pipelineArena, docID, text string) []SubjectSentiment {
	var out []SubjectSentiment
	for _, s := range a.sents {
		sspan := stageSpot.Start()
		a.ents = m.nespot.AppendEntities(a.ents[:0], s.Tokens, -1)
		sspan.End()
		if len(a.ents) == 0 {
			continue
		}
		pspan := stagePOS.Start()
		a.tagged = m.tagger.AppendTags(a.tagged[:0], s.Tokens)
		pspan.End()
		cspan := stageChunk.Start()
		clauses := a.ck.ClausesInto(&a.cs, a.tagged)
		cspan.End()
		aspan := stageSentiment.Start()
		a.assigns = m.analyzer.AppendAssignments(a.assigns[:0], clauses)
		aspan.End()
		assignments := a.assigns
		if len(assignments) == 0 {
			continue
		}
		for _, e := range a.ents {
			a.hits = sentiment.AppendForSpan(a.hits[:0], assignments, e.Start, e.End)
			for _, h := range a.hits {
				out = append(out, SubjectSentiment{
					Subject:  e.Text,
					Polarity: h.Polarity,
					DocID:    docID,
					Sentence: s.Index,
					Snippet:  text[s.Start:s.End], // verbatim span: no render
					Pattern:  h.Pattern,
					Feature:  h.Target,
				})
			}
		}
	}
	return out
}

// maximalInto drops spots contained in longer spots (longest-match rule),
// appending the survivors to dst. dst must not alias spots.
func maximalInto(dst, spots []spotter.Spot) []spotter.Spot {
	for i, s := range spots {
		contained := false
		for j, t := range spots {
			if i != j && t.Start <= s.Start && s.End <= t.End && t.End-t.Start > s.End-s.Start {
				contained = true
				break
			}
		}
		if !contained {
			dst = append(dst, s)
		}
	}
	return dst
}

// MinerName is the annotation name the sentiment miner writes.
const MinerName = "sentiment"

// Run deploys the miner over every entity of the platform in parallel,
// annotating entities with their (subject, sentiment) facts and building
// the sentiment index for query-time lookups. It returns the extracted
// facts sorted by (DocID, Sentence, Subject).
func (m *SentimentMiner) Run(p *Platform) ([]SubjectSentiment, error) {
	var mu struct {
		facts []SubjectSentiment
	}
	collect := make(chan []SubjectSentiment, 64)
	done := make(chan struct{})
	go func() {
		for fs := range collect {
			mu.facts = append(mu.facts, fs...)
		}
		close(done)
	}()

	miner := cluster.MinerFunc{
		MinerName: MinerName,
		Fn: func(e *store.Entity) ([]store.Annotation, error) {
			facts := m.analyzeEntity(e.ID, e.Text)
			if len(facts) == 0 {
				return nil, nil
			}
			collect <- facts
			anns := make([]store.Annotation, 0, len(facts))
			for _, f := range facts {
				anns = append(anns, store.Annotation{
					Type:     "polarity",
					Key:      f.Subject,
					Value:    f.Polarity.String(),
					Sentence: f.Sentence,
				})
			}
			return anns, nil
		},
	}
	_, err := p.internalCluster().RunEntityMiner(miner)
	close(collect)
	<-done
	if err != nil {
		return nil, err
	}

	// Facts arrive via channel from parallel shard workers, so the
	// pre-sort order varies run to run. The sort key must therefore be
	// total — same subject twice in one sentence still ties on
	// (DocID, Sentence, Subject) — and the sort stable, or the report
	// order differs between serial and parallel mining.
	sort.SliceStable(mu.facts, func(i, j int) bool {
		a, b := mu.facts[i], mu.facts[j]
		if a.DocID != b.DocID {
			return a.DocID < b.DocID
		}
		if a.Sentence != b.Sentence {
			return a.Sentence < b.Sentence
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Polarity != b.Polarity {
			return a.Polarity > b.Polarity
		}
		if a.Pattern != b.Pattern {
			return a.Pattern < b.Pattern
		}
		if a.Feature != b.Feature {
			return a.Feature < b.Feature
		}
		return a.Snippet < b.Snippet
	})
	for _, f := range mu.facts {
		m.sidx.Add(index.SentimentEntry{
			DocID:    f.DocID,
			Sentence: f.Sentence,
			Subject:  f.Subject,
			Polarity: int(f.Polarity),
			Snippet:  f.Snippet,
			Feature:  f.Feature,
		})
	}
	return mu.facts, nil
}

// MineDocument runs the pipeline over one already-ingested document and
// folds the extracted facts into the query-time sentiment index — the
// online counterpart of Run for the live serving tier, where documents
// are mined as they arrive instead of in a corpus-wide batch. Safe for
// concurrent use.
func (m *SentimentMiner) MineDocument(docID, text string) []SubjectSentiment {
	facts := m.analyzeEntity(docID, text)
	for _, f := range facts {
		m.sidx.Add(index.SentimentEntry{
			DocID:    f.DocID,
			Sentence: f.Sentence,
			Subject:  f.Subject,
			Polarity: int(f.Polarity),
			Snippet:  f.Snippet,
			Feature:  f.Feature,
		})
	}
	return facts
}

// restoreSentiment re-adds one previously-mined entry to the query-time
// sentiment index without re-running the pipeline — the serving tier's
// checkpoint-restore path, where the entries come from a verified
// checkpoint instead of the analyzer.
func (m *SentimentMiner) restoreSentiment(e index.SentimentEntry) { m.sidx.Add(e) }

// Query serves a query-time sentiment lookup from the index built by Run.
func (m *SentimentMiner) Query(subject string) []SubjectSentiment {
	entries := m.sidx.Query(subject)
	out := make([]SubjectSentiment, 0, len(entries))
	for _, e := range entries {
		out = append(out, SubjectSentiment{
			Subject:  e.Subject,
			Polarity: Polarity(e.Polarity),
			DocID:    e.DocID,
			Sentence: e.Sentence,
			Snippet:  e.Snippet,
			Feature:  e.Feature,
		})
	}
	return out
}

// Counts aggregates a subject's indexed sentiment.
func (m *SentimentMiner) Counts(subject string) (positive, negative int) {
	c := m.sidx.Counts(subject)
	return c.Positive, c.Negative
}

// Subjects returns every subject with indexed sentiment, sorted.
func (m *SentimentMiner) Subjects() []string { return m.sidx.Subjects() }
