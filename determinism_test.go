package webfountain

import (
	"reflect"
	"testing"

	"webfountain/internal/corpus"
)

// Mining fans out over parallel workers, so facts arrive on the result
// channel in scheduler order; the final sort must impose a total order
// or two runs over the same corpus report facts in different orders.
// This guards the sort.SliceStable + full-key ordering in Run.
func TestMinerRunDeterministicOrder(t *testing.T) {
	gen := corpus.DigitalCameraReviews(3, 30)
	docs := make([]Document, len(gen))
	for i := range gen {
		docs[i] = Document{
			ID: gen[i].ID, Source: gen[i].Source,
			Title: gen[i].Title, Text: gen[i].Text(),
		}
	}
	p := NewPlatform(PlatformConfig{IngestWorkers: 4})
	if _, err := p.Ingest(docs); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []struct {
		name string
		cfg  MinerConfig
	}{
		{"entities", MinerConfig{}},
		{"subjects", MinerConfig{Subjects: []Subject{
			{Canonical: "NR70"}, {Canonical: "battery"}, {Canonical: "CLIE"},
		}}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			var prev []SubjectSentiment
			for run := 0; run < 3; run++ {
				m, err := NewSentimentMiner(mode.cfg)
				if err != nil {
					t.Fatal(err)
				}
				facts, err := m.Run(p)
				if err != nil {
					t.Fatal(err)
				}
				if len(facts) == 0 {
					t.Fatal("no facts mined; the corpus should produce some")
				}
				if run > 0 && !reflect.DeepEqual(prev, facts) {
					t.Fatalf("run %d produced a different fact ordering than run %d", run, run-1)
				}
				prev = facts
			}
		})
	}
}
