package webfountain

// Quorum-consistency chaos archetypes: where chaos_distributed_test.go
// proves the availability-mode (W=1) recovery machinery, these plans
// prove the guarantees quorum writes buy:
//
//  1. partition-during-quorum-write — with W=2, a partition that
//     isolates the FIRST-acking replica of a write loses nothing: the
//     ack itself forced a second copy, so every acked document reads
//     back during the cut and converges cleanly after heal;
//  2. two-router-split — two peered routers forked onto divergent
//     rings (same epoch, different membership) resolve the fork
//     deterministically through the topology control service, and no
//     write acked on either side is lost;
//  3. anti-entropy-after-rejoin — a crashed replica that comes back
//     WITHOUT a ring-level rejoin is converged by the background
//     divergence sweep alone: missed writes shipped, acked deletes
//     enforced by tombstone, ring epoch untouched.
//
// Every archetype replays twice per pinned seed and must converge to
// byte-identical fingerprints, exactly like the original archetypes.

import (
	"fmt"
	"testing"
	"time"

	"webfountain/internal/faults"
	"webfountain/internal/router"
	"webfountain/internal/store"
	"webfountain/internal/vinci"
)

// runQuorumPartitionChaos: the acceptance archetype. All writes run at
// W=2/R=2; a batch of documents whose first-acking replica is the
// victim is acked immediately before the victim is partitioned away.
func runQuorumPartitionChaos(t *testing.T, plan faults.ClusterPlan, logf func(string, ...any)) (string, uint64) {
	t.Helper()
	dc := newDistChaosQuorum(t, plan, 2, 2)
	defer dc.dp.Close()
	logf("%s", plan)

	for i := 0; i < plan.WarmWrites; i++ {
		id := fmt.Sprintf("wf-%03d", i)
		dc.write(t, id, fmt.Sprintf("warm body of %s", id))
	}

	// The quorum fan dials a key's replica set in placement order, so
	// keys whose primary is the victim are the ones whose first ack the
	// partition is about to isolate.
	ring := dc.dp.Router().Ring()
	var victimFirst []string
	for i := 0; len(victimFirst) < 8 && i < 1000; i++ {
		id := fmt.Sprintf("wf-q-%03d", i)
		if ring.ReplicaSet(id)[0] != plan.Victim {
			continue
		}
		dc.write(t, id, fmt.Sprintf("quorum-acked just before the cut: %s", id))
		victimFirst = append(victimFirst, id)
	}
	if len(victimFirst) < 8 {
		t.Fatalf("no keys with primary %s in 1000 candidates", plan.Victim)
	}

	dc.dp.Router().Quiesce()
	gate := dc.gates[plan.Victim]
	gate.Partition()

	// Invariant: nothing acked is lost — the W=2 ack guaranteed a copy
	// outside the partition, so every read must succeed DURING the cut,
	// not just after heal.
	for _, id := range dc.live() {
		if d := dc.read(t, id); d.Text != dc.acked[id] {
			t.Fatalf("acked %s read back different text during partition", id)
		}
	}

	// A W=2 write that cannot reach quorum must be refused, never
	// half-applied and acked.
	refusedID := ""
	for i := 0; i < 1000 && refusedID == ""; i++ {
		id := fmt.Sprintf("wf-refuse-%03d", i)
		if ring.Owns(plan.Victim, id) {
			refusedID = id
		}
	}
	if _, err := dc.dp.Ingest([]Document{{ID: refusedID, Source: "chaos", Text: "must not ack"}}); err == nil {
		t.Fatalf("W=2 write %s acked with replica %s partitioned", refusedID, plan.Victim)
	}

	// Keys that do not place on the victim keep full quorum service.
	for i, wrote := 0, 0; wrote < 5 && i < 1000; i++ {
		id := fmt.Sprintf("wf-avail-%03d", i)
		if ring.Owns(plan.Victim, id) {
			i++
			continue
		}
		dc.write(t, id, fmt.Sprintf("written during the cut: %s", id))
		wrote++
		i++
	}

	time.Sleep(plan.Downtime)
	gate.Heal()
	// The refused write may have left an unacked single copy on the live
	// owner; a real client that saw the error deletes (or retries) it.
	// Deleting keeps the converged entity count predictable.
	dc.delete(t, refusedID)
	dc.rejoinUntilConverged(t, plan.Victim)
	dc.checkConverged(t, fmt.Sprintf("seed %d quorum-partition", plan.Seed))
	logf("seed=%d archetype=%s: %d victim-first acked writes survived isolation of their first acker",
		plan.Seed, plan.Archetype, len(victimFirst))

	digest, epoch := dc.digest()
	logf("seed=%d archetype=%s: final epoch=%d digest=%s injected=%v",
		plan.Seed, plan.Archetype, epoch, digest[:16], dc.in.Stats())
	return digest, epoch
}

// runRouterSplitChaos: two routers over the same storage nodes fork
// onto different rings at the same epoch — A bumps the epoch in place
// (rejoin), B drains the victim — then peer sync must resolve the fork
// the same way on both, and every write acked before the fork must be
// readable through both routers afterwards.
func runRouterSplitChaos(t *testing.T, plan faults.ClusterPlan, logf func(string, ...any)) (string, uint64) {
	t.Helper()
	dc := newDistChaosQuorum(t, plan, 2, 1)
	defer dc.dp.Close()
	logf("%s", plan)
	rA := dc.dp.Router()

	// Router B routes over the SAME gated node transports with the same
	// placement config, the way a second wfrouter process would.
	dialable := map[string]vinci.Client{}
	var handles []router.NodeHandle
	for _, name := range dc.dp.NodeNames() {
		c := dc.dp.nodes[name].c
		dialable["addr:"+name] = c
		handles = append(handles, router.NodeHandle{Name: name, Client: c, Addr: "addr:" + name})
	}
	rB := router.New(handles, router.Options{
		Replicas:    2,
		Seed:        plan.Seed,
		WriteQuorum: 2,
		Dial: func(addr string) (vinci.Client, error) {
			c, ok := dialable[addr]
			if !ok {
				return nil, fmt.Errorf("no route to %s", addr)
			}
			return c, nil
		},
	})
	defer rB.Close()

	for i := 0; i < plan.WarmWrites; i++ {
		id := fmt.Sprintf("wf-%03d", i)
		dc.write(t, id, fmt.Sprintf("warm body of %s", id))
	}
	if owned := dc.ownedBy(plan.Victim); len(owned) >= 2 {
		dc.delete(t, owned[0])
		dc.delete(t, owned[1])
	}

	// The fork, driven while the routers cannot see each other (no peer
	// links yet — the split): A bumps the epoch on unchanged membership,
	// B drains the victim. Same epoch, different digests.
	survivor := ""
	for _, n := range dc.dp.NodeNames() {
		if n != plan.Victim {
			survivor = n
			break
		}
	}
	retry := func(what string, op func() error) {
		t.Helper()
		for attempt := 0; attempt < 100; attempt++ {
			if err := op(); err == nil {
				return
			}
		}
		t.Fatalf("%s: no success in 100 attempts", what)
	}
	retry("rejoin on A", func() error { return rA.Rejoin(survivor) })
	retry("drain on B", func() error { return rB.Drain(plan.Victim) })
	specA, specB := rA.RingSpec(), rB.RingSpec()
	if specA.Epoch != specB.Epoch || specA.Digest == specB.Digest {
		t.Fatalf("fork not established: A epoch=%d digest=%s, B epoch=%d digest=%s",
			specA.Epoch, specA.Digest[:12], specB.Epoch, specB.Digest[:12])
	}
	logf("seed=%d archetype=%s: fork at epoch %d (A=%s B=%s)",
		plan.Seed, plan.Archetype, specA.Epoch, specA.Digest[:12], specB.Digest[:12])

	// Split heals: the routers discover each other and exchange rings.
	// One sync pass must converge both sides to the same ring — the
	// deterministic winner of the equal-epoch tie-break.
	regA := vinci.NewRegistry()
	rA.RegisterTopology(regA)
	regB := vinci.NewRegistry()
	rB.RegisterTopology(regB)
	rA.AddPeer("router-b", vinci.NewLocalClient(regB))
	rB.AddPeer("router-a", vinci.NewLocalClient(regA))
	// The platform's in-process handles carry no dialable address, so
	// pre-wire B with every node handle: if A's full-membership ring wins
	// the tie-break, B must reattach the member it drained.
	for _, h := range handles {
		rB.AddHandle(h)
	}
	retry("peer sync on A", rA.SyncPeersOnce)
	retry("peer sync on B", rB.SyncPeersOnce)
	specA, specB = rA.RingSpec(), rB.RingSpec()
	if specA.Epoch != specB.Epoch || specA.Digest != specB.Digest {
		t.Fatalf("fork did not resolve: A epoch=%d digest=%s, B epoch=%d digest=%s",
			specA.Epoch, specA.Digest[:12], specB.Epoch, specB.Digest[:12])
	}
	if rA.Stale() || rB.Stale() {
		t.Fatalf("converged routers still stale: A=%v B=%v", rA.Stale(), rB.Stale())
	}

	// Whatever the winning ring, the anti-entropy sweep restores full
	// replication under it (a drain that lost shifts copies around; a
	// rejoin that lost leaves the drained placement authoritative).
	converged := false
	for attempt := 0; attempt < 100 && !converged; attempt++ {
		rep, err := rA.AntiEntropyOnce()
		converged = err == nil && rep == 0 && attempt > 0
	}
	if !converged {
		t.Fatal("anti-entropy never went quiet after fork resolution")
	}

	// No acked write lost, from either router's point of view.
	finalRing := rA.Ring()
	for _, id := range dc.live() {
		d := dc.read(t, id)
		if d.Text != dc.acked[id] {
			t.Fatalf("acked %s read back different text via A after split", id)
		}
		e, err := rB.Get(id)
		if err != nil || e.Text != dc.acked[id] {
			t.Fatalf("acked %s unreadable via B after split: %v", id, err)
		}
		for _, n := range finalRing.Members() {
			if finalRing.Owns(n, id) && !dc.dp.NodeHas(n, id) {
				t.Fatalf("%s missing from final-ring owner %s after split", id, n)
			}
		}
	}
	for id := range dc.deleted {
		if _, err := rB.Get(id); err == nil {
			t.Fatalf("deleted %s resurrected via B after split", id)
		}
	}

	// Both routers accept writes again at full quorum.
	postID := "wf-post-split"
	if err := rB.Put(&store.Entity{ID: postID, Source: "chaos", Text: "written via B after heal"}); err != nil {
		t.Fatalf("post-split write via B refused: %v", err)
	}
	rB.Quiesce()
	dc.write(t, postID, "written via B after heal") // drives + records it acked via A

	rB.Quiesce()
	digest, epoch := dc.digest()
	logf("seed=%d archetype=%s: final epoch=%d digest=%s injected=%v",
		plan.Seed, plan.Archetype, epoch, digest[:16], dc.in.Stats())
	return digest, epoch
}

// runAntiEntropyChaos: availability-mode (W=1) writes diverge while a
// replica is down; the background sweep alone must converge the
// cluster after the replica returns — no ring-level rejoin, no epoch
// bump.
func runAntiEntropyChaos(t *testing.T, plan faults.ClusterPlan, logf func(string, ...any)) (string, uint64) {
	t.Helper()
	dc := newDistChaosQuorum(t, plan, 1, 1)
	defer dc.dp.Close()
	logf("%s", plan)
	r := dc.dp.Router()

	for i := 0; i < plan.WarmWrites; i++ {
		id := fmt.Sprintf("wf-%03d", i)
		dc.write(t, id, fmt.Sprintf("warm body of %s", id))
	}

	r.Quiesce()
	gate := dc.gates[plan.Victim]
	gate.Kill()
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("wf-miss-%02d", i)
		dc.write(t, id, fmt.Sprintf("missed by %s: %s", plan.Victim, id))
	}
	if owned := dc.ownedBy(plan.Victim); len(owned) >= 2 {
		dc.delete(t, owned[0])
		dc.delete(t, owned[1])
	}

	time.Sleep(plan.Downtime)
	gate.Revive()
	epochBefore := r.Ring().Epoch()

	// Sweep until a full pass finds nothing to repair. The victim is
	// never ring-rejoined: convergence is the sweep's job alone.
	repaired, quiet := 0, false
	for attempt := 0; attempt < 100 && !quiet; attempt++ {
		rep, err := r.AntiEntropyOnce()
		repaired += rep
		quiet = err == nil && rep == 0 && attempt > 0
	}
	if !quiet {
		t.Fatal("anti-entropy never went quiet after the victim returned")
	}
	if repaired == 0 {
		t.Fatalf("victim %s missed writes but the sweep repaired nothing", plan.Victim)
	}
	if got := r.Ring().Epoch(); got != epochBefore {
		t.Fatalf("anti-entropy moved the ring epoch: %d -> %d", epochBefore, got)
	}
	dc.checkConverged(t, fmt.Sprintf("seed %d anti-entropy", plan.Seed))
	logf("seed=%d archetype=%s: sweep repaired %d divergent entries, epoch pinned at %d",
		plan.Seed, plan.Archetype, repaired, epochBefore)

	// On a clean network the digest fast path makes the idle sweep one
	// call per node.
	if plan.Net == (faults.Config{}) {
		for _, g := range dc.gates {
			g.ResetCounts()
		}
		if rep, err := r.AntiEntropyOnce(); err != nil || rep != 0 {
			t.Fatalf("idle sweep not idle: repaired=%d err=%v", rep, err)
		}
		for name, g := range dc.gates {
			if delivered, _ := g.Counts(); delivered != 1 {
				t.Fatalf("idle sweep made %d calls to %s, want 1 (digest only)", delivered, name)
			}
		}
	}

	digest, epoch := dc.digest()
	logf("seed=%d archetype=%s: final epoch=%d digest=%s injected=%v",
		plan.Seed, plan.Archetype, epoch, digest[:16], dc.in.Stats())
	return digest, epoch
}

// TestChaosQuorumPartition: the PR's acceptance invariant — with W=2 a
// partition isolating the first-acking replica loses no acked write,
// during the cut or after heal.
func TestChaosQuorumPartition(t *testing.T) {
	runDistArchetype(t, faults.ArchetypeQuorumPartition, runQuorumPartitionChaos)
}

// TestChaosRouterSplit: peered routers forked onto divergent rings
// resolve deterministically and lose nothing acked on either side.
func TestChaosRouterSplit(t *testing.T) {
	runDistArchetype(t, faults.ArchetypeRouterSplit, runRouterSplitChaos)
}

// TestChaosAntiEntropyAfterRejoin: a revived replica converges through
// the background sweep alone, with the ring epoch untouched.
func TestChaosAntiEntropyAfterRejoin(t *testing.T) {
	runDistArchetype(t, faults.ArchetypeAntiEntropyRejoin, runAntiEntropyChaos)
}
