package webfountain

import (
	"fmt"
	"sync"
	"testing"
)

// backendDocs is the shared corpus for the conformance suite.
func backendDocs() []Document {
	return []Document{
		{Title: "camera review", Source: "review", Text: "The NR70 takes excellent pictures and great video."},
		{Title: "phone news", Source: "news", Text: "The new phone has excellent battery life."},
		{Title: "board post", Source: "bboard", Text: "Terrible service, the battery died fast."},
		{ID: "doc-custom-1", Title: "custom", Source: "web", Text: "excellent pictures of the phone"},
	}
}

// conformance runs the Backend contract against any implementation —
// the single-process Platform and the replicated DistributedPlatform
// must be indistinguishable through this interface.
func conformance(t *testing.T, name string, open func(t *testing.T) Backend) {
	t.Run(name+"/ingest-and-get", func(t *testing.T) {
		b := open(t)
		defer b.Close()
		ids, err := b.Ingest(backendDocs())
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 4 || ids[3] != "doc-custom-1" {
			t.Fatalf("ids = %v", ids)
		}
		for i, id := range ids {
			if id == "" {
				t.Fatalf("doc %d got empty ID", i)
			}
			d, ok := b.Entity(id)
			if !ok || d.ID != id {
				t.Fatalf("entity %s: ok=%v d=%+v", id, ok, d)
			}
		}
		if n := b.NumEntities(); n != 4 {
			t.Fatalf("NumEntities = %d, want 4", n)
		}
		if _, ok := b.Entity("doc-does-not-exist"); ok {
			t.Fatal("phantom entity")
		}
	})
	t.Run(name+"/search", func(t *testing.T) {
		b := open(t)
		defer b.Close()
		ids, err := b.Ingest(backendDocs())
		if err != nil {
			t.Fatal(err)
		}
		all := b.SearchAll("excellent")
		if len(all) != 3 {
			t.Fatalf("SearchAll(excellent) = %v, want 3 docs", all)
		}
		both := b.SearchAll("excellent", "battery")
		if len(both) != 1 || both[0] != ids[1] {
			t.Fatalf("SearchAll(excellent,battery) = %v, want [%s]", both, ids[1])
		}
		phrase := b.SearchPhrase("excellent", "pictures")
		if len(phrase) != 2 {
			t.Fatalf("SearchPhrase = %v, want 2 docs", phrase)
		}
	})
	t.Run(name+"/delete", func(t *testing.T) {
		b := open(t)
		defer b.Close()
		ids, err := b.Ingest(backendDocs())
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Delete(ids[0]); err != nil {
			t.Fatal(err)
		}
		if _, ok := b.Entity(ids[0]); ok {
			t.Fatal("deleted entity still readable")
		}
		if n := b.NumEntities(); n != 3 {
			t.Fatalf("NumEntities after delete = %d, want 3", n)
		}
		if got := b.SearchAll("video"); len(got) != 0 {
			t.Fatalf("postings survived delete: %v", got)
		}
		if err := b.Delete("doc-never-existed"); err != nil {
			t.Fatalf("deleting unknown ID must be a no-op, got %v", err)
		}
	})
	t.Run(name+"/healthy", func(t *testing.T) {
		b := open(t)
		defer b.Close()
		if deg, reason := b.Degraded(); deg {
			t.Fatalf("fresh backend degraded: %s", reason)
		}
	})
	t.Run(name+"/scale", func(t *testing.T) {
		b := open(t)
		defer b.Close()
		docs := make([]Document, 120)
		for i := range docs {
			docs[i] = Document{Text: fmt.Sprintf("bulk document %d about shard%d", i, i%7)}
		}
		ids, err := b.Ingest(docs)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 120 || b.NumEntities() != 120 {
			t.Fatalf("ids=%d entities=%d", len(ids), b.NumEntities())
		}
		if got := b.SearchAll("shard3"); len(got) == 0 {
			t.Fatal("bulk corpus not searchable")
		}
	})
}

func TestBackendConformanceLocal(t *testing.T) {
	conformance(t, "local", func(t *testing.T) Backend {
		return NewPlatform(PlatformConfig{})
	})
}

func TestBackendConformanceLocalDurable(t *testing.T) {
	conformance(t, "local-durable", func(t *testing.T) Backend {
		p, err := OpenPlatform(PlatformConfig{DataDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		return p
	})
}

func TestBackendConformanceDistributed(t *testing.T) {
	conformance(t, "distributed", func(t *testing.T) Backend {
		dp, err := NewDistributedPlatform(DistributedConfig{Nodes: 3, Replicas: 2, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return dp
	})
}

func TestBackendConformanceDistributedDurable(t *testing.T) {
	conformance(t, "distributed-durable", func(t *testing.T) Backend {
		dp, err := NewDistributedPlatform(DistributedConfig{
			Nodes: 3, Replicas: 2, Seed: 42, DataDir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return dp
	})
}

// TestDistributedReplicationInvariant pins the replica-placement
// contract: every document lands on exactly R nodes, and those nodes
// are its ring-assigned replica set.
func TestDistributedReplicationInvariant(t *testing.T) {
	dp, err := NewDistributedPlatform(DistributedConfig{Nodes: 3, Replicas: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	docs := make([]Document, 60)
	for i := range docs {
		docs[i] = Document{Text: fmt.Sprintf("replicated doc %d", i)}
	}
	ids, err := dp.Ingest(docs)
	if err != nil {
		t.Fatal(err)
	}
	ring := dp.Router().Ring()
	for _, id := range ids {
		holders := 0
		for _, name := range dp.NodeNames() {
			if dp.NodeHas(name, id) {
				if !ring.Owns(name, id) {
					t.Fatalf("%s held by non-owner %s", id, name)
				}
				holders++
			}
		}
		if holders != 2 {
			t.Fatalf("%s on %d nodes, want R=2", id, holders)
		}
	}
}

// TestDistributedAddNodeRebalances drives the online-handoff path
// through the Backend-level API.
func TestDistributedAddNodeRebalances(t *testing.T) {
	dp, err := NewDistributedPlatform(DistributedConfig{Nodes: 2, Replicas: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	docs := make([]Document, 50)
	for i := range docs {
		docs[i] = Document{Text: fmt.Sprintf("pre-join doc %d", i)}
	}
	ids, err := dp.Ingest(docs)
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.AddNode("node-3"); err != nil {
		t.Fatal(err)
	}
	if got := dp.Router().Ring().Epoch(); got != 1 {
		t.Fatalf("epoch after join = %d, want 1", got)
	}
	ring := dp.Router().Ring()
	for _, id := range ids {
		if ring.Owns("node-3", id) && !dp.NodeHas("node-3", id) {
			t.Fatalf("joined node missing owned %s", id)
		}
		if d, ok := dp.Entity(id); !ok || d.ID != id {
			t.Fatalf("entity %s unreadable after rebalance", id)
		}
	}
	if n := dp.NumEntities(); n != 50 {
		t.Fatalf("NumEntities after join = %d, want 50", n)
	}
}

// TestDistributedMembershipConcurrentWithReads: AddNode rebuilds the
// node map while health checks and invariant probes read it — the
// exact overlap online handoff creates. Run under -race this pins the
// membership maps' synchronization.
func TestDistributedMembershipConcurrentWithReads(t *testing.T) {
	dp, err := NewDistributedPlatform(DistributedConfig{Nodes: 3, Replicas: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	docs := make([]Document, 40)
	for i := range docs {
		docs[i] = Document{Text: fmt.Sprintf("pre-join doc %d", i)}
	}
	ids, err := dp.Ingest(docs)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, n := range dp.NodeNames() {
					dp.NodeHas(n, ids[0])
					dp.NodeEntityCount(n)
				}
				dp.Degraded()
				dp.Entity(ids[len(ids)-1])
			}
		}()
	}
	if err := dp.AddNode("node-4"); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	names := dp.NodeNames()
	if names[len(names)-1] != "node-4" {
		t.Fatalf("node-4 missing from %v", names)
	}
	if n, ok := dp.NodeEntityCount("node-4"); !ok || n == 0 {
		t.Fatalf("joined node holds %d entities (ok=%v)", n, ok)
	}
}
