// Package webfountain is a from-scratch reproduction of "Sentiment Mining
// in WebFountain" (Yi & Niblack, ICDE 2005): a text-analytics platform in
// the style of WebFountain together with the paper's NLP-based sentiment
// miner, which determines the sentiment expressed about each individual
// subject reference instead of classifying whole documents.
//
// The package is the public facade over the substrates in internal/:
//
//   - Platform: a sharded entity store, an inverted indexer and a
//     shared-nothing miner runtime (the WebFountain core).
//   - SentimentMiner: the paper's contribution, in both operational
//     modes — with a predefined set of subjects (spotting,
//     disambiguation, per-spot sentiment) and without (named-entity
//     spotting, offline analysis, a sentiment index serving queries).
//   - Feature extraction: the bBNP heuristic with likelihood-ratio
//     selection, for discovering the feature terms of a topic.
//
// A minimal session:
//
//	miner := webfountain.NewSentimentMiner(webfountain.MinerConfig{})
//	for _, s := range miner.AnalyzeText("The NR70 takes excellent pictures.") {
//		fmt.Printf("(%s, %s)\n", s.Subject, s.Polarity)
//	}
package webfountain

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"webfountain/internal/cluster"
	"webfountain/internal/index"
	"webfountain/internal/metrics"
	"webfountain/internal/store"
	"webfountain/internal/tokenize"
)

// Platform-level ingest metrics (the Platform.Ingest path; the
// acquisition layer in internal/ingest has its own counters).
var (
	platformIngestDocs  = metrics.Default().Counter("platform.ingest.docs")
	platformIngestBytes = metrics.Default().Counter("platform.ingest.bytes")
	platformIngestDocNs = metrics.Default().Histogram("platform.ingest.doc.ns")
)

// Document is a unit of ingested content.
type Document struct {
	// ID must be unique within the platform; empty IDs are assigned
	// automatically at ingestion.
	ID string
	// URL is the acquisition address, if any.
	URL string
	// Source classifies the channel: "web", "news", "review", "bboard".
	Source string
	// Title is the document title.
	Title string
	// Date is the publication date in YYYY-MM-DD form (optional; enables
	// trend analysis).
	Date string
	// Links are IDs of other documents this one links to (optional;
	// enables page ranking).
	Links []string
	// Text is the document body.
	Text string
}

// Platform is the text-analytics substrate: a sharded entity store, an
// inverted index over tokens and miner concepts, and a parallel miner
// runtime. It is safe for concurrent use.
type Platform struct {
	store   *store.Store
	cluster *cluster.Cluster
	index   *index.Index
	workers int
	nextID  atomic.Int64
}

// PlatformConfig tunes the platform. Zero values select sensible
// defaults.
type PlatformConfig struct {
	// Shards is the number of store shards (default 16).
	Shards int
	// Workers is the miner worker-pool size (default: one per shard,
	// capped at 8).
	Workers int
	// MinerRetries is the total number of attempts per entity when a
	// miner fails transiently (default 1: no retries).
	MinerRetries int
	// MinerBackoff is the base sleep between per-entity retries,
	// doubling per retry (default none).
	MinerBackoff time.Duration
	// EntityTimeout bounds one miner call on one entity (default none).
	EntityTimeout time.Duration
	// MinerErrorBudget trips a deployment's circuit breaker after this
	// many failed entities, skipping the rest (default 0: never trip).
	MinerErrorBudget int

	// DataDir, when set, makes the platform durable: every ingest,
	// delete and miner annotation is write-ahead-logged under this
	// directory and recovered by OpenPlatform after a crash. NewPlatform
	// ignores it — use OpenPlatform for a durable platform.
	DataDir string
	// SyncEvery syncs the write-ahead log after every Nth record
	// (default 1: every record). See store.Options.SyncEvery.
	SyncEvery int
	// CompactEvery, when positive, compacts the log into a checksummed
	// snapshot after that many records (default 0: manual only).
	CompactEvery int

	// IngestWorkers is the number of concurrent workers Ingest and index
	// rebuilds use to tokenize and index documents (default: GOMAXPROCS).
	// 1 selects the serial path.
	IngestWorkers int
	// IndexShards is the number of term-hashed inverted-index shards
	// (default 16). More shards admit more concurrent ingest workers.
	IndexShards int
	// GroupCommit coalesces concurrent durable writes into shared WAL
	// append+fsync batches: each write still returns only after its
	// record is durable, but one fsync covers a whole batch. Only
	// meaningful with DataDir; default off preserves the per-record
	// sync policy. See store.Options.GroupCommit.
	GroupCommit bool
	// GroupCommitWindow bounds how long the first writer of a batch
	// waits for more writers before committing (default 0: commit as
	// soon as the previous batch's fsync finishes).
	GroupCommitWindow time.Duration
}

// ConfigError reports a nonsensical PlatformConfig field value. Zero and
// negative tuning fields are not errors — they clamp to defaults — but a
// value that cannot mean anything (a negative sync cadence, group commit
// without a data directory) is surfaced instead of silently ignored.
type ConfigError struct {
	// Field names the offending PlatformConfig field.
	Field string
	// Value is the rejected value.
	Value any
	// Reason says why the value is nonsensical.
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("webfountain: config %s = %v: %s", e.Field, e.Value, e.Reason)
}

// maxShards bounds the store and index shard counts: beyond this the
// per-shard maps cost more than any contention they could relieve, and a
// runaway value is almost certainly a unit mistake.
const maxShards = 1 << 12

// Validate reports the first nonsensical configuration value as a
// *ConfigError. Zero and negative tuning fields (Shards, IngestWorkers,
// IndexShards, Workers) are valid — they select defaults — so Validate
// only rejects values no clamping rule can make sense of.
func (cfg PlatformConfig) Validate() error {
	if cfg.Shards > maxShards {
		return &ConfigError{Field: "Shards", Value: cfg.Shards, Reason: fmt.Sprintf("exceeds maximum %d", maxShards)}
	}
	if cfg.IndexShards > maxShards {
		return &ConfigError{Field: "IndexShards", Value: cfg.IndexShards, Reason: fmt.Sprintf("exceeds maximum %d", maxShards)}
	}
	if cfg.IngestWorkers > maxShards {
		return &ConfigError{Field: "IngestWorkers", Value: cfg.IngestWorkers, Reason: fmt.Sprintf("exceeds maximum %d", maxShards)}
	}
	if cfg.SyncEvery < 0 {
		return &ConfigError{Field: "SyncEvery", Value: cfg.SyncEvery, Reason: "negative sync cadence"}
	}
	if cfg.CompactEvery < 0 {
		return &ConfigError{Field: "CompactEvery", Value: cfg.CompactEvery, Reason: "negative compaction cadence"}
	}
	if cfg.MinerBackoff < 0 {
		return &ConfigError{Field: "MinerBackoff", Value: cfg.MinerBackoff, Reason: "negative backoff"}
	}
	if cfg.EntityTimeout < 0 {
		return &ConfigError{Field: "EntityTimeout", Value: cfg.EntityTimeout, Reason: "negative timeout"}
	}
	if cfg.GroupCommitWindow < 0 {
		return &ConfigError{Field: "GroupCommitWindow", Value: cfg.GroupCommitWindow, Reason: "negative window"}
	}
	if cfg.GroupCommit && cfg.DataDir == "" {
		return &ConfigError{Field: "GroupCommit", Value: true, Reason: "group commit needs DataDir (nothing to commit without a write-ahead log)"}
	}
	return nil
}

// normalized clamps zero and negative tuning fields to their defaults.
func (cfg PlatformConfig) normalized() PlatformConfig {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.IngestWorkers <= 0 {
		cfg.IngestWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.IndexShards <= 0 {
		cfg.IndexShards = 16
	}
	return cfg
}

// NewPlatform builds an empty in-memory platform. Zero or negative
// tuning fields clamp to defaults; use Validate to surface nonsensical
// configurations before construction (OpenPlatform does so itself).
func NewPlatform(cfg PlatformConfig) *Platform {
	cfg = cfg.normalized()
	return platformOver(store.New(cfg.Shards), cfg)
}

// OpenPlatform builds a durable platform rooted at cfg.DataDir: the
// entity store write-ahead-logs every mutation there, and opening an
// existing directory recovers the stored corpus (latest valid snapshot
// plus log replay) and rebuilds the inverted index from the recovered
// entities. Call Close to flush the log before exit.
func OpenPlatform(cfg PlatformConfig) (*Platform, error) {
	if cfg.DataDir == "" {
		return nil, &ConfigError{Field: "DataDir", Value: "", Reason: "OpenPlatform needs a data directory"}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	st, err := store.Open(cfg.DataDir, store.Options{
		Shards:            cfg.Shards,
		SyncEvery:         cfg.SyncEvery,
		CompactEvery:      cfg.CompactEvery,
		GroupCommit:       cfg.GroupCommit,
		GroupCommitWindow: cfg.GroupCommitWindow,
	})
	if err != nil {
		return nil, fmt.Errorf("webfountain: open platform: %w", err)
	}
	p := platformOver(st, cfg)
	p.reindex()
	return p, nil
}

// platformOver assembles the runtime around a store. The caller passes a
// normalized config; the clamps here are a second line of defense for
// direct internal callers.
func platformOver(st *store.Store, cfg PlatformConfig) *Platform {
	workers := cfg.IngestWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := cfg.IndexShards
	if shards <= 0 {
		shards = 16
	}
	return &Platform{
		store: st,
		cluster: cluster.NewWithConfig(st, cluster.Config{
			Workers: cfg.Workers,
			Retry: cluster.RetryPolicy{
				MaxAttempts: cfg.MinerRetries,
				Backoff:     cfg.MinerBackoff,
			},
			EntityTimeout: cfg.EntityTimeout,
			ErrorBudget:   cfg.MinerErrorBudget,
		}),
		index:   index.NewSharded(shards),
		workers: workers,
	}
}

// indexEntity tokenizes a document body and adds it to the inverted
// index — the one tokenize→words→Add path shared by Ingest, reindex and
// Restore, so every route into the index produces identical postings.
func (p *Platform) indexEntity(a *ingestArena, id, text string) {
	a.toks = a.tk.AppendTokens(a.toks[:0], text)
	a.words = a.words[:0]
	for i := range a.toks {
		a.words = append(a.words, a.toks[i].Text)
	}
	p.index.Add(id, a.words)
}

// ingestArena holds one ingest worker's reusable buffers: the tokenizer,
// its token output and the word slice handed to the index. Every worker
// owns its arena outright — no cross-worker pool to contend on — so the
// steady-state ingest path allocates nothing per document beyond what
// the index retains.
type ingestArena struct {
	tk    *tokenize.Tokenizer
	toks  []tokenize.Token
	words []string
}

func newIngestArena() *ingestArena { return &ingestArena{tk: tokenize.New()} }

// parseGeneratedID recognizes the platform's generated document IDs
// ("doc-" followed by digits only) and returns the counter value. A
// cheap manual parse: reindex calls it once per recovered entity, and
// fmt.Sscanf's reflection-driven scanning dominated recovery profiles.
func parseGeneratedID(id string) (int64, bool) {
	if len(id) < 5 || id[:4] != "doc-" {
		return 0, false
	}
	var n int64
	for i := 4; i < len(id); i++ {
		c := id[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, true
}

// reindex rebuilds the inverted index from the store's entities, exactly
// mirroring what Ingest indexes, so a recovered platform answers the
// same queries as one that never crashed. Store shards are rebuilt in
// parallel — each worker drains whole shards, the unit of parallelism
// the shared-nothing layout provides. It also advances the ID generator
// past every recovered generated ID so new ingests cannot collide with
// recovered documents.
func (p *Platform) reindex() {
	p.index.Reset()
	var maxGen atomic.Int64
	shards := p.store.NumShards()
	workers := p.workers
	if workers > shards {
		workers = shards
	}
	if workers < 1 {
		workers = 1
	}
	shardCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ia := newIngestArena()
			for si := range shardCh {
				_ = p.store.ForEachInShard(si, func(e *store.Entity) error {
					p.indexEntity(ia, e.ID, e.Text)
					if n, ok := parseGeneratedID(e.ID); ok {
						for {
							cur := maxGen.Load()
							if n <= cur || maxGen.CompareAndSwap(cur, n) {
								break
							}
						}
					}
					return nil
				})
			}
		}()
	}
	for si := 0; si < shards; si++ {
		shardCh <- si
	}
	close(shardCh)
	wg.Wait()
	p.nextID.Store(maxGen.Load())
}

// Close flushes the durable store's write-ahead log and releases it. It
// is a no-op on an in-memory platform.
func (p *Platform) Close() error { return p.store.Close() }

// Degraded reports whether the platform's store has entered degraded
// read-only mode (its write-ahead log failed) and why. Reads and queries
// keep working in that state; ingests, deletes and miner write-backs are
// rejected with store.ErrReadOnly.
func (p *Platform) Degraded() (bool, string) { return p.store.Degraded() }

// Compact folds the durable store's write-ahead log into a fresh
// checksummed snapshot, bounding recovery time. It errors on an
// in-memory platform.
func (p *Platform) Compact() error { return p.store.Compact() }

// Ingest stores documents and indexes their tokens. Documents without an
// ID receive a generated one, returned in the IDs slice in input order.
//
// With IngestWorkers > 1 the batch is processed by a bounded worker
// pool: each worker stores, tokenizes and indexes whole documents
// concurrently (the store and the index are both sharded, so workers
// rarely contend). The returned IDs are always in input order, and on
// failure the error wraps the earliest failing document with every
// earlier document ingested — exactly the serial contract, except that
// documents after the failing one may also have been stored before the
// pool drained.
func (p *Platform) Ingest(docs []Document) ([]string, error) {
	ids := make([]string, len(docs))
	for i := range docs {
		if docs[i].ID != "" {
			ids[i] = docs[i].ID
		} else {
			ids[i] = fmt.Sprintf("doc-%06d", p.nextID.Add(1))
		}
	}
	workers := p.workers
	if workers > len(docs) {
		workers = len(docs)
	}
	if workers <= 1 {
		ia := newIngestArena()
		for i := range docs {
			if err := p.ingestOne(ia, &docs[i], ids[i]); err != nil {
				return ids[:i], err
			}
		}
		return ids, nil
	}

	var (
		next    atomic.Int64 // work dispenser: next input index to claim
		aborted atomic.Bool
		mu      sync.Mutex
		errIdx  = -1
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ia := newIngestArena()
			for !aborted.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(docs) {
					return
				}
				if err := p.ingestOne(ia, &docs[i], ids[i]); err != nil {
					aborted.Store(true)
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstEr = i, err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if errIdx >= 0 {
		// Indices are claimed monotonically and every claimed document
		// runs to completion, so everything before the earliest failure
		// was ingested — the serial prefix guarantee.
		return ids[:errIdx], firstEr
	}
	return ids, nil
}

// ingestOne stores and indexes a single document under the given ID.
func (p *Platform) ingestOne(a *ingestArena, d *Document, id string) error {
	e := &store.Entity{
		ID:     id,
		URL:    d.URL,
		Source: d.Source,
		Title:  d.Title,
		Date:   d.Date,
		Text:   d.Text,
		Links:  append([]string(nil), d.Links...),
	}
	span := platformIngestDocNs.Start()
	if err := p.store.Put(e); err != nil {
		return fmt.Errorf("webfountain: ingest %s: %w", id, err)
	}
	p.indexEntity(a, id, d.Text)
	span.End()
	platformIngestDocs.Inc()
	platformIngestBytes.Add(int64(len(d.Text)))
	return nil
}

// NumEntities returns the number of stored documents.
func (p *Platform) NumEntities() int { return p.store.Len() }

// Entity returns a stored document by ID.
func (p *Platform) Entity(id string) (Document, bool) {
	e, ok := p.store.Get(id)
	if !ok {
		return Document{}, false
	}
	return Document{
		ID: e.ID, URL: e.URL, Source: e.Source, Title: e.Title,
		Date: e.Date, Links: append([]string(nil), e.Links...), Text: e.Text,
	}, true
}

// Delete removes a document from the platform: both the store entity and
// its index postings disappear. Deleting an unknown ID is a no-op. The
// error is non-nil only on a durable platform whose write-ahead log
// cannot be appended (degraded read-only mode).
func (p *Platform) Delete(id string) error {
	if err := p.store.Delete(id); err != nil {
		return err
	}
	p.index.Remove(id)
	return nil
}

// SearchAll returns the IDs of documents containing every given term.
func (p *Platform) SearchAll(terms ...string) []string {
	qs := make([]index.Query, len(terms))
	for i, t := range terms {
		qs[i] = index.Term(t)
	}
	return p.index.Search(index.And(qs...))
}

// SearchPhrase returns the IDs of documents containing the words
// consecutively.
func (p *Platform) SearchPhrase(words ...string) []string {
	return p.index.Search(index.Phrase(words...))
}

// Snapshot streams every stored document to w as XML, in deterministic
// order. The snapshot can be loaded into another platform with Restore.
func (p *Platform) Snapshot(w io.Writer) error {
	return p.store.Snapshot(w)
}

// Restore loads a snapshot produced by Snapshot, replacing same-ID
// documents and indexing the restored text. It returns the number of
// documents restored.
func (p *Platform) Restore(r io.Reader) (int, error) {
	staging := store.New(p.store.NumShards())
	n, err := staging.Restore(r)
	if err != nil {
		return n, fmt.Errorf("webfountain: restore: %w", err)
	}
	ia := newIngestArena()
	err = staging.ForEach(func(e *store.Entity) error {
		if putErr := p.store.Put(e); putErr != nil {
			return putErr
		}
		p.indexEntity(ia, e.ID, e.Text)
		return nil
	})
	return n, err
}

// internalStore exposes the store to sibling files of this package.
func (p *Platform) internalStore() *store.Store { return p.store }

// internalCluster exposes the miner runtime to sibling files.
func (p *Platform) internalCluster() *cluster.Cluster { return p.cluster }
