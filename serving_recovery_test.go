package webfountain

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"webfountain/internal/serve"
	"webfountain/internal/store"
)

// markerFailWAL fails any WAL append whose payload contains the marker
// — a content-addressed disk fault, so the failing document is chosen
// by the test, not by record framing details.
type markerFailWAL struct {
	store.WALFile
	marker []byte
}

func (w *markerFailWAL) Write(p []byte) (int, error) {
	if bytes.Contains(p, w.marker) {
		return 0, errors.New("injected disk failure")
	}
	return w.WALFile.Write(p)
}

// durableServingFixture opens a durable single-worker platform over dir
// (optionally with a WAL wrapper) plus a fresh miner and tier config.
func durableServingFixture(t *testing.T, dir string, wrap func(store.WALFile) store.WALFile, cfg ServingTierConfig) (*Platform, *SentimentMiner, *ServingTier, ServingRecovery) {
	t.Helper()
	st, err := store.Open(dir, store.Options{Shards: 4, WrapWAL: wrap})
	if err != nil {
		t.Fatal(err)
	}
	p := platformOver(st, PlatformConfig{IngestWorkers: 1}.normalized())
	p.reindex()
	m, err := NewSentimentMiner(MinerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tier, rec, err := RecoverServingTier(p, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, m, tier, rec
}

// TestServingTierIngestPartialFailurePrefix: a mid-batch store fault
// must leave the acked prefix fully served — stored, mined, published —
// while the failed suffix is absent everywhere, and every error along
// the way (the store refusal AND the degraded-store annotate refusals)
// is reported joined rather than first-wins.
func TestServingTierIngestPartialFailurePrefix(t *testing.T) {
	dir := t.TempDir()
	wrap := func(w store.WALFile) store.WALFile {
		return &markerFailWAL{WALFile: w, marker: []byte("KABOOM")}
	}
	_, m, tier, _ := durableServingFixture(t, dir, wrap, ServingTierConfig{})

	docs := []serve.Doc{
		{ID: "d1", Date: "2003-01-05", Text: "The NR70 takes excellent pictures."},
		{ID: "d2", Date: "2003-02-10", Text: "The CLIE disappointed every reviewer."},
		{ID: "d3", Date: "2003-03-15", Text: "The KABOOM takes excellent pictures."},
		{ID: "d4", Date: "2003-04-20", Text: "The ZV500 takes excellent pictures."},
	}
	ids, _, err := tier.Ingest(context.Background(), docs)
	if !reflect.DeepEqual(ids, []string{"d1", "d2"}) {
		t.Fatalf("acked ids %v, want the serial prefix [d1 d2]", ids)
	}
	if err == nil {
		t.Fatal("partial ingest reported no error")
	}
	// Satellite regression: the annotate errors must not be swallowed by
	// the ingest error (nor vice versa) — both legs of the join present.
	if msg := err.Error(); !strings.Contains(msg, "ingest d3") {
		t.Errorf("joined error lost the store failure: %v", err)
	} else if !strings.Contains(msg, "serving annotate d1") || !strings.Contains(msg, "serving annotate d2") {
		t.Errorf("joined error lost the annotate refusals: %v", err)
	}

	// Prefix is mined and published; suffix is absent from every surface.
	v := tier.View()
	if v.Generation() != 1 {
		t.Errorf("generation %d, want 1 (one published batch)", v.Generation())
	}
	if c := v.Counts("NR70"); c.Positive != 1 {
		t.Errorf("NR70 counts %+v, want the prefix fact published", c)
	}
	if c := v.Counts("CLIE"); c.Negative != 1 {
		t.Errorf("CLIE counts %+v, want the prefix fact published", c)
	}
	for _, ghost := range []string{"KABOOM", "ZV500"} {
		if c := v.Counts(ghost); c.Positive != 0 || c.Negative != 0 {
			t.Errorf("%s leaked into the aggregates: %+v", ghost, c)
		}
		if facts := m.Query(ghost); len(facts) != 0 {
			t.Errorf("%s leaked into the sentiment index: %d facts", ghost, len(facts))
		}
	}
	if len(m.Query("NR70")) != 1 || len(m.Query("CLIE")) != 1 {
		t.Error("prefix facts missing from the sentiment index")
	}
	// The degraded store refused the annotations — recorded as debt.
	if got := sortedSet(tier.pendingAnn); !reflect.DeepEqual(got, []string{"d1", "d2"}) {
		t.Errorf("annotation debt %v, want [d1 d2]", got)
	}
	preFP := v.Fingerprint()

	// Crash (no Close) and recover over a healthy disk: the cold repair
	// re-mines exactly the durable prefix and settles the annotation
	// debt now that the store accepts writes again.
	p2, _, tier2, rec := durableServingFixture(t, dir, nil, ServingTierConfig{})
	if rec.CheckpointLoaded || rec.RepairedDocs != 2 {
		t.Fatalf("recovery %+v, want cold repair of exactly the 2 acked docs", rec)
	}
	if got := tier2.View().Fingerprint(); got != preFP {
		t.Errorf("recovered aggregates diverge from the pre-crash prefix view")
	}
	for _, id := range []string{"d1", "d2"} {
		anns := 0
		if !p2.internalStore().View(id, func(e *store.Entity) { anns = len(e.AnnotationsBy(MinerName)) }) {
			t.Fatalf("acked doc %s missing from the recovered store", id)
		}
		if anns != 1 {
			t.Errorf("%s: %d sentiment annotations after settle, want exactly 1", id, anns)
		}
	}
	if len(tier2.pendingAnn) != 0 {
		t.Errorf("annotation debt not settled: %v", sortedSet(tier2.pendingAnn))
	}
	for _, ghost := range []string{"d3", "d4"} {
		if _, found := p2.Entity(ghost); found {
			t.Errorf("unacked doc %s resurrected by recovery", ghost)
		}
	}
}

// expireAfterCtx reports expiry after its Err budget is spent — the
// deterministic stand-in for a request deadline firing mid-batch.
type expireAfterCtx struct {
	context.Context
	allow int
}

func (c *expireAfterCtx) Err() error {
	if c.allow <= 0 {
		return context.DeadlineExceeded
	}
	c.allow--
	return nil
}

// TestServingTierDeadlineMidBatchDefersMineDebt: a deadline that
// expires mid-batch stops the mining but not the durability — the
// stored suffix becomes mine-debt that the next batch folds in.
func TestServingTierDeadlineMidBatchDefersMineDebt(t *testing.T) {
	p := NewPlatform(PlatformConfig{IngestWorkers: 1})
	m, err := NewSentimentMiner(MinerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tier := NewServingTier(p, m, nil)

	docs := []serve.Doc{
		{ID: "d1", Date: "2003-01-05", Text: "The NR70 takes excellent pictures."},
		{ID: "d2", Date: "2003-02-10", Text: "The CLIE disappointed every reviewer."},
		{ID: "d3", Date: "2003-03-15", Text: "The ZV500 takes excellent pictures."},
	}
	// Err budget 2: the pre-flight check and the first doc pass, the
	// deadline fires before the second doc mines.
	ids, _, err := tier.Ingest(&expireAfterCtx{Context: context.Background(), allow: 2}, docs)
	if len(ids) != 3 {
		t.Fatalf("acked %d ids, want all 3 (durability is not deadline-bound)", len(ids))
	}
	if err == nil || !strings.Contains(err.Error(), "mine deferred for 2 of 3") {
		t.Fatalf("error = %v, want a mine-deferred report for the suffix", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deferred error does not unwrap to DeadlineExceeded: %v", err)
	}
	v := tier.View()
	if c := v.Counts("NR70"); c.Positive != 1 {
		t.Errorf("mined prefix missing from aggregates: %+v", c)
	}
	if c := v.Counts("CLIE"); c.Negative != 0 {
		t.Errorf("deferred doc leaked into aggregates: %+v", c)
	}
	if got := append([]string(nil), tier.pendingMine...); !reflect.DeepEqual(got, []string{"d2", "d3"}) {
		t.Fatalf("mine debt %v, want [d2 d3]", got)
	}

	// The next batch drains the debt before its own docs, in one publish.
	genBefore := v.Generation()
	ids, _, err = tier.Ingest(context.Background(), []serve.Doc{
		{ID: "d4", Date: "2003-04-01", Text: "The QX310 takes excellent pictures."},
	})
	if err != nil || len(ids) != 1 {
		t.Fatalf("drain batch: ids=%v err=%v", ids, err)
	}
	v = tier.View()
	if v.Generation() != genBefore+1 {
		t.Errorf("generation %d, want %d (debt rides the batch publish)", v.Generation(), genBefore+1)
	}
	for subject, neg := range map[string]bool{"CLIE": true, "ZV500": false, "QX310": false} {
		c := v.Counts(subject)
		if neg && c.Negative != 1 || !neg && c.Positive != 1 {
			t.Errorf("%s not folded in after drain: %+v", subject, c)
		}
	}
	if len(tier.pendingMine) != 0 {
		t.Errorf("mine debt not drained: %v", tier.pendingMine)
	}
}

// TestServingTierCheckpointRestartRoundTrip: a graceful shutdown's
// checkpoint restores the tier byte-identically — same aggregates, same
// sentiment entries, same generation — with zero repair work.
func TestServingTierCheckpointRestartRoundTrip(t *testing.T) {
	dataDir, ckptDir := t.TempDir(), t.TempDir()
	cfg := ServingTierConfig{CheckpointDir: ckptDir, CheckpointEvery: 2}

	p1, m1, tier1, rec := durableServingFixture(t, dataDir, nil, cfg)
	if rec.CheckpointLoaded || rec.RepairedDocs != 0 {
		t.Fatalf("fresh boot recovery %+v, want empty", rec)
	}
	docs := []serve.Doc{
		{ID: "d1", Date: "2003-01-05", Text: "The NR70 takes excellent pictures."},
		{ID: "d2", Date: "2003-02-10", Text: "The CLIE disappointed every reviewer."},
		{ID: "d3", Date: "2003-03-15", Text: "The ZV500 takes excellent pictures. The ZV500 screen is disappointing."},
	}
	for _, d := range docs {
		if _, _, err := tier1.Ingest(context.Background(), []serve.Doc{d}); err != nil {
			t.Fatal(err)
		}
	}
	wantFP, wantGen := tier1.View().Fingerprint(), tier1.View().Generation()
	wantEntries := m1.sidx.All()
	if err := tier1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	_, m2, tier2, rec2 := durableServingFixture(t, dataDir, nil, cfg)
	if !rec2.CheckpointLoaded || rec2.Quarantined != 0 {
		t.Fatalf("restart recovery %+v, want a loaded checkpoint", rec2)
	}
	if rec2.RepairedDocs != 0 {
		t.Errorf("repaired %d docs after a graceful shutdown, want 0", rec2.RepairedDocs)
	}
	if rec2.CheckpointGen != wantGen {
		t.Errorf("checkpoint generation %d, want %d", rec2.CheckpointGen, wantGen)
	}
	v := tier2.View()
	if v.Generation() != wantGen {
		t.Errorf("restored generation %d, want %d", v.Generation(), wantGen)
	}
	if v.Fingerprint() != wantFP {
		t.Error("restored aggregates diverge from the shutdown state")
	}
	if got := m2.sidx.All(); !reflect.DeepEqual(got, wantEntries) {
		t.Errorf("restored sentiment entries diverge: %d vs %d", len(got), len(wantEntries))
	}
	if got := tier2.Entries(context.Background(), "ZV500"); len(got) != 2 {
		t.Errorf("ZV500 entries after restart: %d, want 2", len(got))
	}
}

// TestServingTierRecoverRepairsBeyondWatermark: documents the store
// acked durably but the tier never published (the crash window between
// Platform.Ingest and the aggregate publish) are repaired forward at
// boot — mined, annotated exactly once, generation strictly past the
// pre-crash value.
func TestServingTierRecoverRepairsBeyondWatermark(t *testing.T) {
	dataDir, ckptDir := t.TempDir(), t.TempDir()
	cfg := ServingTierConfig{CheckpointDir: ckptDir, CheckpointEvery: 1}

	p1, _, tier1, _ := durableServingFixture(t, dataDir, nil, cfg)
	if _, _, err := tier1.Ingest(context.Background(), []serve.Doc{
		{ID: "d1", Date: "2003-01-05", Text: "The NR70 takes excellent pictures."},
	}); err != nil {
		t.Fatal(err)
	}
	preGen := tier1.View().Generation()

	// The crash window: durable acks that never reached the tier.
	if _, err := p1.Ingest([]Document{
		{ID: "x1", Date: "2003-05-01", Text: "The QX310 takes excellent pictures."},
		{ID: "x2", Date: "2003-06-01", Text: "The QX320 disappointed every reviewer."},
	}); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no checkpoint of the new docs.

	p2, _, tier2, rec := durableServingFixture(t, dataDir, nil, cfg)
	if !rec.CheckpointLoaded {
		t.Fatalf("recovery %+v, want the batch checkpoint loaded", rec)
	}
	if rec.RepairedDocs != 2 {
		t.Fatalf("repaired %d docs, want exactly the 2 past the watermark", rec.RepairedDocs)
	}
	v := tier2.View()
	if v.Generation() <= preGen {
		t.Errorf("generation %d did not advance past pre-crash %d", v.Generation(), preGen)
	}
	if c := v.Counts("QX310"); c.Positive != 1 {
		t.Errorf("repaired doc x1 missing from aggregates: %+v", c)
	}
	if c := v.Counts("QX320"); c.Negative != 1 {
		t.Errorf("repaired doc x2 missing from aggregates: %+v", c)
	}
	for _, id := range []string{"d1", "x1", "x2"} {
		anns := 0
		if !p2.internalStore().View(id, func(e *store.Entity) { anns = len(e.AnnotationsBy(MinerName)) }) {
			t.Fatalf("doc %s missing from recovered store", id)
		}
		if anns != 1 {
			t.Errorf("%s: %d annotations, want exactly 1 (repair must not double-annotate)", id, anns)
		}
	}
	fp, gen := v.Fingerprint(), v.Generation()

	// A second crash straight after recovery: the post-repair checkpoint
	// already covers everything, so the next boot repairs nothing and
	// lands on the identical state.
	_, _, tier3, rec3 := durableServingFixture(t, dataDir, nil, cfg)
	if rec3.RepairedDocs != 0 {
		t.Errorf("second recovery repaired %d docs, want 0", rec3.RepairedDocs)
	}
	if got := tier3.View(); got.Fingerprint() != fp || got.Generation() != gen {
		t.Errorf("second recovery diverged: gen %d fp %s, want gen %d fp %s",
			got.Generation(), got.Fingerprint()[:8], gen, fp[:8])
	}
}
