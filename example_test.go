package webfountain_test

import (
	"fmt"

	"webfountain"
)

// The miner's ad-hoc path: named entities become subjects and each gets
// the sentiment expressed specifically about it.
func ExampleSentimentMiner_AnalyzeText() {
	miner, _ := webfountain.NewSentimentMiner(webfountain.MinerConfig{})
	text := "The NR70 takes excellent pictures. The CLIE disappointed every reviewer."
	for _, f := range miner.AnalyzeText(text) {
		fmt.Printf("(%s, %s)\n", f.Subject, f.Polarity)
	}
	// Output:
	// (NR70, +)
	// (CLIE, -)
}

// The predefined-subjects mode resolves the paper's flagship example: the
// unlike-phrase receives the opposite sentiment of the subject.
func ExampleSentimentMiner_AnalyzeText_contrast() {
	miner, _ := webfountain.NewSentimentMiner(webfountain.MinerConfig{
		Subjects: []webfountain.Subject{
			{Canonical: "NR70"},
			{Canonical: "T series CLIEs"},
		},
	})
	text := "Unlike the T series CLIEs, the NR70 does not require an add-on adapter."
	for _, f := range miner.AnalyzeText(text) {
		fmt.Printf("(%s, %s)\n", f.Subject, f.Polarity)
	}
	// Output:
	// (t series clies, -)
	// (nr70, +)
}

// Platform ingestion with index-backed search.
func ExamplePlatform_SearchPhrase() {
	p := webfountain.NewPlatform(webfountain.PlatformConfig{})
	p.Ingest([]webfountain.Document{
		{ID: "r1", Text: "The battery life is excellent."},
		{ID: "r2", Text: "The battery died overnight."},
	})
	fmt.Println(p.SearchPhrase("battery", "life"))
	// Output: [r1]
}

// Feature discovery with the paper's bBNP-L pipeline.
func ExampleExtractFeatures() {
	onTopic := []string{
		"The battery life is excellent. The zoom works well.",
		"The battery life disappointed me. The zoom is superb.",
		"The zoom shines. The battery life lasts all day.",
	}
	offTopic := []string{
		"The weather was nice today.",
		"The meeting ran long and the agenda was packed.",
	}
	for _, f := range webfountain.ExtractFeatures(onTopic, offTopic, webfountain.FeatureConfig{Confidence: 0.95}) {
		fmt.Println(f.Term)
	}
	// Output:
	// battery life
	// zoom
}
