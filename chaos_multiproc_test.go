package webfountain

// Out-of-process chaos smoke: the same no-acked-write-lost invariant
// the in-process archetypes prove, driven against REAL wfnode and
// wfrouter binaries with REAL signals. In-process gates simulate a
// crash by refusing calls; SIGKILL does not flush buffers, does not
// run deferred handlers, and kills the actual WAL mid-write — if the
// invariant only held because the simulation was polite, this test is
// where that shows up.
//
// The smoke is build-and-spawn heavy, so it runs only when CI (or a
// developer) opts in with CHAOS_MULTIPROC=1:
//
//	CHAOS_MULTIPROC=1 go test -run TestChaosMultiprocessQuorum -v .
//
// Sequence: build the binaries, start 3 durable wfnodes and a W=2
// wfrouter over them, ack a write batch through the router, SIGKILL
// the primary of the first document, prove every acked write still
// reads back (the W=2 ack forced a second copy), prove a write placed
// on the dead node is refused rather than half-acked, restart the
// victim from its WAL, rejoin it, and prove it again holds everything
// it owns.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"webfountain/internal/router"
	"webfountain/internal/services"
	"webfountain/internal/store"
	"webfountain/internal/vinci"
)

// freePort asks the kernel for an unused port. The listener is closed
// before the port is handed out, so a parallel process could steal it;
// the smoke runs its processes sequentially, which keeps that window
// harmless in practice.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

// proc is one spawned binary and the log file capturing its output.
type proc struct {
	cmd *exec.Cmd
	log *os.File
}

func (p *proc) kill(sig syscall.Signal) {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Signal(sig)
	}
	_, _ = p.cmd.Process.Wait()
}

func spawn(t *testing.T, logDir, name, bin string, args ...string) *proc {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(logDir, name+".log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = f
	cmd.Stderr = f
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	return &proc{cmd: cmd, log: f}
}

// waitHealthy dials an address until its health service answers.
func waitHealthy(t *testing.T, addr string, within time.Duration) vinci.Client {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		c, err := vinci.DialWith(addr, vinci.DialOptions{CallTimeout: 2 * time.Second})
		if err == nil {
			if perr := services.Probe(c); perr == nil {
				return c
			}
			c.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s not healthy within %v", addr, within)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func TestChaosMultiprocessQuorum(t *testing.T) {
	if os.Getenv("CHAOS_MULTIPROC") != "1" {
		t.Skip("out-of-process chaos smoke; set CHAOS_MULTIPROC=1 to run")
	}
	logf := chaosInvariantLog(t)
	dir := t.TempDir()

	// Real binaries, not test doubles.
	nodeBin := filepath.Join(dir, "wfnode")
	routerBin := filepath.Join(dir, "wfrouter")
	for bin, pkg := range map[string]string{nodeBin: "./cmd/wfnode", routerBin: "./cmd/wfrouter"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	// Three durable storage nodes. -docs 0 starts them empty; -data-dir
	// gives each a WAL so a SIGKILLed node can be restarted with its
	// acked state intact.
	nodeNames := []string{"n1", "n2", "n3"}
	nodeAddr := map[string]string{}
	nodeProc := map[string]*proc{}
	nodeArgs := func(name string) []string {
		return []string{
			"-listen", nodeAddr[name], "-docs", "0",
			"-data-dir", filepath.Join(dir, name), "-node-id", name,
		}
	}
	var members []string
	for _, name := range nodeNames {
		nodeAddr[name] = fmt.Sprintf("127.0.0.1:%d", freePort(t))
		members = append(members, name+"="+nodeAddr[name])
	}
	for _, name := range nodeNames {
		nodeProc[name] = spawn(t, dir, name, nodeBin, nodeArgs(name)...)
		waitHealthy(t, nodeAddr[name], 30*time.Second).Close()
	}
	routerAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	routerProc := spawn(t, dir, "router", routerBin,
		"-listen", routerAddr, "-nodes", strings.Join(members, ","),
		"-write-quorum", "2", "-probe-interval", "100ms",
		"-anti-entropy-interval", "500ms", "-seed", "7")
	t.Cleanup(func() {
		routerProc.kill(syscall.SIGTERM)
		for _, p := range nodeProc {
			p.kill(syscall.SIGTERM)
		}
	})
	rc := waitHealthy(t, routerAddr, 30*time.Second)
	defer rc.Close()
	sc := services.StoreClient{C: rc}
	tc := router.TopologyClient{C: rc}

	// Ack a write batch at W=2 through the real router.
	acked := map[string]string{}
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("wf-mp-%02d", i)
		text := fmt.Sprintf("multiprocess smoke body %02d", i)
		if err := sc.Put(&store.Entity{ID: id, Source: "chaos-mp", Text: text}); err != nil {
			t.Fatalf("put %s: %v", id, err)
		}
		acked[id] = text
	}
	logf("multiproc: %d writes acked at W=2 through %s", len(acked), routerAddr)

	// SIGKILL the primary of the first acked document — the node whose
	// ack, under W=1, would have been the only durable copy.
	set, err := tc.Place("wf-mp-00")
	if err != nil {
		t.Fatal(err)
	}
	victim := set[0]
	nodeProc[victim].kill(syscall.SIGKILL)
	logf("multiproc: SIGKILLed %s (%s), primary of wf-mp-00", victim, nodeAddr[victim])

	// Invariant: no acked write lost. Every document must read back
	// through the router while the victim is a corpse, because the W=2
	// ack forced a copy on the second replica.
	readBack := func(tag string) {
		t.Helper()
		for id, text := range acked {
			var e *store.Entity
			var rerr error
			deadline := time.Now().Add(30 * time.Second)
			for {
				if e, rerr = sc.Get(id); rerr == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("%s: acked %s unreadable: %v", tag, id, rerr)
				}
				time.Sleep(50 * time.Millisecond)
			}
			if e.Text != text {
				t.Fatalf("%s: acked %s read back different text", tag, id)
			}
		}
	}
	readBack("victim down")
	logf("multiproc: all %d acked writes readable with %s dead", len(acked), victim)

	// A W=2 write placed on the corpse must be refused, not half-acked.
	refused := ""
	for i := 0; i < 1000 && refused == ""; i++ {
		id := fmt.Sprintf("wf-refuse-%03d", i)
		if set, err := tc.Place(id); err == nil && (set[0] == victim || set[1] == victim) {
			refused = id
		}
	}
	if err := sc.Put(&store.Entity{ID: refused, Source: "chaos-mp", Text: "must not ack"}); err == nil {
		t.Fatalf("W=2 write %s acked with its replica %s SIGKILLed", refused, victim)
	}
	logf("multiproc: write placed on dead %s correctly refused", victim)

	// Restart the victim from its WAL and rejoin it. The rejoin retries
	// until the catch-up census can reach the revived process.
	nodeProc[victim] = spawn(t, dir, victim+"-revived", nodeBin, nodeArgs(victim)...)
	waitHealthy(t, nodeAddr[victim], 30*time.Second).Close()
	var joinErr error
	for attempt := 0; attempt < 100; attempt++ {
		if joinErr = tc.Rejoin(victim); joinErr == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if joinErr != nil {
		t.Fatalf("rejoin %s never converged: %v", victim, joinErr)
	}
	readBack("after rejoin")

	// The revived victim must itself hold every acked document it owns —
	// recovered from its own WAL or shipped by the catch-up.
	vc := waitHealthy(t, nodeAddr[victim], 10*time.Second)
	defer vc.Close()
	vsc := services.StoreClient{C: vc}
	owned := 0
	for id := range acked {
		set, err := tc.Place(id)
		if err != nil {
			t.Fatal(err)
		}
		mine := false
		for _, n := range set {
			if n == victim {
				mine = true
			}
		}
		if !mine {
			continue
		}
		owned++
		if _, err := vsc.Get(id); err != nil {
			t.Fatalf("revived %s missing owned acked doc %s: %v", victim, id, err)
		}
	}
	if owned == 0 {
		t.Fatalf("victim %s owns none of the acked docs; smoke proved nothing", victim)
	}
	logf("multiproc: revived %s holds all %d owned acked docs; invariant held end to end", victim, owned)
}
