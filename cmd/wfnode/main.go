// Command wfnode runs one WebFountain node: it loads a corpus, mines it,
// and serves the store, index and sentiment services over the Vinci
// protocol so remote application components can use the platform — the
// paper's "collection of Web service APIs".
//
// Server:
//
//	wfnode -listen :9410 [-corpus camera] [-docs 100] [-seed 1]
//	       [-data-dir /var/wfnode] [-sync-every 1]
//	       [-metrics-addr :9411] [-pprof-addr :9412]
//
// With -metrics-addr the node serves its metrics registry over HTTP:
// /metrics (plain text), /metrics.json (full snapshot) and /healthz.
// -pprof-addr exposes net/http/pprof on a separate listener. The same
// registry is always available over Vinci via the "metrics" service.
//
// With -data-dir the store is durable: every mutation is write-ahead-
// logged there, and a restart recovers the corpus (and rebuilds the
// index from it) instead of regenerating. SIGINT/SIGTERM trigger a
// graceful shutdown that drains in-flight requests and flushes the log.
//
// Client (one-shot operations against a running node):
//
//	wfnode -connect host:9410 -get <docID>
//	wfnode -connect host:9410 -search "battery life"
//	wfnode -connect host:9410 -sentiment NR70
//	wfnode -connect host:9410 -ping
//	wfnode -connect host:9410 -metrics
//
// Every client run first probes the node's health service before
// issuing operations; transport failures are retried with exponential
// backoff (tunable via -retries, -backoff, -call-timeout).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"webfountain/internal/chunk"
	"webfountain/internal/corpus"
	"webfountain/internal/index"
	"webfountain/internal/ingest"
	"webfountain/internal/metrics"
	"webfountain/internal/sentiment"
	"webfountain/internal/services"
	"webfountain/internal/store"
	"webfountain/internal/tokenize"
	"webfountain/internal/vinci"

	"webfountain/internal/ne"
	"webfountain/internal/pos"
)

func main() {
	listen := flag.String("listen", "", "serve mode: listen address (e.g. :9410)")
	connect := flag.String("connect", "", "client mode: node address to connect to")
	corpusName := flag.String("corpus", "camera", "corpus to load in serve mode")
	docs := flag.Int("docs", 100, "documents to load in serve mode")
	seed := flag.Int64("seed", 1, "corpus seed")
	dataDir := flag.String("data-dir", "", "serve mode: durable data directory (empty: in-memory)")
	syncEvery := flag.Int("sync-every", 1, "serve mode: sync the write-ahead log every N records")
	admissionDepth := flag.Int("admission-depth", 0, "serve mode: bounded admission queue depth (0: admission control off)")
	shedPolicy := flag.String("shed-policy", "lifo", "serve mode: admission queue order, lifo or fifo")
	metricsAddr := flag.String("metrics-addr", "", "serve mode: HTTP address for /metrics, /metrics.json and /healthz (empty: disabled)")
	pprofAddr := flag.String("pprof-addr", "", "serve mode: HTTP address for net/http/pprof profiling (empty: disabled)")
	get := flag.String("get", "", "client: fetch an entity by ID")
	search := flag.String("search", "", "client: search indexed terms (space-separated, AND)")
	sentimentQ := flag.String("sentiment", "", "client: query a subject's sentiment")
	ping := flag.Bool("ping", false, "client: print the node's health status")
	showMetrics := flag.Bool("metrics", false, "client: dump the node's metrics registry")
	retries := flag.Int("retries", 4, "client: attempts per call on transport failure")
	backoff := flag.Duration("backoff", 25*time.Millisecond, "client: base retry backoff (doubles per retry)")
	callTimeout := flag.Duration("call-timeout", 10*time.Second, "client: total per-call deadline budget, stamped on the wire")
	hedge := flag.Bool("hedge", false, "client: hedge idempotent reads on a second connection after the method's p95")
	flag.Parse()

	switch {
	case *listen != "":
		adm := vinci.AdmissionConfig{Depth: *admissionDepth, Policy: *shedPolicy}
		if *admissionDepth <= 0 {
			adm = vinci.AdmissionConfig{} // zero value: admission off
		}
		if err := serve(*listen, *corpusName, *docs, *seed, *dataDir, *syncEvery, *metricsAddr, *pprofAddr, adm); err != nil {
			log.Fatal(err)
		}
	case *connect != "":
		opts := vinci.DialOptions{
			CallTimeout: *callTimeout,
			Retry: vinci.RetryPolicy{
				MaxAttempts: *retries,
				BaseBackoff: *backoff,
				MaxBackoff:  20 * *backoff,
				Jitter:      0.2,
			},
		}
		if err := client(*connect, opts, *hedge, *ping, *showMetrics, *get, *search, *sentimentQ); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -listen (serve) or -connect (client); see -h")
		os.Exit(2)
	}
}

// serve loads or recovers a corpus, mines it, and serves the Vinci
// services until the listener closes or a shutdown signal arrives.
func serve(addr, corpusName string, docs int, seed int64, dataDir string, syncEvery int, metricsAddr, pprofAddr string, adm vinci.AdmissionConfig) error {
	var st *store.Store
	if dataDir != "" {
		var err error
		st, err = store.Open(dataDir, store.Options{Shards: 16, SyncEvery: syncEvery})
		if err != nil {
			return err
		}
		if ds := st.Durability(); ds.Replayed > 0 || ds.SnapshotLoaded || ds.Quarantined > 0 {
			log.Printf("recovered %d entities from %s (gen %d, %d wal records replayed, %d quarantined, %d torn bytes truncated)",
				st.Len(), dataDir, ds.Generation, ds.Replayed, ds.Quarantined, ds.TruncatedBytes)
		}
	} else {
		st = store.New(16)
	}

	ix := index.New()
	tk := tokenize.New()
	addToIndex := func(e *store.Entity) {
		toks := tk.Tokenize(e.Text)
		words := make([]string, len(toks))
		for i, t := range toks {
			words[i] = t.Text
		}
		ix.Add(e.ID, words)
	}

	// Fresh corpora are indexed in the same worker pass that stores
	// them (the index is sharded, so concurrent workers do not
	// serialize); a recovered corpus is indexed by the sweep below.
	indexed := false
	if st.Len() == 0 {
		var generated []corpus.Document
		switch corpusName {
		case "camera":
			generated = corpus.DigitalCameraReviews(seed, docs)
		case "music":
			generated = corpus.MusicReviews(seed, docs)
		case "petroleum":
			generated = corpus.PetroleumWeb(seed, docs)
		case "pharma":
			generated = corpus.PharmaWeb(seed, docs)
		case "news":
			generated = corpus.PetroleumNews(seed, docs)
		default:
			return fmt.Errorf("unknown corpus %q", corpusName)
		}
		ing := ingest.New(st, 4).WithIndexer(addToIndex)
		stats, err := ing.Run(ingest.FromCorpus(corpusName, generated))
		if err != nil {
			return err
		}
		indexed = true
		log.Printf("ingested and indexed %d documents (%d bytes)", stats.Documents, stats.Bytes)
	}

	// Mine sentiment for the query service; index too when the corpus
	// was recovered from disk rather than freshly ingested.
	sidx := index.NewSentimentIndex()
	tagger := pos.NewTagger()
	an := sentiment.New(nil, nil)
	nesp := ne.New()
	ck := chunk.New()
	reg0 := metrics.Default()
	stageTokenize := reg0.Stage(metrics.StageTokenize)
	stagePOS := reg0.Stage(metrics.StagePOS)
	stageChunk := reg0.Stage(metrics.StageChunk)
	stageSpot := reg0.Stage(metrics.StageSpot)
	stageSentiment := reg0.Stage(metrics.StageSentiment)
	err := st.ForEach(func(e *store.Entity) error {
		if !indexed {
			addToIndex(e)
		}
		span := stageTokenize.Start()
		sentences := tk.Sentences(e.Text)
		span.End()
		for _, s := range sentences {
			span = stageSpot.Start()
			entities := nesp.SpotTokens(s.Tokens)
			span.End()
			if len(entities) == 0 {
				continue
			}
			span = stagePOS.Start()
			tagged := tagger.TagSentence(s)
			span.End()
			span = stageChunk.Start()
			clauses := ck.Clauses(tagged)
			span.End()
			span = stageSentiment.Start()
			assignments := an.AnalyzeClauses(clauses)
			span.End()
			for _, ent := range entities {
				for _, h := range sentiment.ForSpan(assignments, ent.Start, ent.End) {
					sidx.Add(index.SentimentEntry{
						DocID: e.ID, Sentence: s.Index, Subject: ent.Text,
						Polarity: int(h.Polarity), Snippet: s.Text(),
					})
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	log.Printf("indexed %d documents, %d sentiment entries", ix.NumDocs(), sidx.Len())

	reg := vinci.NewRegistry()
	services.RegisterStore(reg, st)
	services.RegisterIndex(reg, ix)
	services.RegisterSentiment(reg, sidx)
	services.RegisterHealth(reg, services.HealthOptions{
		Node:     "wfnode@" + addr,
		Registry: reg,
		Entities: st.Len,
		Degraded: st.Degraded,
	})
	services.RegisterMetrics(reg, metrics.Default())

	if metricsAddr != "" {
		mux := http.NewServeMux()
		metrics.Default().RegisterHTTP(mux)
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			deg, reason := st.Degraded()
			w.Header().Set("Content-Type", "application/json")
			if deg {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			fmt.Fprintf(w, `{"node":%q,"entities":%d,"degraded":%v,"degraded_reason":%q}`+"\n",
				"wfnode@"+addr, st.Len(), deg, reason)
		})
		go func() {
			log.Printf("metrics on http://%s/metrics", metricsAddr)
			if err := http.ListenAndServe(metricsAddr, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}
	if pprofAddr != "" {
		// net/http/pprof registers its handlers on the default mux.
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", pprofAddr)
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("wfnode serving %v on %s", reg.Services(), ln.Addr())

	// Graceful shutdown: on SIGINT/SIGTERM drain the Vinci server (stop
	// accepting, finish in-flight exchanges), then flush and close the
	// store's write-ahead log so every acknowledged write survives the
	// restart.
	srv := vinci.NewServerWith(reg, vinci.ServerOptions{Admission: adm})
	if adm.Depth > 0 {
		log.Printf("admission control on: queue depth %d, %s shedding", adm.Depth, adm.Policy)
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("received %v, shutting down", sig)
		if cerr := srv.Close(); cerr != nil {
			log.Printf("server close: %v", cerr)
		}
	}()
	err = srv.Serve(ln)
	if cerr := st.Close(); cerr != nil {
		log.Printf("store close: %v", cerr)
		if err == nil {
			err = cerr
		}
	} else if st.Durable() {
		log.Printf("write-ahead log flushed and closed")
	}
	return err
}

// client performs one-shot operations against a running node. The
// node's health service is probed before any operation runs, so a dead
// or half-up node is reported up front instead of failing mid-request.
func client(addr string, opts vinci.DialOptions, hedge, ping, showMetrics bool, get, search, sentimentQ string) error {
	raw, err := vinci.DialWith(addr, opts)
	if err != nil {
		return err
	}
	if hedge {
		// Hedged reads need an independent second transport: a hedge
		// queued behind the stuck call on the same connection would never
		// outrun it. Only services registered idempotent are hedged.
		second, err := vinci.DialWith(addr, opts)
		if err != nil {
			raw.Close()
			return err
		}
		raw = vinci.NewHedged(raw, second, vinci.HedgeOptions{IsIdempotent: services.Idempotent})
	}
	defer raw.Close()
	// One trace ID per invocation: every call this run makes carries it,
	// so the node's logs and metrics can be correlated with this client.
	conn := vinci.Traced(raw, metrics.NewTraceID())

	if err := services.Probe(conn); err != nil {
		return fmt.Errorf("node %s unhealthy: %w", addr, err)
	}

	did := false
	if ping {
		did = true
		st, err := services.HealthClient{C: conn}.Status()
		if err != nil {
			return err
		}
		fmt.Printf("%s: up %v, %d entities, serving %v\n", st.Node, st.Uptime, st.Entities, st.Services)
		if st.Degraded {
			fmt.Printf("  DEGRADED (read-only): %s\n", st.DegradedReason)
		}
	}
	if showMetrics {
		did = true
		text, err := services.MetricsClient{C: conn}.Text()
		if err != nil {
			return err
		}
		fmt.Print(text)
	}
	if get != "" {
		did = true
		e, err := services.StoreClient{C: conn}.Get(get)
		if err != nil {
			return err
		}
		data, err := e.MarshalIndent()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	}
	if search != "" {
		did = true
		ids, err := services.IndexClient{C: conn}.Search("all", strings.Fields(search)...)
		if err != nil {
			return err
		}
		fmt.Printf("%d documents match %q:\n", len(ids), search)
		for _, id := range ids {
			fmt.Println(" ", id)
		}
	}
	if sentimentQ != "" {
		did = true
		sc := services.SentimentClient{C: conn}
		pos, neg, err := sc.Counts(sentimentQ)
		if err != nil {
			return err
		}
		fmt.Printf("%q: %d positive, %d negative\n", sentimentQ, pos, neg)
		entries, err := sc.Query(sentimentQ)
		if err != nil {
			return err
		}
		for i, e := range entries {
			if i >= 10 {
				fmt.Printf("  ... %d more\n", len(entries)-10)
				break
			}
			pol := "+"
			if e.Polarity < 0 {
				pol = "-"
			}
			fmt.Printf("  [%s] %s s%d: %q\n", pol, e.DocID, e.Sentence, e.Snippet)
		}
	}
	if !did {
		return fmt.Errorf("client mode needs one of -ping, -metrics, -get, -search, -sentiment")
	}
	return nil
}
