// Command wfnode runs one WebFountain node: it loads a corpus, mines it,
// and serves the store, index and sentiment services over the Vinci
// protocol so remote application components can use the platform — the
// paper's "collection of Web service APIs".
//
// Server:
//
//	wfnode -listen :9410 [-corpus camera] [-docs 100] [-seed 1]
//	       [-data-dir /var/wfnode] [-sync-every 1]
//	       [-metrics-addr :9411] [-pprof-addr :9412]
//
// With -metrics-addr the node serves its metrics registry over HTTP:
// /metrics (plain text), /metrics.json (full snapshot) and /healthz.
// -pprof-addr exposes net/http/pprof on a separate listener. The same
// registry is always available over Vinci via the "metrics" service.
//
// With -data-dir the store is durable: every mutation is write-ahead-
// logged there, and a restart recovers the corpus (and rebuilds the
// index from it) instead of regenerating. SIGINT/SIGTERM trigger a
// graceful shutdown that drains in-flight requests and flushes the log.
//
// With -join the node enrolls in a replicated deployment: it registers
// the replica catch-up service, then asks the wfrouter at the given
// address to admit it to the consistent-hash ring (online handoff:
// dual-write, WAL-frame catch-up, epoch bump). -node-id names the node
// in the ring; -advertise is the address the router dials back (defaults
// to -listen, which must then be reachable from the router). Once
// joined, -ping and /healthz report the node's shard role (primary/
// replica) and the ring epoch, fetched live from the router, plus the
// newest hybrid-logical-clock version the node has applied and how far
// it runs ahead of the wall clock (the cluster skew signal).
//
//	wfnode -listen host:9410 -join router:9400 [-node-id n1] [-advertise host:9410]
//
// Client (one-shot operations against a running node or router):
//
//	wfnode -connect host:9410 -get <docID>
//	wfnode -connect host:9410 -search "battery life"
//	wfnode -connect host:9410 -sentiment NR70
//	wfnode -connect host:9410 -ping
//	wfnode -connect host:9410 -metrics
//	wfnode -connect router:9400 -replicas <docID>   (placement query)
//
// A router serves the same store/index/sentiment protocol, so every
// client operation works unchanged against a wfrouter address;
// -replicas additionally asks the topology service which nodes hold a
// document, primary first.
//
// Every client run first probes the node's health service before
// issuing operations; transport failures are retried with exponential
// backoff (tunable via -retries, -backoff, -call-timeout).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"webfountain/internal/chunk"
	"webfountain/internal/corpus"
	"webfountain/internal/hlc"
	"webfountain/internal/index"
	"webfountain/internal/ingest"
	"webfountain/internal/metrics"
	"webfountain/internal/router"
	"webfountain/internal/sentiment"
	"webfountain/internal/services"
	"webfountain/internal/store"
	"webfountain/internal/tokenize"
	"webfountain/internal/vinci"

	"webfountain/internal/ne"
	"webfountain/internal/pos"
)

func main() {
	listen := flag.String("listen", "", "serve mode: listen address (e.g. :9410)")
	connect := flag.String("connect", "", "client mode: node address to connect to")
	corpusName := flag.String("corpus", "camera", "corpus to load in serve mode")
	docs := flag.Int("docs", 100, "documents to load in serve mode")
	seed := flag.Int64("seed", 1, "corpus seed")
	dataDir := flag.String("data-dir", "", "serve mode: durable data directory (empty: in-memory)")
	syncEvery := flag.Int("sync-every", 1, "serve mode: sync the write-ahead log every N records")
	admissionDepth := flag.Int("admission-depth", 0, "serve mode: bounded admission queue depth (0: admission control off)")
	shedPolicy := flag.String("shed-policy", "lifo", "serve mode: admission queue order, lifo or fifo")
	metricsAddr := flag.String("metrics-addr", "", "serve mode: HTTP address for /metrics, /metrics.json and /healthz (empty: disabled)")
	pprofAddr := flag.String("pprof-addr", "", "serve mode: HTTP address for net/http/pprof profiling (empty: disabled)")
	joinAddr := flag.String("join", "", "serve mode: wfrouter address to join the replicated ring through")
	nodeID := flag.String("node-id", "", "serve mode: this node's name in the ring (default wfnode@<advertise>)")
	advertise := flag.String("advertise", "", "serve mode: address the router dials back (default -listen)")
	get := flag.String("get", "", "client: fetch an entity by ID")
	search := flag.String("search", "", "client: search indexed terms (space-separated, AND)")
	sentimentQ := flag.String("sentiment", "", "client: query a subject's sentiment")
	replicasQ := flag.String("replicas", "", "client: ask a router which nodes hold a document, primary first")
	ping := flag.Bool("ping", false, "client: print the node's health status")
	showMetrics := flag.Bool("metrics", false, "client: dump the node's metrics registry")
	retries := flag.Int("retries", 4, "client: attempts per call on transport failure")
	backoff := flag.Duration("backoff", 25*time.Millisecond, "client: base retry backoff (doubles per retry)")
	callTimeout := flag.Duration("call-timeout", 10*time.Second, "client: total per-call deadline budget, stamped on the wire")
	hedge := flag.Bool("hedge", false, "client: hedge idempotent reads on a second connection after the method's p95")
	flag.Parse()

	switch {
	case *listen != "":
		adm := vinci.AdmissionConfig{Depth: *admissionDepth, Policy: *shedPolicy}
		if *admissionDepth <= 0 {
			adm = vinci.AdmissionConfig{} // zero value: admission off
		}
		jc := joinConfig{Router: *joinAddr, NodeID: *nodeID, Advertise: *advertise}
		if jc.Advertise == "" {
			jc.Advertise = *listen
		}
		if jc.NodeID == "" {
			jc.NodeID = "wfnode@" + jc.Advertise
		}
		if err := serve(*listen, *corpusName, *docs, *seed, *dataDir, *syncEvery, *metricsAddr, *pprofAddr, adm, jc); err != nil {
			log.Fatal(err)
		}
	case *connect != "":
		opts := vinci.DialOptions{
			CallTimeout: *callTimeout,
			Retry: vinci.RetryPolicy{
				MaxAttempts: *retries,
				BaseBackoff: *backoff,
				MaxBackoff:  20 * *backoff,
				Jitter:      0.2,
			},
		}
		if err := client(*connect, opts, *hedge, *ping, *showMetrics, *get, *search, *sentimentQ, *replicasQ); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -listen (serve) or -connect (client); see -h")
		os.Exit(2)
	}
}

// joinConfig is a node's ring enrollment: the router to join through,
// the node's ring name, and the address the router dials back.
type joinConfig struct {
	Router    string
	NodeID    string
	Advertise string
}

// topoProbe fetches this node's shard roles from its router on demand
// — health reports fold the result in, so -ping and /healthz always
// show the live ring epoch and role. Before the join completes (or
// when no router is configured) it reports the zero TopologyInfo,
// which renders as role "idle" at epoch 0.
type topoProbe struct {
	mu     sync.Mutex
	c      vinci.Client
	nodeID string
}

func (tp *topoProbe) set(c vinci.Client, nodeID string) {
	tp.mu.Lock()
	tp.c, tp.nodeID = c, nodeID
	tp.mu.Unlock()
}

func (tp *topoProbe) info() services.TopologyInfo {
	tp.mu.Lock()
	c, nodeID := tp.c, tp.nodeID
	tp.mu.Unlock()
	if c == nil {
		return services.TopologyInfo{}
	}
	ti, err := router.TopologyClient{C: c}.Node(nodeID)
	if err != nil {
		return services.TopologyInfo{}
	}
	return ti
}

// serve loads or recovers a corpus, mines it, and serves the Vinci
// services until the listener closes or a shutdown signal arrives.
func serve(addr, corpusName string, docs int, seed int64, dataDir string, syncEvery int, metricsAddr, pprofAddr string, adm vinci.AdmissionConfig, jc joinConfig) error {
	var st *store.Store
	if dataDir != "" {
		var err error
		st, err = store.Open(dataDir, store.Options{Shards: 16, SyncEvery: syncEvery})
		if err != nil {
			return err
		}
		if ds := st.Durability(); ds.Replayed > 0 || ds.SnapshotLoaded || ds.Quarantined > 0 {
			log.Printf("recovered %d entities from %s (gen %d, %d wal records replayed, %d quarantined, %d torn bytes truncated)",
				st.Len(), dataDir, ds.Generation, ds.Replayed, ds.Quarantined, ds.TruncatedBytes)
		}
	} else {
		st = store.New(16)
	}

	ix := index.New()
	tk := tokenize.New()
	addToIndex := func(e *store.Entity) {
		toks := tk.Tokenize(e.Text)
		words := make([]string, len(toks))
		for i, t := range toks {
			words[i] = t.Text
		}
		ix.Add(e.ID, words)
	}

	// Fresh corpora are indexed in the same worker pass that stores
	// them (the index is sharded, so concurrent workers do not
	// serialize); a recovered corpus is indexed by the sweep below.
	indexed := false
	if st.Len() == 0 {
		var generated []corpus.Document
		switch corpusName {
		case "camera":
			generated = corpus.DigitalCameraReviews(seed, docs)
		case "music":
			generated = corpus.MusicReviews(seed, docs)
		case "petroleum":
			generated = corpus.PetroleumWeb(seed, docs)
		case "pharma":
			generated = corpus.PharmaWeb(seed, docs)
		case "news":
			generated = corpus.PetroleumNews(seed, docs)
		default:
			return fmt.Errorf("unknown corpus %q", corpusName)
		}
		ing := ingest.New(st, 4).WithIndexer(addToIndex)
		stats, err := ing.Run(ingest.FromCorpus(corpusName, generated))
		if err != nil {
			return err
		}
		indexed = true
		log.Printf("ingested and indexed %d documents (%d bytes)", stats.Documents, stats.Bytes)
	}

	// Mine sentiment for the query service; index too when the corpus
	// was recovered from disk rather than freshly ingested.
	sidx := index.NewSentimentIndex()
	tagger := pos.NewTagger()
	an := sentiment.New(nil, nil)
	nesp := ne.New()
	ck := chunk.New()
	reg0 := metrics.Default()
	stageTokenize := reg0.Stage(metrics.StageTokenize)
	stagePOS := reg0.Stage(metrics.StagePOS)
	stageChunk := reg0.Stage(metrics.StageChunk)
	stageSpot := reg0.Stage(metrics.StageSpot)
	stageSentiment := reg0.Stage(metrics.StageSentiment)
	err := st.ForEach(func(e *store.Entity) error {
		if !indexed {
			addToIndex(e)
		}
		span := stageTokenize.Start()
		sentences := tk.Sentences(e.Text)
		span.End()
		for _, s := range sentences {
			span = stageSpot.Start()
			entities := nesp.SpotTokens(s.Tokens)
			span.End()
			if len(entities) == 0 {
				continue
			}
			span = stagePOS.Start()
			tagged := tagger.TagSentence(s)
			span.End()
			span = stageChunk.Start()
			clauses := ck.Clauses(tagged)
			span.End()
			span = stageSentiment.Start()
			assignments := an.AnalyzeClauses(clauses)
			span.End()
			for _, ent := range entities {
				for _, h := range sentiment.ForSpan(assignments, ent.Start, ent.End) {
					sidx.Add(index.SentimentEntry{
						DocID: e.ID, Sentence: s.Index, Subject: ent.Text,
						Polarity: int(h.Polarity), Snippet: s.Text(),
					})
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	log.Printf("indexed %d documents, %d sentiment entries", ix.NumDocs(), sidx.Len())

	// Routed writes land on the store service directly (no local ingest
	// pipeline), so the store hooks keep the inverted index in step; the
	// replica service speaks the WAL-frame catch-up protocol the router
	// uses for shard handoff.
	hooks := services.StoreHooks{OnPut: addToIndex, OnDelete: ix.Remove}
	topo := &topoProbe{}
	// A storage node runs no clock of its own — routers stamp versions —
	// but it can report the newest HLC it has applied (across live
	// entities and tombstones) and how far that runs ahead of its wall
	// clock, which is exactly the skew signal operators scan fleets for.
	clockInfo := func() services.ClockInfo {
		var last uint64
		for _, v := range st.Versions() {
			if v > last {
				last = v
			}
		}
		for _, v := range st.TombstonesVersioned() {
			if v > last {
				last = v
			}
		}
		ahead := hlc.Physical(last) - time.Now().UnixMilli()
		if ahead < 0 {
			ahead = 0
		}
		return services.ClockInfo{Last: last, Offset: time.Duration(ahead) * time.Millisecond}
	}
	reg := vinci.NewRegistry()
	services.RegisterStoreWith(reg, st, hooks)
	services.RegisterIndex(reg, ix)
	services.RegisterSentiment(reg, sidx)
	services.RegisterReplica(reg, st, hooks)
	services.RegisterHealth(reg, services.HealthOptions{
		Node:     jc.NodeID,
		Registry: reg,
		Entities: st.Len,
		Degraded: st.Degraded,
		Topology: topo.info,
		Clock:    clockInfo,
	})
	services.RegisterMetrics(reg, metrics.Default())

	if metricsAddr != "" {
		mux := http.NewServeMux()
		metrics.Default().RegisterHTTP(mux)
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			deg, reason := st.Degraded()
			ti := topo.info()
			ci := clockInfo()
			w.Header().Set("Content-Type", "application/json")
			if deg {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			fmt.Fprintf(w, `{"node":%q,"entities":%d,"degraded":%v,"degraded_reason":%q,"role":%q,"ring_epoch":%d,"hlc":%d,"hlc_offset_ms":%d}`+"\n",
				jc.NodeID, st.Len(), deg, reason, ti.Role(), ti.Epoch, ci.Last, ci.Offset.Milliseconds())
		})
		go func() {
			log.Printf("metrics on http://%s/metrics", metricsAddr)
			if err := http.ListenAndServe(metricsAddr, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}
	if pprofAddr != "" {
		// net/http/pprof registers its handlers on the default mux.
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", pprofAddr)
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("wfnode serving %v on %s", reg.Services(), ln.Addr())

	// Enroll in the ring once the listener is up — the router dials back
	// to this node mid-join for the handoff census and catch-up, so the
	// join must not precede serving. The router may not be up yet (or may
	// be mid-handoff elsewhere); retry with backoff until admitted.
	if jc.Router != "" {
		go func() {
			var rc vinci.Client
			for attempt, backoff := 0, 250*time.Millisecond; ; attempt++ {
				var err error
				if rc == nil {
					// Dial inside the loop: the node may well start before
					// its router does.
					rc, err = vinci.DialWith(jc.Router, vinci.DialOptions{
						CallTimeout: 30 * time.Second,
						Retry:       vinci.RetryPolicy{MaxAttempts: 3, BaseBackoff: 50 * time.Millisecond, MaxBackoff: time.Second, Jitter: 0.2},
					})
				}
				if err == nil {
					err = router.TopologyClient{C: rc}.Join(jc.NodeID, jc.Advertise)
				}
				if err == nil {
					topo.set(rc, jc.NodeID)
					ti := topo.info()
					log.Printf("joined ring via %s as %s (%s): role %s, epoch %d",
						jc.Router, jc.NodeID, jc.Advertise, ti.Role(), ti.Epoch)
					return
				}
				if attempt >= 20 {
					log.Printf("join %s via %s: giving up after %d attempts: %v", jc.NodeID, jc.Router, attempt+1, err)
					if rc != nil {
						rc.Close()
					}
					return
				}
				log.Printf("join %s via %s: %v (retrying in %v)", jc.NodeID, jc.Router, err, backoff)
				time.Sleep(backoff)
				if backoff < 4*time.Second {
					backoff *= 2
				}
			}
		}()
	}

	// Graceful shutdown: on SIGINT/SIGTERM drain the Vinci server (stop
	// accepting, finish in-flight exchanges), then flush and close the
	// store's write-ahead log so every acknowledged write survives the
	// restart.
	srv := vinci.NewServerWith(reg, vinci.ServerOptions{Admission: adm})
	if adm.Depth > 0 {
		log.Printf("admission control on: queue depth %d, %s shedding", adm.Depth, adm.Policy)
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("received %v, shutting down", sig)
		if cerr := srv.Close(); cerr != nil {
			log.Printf("server close: %v", cerr)
		}
	}()
	err = srv.Serve(ln)
	if cerr := st.Close(); cerr != nil {
		log.Printf("store close: %v", cerr)
		if err == nil {
			err = cerr
		}
	} else if st.Durable() {
		log.Printf("write-ahead log flushed and closed")
	}
	return err
}

// client performs one-shot operations against a running node. The
// node's health service is probed before any operation runs, so a dead
// or half-up node is reported up front instead of failing mid-request.
func client(addr string, opts vinci.DialOptions, hedge, ping, showMetrics bool, get, search, sentimentQ, replicasQ string) error {
	raw, err := vinci.DialWith(addr, opts)
	if err != nil {
		return err
	}
	if hedge {
		// Hedged reads need an independent second transport: a hedge
		// queued behind the stuck call on the same connection would never
		// outrun it. Only services registered idempotent are hedged.
		second, err := vinci.DialWith(addr, opts)
		if err != nil {
			raw.Close()
			return err
		}
		raw = vinci.NewHedged(raw, second, vinci.HedgeOptions{IsIdempotent: services.Idempotent})
	}
	defer raw.Close()
	// One trace ID per invocation: every call this run makes carries it,
	// so the node's logs and metrics can be correlated with this client.
	conn := vinci.Traced(raw, metrics.NewTraceID())

	if err := services.Probe(conn); err != nil {
		return fmt.Errorf("node %s unhealthy: %w", addr, err)
	}

	did := false
	if ping {
		did = true
		st, err := services.HealthClient{C: conn}.Status()
		if err != nil {
			return err
		}
		fmt.Printf("%s: up %v, %d entities, serving %v\n", st.Node, st.Uptime, st.Entities, st.Services)
		if ti := st.Topology; ti != nil {
			fmt.Printf("  ring: %s at epoch %d (%d primary shards, %d replica shards)\n",
				ti.Role(), ti.Epoch, ti.Primaries, ti.Replicas)
		}
		if ci := st.Clock; ci != nil {
			fmt.Printf("  hlc: %s (offset %v ahead of wall clock)\n", hlc.Format(ci.Last), ci.Offset)
		}
		if st.Degraded {
			fmt.Printf("  DEGRADED (read-only): %s\n", st.DegradedReason)
		}
	}
	if showMetrics {
		did = true
		text, err := services.MetricsClient{C: conn}.Text()
		if err != nil {
			return err
		}
		fmt.Print(text)
	}
	if get != "" {
		did = true
		e, err := services.StoreClient{C: conn}.Get(get)
		if err != nil {
			return err
		}
		data, err := e.MarshalIndent()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	}
	if search != "" {
		did = true
		ids, err := services.IndexClient{C: conn}.Search("all", strings.Fields(search)...)
		if err != nil {
			return err
		}
		fmt.Printf("%d documents match %q:\n", len(ids), search)
		for _, id := range ids {
			fmt.Println(" ", id)
		}
	}
	if sentimentQ != "" {
		did = true
		sc := services.SentimentClient{C: conn}
		pos, neg, err := sc.Counts(sentimentQ)
		if err != nil {
			return err
		}
		fmt.Printf("%q: %d positive, %d negative\n", sentimentQ, pos, neg)
		entries, err := sc.Query(sentimentQ)
		if err != nil {
			return err
		}
		for i, e := range entries {
			if i >= 10 {
				fmt.Printf("  ... %d more\n", len(entries)-10)
				break
			}
			pol := "+"
			if e.Polarity < 0 {
				pol = "-"
			}
			fmt.Printf("  [%s] %s s%d: %q\n", pol, e.DocID, e.Sentence, e.Snippet)
		}
	}
	if replicasQ != "" {
		did = true
		set, err := router.TopologyClient{C: conn}.Place(replicasQ)
		if err != nil {
			return err
		}
		fmt.Printf("%s -> %s (primary first)\n", replicasQ, strings.Join(set, ", "))
	}
	if !did {
		return fmt.Errorf("client mode needs one of -ping, -metrics, -get, -search, -sentiment, -replicas")
	}
	return nil
}
