package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"webfountain"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	miner, platform, err := mine("pharma", 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(miner, platform))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMineRejectsUnknownCorpus(t *testing.T) {
	if _, _, err := mine("bogus", 5, 1); err == nil {
		t.Error("unknown corpus should fail")
	}
}

func TestOverviewPage(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	for _, want := range []string{"Sentiment mining results", "documents mined", "/subject?name="} {
		if !strings.Contains(body, want) {
			t.Errorf("overview missing %q", want)
		}
	}
}

func TestSubjectPage(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/subject?name=medicure")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	if !strings.Contains(body, "medicure") || !strings.Contains(body, "positive") {
		t.Errorf("subject page incomplete: %.200s", body)
	}
	if status, _ := get(t, srv.URL+"/subject"); status != 400 {
		t.Errorf("missing name should be 400, got %d", status)
	}
}

func TestAPISubjects(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/api/subjects")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	var rows []struct {
		Subject            string
		Positive, Negative int
	}
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatalf("bad json: %v (%.100s)", err, body)
	}
	if len(rows) == 0 {
		t.Fatal("no subjects")
	}
	total := 0
	for _, r := range rows {
		total += r.Positive + r.Negative
	}
	if total == 0 {
		t.Error("no sentiment counted")
	}
}

func TestAPISentiment(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/api/sentiment?name=medicure")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	var entries []webfountain.SubjectSentiment
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if status, _ := get(t, srv.URL+"/api/sentiment"); status != 400 {
		t.Errorf("missing name should be 400, got %d", status)
	}
}
