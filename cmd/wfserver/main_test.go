package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"webfountain"
	"webfountain/internal/serve"
)

// degradable wraps the serving tier so tests can force degraded mode
// without corrupting a real store.
type degradable struct {
	*webfountain.ServingTier
	degraded bool
	reason   string
}

func (d *degradable) Degraded() (bool, string) { return d.degraded, d.reason }

func testBackend(t *testing.T) *degradable {
	t.Helper()
	miner, platform, facts, err := mine("pharma", 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { platform.Close() })
	return &degradable{ServingTier: webfountain.NewServingTier(platform, miner, facts)}
}

func testServerCfg(t *testing.T, cfg serve.GatewayConfig) (*httptest.Server, *degradable) {
	t.Helper()
	miner, platform, facts, err := mine("pharma", 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { platform.Close() })
	backend := &degradable{ServingTier: webfountain.NewServingTier(platform, miner, facts)}
	srv := httptest.NewServer(newMux(miner, platform, backend, cfg))
	t.Cleanup(srv.Close)
	return srv, backend
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, _ := testServerCfg(t, serve.GatewayConfig{})
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func getCached(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("X-Cache")
}

func TestMineRejectsUnknownCorpus(t *testing.T) {
	if _, _, _, err := mine("bogus", 5, 1); err == nil {
		t.Error("unknown corpus should fail")
	}
}

func TestOverviewPage(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	for _, want := range []string{"Sentiment mining results", "documents mined", "/subject?name="} {
		if !strings.Contains(body, want) {
			t.Errorf("overview missing %q", want)
		}
	}
}

func TestSubjectPage(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/subject?name=medicure")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	if !strings.Contains(body, "medicure") || !strings.Contains(body, "positive") {
		t.Errorf("subject page incomplete: %.200s", body)
	}
	if status, _ := get(t, srv.URL+"/subject"); status != 400 {
		t.Errorf("missing name should be 400, got %d", status)
	}
}

// TestAPISubjectsSchema pins the wire schema of /api/subjects: every key
// lower-case, share present. The untagged struct this replaces leaked
// Go-cased "Positive"/"Negative" field names to every API consumer.
func TestAPISubjectsSchema(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/api/subjects")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	var raw []map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &raw); err != nil {
		t.Fatalf("bad json: %v (%.100s)", err, body)
	}
	if len(raw) == 0 {
		t.Fatal("no subjects")
	}
	want := []string{"negative", "positive", "share", "subject"}
	for i, row := range raw {
		keys := make([]string, 0, len(row))
		for k := range row {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if strings.Join(keys, ",") != strings.Join(want, ",") {
			t.Fatalf("row %d keys = %v, want %v", i, keys, want)
		}
	}
	var rows []struct {
		Subject            string `json:"subject"`
		Positive, Negative int
		Share              int `json:"share"`
	}
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range rows {
		total += r.Positive + r.Negative
		if r.Share < 0 || r.Share > 100 {
			t.Errorf("%s: share %d out of range", r.Subject, r.Share)
		}
	}
	if total == 0 {
		t.Error("no sentiment counted")
	}
}

func TestAPISentiment(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/api/sentiment?name=medicure")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	var entries []serve.Entry
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("no entries for medicure")
	}
	for _, e := range entries {
		if e.Polarity != "+" && e.Polarity != "-" {
			t.Errorf("bad polarity %q", e.Polarity)
		}
	}
	if status, _ := get(t, srv.URL+"/api/sentiment"); status != 400 {
		t.Errorf("missing name should be 400, got %d", status)
	}
	// Unknown subject: empty JSON array, not null.
	_, body = get(t, srv.URL+"/api/sentiment?name=nonesuch")
	if strings.TrimSpace(body) != "[]" {
		t.Errorf("unknown subject body = %q, want []", body)
	}
}

// TestAPITrend exercises the materialized series — and would catch the
// old bug where wfserver dropped corpus dates, leaving trend empty.
func TestAPITrend(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/api/trend?name=medicure")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	var resp struct {
		Subject string         `json:"subject"`
		Series  []serve.Bucket `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if len(resp.Series) == 0 {
		t.Fatal("no time buckets — are corpus dates reaching the platform?")
	}
	for i := 1; i < len(resp.Series); i++ {
		if resp.Series[i-1].Month >= resp.Series[i].Month {
			t.Errorf("series not chronological: %s >= %s",
				resp.Series[i-1].Month, resp.Series[i].Month)
		}
	}
	if status, _ := get(t, srv.URL+"/api/trend"); status != 400 {
		t.Errorf("missing name should be 400, got %d", status)
	}
}

func TestAPIAspects(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/api/aspects?name=medicure")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	var resp struct {
		Subject string              `json:"subject"`
		Aspects []serve.AspectCount `json:"aspects"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if status, _ := get(t, srv.URL+"/api/aspects"); status != 400 {
		t.Errorf("missing name should be 400, got %d", status)
	}
}

func TestAPIOverview(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/api/overview")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	var resp struct {
		Documents  int    `json:"documents"`
		Subjects   int    `json:"subjects"`
		Facts      int    `json:"facts"`
		Generation uint64 `json:"generation"`
		Share      int    `json:"share"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if resp.Documents != 25 || resp.Subjects == 0 || resp.Facts == 0 || resp.Generation == 0 {
		t.Errorf("implausible overview: %+v", resp)
	}
}

// TestAPICacheInvalidationOnIngest: a repeated query hits the cache; an
// ingest batch bumps the generation, so the next query misses, re-renders
// against the new snapshot and includes the new batch's subject — the
// response is never staler than one ingest batch.
func TestAPICacheInvalidationOnIngest(t *testing.T) {
	srv, _ := testServerCfg(t, serve.GatewayConfig{})

	if _, _, xc := getCached(t, srv.URL+"/api/subjects"); xc != "miss" {
		t.Fatalf("first query X-Cache = %q, want miss", xc)
	}
	if _, _, xc := getCached(t, srv.URL+"/api/subjects"); xc != "hit" {
		t.Fatalf("second query X-Cache = %q, want hit", xc)
	}

	ingest := `{"docs":[{"title":"ZX900","date":"2004-03-02",
		"text":"The ZX900 takes excellent pictures. The ZX900 is disappointing in low light."}]}`
	resp, err := http.Post(srv.URL+"/api/ingest", "application/json", strings.NewReader(ingest))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		IDs        []string `json:"ids"`
		Facts      int      `json:"facts"`
		Generation uint64   `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || len(ack.IDs) != 1 || ack.Facts == 0 {
		t.Fatalf("ingest ack = %d %+v", resp.StatusCode, ack)
	}

	status, body, xc := getCached(t, srv.URL+"/api/subjects")
	if status != 200 || xc != "miss" {
		t.Fatalf("post-ingest query: status %d X-Cache %q, want 200 miss", status, xc)
	}
	if !strings.Contains(body, "zx900") {
		t.Fatalf("post-ingest response missing new subject: %.300s", body)
	}
	if _, _, xc := getCached(t, srv.URL+"/api/subjects"); xc != "hit" {
		t.Fatalf("re-query after invalidation X-Cache = %q, want hit", xc)
	}
}

func TestAPIIngestRejectsBadRequests(t *testing.T) {
	srv := testServer(t)
	if status, _ := get(t, srv.URL+"/api/ingest"); status != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/ingest = %d, want 405", status)
	}
	resp, err := http.Post(srv.URL+"/api/ingest", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/api/ingest", "application/json", strings.NewReader(`{"docs":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch = %d, want 400", resp.StatusCode)
	}
}

// TestAPIRateLimit: with refill disabled and a burst of 2, the third
// request from one tenant is 429 while another tenant still gets through.
func TestAPIRateLimit(t *testing.T) {
	srv, _ := testServerCfg(t, serve.GatewayConfig{TenantRate: -1, TenantBurst: 2})
	call := func(tenant string) int {
		req, err := http.NewRequest("GET", srv.URL+"/api/overview", nil)
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set("x-tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	for i := 0; i < 2; i++ {
		if status := call("acme"); status != 200 {
			t.Fatalf("request %d = %d", i, status)
		}
	}
	if status := call("acme"); status != http.StatusTooManyRequests {
		t.Fatalf("over-budget request = %d, want 429", status)
	}
	if status := call("globex"); status != 200 {
		t.Fatalf("other tenant = %d, want 200", status)
	}
}

// TestHealthzDegraded: healthy answers 200; a degraded (read-only) store
// answers 503 with the reason — so a load balancer rotates the node out —
// while read queries keep working and ingest is refused with 503.
func TestHealthzDegraded(t *testing.T) {
	srv, backend := testServerCfg(t, serve.GatewayConfig{})
	status, body := get(t, srv.URL+"/healthz")
	if status != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthy: %d %s", status, body)
	}

	backend.degraded = true
	backend.reason = "wal sync failure"
	status, body = get(t, srv.URL+"/healthz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz = %d, want 503", status)
	}
	if !strings.Contains(body, `"status":"degraded"`) || !strings.Contains(body, "wal sync failure") {
		t.Fatalf("degraded body missing reason: %s", body)
	}
	if status, _ := get(t, srv.URL+"/api/subjects"); status != 200 {
		t.Errorf("degraded read = %d, want 200 (read-only mode still serves)", status)
	}
	resp, err := http.Post(srv.URL+"/api/ingest", "application/json",
		strings.NewReader(`{"docs":[{"text":"x"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("degraded ingest = %d, want 503", resp.StatusCode)
	}
}
