// Command wfserver hosts the sentiment mining results as a Web service —
// the equivalent of the WebFountain application server behind Figures 4
// and 5 of the paper. It mines a generated corpus at startup and then
// serves it live: queries come off incrementally-maintained materialized
// aggregates behind a bounded result cache, and new documents POSTed to
// the ingest endpoint are mined online, with the cache invalidated on
// every batch.
//
//	GET  /                      — HTML overview: sentiment per subject
//	GET  /subject?name=X        — HTML listing of sentiment-bearing
//	                              sentences for a subject (Figure 5)
//	GET  /api/subjects          — JSON subject list with counts + share
//	GET  /api/sentiment?name=X  — JSON sentiment entries for a subject
//	GET  /api/trend?name=X      — JSON monthly sentiment series
//	GET  /api/aspects?name=X    — JSON per-feature (aspect) counts
//	GET  /api/overview          — JSON corpus totals + aggregate generation
//	POST /api/ingest            — ingest + mine documents online
//	GET  /metrics               — plain-text metrics registry dump
//	GET  /metrics.json          — full metrics snapshot as JSON
//	GET  /healthz               — liveness; 503 when the store is degraded
//
// Every /api request draws a per-tenant rate-limit token (x-tenant
// header; empty means the default tenant) and is answered 429 when the
// tenant's bucket is empty.
//
// Usage:
//
//	wfserver [-addr :8085] [-corpus pharma] [-docs 120] [-seed 7]
//	         [-cache-entries 256] [-tenant-rate 50] [-tenant-burst 100]
//	         [-pprof-addr :8086] [-drain-timeout 10s]
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops
// accepting, in-flight requests drain for up to -drain-timeout, and the
// final metrics registry is flushed to the log before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"html/template"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"webfountain"
	"webfountain/internal/corpus"
	"webfountain/internal/metrics"
	"webfountain/internal/serve"
)

var overviewTmpl = template.Must(template.New("overview").Parse(`<!DOCTYPE html>
<html><head><title>WebFountain Sentiment Miner</title>
<style>
 body { font-family: sans-serif; margin: 2em; }
 table { border-collapse: collapse; }
 td, th { border: 1px solid #999; padding: 4px 10px; text-align: left; }
 .bar { background: #4a4; display: inline-block; height: 12px; }
 .neg { background: #a44; }
</style></head><body>
<h1>Sentiment mining results</h1>
<p>{{.Docs}} documents mined; {{.Facts}} sentiment facts extracted.</p>
<table>
<tr><th>subject</th><th>positive</th><th>negative</th><th>positive share</th></tr>
{{range .Rows}}
<tr><td><a href="/subject?name={{.Subject}}">{{.Subject}}</a></td>
<td>{{.Pos}}</td><td>{{.Neg}}</td>
<td><span class="bar" style="width:{{.Share}}px"></span> {{.Share}}%</td></tr>
{{end}}
</table></body></html>`))

var subjectTmpl = template.Must(template.New("subject").Parse(`<!DOCTYPE html>
<html><head><title>{{.Name}} — sentiment</title>
<style>
 body { font-family: sans-serif; margin: 2em; }
 li { margin: 4px 0; }
 .plus { color: #070; } .minus { color: #900; }
</style></head><body>
<h1>Sentiment-bearing sentences for “{{.Name}}”</h1>
<p><a href="/">back</a> — {{.Pos}} positive, {{.Neg}} negative</p>
<ul>
{{range .Entries}}
<li class="{{if eq .Polarity 1}}plus{{else}}minus{{end}}">
[{{if eq .Polarity 1}}+{{else}}−{{end}}] <b>{{.DocID}}</b> s{{.Sentence}}: {{.Snippet}}</li>
{{end}}
</ul></body></html>`))

func main() {
	addr := flag.String("addr", ":8085", "listen address")
	corpusName := flag.String("corpus", "pharma", "corpus: camera, music, petroleum, pharma, news")
	docs := flag.Int("docs", 120, "documents to mine at startup")
	seed := flag.Int64("seed", 7, "corpus seed")
	cacheEntries := flag.Int("cache-entries", 256, "bounded LRU result cache size (negative: disable caching)")
	tenantRate := flag.Float64("tenant-rate", 50, "per-tenant steady request rate (tokens/second)")
	tenantBurst := flag.Int("tenant-burst", 100, "per-tenant token-bucket burst size")
	pprofAddr := flag.String("pprof-addr", "", "HTTP address for net/http/pprof profiling (empty: disabled)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound for draining in-flight requests")
	flag.Parse()

	miner, platform, facts, err := mine(*corpusName, *docs, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tier := webfountain.NewServingTier(platform, miner, facts)
	mux := newMux(miner, platform, tier, serve.GatewayConfig{
		CacheEntries: *cacheEntries,
		TenantRate:   *tenantRate,
		TenantBurst:  *tenantBurst,
	})

	if *pprofAddr != "" {
		// net/http/pprof registers its handlers on the default mux.
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	log.Printf("serving sentiment for %d documents on %s", platform.NumEntities(), *addr)
	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	// Graceful shutdown: stop accepting, drain in-flight requests for a
	// bounded window, then flush the final metrics so the run's numbers
	// survive the process.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("received %v, draining for up to %v", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
			srv.Close()
		}
		if err := platform.Close(); err != nil {
			log.Printf("platform close: %v", err)
		}
		log.Printf("final metrics:\n%s", metrics.Default().Text())
	}
}

// newMux wires the HTML views over the mined platform and mounts the
// serving-tier gateway for the JSON API, the health probe and ingest.
// The gateway handles its own caching, rate limiting and degraded-mode
// semantics; backend is the serving tier (an indirection the tests use
// to fake degraded mode).
func newMux(miner *webfountain.SentimentMiner, platform *webfountain.Platform,
	backend serve.Backend, cfg serve.GatewayConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		type row struct {
			Subject  string
			Pos, Neg int
			Share    int
		}
		var rows []row
		facts := 0
		for _, s := range miner.Subjects() {
			p, n := miner.Counts(s)
			facts += p + n
			// Rounded, not floored: a 99.9% share reads 100, not 99.
			// One helper shared with the aggregate layer (serve.Counts).
			rows = append(rows, row{Subject: s, Pos: p, Neg: n, Share: serve.SharePercent(p, n)})
		}
		data := struct {
			Docs, Facts int
			Rows        []row
		}{platform.NumEntities(), facts, rows}
		if err := overviewTmpl.Execute(w, data); err != nil {
			log.Print(err)
		}
	})
	mux.HandleFunc("/subject", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("name")
		if name == "" {
			http.Error(w, "missing name parameter", http.StatusBadRequest)
			return
		}
		p, n := miner.Counts(name)
		data := struct {
			Name     string
			Pos, Neg int
			Entries  []webfountain.SubjectSentiment
		}{name, p, n, miner.Query(name)}
		if err := subjectTmpl.Execute(w, data); err != nil {
			log.Print(err)
		}
	})
	gw := serve.NewGateway(backend, cfg)
	mux.Handle("/api/", gw)
	mux.Handle("/healthz", gw)
	metrics.Default().RegisterHTTP(mux)
	return mux
}

// mine generates, ingests and mines the corpus, returning the loaded
// miner, the platform and the extracted facts (which seed the serving
// tier's materialized aggregates).
func mine(corpusName string, docs int, seed int64) (*webfountain.SentimentMiner, *webfountain.Platform, []webfountain.SubjectSentiment, error) {
	var generated []corpus.Document
	switch corpusName {
	case "camera":
		generated = corpus.DigitalCameraReviews(seed, docs)
	case "music":
		generated = corpus.MusicReviews(seed, docs)
	case "petroleum":
		generated = corpus.PetroleumWeb(seed, docs)
	case "pharma":
		generated = corpus.PharmaWeb(seed, docs)
	case "news":
		generated = corpus.PetroleumNews(seed, docs)
	default:
		return nil, nil, nil, fmt.Errorf("unknown corpus %q", corpusName)
	}
	platform := webfountain.NewPlatform(webfountain.PlatformConfig{})
	pub := make([]webfountain.Document, len(generated))
	for i := range generated {
		pub[i] = webfountain.Document{
			ID: generated[i].ID, Source: generated[i].Source,
			Title: generated[i].Title, Text: generated[i].Text(),
			// The date used to be dropped here, leaving the trend
			// endpoint with no time buckets to serve.
			Date: generated[i].Date,
		}
	}
	if _, err := platform.Ingest(pub); err != nil {
		return nil, nil, nil, err
	}
	miner, err := webfountain.NewSentimentMiner(webfountain.MinerConfig{})
	if err != nil {
		return nil, nil, nil, err
	}
	facts, err := miner.Run(platform)
	if err != nil {
		return nil, nil, nil, err
	}
	return miner, platform, facts, nil
}
