// Command wfserver hosts the sentiment mining results as a Web service —
// the equivalent of the WebFountain application server behind Figures 4
// and 5 of the paper. It mines a generated corpus at startup and then
// serves it live: queries come off incrementally-maintained materialized
// aggregates behind a bounded result cache, and new documents POSTed to
// the ingest endpoint are mined online, with the cache invalidated on
// every batch.
//
//	GET  /                      — HTML overview: sentiment per subject
//	GET  /subject?name=X        — HTML listing of sentiment-bearing
//	                              sentences for a subject (Figure 5)
//	GET  /api/subjects          — JSON subject list with counts + share
//	GET  /api/sentiment?name=X  — JSON sentiment entries for a subject
//	GET  /api/trend?name=X      — JSON monthly sentiment series
//	GET  /api/aspects?name=X    — JSON per-feature (aspect) counts
//	GET  /api/overview          — JSON corpus totals + aggregate generation
//	POST /api/ingest            — ingest + mine documents online
//	GET  /metrics               — plain-text metrics registry dump
//	GET  /metrics.json          — full metrics snapshot as JSON
//	GET  /healthz               — liveness; 503 when the store is degraded
//
// Every /api request draws a per-tenant rate-limit token (x-tenant
// header; empty means the default tenant) and is answered 429 when the
// tenant's bucket is empty.
//
// Usage:
//
//	wfserver [-addr :8085] [-corpus pharma] [-docs 120] [-seed 7]
//	         [-data-dir ""] [-checkpoint-dir ""] [-checkpoint-every 8]
//	         [-cache-entries 256] [-tenant-rate 50] [-tenant-burst 100]
//	         [-max-ingest-bytes 8388608] [-request-timeout 0]
//	         [-pprof-addr :8086] [-drain-timeout 10s]
//
// With -data-dir the corpus lives in a durable write-ahead-logged
// store: a restart recovers every acked document instead of minting a
// fresh corpus. With -checkpoint-dir (requires -data-dir) the serving
// tier also persists its materialized aggregates, so a restart loads
// the newest valid checkpoint and re-mines only the documents past its
// watermark instead of the whole corpus — bounded recovery time even
// after a SIGKILL.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops
// accepting, in-flight requests drain for up to -drain-timeout, a
// final serving checkpoint is written, and the final metrics registry
// is flushed to the log before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"html/template"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"webfountain"
	"webfountain/internal/corpus"
	"webfountain/internal/metrics"
	"webfountain/internal/serve"
)

var overviewTmpl = template.Must(template.New("overview").Parse(`<!DOCTYPE html>
<html><head><title>WebFountain Sentiment Miner</title>
<style>
 body { font-family: sans-serif; margin: 2em; }
 table { border-collapse: collapse; }
 td, th { border: 1px solid #999; padding: 4px 10px; text-align: left; }
 .bar { background: #4a4; display: inline-block; height: 12px; }
 .neg { background: #a44; }
</style></head><body>
<h1>Sentiment mining results</h1>
<p>{{.Docs}} documents mined; {{.Facts}} sentiment facts extracted.</p>
<table>
<tr><th>subject</th><th>positive</th><th>negative</th><th>positive share</th></tr>
{{range .Rows}}
<tr><td><a href="/subject?name={{.Subject}}">{{.Subject}}</a></td>
<td>{{.Pos}}</td><td>{{.Neg}}</td>
<td><span class="bar" style="width:{{.Share}}px"></span> {{.Share}}%</td></tr>
{{end}}
</table></body></html>`))

var subjectTmpl = template.Must(template.New("subject").Parse(`<!DOCTYPE html>
<html><head><title>{{.Name}} — sentiment</title>
<style>
 body { font-family: sans-serif; margin: 2em; }
 li { margin: 4px 0; }
 .plus { color: #070; } .minus { color: #900; }
</style></head><body>
<h1>Sentiment-bearing sentences for “{{.Name}}”</h1>
<p><a href="/">back</a> — {{.Pos}} positive, {{.Neg}} negative</p>
<ul>
{{range .Entries}}
<li class="{{if eq .Polarity 1}}plus{{else}}minus{{end}}">
[{{if eq .Polarity 1}}+{{else}}−{{end}}] <b>{{.DocID}}</b> s{{.Sentence}}: {{.Snippet}}</li>
{{end}}
</ul></body></html>`))

func main() {
	addr := flag.String("addr", ":8085", "listen address")
	corpusName := flag.String("corpus", "pharma", "corpus: camera, music, petroleum, pharma, news")
	docs := flag.Int("docs", 120, "documents to mine at startup")
	seed := flag.Int64("seed", 7, "corpus seed")
	dataDir := flag.String("data-dir", "", "durable store root (empty: in-memory, corpus is lost on exit)")
	checkpointDir := flag.String("checkpoint-dir", "", "serving-tier checkpoint directory (requires -data-dir; empty: aggregates re-mined at boot)")
	checkpointEvery := flag.Int("checkpoint-every", 8, "write a serving checkpoint every N ingest batches (0: only on shutdown)")
	cacheEntries := flag.Int("cache-entries", 256, "bounded LRU result cache size (negative: disable caching)")
	tenantRate := flag.Float64("tenant-rate", 50, "per-tenant steady request rate (tokens/second)")
	tenantBurst := flag.Int("tenant-burst", 100, "per-tenant token-bucket burst size")
	maxIngestBytes := flag.Int64("max-ingest-bytes", 8<<20, "largest accepted /api/ingest body in bytes (negative: unbounded)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request handling deadline propagated into backend calls (0: none)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slowloris bound)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
	writeTimeout := flag.Duration("write-timeout", 60*time.Second, "http.Server WriteTimeout")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "http.Server IdleTimeout")
	pprofAddr := flag.String("pprof-addr", "", "HTTP address for net/http/pprof profiling (empty: disabled)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound for draining in-flight requests")
	flag.Parse()

	miner, platform, tier, err := boot(*corpusName, *docs, *seed, *dataDir, *checkpointDir, *checkpointEvery)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mux := newMux(miner, platform, tier, serve.GatewayConfig{
		CacheEntries:   *cacheEntries,
		TenantRate:     *tenantRate,
		TenantBurst:    *tenantBurst,
		MaxIngestBytes: *maxIngestBytes,
		RequestTimeout: *requestTimeout,
	})

	if *pprofAddr != "" {
		// net/http/pprof registers its handlers on the default mux.
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	log.Printf("serving sentiment for %d documents on %s", platform.NumEntities(), *addr)
	// Real timeouts on every phase of a connection's life, so a
	// slowloris client trickling headers or never reading its response
	// cannot pin server resources forever.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	// Graceful shutdown: stop accepting, drain in-flight requests for a
	// bounded window, write a final serving checkpoint, then flush the
	// final metrics so the run's numbers survive the process.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("received %v, draining for up to %v", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
			srv.Close()
		}
		if err := tier.Close(); err != nil {
			log.Printf("serving checkpoint: %v", err)
		}
		if err := platform.Close(); err != nil {
			log.Printf("platform close: %v", err)
		}
		log.Printf("final metrics:\n%s", metrics.Default().Text())
	}
}

// boot assembles the mined platform and the serving tier. Without a
// data dir the boot is the PR 9 in-memory path: generate, ingest and
// batch-mine the corpus. With one, the corpus lives in the durable
// store (seeded only when empty) and the tier recovers from its newest
// checkpoint, re-mining only the documents past the watermark.
func boot(corpusName string, docs int, seed int64, dataDir, checkpointDir string, checkpointEvery int) (
	*webfountain.SentimentMiner, *webfountain.Platform, *webfountain.ServingTier, error) {
	if dataDir == "" {
		if checkpointDir != "" {
			return nil, nil, nil, fmt.Errorf("-checkpoint-dir requires -data-dir: a checkpoint watermark is only meaningful against a durable doc set")
		}
		miner, platform, facts, err := mine(corpusName, docs, seed)
		if err != nil {
			return nil, nil, nil, err
		}
		return miner, platform, webfountain.NewServingTier(platform, miner, facts), nil
	}

	platform, err := webfountain.OpenPlatform(webfountain.PlatformConfig{DataDir: dataDir})
	if err != nil {
		return nil, nil, nil, err
	}
	if platform.NumEntities() == 0 {
		pub, err := buildCorpus(corpusName, docs, seed)
		if err != nil {
			platform.Close()
			return nil, nil, nil, err
		}
		if _, err := platform.Ingest(pub); err != nil {
			platform.Close()
			return nil, nil, nil, err
		}
	}
	miner, err := webfountain.NewSentimentMiner(webfountain.MinerConfig{})
	if err != nil {
		platform.Close()
		return nil, nil, nil, err
	}
	start := time.Now()
	tier, rec, err := webfountain.RecoverServingTier(platform, miner, webfountain.ServingTierConfig{
		CheckpointDir:   checkpointDir,
		CheckpointEvery: checkpointEvery,
	})
	if err != nil {
		platform.Close()
		return nil, nil, nil, err
	}
	log.Printf("serving recovery: checkpoint=%v gen=%d quarantined=%d repaired=%d docs in %v",
		rec.CheckpointLoaded, rec.CheckpointGen, rec.Quarantined, rec.RepairedDocs,
		time.Since(start).Round(time.Millisecond))
	return miner, platform, tier, nil
}

// newMux wires the HTML views over the mined platform and mounts the
// serving-tier gateway for the JSON API, the health probe and ingest.
// The gateway handles its own caching, rate limiting and degraded-mode
// semantics; backend is the serving tier (an indirection the tests use
// to fake degraded mode).
func newMux(miner *webfountain.SentimentMiner, platform *webfountain.Platform,
	backend serve.Backend, cfg serve.GatewayConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		type row struct {
			Subject  string
			Pos, Neg int
			Share    int
		}
		var rows []row
		facts := 0
		for _, s := range miner.Subjects() {
			p, n := miner.Counts(s)
			facts += p + n
			// Rounded, not floored: a 99.9% share reads 100, not 99.
			// One helper shared with the aggregate layer (serve.Counts).
			rows = append(rows, row{Subject: s, Pos: p, Neg: n, Share: serve.SharePercent(p, n)})
		}
		data := struct {
			Docs, Facts int
			Rows        []row
		}{platform.NumEntities(), facts, rows}
		if err := overviewTmpl.Execute(w, data); err != nil {
			log.Print(err)
		}
	})
	mux.HandleFunc("/subject", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("name")
		if name == "" {
			http.Error(w, "missing name parameter", http.StatusBadRequest)
			return
		}
		p, n := miner.Counts(name)
		data := struct {
			Name     string
			Pos, Neg int
			Entries  []webfountain.SubjectSentiment
		}{name, p, n, miner.Query(name)}
		if err := subjectTmpl.Execute(w, data); err != nil {
			log.Print(err)
		}
	})
	gw := serve.NewGateway(backend, cfg)
	mux.Handle("/api/", gw)
	mux.Handle("/healthz", gw)
	metrics.Default().RegisterHTTP(mux)
	return mux
}

// buildCorpus generates the named corpus as ingestable documents.
func buildCorpus(corpusName string, docs int, seed int64) ([]webfountain.Document, error) {
	var generated []corpus.Document
	switch corpusName {
	case "camera":
		generated = corpus.DigitalCameraReviews(seed, docs)
	case "music":
		generated = corpus.MusicReviews(seed, docs)
	case "petroleum":
		generated = corpus.PetroleumWeb(seed, docs)
	case "pharma":
		generated = corpus.PharmaWeb(seed, docs)
	case "news":
		generated = corpus.PetroleumNews(seed, docs)
	default:
		return nil, fmt.Errorf("unknown corpus %q", corpusName)
	}
	pub := make([]webfountain.Document, len(generated))
	for i := range generated {
		pub[i] = webfountain.Document{
			ID: generated[i].ID, Source: generated[i].Source,
			Title: generated[i].Title, Text: generated[i].Text(),
			// The date used to be dropped here, leaving the trend
			// endpoint with no time buckets to serve.
			Date: generated[i].Date,
		}
	}
	return pub, nil
}

// mine generates, ingests and mines the corpus in memory, returning the
// loaded miner, the platform and the extracted facts (which seed the
// serving tier's materialized aggregates) — the boot path when no data
// directory is configured.
func mine(corpusName string, docs int, seed int64) (*webfountain.SentimentMiner, *webfountain.Platform, []webfountain.SubjectSentiment, error) {
	pub, err := buildCorpus(corpusName, docs, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	platform := webfountain.NewPlatform(webfountain.PlatformConfig{})
	if _, err := platform.Ingest(pub); err != nil {
		return nil, nil, nil, err
	}
	miner, err := webfountain.NewSentimentMiner(webfountain.MinerConfig{})
	if err != nil {
		return nil, nil, nil, err
	}
	facts, err := miner.Run(platform)
	if err != nil {
		return nil, nil, nil, err
	}
	return miner, platform, facts, nil
}
