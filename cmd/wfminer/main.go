// Command wfminer runs the sentiment miner over a generated corpus, in
// either operational mode, and prints the extracted (subject, sentiment)
// facts. It exercises the full platform pipeline: corpus generation →
// ingestion → parallel mining → sentiment index → reporting.
//
// Usage:
//
//	wfminer [-corpus camera|music|petroleum|pharma|news] [-docs n]
//	        [-mode subjects|entities] [-query subject] [-seed n] [-v]
//
// With -mode subjects (the default), the domain's products/companies are
// the predefined subjects of interest. With -mode entities, the named
// entity spotter discovers subjects and -query looks one up in the
// sentiment index afterwards.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"webfountain"
	"webfountain/internal/corpus"
)

func main() {
	corpusName := flag.String("corpus", "camera", "corpus: camera, music, petroleum, pharma, news")
	docs := flag.Int("docs", 50, "number of documents to generate")
	mode := flag.String("mode", "subjects", "operational mode: subjects (predefined) or entities (query-time)")
	query := flag.String("query", "", "subject to query after mining (entities mode)")
	seed := flag.Int64("seed", 1, "corpus seed")
	verbose := flag.Bool("v", false, "print every extracted fact")
	analytics := flag.Bool("analytics", false, "also run the standard platform miner suite")
	trend := flag.String("trend", "", "print the monthly sentiment trend for a subject")
	flag.Parse()

	gen, subjects, err := pickCorpus(*corpusName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	generated := gen(*seed, *docs)

	platform := webfountain.NewPlatform(webfountain.PlatformConfig{})
	pubDocs := make([]webfountain.Document, len(generated))
	for i := range generated {
		pubDocs[i] = webfountain.Document{
			ID:     generated[i].ID,
			Source: generated[i].Source,
			Title:  generated[i].Title,
			Date:   generated[i].Date,
			Links:  generated[i].Links,
			Text:   generated[i].Text(),
		}
	}
	if _, err := platform.Ingest(pubDocs); err != nil {
		fmt.Fprintln(os.Stderr, "ingest:", err)
		os.Exit(1)
	}
	fmt.Printf("ingested %d %s documents\n", platform.NumEntities(), *corpusName)

	cfg := webfountain.MinerConfig{}
	if *mode == "subjects" {
		for _, s := range subjects {
			cfg.Subjects = append(cfg.Subjects, webfountain.Subject{Canonical: s})
		}
	}
	miner, err := webfountain.NewSentimentMiner(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "miner:", err)
		os.Exit(1)
	}

	facts, err := miner.Run(platform)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mining:", err)
		os.Exit(1)
	}
	fmt.Printf("extracted %d (subject, sentiment) facts\n\n", len(facts))

	if *verbose {
		for _, f := range facts {
			fmt.Printf("  %-10s s%-3d (%s, %s)  %q\n", f.DocID, f.Sentence, f.Subject, f.Polarity, f.Snippet)
		}
		fmt.Println()
	}

	if *analytics {
		rep, err := platform.RunAnalytics(webfountain.AnalyticsConfig{TopTerms: 10, Clusters: 3})
		if err != nil {
			fmt.Fprintln(os.Stderr, "analytics:", err)
			os.Exit(1)
		}
		fmt.Printf("analytics: %d docs, %d tokens, vocabulary %d, avg %.1f tokens/doc\n",
			rep.Stats.Documents, rep.Stats.Tokens, rep.Stats.Vocabulary, rep.Stats.AvgDocTokens)
		fmt.Printf("  duplicate clusters: %d\n", len(rep.DuplicateClusters))
		if len(rep.TopRanked) > 0 {
			fmt.Printf("  top ranked page: %s (%.4f)\n", rep.TopRanked[0].ID, rep.TopRanked[0].Score)
		}
		for i, c := range rep.Clusters {
			fmt.Printf("  cluster %d (%d docs): %v\n", i, c.Size, c.TopTerms)
		}
		fmt.Println()
	}

	if *trend != "" {
		series, momentum, ok := platform.SentimentTrend(*trend)
		if !ok {
			fmt.Printf("no trend data for %q\n", *trend)
		} else {
			fmt.Printf("sentiment trend for %q (momentum %+.2f):\n", *trend, momentum)
			for _, pt := range series {
				fmt.Printf("  %s  %3d+ %3d-\n", pt.Month, pt.Positive, pt.Negative)
			}
		}
		fmt.Println()
	}

	if *query != "" {
		pos, neg := miner.Counts(*query)
		fmt.Printf("query %q: %d positive, %d negative\n", *query, pos, neg)
		for _, e := range miner.Query(*query) {
			fmt.Printf("  [%s] %s s%d: %q\n", e.Polarity, e.DocID, e.Sentence, e.Snippet)
		}
		return
	}

	// Reputation summary per subject.
	type rep struct {
		subject  string
		pos, neg int
	}
	var reps []rep
	for _, s := range miner.Subjects() {
		p, n := miner.Counts(s)
		reps = append(reps, rep{s, p, n})
	}
	// Subjects with equal mention counts must keep a deterministic order,
	// or the report shuffles between runs (Subjects() is sorted, but a
	// non-stable sort on the count alone would scramble the ties).
	sort.SliceStable(reps, func(i, j int) bool {
		if ti, tj := reps[i].pos+reps[i].neg, reps[j].pos+reps[j].neg; ti != tj {
			return ti > tj
		}
		return reps[i].subject < reps[j].subject
	})
	fmt.Printf("%-24s %9s %9s %10s\n", "subject", "positive", "negative", "pos share")
	for i, r := range reps {
		if i >= 20 {
			fmt.Printf("... and %d more subjects\n", len(reps)-20)
			break
		}
		share := 0.0
		if r.pos+r.neg > 0 {
			share = 100 * float64(r.pos) / float64(r.pos+r.neg)
		}
		fmt.Printf("%-24s %9d %9d %9.0f%%\n", r.subject, r.pos, r.neg, share)
	}
}

func pickCorpus(name string) (func(int64, int) []corpus.Document, []string, error) {
	switch name {
	case "camera":
		subjects := append(append([]string{}, corpus.CameraProducts...), corpus.CameraFeatures...)
		return corpus.DigitalCameraReviews, subjects, nil
	case "music":
		subjects := append(append([]string{}, corpus.MusicAlbums...), corpus.MusicFeatures...)
		return corpus.MusicReviews, subjects, nil
	case "petroleum":
		return corpus.PetroleumWeb, corpus.PetroleumCompanies, nil
	case "pharma":
		return corpus.PharmaWeb, corpus.PharmaCompanies, nil
	case "news":
		return corpus.PetroleumNews, corpus.PetroleumCompanies, nil
	case "bboard":
		return corpus.BulletinBoard, corpus.CameraProducts, nil
	}
	return nil, nil, fmt.Errorf("unknown corpus %q (want camera, music, petroleum, pharma, news or bboard)", name)
}
