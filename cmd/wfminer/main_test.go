package main

import (
	"testing"
)

func TestPickCorpusKnownNames(t *testing.T) {
	for _, name := range []string{"camera", "music", "petroleum", "pharma", "news", "bboard"} {
		gen, subjects, err := pickCorpus(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(subjects) == 0 {
			t.Errorf("%s: no subjects", name)
		}
		docs := gen(1, 3)
		if len(docs) != 3 {
			t.Errorf("%s: generated %d docs", name, len(docs))
		}
	}
}

func TestPickCorpusUnknown(t *testing.T) {
	if _, _, err := pickCorpus("nope"); err == nil {
		t.Error("unknown corpus should fail")
	}
}
