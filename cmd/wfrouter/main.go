// Command wfrouter runs the stateless routing tier in front of a set
// of wfnode storage nodes: it places every document on a replica set
// via the seeded consistent-hash ring, replicates writes, hedges reads
// across replicas, probes node health, and performs online shard
// handoff when membership changes.
//
// Server:
//
//	wfrouter -listen :9400 -nodes n1=host1:9410,n2=host2:9410,n3=host3:9410
//	         [-replicas 2] [-vnodes 64] [-seed 1] [-probe-interval 500ms]
//	         [-hedge-after 20ms] [-metrics-addr :9401]
//	         [-write-quorum 2] [-read-quorum 1] [-write-timeout 2s]
//	         [-anti-entropy-interval 30s] [-peers rtr2=host2:9400]
//
// -write-quorum (W) and -read-quorum (R) set the consistency level:
// a write is acknowledged only after W replicas accept it, and a read
// consults R replicas, returns the newest version, and repairs stale
// copies in the background. -anti-entropy-interval runs the divergence
// sweep that heals whatever read-repair misses. -peers names the other
// routers of the same deployment: membership changes admitted here are
// pushed to them (and refused loudly if they cannot converge), and a
// router that discovers it is behind refuses writes until it has
// re-pulled the ring.
//
// The router serves the SAME store/index/sentiment wire protocol a
// single node speaks, so any wfnode client works against it unchanged
// (wfnode -connect router:9400 -search "battery life"). It
// additionally serves the "topology" control service: cluster status,
// placement queries, and membership operations.
//
// Client (one-shot control operations against a running router):
//
//	wfrouter -connect host:9400 -status
//	wfrouter -connect host:9400 -place doc-000123
//	wfrouter -connect host:9400 -join n4=host4:9410
//	wfrouter -connect host:9400 -drain n2
//	wfrouter -connect host:9400 -rejoin n2
//
// -join admits a new node through the online handoff (dual-write,
// WAL-frame catch-up, atomic ring-epoch bump); -drain retires one the
// same way; -rejoin catches a recovered member up on everything it
// missed while down.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"webfountain/internal/metrics"
	"webfountain/internal/router"
	"webfountain/internal/services"
	"webfountain/internal/vinci"
)

func main() {
	listen := flag.String("listen", "", "serve mode: listen address (e.g. :9400)")
	nodes := flag.String("nodes", "", "serve mode: initial members as name=addr,name=addr")
	replicas := flag.Int("replicas", 2, "serve mode: replica-set size R")
	vnodes := flag.Int("vnodes", 64, "serve mode: virtual nodes per member")
	seed := flag.Int64("seed", 1, "serve mode: ring placement seed")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "serve mode: health-probe cadence (0: off)")
	hedgeAfter := flag.Duration("hedge-after", 20*time.Millisecond, "serve mode: hedge reads to the second replica after this long")
	metricsAddr := flag.String("metrics-addr", "", "serve mode: HTTP address for /metrics and /healthz (empty: disabled)")
	writeQuorum := flag.Int("write-quorum", 2, "serve mode: W, replicas that must accept a write before it is acked (1: availability mode)")
	readQuorum := flag.Int("read-quorum", 1, "serve mode: R, replicas a read consults (R>1: newest version wins, stale copies repaired)")
	writeTimeout := flag.Duration("write-timeout", 2*time.Second, "serve mode: per-replica write deadline budget (0: none)")
	antiEntropyInterval := flag.Duration("anti-entropy-interval", 30*time.Second, "serve mode: background divergence-sweep cadence (0: off)")
	peers := flag.String("peers", "", "serve mode: peer routers as name=addr,name=addr; membership changes converge across them")
	connect := flag.String("connect", "", "client mode: router address to connect to")
	status := flag.Bool("status", false, "client: print ring epoch, digest, members and suspects")
	place := flag.String("place", "", "client: print the replica set for a key, primary first")
	join := flag.String("join", "", "client: admit a node, as name=addr")
	drain := flag.String("drain", "", "client: retire the named node via handoff")
	rejoin := flag.String("rejoin", "", "client: catch the named recovered member up")
	callTimeout := flag.Duration("call-timeout", 10*time.Second, "per-call deadline budget")
	flag.Parse()

	switch {
	case *listen != "":
		sc := serveConfig{
			Addr: *listen, Nodes: *nodes, Peers: *peers,
			Replicas: *replicas, VNodes: *vnodes, Seed: *seed,
			ProbeInterval: *probeInterval, HedgeAfter: *hedgeAfter,
			MetricsAddr: *metricsAddr, CallTimeout: *callTimeout,
			WriteQuorum: *writeQuorum, ReadQuorum: *readQuorum,
			WriteTimeout: *writeTimeout, AntiEntropyInterval: *antiEntropyInterval,
		}
		if err := serve(sc); err != nil {
			log.Fatal(err)
		}
	case *connect != "":
		if err := client(*connect, *callTimeout, *status, *place, *join, *drain, *rejoin); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -listen (serve) or -connect (client); see -h")
		os.Exit(2)
	}
}

// parseMembers splits "name=addr,name=addr" preserving order.
func parseMembers(spec string) ([][2]string, error) {
	if spec == "" {
		return nil, fmt.Errorf("wfrouter: -nodes is required (name=addr,name=addr)")
	}
	var out [][2]string
	for _, part := range strings.Split(spec, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("wfrouter: bad member %q, want name=addr", part)
		}
		out = append(out, [2]string{name, addr})
	}
	return out, nil
}

// serveConfig carries wfrouter's serve-mode flags.
type serveConfig struct {
	Addr, Nodes, Peers                string
	Replicas, VNodes                  int
	Seed                              int64
	ProbeInterval, HedgeAfter         time.Duration
	MetricsAddr                       string
	CallTimeout                       time.Duration
	WriteQuorum, ReadQuorum           int
	WriteTimeout, AntiEntropyInterval time.Duration
}

func serve(sc serveConfig) error {
	addr, metricsAddr := sc.Addr, sc.MetricsAddr
	members, err := parseMembers(sc.Nodes)
	if err != nil {
		return err
	}
	dial := func(nodeAddr string) (vinci.Client, error) {
		return vinci.DialWith(nodeAddr, vinci.DialOptions{
			CallTimeout: sc.CallTimeout,
			Retry:       vinci.RetryPolicy{MaxAttempts: 2, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond, Jitter: 0.2},
		})
	}
	var handles []router.NodeHandle
	for _, m := range members {
		c, err := dial(m[1])
		if err != nil {
			for _, h := range handles {
				h.Client.Close()
			}
			return fmt.Errorf("wfrouter: dial %s (%s): %w", m[0], m[1], err)
		}
		// Addr rides along so a ring adopted from a peer router can name
		// this member and we can re-dial it if the handle was retired.
		handles = append(handles, router.NodeHandle{Name: m[0], Client: c, Addr: m[1]})
	}
	r := router.New(handles, router.Options{
		Replicas:            sc.Replicas,
		VNodes:              sc.VNodes,
		Seed:                sc.Seed,
		ProbeInterval:       sc.ProbeInterval,
		HedgeAfter:          sc.HedgeAfter,
		Dial:                dial,
		WriteQuorum:         sc.WriteQuorum,
		ReadQuorum:          sc.ReadQuorum,
		WriteTimeout:        sc.WriteTimeout,
		AntiEntropyInterval: sc.AntiEntropyInterval,
	})
	defer r.Close()

	// Peer routers: dial each and pull/push ring state until the first
	// successful sync. A peer that is still starting is retried in the
	// background; the anti-entropy loop keeps re-syncing a stale router
	// afterwards.
	if sc.Peers != "" {
		peerMembers, err := parseMembers(sc.Peers)
		if err != nil {
			return err
		}
		for _, p := range peerMembers {
			c, err := dial(p[1])
			if err != nil {
				return fmt.Errorf("wfrouter: dial peer %s (%s): %w", p[0], p[1], err)
			}
			r.AddPeer(p[0], c)
		}
		go func() {
			for attempt, backoff := 0, 250*time.Millisecond; attempt < 20; attempt++ {
				if err := r.SyncPeersOnce(); err == nil {
					ring := r.Ring()
					log.Printf("peer sync converged: epoch %d, ring %s", ring.Epoch(), ring.Digest()[:12])
					return
				} else {
					log.Printf("peer sync: %v (retrying in %v)", err, backoff)
				}
				time.Sleep(backoff)
				if backoff < 4*time.Second {
					backoff *= 2
				}
			}
			log.Printf("peer sync: giving up on initial convergence; anti-entropy loop keeps retrying")
		}()
	}

	reg := vinci.NewRegistry()
	r.RegisterRouted(reg)
	r.RegisterTopology(reg)
	services.RegisterHealth(reg, services.HealthOptions{
		Node:     "wfrouter@" + addr,
		Registry: reg,
		Entities: func() int {
			n, err := r.NumEntities()
			if err != nil {
				return 0
			}
			return n
		},
		Degraded: func() (bool, string) {
			if s := r.Suspects(); len(s) > 0 {
				return true, "suspected nodes: " + strings.Join(s, ", ")
			}
			return false, ""
		},
		Topology: func() services.TopologyInfo {
			ring := r.Ring()
			return services.TopologyInfo{Epoch: ring.Epoch(), Digest: ring.Digest()}
		},
		Clock: func() services.ClockInfo {
			c := r.Clock()
			return services.ClockInfo{Last: c.Last(), Offset: c.Offset()}
		},
	})
	services.RegisterMetrics(reg, metrics.Default())

	if metricsAddr != "" {
		mux := http.NewServeMux()
		metrics.Default().RegisterHTTP(mux)
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			ring := r.Ring()
			suspects := r.Suspects()
			clk := r.Clock()
			stale := r.Stale()
			w.Header().Set("Content-Type", "application/json")
			if len(suspects) > 0 || stale {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			fmt.Fprintf(w, `{"node":%q,"ring_epoch":%d,"ring_digest":%q,"members":%q,"suspects":%q,"stale":%v,"write_quorum":%d,"read_quorum":%d,"hlc":%d,"hlc_offset_ms":%d}`+"\n",
				"wfrouter@"+addr, ring.Epoch(), ring.Digest(),
				strings.Join(ring.Members(), ","), strings.Join(suspects, ","),
				stale, sc.WriteQuorum, sc.ReadQuorum,
				clk.Last(), clk.Offset().Milliseconds())
		})
		go func() {
			log.Printf("metrics on http://%s/metrics", metricsAddr)
			if err := http.ListenAndServe(metricsAddr, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ring := r.Ring()
	log.Printf("wfrouter serving %v on %s: %d members, R=%d, W=%d/R=%d quorums, epoch %d, ring %s",
		reg.Services(), ln.Addr(), ring.NumMembers(), ring.Replicas(),
		sc.WriteQuorum, sc.ReadQuorum, ring.Epoch(), ring.Digest()[:12])

	srv := vinci.NewServer(reg)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("received %v, shutting down", sig)
		if cerr := srv.Close(); cerr != nil {
			log.Printf("server close: %v", cerr)
		}
	}()
	return srv.Serve(ln)
}

func client(addr string, callTimeout time.Duration, status bool, place, join, drain, rejoin string) error {
	c, err := vinci.DialWith(addr, vinci.DialOptions{CallTimeout: callTimeout})
	if err != nil {
		return err
	}
	defer c.Close()
	tc := router.TopologyClient{C: c}

	did := false
	if status {
		did = true
		st, err := tc.Status()
		if err != nil {
			return err
		}
		fmt.Printf("ring epoch %d, digest %s\n", st.Epoch, st.Digest)
		fmt.Printf("members (%d, R=%d): %s\n", len(st.Members), st.Replicas, strings.Join(st.Members, ", "))
		if len(st.Suspects) > 0 {
			fmt.Printf("SUSPECTED: %s\n", strings.Join(st.Suspects, ", "))
		}
		for _, m := range st.Members {
			ti, err := tc.Node(m)
			if err != nil {
				return err
			}
			fmt.Printf("  %-12s %s: %d primary shards, %d replica shards\n", m, ti.Role(), ti.Primaries, ti.Replicas)
		}
	}
	if place != "" {
		did = true
		set, err := tc.Place(place)
		if err != nil {
			return err
		}
		fmt.Printf("%s -> %s (primary first)\n", place, strings.Join(set, ", "))
	}
	if join != "" {
		did = true
		name, nodeAddr, ok := strings.Cut(join, "=")
		if !ok {
			return fmt.Errorf("-join wants name=addr")
		}
		if err := tc.Join(name, nodeAddr); err != nil {
			return err
		}
		fmt.Printf("joined %s (%s)\n", name, nodeAddr)
	}
	if drain != "" {
		did = true
		if err := tc.Drain(drain); err != nil {
			return err
		}
		fmt.Printf("drained %s\n", drain)
	}
	if rejoin != "" {
		did = true
		if err := tc.Rejoin(rejoin); err != nil {
			return err
		}
		fmt.Printf("rejoined %s\n", rejoin)
	}
	if !did {
		return fmt.Errorf("client mode needs one of -status, -place, -join, -drain, -rejoin")
	}
	return nil
}
