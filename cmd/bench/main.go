// Command bench runs the platform's performance benchmarks outside `go
// test` and records the results as JSON, so every PR's speedup (or
// regression) is a committed artifact rather than a claim. It covers
// the ingest→index pipeline end to end (serial vs. worker-pool), the
// sharded inverted index, WAL durability with and without group commit,
// and the single-thread NLP micro-benchmarks that guard against
// regressions on the non-parallel paths. Three scenario probes cover
// the distributed paths: p99 latency under 2× open-loop overload with
// admission control on vs. off, the extra-call fraction of hedged
// reads, and the per-put cost of the write quorum (W=1 vs W=2) on the
// replicated tier. A fourth probe drives an open-loop read storm at the
// live serving tier, comparing per-request store scans against the
// materialized aggregates with and without the gateway's result cache —
// the numbers behind the serving tier's "query cost must not grow with
// the corpus" claim. A fifth probe measures serving-tier recovery time:
// cold full re-mine of a durable corpus vs. checkpoint restore plus
// watermark repair of the un-checkpointed tail — the bound the
// crash-recoverable serving tier puts on restart.
//
//	bench [-quick] [-docs N] [-out BENCH_PR10.json]
//	bench -compare old.json new.json
//
// The -compare mode doubles as the allocation regression gate for the
// zero-alloc mining hot path: besides the before/after table it fails
// (exit 1) when any mine/* benchmark's allocs/op regressed more than
// 10% against the old file, so CI's bench-smoke catches an accidental
// re-introduction of per-document garbage.
//
// The JSON records ns/op, MB/s and allocs/op per benchmark plus the
// machine shape (CPUs, GOMAXPROCS) the numbers were taken on — parallel
// speedups are only meaningful relative to the recorded CPU count. A
// GOMAXPROCS sweep (1/2/4) re-runs the 4-worker ingest bench with the
// scheduler pinned to each width (ingest/4w@2p etc.), separating "more
// workers" from "more CPUs" in the scaling story. The
// report also embeds a snapshot of the metrics registry taken after the
// run, so the per-stage pipeline latency histograms land in the same
// artifact as the throughput numbers. The -compare mode prints a
// before/after table of two result files.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	webfountain "webfountain"
	"webfountain/internal/corpus"
	"webfountain/internal/index"
	"webfountain/internal/metrics"
	"webfountain/internal/pos"
	"webfountain/internal/serve"
	"webfountain/internal/store"
	"webfountain/internal/tokenize"
	"webfountain/internal/vinci"
)

// Result is one benchmark's recorded numbers.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the file layout of BENCH_*.json.
type Report struct {
	Bench      string             `json:"bench"`
	GoVersion  string             `json:"go"`
	CPUs       int                `json:"cpus"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Quick      bool               `json:"quick,omitempty"`
	Docs       int                `json:"docs"`
	Timestamp  string             `json:"timestamp"`
	Results    []Result           `json:"results"`
	Derived    map[string]float64 `json:"derived,omitempty"`
	// Metrics is the registry snapshot taken after the run: the
	// per-stage pipeline latency histograms, WAL counters and RPC
	// metrics the benchmarked code paths populated.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_PR10.json", "output JSON path")
	quick := flag.Bool("quick", false, "smaller corpora for CI smoke runs")
	docsFlag := flag.Int("docs", 0, "corpus size per ingest iteration (0: 200, or 40 with -quick)")
	compare := flag.Bool("compare", false, "compare two result files: bench -compare old.json new.json")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: bench -compare old.json new.json")
			os.Exit(2)
		}
		if err := compareFiles(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	docs := *docsFlag
	if docs <= 0 {
		if *quick {
			docs = 40
		} else {
			docs = 200
		}
	}
	rep := run(docs, *quick)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks, %d CPUs)\n", *out, len(rep.Results), rep.CPUs)
}

// run executes the benchmark suite and assembles the report.
func run(docs int, quick bool) Report {
	rep := Report{
		Bench:      "PR10",
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Docs:       docs,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}

	generated := corpus.DigitalCameraReviews(1, docs)
	batch := make([]webfountain.Document, len(generated))
	textBytes := 0
	for i := range generated {
		batch[i] = webfountain.Document{Text: generated[i].Text()}
		textBytes += len(batch[i].Text)
	}
	tk := tokenize.New()
	tokenized := make([][]string, len(batch))
	for i := range batch {
		toks := tk.Tokenize(batch[i].Text)
		words := make([]string, len(toks))
		for j := range toks {
			words[j] = toks[j].Text
		}
		tokenized[i] = words
	}

	byName := map[string]Result{}
	record := func(name string, bytesPerOp int64, fn func(b *testing.B)) {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			if bytesPerOp > 0 {
				b.SetBytes(bytesPerOp)
			}
			fn(b)
		})
		res := Result{
			Name:        name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if bytesPerOp > 0 && r.T > 0 {
			res.MBPerSec = float64(bytesPerOp) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		byName[name] = res
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-32s %12.0f ns/op %10.2f MB/s %8d allocs/op\n",
			name, res.NsPerOp, res.MBPerSec, res.AllocsPerOp)
	}

	// End-to-end ingest→index, serial baseline vs. worker pool.
	for _, workers := range []int{1, 2, 4, 8} {
		name := fmt.Sprintf("ingest/%dw", workers)
		record(name, int64(textBytes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := webfountain.NewPlatform(webfountain.PlatformConfig{IngestWorkers: workers})
				if _, err := p.Ingest(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// GOMAXPROCS sweep: the same 4-worker ingest pinned to 1, 2 and 4
	// scheduler threads. The worker-count loop above varies parallelism
	// in the pipeline; this varies parallelism in the machine, so the
	// two can be read against each other (4w@1p ≈ 1w shows the pool is
	// scheduler-bound, not lock-bound). GOMAXPROCS is restored before
	// any other benchmark runs.
	prevProcs := runtime.GOMAXPROCS(0)
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		name := fmt.Sprintf("ingest/4w@%dp", procs)
		record(name, int64(textBytes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := webfountain.NewPlatform(webfountain.PlatformConfig{IngestWorkers: 4})
				if _, err := p.Ingest(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	runtime.GOMAXPROCS(prevProcs)

	// Sharded index: single-writer adds, concurrent adds, queries.
	record("index/add", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := index.New()
			for j := range tokenized {
				ix.Add(fmt.Sprintf("doc-%06d", j), tokenized[j])
			}
		}
	})
	record("index/add-parallel", 0, func(b *testing.B) {
		ix := index.New()
		var id atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			j := 0
			for pb.Next() {
				ix.Add(fmt.Sprintf("doc-%08d", id.Add(1)), tokenized[j%len(tokenized)])
				j++
			}
		})
	})
	queryIx := index.New()
	for j := range tokenized {
		queryIx.Add(fmt.Sprintf("doc-%06d", j), tokenized[j])
	}
	record("index/search-term", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			queryIx.Search(index.And(index.Term("camera"), index.Term("battery")))
		}
	})
	record("index/search-phrase", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			queryIx.Search(index.Phrase("battery", "life"))
		}
	})
	if re, err := index.Regexp("^pict"); err == nil {
		record("index/search-regexp", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				queryIx.Search(re)
			}
		})
	}
	// Posting-list footprint of the compressed (delta-varint) index over
	// the benchmark corpus, against the flat layout it replaced.
	postStats := queryIx.PostingStats()

	// Single-thread NLP micro-benchmarks: the no-regression guard for
	// the paths the pipeline did not parallelize.
	sample := batch[0].Text
	record("tokenize", int64(len(sample)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tk.Tokenize(sample)
		}
	})
	tagger := pos.NewTagger()
	sampleToks := tk.Tokenize(sample)
	record("pos-tag", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tagger.Tag(sampleToks)
		}
	})

	// WAL durability: per-record fsync vs. group commit under
	// concurrent writers.
	entities := make([]*store.Entity, len(generated))
	for i := range generated {
		entities[i] = &store.Entity{ID: generated[i].ID, Source: "review", Text: generated[i].Text()}
	}
	walBench := func(opts store.Options) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir, err := os.MkdirTemp("", "wfbench-*")
				if err != nil {
					b.Fatal(err)
				}
				st, err := store.Open(dir, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				var wg sync.WaitGroup
				for w := 0; w < 8; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for j := w; j < len(entities); j += 8 {
							if err := st.Put(entities[j]); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				b.StopTimer()
				st.Close()
				os.RemoveAll(dir)
				b.StartTimer()
			}
		}
	}
	record("store/wal-put", 0, walBench(store.Options{Shards: 16}))
	record("store/wal-put-group-commit", 0, walBench(store.Options{Shards: 16, GroupCommit: true}))

	// Full mining pipeline over an ingested corpus. Besides the number
	// itself, this populates the per-stage latency histograms
	// (pipeline.stage.*) that the Metrics section below snapshots.
	minePlatform := webfountain.NewPlatform(webfountain.PlatformConfig{})
	if _, err := minePlatform.Ingest(batch); err != nil {
		fmt.Fprintln(os.Stderr, "mine bench ingest:", err)
		os.Exit(1)
	}
	record("mine/pipeline", int64(textBytes), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := webfountain.NewSentimentMiner(webfountain.MinerConfig{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Run(minePlatform); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Mode 1 (predefined subjects) covers the spot→disambiguate path
	// that entity mode skips, so its stage histogram fills too. The
	// on/off-topic terms instantiate a disambiguator for NR70.
	record("mine/subjects", int64(textBytes), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := webfountain.NewSentimentMiner(webfountain.MinerConfig{Subjects: []webfountain.Subject{
				{Canonical: "NR70",
					OnTopic:  []string{"camera", "pictures", "battery"},
					OffTopic: []string{"soundtrack", "album"}},
				{Canonical: "battery"}, {Canonical: "CLIE"},
			}})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Run(minePlatform); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Cost of the instrumentation primitives themselves. The hot paths
	// pay one span plus a couple of counter increments per document, so
	// these two numbers bound the observability overhead.
	benchCounter := metrics.Default().Counter("bench.calibration.count")
	benchSpan := metrics.Default().Histogram("bench.calibration.ns")
	record("metrics/counter-inc", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchCounter.Inc()
		}
	})
	record("metrics/span", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSpan.Start().End()
		}
	})

	rep.Derived = map[string]float64{}
	// Postings compression: encoded bytes per document and the ratio
	// against the flat posting-struct layout the codec replaced.
	if postStats.EncodedBytes > 0 {
		rep.Derived["postings_compression_ratio"] = postStats.Ratio()
		rep.Derived["postings_encoded_bytes_per_doc"] = float64(postStats.EncodedBytes) / float64(docs)
		rep.Derived["postings_flat_bytes_per_doc"] = float64(postStats.FlatBytes) / float64(docs)
		fmt.Printf("%-32s %12.2fx smaller %7.0f B/doc (flat %.0f B/doc)\n",
			"index/postings-compression", postStats.Ratio(),
			float64(postStats.EncodedBytes)/float64(docs), float64(postStats.FlatBytes)/float64(docs))
	}
	// Estimated instrumentation overhead on the ingest path: each
	// document pays one span and two counter adds.
	if sp, ok := byName["metrics/span"]; ok {
		if ci, ok := byName["metrics/counter-inc"]; ok {
			if ing, ok := byName["ingest/1w"]; ok && ing.NsPerOp > 0 {
				perDoc := sp.NsPerOp + 2*ci.NsPerOp
				rep.Derived["metrics_overhead_pct_ingest_1w"] = perDoc * float64(docs) / ing.NsPerOp * 100
			}
		}
	}
	if s, ok := byName["ingest/1w"]; ok {
		if p, ok := byName["ingest/8w"]; ok && p.NsPerOp > 0 {
			rep.Derived["ingest_speedup_8w_vs_1w"] = s.NsPerOp / p.NsPerOp
		}
	}
	if s, ok := byName["ingest/4w@1p"]; ok {
		if p, ok := byName["ingest/4w@4p"]; ok && p.NsPerOp > 0 {
			rep.Derived["ingest_4w_speedup_4p_vs_1p"] = s.NsPerOp / p.NsPerOp
		}
	}
	if s, ok := byName["store/wal-put"]; ok {
		if g, ok := byName["store/wal-put-group-commit"]; ok && g.NsPerOp > 0 {
			rep.Derived["wal_group_commit_speedup"] = s.NsPerOp / g.NsPerOp
		}
	}
	// Overload and hedging probes: scenario measurements rather than
	// testing.Benchmark loops. The first drives an open-loop 2×-capacity
	// storm at a vinci server with admission control off and on — the
	// without/with numbers show what shedding buys: a bounded p99 for the
	// requests that are served, at the price of an explicit shed
	// fraction. The second measures what hedged reads cost: the fraction
	// of extra calls fired, which must stay near the slow-call rate.
	overloadCalls, hedgeCalls := 400, 400
	if quick {
		overloadCalls, hedgeCalls = 160, 120
	}
	for _, shed := range []bool{false, true} {
		p99, shedFrac, err := probeOverload(shed, overloadCalls)
		if err != nil {
			fmt.Fprintln(os.Stderr, "overload probe:", err)
			os.Exit(1)
		}
		key := "p99_overload_shed_off_ms"
		if shed {
			key = "p99_overload_shed_on_ms"
			rep.Derived["shed_fraction_2x"] = shedFrac
		}
		rep.Derived[key] = float64(p99) / 1e6
		fmt.Printf("%-32s %12.2f ms p99 %10.0f%% shed\n",
			fmt.Sprintf("overload/2x-shed=%v", shed), float64(p99)/1e6, shedFrac*100)
	}
	extraFrac, p99Hedged, p99Plain, err := probeHedge(hedgeCalls)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hedge probe:", err)
		os.Exit(1)
	}
	rep.Derived["hedge_extra_call_fraction"] = extraFrac
	rep.Derived["p99_hedged_ms"] = float64(p99Hedged) / 1e6
	rep.Derived["p99_unhedged_ms"] = float64(p99Plain) / 1e6
	fmt.Printf("%-32s %12.2f ms p99 (plain %.2f) %6.1f%% extra calls\n",
		"hedge/tail-read", float64(p99Hedged)/1e6, float64(p99Plain)/1e6, extraFrac*100)
	// Quorum probe: what the W=2 durability guarantee costs per acked
	// write. Both runs drive the same 3-node/2-replica in-process
	// platform; the only difference is whether the router acks on the
	// first replica (availability mode) or waits for both.
	quorumPuts := 400
	if quick {
		quorumPuts = 150
	}
	var w1Mean time.Duration
	for _, w := range []int{1, 2} {
		mean, p99, err := probeQuorum(w, quorumPuts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quorum probe:", err)
			os.Exit(1)
		}
		rep.Derived[fmt.Sprintf("put_w%d_mean_us", w)] = float64(mean) / 1e3
		rep.Derived[fmt.Sprintf("put_w%d_p99_us", w)] = float64(p99) / 1e3
		if w == 1 {
			w1Mean = mean
		} else if w1Mean > 0 {
			rep.Derived["quorum_w2_overhead_pct"] = (float64(mean)/float64(w1Mean) - 1) * 100
		}
		fmt.Printf("%-32s %12.2f us mean %9.2f us p99\n",
			fmt.Sprintf("quorum/put-w%d", w), float64(mean)/1e3, float64(p99)/1e3)
	}
	// Read storm against the live serving tier: the scan path pays a
	// trend-miner pass over the store on every request, the aggregate
	// path reads the materialized snapshot, and the cached path serves
	// stored bytes. Same query mix, same open-loop arrival rate.
	stormCalls, stormQPS := 3000, 3000.0
	if quick {
		stormCalls, stormQPS = 800, 2000.0
	}
	stormDerived, err := probeReadStorm(generated, stormCalls, stormQPS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "read-storm probe:", err)
		os.Exit(1)
	}
	for k, v := range stormDerived {
		rep.Derived[k] = v
	}
	// Recovery probe: what the serving tier's checkpoint buys at boot.
	// Cold is a full batch re-mine of the durable corpus; repair is
	// checkpoint load plus re-mining only the un-checkpointed tail.
	coldMs, repairMs, repairedDocs, err := probeRecovery(generated)
	if err != nil {
		fmt.Fprintln(os.Stderr, "recovery probe:", err)
		os.Exit(1)
	}
	rep.Derived["recovery_cold_remine_ms"] = coldMs
	rep.Derived["recovery_checkpoint_repair_ms"] = repairMs
	rep.Derived["recovery_repaired_docs"] = float64(repairedDocs)
	if repairMs > 0 {
		rep.Derived["recovery_speedup"] = coldMs / repairMs
	}
	fmt.Printf("%-32s %12.2f ms cold %9.2f ms repair (%d docs repaired, %.1fx)\n",
		"recovery/checkpoint-vs-remine", coldMs, repairMs, repairedDocs, coldMs/repairMs)

	snap := metrics.Default().Snapshot()
	rep.Metrics = &snap
	return rep
}

// probeOverload measures served-request p99 under a 2×-capacity open-loop
// storm. The handler models a server with `slots` worker slots and a
// fixed service time; arrivals come at twice the resulting capacity.
// With shed=false every arrival queues (on the handler's semaphore) and
// the backlog grows for as long as the storm lasts; with shed=true the
// admission queue bounds the wait and sheds the excess instead.
func probeOverload(shed bool, calls int) (p99 time.Duration, shedFrac float64, err error) {
	// A deliberately slow service time keeps the open-loop pacing well
	// above timer granularity, so the 2× arrival rate is actually
	// achieved even on one-CPU CI runners.
	const slots = 4
	const service = 20 * time.Millisecond
	sem := make(chan struct{}, slots)
	reg := vinci.NewRegistry()
	reg.Register("bench-slow", func(req vinci.Request) vinci.Response {
		sem <- struct{}{}
		time.Sleep(service)
		<-sem
		return vinci.OKResponse(nil)
	})
	var srv *vinci.Server
	if shed {
		srv = vinci.NewServerWith(reg, vinci.ServerOptions{Admission: vinci.AdmissionConfig{
			Capacity: slots, Depth: slots, Policy: "lifo", MaxWait: 5 * time.Millisecond,
		}})
	} else {
		srv = vinci.NewServer(reg)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	go srv.Serve(ln)
	defer srv.Close()

	// One transport per in-flight call: the protocol serializes calls on
	// a connection, so sharing transports would throttle the storm.
	clients := make([]vinci.Client, calls)
	for i := range clients {
		clients[i], err = vinci.DialWith(ln.Addr().String(), vinci.DialOptions{
			CallTimeout: 10 * time.Second,
			Retry:       vinci.RetryPolicy{MaxAttempts: 1},
		})
		if err != nil {
			return 0, 0, err
		}
		defer clients[i].Close()
	}

	interarrival := service / (2 * slots) // 2× the slots/service capacity
	var (
		mu         sync.Mutex
		latencies  []time.Duration
		overloaded int
		wg         sync.WaitGroup
	)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(c vinci.Client) {
			defer wg.Done()
			start := time.Now()
			_, cerr := c.Call(vinci.Request{Service: "bench-slow", Op: "work"})
			elapsed := time.Since(start)
			mu.Lock()
			defer mu.Unlock()
			if cerr == nil {
				latencies = append(latencies, elapsed)
			} else if vinci.IsOverloaded(cerr) {
				overloaded++
			}
		}(clients[i])
		time.Sleep(interarrival)
	}
	wg.Wait()
	if len(latencies) == 0 {
		return 0, 0, fmt.Errorf("no calls served (shed=%v)", shed)
	}
	return p99Of(latencies), float64(overloaded) / float64(calls), nil
}

// probeHedge measures the latency and extra-load cost of hedged reads
// against a handler whose every 25th response stalls. The plain client
// eats the stall in its p99; the hedged client fires a second attempt
// after the trigger and takes the fast answer — at the cost of one extra
// call per stall, so the extra-call fraction must track the ~4% stall
// rate rather than the total call count.
func probeHedge(calls int) (extraFrac float64, p99Hedged, p99Plain time.Duration, err error) {
	const fast, slow = 300 * time.Microsecond, 10 * time.Millisecond
	const trigger = 5 * time.Millisecond
	// Think time between calls, sized to cover the stalled loser's
	// remaining service time (slow − trigger). The transports are
	// serialized, so without it a hedged call's abandoned primary attempt
	// is still draining when the next call is issued, which queues behind
	// it, looks slow, hedges too, and cascades — inflating the extra-call
	// fraction with transport-queueing effects the probe is not after.
	const think = slow - trigger + time.Millisecond
	var n atomic.Int64
	reg := vinci.NewRegistry()
	reg.Register("bench-read", func(req vinci.Request) vinci.Response {
		if n.Add(1)%25 == 0 {
			time.Sleep(slow)
		} else {
			time.Sleep(fast)
		}
		return vinci.OKResponse(nil)
	})
	srv := vinci.NewServer(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, 0, err
	}
	go srv.Serve(ln)
	defer srv.Close()

	dial := func() (vinci.Client, error) {
		return vinci.DialWith(ln.Addr().String(), vinci.DialOptions{
			CallTimeout: 10 * time.Second,
			Retry:       vinci.RetryPolicy{MaxAttempts: 1},
		})
	}
	measure := func(c vinci.Client) ([]time.Duration, error) {
		lat := make([]time.Duration, 0, calls)
		for i := 0; i < calls; i++ {
			start := time.Now()
			if _, cerr := c.Call(vinci.Request{Service: "bench-read", Op: "get"}); cerr != nil {
				return nil, cerr
			}
			lat = append(lat, time.Since(start))
			time.Sleep(think)
		}
		return lat, nil
	}

	plain, err := dial()
	if err != nil {
		return 0, 0, 0, err
	}
	defer plain.Close()
	plainLat, err := measure(plain)
	if err != nil {
		return 0, 0, 0, err
	}

	primary, err := dial()
	if err != nil {
		return 0, 0, 0, err
	}
	secondary, err := dial()
	if err != nil {
		primary.Close()
		return 0, 0, 0, err
	}
	hedged := vinci.NewHedged(primary, secondary, vinci.HedgeOptions{
		After:        trigger, // well past fast, well short of slow
		IsIdempotent: func(service string) bool { return service == "bench-read" },
	})
	defer hedged.Close()
	hedgesBefore := metrics.Default().Counter("vinci.client.hedges").Value()
	hedgedLat, err := measure(hedged)
	if err != nil {
		return 0, 0, 0, err
	}
	hedges := metrics.Default().Counter("vinci.client.hedges").Value() - hedgesBefore
	return float64(hedges) / float64(calls), p99Of(hedgedLat), p99Of(plainLat), nil
}

// probeQuorum measures per-put latency through the replicated tier's
// acked-write path at write quorum w. The platform is the in-process
// 3-node/2-replica deployment the chaos harness uses; Put goes through
// the router's quorum fan-out, so the W=1 vs W=2 gap is exactly the
// cost of waiting for the second replica before the ack — the price of
// the no-acked-write-lost guarantee the quorum chaos archetypes prove.
func probeQuorum(w, puts int) (mean, p99 time.Duration, err error) {
	dp, err := webfountain.NewDistributedPlatform(webfountain.DistributedConfig{
		Nodes: 3, Replicas: 2, Seed: 7, WriteQuorum: w,
	})
	if err != nil {
		return 0, 0, err
	}
	defer dp.Close()
	r := dp.Router()
	lat := make([]time.Duration, 0, puts)
	var total time.Duration
	for i := 0; i < puts; i++ {
		e := &store.Entity{
			ID:     fmt.Sprintf("bench-q%d-%05d", w, i),
			Source: "bench",
			Text:   "quorum write latency probe body",
		}
		start := time.Now()
		if perr := r.Put(e); perr != nil {
			return 0, 0, perr
		}
		d := time.Since(start)
		lat = append(lat, d)
		total += d
	}
	return total / time.Duration(puts), p99Of(lat), nil
}

// probeReadStorm measures query latency under a sustained open-loop
// read storm against three serving configurations over the same mined
// corpus:
//
//   - scan: every trend query re-runs the trend miner over the store —
//     the pre-serving-tier cost model, O(corpus) per request;
//   - agg: the gateway's /api/trend off the materialized aggregate
//     snapshot, result cache disabled;
//   - cached: the same endpoint with the bounded LRU on, so a repeated
//     query serves stored bytes.
//
// Arrivals are open-loop at the target QPS: a slow server does not slow
// the arrival process, it grows a queue — so the p99s show each path
// under load, not at leisure. The tenant limiter is configured wide
// open; rate limiting is probed by its own unit tests, not here.
func probeReadStorm(generated []corpus.Document, calls int, qps float64) (map[string]float64, error) {
	batch := make([]webfountain.Document, len(generated))
	for i := range generated {
		batch[i] = webfountain.Document{
			ID: generated[i].ID, Source: generated[i].Source,
			Title: generated[i].Title, Date: generated[i].Date,
			Text: generated[i].Text(),
		}
	}
	p := webfountain.NewPlatform(webfountain.PlatformConfig{})
	if _, err := p.Ingest(batch); err != nil {
		return nil, err
	}
	m, err := webfountain.NewSentimentMiner(webfountain.MinerConfig{})
	if err != nil {
		return nil, err
	}
	facts, err := m.Run(p)
	if err != nil {
		return nil, err
	}
	tier := webfountain.NewServingTier(p, m, facts)
	subjects := tier.View().Subjects()
	if len(subjects) == 0 {
		return nil, fmt.Errorf("read storm: no mined subjects")
	}
	if len(subjects) > 8 {
		subjects = subjects[:8] // a small rotating working set, like real dashboards
	}

	// The scan path: a minimal handler that re-derives the series from
	// the store on every request, which is what serving trend queries
	// cost before the materialized aggregates existed.
	scan := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		series, _, _ := p.SentimentTrend(r.URL.Query().Get("name"))
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(series)
	})
	open := serve.GatewayConfig{TenantRate: 1e12, TenantBurst: 1 << 30}
	agg := serve.NewGateway(tier, serve.GatewayConfig{
		CacheEntries: -1, TenantRate: open.TenantRate, TenantBurst: open.TenantBurst,
	})
	cached := serve.NewGateway(tier, open)

	storm := func(h http.Handler) ([]time.Duration, error) {
		interarrival := time.Duration(float64(time.Second) / qps)
		var (
			mu   sync.Mutex
			lats []time.Duration
			bad  int
			wg   sync.WaitGroup
		)
		for i := 0; i < calls; i++ {
			target := "/api/trend?name=" + url.QueryEscape(subjects[i%len(subjects)])
			wg.Add(1)
			go func(target string) {
				defer wg.Done()
				req := httptest.NewRequest("GET", target, nil)
				rec := httptest.NewRecorder()
				start := time.Now()
				h.ServeHTTP(rec, req)
				elapsed := time.Since(start)
				mu.Lock()
				defer mu.Unlock()
				if rec.Code != http.StatusOK {
					bad++
					return
				}
				lats = append(lats, elapsed)
			}(target)
			time.Sleep(interarrival)
		}
		wg.Wait()
		if bad > 0 {
			return nil, fmt.Errorf("read storm: %d non-200 responses", bad)
		}
		return lats, nil
	}
	meanOf := func(lats []time.Duration) time.Duration {
		var total time.Duration
		for _, d := range lats {
			total += d
		}
		return total / time.Duration(len(lats))
	}

	derived := map[string]float64{
		"read_storm_qps":   qps,
		"read_storm_calls": float64(calls),
	}
	hitsBefore := metrics.Default().Counter("serve.cache.hits").Value()
	for _, tc := range []struct {
		name, meanKey, p99Key string
		h                     http.Handler
	}{
		{"storm/scan-trend", "scan_trend_mean_us", "scan_trend_p99_ms", scan},
		{"storm/agg-trend-nocache", "agg_trend_nocache_mean_us", "agg_trend_nocache_p99_ms", agg},
		{"storm/agg-trend-cached", "agg_trend_cached_mean_us", "agg_trend_cached_p99_ms", cached},
	} {
		lats, err := storm(tc.h)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tc.name, err)
		}
		mean, p99 := meanOf(lats), p99Of(lats)
		derived[tc.meanKey] = float64(mean) / 1e3
		derived[tc.p99Key] = float64(p99) / 1e6
		fmt.Printf("%-32s %12.2f us mean %9.3f ms p99\n",
			tc.name, float64(mean)/1e3, float64(p99)/1e6)
	}
	hits := metrics.Default().Counter("serve.cache.hits").Value() - hitsBefore
	derived["read_storm_cache_hit_fraction"] = float64(hits) / float64(calls)
	if derived["agg_trend_cached_mean_us"] > 0 {
		derived["read_storm_speedup_cached_vs_scan"] =
			derived["scan_trend_mean_us"] / derived["agg_trend_cached_mean_us"]
	}
	if derived["agg_trend_nocache_mean_us"] > 0 {
		derived["read_storm_speedup_agg_vs_scan"] =
			derived["scan_trend_mean_us"] / derived["agg_trend_nocache_mean_us"]
	}
	fmt.Printf("%-32s %12.2fx cached %9.2fx uncached %5.0f%% hits\n",
		"storm/speedup-vs-scan", derived["read_storm_speedup_cached_vs_scan"],
		derived["read_storm_speedup_agg_vs_scan"], derived["read_storm_cache_hit_fraction"]*100)
	return derived, nil
}

// probeRecovery measures serving-tier restart time two ways over the
// same durable corpus. Setup: 90% of the documents flow through a
// checkpointing tier which then checkpoints; the final 10% are acked
// by the platform alone — the crash window where durable ingests never
// reached the aggregates — and the process "dies" without a final
// checkpoint. The repair path times RecoverServingTier (checkpoint
// load + re-mine of just the tail); the cold path times a full batch
// re-mine of the whole corpus. Both timings start after the platform
// itself is open, isolating the serving tier's boot cost.
func probeRecovery(generated []corpus.Document) (coldMs, repairMs float64, repairedDocs int, err error) {
	base, err := os.MkdirTemp("", "bench-recovery-")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(base)
	dataDir := filepath.Join(base, "data")
	ckptDir := filepath.Join(base, "ckpt")

	docs := make([]webfountain.ServingDoc, len(generated))
	for i := range generated {
		docs[i] = webfountain.ServingDoc{
			ID:   fmt.Sprintf("doc-%05d", i),
			Date: generated[i].Date,
			Text: generated[i].Text(),
		}
	}
	split := len(docs) * 9 / 10

	// Build the pre-crash state: checkpointed head, durable-only tail.
	p, err := webfountain.OpenPlatform(webfountain.PlatformConfig{DataDir: dataDir})
	if err != nil {
		return 0, 0, 0, err
	}
	m, err := webfountain.NewSentimentMiner(webfountain.MinerConfig{})
	if err != nil {
		return 0, 0, 0, err
	}
	tier, _, err := webfountain.RecoverServingTier(p, m, webfountain.ServingTierConfig{CheckpointDir: ckptDir})
	if err != nil {
		return 0, 0, 0, err
	}
	if _, _, err := tier.Ingest(context.Background(), docs[:split]); err != nil {
		return 0, 0, 0, err
	}
	if err := tier.Checkpoint(); err != nil {
		return 0, 0, 0, err
	}
	tail := make([]webfountain.Document, 0, len(docs)-split)
	for _, d := range docs[split:] {
		tail = append(tail, webfountain.Document{ID: d.ID, Date: d.Date, Text: d.Text})
	}
	if _, err := p.Ingest(tail); err != nil {
		return 0, 0, 0, err
	}
	if err := p.Close(); err != nil { // crash for the tier: no tier.Close, no final checkpoint
		return 0, 0, 0, err
	}

	// Repair path: checkpoint restore + watermark repair of the tail.
	p2, err := webfountain.OpenPlatform(webfountain.PlatformConfig{DataDir: dataDir})
	if err != nil {
		return 0, 0, 0, err
	}
	m2, err := webfountain.NewSentimentMiner(webfountain.MinerConfig{})
	if err != nil {
		return 0, 0, 0, err
	}
	start := time.Now()
	_, rec, err := webfountain.RecoverServingTier(p2, m2, webfountain.ServingTierConfig{CheckpointDir: ckptDir})
	if err != nil {
		return 0, 0, 0, err
	}
	repairMs = float64(time.Since(start)) / 1e6
	repairedDocs = rec.RepairedDocs
	p2.Close()

	// Cold path: full batch re-mine, no checkpoint.
	p3, err := webfountain.OpenPlatform(webfountain.PlatformConfig{DataDir: dataDir})
	if err != nil {
		return 0, 0, 0, err
	}
	m3, err := webfountain.NewSentimentMiner(webfountain.MinerConfig{})
	if err != nil {
		return 0, 0, 0, err
	}
	start = time.Now()
	facts, err := m3.Run(p3)
	if err != nil {
		return 0, 0, 0, err
	}
	webfountain.NewServingTier(p3, m3, facts)
	coldMs = float64(time.Since(start)) / 1e6
	p3.Close()
	return coldMs, repairMs, repairedDocs, nil
}

// p99Of returns the 99th-percentile latency of a sample set.
func p99Of(lat []time.Duration) time.Duration {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := len(lat) * 99 / 100
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	return lat[idx]
}

// compareFiles prints a before/after table of two result files and
// enforces the mining-path allocation gate: any mine/* benchmark whose
// allocs/op grew more than 10% over the old file fails the comparison.
func compareFiles(oldPath, newPath string) error {
	oldRep, err := load(oldPath)
	if err != nil {
		return err
	}
	newRep, err := load(newPath)
	if err != nil {
		return err
	}
	oldBy := map[string]Result{}
	for _, r := range oldRep.Results {
		oldBy[r.Name] = r
	}
	var failures []string
	fmt.Printf("%-32s %14s %14s %9s %12s %12s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs")
	for _, nr := range newRep.Results {
		or, ok := oldBy[nr.Name]
		if !ok || or.NsPerOp <= 0 {
			fmt.Printf("%-32s %14s %14.0f %9s %12s %12d\n",
				nr.Name, "-", nr.NsPerOp, "new", "-", nr.AllocsPerOp)
			continue
		}
		delta := (nr.NsPerOp - or.NsPerOp) / or.NsPerOp * 100
		fmt.Printf("%-32s %14.0f %14.0f %+8.1f%% %12d %12d\n",
			nr.Name, or.NsPerOp, nr.NsPerOp, delta, or.AllocsPerOp, nr.AllocsPerOp)
		if strings.HasPrefix(nr.Name, "mine/") && or.AllocsPerOp > 0 {
			if float64(nr.AllocsPerOp) > float64(or.AllocsPerOp)*1.10 {
				failures = append(failures, fmt.Sprintf(
					"%s: allocs/op %d -> %d (>+10%%)", nr.Name, or.AllocsPerOp, nr.AllocsPerOp))
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocation regression on the mining path:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return nil
}

func load(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
