// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic corpora, printing paper-reported
// numbers next to measured ones.
//
// Usage:
//
//	experiments [-run all|table2|table3|table4|table5|featureprec|satisfaction|ablation]
//	            [-scale f] [-seed n]
//
// -scale shrinks the corpus sizes for quick runs (1.0 = the paper's
// dataset sizes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"webfountain/internal/corpus"
	"webfountain/internal/eval"
	"webfountain/internal/feature"
	"webfountain/internal/sentiment"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, table2, table3, table4, table5, featureprec, satisfaction, ablation, json")
	scale := flag.Float64("scale", 1.0, "corpus size multiplier (1.0 = paper-scale)")
	seed := flag.Int64("seed", eval.DefaultSeed, "corpus generation seed")
	flag.Parse()

	e := experiments{
		seed:       *seed,
		cameraDocs: scaled(eval.PaperCameraDocs, *scale),
		musicDocs:  scaled(eval.PaperMusicDocs, *scale),
		offTopic:   scaled(eval.PaperCameraOffTopic, *scale),
		webDocs:    scaled(eval.DefaultWebDocs, *scale),
		newsDocs:   scaled(eval.DefaultNewsDocs, *scale),
	}

	all := map[string]func(){
		"featureprec":  e.featurePrecision,
		"table2":       e.table2,
		"table3":       e.table3,
		"table4":       e.table4,
		"table5":       e.table5,
		"satisfaction": e.satisfaction,
		"ablation":     e.ablation,
		"bboard":       e.bboard,
	}
	order := []string{"featureprec", "table2", "table3", "table4", "table5", "satisfaction", "ablation", "bboard"}

	if *run == "json" {
		e.runJSON()
		return
	}
	if *run == "all" {
		for _, name := range order {
			all[name]()
		}
		return
	}
	fn, ok := all[*run]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want one of: all %s)\n", *run, strings.Join(order, " "))
		os.Exit(2)
	}
	fn()
}

func scaled(n int, f float64) int {
	v := int(float64(n) * f)
	if v < 10 {
		v = 10
	}
	return v
}

type experiments struct {
	seed                        int64
	cameraDocs, musicDocs       int
	offTopic, webDocs, newsDocs int
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

// featurePrecision reproduces the bBNP-L precision result (97% camera,
// 100% music).
func (e experiments) featurePrecision() {
	header("Feature extraction precision (paper: 97% camera, 100% music)")
	for _, dom := range []string{"camera", "music"} {
		docs := e.cameraDocs
		if dom == "music" {
			docs = e.musicDocs
		}
		res := eval.FeatureExtraction(dom, e.seed, docs, e.offTopic, feature.BBNP)
		fmt.Printf("  %-7s precision = %5.1f%%  (%d terms selected at 99.9%% confidence)\n",
			dom, 100*res.Precision, res.Selected)
	}
}

// table2 prints the top-20 feature terms per domain.
func (e experiments) table2() {
	header("Table 2: top 20 feature terms by bBNP-L rank")
	cam := eval.FeatureExtraction("camera", e.seed, e.cameraDocs, e.offTopic, feature.BBNP)
	mus := eval.FeatureExtraction("music", e.seed, e.musicDocs, e.offTopic, feature.BBNP)
	fmt.Printf("  %-4s %-22s %-22s\n", "rank", "Digital Camera", "Music Albums")
	for i := 0; i < 20; i++ {
		c, m := "", ""
		if i < len(cam.Top) {
			c = cam.Top[i].Term
		}
		if i < len(mus.Top) {
			m = mus.Top[i].Term
		}
		fmt.Printf("  %-4d %-22s %-22s\n", i+1, c, m)
	}
}

// table3 prints product vs. feature reference counts.
func (e experiments) table3() {
	header("Table 3: product vs. feature references (paper ratio: 12.4x)")
	res := eval.Table3(e.seed, e.cameraDocs)
	fmt.Printf("  %-14s %10s    %-16s %10s\n", "Product", "refs", "Feature", "refs")
	for i := 0; i < 7; i++ {
		p, pn, f, fn := "", 0, "", 0
		if i < len(res.Products) {
			p, pn = res.Products[i].Term, res.Products[i].Count
		}
		if i < len(res.Features) {
			f, fn = res.Features[i].Term, res.Features[i].Count
		}
		fmt.Printf("  %-14s %10d    %-16s %10d\n", p, pn, f, fn)
	}
	fmt.Printf("  %-14s %10d    %-16s %10d\n",
		fmt.Sprintf("%d products", res.NumProducts), res.ProductTotal,
		fmt.Sprintf("%d features", res.NumFeatures), res.FeatureTotal)
	fmt.Printf("  feature/product reference ratio = %.1fx\n", res.Ratio())
}

// table4 prints the review-dataset comparison.
func (e experiments) table4() {
	header("Table 4: product review datasets")
	fmt.Println("  paper:  SM P=87% R=56% Acc=85.6% | Collocation P=18% R=70% | ReviewSeer Acc=88.4%")
	res := eval.Table4(e.seed, e.cameraDocs, e.musicDocs)
	for _, r := range res.Rows {
		fmt.Printf("  %-12s P=%5.1f%%  R=%5.1f%%  Acc=%5.1f%%  (n=%d)\n",
			r.System, 100*r.Precision, 100*r.Recall, 100*r.Accuracy, r.Cases)
	}
	fmt.Printf("  (ReviewSeer evaluated at document level on %d held-out reviews, as the original system was)\n", res.ReviewTestDocs)

	// 95% bootstrap confidence intervals for the miner's headline numbers
	// on the camera corpus.
	docs := corpus.DigitalCameraReviews(e.seed, e.cameraDocs)
	subjects := append(append([]string{}, corpus.CameraProducts...), corpus.CameraFeatures...)
	outcomes := eval.NewRunner(nil).SentimentOutcomes(docs, eval.Cases(docs, subjects))
	for _, mm := range []struct {
		name string
		fn   func(eval.Metrics) float64
	}{{"precision", eval.PrecisionMetric}, {"recall", eval.RecallMetric}, {"accuracy", eval.AccuracyMetric}} {
		lo, hi := eval.BootstrapCI(outcomes, mm.fn, 500, 0.05, e.seed)
		fmt.Printf("  SM %s 95%% CI (camera, bootstrap): [%.1f%%, %.1f%%]\n", mm.name, 100*lo, 100*hi)
	}
}

// table5 prints the general web/news comparison.
func (e experiments) table5() {
	header("Table 5: general web documents and news articles")
	fmt.Println("  paper:  SM(Petro,Web) 86/90 | SM(Pharma,Web) 91/93 | SM(Petro,News) 88/91 | ReviewSeer 38 (68 w/o I)")
	for _, r := range eval.Table5(e.seed, e.webDocs, e.newsDocs) {
		if r.System == "SM" {
			fmt.Printf("  SM  %-22s P=%5.1f%%  Acc=%5.1f%%  (n=%d)\n",
				r.Corpus, 100*r.Precision, 100*r.Accuracy, r.Cases)
		} else {
			fmt.Printf("  %-4s %-22s Acc=%5.1f%%  Acc w/o I class=%5.1f%%  (n=%d)\n",
				"RS", r.Corpus, 100*r.Accuracy, 100*r.AccuracyNoIClass, r.Cases)
		}
	}
}

// satisfaction prints the Figure 2 inset chart as rows.
func (e experiments) satisfaction() {
	header("Figure 2 inset: digital camera customer satisfaction (% pages positive)")
	features := []string{"picture quality", "battery", "flash"}
	cells := eval.Satisfaction(e.seed, e.cameraDocs, 7, features)
	byProduct := map[string]map[string]float64{}
	for _, c := range cells {
		m, ok := byProduct[c.Product]
		if !ok {
			m = map[string]float64{}
			byProduct[c.Product] = m
		}
		m[c.Feature] = c.Share()
	}
	fmt.Printf("  %-10s", "product")
	for _, f := range features {
		fmt.Printf(" %16s", f)
	}
	fmt.Println()
	for _, p := range corpus.CameraProducts[:7] {
		fmt.Printf("  %-10s", p)
		for _, f := range features {
			if v, ok := byProduct[p][f]; ok {
				fmt.Printf(" %15.0f%%", v)
			} else {
				fmt.Printf(" %16s", "-")
			}
		}
		fmt.Println()
	}
}

// bboard measures the miner on the bulletin-board channel: short, noisy,
// lower-cased posts (the paper lists preprocessed bulletin boards and NNTP
// among WebFountain's sources).
func (e experiments) bboard() {
	header("Bulletin-board posts (robustness on short noisy text)")
	docs := corpus.BulletinBoard(e.seed, e.webDocs)
	cases := eval.Cases(docs, corpus.CameraProducts)
	r := eval.NewRunner(nil)
	sm := r.EvalSentimentMiner(docs, cases)
	col := r.EvalCollocation(docs, cases)
	fmt.Printf("  %-12s P=%5.1f%%  R=%5.1f%%  Acc=%5.1f%%  (n=%d posts)\n",
		"SM", 100*sm.Precision(), 100*sm.Recall(), 100*sm.Accuracy(), sm.Total)
	fmt.Printf("  %-12s P=%5.1f%%  R=%5.1f%%  Acc=%5.1f%%\n",
		"Collocation", 100*col.Precision(), 100*col.Recall(), 100*col.Accuracy())
}

// ablation quantifies the design choices DESIGN.md calls out.
func (e experiments) ablation() {
	header("Ablations on the camera review corpus")
	docs := corpus.DigitalCameraReviews(e.seed, e.cameraDocs)
	subjects := append(append([]string{}, corpus.CameraProducts...), corpus.CameraFeatures...)
	cases := eval.Cases(docs, subjects)

	variants := []struct {
		name string
		opts sentiment.Options
	}{
		{"full algorithm", sentiment.Options{}},
		{"no negation handling", sentiment.Options{DisableNegation: true}},
		{"no trans-verb transfer", sentiment.Options{DisableTransVerbs: true}},
		{"no unlike-contrast rule", sentiment.Options{DisableContrast: true}},
	}
	for _, v := range variants {
		m := eval.NewRunner(sentiment.NewWithOptions(nil, nil, v.opts)).EvalSentimentMiner(docs, cases)
		fmt.Printf("  %-24s P=%5.1f%%  R=%5.1f%%  Acc=%5.1f%%\n",
			v.name, 100*m.Precision(), 100*m.Recall(), 100*m.Accuracy())
	}

	fmt.Println("  sentiment context window (sentences each side of a spot):")
	runner := eval.NewRunner(nil)
	for _, w := range []int{0, 1, 2} {
		m := runner.EvalSentimentMinerWindowed(docs, cases, w)
		fmt.Printf("  window=%-17d P=%5.1f%%  R=%5.1f%%  Acc=%5.1f%%\n",
			w, 100*m.Precision(), 100*m.Recall(), 100*m.Accuracy())
	}

	fmt.Println("  candidate heuristic (feature extraction):")
	for _, h := range []struct {
		name string
		h    feature.Heuristic
	}{{"bBNP (paper)", feature.BBNP}, {"dBNP (anywhere)", feature.DBNP}, {"all base NPs", feature.AllBNP}} {
		res := eval.FeatureExtraction("camera", e.seed, e.cameraDocs, e.offTopic, h.h)
		fmt.Printf("  %-24s precision=%5.1f%%  selected=%d\n", h.name, 100*res.Precision, res.Selected)
	}
}
