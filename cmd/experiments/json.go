package main

import (
	"encoding/json"
	"fmt"
	"os"

	"webfountain/internal/corpus"
	"webfountain/internal/eval"
	"webfountain/internal/feature"
)

// jsonReport is the machine-readable form of the full experiment run, for
// downstream tooling (dashboards, regression tracking).
type jsonReport struct {
	Seed             int64                   `json:"seed"`
	FeaturePrecision map[string]float64      `json:"feature_precision"`
	Table2           map[string][]string     `json:"table2_top_terms"`
	Table3           jsonTable3              `json:"table3"`
	Table4           []eval.Table4Row        `json:"table4"`
	Table4CI         map[string][2]float64   `json:"table4_sm_ci95"`
	Table5           []eval.Table5Row        `json:"table5"`
	Satisfaction     []eval.SatisfactionCell `json:"satisfaction"`
}

type jsonTable3 struct {
	ProductRefs int     `json:"product_refs"`
	FeatureRefs int     `json:"feature_refs"`
	Ratio       float64 `json:"ratio"`
}

// runJSON executes every experiment and emits one JSON document on stdout.
func (e experiments) runJSON() {
	rep := jsonReport{
		Seed:             e.seed,
		FeaturePrecision: map[string]float64{},
		Table2:           map[string][]string{},
		Table4CI:         map[string][2]float64{},
	}

	for _, dom := range []string{"camera", "music"} {
		docs := e.cameraDocs
		if dom == "music" {
			docs = e.musicDocs
		}
		res := eval.FeatureExtraction(dom, e.seed, docs, e.offTopic, feature.BBNP)
		rep.FeaturePrecision[dom] = res.Precision
		var terms []string
		for _, st := range res.Top {
			terms = append(terms, st.Term)
		}
		rep.Table2[dom] = terms
	}

	t3 := eval.Table3(e.seed, e.cameraDocs)
	rep.Table3 = jsonTable3{ProductRefs: t3.ProductTotal, FeatureRefs: t3.FeatureTotal, Ratio: t3.Ratio()}

	rep.Table4 = eval.Table4(e.seed, e.cameraDocs, e.musicDocs).Rows
	docs := corpus.DigitalCameraReviews(e.seed, e.cameraDocs)
	subjects := append(append([]string{}, corpus.CameraProducts...), corpus.CameraFeatures...)
	outcomes := eval.NewRunner(nil).SentimentOutcomes(docs, eval.Cases(docs, subjects))
	for name, fn := range map[string]func(eval.Metrics) float64{
		"precision": eval.PrecisionMetric,
		"recall":    eval.RecallMetric,
		"accuracy":  eval.AccuracyMetric,
	} {
		lo, hi := eval.BootstrapCI(outcomes, fn, 500, 0.05, e.seed)
		rep.Table4CI[name] = [2]float64{lo, hi}
	}

	rep.Table5 = eval.Table5(e.seed, e.webDocs, e.newsDocs)
	rep.Satisfaction = eval.Satisfaction(e.seed, e.cameraDocs, 7, []string{"picture quality", "battery", "flash"})

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "encode:", err)
		os.Exit(1)
	}
}
