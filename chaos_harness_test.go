package webfountain

// The composed-chaos invariant harness: a seeded faults.Schedule drives
// the injector through storms of network, miner and disk faults while a
// full ingest→mine workload runs on top, and the test asserts the four
// overload-resilience invariants:
//
//  1. no acknowledged write is ever lost (in memory and through durable
//     crash recovery);
//  2. no call outlives its deadline budget by more than one grace
//     window;
//  3. the shed and breaker counters the servers export are consistent
//     with what clients and deployments observed;
//  4. the mined result set is byte-deterministic per seed — two runs of
//     the same seeded storm produce identical annotations.
//
// The schedule's archetypes deliberately exclude permanent faults, so a
// retrying workload always converges: that is what makes invariants 1
// and 4 checkable at all. Each invariant runs as its own sequential
// test so metric deltas stay attributable to the scenario that caused
// them.

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webfountain/internal/cluster"
	"webfountain/internal/corpus"
	"webfountain/internal/faults"
	"webfountain/internal/metrics"
	"webfountain/internal/services"
	"webfountain/internal/store"
	"webfountain/internal/vinci"
)

// chaosGrace is the slack a call may run past its deadline budget: one
// attempt timeout plus scheduler noise, far below a hung retry loop.
const chaosGrace = 300 * time.Millisecond

// chaosSeeds are the fixed storms the harness replays; a failure report
// names the seed, and re-running it rebuilds the identical timeline.
var chaosSeeds = []int64{11, 42, 7777}

// chaosCorpus is the review corpus every chaos scenario ingests,
// pre-converted to store entities.
func chaosCorpus() []*store.Entity {
	gen := corpus.DigitalCameraReviews(3, 120)
	ents := make([]*store.Entity, len(gen))
	for i := range gen {
		ents[i] = &store.Entity{
			ID: gen[i].ID, Source: gen[i].Source,
			Title: gen[i].Title, Text: gen[i].Text(),
		}
	}
	return ents
}

// putWithRetry drives one service put to acknowledgement through the
// injector-wrapped client. The schedule never injects permanent faults,
// so a bounded retry loop always converges.
func putWithRetry(t *testing.T, sc services.StoreClient, e *store.Entity) {
	t.Helper()
	for attempt := 0; attempt < 200; attempt++ {
		if err := sc.Put(e); err == nil {
			return
		}
	}
	t.Fatalf("put %s: no acknowledgement in 200 attempts", e.ID)
}

// getWithRetry reads one entity back through the faulty client.
func getWithRetry(t *testing.T, sc services.StoreClient, id string) *store.Entity {
	t.Helper()
	var lastErr error
	for attempt := 0; attempt < 200; attempt++ {
		e, err := sc.Get(id)
		if err == nil {
			return e
		}
		lastErr = err
	}
	t.Fatalf("get %s: no success in 200 attempts (last: %v)", id, lastErr)
	return nil
}

// runChaosScenario executes one full ingest→mine workload under the
// seeded storm and returns a digest of the mined annotations. Along the
// way it asserts the in-memory acked-write invariant and that retries
// absorbed every injected miner fault.
func runChaosScenario(t *testing.T, seed int64) string {
	t.Helper()
	in := faults.New(faults.Config{Seed: seed})
	sched := faults.NewSchedule(seed, 300*time.Millisecond)
	stop := sched.Start(in)
	defer stop()

	p := NewPlatform(PlatformConfig{MinerRetries: 15, MinerBackoff: 100 * time.Microsecond})
	reg := vinci.NewRegistry()
	services.RegisterStore(reg, p.internalStore())
	sc := services.StoreClient{C: in.Client(vinci.NewLocalClient(reg))}

	docs := chaosCorpus()
	for _, e := range docs {
		putWithRetry(t, sc, e)
		// Pace the stream so the workload spans several storm phases
		// instead of finishing inside the first.
		time.Sleep(500 * time.Microsecond)
	}

	// Invariant 1 (in memory): every acknowledged put is present, and
	// nothing the workload never wrote appeared.
	st := p.internalStore()
	for _, e := range docs {
		if _, ok := st.Get(e.ID); !ok {
			t.Fatalf("seed %d: acknowledged put %s lost", seed, e.ID)
		}
	}
	if st.Len() != len(docs) {
		t.Fatalf("seed %d: store holds %d entities, acked %d", seed, st.Len(), len(docs))
	}

	// Mine the corpus under the same storm: the injector wraps the miner
	// so per-entity calls fail transiently mid-deployment, and the
	// cluster's retry policy must absorb all of it.
	sm, err := NewSentimentMiner(MinerConfig{Subjects: []Subject{
		{Canonical: "NR70"}, {Canonical: "battery"}, {Canonical: "CLIE"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	miner := in.Miner(cluster.MinerFunc{MinerName: "chaos-sentiment", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		facts := sm.AnalyzeText(e.Text)
		anns := make([]store.Annotation, 0, len(facts))
		for _, f := range facts {
			anns = append(anns, store.Annotation{
				Type: "polarity", Key: f.Subject,
				Value: f.Polarity.String(), Sentence: f.Sentence,
			})
		}
		return anns, nil
	}})
	stats, err := p.internalCluster().RunEntityMiner(miner)
	if err != nil {
		t.Fatalf("seed %d: mining under chaos: %v", seed, err)
	}
	if stats.Failures != 0 {
		t.Fatalf("seed %d: %d entities failed despite retries: %s", seed, stats.Failures, stats)
	}
	if stats.Entities != len(docs) {
		t.Fatalf("seed %d: mined %d of %d entities", seed, stats.Entities, len(docs))
	}

	// Read everything back through the faulty service surface: the acked
	// corpus must be byte-identical, and the loop keeps the workload
	// running across later schedule phases.
	for _, e := range docs {
		got := getWithRetry(t, sc, e.ID)
		if got.Text != e.Text {
			t.Fatalf("seed %d: entity %s read back different text", seed, e.ID)
		}
	}

	// Invariant 4's digest: entity IDs in sorted order, each with its
	// mined annotations in deployment order (a pure function of the
	// text, so two runs of any seed must agree byte for byte).
	h := sha256.New()
	ids := st.IDs()
	sort.Strings(ids)
	mined := 0
	for _, id := range ids {
		e, _ := st.Get(id)
		fmt.Fprintf(h, "%s\n", id)
		for _, a := range e.AnnotationsBy("chaos-sentiment") {
			fmt.Fprintf(h, "  %s=%s @%d\n", a.Key, a.Value, a.Sentence)
			mined++
		}
	}
	if mined == 0 {
		t.Fatalf("seed %d: chaos run mined no facts; the corpus should produce some", seed)
	}
	t.Logf("seed %d: %s; %d facts; injected %v", seed, stats, mined, in.Stats())
	return hex.EncodeToString(h.Sum(nil))
}

// TestChaosIngestMineDeterministicPerSeed replays each fixed storm
// twice: the mined result digest must match exactly, under -race, for
// every seed.
func TestChaosIngestMineDeterministicPerSeed(t *testing.T) {
	for _, seed := range chaosSeeds {
		first := runChaosScenario(t, seed)
		second := runChaosScenario(t, seed)
		if first != second {
			t.Errorf("seed %d: two runs of the same storm produced different result digests\n  %s\n  %s",
				seed, first, second)
		}
	}
}

// TestChaosCallsNeverOutliveDeadline: under a storm of drops, delays
// and corruptions, a budgeted call may fail but must always return
// within its budget plus one grace window.
func TestChaosCallsNeverOutliveDeadline(t *testing.T) {
	reg := vinci.NewRegistry()
	reg.Register("chaos-echo", func(req vinci.Request) vinci.Response {
		time.Sleep(5 * time.Millisecond)
		return vinci.OKResponse(map[string]string{"op": req.Op})
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := vinci.NewServer(reg)
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	defer func() { srv.Close(); <-done }()

	in := faults.New(faults.Config{Seed: 5})
	stop := faults.NewSchedule(5, 400*time.Millisecond).Start(in)
	defer stop()

	const budget = 120 * time.Millisecond
	c, err := vinci.DialWith(ln.Addr().String(), vinci.DialOptions{
		CallTimeout:    budget,
		AttemptTimeout: 40 * time.Millisecond,
		Retry:          vinci.RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, Seed: 9},
		Dialer:         in.Dialer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	successes := 0
	for i := 0; i < 30; i++ {
		start := time.Now()
		_, err := c.Call(vinci.Request{Service: "chaos-echo", Op: fmt.Sprintf("op%d", i)})
		if elapsed := time.Since(start); elapsed > budget+chaosGrace {
			t.Errorf("call %d outlived its deadline: %v against %v budget + %v grace (err=%v)",
				i, elapsed, budget, chaosGrace, err)
		}
		if err == nil {
			successes++
		}
	}
	if successes == 0 {
		t.Error("every call failed under survivable chaos rates")
	}
}

// TestChaosShedCountersConsistent: a burst far over server capacity is
// shed, and the server's shed counters account exactly for the
// overload errors the clients observed.
func TestChaosShedCountersConsistent(t *testing.T) {
	reg := vinci.NewRegistry()
	reg.Register("chaos-slow", func(req vinci.Request) vinci.Response {
		time.Sleep(20 * time.Millisecond)
		return vinci.OKResponse(nil)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := vinci.NewServerWith(reg, vinci.ServerOptions{Admission: vinci.AdmissionConfig{
		Capacity: 1, Depth: 1, MaxWait: 200 * time.Millisecond,
	}})
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	defer func() { srv.Close(); <-done }()

	mr := metrics.Default()
	shedBefore := mr.Counter("vinci.server.shed.overload").Value() + mr.Counter("vinci.server.shed.budget").Value()
	expiredBefore := mr.Counter("vinci.server.shed.expired").Value()

	const callers = 16
	var (
		wg         sync.WaitGroup
		served     atomic.Int64
		overloaded atomic.Int64
	)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := vinci.DialWith(ln.Addr().String(), vinci.DialOptions{
				CallTimeout: 2 * time.Second,
				Retry:       vinci.RetryPolicy{MaxAttempts: 1},
			})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			<-start
			_, err = c.Call(vinci.Request{Service: "chaos-slow", Op: "work"})
			switch {
			case err == nil:
				served.Add(1)
			case vinci.IsOverloaded(err):
				overloaded.Add(1)
			default:
				t.Errorf("unexpected error class under overload: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()

	shedDelta := mr.Counter("vinci.server.shed.overload").Value() + mr.Counter("vinci.server.shed.budget").Value() - shedBefore
	if overloaded.Load() == 0 {
		t.Fatalf("no calls shed at %dx concurrency over capacity 1", callers)
	}
	if served.Load() == 0 {
		t.Fatal("shedding must protect some capacity, not reject everything")
	}
	// Retries are off, so each shed response is observed by exactly one
	// caller: the server's count and the clients' must agree.
	if shedDelta != overloaded.Load() {
		t.Errorf("server shed %d requests, clients observed %d overload errors", shedDelta, overloaded.Load())
	}
	if d := mr.Counter("vinci.server.shed.expired").Value() - expiredBefore; d != 0 {
		t.Errorf("%d requests expired in queue; the burst's budgets were ample", d)
	}
}

// chaosSeededStore builds an in-memory store of n synthetic entities.
func chaosSeededStore(n int) *store.Store {
	st := store.New(4)
	for i := 0; i < n; i++ {
		st.Put(&store.Entity{ID: fmt.Sprintf("doc%03d", i), Text: fmt.Sprintf("body %d", i)})
	}
	return st
}

// TestChaosBreakerCountersConsistent: a deployment against a
// permanently failing miner trips the breaker once, probes while open,
// and the cluster's stats match the platform-wide breaker metrics.
func TestChaosBreakerCountersConsistent(t *testing.T) {
	st := chaosSeededStore(30)
	mr := metrics.Default()
	tripsBefore := mr.Counter("cluster.breaker.trips").Value()
	probesBefore := mr.Counter("cluster.breaker.probes").Value()
	recoveriesBefore := mr.Counter("cluster.breaker.recoveries").Value()

	c := cluster.NewWithConfig(st, cluster.Config{
		Workers:           1,
		Retry:             cluster.RetryPolicy{MaxAttempts: 1},
		ErrorBudget:       3,
		BreakerProbeAfter: 5,
	})
	stats, err := c.RunEntityMiner(cluster.MinerFunc{MinerName: "chaos-doomed", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		return nil, errors.New("permanently broken")
	}})
	if err == nil || !strings.Contains(err.Error(), "breaker tripped") {
		t.Fatalf("err = %v", err)
	}
	if !stats.BreakerTripped {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Probes == 0 {
		t.Errorf("open breaker admitted no probes over %d entities", 30)
	}
	if stats.Entities+stats.Skipped != 30 {
		t.Errorf("entities %d + skipped %d != 30", stats.Entities, stats.Skipped)
	}
	if d := mr.Counter("cluster.breaker.trips").Value() - tripsBefore; d != 1 {
		t.Errorf("breaker trips metric moved by %d, deployment tripped once", d)
	}
	if d := mr.Counter("cluster.breaker.probes").Value() - probesBefore; d != int64(stats.Probes) {
		t.Errorf("probes metric moved by %d, stats counted %d", d, stats.Probes)
	}
	if d := mr.Counter("cluster.breaker.recoveries").Value() - recoveriesBefore; d != int64(stats.Recoveries) {
		t.Errorf("recoveries metric moved by %d, stats counted %d", d, stats.Recoveries)
	}
}

// TestChaosDeployShedCounterConsistent: an exhausted deployment budget
// sheds every unreached entity, and the shed counter matches the stats.
func TestChaosDeployShedCounterConsistent(t *testing.T) {
	st := chaosSeededStore(40)
	mr := metrics.Default()
	shedBefore := mr.Counter("cluster.deploy.shed").Value()

	c := cluster.NewWithConfig(st, cluster.Config{Workers: 1, DeployBudget: time.Nanosecond})
	stats, err := c.RunEntityMiner(cluster.MinerFunc{MinerName: "chaos-never", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		t.Error("miner ran under an already-exhausted deployment budget")
		return nil, nil
	}})
	if err == nil || !strings.Contains(err.Error(), "deployment budget") {
		t.Fatalf("err = %v", err)
	}
	if stats.Shed != 40 || stats.Entities != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if d := mr.Counter("cluster.deploy.shed").Value() - shedBefore; d != int64(stats.Shed) {
		t.Errorf("deploy shed metric moved by %d, stats counted %d", d, stats.Shed)
	}
}

// TestChaosDurableAckedWritesSurviveRecovery: with the WAL behind the
// injector and the schedule cycling disk-degraded phases, every put the
// store acknowledged before degrading must survive close and recovery —
// and nothing beyond the one in-flight op may appear.
func TestChaosDurableAckedWritesSurviveRecovery(t *testing.T) {
	for _, seed := range chaosSeeds {
		dir := t.TempDir()
		in := faults.New(faults.Config{Seed: seed})
		stop := faults.NewSchedule(seed, 250*time.Millisecond).Start(in)

		st, err := store.Open(dir, store.Options{Shards: 4, WrapWAL: func(w store.WALFile) store.WALFile {
			return in.File(w.(faults.File))
		}})
		if err != nil {
			stop()
			t.Fatal(err)
		}
		var acked []string
		inFlight := ""
		for i := 0; i < 120; i++ {
			id := fmt.Sprintf("doc-%03d", i)
			err := st.Put(&store.Entity{ID: id, Source: "review", Text: fmt.Sprintf("body of %s", id)})
			if err == nil {
				acked = append(acked, id)
				// Pace the workload so it spans several schedule phases
				// instead of finishing inside the first.
				time.Sleep(time.Millisecond)
				continue
			}
			if !errors.Is(err, store.ErrReadOnly) {
				stop()
				t.Fatalf("seed %d: put %s: unexpected error class: %v", seed, id, err)
			}
			inFlight = id
			break
		}
		st.Close()
		stop()

		rec, err := store.Open(dir, store.Options{Shards: 4})
		if err != nil {
			t.Fatalf("seed %d: recovery open: %v", seed, err)
		}
		for _, id := range acked {
			if _, ok := rec.Get(id); !ok {
				t.Fatalf("seed %d: acknowledged put %s lost (injected %v)", seed, id, in.Stats())
			}
		}
		// The in-flight op whose ack failed may legitimately have reached
		// the disk (sync failure after a complete append); anything else
		// beyond the acked set is data from nowhere.
		want := len(acked)
		if inFlight != "" {
			if _, ok := rec.Get(inFlight); ok {
				want++
			}
		}
		if got := rec.Len(); got != want {
			t.Fatalf("seed %d: recovered %d entities, acked %d, in-flight %q (injected %v)",
				seed, got, len(acked), inFlight, in.Stats())
		}
		rec.Close()
	}
}
