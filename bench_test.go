package webfountain

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (reporting the measured metrics alongside throughput), plus
// micro-benchmarks for every pipeline component. Regenerate everything
// with:
//
//	go test -bench=. -benchmem
//
// The table/figure benchmarks run reduced corpus sizes per iteration so
// -bench stays tractable; cmd/experiments reproduces the paper-scale
// numbers.

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"webfountain/internal/baselines"
	"webfountain/internal/chunk"
	"webfountain/internal/corpus"
	"webfountain/internal/eval"
	"webfountain/internal/feature"
	"webfountain/internal/miners"
	"webfountain/internal/pos"
	"webfountain/internal/sentiment"
	"webfountain/internal/services"
	"webfountain/internal/spotter"
	storepkg "webfountain/internal/store"
	"webfountain/internal/tokenize"
	"webfountain/internal/vinci"
)

const benchSeed = eval.DefaultSeed

// --- Benchmarks regenerating the paper's tables and figures ---

// BenchmarkTable4 regenerates Table 4 (review datasets: SM vs. collocation
// vs. ReviewSeer) and reports the headline metrics.
func BenchmarkTable4(b *testing.B) {
	var res eval.Table4Result
	for i := 0; i < b.N; i++ {
		res = eval.Table4(benchSeed, 200, 100)
	}
	for _, r := range res.Rows {
		b.ReportMetric(100*r.Precision, r.System+"_P%")
		b.ReportMetric(100*r.Recall, r.System+"_R%")
		b.ReportMetric(100*r.Accuracy, r.System+"_Acc%")
	}
}

// BenchmarkTable5 regenerates Table 5 (general web/news: SM holds,
// ReviewSeer collapses).
func BenchmarkTable5(b *testing.B) {
	var rows []eval.Table5Row
	for i := 0; i < b.N; i++ {
		rows = eval.Table5(benchSeed, 60, 40)
	}
	for _, r := range rows {
		key := r.System + "(" + strings.ReplaceAll(r.Corpus, ", ", "-") + ")"
		b.ReportMetric(100*r.Accuracy, key+"_Acc%")
	}
}

// BenchmarkTable2 regenerates Table 2 (top-20 feature terms by bBNP-L).
func BenchmarkTable2(b *testing.B) {
	var res eval.FeatureResult
	for i := 0; i < b.N; i++ {
		res = eval.FeatureExtraction("camera", benchSeed, 100, 300, feature.BBNP)
	}
	b.ReportMetric(float64(len(res.Top)), "top_terms")
	b.ReportMetric(100*res.Precision, "precision%")
}

// BenchmarkTable3 regenerates Table 3 (product vs. feature references).
func BenchmarkTable3(b *testing.B) {
	var res eval.Table3Result
	for i := 0; i < b.N; i++ {
		res = eval.Table3(benchSeed, 100)
	}
	b.ReportMetric(res.Ratio(), "feature/product_ratio")
}

// BenchmarkFeaturePrecision regenerates the feature-extraction precision
// result (paper: 97% camera, 100% music).
func BenchmarkFeaturePrecision(b *testing.B) {
	var cam, mus eval.FeatureResult
	for i := 0; i < b.N; i++ {
		cam = eval.FeatureExtraction("camera", benchSeed, 100, 300, feature.BBNP)
		mus = eval.FeatureExtraction("music", benchSeed, 60, 300, feature.BBNP)
	}
	b.ReportMetric(100*cam.Precision, "camera_precision%")
	b.ReportMetric(100*mus.Precision, "music_precision%")
}

// BenchmarkSatisfaction regenerates the Figure 2 inset chart (customer
// satisfaction by product and feature).
func BenchmarkSatisfaction(b *testing.B) {
	var cells []eval.SatisfactionCell
	for i := 0; i < b.N; i++ {
		cells = eval.Satisfaction(benchSeed, 100, 7, []string{"picture quality", "battery", "flash"})
	}
	b.ReportMetric(float64(len(cells)), "chart_cells")
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

func benchmarkAblation(b *testing.B, opts sentiment.Options) {
	docs := corpus.DigitalCameraReviews(benchSeed, 60)
	subjects := append(append([]string{}, corpus.CameraProducts...), corpus.CameraFeatures...)
	cases := eval.Cases(docs, subjects)
	b.ResetTimer()
	var m eval.Metrics
	for i := 0; i < b.N; i++ {
		m = eval.NewRunner(sentiment.NewWithOptions(nil, nil, opts)).EvalSentimentMiner(docs, cases)
	}
	b.ReportMetric(100*m.Precision(), "P%")
	b.ReportMetric(100*m.Recall(), "R%")
}

// BenchmarkAblationFull is the full algorithm baseline for the ablations.
func BenchmarkAblationFull(b *testing.B) { benchmarkAblation(b, sentiment.Options{}) }

// BenchmarkAblationNegation disables negation handling.
func BenchmarkAblationNegation(b *testing.B) {
	benchmarkAblation(b, sentiment.Options{DisableNegation: true})
}

// BenchmarkAblationTransVerbs disables trans-verb sentiment transfer.
func BenchmarkAblationTransVerbs(b *testing.B) {
	benchmarkAblation(b, sentiment.Options{DisableTransVerbs: true})
}

// BenchmarkAblationContrast disables the unlike-contrast rule.
func BenchmarkAblationContrast(b *testing.B) {
	benchmarkAblation(b, sentiment.Options{DisableContrast: true})
}

// --- Component micro-benchmarks ---

var benchSentences = []string{
	"This camera takes excellent pictures in daylight and indoors.",
	"Unlike the more recent T series CLIEs, the NR70 does not require an add-on adapter.",
	"I am impressed by the picture quality, although the battery drains quickly.",
	"The company offers mediocre services and the support staff never responds.",
	"The first movement is a haunting piece with gorgeous harmonies.",
}

func benchText() string {
	out := ""
	for _, s := range benchSentences {
		out += s + " "
	}
	return out
}

// BenchmarkTokenizer measures raw tokenization throughput.
func BenchmarkTokenizer(b *testing.B) {
	tk := tokenize.New()
	text := benchText()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Tokenize(text)
	}
}

// BenchmarkSentenceSplit measures sentence segmentation.
func BenchmarkSentenceSplit(b *testing.B) {
	tk := tokenize.New()
	text := benchText()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Sentences(text)
	}
}

// BenchmarkPOSTagger measures tagging throughput.
func BenchmarkPOSTagger(b *testing.B) {
	tk := tokenize.New()
	tg := pos.NewTagger()
	toks := tk.Tokenize(benchText())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg.Tag(toks)
	}
}

// BenchmarkChunker measures shallow parsing throughput.
func BenchmarkChunker(b *testing.B) {
	tk := tokenize.New()
	tg := pos.NewTagger()
	ck := chunk.New()
	tagged := tg.Tag(tk.Tokenize(benchText()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ck.Clauses(tagged)
	}
}

// BenchmarkSentimentAnalyzer measures the core per-sentence analysis.
func BenchmarkSentimentAnalyzer(b *testing.B) {
	tk := tokenize.New()
	tg := pos.NewTagger()
	an := sentiment.New(nil, nil)
	var taggedSentences [][]pos.TaggedToken
	for _, s := range benchSentences {
		taggedSentences = append(taggedSentences, tg.Tag(tk.Tokenize(s)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an.Analyze(taggedSentences[i%len(taggedSentences)])
	}
}

// BenchmarkSpotter measures Aho-Corasick spotting over all camera subjects.
func BenchmarkSpotter(b *testing.B) {
	subjects := append(append([]string{}, corpus.CameraProducts...), corpus.CameraFeatures...)
	sp := spotter.New(corpus.SynonymSets(subjects))
	tk := tokenize.New()
	toks := tk.Tokenize(benchText())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.SpotTokens(toks)
	}
}

// BenchmarkCollocationBaseline measures the collocation classifier.
func BenchmarkCollocationBaseline(b *testing.B) {
	tk := tokenize.New()
	tg := pos.NewTagger()
	col := baselines.NewCollocation(nil)
	tagged := tg.Tag(tk.Tokenize(benchSentences[0]))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.Classify(tagged, 1, 2)
	}
}

// BenchmarkNaiveBayesClassify measures the statistical baseline at
// sentence granularity.
func BenchmarkNaiveBayesClassify(b *testing.B) {
	nb := eval.TrainReviewSeer(corpus.DigitalCameraReviews(benchSeed, 50))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb.Classify(benchSentences[i%len(benchSentences)])
	}
}

// BenchmarkMinerAnalyzeText measures the public API's ad-hoc path.
func BenchmarkMinerAnalyzeText(b *testing.B) {
	m, err := NewSentimentMiner(MinerConfig{})
	if err != nil {
		b.Fatal(err)
	}
	text := benchText()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AnalyzeText(text)
	}
}

// BenchmarkMinerRun measures end-to-end parallel mining over a platform.
func BenchmarkMinerRun(b *testing.B) {
	generated := corpus.DigitalCameraReviews(benchSeed, 50)
	docs := make([]Document, len(generated))
	for i := range generated {
		docs[i] = Document{ID: generated[i].ID, Text: generated[i].Text()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := NewPlatform(PlatformConfig{})
		if _, err := p.Ingest(docs); err != nil {
			b.Fatal(err)
		}
		m, err := NewSentimentMiner(MinerConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := m.Run(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(docs)), "docs/op")
}

// BenchmarkPlatformIngest measures ingestion + indexing throughput.
func BenchmarkPlatformIngest(b *testing.B) {
	generated := corpus.DigitalCameraReviews(benchSeed, 50)
	docs := make([]Document, len(generated))
	bytes := 0
	for i := range generated {
		docs[i] = Document{Text: generated[i].Text()}
		bytes += len(docs[i].Text)
	}
	b.SetBytes(int64(bytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPlatform(PlatformConfig{})
		if _, err := p.Ingest(docs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureExtraction measures the bBNP-L pipeline itself.
func BenchmarkFeatureExtraction(b *testing.B) {
	on := corpus.DigitalCameraReviews(benchSeed, 40)
	off := corpus.Distractors(benchSeed+2, 120)
	onTexts := make([]string, len(on))
	for i := range on {
		onTexts[i] = on[i].Text()
	}
	offTexts := make([]string, len(off))
	for i := range off {
		offTexts[i] = off[i].Text()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractFeatures(onTexts, offTexts, FeatureConfig{})
	}
}

// BenchmarkCorpusGeneration measures the synthetic data generator.
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		corpus.DigitalCameraReviews(int64(i), 50)
	}
}

// Example-style sanity output for the harness itself.
func ExampleNewSentimentMiner() {
	m, _ := NewSentimentMiner(MinerConfig{})
	for _, f := range m.AnalyzeText("The NR70 takes excellent pictures.") {
		fmt.Printf("(%s, %s)\n", f.Subject, f.Polarity)
	}
	// Output: (NR70, +)
}

// --- Platform miner benchmarks ---

func minerStore(b *testing.B, n int) *Platform {
	b.Helper()
	generated := corpus.PetroleumWeb(benchSeed, n)
	docs := make([]Document, len(generated))
	for i := range generated {
		docs[i] = Document{
			ID: generated[i].ID, URL: "http://petroleum.example/" + generated[i].ID,
			Date: generated[i].Date, Links: generated[i].Links, Text: generated[i].Text(),
		}
	}
	p := NewPlatform(PlatformConfig{})
	if _, err := p.Ingest(docs); err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkGeoContextMiner measures the geographic context miner.
func BenchmarkGeoContextMiner(b *testing.B) {
	p := minerStore(b, 60)
	geo := miners.NewGeoContext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.internalCluster().RunEntityMiner(geo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDuplicateDetection measures minhash dedup over the corpus.
func BenchmarkDuplicateDetection(b *testing.B) {
	p := minerStore(b, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dd := &miners.DuplicateDetector{}
		if err := dd.Run(p.internalStore()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPageRankMiner measures link-graph ranking.
func BenchmarkPageRankMiner(b *testing.B) {
	p := minerStore(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := &miners.PageRank{}
		if err := pr.Run(p.internalStore()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKMeansMiner measures TF-IDF document clustering.
func BenchmarkKMeansMiner(b *testing.B) {
	p := minerStore(b, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		km := &miners.KMeans{K: 4}
		if err := km.Run(p.internalStore()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVinciLocalCall measures the in-process service path.
func BenchmarkVinciLocalCall(b *testing.B) {
	reg := vinci.NewRegistry()
	st := storepkg.New(4)
	services.RegisterStore(reg, st)
	c := services.StoreClient{C: vinci.NewLocalClient(reg)}
	if err := c.Put(&storepkg.Entity{ID: "bench", Text: "some text here"}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVinciTCPCall measures the full network round trip.
func BenchmarkVinciTCPCall(b *testing.B) {
	reg := vinci.NewRegistry()
	st := storepkg.New(4)
	services.RegisterStore(reg, st)
	if err := st.Put(&storepkg.Entity{ID: "bench", Text: "some text here"}); err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := vinci.NewServer(reg)
	go srv.Serve(ln)
	defer srv.Close()
	conn, err := vinci.Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	c := services.StoreClient{C: conn}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get("bench"); err != nil {
			b.Fatal(err)
		}
	}
}
