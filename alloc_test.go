//go:build !race

package webfountain

// Allocation-ceiling regression tests for the mining hot path. The PR
// that introduced the shared DFA matcher, the pipeline arenas and the
// compressed postings drove the steady-state pipeline to (near) zero
// allocations per document; these gates keep it there. Each test warms
// the reusable buffers once, then measures with testing.AllocsPerRun
// and fails if the count climbs above a deliberate ceiling.
//
// The file is excluded under the race detector (build tag above): race
// instrumentation adds its own allocations, so the counts are only
// meaningful in a plain build. CI runs these in a separate non-race
// step next to the race suite.

import (
	"testing"

	"webfountain/internal/corpus"
	"webfountain/internal/spotter"
	"webfountain/internal/tokenize"
)

// TestAllocCeilingTokenize gates the tokenizer's append path: with a
// reused destination buffer, steady-state tokenization of a review-sized
// text must not allocate at all.
func TestAllocCeilingTokenize(t *testing.T) {
	tk := tokenize.New()
	text := benchText()
	var buf []tokenize.Token
	buf = tk.AppendTokens(buf[:0], text) // warm: grow the buffer once
	avg := testing.AllocsPerRun(100, func() {
		buf = tk.AppendTokens(buf[:0], text)
	})
	if avg > 0 {
		t.Fatalf("AppendTokens allocates %.1f/run, want 0", avg)
	}
}

// TestAllocCeilingSpot gates DFA spotting: scanning a token stream
// against the full camera subject set must not allocate once the spot
// buffer has grown.
func TestAllocCeilingSpot(t *testing.T) {
	subjects := append(append([]string{}, corpus.CameraProducts...), corpus.CameraFeatures...)
	sp := spotter.New(corpus.SynonymSets(subjects))
	tk := tokenize.New()
	toks := tk.Tokenize(benchText())
	var spots []spotter.Spot
	spots = sp.AppendSpots(spots[:0], toks, 0) // warm
	avg := testing.AllocsPerRun(100, func() {
		spots = sp.AppendSpots(spots[:0], toks, 0)
	})
	if avg > 0 {
		t.Fatalf("AppendSpots allocates %.1f/run, want 0", avg)
	}
}

// TestAllocCeilingMine gates the full per-document mining path through
// the public API. AnalyzeText legitimately allocates its result slice
// and the windowed-fallback scratch on rare sentences, so the ceiling is
// a small constant rather than zero — before the arena work this path
// cost several hundred allocations per call.
func TestAllocCeilingMine(t *testing.T) {
	m, err := NewSentimentMiner(MinerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	text := benchText()
	m.AnalyzeText(text) // warm the arena pool
	avg := testing.AllocsPerRun(50, func() {
		m.AnalyzeText(text)
	})
	const ceiling = 64
	if avg > ceiling {
		t.Fatalf("AnalyzeText allocates %.1f/run, ceiling %d", avg, ceiling)
	}
	t.Logf("AnalyzeText: %.1f allocs/run (ceiling %d)", avg, ceiling)
}
