package webfountain

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webfountain/internal/index"
	"webfountain/internal/router"
	"webfountain/internal/services"
	"webfountain/internal/store"
	"webfountain/internal/tokenize"
	"webfountain/internal/topology"
	"webfountain/internal/vinci"
)

// DistributedConfig tunes a replicated in-process deployment.
type DistributedConfig struct {
	// Nodes is the number of storage nodes (default 3).
	Nodes int
	// Replicas is the replica-set size R (default 2).
	Replicas int
	// Seed fixes shard placement; chaos runs pin it so two runs of one
	// seed converge to byte-identical rings.
	Seed int64
	// VNodes is the virtual-node count per member (default 64).
	VNodes int
	// ProbeInterval is the router's background health-probe cadence
	// (0 disables the loop; routed calls still feed the detector).
	ProbeInterval time.Duration
	// HedgeAfter is the fixed hedge trigger for replica-fanned reads.
	HedgeAfter time.Duration
	// Detector tunes failure detection.
	Detector topology.DetectorOptions
	// StoreShards is each node's store shard count (default 4).
	StoreShards int
	// WriteQuorum is W: replicas that must accept a write before it is
	// acknowledged (default 2; 1 selects availability mode, where a
	// partition can strand the only acked copy until a sweep heals it).
	WriteQuorum int
	// ReadQuorum is R: replicas a read consults; with R>1 the newest
	// version wins and stale replicas are repaired in the background
	// (default 1).
	ReadQuorum int
	// WriteTimeout bounds each replica write attempt (0: none).
	WriteTimeout time.Duration
	// AntiEntropyInterval is the background divergence-sweep cadence
	// (0 disables the loop; Router().AntiEntropyOnce() still works).
	AntiEntropyInterval time.Duration
	// DataDir, when set, makes every node durable under
	// <DataDir>/<node-name> (the per-node WAL + snapshot layout from the
	// durable store).
	DataDir string
	// WrapNodeClient, when set, wraps each node's transport — the hook
	// the chaos harness uses to put a fault gate between the router and
	// every node.
	WrapNodeClient func(name string, c vinci.Client) vinci.Client
}

func (cfg DistributedConfig) normalized() DistributedConfig {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.StoreShards <= 0 {
		cfg.StoreShards = 4
	}
	return cfg
}

// distNode is one in-process storage node: its own store, inverted
// index and sentiment index behind the full Vinci service surface.
type distNode struct {
	name string
	st   *store.Store
	ix   *index.Index
	sx   *index.SentimentIndex
	c    vinci.Client // possibly wrapped (fault gate)
}

// DistributedPlatform is the replicated deployment shape: N in-process
// storage nodes behind a shard router. It satisfies Backend, so
// everything written against the single-process Platform runs against
// it unchanged; it additionally exposes the cluster-surgery operations
// (KillNode, ReviveNode, RejoinNode, JoinNode, DrainNode are modeled by
// the chaos harness through the router and fault gates).
type DistributedPlatform struct {
	cfg    DistributedConfig
	r      *router.Router
	nextID atomic.Int64

	// surgery serializes membership operations (AddNode, RetryJoin); mu
	// guards nodes/names so health checks and invariant probes can read
	// them while a handoff is rebuilding the map.
	surgery sync.Mutex
	mu      sync.RWMutex
	nodes   map[string]*distNode
	names   []string
}

// NewDistributedPlatform assembles nodes and router. Node names are
// node-1..node-N.
func NewDistributedPlatform(cfg DistributedConfig) (*DistributedPlatform, error) {
	cfg = cfg.normalized()
	dp := &DistributedPlatform{cfg: cfg, nodes: map[string]*distNode{}}
	var handles []router.NodeHandle
	for i := 1; i <= cfg.Nodes; i++ {
		name := fmt.Sprintf("node-%d", i)
		n, err := dp.buildNode(name)
		if err != nil {
			return nil, err
		}
		dp.nodes[name] = n
		dp.names = append(dp.names, name)
		handles = append(handles, router.NodeHandle{Name: name, Client: n.c})
	}
	dp.r = router.New(handles, router.Options{
		Replicas:            cfg.Replicas,
		VNodes:              cfg.VNodes,
		Seed:                cfg.Seed,
		ProbeInterval:       cfg.ProbeInterval,
		HedgeAfter:          cfg.HedgeAfter,
		Detector:            cfg.Detector,
		WriteQuorum:         cfg.WriteQuorum,
		ReadQuorum:          cfg.ReadQuorum,
		WriteTimeout:        cfg.WriteTimeout,
		AntiEntropyInterval: cfg.AntiEntropyInterval,
	})
	return dp, nil
}

// buildNode assembles one storage node and its service registry.
func (dp *DistributedPlatform) buildNode(name string) (*distNode, error) {
	n := &distNode{
		name: name,
		ix:   index.New(),
		sx:   index.NewSentimentIndex(),
	}
	if dp.cfg.DataDir != "" {
		st, err := store.Open(dp.cfg.DataDir+"/"+name, store.Options{Shards: dp.cfg.StoreShards})
		if err != nil {
			return nil, fmt.Errorf("webfountain: open node %s: %w", name, err)
		}
		n.st = st
	} else {
		n.st = store.New(dp.cfg.StoreShards)
	}
	tk := tokenize.New()
	hooks := services.StoreHooks{
		OnPut: func(e *store.Entity) {
			toks := tk.Tokenize(e.Text)
			words := make([]string, len(toks))
			for i := range toks {
				words[i] = toks[i].Text
			}
			n.ix.Add(e.ID, words)
		},
		OnDelete: func(id string) { n.ix.Remove(id) },
	}
	reg := vinci.NewRegistry()
	services.RegisterStoreWith(reg, n.st, hooks)
	services.RegisterIndex(reg, n.ix)
	services.RegisterSentiment(reg, n.sx)
	services.RegisterReplica(reg, n.st, hooks)
	services.RegisterHealth(reg, services.HealthOptions{
		Node:     name,
		Registry: reg,
		Entities: n.st.Len,
		Degraded: n.st.Degraded,
		Topology: func() services.TopologyInfo {
			if dp.r == nil {
				return services.TopologyInfo{}
			}
			return dp.r.TopologyInfoFor(name)
		},
		Clock: func() services.ClockInfo {
			if dp.r == nil {
				return services.ClockInfo{}
			}
			c := dp.r.Clock()
			return services.ClockInfo{Last: c.Last(), Offset: c.Offset()}
		},
	})
	n.c = vinci.NewLocalClient(reg)
	if dp.cfg.WrapNodeClient != nil {
		n.c = dp.cfg.WrapNodeClient(name, n.c)
	}
	return n, nil
}

// Router exposes the routing tier (status, membership surgery, probes).
func (dp *DistributedPlatform) Router() *router.Router { return dp.r }

// NodeNames lists the storage nodes in creation order.
func (dp *DistributedPlatform) NodeNames() []string {
	dp.mu.RLock()
	defer dp.mu.RUnlock()
	return append([]string(nil), dp.names...)
}

func (dp *DistributedPlatform) node(name string) (*distNode, bool) {
	dp.mu.RLock()
	defer dp.mu.RUnlock()
	n, ok := dp.nodes[name]
	return n, ok
}

// NodeEntityCount reports how many entities a node physically holds —
// the replica-level view invariant checks need (NumEntities dedupes).
func (dp *DistributedPlatform) NodeEntityCount(name string) (int, bool) {
	n, ok := dp.node(name)
	if !ok {
		return 0, false
	}
	return n.st.Len(), true
}

// NodeHas reports whether a node physically holds an entity.
func (dp *DistributedPlatform) NodeHas(name, id string) bool {
	n, ok := dp.node(name)
	if !ok {
		return false
	}
	_, has := n.st.Get(id)
	return has
}

// AddNode builds a fresh storage node and joins it to the ring through
// the online-handoff path. The router dual-writes during catch-up and
// bumps the ring epoch only once the node holds everything it owns.
func (dp *DistributedPlatform) AddNode(name string) error {
	dp.surgery.Lock()
	defer dp.surgery.Unlock()
	if _, exists := dp.node(name); exists {
		return fmt.Errorf("webfountain: node %s already exists", name)
	}
	n, err := dp.buildNode(name)
	if err != nil {
		return err
	}
	if err := dp.r.Join(name, n.c); err != nil {
		return err
	}
	dp.mu.Lock()
	dp.nodes[name] = n
	dp.names = append(dp.names, name)
	dp.mu.Unlock()
	return nil
}

// RetryJoin retries a previously-failed AddNode for a node whose
// process is still around (the aborted join kept the node's store).
func (dp *DistributedPlatform) RetryJoin(name string) error {
	dp.surgery.Lock()
	defer dp.surgery.Unlock()
	n, ok := dp.node(name)
	if !ok {
		return fmt.Errorf("webfountain: node %s unknown", name)
	}
	return dp.r.Join(name, n.c)
}

// --- Backend ---

// Ingest assigns IDs and replicates each document through the router.
// The serial-prefix error contract matches Platform.Ingest: on failure,
// every earlier document was ingested.
func (dp *DistributedPlatform) Ingest(docs []Document) ([]string, error) {
	ids := make([]string, len(docs))
	for i := range docs {
		if docs[i].ID != "" {
			ids[i] = docs[i].ID
		} else {
			ids[i] = fmt.Sprintf("doc-%06d", dp.nextID.Add(1))
		}
	}
	for i := range docs {
		d := &docs[i]
		e := &store.Entity{
			ID:     ids[i],
			URL:    d.URL,
			Source: d.Source,
			Title:  d.Title,
			Date:   d.Date,
			Text:   d.Text,
			Links:  append([]string(nil), d.Links...),
		}
		if err := dp.r.Put(e); err != nil {
			return ids[:i], fmt.Errorf("webfountain: ingest %s: %w", ids[i], err)
		}
	}
	return ids, nil
}

// Entity fetches a document from its replica set.
func (dp *DistributedPlatform) Entity(id string) (Document, bool) {
	e, err := dp.r.Get(id)
	if err != nil {
		return Document{}, false
	}
	return Document{
		ID: e.ID, URL: e.URL, Source: e.Source, Title: e.Title,
		Date: e.Date, Links: append([]string(nil), e.Links...), Text: e.Text,
	}, true
}

// Delete removes a document from every replica.
func (dp *DistributedPlatform) Delete(id string) error { return dp.r.Delete(id) }

// NumEntities counts distinct documents across the cluster (0 when no
// node is reachable).
func (dp *DistributedPlatform) NumEntities() int {
	n, err := dp.r.NumEntities()
	if err != nil {
		return 0
	}
	return n
}

// SearchAll fans a conjunctive query across the cluster.
func (dp *DistributedPlatform) SearchAll(terms ...string) []string {
	ids, err := dp.r.Search("all", terms...)
	if err != nil {
		return nil
	}
	return ids
}

// SearchPhrase fans a phrase query across the cluster.
func (dp *DistributedPlatform) SearchPhrase(words ...string) []string {
	ids, err := dp.r.Search("phrase", words...)
	if err != nil {
		return nil
	}
	return ids
}

// Degraded reports reduced capacity: any suspected ring member, or any
// node's store in degraded read-only mode.
func (dp *DistributedPlatform) Degraded() (bool, string) {
	if suspects := dp.r.Suspects(); len(suspects) > 0 {
		return true, "suspected nodes: " + strings.Join(suspects, ", ")
	}
	for _, name := range dp.NodeNames() {
		if n, ok := dp.node(name); ok {
			if deg, reason := n.st.Degraded(); deg {
				return true, name + ": " + reason
			}
		}
	}
	return false, ""
}

// Close stops the router and releases every node store.
func (dp *DistributedPlatform) Close() error {
	err := dp.r.Close()
	for _, name := range dp.NodeNames() {
		if n, ok := dp.node(name); ok {
			if cerr := n.st.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}
