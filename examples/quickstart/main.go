// Quickstart: analyze a handful of sentences for subject-level sentiment
// with the default resources — the paper's introductory NR70 example.
package main

import (
	"fmt"
	"log"

	"webfountain"
)

func main() {
	// The three sentences from the paper's introduction, which document-
	// level classifiers get wrong: each subject reference carries its own
	// sentiment.
	text := "As with every Sony PDA before it, the NR70 series is equipped with memory expansion. " +
		"Unlike the more recent T series CLIEs, the NR70 does not require an add-on adapter for MP3 playback, which is certainly a welcome change. " +
		"The memory support in the NR70 is superb, although there is still a lack of non-memory Memory Sticks."

	miner, err := webfountain.NewSentimentMiner(webfountain.MinerConfig{
		Subjects: []webfountain.Subject{
			{Canonical: "Sony PDA"},
			{Canonical: "NR70", Terms: []string{"NR70", "NR70 series"}},
			{Canonical: "T series CLIEs", Terms: []string{"T series CLIEs", "T series"}},
			// Feature subjects for the ad-hoc sentences below.
			{Canonical: "picture quality"},
			{Canonical: "colors"},
			{Canonical: "company"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("input:")
	fmt.Println(" ", text)
	fmt.Println("\nper-subject sentiment:")
	for _, f := range miner.AnalyzeText(text) {
		fmt.Printf("  sentence %d: (%s, %s)   via %s\n", f.Sentence, f.Subject, f.Polarity, f.Pattern)
	}

	// Ad-hoc single sentences work too.
	fmt.Println("\nad-hoc sentences:")
	for _, s := range []string{
		"I am impressed by the picture quality.",
		"The colors are vibrant.",
		"The company offers mediocre services.",
	} {
		for _, f := range miner.AnalyzeText(s) {
			fmt.Printf("  %-45q -> (%s, %s)\n", s, f.Subject, f.Polarity)
		}
	}
}
