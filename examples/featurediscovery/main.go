// Feature discovery: run the bBNP-L pipeline (the paper's Section 4.1) to
// find the feature terms of a topic from an on-topic collection D+ and an
// off-topic collection D-, then feed the discovered features straight into
// the sentiment miner.
package main

import (
	"fmt"
	"log"

	"webfountain"
	"webfountain/internal/corpus"
)

func main() {
	// D+ = camera reviews, D- = random web pages.
	onTopic := corpus.DigitalCameraReviews(31, 200)
	offTopic := corpus.Distractors(32, 600)

	onTexts := make([]string, len(onTopic))
	for i := range onTopic {
		onTexts[i] = onTopic[i].Text()
	}
	offTexts := make([]string, len(offTopic))
	for i := range offTopic {
		offTexts[i] = offTopic[i].Text()
	}

	// Extract feature terms with the paper's strict 99.9% confidence.
	feats := webfountain.ExtractFeatures(onTexts, offTexts, webfountain.FeatureConfig{})
	fmt.Printf("discovered %d feature terms; top 15 by likelihood ratio:\n", len(feats))
	for i, f := range feats {
		if i >= 15 {
			break
		}
		fmt.Printf("  %2d. %-22s  -2logL=%7.1f  (D+ docs: %d, D- docs: %d)\n",
			i+1, f.Term, f.Score, f.DocsOnTopic, f.DocsOffTopic)
	}

	// Compare with the noisy ablation baseline.
	noisy := webfountain.ExtractFeatures(onTexts, offTexts, webfountain.FeatureConfig{AllBaseNounPhrases: true})
	fmt.Printf("\nablation: all-base-NP heuristic selects %d terms (bBNP: %d) — the paper's\n", len(noisy), len(feats))
	fmt.Println("definiteness + sentence-initial constraints are what keep precision high.")

	// Use the discovered features as sentiment subjects.
	var subjects []webfountain.Subject
	for i, f := range feats {
		if i >= 10 {
			break
		}
		subjects = append(subjects, webfountain.Subject{Canonical: f.Term})
	}
	miner, err := webfountain.NewSentimentMiner(webfountain.MinerConfig{Subjects: subjects})
	if err != nil {
		log.Fatal(err)
	}

	platform := webfountain.NewPlatform(webfountain.PlatformConfig{})
	docs := make([]webfountain.Document, len(onTopic))
	for i := range onTopic {
		docs[i] = webfountain.Document{ID: onTopic[i].ID, Text: onTopic[i].Text()}
	}
	if _, err := platform.Ingest(docs); err != nil {
		log.Fatal(err)
	}
	if _, err := miner.Run(platform); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nsentiment toward the discovered features:")
	for i, f := range feats {
		if i >= 10 {
			break
		}
		p, n := miner.Counts(f.Term)
		fmt.Printf("  %-22s %3d+ %3d-\n", f.Term, p, n)
	}
}
