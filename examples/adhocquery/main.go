// Ad-hoc querying, the paper's second operational mode: no subjects are
// known up front, so the named entity spotter discovers them, the whole
// corpus is analyzed offline, and the sentiment index answers arbitrary
// subject queries in real time.
package main

import (
	"fmt"
	"log"
	"time"

	"webfountain"
	"webfountain/internal/corpus"
)

func main() {
	// Offline phase: ingest a mixed general-web corpus and run the miner
	// with NO predefined subjects — named entities become the subjects.
	var generated []corpus.Document
	generated = append(generated, corpus.PetroleumWeb(21, 120)...)
	generated = append(generated, corpus.PharmaWeb(22, 120)...)
	generated = append(generated, corpus.PetroleumNews(23, 60)...)

	platform := webfountain.NewPlatform(webfountain.PlatformConfig{})
	docs := make([]webfountain.Document, len(generated))
	for i := range generated {
		docs[i] = webfountain.Document{
			ID: generated[i].ID, Source: generated[i].Source,
			Title: generated[i].Title, Text: generated[i].Text(),
		}
	}
	if _, err := platform.Ingest(docs); err != nil {
		log.Fatal(err)
	}

	miner, err := webfountain.NewSentimentMiner(webfountain.MinerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	facts, err := miner.Run(platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline analysis: %d documents, %d facts, %d subjects discovered in %v\n\n",
		platform.NumEntities(), len(facts), len(miner.Subjects()), time.Since(start).Round(time.Millisecond))

	// Query phase: arbitrary subjects, answered from the index.
	for _, q := range []string{"PetroNova", "MediCure", "GulfStar"} {
		qStart := time.Now()
		pos, neg := miner.Counts(q)
		entries := miner.Query(q)
		fmt.Printf("query %q -> %d+ %d- in %v\n", q, pos, neg, time.Since(qStart).Round(time.Microsecond))
		for i, e := range entries {
			if i >= 2 {
				fmt.Printf("  ... %d more\n", len(entries)-2)
				break
			}
			fmt.Printf("  [%s] %s: %q\n", e.Polarity, e.DocID, e.Snippet)
		}
		fmt.Println()
	}

	// The index also supports browsing all discovered subjects.
	fmt.Println("discovered subjects with the most coverage:")
	shown := 0
	for _, s := range miner.Subjects() {
		p, n := miner.Counts(s)
		if p+n >= 20 && shown < 8 {
			fmt.Printf("  %-24s %3d+ %3d-\n", s, p, n)
			shown++
		}
	}
}
