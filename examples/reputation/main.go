// Reputation management, the paper's proof-of-concept application: track
// a predefined set of products and their features across a review corpus,
// then report per-product and per-feature customer satisfaction — the
// analysis behind the Figure 2 inset chart.
package main

import (
	"fmt"
	"log"
	"sort"

	"webfountain"
	"webfountain/internal/corpus"
)

func main() {
	// 1. Acquire: generate a digital camera review corpus (standing in
	// for the crawled review sites) and ingest it into the platform.
	reviews := corpus.DigitalCameraReviews(11, 200)
	platform := webfountain.NewPlatform(webfountain.PlatformConfig{})
	docs := make([]webfountain.Document, len(reviews))
	for i := range reviews {
		docs[i] = webfountain.Document{
			ID: reviews[i].ID, Source: reviews[i].Source,
			Title: reviews[i].Title, Text: reviews[i].Text(),
		}
	}
	if _, err := platform.Ingest(docs); err != nil {
		log.Fatal(err)
	}

	// 2. Configure the subjects of interest: the brands we track plus the
	// product features the end users care about.
	tracked := []string{"Canon", "Nikon", "Sony", "Olympus", "Kodak", "Fuji", "Minolta"}
	features := []string{"picture quality", "battery", "flash", "zoom", "menu"}
	var subjects []webfountain.Subject
	for _, t := range append(append([]string{}, tracked...), features...) {
		subjects = append(subjects, webfountain.Subject{Canonical: t})
	}
	miner, err := webfountain.NewSentimentMiner(webfountain.MinerConfig{Subjects: subjects})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Mine the whole corpus in parallel.
	facts, err := miner.Run(platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d documents, extracted %d sentiment facts\n\n", platform.NumEntities(), len(facts))

	// 4. Brand reputation report.
	fmt.Println("brand reputation (share of positive mentions):")
	type row struct {
		name     string
		pos, neg int
	}
	var rows []row
	for _, t := range tracked {
		p, n := miner.Counts(t)
		rows = append(rows, row{t, p, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		return share(rows[i].pos, rows[i].neg) > share(rows[j].pos, rows[j].neg)
	})
	for _, r := range rows {
		fmt.Printf("  %-10s %3d+ %3d-  %5.1f%% positive\n", r.name, r.pos, r.neg, share(r.pos, r.neg))
	}

	// 5. Feature-level satisfaction: the aspect granularity document-level
	// classifiers cannot provide.
	fmt.Println("\nfeature satisfaction across all products:")
	for _, f := range features {
		p, n := miner.Counts(f)
		fmt.Printf("  %-16s %3d+ %3d-  %5.1f%% positive\n", f, p, n, share(p, n))
	}

	// 6. Drill-down: the sentences driving one feature's negatives.
	fmt.Println("\nsample negative sentences about the menu:")
	shown := 0
	for _, e := range miner.Query("menu") {
		if e.Polarity == webfountain.Negative && shown < 3 {
			fmt.Printf("  [%s] %q\n", e.DocID, e.Snippet)
			shown++
		}
	}
}

func share(pos, neg int) float64 {
	if pos+neg == 0 {
		return 0
	}
	return 100 * float64(pos) / float64(pos+neg)
}
