// Platform tour: the WebFountain substrate beyond the sentiment miner —
// the standard miner suite (aggregate statistics, duplicate detection,
// page ranking, geographic context, clustering), sentiment trending over
// time, and remote access to the platform through the Vinci service
// layer.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"webfountain"
	"webfountain/internal/corpus"
	"webfountain/internal/index"
	"webfountain/internal/services"
	"webfountain/internal/store"
	"webfountain/internal/vinci"
)

func main() {
	// Ingest a mixed petroleum corpus with dates and hyperlinks.
	generated := append(corpus.PetroleumWeb(41, 150), corpus.PetroleumNews(42, 80)...)
	platform := webfountain.NewPlatform(webfountain.PlatformConfig{})
	docs := make([]webfountain.Document, len(generated))
	for i := range generated {
		docs[i] = webfountain.Document{
			ID:     generated[i].ID,
			URL:    "http://petroleum.example/" + generated[i].ID,
			Source: generated[i].Source,
			Date:   generated[i].Date,
			Links:  generated[i].Links,
			Text:   generated[i].Text(),
		}
	}
	if _, err := platform.Ingest(docs); err != nil {
		log.Fatal(err)
	}

	// 1. Sentiment mining (needed by the trend miner below).
	miner, err := webfountain.NewSentimentMiner(webfountain.MinerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	facts, err := miner.Run(platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d documents -> %d sentiment facts\n\n", platform.NumEntities(), len(facts))

	// 2. The standard miner suite.
	rep, err := platform.RunAnalytics(webfountain.AnalyticsConfig{TopTerms: 8, Clusters: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d docs, %d tokens, vocabulary %d\n",
		rep.Stats.Documents, rep.Stats.Tokens, rep.Stats.Vocabulary)
	fmt.Printf("sources: %v\n", rep.Stats.BySource)
	fmt.Printf("regions: %v\n", rep.Regions)
	fmt.Printf("duplicate clusters: %d\n", len(rep.DuplicateClusters))
	if len(rep.TopRanked) > 0 {
		fmt.Printf("most linked page: %s\n", rep.TopRanked[0].ID)
	}
	for i, c := range rep.Clusters {
		fmt.Printf("cluster %d: %d docs, terms %v\n", i, c.Size, c.TopTerms)
	}

	// 3. Sentiment trending: how a company's reputation moved this year.
	fmt.Println("\nreputation trend for PetroNova:")
	series, momentum, ok := platform.SentimentTrend("PetroNova")
	if ok {
		for _, pt := range series {
			fmt.Printf("  %s  %2d+ %2d-\n", pt.Month, pt.Positive, pt.Negative)
		}
		fmt.Printf("  momentum: %+.2f\n", momentum)
	}

	// 4. Remote access: serve the sentiment index over Vinci and query it
	// through the network path, as a remote application component would.
	sidx := index.NewSentimentIndex()
	for _, f := range facts {
		sidx.Add(index.SentimentEntry{
			DocID: f.DocID, Sentence: f.Sentence, Subject: f.Subject,
			Polarity: int(f.Polarity), Snippet: f.Snippet,
		})
	}
	reg := vinci.NewRegistry()
	services.RegisterSentiment(reg, sidx)
	services.RegisterStore(reg, store.New(1)) // empty remote store, for show
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := vinci.NewServer(reg)
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := vinci.Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	sc := services.SentimentClient{C: conn}
	pos, neg, err := sc.Counts("GulfStar")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nremote query over Vinci (%s): GulfStar = %d+ %d-\n", ln.Addr(), pos, neg)
}
