package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"webfountain/internal/lexicon"
)

// Bulletin-board posts: the paper lists "preprocessed bulletin boards" and
// NNTP among WebFountain's sources. Posts are short, informal and noisy —
// fragments, lower-case subjects, interjections — which stresses the
// robustness of the pipeline rather than its accuracy; gold labels are
// still emitted for every subject mention.

// bboardPolar are short polar post templates ({S} subject); all stay
// within lexicon/pattern coverage so the miner has a fair shot.
var bboardPolar = []struct {
	tmpl string
	pol  lexicon.Polarity
}{
	{"just got the {S} and the pictures are gorgeous!!", lexicon.Positive},
	{"the {S} is excellent, period.", lexicon.Positive},
	{"love the {S}, no regrets here", lexicon.Positive},
	{"my {S} takes superb pictures every time", lexicon.Positive},
	{"honestly the {S} impressed me a lot", lexicon.Positive},
	{"the {S} is terrible, avoid", lexicon.Negative},
	{"my {S} died after two weeks... the battery drains overnight", lexicon.Negative},
	{"the {S} takes blurry pictures indoors", lexicon.Negative},
	{"returned the {S}, the menu is confusing beyond belief", lexicon.Negative},
	{"the {S} disappointed me from day one", lexicon.Negative},
}

// bboardNeutral are neutral post templates.
var bboardNeutral = []string{
	"anyone know if the {S} ships with a charger?",
	"what firmware is the {S} on these days?",
	"selling my {S}, see the classifieds thread",
	"the {S} manual is on the maker's site",
	"does the {S} use the same battery as last year's model?",
	"picked up the {S} at the outlet, box was sealed",
}

// BulletinBoard generates a noisy short-post corpus over the camera
// products. Each document is one post with a single subject mention.
func BulletinBoard(seed int64, n int) []Document {
	r := rand.New(rand.NewSource(seed))
	docs := make([]Document, 0, n)
	for i := 0; i < n; i++ {
		product := pick(r, CameraProducts)
		d := Document{
			ID:     docID("camera", "bboard", i),
			Title:  fmt.Sprintf("post %d", i),
			Source: "bboard",
			Domain: "camera",
		}
		if chance(r, 0.55) {
			t := pick(r, bboardPolar)
			d.Sentences = append(d.Sentences, Sentence{
				Text:   strings.ReplaceAll(t.tmpl, "{S}", product),
				Labels: []Label{{Subject: product, Polarity: t.pol, Detectable: true}},
			})
			d.DocLabel = t.pol
		} else {
			d.Sentences = append(d.Sentences, Sentence{
				Text:   strings.ReplaceAll(pick(r, bboardNeutral), "{S}", product),
				Labels: []Label{{Subject: product, Polarity: lexicon.Neutral}},
			})
		}
		stampDateAndLinks(&d, r, i, func(k int) string { return docID("camera", "bboard", k) })
		docs = append(docs, d)
	}
	return docs
}
