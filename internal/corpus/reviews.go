package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"webfountain/internal/lexicon"
)

// reviewDomain parameterizes the review generator for a product domain.
// Bait and catalog templates use {S} for the subject, {POS} and {NEG} for
// sentiment adjectives; sentence-initial definite NPs in any template must
// be feature terms of the domain so the bBNP extractor's precision target
// holds.
type reviewDomain struct {
	name         string
	products     []string
	features     []string
	positiveAdjs []string
	negativeAdjs []string
	positiveNPs  []string
	negativeNPs  []string
	neutralTmpls []string
	baitTmpls    []string
	catalogTmpls []string
	// condTail finishes the conditional trap sentence ("if the firmware
	// ever cooperated") with domain-appropriate blame.
	condTail    string
	productNoun string // "camera" / "album": the generic product word
}

func cameraDomain() reviewDomain {
	return reviewDomain{
		name:         "camera",
		products:     CameraProducts,
		features:     CameraFeatures,
		positiveAdjs: positiveAdjectives,
		negativeAdjs: negativeAdjectives,
		positiveNPs:  positiveObjectNPs,
		negativeNPs:  negativeObjectNPs,
		neutralTmpls: neutralCameraTemplates,
		baitTmpls: []string{
			"I paired the {S} with a remarkably {POS} tripod from another maker.",
			"My brother, a {NEG} photographer by his own admission, borrowed the {S} for a week.",
			"The manual describes the {S} right after a chapter full of {NEG} stock photos.",
			"A surprisingly {POS} carrying bag arrived in the same parcel as the {S}.",
			"The {S} replaced an older unit that produced {NEG} results.",
			"Next to my {NEG} old kit, the {S} arrived on a Tuesday.",
		},
		catalogTmpls: []string{
			"{F+}You also get the {A}, the {B}, and the {C} in a surprisingly sturdy box.",
			"{F+}A glossy flyer hypes the {A}, the {B}, and the {C} in breathless superb-this, flawless-that copy.",
			"{F-}Some cheap third-party kits bundle the {A}, the {B}, and the {C}.",
			"{F-}An awful instructional DVD about the {A}, the {B}, and the {C} rounds out the box.",
			"{F+}One gorgeous poster diagrams the {A}, the {B}, and the {C}.",
			"Buyers will find the {A}, the {B}, and the {C} covered under warranty.",
		},
		condTail:    "if the firmware ever cooperated",
		productNoun: "camera",
	}
}

func musicDomain() reviewDomain {
	return reviewDomain{
		name:         "music",
		products:     MusicAlbums,
		features:     MusicFeatures,
		positiveAdjs: positiveMusicAdjectives,
		negativeAdjs: negativeMusicAdjectives,
		positiveNPs:  []string{"memorable melodies", "gorgeous harmonies", "vivid textures", "superb solos"},
		negativeNPs:  []string{"forgettable hooks", "muddy textures", "lifeless arrangements", "repetitive riffs"},
		neutralTmpls: neutralMusicTemplates,
		baitTmpls: []string{
			"I heard the {S} right after a {NEG} radio single by another act.",
			"My roommate, a {NEG} critic of everything, hummed along to the {S}.",
			"One {POS} live bootleg circulated long before the {S} was cut.",
			"The {S} follows an interlude that samples a {NEG} lounge record.",
			"Liner notes credit the {S} alongside a {POS} guest ensemble.",
			"Between two {NEG} cover songs, the {S} simply plays on.",
		},
		catalogTmpls: []string{
			"{F+}A gorgeous gatefold sleeve wraps the {A}, the {B}, and the {C}.",
			"{F-}Some tedious liner essays annotate the {A}, the {B}, and the {C}.",
			"{F+}One glowing sticker promises the {A}, the {B}, and the {C} remastered.",
			"{F-}A dreary press kit summarizes the {A}, the {B}, and the {C}.",
			"{F+}Some superb session players anchor the {A}, the {B}, and the {C}.",
			"You will hear the {A}, the {B}, and the {C} within ten minutes.",
		},
		condTail:    "if the mastering ever cooperated",
		productNoun: "album",
	}
}

// FeatureQuality returns the deterministic quality profile of a feature
// for a product: the probability that a review of the product speaks
// positively about the feature. Profiles are spread over [0.15, 0.85] so
// the satisfaction chart (Figure 2 inset) has visible structure.
func FeatureQuality(productIdx, featureIdx int) float64 {
	h := (productIdx*131 + featureIdx*31 + 17) % 97
	return 0.15 + 0.7*float64(h)/96.0
}

// DigitalCameraReviews generates the digital camera review corpus (the
// paper's D+ had 485 documents).
func DigitalCameraReviews(seed int64, n int) []Document {
	return reviews(cameraDomain(), seed, n)
}

// MusicReviews generates the music review corpus (the paper's D+ had 250
// documents).
func MusicReviews(seed int64, n int) []Document {
	return reviews(musicDomain(), seed, n)
}

func reviews(dom reviewDomain, seed int64, n int) []Document {
	r := rand.New(rand.NewSource(seed))
	docs := make([]Document, 0, n)
	for i := 0; i < n; i++ {
		docs = append(docs, reviewDoc(dom, r, i))
	}
	return docs
}

// reviewDoc builds one review. The sentence mix is engineered to the
// corpus-level targets documented in the package comment.
func reviewDoc(dom reviewDomain, r *rand.Rand, i int) Document {
	productIdx := r.Intn(len(dom.products))
	product := dom.products[productIdx]
	docPol := lexicon.Positive
	if chance(r, 0.5) {
		docPol = lexicon.Negative
	}
	d := Document{
		ID:       docID(dom.name, "review", i),
		Title:    fmt.Sprintf("Review of the %s", product),
		Source:   "review",
		Domain:   dom.name,
		DocLabel: docPol,
	}

	add := func(s Sentence) { d.Sentences = append(d.Sentences, s) }

	// 1. Intro: neutral product mention.
	add(introSentence(dom, r, product))

	// 2. Detectable polar feature sentences driven by the product's
	// per-feature quality profile.
	featureIdxs := r.Perm(len(dom.features))
	nFeat := 4
	for k := 0; k < nFeat; k++ {
		fi := featureIdxs[k]
		// Blend the product's per-feature quality with the reviewer's
		// overall verdict: a negative review dwells on weaknesses. The
		// blend keeps the satisfaction profiles visible while giving the
		// document-level classifier a real signal.
		p := 0.55 * FeatureQuality(productIdx, fi)
		if docPol == lexicon.Positive {
			p += 0.45
		}
		pol := lexicon.Negative
		if chance(r, p) {
			pol = lexicon.Positive
		}
		add(detectableFeatureSentence(dom, r, dom.features[fi], pol))
	}

	// 3. One detectable polar sentence about the product itself, aligned
	// with the overall verdict.
	add(detectableProductSentence(dom, r, product, docPol))

	// 4. Idiomatic polar sentences: gold sentiment outside lexicon
	// coverage (the recall gap).
	for k := 0; k < 3; k++ {
		subj := dom.features[featureIdxs[nFeat+k]]
		pol := docPol
		if chance(r, 0.15) {
			pol = pol.Flip()
		}
		add(idiomSentence(r, subj, pol))
	}

	// 5. Collocation baits: neutral subject mentions inside sentences that
	// contain sentiment vocabulary about something else.
	for k := 0; k < 6; k++ {
		subj := dom.features[featureIdxs[(nFeat+3+k)%len(dom.features)]]
		add(baitSentence(dom, r, subj, docPol))
	}

	// 6. Catalog sentences: several neutral feature mentions at once.
	add(catalogSentence(dom, r, featureIdxs[nFeat+8:nFeat+11], docPol))
	add(catalogSentence(dom, r, featureIdxs[nFeat+11:nFeat+14], docPol))
	add(catalogSentence(dom, r, featureIdxs[nFeat+14:nFeat+17], docPol))
	add(catalogSentence(dom, r, featureIdxs[nFeat+20:nFeat+23], docPol))

	// 7. Trap sentence with probability 0.8: the miner's pattern fires but
	// the gold label disagrees (sarcasm, conditionals, wrong referent).
	if chance(r, 0.8) {
		subj := dom.features[featureIdxs[nFeat+17]]
		add(trapSentence(dom, r, subj, product))
	}

	// 7b. Contrast sentence (the paper's flagship NR70-vs-CLIE example)
	// with probability 0.25: "Unlike X, Y does not require an adapter."
	if chance(r, 0.25) {
		other := dom.products[(productIdx+1+r.Intn(len(dom.products)-1))%len(dom.products)]
		add(contrastSentence(dom, r, product, other))
	}

	// 8. Neutral spec sentences.
	add(specSentence(dom, r, dom.features[featureIdxs[nFeat+18]]))
	add(specSentence(dom, r, dom.features[featureIdxs[nFeat+19]]))

	// 9. Overall verdict: strong document-level vocabulary for the
	// statistical baseline.
	add(verdictSentence(r, docPol, dom.productNoun))

	stampDateAndLinks(&d, r, i, func(k int) string { return docID(dom.name, "review", k) })

	// Rating noise: real review sites show star ratings that contradict
	// the text about one time in eight, which is what keeps document-level
	// classifiers under ~90% (ReviewSeer's 88.4%). The per-sentence gold
	// labels stay consistent with their own sentences.
	if chance(r, 0.12) {
		d.DocLabel = d.DocLabel.Flip()
	}

	return d
}

func introSentence(dom reviewDomain, r *rand.Rand, product string) Sentence {
	tmpl := pick(r, []string{
		"I spent three weeks with the %s before writing this.",
		"This review covers the %s in detail.",
		"My %s arrived at the end of last month.",
		"I tested the %s on two long trips.",
		"After a string of terrible rentals, I finally picked up the %s.",
		"A friend with impeccable taste talked me into the %s.",
		"Fresh from returning a shoddy knockoff, I unboxed the %s.",
		"On the advice of one brutally honest forum, I ordered the %s.",
	})
	return Sentence{
		Text:   fmt.Sprintf(tmpl, product),
		Labels: []Label{{Subject: product, Polarity: lexicon.Neutral}},
	}
}

// detectableFeatureSentence uses constructs inside pattern/lexicon
// coverage, with the feature as a definite NP at sentence start (feeding
// the bBNP extractor).
func detectableFeatureSentence(dom reviewDomain, r *rand.Rand, feature string, pol lexicon.Polarity) Sentence {
	adjs := dom.positiveAdjs
	if pol == lexicon.Negative {
		adjs = dom.negativeAdjs
	}
	adj := pick(r, adjs)
	var text string
	switch r.Intn(4) {
	case 0:
		text = fmt.Sprintf("The %s is %s.", feature, adj)
	case 1:
		text = fmt.Sprintf("The %s feels %s in daily use.", feature, adj)
	case 2:
		text = fmt.Sprintf("The %s seems %s overall.", feature, adj)
	default:
		// Negated opposite: "The zoom is not sluggish." (negation test).
		opp := pick(r, dom.negativeAdjs)
		if pol == lexicon.Negative {
			opp = pick(r, dom.positiveAdjs)
		}
		text = fmt.Sprintf("The %s is not %s.", feature, opp)
	}
	return Sentence{
		Text:   text,
		Labels: []Label{{Subject: feature, Polarity: pol, Detectable: true}},
	}
}

// detectableProductSentence speaks about the product via trans-verb or
// fixed-verb patterns.
func detectableProductSentence(dom reviewDomain, r *rand.Rand, product string, pol lexicon.Polarity) Sentence {
	if pol == lexicon.Positive {
		switch r.Intn(4) {
		case 0:
			return Sentence{
				Text:   fmt.Sprintf("This %s takes %s.", product, pick(r, dom.positiveNPs)),
				Labels: []Label{{Subject: product, Polarity: pol, Detectable: true}},
			}
		case 1:
			return Sentence{
				Text:   fmt.Sprintf("The %s offers %s.", product, pick(r, dom.positiveNPs)),
				Labels: []Label{{Subject: product, Polarity: pol, Detectable: true}},
			}
		case 2:
			return Sentence{
				Text:   fmt.Sprintf("I am impressed with the %s.", product),
				Labels: []Label{{Subject: product, Polarity: pol, Detectable: true}},
			}
		default:
			return Sentence{
				Text:   fmt.Sprintf("I love the %s.", product),
				Labels: []Label{{Subject: product, Polarity: pol, Detectable: true}},
			}
		}
	}
	switch r.Intn(4) {
	case 0:
		return Sentence{
			Text:   fmt.Sprintf("This %s takes %s.", product, pick(r, dom.negativeNPs)),
			Labels: []Label{{Subject: product, Polarity: pol, Detectable: true}},
		}
	case 1:
		return Sentence{
			Text:   fmt.Sprintf("The %s disappointed me from day one.", product),
			Labels: []Label{{Subject: product, Polarity: pol, Detectable: true}},
		}
	case 2:
		return Sentence{
			Text:   fmt.Sprintf("I was frustrated by the %s.", product),
			Labels: []Label{{Subject: product, Polarity: pol, Detectable: true}},
		}
	default:
		return Sentence{
			Text:   fmt.Sprintf("The %s fails to meet basic expectations.", product),
			Labels: []Label{{Subject: product, Polarity: pol, Detectable: true}},
		}
	}
}

func idiomSentence(r *rand.Rand, subject string, pol lexicon.Polarity) Sentence {
	// 65% of idioms carry a detached sentiment word (visible to the
	// collocation baseline, invisible to the miner's grammar); the rest
	// contain no lexicon vocabulary at all.
	visible := chance(r, 0.65)
	var tmpl string
	switch {
	case pol == lexicon.Positive && visible:
		tmpl = pick(r, idiomPositiveVisible)
	case pol == lexicon.Positive:
		tmpl = pick(r, idiomPositiveInvisible)
	case visible:
		tmpl = pick(r, idiomNegativeVisible)
	default:
		tmpl = pick(r, idiomNegativeInvisible)
	}
	return Sentence{
		Text:   fmt.Sprintf(tmpl, subject),
		Labels: []Label{{Subject: subject, Polarity: pol, Detectable: false}},
	}
}

// baitSentence mentions the subject neutrally while a sentiment word
// applies to something else. The verbs used here are outside the pattern
// database and the sentiment lexicon, so the miner stays silent; the
// collocation baseline fires and is wrong. The sentiment flavor of the
// aside leans toward the reviewer's overall mood (a disappointed reviewer
// writes sour asides), which is the document-wide vocabulary signal a
// document-level classifier feeds on.
func baitSentence(dom reviewDomain, r *rand.Rand, subject string, mood lexicon.Polarity) Sentence {
	want := "{NEG}"
	if mood == lexicon.Positive {
		want = "{POS}"
	}
	text := pickFlavored(r, dom.baitTmpls, want, 0.85)
	text = strings.ReplaceAll(text, "{S}", subject)
	text = strings.ReplaceAll(text, "{POS}", pick(r, dom.positiveAdjs))
	text = strings.ReplaceAll(text, "{NEG}", pick(r, dom.negativeAdjs))
	return Sentence{
		Text:   text,
		Labels: []Label{{Subject: subject, Polarity: lexicon.Neutral}},
	}
}

// pickFlavored picks a template containing the wanted placeholder (or
// flavor marker) with the given probability, otherwise any template.
func pickFlavored(r *rand.Rand, tmpls []string, want string, p float64) string {
	if chance(r, p) {
		var flavored []string
		for _, t := range tmpls {
			if strings.Contains(t, want) {
				flavored = append(flavored, t)
			}
		}
		if len(flavored) > 0 {
			return pick(r, flavored)
		}
	}
	return pick(r, tmpls)
}

// catalogSentence lists several features neutrally. Templates carry an
// invisible {F+}/{F-} flavor marker so the aside vocabulary can follow the
// reviewer's mood.
func catalogSentence(dom reviewDomain, r *rand.Rand, featureIdxs []int, mood lexicon.Polarity) Sentence {
	f1 := dom.features[featureIdxs[0]]
	f2 := dom.features[featureIdxs[1]]
	f3 := dom.features[featureIdxs[2]]
	want := "{F-}"
	if mood == lexicon.Positive {
		want = "{F+}"
	}
	text := pickFlavored(r, dom.catalogTmpls, want, 0.85)
	text = strings.ReplaceAll(text, "{F+}", "")
	text = strings.ReplaceAll(text, "{F-}", "")
	text = strings.ReplaceAll(text, "{A}", f1)
	text = strings.ReplaceAll(text, "{B}", f2)
	text = strings.ReplaceAll(text, "{C}", f3)
	return Sentence{
		Text: text,
		Labels: []Label{
			{Subject: f1, Polarity: lexicon.Neutral},
			{Subject: f2, Polarity: lexicon.Neutral},
			{Subject: f3, Polarity: lexicon.Neutral},
		},
	}
}

// trapSentence makes the miner's patterns fire against the gold label:
// sarcasm and conditionals carry an opposite gold polarity; wrong-referent
// sentences are gold-neutral for the spotted subject.
func trapSentence(dom reviewDomain, r *rand.Rand, subject, product string) Sentence {
	switch r.Intn(3) {
	case 0: // conditional: reads positive, is negative
		adj := pick(r, dom.positiveAdjs)
		return Sentence{
			Text:   fmt.Sprintf("The %s would be %s "+dom.condTail+".", subject, adj),
			Labels: []Label{{Subject: subject, Polarity: lexicon.Negative, Detectable: true}},
		}
	case 1: // sarcasm: reads positive, is negative
		adj := pick(r, dom.positiveAdjs)
		return Sentence{
			Text:   fmt.Sprintf("The %s is %s if you enjoy wrestling with it for sport.", subject, adj),
			Labels: []Label{{Subject: subject, Polarity: lexicon.Negative, Detectable: true}},
		}
	default: // wrong referent: sentiment about earlier models, not this one
		np := pick(r, dom.negativeNPs)
		return Sentence{
			Text:   fmt.Sprintf("Earlier %s models took %s.", product, np),
			Labels: []Label{{Subject: product, Polarity: lexicon.Neutral}},
		}
	}
}

// contrastSentence reproduces the paper's motivating example: an
// unlike-phrase whose referent receives the opposite sentiment of the
// subject. "Unlike the T series CLIEs, the NR70 does not require an
// add-on adapter."
func contrastSentence(dom reviewDomain, r *rand.Rand, product, other string) Sentence {
	if chance(r, 0.5) {
		return Sentence{
			Text: fmt.Sprintf("Unlike the %s, the %s does not require an add-on adapter.", other, product),
			Labels: []Label{
				{Subject: product, Polarity: lexicon.Positive, Detectable: true},
				{Subject: other, Polarity: lexicon.Negative, Detectable: true},
			},
		}
	}
	adj := pick(r, dom.positiveAdjs)
	return Sentence{
		Text: fmt.Sprintf("Unlike the %s, the %s is truly %s.", other, product, adj),
		Labels: []Label{
			{Subject: product, Polarity: lexicon.Positive, Detectable: true},
			{Subject: other, Polarity: lexicon.Negative, Detectable: true},
		},
	}
}

func specSentence(dom reviewDomain, r *rand.Rand, feature string) Sentence {
	return Sentence{
		Text:   fmt.Sprintf(pick(r, dom.neutralTmpls), feature),
		Labels: []Label{{Subject: feature, Polarity: lexicon.Neutral}},
	}
}

// verdictSentence closes the review with unambiguous document-level
// vocabulary. The variant that names the generic product word ("this
// camera") carries a gold label for it, since that mention does bear the
// verdict's sentiment.
func verdictSentence(r *rand.Rand, pol lexicon.Polarity, noun string) Sentence {
	var text string
	var labels []Label
	variant := r.Intn(3)
	if pol == lexicon.Positive {
		switch variant {
		case 0:
			text = "Overall I am delighted with this purchase and recommend it without hesitation."
		case 1:
			text = "Overall this is a superb buy and I would purchase it again tomorrow."
		default:
			text = "Overall I am thrilled and happy with this " + noun + "."
			labels = []Label{{Subject: noun, Polarity: pol, Detectable: true}}
		}
	} else {
		switch variant {
		case 0:
			text = "Overall I regret this purchase and advise avoiding it."
		case 1:
			text = "Overall this is a terrible buy and I returned it within a week."
		default:
			text = "Overall I am disappointed and unhappy with this " + noun + "."
			labels = []Label{{Subject: noun, Polarity: pol, Detectable: true}}
		}
	}
	return Sentence{Text: text, Labels: labels}
}
