package corpus

import (
	"fmt"
	"math/rand"

	"webfountain/internal/lexicon"
)

// generalDomain parameterizes the general web/news generators.
type generalDomain struct {
	name     string
	subjects []string
	// trapRate is the probability per document of a sentence where the
	// miner's pattern fires against the gold label. Petroleum web text is
	// messier than pharmaceutical text, matching the paper's spread
	// (86/90 vs. 91/93).
	trapRate float64
	// neutral are domain-flavored neutral sentence templates (%s subject).
	neutral []string
	// iclass are "I class" templates: ambiguous or off-target sentences
	// that contain sentiment vocabulary but carry none about the subject.
	iclass []string
	// positive and negative are detectable polar templates.
	positive []string
	negative []string
	// idiomShare is the share of polar sentences expressed idiomatically
	// (undetectable). Web text uses fewer review idioms than reviews.
	idiomShare float64
}

func petroleumDomain() generalDomain {
	return generalDomain{
		name:     "petroleum",
		subjects: PetroleumCompanies,
		trapRate: 0.6,
		neutral: []string{
			"%s operates twelve refineries across Texas and Alaska.",
			"%s employs roughly eight thousand workers.",
			"%s scheduled its annual meeting for October.",
			"%s ships crude through the North Sea pipeline.",
			"%s filed its quarterly statement on Monday.",
			"%s named a new director of exploration in Norway.",
			"Production at %s resumed after routine maintenance.",
		},
		iclass: []string{
			// Off-target: sentiment about rivals, suppliers, conditions.
			"Rivals of %s posted terrible losses this quarter.",
			"A supplier to %s drew harsh criticism from regulators.",
			"%s watched a competitor struggle through an awful spill season.",
			// Ambiguous out of context.
			"Questions continue to follow %s into the new quarter.",
			"The picture around %s keeps shifting, observers say.",
			"Few expected %s to dominate the headlines again.",
		},
		positive: []string{
			"%s delivered excellent figures this quarter.",
			"Analysts praised %s for a superb safety record.",
			"%s posted impressive earnings despite soft demand.",
			"%s delivered an outstanding turnaround.",
			"Investors applauded %s after the upgrade.",
			"%s delighted investors across the board.",
			"Analysts happily recommend %s to clients.",
		},
		negative: []string{
			"%s suffered a terrible spill near the coast.",
			"Regulators criticized %s for shoddy maintenance.",
			"%s posted terrible losses for the third quarter.",
			"%s leaked crude into the bay again last week.",
			"%s failed to contain the contamination.",
			"%s disappointed investors yet again.",
			"Investors regret backing %s, analysts say.",
		},
		idiomShare: 0.1,
	}
}

func pharmaDomain() generalDomain {
	return generalDomain{
		name:     "pharma",
		subjects: PharmaCompanies,
		trapRate: 0.35,
		neutral: []string{
			"%s enrolled four hundred patients in the study.",
			"%s expects a decision by the second quarter.",
			"%s presented data at the annual conference in Singapore.",
			"%s manufactures the tablet at two sites in Germany.",
			"%s licensed the compound from a university lab.",
			"%s completed enrollment ahead of schedule.",
			"The trial run by %s spans nine hospitals.",
		},
		iclass: []string{
			"A rival of %s reported disappointing trial data.",
			"Generic makers pressured %s with aggressive pricing.",
			"%s shared the stage with a struggling competitor.",
			"The road ahead for %s remains hard to read.",
			"Opinions on %s split along familiar lines.",
			"Nobody doubts the stakes for %s this year.",
		},
		positive: []string{
			"%s delivered impressive findings in the trial.",
			"Doctors praised %s for the new therapy.",
			"%s posted superb earnings on strong demand.",
			"%s reported an excellent safety profile.",
			"Patients applauded %s after the approval.",
			"%s delighted investors across the board.",
			"Doctors happily recommend %s to patients.",
		},
		negative: []string{
			"%s suffered a disappointing setback in the late-stage trial.",
			"Regulators criticized %s over shoddy manufacturing.",
			"%s reported disappointing sales for the drug.",
			"%s issued a damaging recall last month.",
			"%s failed to meet the trial endpoints.",
			"%s disappointed investors yet again.",
			"Patients regret switching to %s, surveys say.",
		},
		idiomShare: 0.08,
	}
}

// generalIdiomsPositive/Negative express web-text sentiment outside
// lexicon coverage.
var generalIdiomsPositive = []string{
	"%s came out of the quarter smelling like roses.",
	"%s keeps finding another gear.",
	"%s has the wind squarely at its back.",
}

var generalIdiomsNegative = []string{
	"%s is skating on thin ice with regulators.",
	"%s spent the quarter putting out fires.",
	"%s has dug itself into a deep hole.",
}

// generalTraps are sentences where the pattern fires against the gold
// label ({S} subject): conditionals and wrong referents.
var generalTraps = []string{
	"{S} would be profitable if demand ever recovered.",       // gold -
	"{S} is excellent at announcing plans it never executes.", // gold -
	"The unit {S} sold last year produced terrible losses.",   // gold neutral
}

// PetroleumWeb generates the petroleum-domain general web corpus.
func PetroleumWeb(seed int64, n int) []Document {
	return general(petroleumDomain(), "web", seed, n)
}

// PharmaWeb generates the pharmaceutical-domain general web corpus.
func PharmaWeb(seed int64, n int) []Document {
	return general(pharmaDomain(), "web", seed, n)
}

// PetroleumNews generates the petroleum-domain newswire corpus: the same
// statistical structure as the web corpus with a slightly lower trap rate
// (edited copy is cleaner), matching the paper's 88/91 band.
func PetroleumNews(seed int64, n int) []Document {
	dom := petroleumDomain()
	dom.trapRate = 0.5
	return general(dom, "news", seed, n)
}

func general(dom generalDomain, source string, seed int64, n int) []Document {
	r := rand.New(rand.NewSource(seed))
	docs := make([]Document, 0, n)
	for i := 0; i < n; i++ {
		docs = append(docs, generalDoc(dom, source, r, i))
	}
	return docs
}

// generalDoc builds one web page or news article. Sentiment is sparse and
// the I class dominates, per the paper's observation that 60-90% of
// sentiment-bearing sentences on the general web are difficult cases.
func generalDoc(dom generalDomain, source string, r *rand.Rand, i int) Document {
	subject := pick(r, dom.subjects)
	d := Document{
		ID:     docID(dom.name, source, i),
		Title:  fmt.Sprintf("%s coverage", subject),
		Source: source,
		Domain: dom.name,
	}
	add := func(s Sentence) { d.Sentences = append(d.Sentences, s) }

	// 4 neutral sentences about the subject.
	for k := 0; k < 4; k++ {
		add(Sentence{
			Text:   fmt.Sprintf(pick(r, dom.neutral), subject),
			Labels: []Label{{Subject: subject, Polarity: lexicon.Neutral}},
		})
	}
	// 2 I-class sentences (sentiment vocabulary, neutral gold).
	for k := 0; k < 2; k++ {
		add(Sentence{
			Text:   fmt.Sprintf(pick(r, dom.iclass), subject),
			Labels: []Label{{Subject: subject, Polarity: lexicon.Neutral}},
		})
	}
	// 4-5 polar sentences, mostly detectable.
	nPolar := 4 + r.Intn(2)
	for k := 0; k < nPolar; k++ {
		pol := lexicon.Positive
		if chance(r, 0.5) {
			pol = lexicon.Negative
		}
		if chance(r, dom.idiomShare) {
			tmpl := pick(r, generalIdiomsPositive)
			if pol == lexicon.Negative {
				tmpl = pick(r, generalIdiomsNegative)
			}
			add(Sentence{
				Text:   fmt.Sprintf(tmpl, subject),
				Labels: []Label{{Subject: subject, Polarity: pol, Detectable: false}},
			})
			continue
		}
		tmpl := pick(r, dom.positive)
		if pol == lexicon.Negative {
			tmpl = pick(r, dom.negative)
		}
		add(Sentence{
			Text:   fmt.Sprintf(tmpl, subject),
			Labels: []Label{{Subject: subject, Polarity: pol, Detectable: true}},
		})
	}
	stampDateAndLinks(&d, r, i, func(k int) string { return docID(dom.name, source, k) })

	// Trap sentence with domain-specific probability.
	if chance(r, dom.trapRate) {
		tmpl := pick(r, generalTraps)
		pol := lexicon.Negative
		if tmpl == generalTraps[2] {
			pol = lexicon.Neutral
		}
		text := fmt.Sprintf(replacePlaceholder(tmpl), subject)
		add(Sentence{
			Text:   text,
			Labels: []Label{{Subject: subject, Polarity: pol, Detectable: pol != lexicon.Neutral}},
		})
	}
	return d
}

func replacePlaceholder(tmpl string) string {
	out := ""
	for i := 0; i < len(tmpl); i++ {
		if i+2 < len(tmpl) && tmpl[i] == '{' && tmpl[i+1] == 'S' && tmpl[i+2] == '}' {
			out += "%s"
			i += 2
			continue
		}
		out += string(tmpl[i])
	}
	return out
}

// distractorTopics flavor the off-topic collection (the paper's D-:
// random web pages).
var distractorTopics = []struct {
	title     string
	sentences []string
}{
	{"weather report", []string{
		"The weather turned cold over the weekend.",
		"Forecasters expect rain through Thursday.",
		"The storm passed north of the valley.",
		"Temperatures should recover by Sunday.",
		"The morning fog lifted before nine.",
	}},
	{"city council", []string{
		"The council met to discuss the budget.",
		"The agenda covered parking and permits.",
		"Residents spoke during the open session.",
		"The vote was postponed until next month.",
		"The mayor thanked the committee for its work.",
	}},
	{"recipe corner", []string{
		"The dough needs an hour to rest.",
		"Fold the herbs in at the very end.",
		"The oven should reach a high heat first.",
		"Serve the stew with crusty bread.",
		"Leftovers keep for three days.",
	}},
	{"travel diary", []string{
		"The train left the station at dawn.",
		"We reached the coast by early afternoon.",
		"The harbor was quiet in the off season.",
		"Dinner was grilled fish by the water.",
		"The trip back took most of a day.",
	}},
	{"local sports", []string{
		"The match ended level after extra time.",
		"The keeper saved a penalty in the first half.",
		"The league table tightened at the top.",
		"The coach rotated the squad midweek.",
		"Fans filled the east stand early.",
	}},
}

// Distractors generates the off-topic collection D-: random pages with no
// camera/music/petroleum/pharma subjects. A light sprinkle of sentiment
// vocabulary keeps the statistical baseline honest.
func Distractors(seed int64, n int) []Document {
	r := rand.New(rand.NewSource(seed))
	docs := make([]Document, 0, n)
	for i := 0; i < n; i++ {
		topic := pick(r, distractorTopics)
		d := Document{
			ID:     docID("none", "web", i),
			Title:  topic.title,
			Source: "web",
			Domain: "none",
		}
		// 4-6 sentences sampled (with replacement) from the topic pool.
		m := 4 + r.Intn(3)
		for k := 0; k < m; k++ {
			d.Sentences = append(d.Sentences, Sentence{Text: pick(r, topic.sentences)})
		}
		if chance(r, 0.3) {
			d.Sentences = append(d.Sentences, Sentence{
				Text: pick(r, []string{
					"It was a wonderful afternoon overall.",
					"The whole thing felt tedious by the end.",
					"Everyone went home happy.",
					"The turnout was disappointing.",
				}),
			})
		}
		docs = append(docs, d)
	}
	return docs
}
