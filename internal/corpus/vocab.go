package corpus

// Domain vocabulary for the generators. Adjectives and verbs in the
// "known" pools are guaranteed to be in the embedded sentiment lexicon /
// pattern database (detectable); the idiom templates are guaranteed NOT to
// be (the deliberate recall gap).

// CameraProducts are the product names of the digital camera domain
// (15 products, echoing Table 3).
var CameraProducts = []string{
	"Canon", "Nikon", "Sony", "Olympus", "Kodak", "Fuji", "Minolta",
	"NR70", "DX3700", "PowerShot", "CoolPix", "FinePix", "Stylus",
	"EasyShare", "Dimage",
}

// CameraFeatures are the feature terms of the digital camera domain. The
// first 20 mirror Table 2's top-20 list; the remainder fill out the 55
// features the paper reports.
var CameraFeatures = []string{
	// Table 2 top 20 (rank order).
	"camera", "picture", "flash", "lens", "picture quality", "battery",
	"software", "price", "battery life", "viewfinder", "color", "feature",
	"image", "menu", "manual", "photo", "movie", "resolution", "quality",
	"zoom",
	// Remainder to 55.
	"screen", "display", "button", "body", "grip", "shutter", "sensor",
	"size", "weight", "memory card", "memory", "storage", "firmware",
	"mode", "setting", "video", "adapter", "charger", "cable", "strap",
	"case", "autofocus", "interface", "design", "construction",
	"performance", "playback", "expansion", "burst mode", "white balance",
	"image quality", "shutter speed", "zoom lens", "flash range",
	"battery compartment",
}

// MusicAlbums are album subjects for the music domain.
var MusicAlbums = []string{
	"Aurora", "Nightfall", "Crescendo", "Horizon", "Ember", "Solstice",
	"Cadence", "Mirage", "Tempest", "Lumina",
}

// MusicFeatures mirror the music column of Table 2 plus extras.
var MusicFeatures = []string{
	"song", "album", "track", "music", "piece", "band", "lyrics",
	"first movement", "second movement", "orchestra", "guitar",
	"final movement", "beat", "production", "chorus", "first track",
	"mix", "third movement", "piano", "work",
	"melody", "harmony", "rhythm", "vocal", "voice", "arrangement",
	"drum", "bass", "verse", "bridge", "tempo", "tone", "finale",
}

// PetroleumCompanies are subjects of the petroleum domain.
var PetroleumCompanies = []string{
	"PetroNova", "GulfStar", "Meridian Oil", "Atlas Energy", "NorthSea Petroleum",
	"Crestfield", "Helios Fuels", "Vantage Oil",
}

// PharmaCompanies are subjects of the pharmaceutical domain.
var PharmaCompanies = []string{
	"MediCure", "BioVanta", "Helixia", "NovaPharm", "Clearwell Labs",
	"Axiom Therapeutics", "Veridian Health", "CureGen",
}

// positiveAdjectives are lexicon-covered positive adjectives usable after
// a copula.
var positiveAdjectives = []string{
	"excellent", "superb", "outstanding", "impressive", "responsive",
	"sturdy", "sharp", "crisp", "vivid", "vibrant", "flawless",
	"intuitive", "reliable", "fast", "smooth", "durable", "accurate",
	"comfortable", "generous", "bright",
}

// negativeAdjectives are lexicon-covered negative adjectives.
var negativeAdjectives = []string{
	"terrible", "sluggish", "mediocre", "disappointing", "flimsy",
	"grainy", "blurry", "noisy", "clunky", "confusing", "frustrating",
	"unreliable", "awful", "weak", "dim", "bulky", "harsh", "shoddy",
	"overpriced", "dull",
}

// positiveMusicAdjectives lean musical while staying in the lexicon.
var positiveMusicAdjectives = []string{
	"catchy", "soulful", "haunting", "energetic", "lively", "upbeat",
	"memorable", "masterful", "polished", "melodic", "captivating",
	"expressive", "vibrant", "superb", "gorgeous",
}

// negativeMusicAdjectives lean musical while staying in the lexicon.
var negativeMusicAdjectives = []string{
	"bland", "forgettable", "repetitive", "monotonous", "uninspired",
	"derivative", "generic", "tinny", "muffled", "grating", "lifeless",
	"dreary", "hollow", "dull",
}

// positiveObjectNPs are object noun phrases with lexicon-positive heads or
// modifiers, for trans-verb templates ("takes excellent pictures").
var positiveObjectNPs = []string{
	"excellent pictures", "gorgeous images", "crisp photos",
	"vivid colors", "superb results", "sharp images",
	"impressive detail", "reliable performance",
}

// negativeObjectNPs are object NPs with negative sentiment words.
var negativeObjectNPs = []string{
	"grainy pictures", "blurry images", "muddy colors",
	"disappointing results", "mediocre performance", "washed-out photos",
	"noisy images",
}

// idiomPositiveTemplates express positive sentiment with vocabulary the
// lexicon does not contain; %s is the subject NP. The miner must NOT be
// able to detect these — they are the recall gap. Half of the templates
// (the "visible" halves below) drop a detached sentiment word into the
// sentence where the collocation baseline can count it but no grammatical
// path ties it to the subject, matching the paper's observation that
// collocation recall (70%) exceeds the miner's (56%).
// idiomPositiveVisible express positive sentiment the miner cannot attach
// to the subject (fragments, appositions), yet contain a detached
// sentiment word the collocation baseline can count. These templates are
// why collocation recall (paper: 70%) exceeds the miner's (56%).
var idiomPositiveVisible = []string{
	"Sheer excellence, that %s of mine.",
	"A masterpiece of a %s, I kept telling everyone.",
	"Pure joy, this %s, whatever the spec sheet says.",
	"What a gem they hid inside the %s.",
	"A triumph of a %s, according to half the forum.",
	"Perfection, more or less, this %s.",
	"A small marvel they built into the %s, truly.",
	"A delight of a %s, if my notes mean anything.",
	"Quiet excellence, the %s, week after week.",
	"Such a treat they built into the %s.",
}

// idiomPositiveInvisible express positive sentiment with no lexicon
// vocabulary at all: both the miner and collocation miss these.
var idiomPositiveInvisible = []string{
	"The %s blew me away.",
	"The %s knocked my socks off.",
	"You simply cannot go wrong with the %s.",
	"The %s is the real deal.",
	"The %s runs circles around the competition.",
	"I keep coming back to the %s.",
	"The %s is in a league of its own.",
	"The %s punches far above its class.",
	"The %s sold me within minutes.",
	"Hats off to whoever engineered the %s.",
}

// idiomNegativeVisible mirrors idiomPositiveVisible for negative polarity.
var idiomNegativeVisible = []string{
	"A disaster of a %s, from the very first day.",
	"Pure frustration, this %s, start to finish.",
	"What a letdown they shipped as the %s.",
	"Sheer annoyance, that %s, every single time.",
	"A fiasco of a %s, according to everyone I asked.",
	"A headache of a %s, morning after morning.",
	"Such a nuisance they built into the %s, honestly.",
	"A mess of a %s, whichever way you hold it.",
	"Pure annoyance, this %s, start to finish.",
	"A dud of a %s, and the forum agrees.",
}

// idiomNegativeInvisible mirrors idiomPositiveInvisible.
var idiomNegativeInvisible = []string{
	"The %s left me cold.",
	"The %s falls flat on its face.",
	"The %s is not worth the box it came in.",
	"Save your money and skip the %s.",
	"The %s belongs in a drawer, not a bag.",
	"The %s had me reaching for the receipt.",
	"The %s tested my patience at every turn.",
	"I would not wish the %s on anyone.",
	"The %s went straight back to the store.",
	"The %s turned every outing into a chore.",
}

// neutralCameraTemplates carry no sentiment; %s is a feature/product NP.
var neutralCameraTemplates = []string{
	"The %s ships in the retail box.",
	"The %s sits on the left side of the body.",
	"The %s uses a standard connector.",
	"The %s comes in three versions.",
	"The %s was announced in March.",
	"The %s weighs about nine ounces.",
	"The %s stores files in the usual format.",
	"The %s appears on page twelve of the guide.",
}

// neutralMusicTemplates carry no sentiment for the music domain.
var neutralMusicTemplates = []string{
	"The %s runs just under five minutes.",
	"The %s opens the second half.",
	"The %s was recorded in one session.",
	"The %s features a guest player.",
	"The %s closes with a long fade.",
	"The %s appears twice on the set list.",
}
