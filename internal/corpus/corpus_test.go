package corpus

import (
	"strings"
	"testing"

	"webfountain/internal/lexicon"
)

func TestGeneratorsDeterministic(t *testing.T) {
	a := DigitalCameraReviews(42, 20)
	b := DigitalCameraReviews(42, 20)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i].Text() != b[i].Text() {
			t.Fatalf("doc %d differs between runs", i)
		}
	}
	c := DigitalCameraReviews(43, 20)
	same := 0
	for i := range a {
		if a[i].Text() == c[i].Text() {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical corpus")
	}
}

func TestCameraCorpusShape(t *testing.T) {
	docs := DigitalCameraReviews(1, 100)
	st := Measure(docs, CameraProducts, CameraFeatures)
	if st.Docs != 100 {
		t.Fatalf("docs = %d", st.Docs)
	}
	if st.Sentences < 100*12 {
		t.Errorf("sentences = %d, want >= 12/doc", st.Sentences)
	}
	// Neutral labels must dominate (the paper: "the majority of the test
	// cases have neutral sentiment").
	if st.NeutralLabels <= st.PolarLabels {
		t.Errorf("neutral (%d) should outnumber polar (%d)", st.NeutralLabels, st.PolarLabels)
	}
	// Detectable share of polar labels bounds SM recall; the paper's
	// recall is 56%, so the detectable share must sit near 55-75%.
	share := float64(st.DetectablePolar) / float64(st.PolarLabels)
	if share < 0.5 || share > 0.8 {
		t.Errorf("detectable polar share = %.2f, want 0.5-0.8", share)
	}
	// Table 3: feature references must dwarf product references.
	ratio := float64(st.FeatureReferences) / float64(st.ProductReferences)
	if ratio < 4 {
		t.Errorf("feature/product reference ratio = %.1f, want >= 4", ratio)
	}
}

func TestMusicCorpusUsesMusicVocabulary(t *testing.T) {
	docs := MusicReviews(2, 30)
	joined := ""
	for _, d := range docs {
		joined += d.Text() + " "
	}
	for _, w := range []string{"movement", "chorus", "track"} {
		if !strings.Contains(joined, w) {
			t.Errorf("music corpus missing %q", w)
		}
	}
	for _, w := range []string{"tripod", "photographer", "viewfinder"} {
		if strings.Contains(joined, w) {
			t.Errorf("camera vocabulary leaked into music corpus: %q", w)
		}
	}
}

func TestReviewDocLabelsBalanced(t *testing.T) {
	docs := DigitalCameraReviews(3, 200)
	pos := 0
	for _, d := range docs {
		if d.DocLabel == lexicon.Positive {
			pos++
		} else if d.DocLabel != lexicon.Negative {
			t.Fatalf("review doc without verdict: %+v", d.ID)
		}
	}
	if pos < 80 || pos > 140 {
		t.Errorf("positive docs = %d/200, want roughly balanced", pos)
	}
}

func TestGoldForLookup(t *testing.T) {
	docs := DigitalCameraReviews(4, 1)
	d := docs[0]
	found := false
	for i, s := range d.Sentences {
		for _, l := range s.Labels {
			pol, ok := d.GoldFor(i, strings.ToUpper(l.Subject))
			if !ok || pol != l.Polarity {
				t.Errorf("GoldFor(%d, %q) = %v, %v; want %v", i, l.Subject, pol, ok, l.Polarity)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no labels generated")
	}
	if _, ok := d.GoldFor(0, "unlabeled-subject"); ok {
		t.Error("unlabeled subject reported as labeled")
	}
	if _, ok := d.GoldFor(-1, "camera"); ok {
		t.Error("out-of-range sentence index")
	}
}

func TestGeneralWebCorpusShape(t *testing.T) {
	for _, tc := range []struct {
		name string
		docs []Document
		subs []string
	}{
		{"petroleum", PetroleumWeb(5, 100), PetroleumCompanies},
		{"pharma", PharmaWeb(6, 100), PharmaCompanies},
		{"news", PetroleumNews(7, 100), PetroleumCompanies},
	} {
		st := Measure(tc.docs, tc.subs, nil)
		if st.Docs != 100 {
			t.Fatalf("%s: docs = %d", tc.name, st.Docs)
		}
		// Neutral (I-class + plain neutral) must outnumber polar so that
		// an always-polar classifier collapses (Table 5's 38%).
		if st.NeutralLabels <= st.PolarLabels {
			t.Errorf("%s: neutral (%d) must outnumber polar (%d)", tc.name, st.NeutralLabels, st.PolarLabels)
		}
		// But sentiment must exist.
		if st.PolarLabels == 0 {
			t.Errorf("%s: no polar labels", tc.name)
		}
		// Web/news polar labels are mostly detectable (web sentiment in
		// the paper's corpora is plain newsroom vocabulary, not idiom).
		share := float64(st.DetectablePolar) / float64(st.PolarLabels)
		if share < 0.6 {
			t.Errorf("%s: detectable share = %.2f", tc.name, share)
		}
	}
}

func TestDistractorsAvoidDomainSubjects(t *testing.T) {
	docs := Distractors(8, 100)
	all := ""
	for _, d := range docs {
		if d.Domain != "none" {
			t.Fatalf("distractor domain = %q", d.Domain)
		}
		all += d.Text() + " "
	}
	for _, s := range append(append([]string{}, CameraProducts...), PetroleumCompanies...) {
		if strings.Contains(all, s) {
			t.Errorf("distractor mentions subject %q", s)
		}
	}
}

func TestFeatureQualityProfile(t *testing.T) {
	// Deterministic, bounded, and non-constant across products.
	seen := map[float64]bool{}
	for p := 0; p < 10; p++ {
		q := FeatureQuality(p, 3)
		if q < 0.15 || q > 0.85 {
			t.Errorf("quality out of range: %v", q)
		}
		if q != FeatureQuality(p, 3) {
			t.Error("profile not deterministic")
		}
		seen[q] = true
	}
	if len(seen) < 5 {
		t.Errorf("profiles too uniform: %v", seen)
	}
}

func TestSynonymSets(t *testing.T) {
	sets := SynonymSets([]string{"Canon", "battery life"})
	if len(sets) != 2 || sets[0].ID != "canon" || sets[1].Terms[0] != "battery life" {
		t.Errorf("sets = %+v", sets)
	}
}

func TestDocumentTextJoins(t *testing.T) {
	d := Document{Sentences: []Sentence{{Text: "A."}, {Text: "B."}}}
	if d.Text() != "A. B." {
		t.Errorf("Text = %q", d.Text())
	}
}

func TestBulletinBoardCorpus(t *testing.T) {
	docs := BulletinBoard(9, 120)
	if len(docs) != 120 {
		t.Fatalf("docs = %d", len(docs))
	}
	polar, neutral := 0, 0
	for _, d := range docs {
		if d.Source != "bboard" || len(d.Sentences) != 1 || len(d.Sentences[0].Labels) != 1 {
			t.Fatalf("bad post: %+v", d)
		}
		if d.Sentences[0].Labels[0].Polarity == lexicon.Neutral {
			neutral++
		} else {
			polar++
		}
	}
	if polar == 0 || neutral == 0 {
		t.Errorf("mix = %d polar / %d neutral", polar, neutral)
	}
	// Deterministic.
	again := BulletinBoard(9, 120)
	for i := range docs {
		if docs[i].Text() != again[i].Text() {
			t.Fatal("not deterministic")
		}
	}
}
