// Package corpus generates the synthetic evaluation datasets that stand in
// for the paper's proprietary collections (crawled product reviews from
// cnet/dpreview/epinions/steves-digicams, general web pages and news
// articles from the WebFountain crawl).
//
// Every generator is deterministic given a seed and emits gold labels per
// (sentence, subject) pair, which is exactly the granularity the paper's
// evaluation uses. The generators reproduce the statistical structure the
// paper reports rather than its surface text:
//
//   - review corpora are dense in sentiment; feature terms are referenced
//     an order of magnitude more often than product names (Table 3);
//   - new features are introduced by definite base noun phrases at
//     sentence starts (the bBNP observation);
//   - a controlled share of sentiment is expressed idiomatically, outside
//     any lexicon's coverage — the source of the paper's 56% recall;
//   - multi-subject sentences carry sentiment about only one subject —
//     the collocation baseline's 18% precision comes from exactly this;
//   - general web/news documents are dominated by the paper's "I class"
//     (ambiguous, off-target, or no sentiment), which collapses
//     statistical classifiers (88.4% -> 38%) but not the sentiment miner.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"webfountain/internal/lexicon"
	"webfountain/internal/spotter"
)

// Label is the gold sentiment of one subject mention within a sentence.
// Polarity is Neutral for mentions that carry no sentiment.
type Label struct {
	// Subject is the canonical subject (product name or feature term).
	Subject string
	// Polarity is the gold sentiment about the subject in this sentence.
	Polarity lexicon.Polarity
	// Detectable marks labels whose construction uses vocabulary and
	// syntax inside the miner's lexicon/pattern coverage. Undetectable
	// polar labels are the deliberate recall gap. (Evaluation code never
	// reads this — it exists for corpus statistics and tests.)
	Detectable bool
}

// Sentence is one generated sentence with its gold labels.
type Sentence struct {
	// Text is the sentence text.
	Text string
	// Labels enumerate every subject mentioned in the sentence with its
	// gold polarity.
	Labels []Label
}

// Document is one generated document.
type Document struct {
	// ID is unique within a corpus.
	ID string
	// Title is the document title.
	Title string
	// Source is the ingestion channel: "review", "web" or "news".
	Source string
	// Domain is the topic domain: "camera", "music", "petroleum",
	// "pharma" or "none" for distractors.
	Domain string
	// DocLabel is the document-level gold sentiment (the review's overall
	// verdict); Neutral for non-review documents.
	DocLabel lexicon.Polarity
	// Date is the publication date (YYYY-MM-DD), spread deterministically
	// across a year so trending analyses have temporal structure.
	Date string
	// Links are IDs of other documents in the same corpus this one links
	// to, forming the hyperlink graph the page-ranking miner consumes.
	Links []string
	// Sentences are the document's sentences in order.
	Sentences []Sentence
}

// stampDateAndLinks assigns a deterministic date and up to three links to
// lower-numbered documents of the same corpus. Month coverage is uniform
// over 2004; earlier documents accumulate more inlinks, giving the link
// graph the skew page ranking expects.
func stampDateAndLinks(d *Document, r *rand.Rand, i int, idFor func(int) string) {
	month := 1 + r.Intn(12)
	day := 1 + r.Intn(28)
	d.Date = fmt.Sprintf("2004-%02d-%02d", month, day)
	if i == 0 {
		return
	}
	n := r.Intn(4)
	for k := 0; k < n; k++ {
		// Preferential attachment: sqrt-skew toward early documents.
		t := r.Intn(i)
		target := (t * t) / maxInt(i, 1) // biased toward low indices
		d.Links = append(d.Links, idFor(target))
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Text joins the document's sentences with spaces.
func (d *Document) Text() string {
	parts := make([]string, len(d.Sentences))
	for i, s := range d.Sentences {
		parts[i] = s.Text
	}
	return strings.Join(parts, " ")
}

// GoldFor returns the gold polarity for a subject in sentence sentIdx and
// whether the subject is labeled there at all. Matching is
// case-insensitive.
func (d *Document) GoldFor(sentIdx int, subject string) (lexicon.Polarity, bool) {
	if sentIdx < 0 || sentIdx >= len(d.Sentences) {
		return lexicon.Neutral, false
	}
	subject = strings.ToLower(subject)
	for _, l := range d.Sentences[sentIdx].Labels {
		if strings.ToLower(l.Subject) == subject {
			return l.Polarity, true
		}
	}
	return lexicon.Neutral, false
}

// Stats summarizes a corpus for sanity checks and DESIGN.md shape targets.
type Stats struct {
	Docs, Sentences   int
	PolarLabels       int
	NeutralLabels     int
	DetectablePolar   int
	ProductReferences int
	FeatureReferences int
}

// Measure computes corpus statistics. Products and features classify
// subjects for the reference counts (Table 3).
func Measure(docs []Document, products, features []string) Stats {
	isProduct := make(map[string]bool, len(products))
	for _, p := range products {
		isProduct[strings.ToLower(p)] = true
	}
	isFeature := make(map[string]bool, len(features))
	for _, f := range features {
		isFeature[strings.ToLower(f)] = true
	}
	var st Stats
	st.Docs = len(docs)
	for _, d := range docs {
		st.Sentences += len(d.Sentences)
		for _, s := range d.Sentences {
			for _, l := range s.Labels {
				if l.Polarity == lexicon.Neutral {
					st.NeutralLabels++
				} else {
					st.PolarLabels++
					if l.Detectable {
						st.DetectablePolar++
					}
				}
				ls := strings.ToLower(l.Subject)
				if isProduct[ls] {
					st.ProductReferences++
				}
				if isFeature[ls] {
					st.FeatureReferences++
				}
			}
		}
	}
	return st
}

// SynonymSets builds spotter synonym sets for a list of subject terms,
// one set per term with the term itself as the only variant.
func SynonymSets(terms []string) []spotter.SynonymSet {
	out := make([]spotter.SynonymSet, 0, len(terms))
	for _, t := range terms {
		out = append(out, spotter.SynonymSet{
			ID:        strings.ToLower(t),
			Canonical: t,
			Terms:     []string{t},
		})
	}
	return out
}

// pick returns a uniformly random element.
func pick[T any](r *rand.Rand, xs []T) T { return xs[r.Intn(len(xs))] }

// chance reports true with probability p.
func chance(r *rand.Rand, p float64) bool { return r.Float64() < p }

// docID builds a stable document ID.
func docID(domain, source string, i int) string {
	return fmt.Sprintf("%s-%s-%04d", domain, source, i)
}
