// Tail-tolerant hedged reads (Dean & Barroso, "The Tail at Scale"): for
// an idempotent call, fire a second attempt on an independent transport
// once the first has been outstanding longer than the method's observed
// p95 latency, and take whichever answer lands first. By construction
// the hedge fires on roughly the slowest ~5% of calls, so the extra
// load is bounded while the latency tail collapses toward the p95.
package vinci

import (
	"fmt"
	"time"

	"webfountain/internal/metrics"
)

// HedgeOptions tunes a hedged client.
type HedgeOptions struct {
	// After is a fixed hedge trigger delay. Zero selects the adaptive
	// trigger: the method's observed client-side p95 latency, floored
	// at MinAfter.
	After time.Duration
	// MinAfter floors the adaptive trigger so cold histograms cannot
	// cause every call to hedge instantly (default 10ms).
	MinAfter time.Duration
	// IsIdempotent gates which services may be hedged. A nil gate
	// hedges nothing — duplicating a non-idempotent write is a
	// correctness bug, so hedging is strictly opt-in. Registries mark
	// services via RegisterIdempotent; remote clients supply their own
	// mirror of that registration (e.g. services.Idempotent).
	IsIdempotent func(service string) bool
}

func (o HedgeOptions) normalized() HedgeOptions {
	if o.MinAfter <= 0 {
		o.MinAfter = 10 * time.Millisecond
	}
	return o
}

// HedgedClient wraps two independent clients — hedging over one
// serialized transport would just queue behind the stuck call it is
// trying to outrun. Call forwards to the primary; CallHedged races a
// second attempt on the secondary when the idempotency gate allows it.
type HedgedClient struct {
	primary, secondary Client
	opts               HedgeOptions
}

// NewHedged builds a hedged client over two independent transports
// (dial the same address twice for a TCP pair, or use two local
// clients for in-process serving).
func NewHedged(primary, secondary Client, opts HedgeOptions) *HedgedClient {
	return &HedgedClient{primary: primary, secondary: secondary, opts: opts.normalized()}
}

// Call forwards to CallHedged, so a HedgedClient drops into any code
// path that takes a vinci.Client (non-idempotent services pass through
// to the primary unhedged).
func (h *HedgedClient) Call(req Request) (Response, error) { return h.CallHedged(req) }

// Close closes both transports.
func (h *HedgedClient) Close() error {
	err := h.primary.Close()
	if cerr := h.secondary.Close(); err == nil {
		err = cerr
	}
	return err
}

// triggerFor picks the hedge delay for one method.
func (h *HedgedClient) triggerFor(req Request) time.Duration {
	if h.opts.After > 0 {
		return h.opts.After
	}
	hist := metrics.Default().Histogram("vinci.client." + req.Service + "." + req.Op + ".ns")
	d := h.opts.MinAfter
	if hist.Count() > 0 {
		if p95 := time.Duration(hist.Snapshot().P95); p95 > d {
			d = p95
		}
	}
	return d
}

// hedgeResult is one attempt's outcome.
type hedgeResult struct {
	resp   Response
	err    error
	hedged bool // true for the secondary attempt
}

// usable reports whether a result can be returned to the caller without
// waiting for the other attempt: transport success and not a shed
// (a shed from one path may still succeed on the other).
func (r hedgeResult) usable() bool { return r.err == nil && r.resp.Code != CodeOverloaded }

// CallHedged performs the request, racing a duplicate on the secondary
// transport once the primary has been outstanding past the trigger.
// The first usable answer wins; the loser's result is drained in the
// background and discarded ("cancelled" — the protocol has no in-band
// abort, so the losing server simply finishes work nobody reads).
// Non-idempotent services are never hedged.
func (h *HedgedClient) CallHedged(req Request) (Response, error) {
	if h.opts.IsIdempotent == nil || !h.opts.IsIdempotent(req.Service) {
		return h.primary.Call(req)
	}
	ch := make(chan hedgeResult, 2) // buffered: the loser must not leak a goroutine
	go func() {
		resp, err := h.primary.Call(req)
		ch <- hedgeResult{resp: resp, err: err}
	}()
	trigger := time.NewTimer(h.triggerFor(req))
	defer trigger.Stop()
	pending := 1
	var last hedgeResult
	select {
	case r := <-ch:
		if r.usable() || IsDeadlineExceeded(r.err) {
			// A spent deadline is terminal: the caller has already given
			// up, so racing the secondary would duplicate work nobody
			// awaits — exactly the load hedging must not add during
			// overload.
			return r.resp, r.err
		}
		// Primary failed fast (transport error or shed): hedge
		// immediately rather than waiting out the trigger.
		pending--
		last = r
	case <-trigger.C:
	}
	clientHedges.Inc()
	go func() {
		resp, err := h.secondary.Call(req)
		ch <- hedgeResult{resp: resp, err: err, hedged: true}
	}()
	pending++
	for ; pending > 0; pending-- {
		r := <-ch
		if r.usable() {
			if r.hedged {
				clientHedgeWins.Inc()
			}
			return r.resp, r.err
		}
		if IsDeadlineExceeded(r.err) {
			// The budget is spent for the call as a whole, not just this
			// attempt; return now (the channel is buffered, so the other
			// attempt drains without leaking a goroutine).
			return r.resp, r.err
		}
		last = r
	}
	if last.err != nil {
		return Response{}, fmt.Errorf("vinci: hedged call %s.%s: both attempts failed: %w",
			req.Service, req.Op, last.err)
	}
	return last.resp, nil
}
