package vinci

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webfountain/internal/metrics"
)

// waitQueueDepth polls until the admission queue holds n waiters.
func waitQueueDepth(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		a.mu.Lock()
		depth := len(a.queue)
		a.mu.Unlock()
		if depth == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached depth %d", n)
}

// TestAdmissionCapacityAndQueueFull: with capacity 1 and depth 1, the
// first request runs, the second queues, the third is shed immediately.
func TestAdmissionCapacityAndQueueFull(t *testing.T) {
	a := newAdmission(AdmissionConfig{Capacity: 1, Depth: 1, MaxWait: 2 * time.Second})
	req := Request{Service: "s", Op: "o"}

	if o, _ := a.acquire(req); o != admitOK {
		t.Fatalf("first acquire = %v, want admit", o)
	}
	queued := make(chan admitOutcome, 1)
	go func() {
		o, _ := a.acquire(req)
		queued <- o
	}()
	waitQueueDepth(t, a, 1)
	if o, reason := a.acquire(req); o != shedOverload {
		t.Fatalf("third acquire = %v (%s), want shed", o, reason)
	}
	a.release() // hands the slot to the queued waiter
	if o := <-queued; o != admitOK {
		t.Fatalf("queued waiter = %v, want admit", o)
	}
	a.release()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight != 0 || len(a.queue) != 0 {
		t.Errorf("inflight=%d queue=%d after full drain", a.inflight, len(a.queue))
	}
}

// TestAdmissionLIFOServesNewestFirst: under LIFO the most recently
// queued request gets the freed slot — it has the freshest budget.
func TestAdmissionLIFOServesNewestFirst(t *testing.T) {
	a := newAdmission(AdmissionConfig{Capacity: 1, Depth: 4, MaxWait: 2 * time.Second})
	req := Request{Service: "s", Op: "o"}
	if o, _ := a.acquire(req); o != admitOK {
		t.Fatal("seed acquire failed")
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if o, _ := a.acquire(req); o == admitOK {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
				a.release()
			}
		}()
		waitQueueDepth(t, a, i) // deterministic queue order: 1 below 2
	}
	a.release()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Errorf("admit order = %v, want [2 1] (newest first)", order)
	}
}

// TestAdmissionShedsBudgetBelowP95: at capacity, a request whose
// remaining budget is under the method's p95 service time is shed
// rather than queued to certain death.
func TestAdmissionShedsBudgetBelowP95(t *testing.T) {
	a := newAdmission(AdmissionConfig{
		Capacity: 1, Depth: 8, MaxWait: time.Second,
		ServiceP95: func(service, op string) time.Duration { return 100 * time.Millisecond },
	})
	seed := Request{Service: "s", Op: "o"}
	if o, _ := a.acquire(seed); o != admitOK {
		t.Fatal("seed acquire failed")
	}
	defer a.release()
	tight := WithDeadlineBudget(Request{Service: "s", Op: "o"}, 20*time.Millisecond)
	if o, reason := a.acquire(tight); o != shedOverload {
		t.Errorf("tight-budget acquire = %v (%s), want overload shed", o, reason)
	}
	roomy := WithDeadlineBudget(Request{Service: "s", Op: "o"}, 5*time.Second)
	done := make(chan admitOutcome, 1)
	go func() {
		o, _ := a.acquire(roomy)
		done <- o
	}()
	waitQueueDepth(t, a, 1)
	a.release()
	if o := <-done; o != admitOK {
		t.Errorf("roomy-budget acquire = %v, want admit", o)
	}
}

// TestAdmissionExpiresQueuedRequest: a queued request whose budget runs
// out before a slot frees is answered with shedExpired, not admitted.
func TestAdmissionExpiresQueuedRequest(t *testing.T) {
	a := newAdmission(AdmissionConfig{Capacity: 1, Depth: 2, MaxWait: 5 * time.Second})
	if o, _ := a.acquire(Request{Service: "s", Op: "o"}); o != admitOK {
		t.Fatal("seed acquire failed")
	}
	defer a.release()
	start := time.Now()
	o, reason := a.acquire(WithDeadlineBudget(Request{Service: "s", Op: "o"}, 50*time.Millisecond))
	if o != shedExpired {
		t.Fatalf("acquire = %v (%s), want expired", o, reason)
	}
	if e := time.Since(start); e > time.Second {
		t.Errorf("expiry took %v, want ~50ms", e)
	}
}

// TestServerShedsUnderOverload drives a capacity-1 server with a slow
// handler from three concurrent clients: one call runs, one queues, one
// is shed with a retryable overloaded error the client can classify.
func TestServerShedsUnderOverload(t *testing.T) {
	reg := NewRegistry()
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	reg.Register("slow", func(req Request) Response {
		entered <- struct{}{}
		<-release
		return OKResponse(nil)
	})
	addr, shutdown := startServerOpts(t, reg, ServerOptions{
		Admission: AdmissionConfig{Capacity: 1, Depth: 1, MaxWait: 5 * time.Second},
	})
	defer shutdown()

	dial := func() Client {
		c, err := DialWith(addr, DialOptions{Retry: RetryPolicy{MaxAttempts: 1}})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1, c2, c3 := dial(), dial(), dial()
	defer c1.Close()
	defer c2.Close()
	defer c3.Close()

	var ok1, ok2 atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		resp, err := c1.Call(Request{Service: "slow", Op: "x"})
		ok1.Store(err == nil && resp.OK)
	}()
	<-entered // first call is executing
	go func() {
		defer wg.Done()
		resp, err := c2.Call(Request{Service: "slow", Op: "x"})
		ok2.Store(err == nil && resp.OK)
	}()
	// Wait until the second call is queued server-side.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if depth := defaultQueueDepth(); depth >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	_, err := c3.Call(Request{Service: "slow", Op: "x"})
	if !IsOverloaded(err) {
		t.Errorf("third call err = %v, want overloaded", err)
	}
	close(release)
	<-entered // queued call runs after the first releases
	wg.Wait()
	if !ok1.Load() || !ok2.Load() {
		t.Errorf("ok1=%v ok2=%v, want both true", ok1.Load(), ok2.Load())
	}
}

func defaultQueueDepth() int64 {
	return metrics.Default().Gauge("vinci.server.queue.depth").Value()
}
