package vinci

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseDeadlineMS(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"0", 0, true},
		{"1", time.Millisecond, true},
		{"0042", 42 * time.Millisecond, true},
		{"+250", 250 * time.Millisecond, true},
		{"-5", 0, false},
		{"5s", 0, false},
		{"1e3", 0, false},
		{"99999999999999999999999999", 0, false}, // overflow
		{"+", 0, false},
		{" 7", 0, false},
	}
	for _, c := range cases {
		got, ok := parseDeadlineMS(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("parseDeadlineMS(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
		if got < 0 {
			t.Errorf("parseDeadlineMS(%q) yielded negative budget %v", c.in, got)
		}
	}
}

func TestWithDeadlineBudgetRoundTrip(t *testing.T) {
	req := WithDeadlineBudget(Request{Service: "s", Op: "o"}, 1500*time.Millisecond)
	if got := req.Params[DeadlineParam]; got != "1500" {
		t.Errorf("param = %q, want 1500", got)
	}
	if b, ok := req.DeadlineBudget(); !ok || b != 1500*time.Millisecond {
		t.Errorf("DeadlineBudget = (%v, %v)", b, ok)
	}
	// Sub-millisecond budgets round up, never down to an expired "0".
	req = WithDeadlineBudget(Request{}, 300*time.Microsecond)
	if got := req.Params[DeadlineParam]; got != "1" {
		t.Errorf("sub-ms budget stamped %q, want 1", got)
	}
	req = WithDeadlineBudget(Request{}, -5*time.Millisecond)
	if got := req.Params[DeadlineParam]; got != "0" {
		t.Errorf("negative budget stamped %q, want 0", got)
	}
}

// TestDispatchRejectsExpiredBudget: a request arriving with no budget
// left is rejected with CodeDeadlineExceeded before its handler runs.
func TestDispatchRejectsExpiredBudget(t *testing.T) {
	reg := NewRegistry()
	var handled atomic.Int32
	reg.Register("echo", func(req Request) Response {
		handled.Add(1)
		return OKResponse(nil)
	})
	resp := reg.Dispatch(Request{Service: "echo", Op: "x", Params: map[string]string{DeadlineParam: "0"}})
	if resp.OK || resp.Code != CodeDeadlineExceeded {
		t.Errorf("resp = %+v, want CodeDeadlineExceeded", resp)
	}
	if handled.Load() != 0 {
		t.Error("handler ran for an expired request")
	}
}

// TestDispatchExposesDeadlineToHandler: a live budget becomes an
// absolute deadline the handler can read and act on.
func TestDispatchExposesDeadlineToHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Register("scan", func(req Request) Response {
		dl, ok := req.Deadline()
		if !ok {
			return Errorf("no deadline visible")
		}
		rem := time.Until(dl)
		if rem <= 0 || rem > 200*time.Millisecond {
			return Errorf("remaining = %v", rem)
		}
		if req.Expired() {
			return Errorf("not expired yet")
		}
		return OKResponse(nil)
	})
	resp := reg.Dispatch(Request{Service: "scan", Op: "x", Params: map[string]string{DeadlineParam: "200"}})
	if !resp.OK {
		t.Errorf("handler saw bad deadline: %s", resp.Error)
	}
	// Without a budget, no deadline is visible.
	reg.Register("free", func(req Request) Response {
		if _, ok := req.Deadline(); ok {
			return Errorf("unexpected deadline")
		}
		return OKResponse(nil)
	})
	if resp := reg.Dispatch(Request{Service: "free", Op: "x"}); !resp.OK {
		t.Errorf("budget-less dispatch: %s", resp.Error)
	}
}

// TestDispatchHonorsArrivalDeadline: a deadline stamped at arrival
// (Server.dispatch does this before admission queueing) survives
// Dispatch unchanged — the wire budget must not be granted back after a
// queue wait.
func TestDispatchHonorsArrivalDeadline(t *testing.T) {
	reg := NewRegistry()
	var got time.Time
	reg.Register("scan", func(req Request) Response {
		got, _ = req.Deadline()
		return OKResponse(nil)
	})
	stamped := time.Now().Add(80 * time.Millisecond)
	req := Request{Service: "scan", Op: "x",
		Params: map[string]string{DeadlineParam: "60000"}}.withAbsoluteDeadline(stamped)
	if resp := reg.Dispatch(req); !resp.OK {
		t.Fatalf("dispatch failed: %+v", resp)
	}
	if !got.Equal(stamped) {
		t.Errorf("handler saw deadline %v, want the arrival stamp %v (wire budget re-granted)", got, stamped)
	}
	// An arrival deadline already in the past is rejected before the
	// handler runs, even though the wire budget still reads generous.
	var ran atomic.Int32
	reg.Register("late", func(req Request) Response {
		ran.Add(1)
		return OKResponse(nil)
	})
	late := Request{Service: "late", Op: "x",
		Params: map[string]string{DeadlineParam: "60000"}}.withAbsoluteDeadline(time.Now().Add(-time.Millisecond))
	if resp := reg.Dispatch(late); resp.OK || resp.Code != CodeDeadlineExceeded {
		t.Errorf("resp = %+v, want CodeDeadlineExceeded", resp)
	}
	if ran.Load() != 0 {
		t.Error("handler ran for a request whose arrival deadline had passed")
	}
}

// TestQueueWaitDeductsBudget: time spent waiting in the admission queue
// comes out of the handler's budget — the deadline is fixed at arrival,
// not recomputed from the wire value at dispatch.
func TestQueueWaitDeductsBudget(t *testing.T) {
	reg := NewRegistry()
	occupying := make(chan struct{})
	release := make(chan struct{})
	var rem time.Duration
	reg.Register("svc", func(req Request) Response {
		if req.Param("who") == "occupier" {
			close(occupying)
			<-release
			return OKResponse(nil)
		}
		rem, _ = req.Remaining()
		return OKResponse(nil)
	})
	s := NewServerWith(reg, ServerOptions{Admission: AdmissionConfig{Capacity: 1, Depth: 4}})
	occDone := make(chan struct{})
	go func() {
		defer close(occDone)
		s.dispatch(Request{Service: "svc", Op: "x", Params: map[string]string{"who": "occupier"}})
	}()
	<-occupying
	queuedDone := make(chan Response, 1)
	go func() {
		queuedDone <- s.dispatch(Request{Service: "svc", Op: "x",
			Params: map[string]string{DeadlineParam: "60000"}})
	}()
	waitQueueDepth(t, s.adm, 1)
	time.Sleep(100 * time.Millisecond) // measurable queue wait
	close(release)
	if resp := <-queuedDone; !resp.OK {
		t.Fatalf("queued request failed: %+v", resp)
	}
	<-occDone
	if rem > 60*time.Second-80*time.Millisecond {
		t.Errorf("handler saw %v remaining of a 60s budget after ~100ms in queue — queue wait not deducted", rem)
	}
}

// TestUnboundedCallClearsInheritedDeadline: a budget-less call on a kept
// connection must not inherit the conn deadline a prior budget-carrying
// call set (with CallTimeout=0 and a single-attempt policy the stale,
// by-then-past deadline would fail the call outright).
func TestUnboundedCallClearsInheritedDeadline(t *testing.T) {
	reg := NewRegistry()
	reg.Register("echo", func(req Request) Response { return OKResponse(nil) })
	addr, shutdown := startServerWith(t, reg)
	defer shutdown()
	c, err := DialWith(addr, DialOptions{}) // no CallTimeout, single attempt
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The first call carries an upstream-stamped budget and sets a conn
	// deadline as part of honoring it.
	if _, err := c.Call(Request{Service: "echo", Op: "x",
		Params: map[string]string{DeadlineParam: "40"}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond) // let the stale deadline pass
	if _, err := c.Call(Request{Service: "echo", Op: "x"}); err != nil {
		t.Fatalf("budget-less call on kept connection failed: %v (inherited stale deadline)", err)
	}
}

// TestRetriesStopAtTotalDeadline is the regression test for the PR-4-era
// bug where each retry reset the connection deadline, letting a call
// with CallTimeout=T and N attempts run for nearly N*T plus backoffs.
// With a dialer that always fails and far more backoff budget than call
// budget, the call must return once the total budget is spent — not
// after all attempts.
func TestRetriesStopAtTotalDeadline(t *testing.T) {
	var dials atomic.Int32
	c, err := DialWith("unused:0", DialOptions{
		CallTimeout: 120 * time.Millisecond,
		Retry: RetryPolicy{
			MaxAttempts: 50,
			BaseBackoff: 30 * time.Millisecond,
			MaxBackoff:  30 * time.Millisecond,
			Seed:        1,
		},
		Dialer: func(addr string) (net.Conn, error) {
			if dials.Add(1) == 1 {
				// First (eager) dial succeeds so DialWith returns a client;
				// it is torn down by the failing exchange below.
				a, b := net.Pipe()
				go func() {
					var buf [1]byte
					b.Read(buf[:])
					b.Close()
				}()
				return a, nil
			}
			return nil, errors.New("injected dial failure")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.Call(Request{Service: "echo", Op: "x"})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected failure")
	}
	if !IsDeadlineExceeded(err) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	// 50 attempts x 30ms backoff would be 1.5s; the budget is 120ms.
	if elapsed > 600*time.Millisecond {
		t.Errorf("call ran %v after its 120ms budget — retries are not honoring the total deadline", elapsed)
	}
	if d := dials.Load(); d >= 50 {
		t.Errorf("dials = %d, want far fewer than MaxAttempts", d)
	}
}

// TestShedVsExpiredRetryClassification: CodeOverloaded responses are
// retried (the next attempt may find capacity), CodeDeadlineExceeded
// responses are terminal.
func TestShedVsExpiredRetryClassification(t *testing.T) {
	reg := NewRegistry()
	var calls atomic.Int32
	reg.Register("flaky", func(req Request) Response {
		if calls.Add(1) <= 2 {
			return OverloadedResponse("busy")
		}
		return OKResponse(map[string]string{"n": "3"})
	})
	addr, shutdown := startServerWith(t, reg)
	defer shutdown()

	c, err := DialWith(addr, DialOptions{
		CallTimeout: 2 * time.Second,
		Retry:       RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(Request{Service: "flaky", Op: "x"})
	if err != nil || !resp.OK {
		t.Fatalf("shed responses should be retried to success: resp=%+v err=%v", resp, err)
	}
	if calls.Load() != 3 {
		t.Errorf("server calls = %d, want 3 (two sheds + one success)", calls.Load())
	}

	// Expired is terminal: exactly one server round trip.
	var expCalls atomic.Int32
	reg.Register("expired", func(req Request) Response {
		expCalls.Add(1)
		return DeadlineExceededResponse("simulated")
	})
	_, err = c.Call(Request{Service: "expired", Op: "x"})
	if !IsDeadlineExceeded(err) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if expCalls.Load() != 1 {
		t.Errorf("server calls = %d, want 1 (expired must never retry)", expCalls.Load())
	}
}

// TestClientStampsRemainingBudget: a bounded call carries x-deadline-ms
// and the server-side handler sees a live absolute deadline.
func TestClientStampsRemainingBudget(t *testing.T) {
	reg := NewRegistry()
	var sawBudget atomic.Int64
	reg.Register("probe", func(req Request) Response {
		if rem, ok := req.Remaining(); ok {
			sawBudget.Store(int64(rem))
		}
		return OKResponse(nil)
	})
	addr, shutdown := startServerWith(t, reg)
	defer shutdown()

	c, err := Dial(addr, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(Request{Service: "probe", Op: "x"}); err != nil {
		t.Fatal(err)
	}
	rem := time.Duration(sawBudget.Load())
	if rem <= 0 || rem > 500*time.Millisecond {
		t.Errorf("handler saw remaining budget %v, want (0, 500ms]", rem)
	}
}

// startServerWith serves a registry on a loopback listener.
func startServerWith(t *testing.T, reg *Registry) (addr string, shutdown func()) {
	t.Helper()
	return startServerOpts(t, reg, ServerOptions{})
}

func startServerOpts(t *testing.T, reg *Registry, opts ServerOptions) (addr string, shutdown func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(reg, opts)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	return ln.Addr().String(), func() {
		srv.Close()
		<-done
	}
}
