// Package vinci implements a lightweight, Web-service style communication
// protocol in the spirit of Vinci, the SOAP derivative WebFountain nodes
// use to talk to each other.
//
// A request names a service and an operation and carries string
// parameters; a response carries result fields or an error. On the wire,
// requests and responses are XML documents framed with a 4-byte big-endian
// length prefix. Two transports are provided: an in-process client for
// single-binary deployments and tests, and a TCP transport for running
// miners against a store on another process.
package vinci

import (
	"encoding/binary"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// MaxFrameSize bounds a single request or response frame (16 MiB).
const MaxFrameSize = 16 << 20

// Request is one service invocation.
type Request struct {
	// Service is the registered service name ("store", "indexer", ...).
	Service string
	// Op is the operation within the service ("get", "put", "query", ...).
	Op string
	// Params carries the operation's arguments.
	Params map[string]string

	// deadline is the absolute deadline the dispatcher computed from the
	// DeadlineParam budget; it never travels on the wire (the budget
	// does, so clock skew between nodes cannot corrupt it).
	deadline time.Time
}

// Param returns a parameter value ("" when absent).
func (r Request) Param(name string) string { return r.Params[name] }

// Response is a service result.
type Response struct {
	// OK reports success; when false, Error describes the failure.
	OK bool
	// Code classifies machine-actionable failures (CodeOverloaded,
	// CodeDeadlineExceeded); empty for success and free-text errors.
	Code string
	// Error is the failure description for !OK responses.
	Error string
	// Fields carries result values.
	Fields map[string]string
}

// Errorf builds a failed response.
func Errorf(format string, args ...any) Response {
	return Response{OK: false, Error: fmt.Sprintf(format, args...)}
}

// OKResponse builds a successful response with the given fields.
func OKResponse(fields map[string]string) Response {
	if fields == nil {
		fields = map[string]string{}
	}
	return Response{OK: true, Fields: fields}
}

// Handler processes one request.
type Handler func(Request) Response

// Registry maps service names to handlers; safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	services   map[string]Handler
	idempotent map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{services: make(map[string]Handler), idempotent: make(map[string]bool)}
}

// Register installs (or replaces) the handler for a service. The
// service is not marked idempotent: hedged clients will not race
// duplicate calls against it.
func (rg *Registry) Register(service string, h Handler) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	rg.services[service] = h
	delete(rg.idempotent, service)
}

// RegisterIdempotent installs the handler and marks the service
// idempotent: every operation can safely execute more than once, so
// hedged reads (Client hedging, at-least-once retries) are allowed
// against it.
func (rg *Registry) RegisterIdempotent(service string, h Handler) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	rg.services[service] = h
	rg.idempotent[service] = true
}

// Idempotent reports whether the service was registered as idempotent.
func (rg *Registry) Idempotent(service string) bool {
	rg.mu.RLock()
	defer rg.mu.RUnlock()
	return rg.idempotent[service]
}

// Services returns the registered service names, sorted.
func (rg *Registry) Services() []string {
	rg.mu.RLock()
	defer rg.mu.RUnlock()
	out := make([]string, 0, len(rg.services))
	for s := range rg.services {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Dispatch routes a request to its service handler. A panicking handler
// is recovered and reported as an error response, so one bad handler
// cannot take down the node serving it. A request whose deadline budget
// is already spent is rejected with CodeDeadlineExceeded before the
// handler runs — executing work the caller has abandoned only deepens
// an overload; requests with budget left carry an absolute deadline the
// handler can read via Request.Deadline to abort long scans mid-work.
func (rg *Registry) Dispatch(req Request) (resp Response) {
	rg.mu.RLock()
	h, ok := rg.services[req.Service]
	rg.mu.RUnlock()
	if !ok {
		return Errorf("vinci: unknown service %q", req.Service)
	}
	// A request may already carry an absolute deadline stamped at arrival
	// (Server.dispatch does this before admission queueing, so queue wait
	// is deducted from the handler's budget rather than granted back
	// here). Only a request without one derives it from the wire budget.
	if req.deadline.IsZero() {
		if budget, ok := req.DeadlineBudget(); ok {
			if budget <= 0 {
				serverExpired.Inc()
				return DeadlineExceededResponse(req.Service + "." + req.Op + " arrived with no budget left")
			}
			req = req.withAbsoluteDeadline(time.Now().Add(budget))
		}
	} else if req.Expired() {
		serverExpired.Inc()
		return DeadlineExceededResponse(req.Service + "." + req.Op + " budget spent before dispatch")
	}
	mm := serverMethod(req.Service, req.Op)
	mm.calls.Inc()
	span := mm.latency.Start()
	defer func() {
		if r := recover(); r != nil {
			resp = Errorf("vinci: %s.%s panicked: %v", req.Service, req.Op, r)
		}
		span.End()
		if !resp.OK {
			mm.errors.Inc()
		}
	}()
	return h(req)
}

// Client issues requests against a registry, local or remote.
type Client interface {
	// Call performs one request/response exchange.
	Call(Request) (Response, error)
	// Close releases the transport.
	Close() error
}

// localClient dispatches in-process.
type localClient struct{ reg *Registry }

// NewLocalClient returns a client that dispatches directly to reg.
func NewLocalClient(reg *Registry) Client { return &localClient{reg: reg} }

func (c *localClient) Call(req Request) (Response, error) { return c.reg.Dispatch(req), nil }
func (c *localClient) Close() error                       { return nil }

// --- wire representation ---

type xmlParam struct {
	Name  string `xml:"name,attr"`
	Value string `xml:",chardata"`
}

type xmlRequest struct {
	XMLName xml.Name   `xml:"request"`
	Service string     `xml:"service,attr"`
	Op      string     `xml:"op,attr"`
	Params  []xmlParam `xml:"param"`
}

type xmlResponse struct {
	XMLName xml.Name   `xml:"response"`
	OK      bool       `xml:"ok,attr"`
	Code    string     `xml:"code,attr,omitempty"`
	Error   string     `xml:"error,omitempty"`
	Fields  []xmlParam `xml:"field"`
}

func encodeRequest(req Request) ([]byte, error) {
	xr := xmlRequest{Service: req.Service, Op: req.Op}
	for _, k := range sortedKeys(req.Params) {
		xr.Params = append(xr.Params, xmlParam{Name: k, Value: req.Params[k]})
	}
	return xml.Marshal(xr)
}

func decodeRequest(data []byte) (Request, error) {
	var xr xmlRequest
	if err := xml.Unmarshal(data, &xr); err != nil {
		return Request{}, err
	}
	req := Request{Service: xr.Service, Op: xr.Op, Params: map[string]string{}}
	for _, p := range xr.Params {
		req.Params[p.Name] = p.Value
	}
	return req, nil
}

func encodeResponse(resp Response) ([]byte, error) {
	xr := xmlResponse{OK: resp.OK, Code: resp.Code, Error: resp.Error}
	for _, k := range sortedKeys(resp.Fields) {
		xr.Fields = append(xr.Fields, xmlParam{Name: k, Value: resp.Fields[k]})
	}
	return xml.Marshal(xr)
}

func decodeResponse(data []byte) (Response, error) {
	var xr xmlResponse
	if err := xml.Unmarshal(data, &xr); err != nil {
		return Response{}, err
	}
	resp := Response{OK: xr.OK, Code: xr.Code, Error: xr.Error, Fields: map[string]string{}}
	for _, f := range xr.Fields {
		resp.Fields[f.Name] = f.Value
	}
	return resp, nil
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// writeFrame writes a length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("vinci: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads a length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("vinci: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// ServerOptions tunes a network server's overload behavior.
type ServerOptions struct {
	// Admission bounds concurrent work (zero value: no admission
	// control, every request dispatches immediately).
	Admission AdmissionConfig
}

// Server serves a registry over a listener.
type Server struct {
	reg *Registry
	adm *admission // nil: admission control off

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a registry for network serving with no admission
// control (requests dispatch immediately, however many arrive).
func NewServer(reg *Registry) *Server {
	return NewServerWith(reg, ServerOptions{})
}

// NewServerWith wraps a registry for network serving with explicit
// overload options.
func NewServerWith(reg *Registry, opts ServerOptions) *Server {
	s := &Server{reg: reg, conns: make(map[net.Conn]struct{})}
	if opts.Admission.enabled() {
		s.adm = newAdmission(opts.Admission)
	}
	return s
}

// Serve accepts connections until the listener is closed. Each connection
// may carry any number of sequential request/response exchanges.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Close stops the server: it stops accepting, nudges idle connections
// off their blocking reads, and waits for in-flight exchanges to drain
// before returning. In-flight responses are still written.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for conn := range s.conns {
		// Interrupt the blocking read; a dispatch already in flight
		// completes and its response write still goes out.
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		// Last-resort recovery so an unexpected panic in the framing or
		// codec path kills only this connection, never the node.
		recover()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return // EOF, shutdown nudge, or broken peer: drop the connection
		}
		req, err := decodeRequest(payload)
		var resp Response
		if err != nil {
			resp = Errorf("vinci: malformed request: %v", err)
		} else {
			resp = s.dispatch(req)
		}
		out, err := encodeResponse(resp)
		if err != nil {
			return
		}
		if err := writeFrame(conn, out); err != nil {
			return
		}
	}
}

// dispatch runs one request through admission control (when enabled)
// and the registry. Shed and expired requests never reach a handler.
// The absolute deadline is computed once, at arrival: a request that
// waits in the admission queue dispatches with only the budget it has
// genuinely left, not a fresh copy of its wire budget.
func (s *Server) dispatch(req Request) Response {
	if budget, ok := req.DeadlineBudget(); ok && budget > 0 {
		req = req.withAbsoluteDeadline(time.Now().Add(budget))
	}
	if s.adm == nil {
		return s.reg.Dispatch(req)
	}
	outcome, reason := s.adm.acquire(req)
	switch outcome {
	case shedOverload:
		return OverloadedResponse(reason)
	case shedExpired:
		return DeadlineExceededResponse(reason)
	}
	defer s.adm.release()
	return s.reg.Dispatch(req)
}

// DialOptions tunes the TCP client transport.
type DialOptions struct {
	// CallTimeout is the total per-call budget covering every attempt —
	// exchanges, redials and retry backoffs together (0 means no
	// deadline). The remaining budget is stamped onto each outgoing
	// request as the x-deadline-ms param so every downstream hop sees
	// only the time genuinely left.
	CallTimeout time.Duration
	// AttemptTimeout bounds a single attempt's exchange within the
	// total budget (0 means each attempt may use whatever budget
	// remains). Setting it keeps one stalled server from consuming the
	// whole call budget, leaving room to retry on a fresh connection.
	AttemptTimeout time.Duration
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// Retry bounds how transport failures are retried. The zero value
	// means a single attempt; use DefaultRetryPolicy() for production.
	Retry RetryPolicy
	// Dialer overrides the transport, e.g. to inject faults in tests.
	// It receives the target address and must return a connected conn.
	Dialer func(addr string) (net.Conn, error)
}

// tcpClient is a single-connection network client; calls are serialized.
// After any transport error mid-exchange the connection may hold a
// partial frame, so it is torn down and redialed on the next attempt —
// never reused, which would desynchronize the framing.
type tcpClient struct {
	addr string
	opts DialOptions

	mu     sync.Mutex
	rng    *lockedRand
	conn   net.Conn
	closed bool
}

// Dial connects to a vinci server with the default retry policy. The
// timeout applies per call (0 means no deadline).
func Dial(addr string, timeout time.Duration) (Client, error) {
	return DialWith(addr, DialOptions{CallTimeout: timeout, Retry: DefaultRetryPolicy()})
}

// DialWith connects to a vinci server with explicit transport options.
// The initial connection is established eagerly so configuration errors
// surface immediately; later reconnects happen lazily inside Call.
func DialWith(addr string, opts DialOptions) (Client, error) {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	c := &tcpClient{addr: addr, opts: opts, rng: opts.Retry.newRand()}
	conn, err := c.dial()
	if err != nil {
		return nil, fmt.Errorf("vinci: dial %s: %w", addr, err)
	}
	c.conn = conn
	return c, nil
}

// dial opens one connection using the configured transport.
func (c *tcpClient) dial() (net.Conn, error) {
	if c.opts.Dialer != nil {
		return c.opts.Dialer(c.addr)
	}
	return net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
}

// Call performs one exchange, transparently redialing and retrying
// transport failures within the retry policy and the call's total
// deadline budget: once the budget is spent no further attempt (or
// backoff sleep) is made, and each attempt stamps the remaining budget
// onto the request so the server and any downstream hop can shed or
// abort work the caller will no longer wait for. Shed responses
// (CodeOverloaded) are retried after backoff like transport failures;
// expired responses (CodeDeadlineExceeded) are never retried.
// Operations are assumed idempotent (true of all platform services): a
// call whose response was lost may execute twice on the server.
func (c *tcpClient) Call(req Request) (Response, error) {
	mm := clientMethod(req.Service, req.Op)
	mm.calls.Inc()
	span := mm.latency.Start()
	defer span.End()
	c.mu.Lock()
	defer c.mu.Unlock()

	// The overall deadline is the tighter of the transport's per-call
	// budget and any budget already stamped on the request by an
	// upstream hop. Zero means unbounded.
	var overall time.Time
	if c.opts.CallTimeout > 0 {
		overall = time.Now().Add(c.opts.CallTimeout)
	}
	if budget, ok := req.DeadlineBudget(); ok {
		if t := time.Now().Add(budget); overall.IsZero() || t.Before(overall) {
			overall = t
		}
	}

	// Unbounded calls encode once; bounded calls re-encode per attempt
	// so the stamped budget reflects time already burned on earlier
	// attempts and backoffs.
	var payload []byte
	if overall.IsZero() {
		var err error
		payload, err = encodeRequest(req)
		if err != nil {
			mm.errors.Inc()
			return Response{}, err
		}
	}

	attempts := c.opts.Retry.attempts()
	var lastErr error
	expired := false
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if d := c.opts.Retry.backoffFor(attempt-1, c.rng); d > 0 {
				if !overall.IsZero() && time.Until(overall) <= d {
					// Sleeping would outlive the budget: stop here
					// rather than retrying a call nobody awaits.
					expired = true
					break
				}
				time.Sleep(d)
			}
			clientRetries.Inc()
		}
		if c.closed {
			mm.errors.Inc()
			return Response{}, errors.New("vinci: client closed")
		}
		attemptDeadline := overall
		if c.opts.AttemptTimeout > 0 {
			if t := time.Now().Add(c.opts.AttemptTimeout); attemptDeadline.IsZero() || t.Before(attemptDeadline) {
				attemptDeadline = t
			}
		}
		if !attemptDeadline.IsZero() {
			if !overall.IsZero() && time.Until(overall) <= 0 {
				expired = true
				break
			}
			rem := time.Until(attemptDeadline)
			if rem <= 0 {
				expired = true
				break
			}
			var err error
			payload, err = encodeRequest(WithDeadlineBudget(req, rem))
			if err != nil {
				mm.errors.Inc()
				return Response{}, err
			}
		}
		if c.conn == nil {
			conn, err := c.dial()
			if err != nil {
				lastErr = &RetryableError{Op: "dial", Err: err}
				continue
			}
			c.conn = conn
		}
		resp, err := c.exchange(payload, attemptDeadline)
		if err == nil {
			switch resp.Code {
			case CodeDeadlineExceeded:
				clientExpired.Inc()
				mm.errors.Inc()
				return Response{}, fmt.Errorf("vinci: call %s.%s: %s: %w",
					req.Service, req.Op, resp.Error, ErrDeadlineExceeded)
			case CodeOverloaded:
				clientShedSeen.Inc()
				lastErr = fmt.Errorf("%s: %w", resp.Error, ErrOverloaded)
				continue
			}
			return resp, nil
		}
		lastErr = err
		if !IsRetryable(err) {
			mm.errors.Inc()
			return Response{}, err
		}
	}
	mm.errors.Inc()
	if expired || (!overall.IsZero() && time.Now().After(overall)) {
		clientExpired.Inc()
		if lastErr == nil {
			lastErr = ErrDeadlineExceeded
		}
		return Response{}, fmt.Errorf("vinci: call %s.%s: deadline budget spent (last error: %v): %w",
			req.Service, req.Op, lastErr, ErrDeadlineExceeded)
	}
	return Response{}, fmt.Errorf("vinci: call %s.%s failed after %d attempts: %w",
		req.Service, req.Op, attempts, lastErr)
}

// exchange writes one request frame and reads the response frame on the
// live connection, bounded by the call's overall deadline (a zero
// deadline means unbounded). Any failure tears the connection down:
// after a deadline or I/O error mid-frame the stream may hold a partial
// frame, and reusing it would make the next call read garbage.
func (c *tcpClient) exchange(payload []byte, overall time.Time) (Response, error) {
	// The conn deadline is the call's total budget, not a fresh
	// per-attempt window: retries must never stretch a call past the
	// deadline its caller is waiting on. Setting it unconditionally also
	// clears (zero overall) any deadline a prior budget-carrying call
	// left on the kept connection — inheriting a spent one would fail an
	// unbounded call spuriously.
	if err := c.conn.SetDeadline(overall); err != nil {
		c.teardown()
		return Response{}, &RetryableError{Op: "deadline", Err: err}
	}
	if err := writeFrame(c.conn, payload); err != nil {
		c.teardown()
		return Response{}, &RetryableError{Op: "write", Err: err}
	}
	respData, err := readFrame(c.conn)
	if err != nil {
		c.teardown()
		return Response{}, &RetryableError{Op: "read", Err: err}
	}
	resp, err := decodeResponse(respData)
	if err != nil {
		// A frame that parsed as a length but not as XML means the
		// stream integrity is suspect (corruption or desync): drop it.
		c.teardown()
		return Response{}, &RetryableError{Op: "decode", Err: err}
	}
	if !resp.OK && strings.HasPrefix(resp.Error, "vinci: malformed request") {
		// The peer could not parse the frame we sent — corruption in
		// transit, not an application failure. Resend on a fresh
		// connection; the stream position is no longer trustworthy.
		c.teardown()
		return Response{}, &RetryableError{Op: "integrity", Err: errors.New(resp.Error)}
	}
	return resp, nil
}

// teardown closes and forgets the broken connection (mu held).
func (c *tcpClient) teardown() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

func (c *tcpClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	var err error
	if c.conn != nil {
		err = c.conn.Close()
		c.conn = nil
	}
	return err
}
