package vinci

import (
	"sync"

	"webfountain/internal/metrics"
)

// TraceIDParam is the reserved request parameter that carries the
// per-request trace ID across Vinci calls. Handlers that fan out to
// further services copy it forward, so one document's trip through the
// platform can be correlated end to end.
const TraceIDParam = "x-trace-id"

// WithTrace returns req with the trace ID attached (no-op for empty id).
func WithTrace(req Request, traceID string) Request {
	if traceID == "" {
		return req
	}
	if req.Params == nil {
		req.Params = map[string]string{}
	}
	req.Params[TraceIDParam] = traceID
	return req
}

// TraceID extracts the trace ID carried by a request ("" when absent).
func (r Request) TraceID() string { return r.Params[TraceIDParam] }

// Traced wraps a client so every outgoing request carries traceID,
// letting typed clients (which build their own requests) participate in
// tracing without threading the ID through each call site.
func Traced(c Client, traceID string) Client { return tracedClient{c: c, id: traceID} }

type tracedClient struct {
	c  Client
	id string
}

func (t tracedClient) Call(req Request) (Response, error) { return t.c.Call(WithTrace(req, t.id)) }
func (t tracedClient) Close() error                       { return t.c.Close() }

// Per-method metric handles, resolved once per service.op and cached:
// the registry lookup takes a lock, the cached handle is lock-free.
type methodMetrics struct {
	calls   *metrics.Counter
	errors  *metrics.Counter
	latency *metrics.Histogram
}

var (
	serverMethods sync.Map // "svc.op" -> *methodMetrics
	clientMethods sync.Map // "svc.op" -> *methodMetrics
)

func methodFor(cache *sync.Map, prefix, service, op string) *methodMetrics {
	key := service + "." + op
	if m, ok := cache.Load(key); ok {
		return m.(*methodMetrics)
	}
	reg := metrics.Default()
	m := &methodMetrics{
		calls:   reg.Counter(prefix + key + ".calls"),
		errors:  reg.Counter(prefix + key + ".errors"),
		latency: reg.Histogram(prefix + key + ".ns"),
	}
	actual, _ := cache.LoadOrStore(key, m)
	return actual.(*methodMetrics)
}

func serverMethod(service, op string) *methodMetrics {
	return methodFor(&serverMethods, "vinci.server.", service, op)
}

func clientMethod(service, op string) *methodMetrics {
	return methodFor(&clientMethods, "vinci.client.", service, op)
}

var (
	clientRetries = metrics.Default().Counter("vinci.client.retries")

	// Overload-model counters (see DESIGN.md §10). Client side: calls
	// that died with a spent budget, shed responses observed, hedges
	// fired and hedges whose second attempt won. Server side: requests
	// rejected before dispatch because they arrived with no budget.
	clientExpired  = metrics.Default().Counter("vinci.client.expired")
	clientShedSeen = metrics.Default().Counter("vinci.client.shed.seen")
	clientHedges   = metrics.Default().Counter("vinci.client.hedges")
	clientHedgeWins = metrics.Default().Counter("vinci.client.hedge.wins")
	serverExpired  = metrics.Default().Counter("vinci.server.expired")
)
