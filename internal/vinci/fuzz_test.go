package vinci

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"time"
)

// frame builds a well-formed length-prefixed frame for seeding.
func frame(payload []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	return append(hdr[:], payload...)
}

// FuzzDecodeRequest: malformed XML must produce an error, never a panic,
// and valid inputs must re-encode cleanly.
func FuzzDecodeRequest(f *testing.F) {
	good, _ := encodeRequest(Request{Service: "store", Op: "get", Params: map[string]string{"id": "doc1"}})
	f.Add(good)
	f.Add([]byte(""))
	f.Add([]byte("this is not xml at all <<<"))
	f.Add([]byte("<request"))
	f.Add([]byte(`<request service="s" op="o"><param name="a">v</param>`))
	f.Add([]byte(`<request service="s" op="o"><param name="a">v</param></request><junk/>`))
	f.Add([]byte("<request>" + strings.Repeat("<param>", 100)))
	f.Add(bytes.Repeat([]byte{0x00}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeRequest(data)
		if err != nil {
			return
		}
		if _, err := encodeRequest(req); err != nil {
			t.Errorf("decoded request does not re-encode: %v", err)
		}
	})
}

// FuzzDecodeResponse mirrors FuzzDecodeRequest for the response codec.
func FuzzDecodeResponse(f *testing.F) {
	good, _ := encodeResponse(OKResponse(map[string]string{"n": "42"}))
	f.Add(good)
	bad, _ := encodeResponse(Errorf("boom"))
	f.Add(bad)
	f.Add([]byte(""))
	f.Add([]byte("<response ok=\"maybe\">"))
	f.Add([]byte("<response ok=\"true\"><field name=\"x\">&#xZZ;</field></response>"))
	f.Add(bytes.Repeat([]byte{0xFF}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := decodeResponse(data)
		if err != nil {
			return
		}
		if _, err := encodeResponse(resp); err != nil {
			t.Errorf("decoded response does not re-encode: %v", err)
		}
	})
}

// FuzzDeadlineParam: x-deadline-ms values off the wire must parse
// without panicking and never yield a negative budget; anything the
// parser accepts must round-trip through a stamped request and survive
// Dispatch (which either rejects it as expired or hands the handler a
// consistent absolute deadline).
func FuzzDeadlineParam(f *testing.F) {
	f.Add("")
	f.Add("0")
	f.Add("1")
	f.Add("250")
	f.Add("+250")
	f.Add("-1")
	f.Add("00000000000000000042")
	f.Add("99999999999999999999999999")
	f.Add("1073741824") // just past maxDeadlineMS
	f.Add("9223372036854775807")
	f.Add("1e3")
	f.Add("0x10")
	f.Add(" 7")
	f.Add("7 ")
	f.Add("١٢٣") // non-ASCII digits must be rejected
	f.Add("\x00")
	f.Fuzz(func(t *testing.T, s string) {
		budget, ok := parseDeadlineMS(s)
		if budget < 0 {
			t.Fatalf("parseDeadlineMS(%q) yielded negative budget %v", s, budget)
		}
		if !ok && budget != 0 {
			t.Fatalf("parseDeadlineMS(%q) rejected input but returned %v", s, budget)
		}

		reg := NewRegistry()
		reg.Register("probe", func(req Request) Response {
			if dl, has := req.Deadline(); has && time.Until(dl) > time.Duration(maxDeadlineMS)*time.Millisecond {
				return Errorf("deadline beyond clamp")
			}
			return OKResponse(nil)
		})
		req := Request{Service: "probe", Op: "x", Params: map[string]string{DeadlineParam: s}}
		resp := reg.Dispatch(req)
		switch {
		case resp.OK:
		case resp.Code == CodeDeadlineExceeded:
			if !ok || budget > 0 {
				t.Fatalf("dispatch expired %q but parse gave (%v, %v)", s, budget, ok)
			}
		default:
			t.Fatalf("dispatch of %q failed unexpectedly: %+v", s, resp)
		}

		if ok {
			// A stamped request must round-trip to the same budget.
			stamped := WithDeadlineBudget(Request{Service: "probe", Op: "x"}, budget)
			got, has := stamped.DeadlineBudget()
			if !has || got != budget {
				t.Fatalf("round trip of %v gave (%v, %v)", budget, got, has)
			}
		}
	})
}

// FuzzReadFrame: truncated, oversized and garbage frames must error
// without panicking or over-allocating, and well-formed frames must
// round-trip their payload.
func FuzzReadFrame(f *testing.F) {
	f.Add(frame([]byte("<request/>")))
	f.Add(frame(nil))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x00, 0x00, 0x00, 0x10, 'x'})               // truncated payload
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})                    // oversized header
	f.Add([]byte{0x01, 0x00, 0x00, 0x01})                    // 16MiB+1: just past limit
	f.Add(append(frame([]byte("a")), frame([]byte("b"))...)) // two frames back to back
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		payload, err := readFrame(r)
		if err != nil {
			return
		}
		if len(payload) > MaxFrameSize {
			t.Errorf("frame of %d bytes exceeds limit", len(payload))
		}
		if len(data) < 4+len(payload) {
			t.Errorf("read %d payload bytes from %d input bytes", len(payload), len(data))
		}
		if !bytes.Equal(payload, data[4:4+len(payload)]) {
			t.Error("payload does not match input")
		}
	})
}
