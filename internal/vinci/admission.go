package vinci

import (
	"runtime"
	"sync"
	"time"

	"webfountain/internal/metrics"
)

// AdmissionConfig bounds how much concurrent work a server accepts.
// The zero value disables admission control (every request dispatches
// immediately, as before). With admission on, at most Capacity requests
// execute at once; up to Depth more wait in a bounded queue, and
// everything beyond that is shed immediately with CodeOverloaded — the
// server's answer to sustained overload is a fast, retryable "no", not
// an ever-growing queue whose every entry will miss its deadline.
type AdmissionConfig struct {
	// Capacity is the number of concurrent dispatches admitted
	// (0 with Depth > 0 selects GOMAXPROCS).
	Capacity int
	// Depth is the number of requests allowed to wait beyond Capacity
	// (0 with Capacity > 0 selects Capacity). A request is queued only
	// if its remaining deadline budget exceeds the method's observed
	// p95 service time — otherwise it would almost surely expire in
	// queue, so it is shed up front while the caller can still retry
	// against another replica.
	Depth int
	// Policy orders the queue: "lifo" (default) serves the newest
	// waiter first — under overload the newest request has the most
	// budget left and the best chance of finishing in time (adaptive
	// LIFO); "fifo" preserves arrival order.
	Policy string
	// MaxWait bounds how long a request with no deadline budget may
	// wait in queue before being shed (default 1s). Requests with a
	// budget wait at most until it expires.
	MaxWait time.Duration
	// ServiceP95 overrides where the shed decision reads a method's
	// p95 service time (nil: the server's own latency histograms).
	ServiceP95 func(service, op string) time.Duration
}

// enabled reports whether the config turns admission control on.
func (c AdmissionConfig) enabled() bool { return c.Capacity > 0 || c.Depth > 0 }

func (c AdmissionConfig) normalized() AdmissionConfig {
	if c.Capacity <= 0 {
		c.Capacity = runtime.GOMAXPROCS(0)
	}
	if c.Depth <= 0 {
		c.Depth = c.Capacity
	}
	if c.Policy == "" {
		c.Policy = "lifo"
	}
	if c.MaxWait <= 0 {
		c.MaxWait = time.Second
	}
	if c.ServiceP95 == nil {
		c.ServiceP95 = serverP95
	}
	return c
}

// serverP95 reads the server-side latency histogram for one method and
// returns its p95 (0 until enough observations exist to matter).
func serverP95(service, op string) time.Duration {
	h := metrics.Default().Histogram("vinci.server." + service + "." + op + ".ns")
	if h.Count() == 0 {
		return 0
	}
	return time.Duration(h.Snapshot().P95)
}

// admitOutcome is the admission decision for one request.
type admitOutcome int

const (
	admitOK admitOutcome = iota
	shedOverload
	shedExpired
)

// admWaiter is one queued request.
type admWaiter struct {
	ready    chan struct{} // closed once outcome is set
	outcome  admitOutcome
	reason   string
	deadline time.Time // zero: no budget
}

// admission is the server's bounded, deadline-aware admission queue.
type admission struct {
	cfg AdmissionConfig

	mu       sync.Mutex
	inflight int
	queue    []*admWaiter

	admitted     *metrics.Counter
	shedOverFull *metrics.Counter
	shedOverBud  *metrics.Counter
	shedExp      *metrics.Counter
	queueDepth   *metrics.Gauge
	queueWaitNs  *metrics.Histogram
}

func newAdmission(cfg AdmissionConfig) *admission {
	reg := metrics.Default()
	a := &admission{
		cfg:          cfg.normalized(),
		admitted:     reg.Counter("vinci.server.admitted"),
		shedOverFull: reg.Counter("vinci.server.shed.overload"),
		shedOverBud:  reg.Counter("vinci.server.shed.budget"),
		shedExp:      reg.Counter("vinci.server.shed.expired"),
		queueDepth:   reg.Gauge("vinci.server.queue.depth"),
		queueWaitNs:  reg.Histogram("vinci.server.queue.wait.ns"),
	}
	return a
}

// acquire decides one request's fate: dispatch now, wait in the bounded
// queue, or shed. A request that acquires admitOK must be paired with
// one release call.
func (a *admission) acquire(req Request) (admitOutcome, string) {
	now := time.Now()
	// Prefer the absolute deadline stamped at arrival (Server.dispatch);
	// fall back to deriving one from the wire budget for callers that
	// invoke acquire directly.
	deadline, hasDeadline := req.Deadline()
	if !hasDeadline {
		if budget, ok := req.DeadlineBudget(); ok {
			deadline = now.Add(budget)
			hasDeadline = true
		}
	}
	if hasDeadline && !deadline.After(now) {
		a.shedExp.Inc()
		return shedExpired, "arrived with no budget left"
	}

	a.mu.Lock()
	if a.inflight < a.cfg.Capacity {
		a.inflight++
		a.mu.Unlock()
		a.admitted.Inc()
		return admitOK, ""
	}
	if len(a.queue) >= a.cfg.Depth {
		a.mu.Unlock()
		a.shedOverFull.Inc()
		return shedOverload, "admission queue full"
	}
	if !deadline.IsZero() {
		if p95 := a.cfg.ServiceP95(req.Service, req.Op); p95 > 0 && time.Until(deadline) < p95 {
			a.mu.Unlock()
			a.shedOverBud.Inc()
			return shedOverload, "remaining budget below service-time p95"
		}
	}
	w := &admWaiter{ready: make(chan struct{}), deadline: deadline}
	a.queue = append(a.queue, w)
	a.queueDepth.Set(int64(len(a.queue)))
	a.mu.Unlock()

	maxWait := a.cfg.MaxWait
	if !deadline.IsZero() {
		if rem := time.Until(deadline); rem < maxWait {
			maxWait = rem
		}
	}
	timer := time.NewTimer(maxWait)
	defer timer.Stop()
	select {
	case <-w.ready:
	case <-timer.C:
		a.mu.Lock()
		if a.remove(w) {
			// Still queued: this request's wait is over. A spent budget
			// is an expiry; a budget-less MaxWait timeout is a shed.
			if !w.deadline.IsZero() && time.Now().After(w.deadline) {
				w.outcome, w.reason = shedExpired, "expired while queued"
			} else {
				w.outcome, w.reason = shedOverload, "queue wait exceeded max-wait"
			}
			close(w.ready)
		}
		a.mu.Unlock()
		<-w.ready
	}
	a.queueWaitNs.ObserveDuration(time.Since(now))
	switch w.outcome {
	case admitOK:
		a.admitted.Inc()
	case shedExpired:
		a.shedExp.Inc()
	case shedOverload:
		a.shedOverFull.Inc()
	}
	return w.outcome, w.reason
}

// remove unlinks w from the queue (lock held); false if already popped.
func (a *admission) remove(w *admWaiter) bool {
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			a.queueDepth.Set(int64(len(a.queue)))
			return true
		}
	}
	return false
}

// release returns one execution slot, handing it to the next viable
// waiter (newest first under LIFO). Waiters that expired or whose
// remaining budget dropped below the method's p95 while queued are shed
// on the way — queueing them further would only make them miss harder.
func (a *admission) release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := time.Now()
	for len(a.queue) > 0 {
		var w *admWaiter
		if a.cfg.Policy == "fifo" {
			w = a.queue[0]
			a.queue = a.queue[1:]
		} else {
			w = a.queue[len(a.queue)-1]
			a.queue = a.queue[:len(a.queue)-1]
		}
		a.queueDepth.Set(int64(len(a.queue)))
		if !w.deadline.IsZero() && now.After(w.deadline) {
			w.outcome, w.reason = shedExpired, "expired while queued"
			close(w.ready)
			continue
		}
		w.outcome = admitOK
		close(w.ready)
		return // slot transferred, inflight unchanged
	}
	a.inflight--
}
