package vinci

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// RetryableError marks a transport-level failure (connection loss,
// deadline, frame corruption) that is safe to retry on a fresh
// connection. Application-level failures — a handler returning !OK —
// travel inside the Response and are never wrapped.
type RetryableError struct {
	// Op names the transport step that failed ("dial", "write", "read",
	// "decode", "deadline").
	Op string
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *RetryableError) Error() string { return "vinci: retryable " + e.Op + ": " + e.Err.Error() }

// Unwrap exposes the underlying error.
func (e *RetryableError) Unwrap() error { return e.Err }

// Temporary marks the error retryable for callers that classify via the
// Temporary() interface.
func (e *RetryableError) Temporary() bool { return true }

// IsRetryable classifies an error as a transient transport failure
// (retry may succeed) versus an application or usage error (retry is
// pointless). Connection resets, timeouts, EOF mid-exchange and
// anything carrying Temporary() == true count as retryable.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	var re *RetryableError
	if errors.As(err, &re) {
		return true
	}
	var tmp interface{ Temporary() bool }
	if errors.As(err, &tmp) && tmp.Temporary() {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ECONNREFUSED)
}

// RetryPolicy bounds how a client retries transport failures.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per call, including
	// the first (values below 1 select 1: no retries).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each further
	// retry doubles it (0 means no sleep).
	BaseBackoff time.Duration
	// MaxBackoff caps the doubled backoff (0 means uncapped).
	MaxBackoff time.Duration
	// Jitter randomizes each backoff by ±Jitter fraction (0..1) to
	// avoid thundering herds of synchronized retries.
	Jitter float64
	// Seed makes the jitter sequence deterministic when non-zero;
	// required for reproducible fault-injection tests.
	Seed int64
}

// DefaultRetryPolicy is the production default: four attempts with
// 25ms → 200ms exponential backoff and 20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 25 * time.Millisecond, MaxBackoff: 500 * time.Millisecond, Jitter: 0.2}
}

// attempts normalizes MaxAttempts.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// lockedRand is a per-client jitter source: its own seeded rand.Rand
// behind its own mutex, so concurrent clients neither contend on the
// global math/rand lock nor perturb each other's deterministic
// sequences under seeded fault-injection tests.
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

// Float64 returns a uniform value in [0, 1).
func (lr *lockedRand) Float64() float64 {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.r.Float64()
}

// seedCounter differentiates clients created within the same clock tick
// when no explicit Seed is configured.
var seedCounter atomic.Int64

// newRand builds the jitter source for one client.
func (p RetryPolicy) newRand() *lockedRand {
	seed := p.Seed
	if seed == 0 {
		// Derive a per-client seed without touching the global math/rand
		// state: clock entropy plus a process-unique counter.
		seed = time.Now().UnixNano() ^ (seedCounter.Add(1) << 32)
	}
	return &lockedRand{r: rand.New(rand.NewSource(seed))}
}

// backoffFor computes the sleep before retry number `retry` (1-based)
// using rng for jitter (nil means no jitter).
func (p RetryPolicy) backoffFor(retry int, rng *lockedRand) time.Duration {
	if p.BaseBackoff <= 0 {
		return 0
	}
	d := p.BaseBackoff
	for i := 1; i < retry; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 && rng != nil {
		frac := 1 + p.Jitter*(2*rng.Float64()-1)
		d = time.Duration(float64(d) * frac)
		if d < 0 {
			d = 0
		}
	}
	return d
}
