package vinci

import (
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func echoRegistry() *Registry {
	reg := NewRegistry()
	reg.Register("echo", func(req Request) Response {
		fields := map[string]string{"op": req.Op}
		for k, v := range req.Params {
			fields[k] = v
		}
		return OKResponse(fields)
	})
	reg.Register("fail", func(req Request) Response {
		return Errorf("deliberate failure: %s", req.Op)
	})
	return reg
}

func TestLocalClientRoundTrip(t *testing.T) {
	c := NewLocalClient(echoRegistry())
	defer c.Close()
	resp, err := c.Call(Request{Service: "echo", Op: "ping", Params: map[string]string{"a": "1"}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Fields["a"] != "1" || resp.Fields["op"] != "ping" {
		t.Errorf("resp = %+v", resp)
	}
}

func TestLocalClientUnknownService(t *testing.T) {
	c := NewLocalClient(echoRegistry())
	resp, err := c.Call(Request{Service: "nope"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "unknown service") {
		t.Errorf("resp = %+v", resp)
	}
}

func TestErrorResponse(t *testing.T) {
	c := NewLocalClient(echoRegistry())
	resp, _ := c.Call(Request{Service: "fail", Op: "x"})
	if resp.OK || !strings.Contains(resp.Error, "deliberate failure: x") {
		t.Errorf("resp = %+v", resp)
	}
}

func TestWireEncodingRoundTrip(t *testing.T) {
	req := Request{Service: "store", Op: "put", Params: map[string]string{
		"id":   "doc1",
		"text": "The <NR70> takes \"excellent\" pictures & more.",
	}}
	data, err := encodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, back) {
		t.Errorf("round trip: %+v vs %+v", req, back)
	}

	resp := Response{OK: true, Fields: map[string]string{"n": "42", "xml": "<a>&b</a>"}}
	rdata, err := encodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	rback, err := decodeResponse(rdata)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, rback) {
		t.Errorf("round trip: %+v vs %+v", resp, rback)
	}
}

func startServer(t *testing.T) (addr string, shutdown func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(echoRegistry())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	return ln.Addr().String(), func() {
		srv.Close()
		<-done
	}
}

func TestTCPRoundTrip(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()

	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Call(Request{Service: "echo", Op: "hello", Params: map[string]string{"k": "v"}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Fields["k"] != "v" {
		t.Errorf("resp = %+v", resp)
	}
}

func TestTCPSequentialCallsOneConnection(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 20; i++ {
		resp, err := c.Call(Request{Service: "echo", Op: fmt.Sprintf("op%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Fields["op"] != fmt.Sprintf("op%d", i) {
			t.Errorf("call %d: %+v", i, resp)
		}
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 25; i++ {
				resp, err := c.Call(Request{Service: "echo", Op: "x", Params: map[string]string{"w": fmt.Sprint(w)}})
				if err != nil {
					errs <- err
					return
				}
				if resp.Fields["w"] != fmt.Sprint(w) {
					errs <- fmt.Errorf("cross-talk: %+v", resp)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestClientClosedCallFails(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Call(Request{Service: "echo"}); err == nil {
		t.Error("call on closed client should fail")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", time.Second); err == nil {
		t.Error("dial to closed port should fail")
	}
}

func TestRegistryServices(t *testing.T) {
	reg := echoRegistry()
	got := reg.Services()
	if !reflect.DeepEqual(got, []string{"echo", "fail"}) {
		t.Errorf("Services = %v", got)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var sink strings.Builder
	big := make([]byte, MaxFrameSize+1)
	if err := writeFrame(&sink, big); err == nil {
		t.Error("oversized frame should fail")
	}
}

// TestServerSurvivesMalformedFrames: a peer sending garbage must not take
// the server down; other connections keep working.
func TestServerSurvivesMalformedFrames(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()

	// Raw connection sending a valid frame header with junk XML.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("this is not xml at all <<<")
	var hdr [4]byte
	hdr[0] = byte(len(payload) >> 24)
	hdr[1] = byte(len(payload) >> 16)
	hdr[2] = byte(len(payload) >> 8)
	hdr[3] = byte(len(payload))
	raw.Write(hdr[:])
	raw.Write(payload)
	// The server responds with a structured error frame.
	resp, err := readFrame(raw)
	if err != nil {
		t.Fatalf("no error response: %v", err)
	}
	decoded, err := decodeResponse(resp)
	if err != nil || decoded.OK || !strings.Contains(decoded.Error, "malformed") {
		t.Errorf("resp = %+v, %v", decoded, err)
	}
	raw.Close()

	// An oversized frame header drops the connection without panicking.
	raw2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	raw2.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	raw2.Close()

	// A healthy client still works.
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp2, err := c.Call(Request{Service: "echo", Op: "still-alive"})
	if err != nil || !resp2.OK {
		t.Errorf("healthy call after garbage: %+v, %v", resp2, err)
	}
}

// TestReadFrameRejectsOversized verifies the frame size guard.
func TestReadFrameRejectsOversized(t *testing.T) {
	var buf strings.Builder
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := readFrame(strings.NewReader(buf.String())); err == nil {
		t.Error("oversized frame accepted")
	}
}
