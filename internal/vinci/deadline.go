package vinci

import (
	"errors"
	"time"
)

// DeadlineParam is the reserved request parameter that carries a
// request's remaining deadline budget, in integer milliseconds, across
// Vinci hops. The client stamps it from its per-call budget and
// decrements it by the time already spent before each (re)transmission,
// so a handler that fans out to further services forwards only the
// budget that is genuinely left — the paper's 500-node cluster cannot
// afford a request queueing somewhere long after its caller gave up.
const DeadlineParam = "x-deadline-ms"

// maxDeadlineMS bounds a parsed budget (~11.5 days) so converting to a
// time.Duration in nanoseconds can never overflow.
const maxDeadlineMS = int64(1) << 30

// ErrDeadlineExceeded reports that a request's deadline budget was
// already spent — on the client before (re)sending, or on the server
// before dispatch. It is never retried: the caller has already given up,
// so re-executing the work can only add load.
var ErrDeadlineExceeded = errors.New("vinci: deadline exceeded")

// ErrOverloaded reports that the server shed the request before doing
// any work — its admission queue was full or the request's remaining
// budget was below the observed service time. Shedding is retryable:
// another replica, or the same one after backoff, may have capacity.
var ErrOverloaded = errors.New("vinci: overloaded")

// Response codes distinguish machine-actionable failures from free-text
// handler errors. They travel on the wire as the response's code
// attribute; the client retry loop keys off them (shed → retry with
// backoff, expired → fail immediately).
const (
	// CodeOverloaded marks a shed request (retryable).
	CodeOverloaded = "overloaded"
	// CodeDeadlineExceeded marks an expired request (never retryable).
	CodeDeadlineExceeded = "deadline-exceeded"
)

// OverloadedResponse builds the shed response.
func OverloadedResponse(reason string) Response {
	return Response{OK: false, Code: CodeOverloaded, Error: "vinci: overloaded: " + reason}
}

// DeadlineExceededResponse builds the expired-request response.
func DeadlineExceededResponse(reason string) Response {
	return Response{OK: false, Code: CodeDeadlineExceeded, Error: "vinci: deadline exceeded: " + reason}
}

// IsOverloaded reports whether err (or the response it was built from)
// marks a shed request.
func IsOverloaded(err error) bool { return errors.Is(err, ErrOverloaded) }

// IsDeadlineExceeded reports whether err marks a spent deadline budget.
func IsDeadlineExceeded(err error) bool { return errors.Is(err, ErrDeadlineExceeded) }

// parseDeadlineMS parses a DeadlineParam value. It never panics and
// never yields a negative budget: malformed, negative or overflowing
// values return ok == false. Leading zeros and an optional '+' are
// accepted; anything else non-numeric is rejected.
func parseDeadlineMS(s string) (time.Duration, bool) {
	if s == "" {
		return 0, false
	}
	if s[0] == '+' {
		s = s[1:]
		if s == "" {
			return 0, false
		}
	}
	var ms int64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		ms = ms*10 + int64(c-'0')
		if ms > maxDeadlineMS {
			return 0, false
		}
	}
	return time.Duration(ms) * time.Millisecond, true
}

// formatMS renders a budget as the integer-millisecond wire value,
// rounding up so a positive sub-millisecond budget does not collapse to
// an already-expired "0".
func formatMS(d time.Duration) string {
	if d <= 0 {
		return "0"
	}
	ms := (d + time.Millisecond - 1) / time.Millisecond
	return itoa(int64(ms))
}

// itoa is a minimal non-negative int64 formatter (avoids strconv in the
// per-call hot path's import set; the conversion itself is trivial).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// WithDeadlineBudget returns req with the remaining budget stamped into
// DeadlineParam (non-positive budgets stamp "0": already expired). The
// params map is cloned, never mutated in place: hedged calls hand the
// same Request to concurrent attempts, and each attempt re-stamps its
// own remaining budget — a shared map here would be a concurrent map
// write under the race the stamps create.
func WithDeadlineBudget(req Request, budget time.Duration) Request {
	params := make(map[string]string, len(req.Params)+1)
	for k, v := range req.Params {
		params[k] = v
	}
	params[DeadlineParam] = formatMS(budget)
	req.Params = params
	return req
}

// DeadlineBudget extracts the deadline budget carried by the request.
// ok reports whether a well-formed budget was present; malformed values
// read as absent (the server treats them as "no deadline" rather than
// failing the call — a lenient reading keeps old clients working).
func (r Request) DeadlineBudget() (time.Duration, bool) {
	return parseDeadlineMS(r.Params[DeadlineParam])
}

// Deadline returns the absolute deadline the dispatcher computed from
// the request's budget, for handlers that want to abort long work
// mid-flight (store scans, index searches). ok is false when the
// request carried no budget.
func (r Request) Deadline() (time.Time, bool) {
	return r.deadline, !r.deadline.IsZero()
}

// Expired reports whether the request's deadline (if any) has passed.
func (r Request) Expired() bool {
	return !r.deadline.IsZero() && time.Now().After(r.deadline)
}

// Remaining returns the budget left before the request's deadline
// (clamped at zero); ok is false when the request carries no deadline.
func (r Request) Remaining() (time.Duration, bool) {
	if r.deadline.IsZero() {
		return 0, false
	}
	d := time.Until(r.deadline)
	if d < 0 {
		d = 0
	}
	return d, true
}

// withAbsoluteDeadline returns req carrying the absolute deadline
// (dispatch-side; not serialized).
func (r Request) withAbsoluteDeadline(t time.Time) Request {
	r.deadline = t
	return r
}
