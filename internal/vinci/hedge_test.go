package vinci

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// slowFirstClient delays calls routed through the primary.
type countingClient struct {
	c     Client
	calls atomic.Int32
	delay time.Duration
}

func (cc *countingClient) Call(req Request) (Response, error) {
	cc.calls.Add(1)
	if cc.delay > 0 {
		time.Sleep(cc.delay)
	}
	return cc.c.Call(req)
}
func (cc *countingClient) Close() error { return cc.c.Close() }

func hedgeFixture(idempotent bool) (*Registry, *countingClient, *countingClient) {
	reg := NewRegistry()
	h := func(req Request) Response { return OKResponse(map[string]string{"v": "ok"}) }
	if idempotent {
		reg.RegisterIdempotent("read", h)
	} else {
		reg.Register("read", h)
	}
	primary := &countingClient{c: NewLocalClient(reg)}
	secondary := &countingClient{c: NewLocalClient(reg)}
	return reg, primary, secondary
}

// TestHedgeFiresOnSlowPrimary: when the primary stalls past the
// trigger, the secondary attempt answers and the call returns well
// before the primary would have.
func TestHedgeFiresOnSlowPrimary(t *testing.T) {
	reg, primary, secondary := hedgeFixture(true)
	primary.delay = 300 * time.Millisecond
	hc := NewHedged(primary, secondary, HedgeOptions{
		After:        10 * time.Millisecond,
		IsIdempotent: reg.Idempotent,
	})
	start := time.Now()
	resp, err := hc.CallHedged(Request{Service: "read", Op: "get"})
	elapsed := time.Since(start)
	if err != nil || !resp.OK {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	if elapsed >= 250*time.Millisecond {
		t.Errorf("hedged call took %v, want well under the primary's 300ms stall", elapsed)
	}
	if secondary.calls.Load() != 1 {
		t.Errorf("secondary calls = %d, want 1", secondary.calls.Load())
	}
}

// TestHedgeSkipsFastPrimary: a primary answering before the trigger
// never spawns the duplicate call.
func TestHedgeSkipsFastPrimary(t *testing.T) {
	reg, primary, secondary := hedgeFixture(true)
	hc := NewHedged(primary, secondary, HedgeOptions{
		After:        200 * time.Millisecond,
		IsIdempotent: reg.Idempotent,
	})
	for i := 0; i < 5; i++ {
		if _, err := hc.CallHedged(Request{Service: "read", Op: "get"}); err != nil {
			t.Fatal(err)
		}
	}
	if n := secondary.calls.Load(); n != 0 {
		t.Errorf("secondary calls = %d, want 0 (no hedge for fast primaries)", n)
	}
	if n := primary.calls.Load(); n != 5 {
		t.Errorf("primary calls = %d, want 5", n)
	}
}

// TestHedgeRespectsIdempotencyGate: a service not registered as
// idempotent is never hedged, however slow the primary is.
func TestHedgeRespectsIdempotencyGate(t *testing.T) {
	reg, primary, secondary := hedgeFixture(false)
	primary.delay = 50 * time.Millisecond
	hc := NewHedged(primary, secondary, HedgeOptions{
		After:        time.Millisecond,
		IsIdempotent: reg.Idempotent,
	})
	if _, err := hc.CallHedged(Request{Service: "read", Op: "get"}); err != nil {
		t.Fatal(err)
	}
	if n := secondary.calls.Load(); n != 0 {
		t.Errorf("secondary calls = %d, want 0 for a non-idempotent service", n)
	}
	// A nil gate hedges nothing: strictly opt-in.
	hcNil := NewHedged(primary, secondary, HedgeOptions{After: time.Millisecond})
	if _, err := hcNil.CallHedged(Request{Service: "read", Op: "get"}); err != nil {
		t.Fatal(err)
	}
	if n := secondary.calls.Load(); n != 0 {
		t.Errorf("secondary calls = %d, want 0 under a nil gate", n)
	}
}

// errClient fails every call with a fixed error.
type errClient struct{ err error }

func (e *errClient) Call(Request) (Response, error) { return Response{}, e.err }
func (e *errClient) Close() error                   { return nil }

// TestHedgeSkipsSecondaryOnExpiredPrimary: a primary failing with a
// spent deadline is terminal for the whole call — the secondary must
// not be raced, since the caller has already given up and hedging would
// only add load during overload.
func TestHedgeSkipsSecondaryOnExpiredPrimary(t *testing.T) {
	reg, _, secondary := hedgeFixture(true)
	primary := &errClient{err: fmt.Errorf("vinci: call read.get: %w", ErrDeadlineExceeded)}
	hc := NewHedged(primary, secondary, HedgeOptions{
		After:        time.Second, // the fast failure, not the trigger, decides
		IsIdempotent: reg.Idempotent,
	})
	_, err := hc.CallHedged(Request{Service: "read", Op: "get"})
	if !IsDeadlineExceeded(err) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if n := secondary.calls.Load(); n != 0 {
		t.Errorf("secondary calls = %d, want 0 — hedging an expired call duplicates abandoned work", n)
	}
}

// TestHedgeConcurrentDeadlineStamping: both hedge attempts stamp their
// own remaining budget onto the shared request; with budgets and retries
// configured (the shipped wfnode -hedge setup) the attempts must not
// race on the caller's params map, and the caller's request must come
// back unmutated. Run under -race this is the regression test for the
// concurrent-map-write crash.
func TestHedgeConcurrentDeadlineStamping(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterIdempotent("read", func(req Request) Response {
		time.Sleep(10 * time.Millisecond) // keep the primary in flight past the trigger
		return OKResponse(map[string]string{"v": "ok"})
	})
	addr, shutdown := startServerWith(t, reg)
	defer shutdown()
	dial := func() Client {
		c, err := DialWith(addr, DialOptions{
			CallTimeout: 2 * time.Second,
			Retry:       RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, Seed: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	hc := NewHedged(dial(), dial(), HedgeOptions{
		After:        time.Millisecond,
		IsIdempotent: reg.Idempotent,
	})
	defer hc.Close()
	req := Request{Service: "read", Op: "get", Params: map[string]string{"key": "k1"}}
	for i := 0; i < 10; i++ {
		resp, err := hc.CallHedged(req)
		if err != nil || !resp.OK {
			t.Fatalf("iteration %d: resp=%+v err=%v", i, resp, err)
		}
	}
	if v, ok := req.Params[DeadlineParam]; ok {
		t.Errorf("caller's request was mutated: %s=%q", DeadlineParam, v)
	}
}

// TestHedgeFallsBackOnPrimaryShed: a shed from the primary triggers the
// secondary immediately instead of waiting out the trigger delay.
func TestHedgeFallsBackOnPrimaryShed(t *testing.T) {
	shedReg := NewRegistry()
	shedReg.RegisterIdempotent("read", func(req Request) Response {
		return OverloadedResponse("replica busy")
	})
	okReg := NewRegistry()
	okReg.RegisterIdempotent("read", func(req Request) Response {
		return OKResponse(map[string]string{"v": "fallback"})
	})
	hc := NewHedged(NewLocalClient(shedReg), NewLocalClient(okReg), HedgeOptions{
		After:        5 * time.Second, // must not matter: the shed short-circuits
		IsIdempotent: func(string) bool { return true },
	})
	start := time.Now()
	resp, err := hc.CallHedged(Request{Service: "read", Op: "get"})
	if err != nil || !resp.OK || resp.Fields["v"] != "fallback" {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	if e := time.Since(start); e > time.Second {
		t.Errorf("fallback took %v, want immediate", e)
	}
}
