package vinci

import (
	"encoding/binary"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestDispatchRecoversPanic: a panicking handler becomes an error
// response, not a crash.
func TestDispatchRecoversPanic(t *testing.T) {
	reg := NewRegistry()
	reg.Register("boom", func(Request) Response { panic("handler bug") })
	resp := reg.Dispatch(Request{Service: "boom", Op: "x"})
	if resp.OK || !strings.Contains(resp.Error, "panicked") || !strings.Contains(resp.Error, "handler bug") {
		t.Errorf("resp = %+v", resp)
	}
}

// TestServerSurvivesPanickingHandler: over TCP, the panic comes back as
// an error response and the same connection keeps working.
func TestServerSurvivesPanickingHandler(t *testing.T) {
	reg := echoRegistry()
	var calls atomic.Int32
	reg.Register("boom", func(Request) Response {
		if calls.Add(1) == 1 {
			panic("first call explodes")
		}
		return OKResponse(nil)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	defer func() { srv.Close(); <-done }()

	c, err := Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Call(Request{Service: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "panicked") {
		t.Errorf("panic response = %+v", resp)
	}
	// The connection survived the panic: both the panicking service and
	// others still answer.
	resp2, err := c.Call(Request{Service: "echo", Op: "after"})
	if err != nil || !resp2.OK {
		t.Errorf("call after panic: %+v, %v", resp2, err)
	}
}

// TestClientReconnectsAfterPartialFrame is the transport-desync
// regression test: a server that answers with a truncated frame and
// stalls must not poison the client. The deadline fires mid-frame, the
// client tears the connection down, and the retry succeeds on a fresh
// connection — observable as a second accept.
func TestClientReconnectsAfterPartialFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var accepts atomic.Int32
	hold := make(chan struct{})
	defer close(hold)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n := accepts.Add(1)
			go func(conn net.Conn, n int32) {
				defer conn.Close()
				for {
					payload, err := readFrame(conn)
					if err != nil {
						return
					}
					if n == 1 {
						// Promise a 64-byte response, deliver 8, stall:
						// the client's deadline fires mid-frame.
						var hdr [4]byte
						binary.BigEndian.PutUint32(hdr[:], 64)
						conn.Write(hdr[:])
						conn.Write([]byte("partial!"))
						<-hold
						return
					}
					req, err := decodeRequest(payload)
					if err != nil {
						return
					}
					out, _ := encodeResponse(OKResponse(map[string]string{"op": req.Op}))
					writeFrame(conn, out)
				}
			}(conn, n)
		}
	}()

	// AttemptTimeout bounds the stalled first exchange so the total
	// budget still has room for the retry on a fresh connection.
	c, err := DialWith(ln.Addr().String(), DialOptions{
		CallTimeout:    600 * time.Millisecond,
		AttemptTimeout: 150 * time.Millisecond,
		Retry:          RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Call(Request{Service: "echo", Op: "hello"})
	if err != nil {
		t.Fatalf("call through partial-frame server: %v", err)
	}
	if !resp.OK || resp.Fields["op"] != "hello" {
		t.Errorf("resp = %+v", resp)
	}
	if got := accepts.Load(); got != 2 {
		t.Errorf("accepts = %d, want 2 (teardown must force a fresh connection)", got)
	}
}

// TestClientRetriesFailedDial: a dialer that fails at first hands the
// retry loop a chance to connect; the call succeeds once it does.
func TestClientRetriesFailedDial(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()

	var dials atomic.Int32
	opts := DialOptions{
		CallTimeout: time.Second,
		Retry:       RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, Seed: 7},
		Dialer: func(a string) (net.Conn, error) {
			// First redial attempt inside Call fails; later ones connect.
			if n := dials.Add(1); n == 2 {
				return nil, &net.OpError{Op: "dial", Err: &timeoutErr{}}
			}
			return net.DialTimeout("tcp", a, time.Second)
		},
	}
	c, err := DialWith(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Break the live connection under the client so the next call must
	// redial: the first redial fails, the second succeeds.
	c.(*tcpClient).mu.Lock()
	c.(*tcpClient).conn.Close()
	c.(*tcpClient).mu.Unlock()

	resp, err := c.Call(Request{Service: "echo", Op: "back"})
	if err != nil || !resp.OK {
		t.Fatalf("call after broken conn: %+v, %v", resp, err)
	}
	if dials.Load() < 3 {
		t.Errorf("dials = %d, want ≥3 (initial + failed redial + good redial)", dials.Load())
	}
}

type timeoutErr struct{}

func (*timeoutErr) Error() string   { return "synthetic timeout" }
func (*timeoutErr) Timeout() bool   { return true }
func (*timeoutErr) Temporary() bool { return true }

// TestCallReportsExhaustedRetries: when every attempt fails the error
// names the operation and attempt count and wraps a retryable cause.
func TestCallReportsExhaustedRetries(t *testing.T) {
	opts := DialOptions{
		Retry: RetryPolicy{MaxAttempts: 3, Seed: 1},
		Dialer: func(string) (net.Conn, error) {
			return nil, &timeoutErr{}
		},
	}
	if _, err := DialWith("127.0.0.1:1", opts); err == nil {
		t.Fatal("eager dial through failing dialer should error")
	}

	// Lazy path: a client whose connection broke keeps failing to
	// redial and reports the exhausted attempts.
	c := &tcpClient{addr: "127.0.0.1:1", opts: opts, rng: opts.Retry.newRand()}
	_, err := c.Call(Request{Service: "echo", Op: "x"})
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("err = %v", err)
	}
	if !IsRetryable(err) {
		t.Errorf("exhausted-retries error should still classify retryable: %v", err)
	}
}

// TestServerCloseDrainsInFlight: Close must wait for a response already
// being computed to be written before returning.
func TestServerCloseDrainsInFlight(t *testing.T) {
	reg := NewRegistry()
	started := make(chan struct{})
	reg.Register("slow", func(Request) Response {
		close(started)
		time.Sleep(120 * time.Millisecond)
		return OKResponse(map[string]string{"done": "1"})
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); srv.Serve(ln) }()

	c, err := DialWith(ln.Addr().String(), DialOptions{CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type result struct {
		resp Response
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := c.Call(Request{Service: "slow"})
		got <- result{resp, err}
	}()

	// Close while the handler is still sleeping: the server must finish
	// the exchange (drain) rather than cut the connection.
	<-started
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		srv.Close()
	}()

	r := <-got
	if r.err != nil || !r.resp.OK || r.resp.Fields["done"] != "1" {
		t.Fatalf("in-flight call during Close: %+v, %v", r.resp, r.err)
	}
	<-closed
	<-serveDone
}

// TestBackoffDeterministicUnderSeed: the jittered backoff schedule is a
// pure function of the seed.
func TestBackoffDeterministicUnderSeed(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Jitter: 0.5, Seed: 42}
	schedule := func() []time.Duration {
		rng := p.newRand()
		var out []time.Duration
		for retry := 1; retry <= 5; retry++ {
			out = append(out, p.backoffFor(retry, rng))
		}
		return out
	}
	a, b := schedule(), schedule()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retry %d: %v vs %v (same seed must give same schedule)", i+1, a[i], b[i])
		}
	}
	// Jitter of 0.5 around an 80ms cap never exceeds 120ms.
	for i, d := range a {
		if d <= 0 || d > 120*time.Millisecond {
			t.Errorf("retry %d backoff %v out of range", i+1, d)
		}
	}
}

// TestBackoffExponentialNoJitter: without jitter the schedule doubles
// and caps.
func TestBackoffExponentialNoJitter(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 35 * time.Millisecond}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 35 * time.Millisecond, 35 * time.Millisecond}
	for i, w := range want {
		if got := p.backoffFor(i+1, nil); got != w {
			t.Errorf("backoffFor(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestIsRetryableClassification pins the error taxonomy.
func TestIsRetryableClassification(t *testing.T) {
	if IsRetryable(nil) {
		t.Error("nil is not retryable")
	}
	if !IsRetryable(&RetryableError{Op: "read", Err: &timeoutErr{}}) {
		t.Error("RetryableError must be retryable")
	}
	if !IsRetryable(&timeoutErr{}) {
		t.Error("timeouts must be retryable")
	}
	if IsRetryable(errOpaque) {
		t.Error("plain application errors are not retryable")
	}
}

var errOpaque = &opaqueErr{}

type opaqueErr struct{}

func (*opaqueErr) Error() string { return "opaque" }
