// Package disambig implements the spot disambiguator: for each occurrence
// of a subject term it decides whether the occurrence really refers to the
// intended subject ("SUN" the company vs. "Sunday").
//
// Following the paper, the decision relies on user-defined sets of terms
// positively (on-topic) and negatively (off-topic) related to the subject
// domain. For each spot the disambiguator computes a score for a local
// context window around the spot and a global score for the whole
// document, weighting terms by TF·IDF when corpus statistics are
// available. If the global score passes a threshold, every spot on the
// page is considered on-topic; otherwise each spot is kept only if its
// combined local+global score passes a second threshold.
package disambig

import (
	"strings"

	"webfountain/internal/spotter"
	"webfountain/internal/stats"
	"webfountain/internal/tokenize"
)

// Config defines one subject's disambiguation resources.
type Config struct {
	// OnTopic are terms whose presence supports the intended reading.
	OnTopic []string
	// OffTopic are terms whose presence indicates a different sense.
	OffTopic []string
	// GlobalThreshold is the whole-document score above which all spots
	// are accepted. Zero selects a sensible default.
	GlobalThreshold float64
	// LocalThreshold is the combined local+global score a single spot
	// needs when the document as a whole is inconclusive.
	LocalThreshold float64
	// LocalWindow is the number of tokens on each side of a spot that form
	// its local context (default 10).
	LocalWindow int
}

// Disambiguator filters spots down to on-topic occurrences.
type Disambiguator struct {
	cfg      Config
	onTopic  map[string]bool
	offTopic map[string]bool
	// idf holds optional corpus-level inverse document frequencies.
	idf     map[string]float64
	haveIDF bool
}

// New compiles a disambiguator from the configuration.
func New(cfg Config) *Disambiguator {
	if cfg.LocalWindow == 0 {
		cfg.LocalWindow = 10
	}
	if cfg.GlobalThreshold == 0 {
		cfg.GlobalThreshold = 2.0
	}
	if cfg.LocalThreshold == 0 {
		cfg.LocalThreshold = 1.0
	}
	d := &Disambiguator{
		cfg:      cfg,
		onTopic:  make(map[string]bool, len(cfg.OnTopic)),
		offTopic: make(map[string]bool, len(cfg.OffTopic)),
	}
	for _, t := range cfg.OnTopic {
		d.onTopic[strings.ToLower(t)] = true
	}
	for _, t := range cfg.OffTopic {
		d.offTopic[strings.ToLower(t)] = true
	}
	return d
}

// SetCorpusStats installs document frequencies so scores are TF·IDF
// weighted; without it every context term weighs 1.
func (d *Disambiguator) SetCorpusStats(docFreq map[string]int, numDocs int) {
	d.idf = make(map[string]float64, len(docFreq))
	for term, df := range docFreq {
		d.idf[strings.ToLower(term)] = stats.IDF(df, numDocs)
	}
	d.haveIDF = numDocs > 0
}

func (d *Disambiguator) weight(term string) float64 {
	if !d.haveIDF {
		return 1
	}
	if w, ok := d.idf[term]; ok && w > 0 {
		return w
	}
	return 1
}

// Score computes the on-topic evidence of a token window: the weighted
// count of on-topic terms minus the weighted count of off-topic terms.
func (d *Disambiguator) Score(tokens []tokenize.Token) float64 {
	score := 0.0
	for _, t := range tokens {
		lw := t.Lower()
		switch {
		case d.onTopic[lw]:
			score += d.weight(lw)
		case d.offTopic[lw]:
			score -= d.weight(lw)
		}
	}
	return score
}

// GlobalScore scores the full document.
func (d *Disambiguator) GlobalScore(tokens []tokenize.Token) float64 {
	return d.Score(tokens)
}

// LocalScore scores the window of cfg.LocalWindow tokens on each side of
// the spot.
func (d *Disambiguator) LocalScore(tokens []tokenize.Token, s spotter.Spot) float64 {
	lo := s.Start - d.cfg.LocalWindow
	if lo < 0 {
		lo = 0
	}
	hi := s.End + d.cfg.LocalWindow
	if hi > len(tokens) {
		hi = len(tokens)
	}
	return d.Score(tokens[lo:hi])
}

// Filter returns the subset of spots judged on-topic, applying the
// two-threshold rule from the paper.
func (d *Disambiguator) Filter(tokens []tokenize.Token, spots []spotter.Spot) []spotter.Spot {
	if len(spots) == 0 {
		return nil
	}
	global := d.GlobalScore(tokens)
	if global >= d.cfg.GlobalThreshold {
		out := make([]spotter.Spot, len(spots))
		copy(out, spots)
		return out
	}
	var out []spotter.Spot
	for _, s := range spots {
		if d.LocalScore(tokens, s)+global >= d.cfg.LocalThreshold {
			out = append(out, s)
		}
	}
	return out
}

// OnTopicDocument reports whether the whole document is about the subject
// domain, per the global threshold alone.
func (d *Disambiguator) OnTopicDocument(tokens []tokenize.Token) bool {
	return d.GlobalScore(tokens) >= d.cfg.GlobalThreshold
}
