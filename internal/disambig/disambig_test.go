package disambig

import (
	"testing"

	"webfountain/internal/spotter"
	"webfountain/internal/tokenize"
)

var tk = tokenize.New()

func sunConfig() Config {
	return Config{
		OnTopic:         []string{"microsystems", "java", "server", "workstation", "solaris"},
		OffTopic:        []string{"sunday", "weather", "sunshine", "sky", "beach"},
		GlobalThreshold: 2,
		LocalThreshold:  1,
		LocalWindow:     8,
	}
}

func sunSpots(tokens []tokenize.Token) []spotter.Spot {
	sp := spotter.New([]spotter.SynonymSet{{ID: "sun", Terms: []string{"SUN"}}})
	return sp.SpotTokens(tokens)
}

func TestGlobalOnTopicAcceptsAllSpots(t *testing.T) {
	d := New(sunConfig())
	text := "SUN released a new Solaris server. The Java workstation line from SUN also grew. Microsystems revenue rose."
	toks := tk.Tokenize(text)
	spots := sunSpots(toks)
	if len(spots) != 2 {
		t.Fatalf("precondition: %d spots", len(spots))
	}
	got := d.Filter(toks, spots)
	if len(got) != 2 {
		t.Errorf("on-topic doc should keep all spots, got %d", len(got))
	}
}

func TestOffTopicDocumentRejectsSpots(t *testing.T) {
	d := New(sunConfig())
	text := "The SUN was bright on Sunday. We enjoyed the sunshine at the beach under a clear sky."
	toks := tk.Tokenize(text)
	spots := sunSpots(toks)
	if len(spots) != 1 {
		t.Fatalf("precondition: %d spots", len(spots))
	}
	got := d.Filter(toks, spots)
	if len(got) != 0 {
		t.Errorf("off-topic doc should reject spots, got %+v", got)
	}
}

func TestLocalContextRescuesSpot(t *testing.T) {
	d := New(sunConfig())
	// Document globally mixed: enough off-topic noise to fail the global
	// threshold, but the spot sits right next to strong on-topic terms.
	text := "The weather on Sunday was fine with sunshine at the beach. " +
		"Meanwhile SUN shipped Solaris on a new server and Java workstation."
	toks := tk.Tokenize(text)
	spots := sunSpots(toks)
	if len(spots) != 1 {
		t.Fatalf("precondition: %d spots (%v)", len(spots), spots)
	}
	if d.OnTopicDocument(toks) {
		t.Fatal("precondition: document should be globally inconclusive")
	}
	got := d.Filter(toks, spots)
	if len(got) != 1 {
		t.Errorf("local context should rescue the spot")
	}
}

func TestScoreWeighting(t *testing.T) {
	d := New(sunConfig())
	toks := tk.Tokenize("java server sunday")
	if got := d.Score(toks); got != 1 { // +1 +1 -1
		t.Errorf("Score = %v, want 1", got)
	}
}

func TestTFIDFWeightsChangeScores(t *testing.T) {
	d := New(sunConfig())
	toks := tk.Tokenize("java sunday")
	plain := d.Score(toks)
	// "java" rare (high IDF), "sunday" ubiquitous (low IDF).
	d.SetCorpusStats(map[string]int{"java": 2, "sunday": 900}, 1000)
	weighted := d.Score(toks)
	if weighted <= plain {
		t.Errorf("weighted score %v should exceed plain %v when the on-topic term is rare", weighted, plain)
	}
}

func TestFilterEmptySpots(t *testing.T) {
	d := New(sunConfig())
	if got := d.Filter(tk.Tokenize("anything"), nil); got != nil {
		t.Errorf("got %+v", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := New(Config{OnTopic: []string{"x"}})
	if d.cfg.LocalWindow != 10 || d.cfg.GlobalThreshold != 2 || d.cfg.LocalThreshold != 1 {
		t.Errorf("defaults = %+v", d.cfg)
	}
}

func TestLocalScoreWindowClamps(t *testing.T) {
	d := New(sunConfig())
	toks := tk.Tokenize("SUN java")
	s := spotter.Spot{Start: 0, End: 1}
	if got := d.LocalScore(toks, s); got != 1 {
		t.Errorf("LocalScore = %v, want 1", got)
	}
}
