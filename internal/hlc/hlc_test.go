package hlc

import (
	"sync"
	"testing"
	"time"
)

// fakeTime is a settable time source for driving clock edge cases.
type fakeTime struct {
	mu sync.Mutex
	ms int64
}

func (f *fakeTime) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return time.UnixMilli(f.ms)
}

func (f *fakeTime) set(ms int64) {
	f.mu.Lock()
	f.ms = ms
	f.mu.Unlock()
}

func TestPackRoundTrip(t *testing.T) {
	cases := []struct {
		ms      int64
		logical uint32
	}{
		{0, 0},
		{1, 1},
		{1700000000000, 42},
		{1 << 47, 65535},
	}
	for _, c := range cases {
		ts := Pack(c.ms, c.logical)
		if got := Physical(ts); got != c.ms {
			t.Errorf("Physical(Pack(%d, %d)) = %d", c.ms, c.logical, got)
		}
		if got := Logical(ts); got != c.logical {
			t.Errorf("Logical(Pack(%d, %d)) = %d", c.ms, c.logical, got)
		}
	}
}

func TestPackOrdersByPhysicalThenLogical(t *testing.T) {
	a := Pack(100, 65535)
	b := Pack(101, 0)
	if Compare(a, b) != -1 {
		t.Fatalf("later physical must beat any logical: Compare(%s, %s) = %d", Format(a), Format(b), Compare(a, b))
	}
	c := Pack(100, 3)
	d := Pack(100, 4)
	if Compare(c, d) != -1 || Compare(d, c) != 1 || Compare(c, c) != 0 {
		t.Fatalf("equal physical must order by logical")
	}
}

func TestNowAdvancesWithWallClock(t *testing.T) {
	ft := &fakeTime{ms: 1000}
	c := New(ft.now)
	ts1 := c.Now()
	if Physical(ts1) != 1000 || Logical(ts1) != 0 {
		t.Fatalf("first Now = %s, want 1000.0", Format(ts1))
	}
	ft.set(1001)
	ts2 := c.Now()
	if Physical(ts2) != 1001 || Logical(ts2) != 0 {
		t.Fatalf("Now after wall advance = %s, want 1001.0", Format(ts2))
	}
}

func TestNowSamePhysicalBumpsLogical(t *testing.T) {
	ft := &fakeTime{ms: 1000}
	c := New(ft.now)
	prev := c.Now()
	for i := 0; i < 100; i++ {
		ts := c.Now()
		if ts <= prev {
			t.Fatalf("Now not strictly increasing: %s then %s", Format(prev), Format(ts))
		}
		if Physical(ts) != 1000 {
			t.Fatalf("physical drifted without wall movement: %s", Format(ts))
		}
		prev = ts
	}
	if Logical(prev) != 100 {
		t.Fatalf("logical = %d after 100 same-ms ticks, want 100", Logical(prev))
	}
}

func TestClockGoingBackwards(t *testing.T) {
	ft := &fakeTime{ms: 5000}
	c := New(ft.now)
	before := c.Now()

	// Wall clock steps back 3 seconds (NTP correction). Timestamps must
	// keep increasing, pinned at the old physical time with the logical
	// counter absorbing the regression.
	ft.set(2000)
	prev := before
	for i := 0; i < 10; i++ {
		ts := c.Now()
		if ts <= prev {
			t.Fatalf("backwards wall clock broke monotonicity: %s then %s", Format(prev), Format(ts))
		}
		if Physical(ts) != Physical(before) {
			t.Fatalf("physical moved while wall is behind: %s", Format(ts))
		}
		prev = ts
	}

	// Offset should surface the ~3s skew.
	if off := c.Offset(); off < 2900*time.Millisecond || off > 3100*time.Millisecond {
		t.Fatalf("Offset = %v, want ~3s", off)
	}

	// Once the wall clock catches up past the pinned physical time, the
	// clock resumes tracking it and the skew disappears.
	ft.set(6000)
	ts := c.Now()
	if Physical(ts) != 6000 || Logical(ts) != 0 {
		t.Fatalf("Now after wall catch-up = %s, want 6000.0", Format(ts))
	}
	if off := c.Offset(); off != 0 {
		t.Fatalf("Offset after catch-up = %v, want 0", off)
	}
}

func TestObserveRemoteAhead(t *testing.T) {
	ft := &fakeTime{ms: 1000}
	c := New(ft.now)
	c.Now()

	remote := Pack(9000, 7) // peer's wall clock far ahead
	got := c.Observe(remote)
	if got <= remote {
		t.Fatalf("Observe(%s) = %s, want > remote", Format(remote), Format(got))
	}
	if Physical(got) != 9000 || Logical(got) != 8 {
		t.Fatalf("Observe(%s) = %s, want 9000.8", Format(remote), Format(got))
	}

	// Subsequent local events must order after the observed one.
	ts := c.Now()
	if ts <= remote || ts <= got {
		t.Fatalf("Now after Observe not ordered: %s", Format(ts))
	}
}

func TestObserveRemoteBehindIsNoOpForOrdering(t *testing.T) {
	ft := &fakeTime{ms: 5000}
	c := New(ft.now)
	local := c.Now()
	got := c.Observe(Pack(1000, 99))
	if got <= local {
		t.Fatalf("Observe must still advance: %s then %s", Format(local), Format(got))
	}
	if Physical(got) != 5000 {
		t.Fatalf("stale remote dragged physical: %s", Format(got))
	}
}

func TestLogicalOverflowCarriesIntoPhysical(t *testing.T) {
	ft := &fakeTime{ms: 1000}
	c := New(ft.now)
	// Drive the clock to the top of the logical range via a crafted
	// remote observation, then force one more same-ms tick.
	c.Observe(Pack(1000, 65534)) // last becomes 1000.65535
	if Logical(c.Last()) != 65535 {
		t.Fatalf("setup: Last = %s", Format(c.Last()))
	}
	ts := c.Now()
	if Physical(ts) != 1001 || Logical(ts) != 0 {
		t.Fatalf("overflow carry: Now = %s, want 1001.0", Format(ts))
	}
	if ts <= Pack(1000, 65535) {
		t.Fatalf("overflow broke monotonicity")
	}
}

func TestLastDoesNotAdvance(t *testing.T) {
	ft := &fakeTime{ms: 1000}
	c := New(ft.now)
	ts := c.Now()
	if c.Last() != ts || c.Last() != ts {
		t.Fatalf("Last advanced the clock")
	}
}

func TestConcurrentMonotonicity(t *testing.T) {
	ft := &fakeTime{ms: 1000}
	c := New(ft.now)
	const goroutines = 8
	const perG = 500
	results := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]uint64, 0, perG)
			for i := 0; i < perG; i++ {
				if i%3 == 0 {
					out = append(out, c.Observe(Pack(1000, uint32(i%100))))
				} else {
					out = append(out, c.Now())
				}
			}
			results[g] = out
		}(g)
	}
	wg.Wait()

	seen := make(map[uint64]bool, goroutines*perG)
	for g, out := range results {
		for i := 1; i < len(out); i++ {
			if out[i] <= out[i-1] {
				t.Fatalf("goroutine %d: non-monotonic %s then %s", g, Format(out[i-1]), Format(out[i]))
			}
		}
		for _, ts := range out {
			if seen[ts] {
				t.Fatalf("duplicate timestamp issued: %s", Format(ts))
			}
			seen[ts] = true
		}
	}
}
