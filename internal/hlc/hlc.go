// Package hlc implements hybrid logical clocks — the versioning scheme
// the replicated tier stamps on every write so that "newer" is
// meaningful across routers, across handoff catch-up, and across
// restarts. A timestamp packs a physical component (Unix milliseconds)
// with a logical counter into one uint64:
//
//	[48 bits physical ms][16 bits logical]
//
// so plain uint64 comparison IS the happens-before comparison, and the
// timestamp travels in the store's existing Entity.Version field, WAL
// records and replica frames without a wire change. The packing also
// makes the classic HLC update rules single-instruction: "same physical
// time, next logical" is just +1, and a logical counter that overflows
// carries into the physical field — one millisecond of artificial skew
// instead of a wrapped counter that would re-order writes.
//
// Two properties matter to the consistency protocol:
//
//  1. Monotonicity: a clock never issues a timestamp <= one it issued
//     or observed before, even when the wall clock steps backwards
//     (NTP correction, VM migration). The physical component simply
//     stops tracking the wall clock until real time catches up, and
//     Offset exposes how far ahead the clock is running so operators
//     can spot the skew.
//  2. Causality: Observe folds a remote timestamp into the local clock,
//     so any write stamped after a read (or a peer sync) that saw
//     version v gets a version > v. Routers observe every version they
//     read and every peer clock they sync with.
package hlc

import (
	"fmt"
	"sync"
	"time"
)

// logicalBits is the width of the logical counter in a packed
// timestamp; the remaining 48 bits hold Unix milliseconds (good until
// the year 10889).
const logicalBits = 16

// Pack builds a timestamp from a physical component (Unix ms) and a
// logical counter.
func Pack(unixMs int64, logical uint32) uint64 {
	return uint64(unixMs)<<logicalBits | uint64(logical)&(1<<logicalBits-1)
}

// Physical extracts a timestamp's physical component as Unix ms.
func Physical(ts uint64) int64 { return int64(ts >> logicalBits) }

// Logical extracts a timestamp's logical counter.
func Logical(ts uint64) uint32 { return uint32(ts & (1<<logicalBits - 1)) }

// Compare orders two timestamps: -1, 0 or +1. Packed timestamps order
// exactly as uint64s; the function exists so call sites read as version
// comparisons rather than integer math.
func Compare(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Format renders a timestamp for logs: "<unix-ms>.<logical>".
func Format(ts uint64) string {
	return fmt.Sprintf("%d.%d", Physical(ts), Logical(ts))
}

// Clock is a hybrid logical clock. The zero value is not usable; build
// one with New. All methods are safe for concurrent use.
type Clock struct {
	mu   sync.Mutex
	last uint64
	now  func() time.Time
}

// New builds a clock over the given time source (nil selects
// time.Now). The clock starts at the current wall time with logical 0.
func New(now func() time.Time) *Clock {
	if now == nil {
		now = time.Now
	}
	return &Clock{now: now}
}

// wall returns the current wall time as a packed timestamp with
// logical 0.
func (c *Clock) wall() uint64 { return Pack(c.now().UnixMilli(), 0) }

// Now issues the timestamp for a local event (a write being stamped).
// It is strictly greater than every timestamp the clock has issued or
// observed, and tracks the wall clock whenever the wall clock is ahead.
func (c *Clock) Now() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := c.last + 1 // same physical ms: bump logical (overflow carries into physical)
	if w := c.wall(); w > next {
		next = w
	}
	c.last = next
	return next
}

// Observe folds a remote timestamp into the clock (a version read from
// a replica, a peer router's clock) and returns the clock's new value,
// which is strictly greater than both the remote timestamp and every
// previous local one. Call it on receipt; the next Now is then
// guaranteed to order after the observed event.
func (c *Clock) Observe(remote uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := c.last + 1
	if r := remote + 1; r > next {
		next = r
	}
	if w := c.wall(); w > next {
		next = w
	}
	c.last = next
	return next
}

// Last returns the newest timestamp the clock has issued or observed,
// without advancing it.
func (c *Clock) Last() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Offset reports how far the clock's physical component runs ahead of
// the wall clock. Near zero is healthy; a large positive offset means
// this process observed timestamps from a peer whose wall clock is
// ahead (or its own clock stepped back), and versions are drifting away
// from real time — the signal health reports surface per node.
func (c *Clock) Offset() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	ahead := Physical(c.last) - c.now().UnixMilli()
	if ahead < 0 {
		ahead = 0 // behind the wall clock just means idle, not skew
	}
	return time.Duration(ahead) * time.Millisecond
}
