// Package tokenize implements the WebFountain tokenizer miner: it turns
// raw document text into a stream of tokens with byte offsets, and groups
// tokens into sentences.
//
// The tokenizer is the first entity-level miner in every WebFountain
// pipeline; all downstream miners (POS tagging, chunking, spotting,
// sentiment analysis) consume its output rather than raw text, so offsets
// recorded here are the coordinate system for every later annotation.
//
// The implementation is a deterministic rule-based English tokenizer. It
// handles contractions ("don't" -> "do", "n't"), possessives ("camera's"
// -> "camera", "'s"), common abbreviations (so "Dr. Wilson" does not end a
// sentence), numbers with decimal points, and hyphenated words.
package tokenize

import (
	"strings"
	"unicode"
)

// Kind classifies a token's surface form.
type Kind int

// Token kinds.
const (
	Word   Kind = iota // alphabetic word, possibly hyphenated
	Number             // integer or decimal number
	Punct              // punctuation mark
	Symbol             // any other non-space symbol
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Word:
		return "Word"
	case Number:
		return "Number"
	case Punct:
		return "Punct"
	case Symbol:
		return "Symbol"
	}
	return "Unknown"
}

// Token is a single lexical unit with its position in the source text.
// Start and End are byte offsets such that text[Start:End] == Text for
// tokens that appear verbatim in the input (contraction splits share the
// span of the original surface form).
type Token struct {
	Text  string
	Start int
	End   int
	Kind  Kind
}

// IsWord reports whether the token is alphabetic.
func (t Token) IsWord() bool { return t.Kind == Word }

// Lower returns the lower-cased token text.
func (t Token) Lower() string { return strings.ToLower(t.Text) }

// IsCapitalized reports whether the token starts with an upper-case letter.
func (t Token) IsCapitalized() bool {
	for _, r := range t.Text {
		return unicode.IsUpper(r)
	}
	return false
}

// Sentence is a contiguous run of tokens ending at a sentence boundary.
type Sentence struct {
	// Index is the zero-based sentence number within the document.
	Index int
	// Tokens are the tokens of the sentence in order.
	Tokens []Token
	// Start and End are byte offsets of the sentence span in the source.
	Start int
	End   int
}

// Text reconstructs a normalized (single-spaced) rendering of the sentence.
func (s Sentence) Text() string {
	var b strings.Builder
	for i, t := range s.Tokens {
		if i > 0 && !noSpaceBefore(t.Text) && !noSpaceAfter(s.Tokens[i-1].Text) {
			b.WriteByte(' ')
		}
		b.WriteString(t.Text)
	}
	return b.String()
}

func noSpaceBefore(tok string) bool {
	switch tok {
	case ".", ",", ";", ":", "!", "?", ")", "]", "}", "'s", "n't", "'re", "'ve", "'ll", "'d", "'m", "'", "%":
		return true
	}
	return false
}

func noSpaceAfter(tok string) bool {
	switch tok {
	case "(", "[", "{", "$":
		return true
	}
	return false
}

// abbreviations that end with a period but do not terminate a sentence.
var abbreviations = map[string]bool{
	"mr.": true, "mrs.": true, "ms.": true, "dr.": true, "prof.": true,
	"sr.": true, "jr.": true, "st.": true, "co.": true, "corp.": true,
	"inc.": true, "ltd.": true, "vs.": true, "etc.": true, "e.g.": true,
	"i.e.": true, "u.s.": true, "u.k.": true, "no.": true, "fig.": true,
	"jan.": true, "feb.": true, "mar.": true, "apr.": true, "jun.": true,
	"jul.": true, "aug.": true, "sep.": true, "sept.": true, "oct.": true,
	"nov.": true, "dec.": true, "approx.": true, "dept.": true, "est.": true,
	"gen.": true, "gov.": true, "hon.": true, "rev.": true, "sgt.": true,
	"capt.": true, "col.": true, "lt.": true, "maj.": true,
}

// contractions maps a lower-cased suffix to the split point from the end.
// "don't" has suffix "n't" (3 runes); "it's" has suffix "'s" (2 runes).
var contractionSuffixes = []string{"n't", "'re", "'ve", "'ll", "'d", "'m", "'s"}

// Tokenizer converts text into tokens and sentences. The zero value is
// ready to use.
type Tokenizer struct{}

// New returns a ready-to-use Tokenizer.
func New() *Tokenizer { return &Tokenizer{} }

// Tokenize splits text into tokens with byte offsets.
func (tk *Tokenizer) Tokenize(text string) []Token {
	return tk.AppendTokens(nil, text)
}

// AppendTokens appends the tokens of text to dst and returns the extended
// slice. Callers that retain dst across documents (resetting with dst[:0])
// amortize token storage to zero steady-state allocations.
func (tk *Tokenizer) AppendTokens(dst []Token, text string) []Token {
	tokens := dst
	n := len(text)
	i := 0
	for i < n {
		c := text[i]
		switch {
		case isSpaceByte(c):
			i++
		case isDigitByte(c):
			j := i + 1
			for j < n && (isDigitByte(text[j]) || (text[j] == '.' && j+1 < n && isDigitByte(text[j+1])) || text[j] == ',') {
				j++
			}
			tokens = append(tokens, Token{Text: text[i:j], Start: i, End: j, Kind: Number})
			i = j
		case hasURLPrefix(text[i:]):
			j := i
			for j < n && !isSpaceByte(text[j]) {
				j++
			}
			// Trailing sentence punctuation belongs to the sentence, not
			// the URL.
			for j > i && (text[j-1] == '.' || text[j-1] == ',' || text[j-1] == ')' || text[j-1] == ';') {
				j--
			}
			tokens = append(tokens, Token{Text: text[i:j], Start: i, End: j, Kind: Symbol})
			i = j
		case isEmailAhead(text, i):
			j := i
			for j < n && (isLetterByte(text[j]) || isDigitByte(text[j]) ||
				text[j] == '.' || text[j] == '@' || text[j] == '-' || text[j] == '_') {
				j++
			}
			for j > i && text[j-1] == '.' {
				j--
			}
			tokens = append(tokens, Token{Text: text[i:j], Start: i, End: j, Kind: Symbol})
			i = j
		case isLetterByte(c):
			j := i + 1
			for j < n && (isLetterByte(text[j]) || isDigitByte(text[j]) ||
				(text[j] == '-' && j+1 < n && isLetterByte(text[j+1])) ||
				(text[j] == '\'' && j+1 < n && isLetterByte(text[j+1])) ||
				(text[j] == '.' && j+1 < n && isLetterByte(text[j+1]) && looksLikeAbbrevSoFar(text[i:j+1]))) {
				j++
			}
			// Trailing period kept only for known abbreviations, so that
			// "etc." stays one token but "camera." splits.
			if j < n && text[j] == '.' && isAbbreviation(text[i:j+1]) {
				j++
			}
			tokens = appendWordTokens(tokens, text[i:j], i)
			i = j
		default:
			// Single-character punctuation or symbol token. Collapse runs
			// of the same sentence-final punctuation ("!!!" -> "!").
			j := i + 1
			if c == '.' || c == '!' || c == '?' {
				for j < n && text[j] == c {
					j++
				}
			}
			kind := Symbol
			if isPunctByte(c) {
				kind = Punct
			}
			// text[i:i+1] rather than string(c): the one-byte substring
			// shares the input's memory, so punctuation tokens cost no
			// allocation.
			tokens = append(tokens, Token{Text: text[i : i+1], Start: i, End: j, Kind: kind})
			i = j
		}
	}
	return tokens
}

// looksLikeAbbrevSoFar reports whether a partial word containing an
// internal period could still be an abbreviation like "e.g" or "U.S":
// single letters separated by periods.
func looksLikeAbbrevSoFar(s string) bool {
	for len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	expectLetter := true
	for i := 0; i < len(s); i++ {
		if expectLetter {
			if s[i] == '.' {
				return false
			}
			expectLetter = false
		} else {
			if s[i] != '.' {
				return false
			}
			expectLetter = true
		}
	}
	return !expectLetter && len(s) > 0
}

// isAbbreviation reports whether s is a known abbreviation, folding ASCII
// case without allocating. The string(buf) map key conversion does not
// escape, so the lookup is allocation-free.
func isAbbreviation(s string) bool {
	if len(s) > 16 {
		return false
	}
	var buf [16]byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 {
			return abbreviations[strings.ToLower(s)]
		}
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		buf[i] = c
	}
	return abbreviations[string(buf[:len(s)])]
}

// appendWordTokens appends a word to dst, splitting possessives and
// contractions off the end. The pieces share the byte span boundaries of
// the original word.
func appendWordTokens(dst []Token, word string, start int) []Token {
	for _, suf := range contractionSuffixes {
		if len(word) > len(suf) && equalFoldASCII(word[len(word)-len(suf):], suf) {
			cut := len(word) - len(suf)
			return append(dst,
				Token{Text: word[:cut], Start: start, End: start + cut, Kind: Word},
				Token{Text: word[cut:], Start: start + cut, End: start + len(word), Kind: Word})
		}
	}
	return append(dst, Token{Text: word, Start: start, End: start + len(word), Kind: Word})
}

// Sentences tokenizes text and groups the tokens into sentences.
func (tk *Tokenizer) Sentences(text string) []Sentence {
	tokens := tk.Tokenize(text)
	return tk.Split(tokens)
}

// Split groups an existing token stream into sentences. A sentence ends at
// '.', '!' or '?' unless the period belongs to a known abbreviation, or at
// the end of input.
func (tk *Tokenizer) Split(tokens []Token) []Sentence {
	return tk.AppendSentences(nil, tokens)
}

// AppendSentences appends the sentences of a token stream to dst and
// returns the extended slice. Sentences partition the stream in order, so
// each Sentence.Tokens is a capped subslice of tokens — no token copies.
// Sentence indexes restart at zero for this stream regardless of len(dst).
func (tk *Tokenizer) AppendSentences(dst []Sentence, tokens []Token) []Sentence {
	base := len(dst)
	start := 0
	flush := func(end int) {
		if end <= start {
			return
		}
		cur := tokens[start:end:end]
		dst = append(dst, Sentence{
			Index:  len(dst) - base,
			Tokens: cur,
			Start:  cur[0].Start,
			End:    cur[len(cur)-1].End,
		})
		start = end
	}
	for i, t := range tokens {
		if t.Kind == Punct && (t.Text == "." || t.Text == "!" || t.Text == "?") {
			// A period mid-number or abbreviation never reaches here (those
			// are folded into the preceding token), so this is a boundary —
			// unless the next token continues in lower case right away,
			// which suggests an unusual abbreviation we don't know.
			if t.Text == "." && i+1 < len(tokens) && tokens[i+1].Kind == Word && !tokens[i+1].IsCapitalized() {
				continue
			}
			flush(i + 1)
		}
	}
	flush(len(tokens))
	return dst
}

// hasURLPrefix reports whether the text starts with a URL scheme or a
// leading "www." — web pages are full of them and they must stay single
// tokens.
func hasURLPrefix(s string) bool {
	for _, p := range []string{"http://", "https://", "ftp://", "www."} {
		if len(s) > len(p) && equalFoldASCII(s[:len(p)], p) {
			return true
		}
	}
	return false
}

// isEmailAhead reports whether an email address starts at position i: a
// run of address characters containing '@' before the next space.
func isEmailAhead(text string, i int) bool {
	if !isLetterByte(text[i]) && !isDigitByte(text[i]) {
		return false
	}
	sawAt := false
	j := i
	for j < len(text) && (isLetterByte(text[j]) || isDigitByte(text[j]) ||
		text[j] == '.' || text[j] == '@' || text[j] == '-' || text[j] == '_') {
		if text[j] == '@' {
			if sawAt {
				return false
			}
			sawAt = true
		}
		j++
	}
	// Require a dot after the @ ("user@host.tld").
	if !sawAt {
		return false
	}
	at := i
	for text[at] != '@' {
		at++
	}
	for k := at + 1; k < j; k++ {
		if text[k] == '.' && k+1 < j {
			return true
		}
	}
	return false
}

// Fold appends the lower-cased form of s to dst and returns the extended
// slice. ASCII letters fold bytewise; a non-ASCII byte switches the
// remainder to full Unicode lowering. With a reused buffer the fold is
// allocation-free, and so is the map probe, because Go elides the
// conversion in m[string(b)]:
//
//	key := tokenize.Fold(buf[:0], t.Text)
//	v, ok := m[string(key)]
func Fold(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 {
			return append(dst, strings.ToLower(s[i:])...)
		}
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}

// EqualFold reports whether s equals lower under ASCII case folding. The
// second argument must already be lower-case; non-ASCII bytes compare
// verbatim.
func EqualFold(s, lower string) bool {
	if len(s) != len(lower) {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != lower[i] {
			return false
		}
	}
	return true
}

// FoldProbe probes a lower-case-keyed map with the case-folded form of s
// without allocating: the fold goes through a stack buffer and the
// string(buf) conversion in a map index is elided by the compiler.
// Non-ASCII or oversized keys fall back to strings.ToLower.
func FoldProbe[V any](m map[string]V, s string) (V, bool) {
	if len(s) <= 32 {
		ascii := true
		var buf [32]byte
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c >= 0x80 {
				ascii = false
				break
			}
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			buf[i] = c
		}
		if ascii {
			v, ok := m[string(buf[:len(s)])]
			return v, ok
		}
	}
	v, ok := m[strings.ToLower(s)]
	return v, ok
}

func equalFoldASCII(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}

func isDigitByte(c byte) bool { return c >= '0' && c <= '9' }

func isLetterByte(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isPunctByte(c byte) bool {
	switch c {
	case '.', ',', ';', ':', '!', '?', '(', ')', '[', ']', '{', '}', '"', '\'', '-', '/':
		return true
	}
	return false
}
