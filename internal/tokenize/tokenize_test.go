package tokenize

import (
	"strings"
	"testing"
	"testing/quick"
)

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeSimpleSentence(t *testing.T) {
	tk := New()
	got := texts(tk.Tokenize("This camera takes excellent pictures."))
	want := []string{"This", "camera", "takes", "excellent", "pictures", "."}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTokenizeContractions(t *testing.T) {
	tk := New()
	cases := []struct {
		in   string
		want []string
	}{
		{"don't", []string{"do", "n't"}},
		{"I'm happy", []string{"I", "'m", "happy"}},
		{"it's the camera's lens", []string{"it", "'s", "the", "camera", "'s", "lens"}},
		{"they're we've you'll I'd", []string{"they", "'re", "we", "'ve", "you", "'ll", "I", "'d"}},
		{"can't won't shouldn't", []string{"ca", "n't", "wo", "n't", "should", "n't"}},
	}
	for _, c := range cases {
		got := texts(tk.Tokenize(c.in))
		if strings.Join(got, "|") != strings.Join(c.want, "|") {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	tk := New()
	got := tk.Tokenize("The lens costs 1,299.99 dollars and weighs 2.5 pounds")
	var nums []string
	for _, tok := range got {
		if tok.Kind == Number {
			nums = append(nums, tok.Text)
		}
	}
	if len(nums) != 2 || nums[0] != "1,299.99" || nums[1] != "2.5" {
		t.Errorf("numbers = %v, want [1,299.99 2.5]", nums)
	}
}

func TestTokenizeHyphenated(t *testing.T) {
	tk := New()
	got := texts(tk.Tokenize("a state-of-the-art auto-focus system"))
	want := []string{"a", "state-of-the-art", "auto-focus", "system"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTokenizeAbbreviations(t *testing.T) {
	tk := New()
	toks := texts(tk.Tokenize("Prof. Wilson of American University e.g. U.S. markets"))
	joined := strings.Join(toks, "|")
	for _, want := range []string{"Prof.", "e.g.", "U.S."} {
		found := false
		for _, tok := range toks {
			if tok == want {
				found = true
			}
		}
		if !found {
			t.Errorf("expected token %q in %s", want, joined)
		}
	}
}

func TestTokenOffsets(t *testing.T) {
	tk := New()
	text := "The picture is flawless. The product fails."
	for _, tok := range tk.Tokenize(text) {
		if tok.Start < 0 || tok.End > len(text) || tok.Start >= tok.End {
			t.Fatalf("bad offsets for %+v", tok)
		}
		if tok.Kind == Word && !strings.HasPrefix(text[tok.Start:], tok.Text[:1]) {
			t.Errorf("offset mismatch for %+v: text[%d:]=%q", tok, tok.Start, text[tok.Start:tok.Start+1])
		}
	}
}

func TestSentenceSplitBasic(t *testing.T) {
	tk := New()
	got := tk.Sentences("The picture is flawless. The battery dies fast! Is the flash weak?")
	if len(got) != 3 {
		t.Fatalf("got %d sentences, want 3", len(got))
	}
	if got[0].Tokens[0].Text != "The" || got[1].Tokens[1].Text != "battery" {
		t.Errorf("unexpected sentence contents: %v / %v", got[0].Text(), got[1].Text())
	}
	for i, s := range got {
		if s.Index != i {
			t.Errorf("sentence %d has Index %d", i, s.Index)
		}
	}
}

func TestSentenceSplitAbbreviationNotBoundary(t *testing.T) {
	tk := New()
	got := tk.Sentences("Dr. Smith praised the camera. It was impressive.")
	if len(got) != 2 {
		t.Fatalf("got %d sentences, want 2: %v", len(got), got)
	}
	if !strings.Contains(got[0].Text(), "Dr.") {
		t.Errorf("first sentence lost abbreviation: %q", got[0].Text())
	}
}

func TestSentenceSplitRepeatedPunct(t *testing.T) {
	tk := New()
	got := tk.Sentences("Amazing!!! Totally worth it...")
	if len(got) != 2 {
		t.Fatalf("got %d sentences, want 2: %+v", len(got), got)
	}
}

func TestSentenceTextReconstruction(t *testing.T) {
	tk := New()
	s := tk.Sentences("This camera takes excellent pictures.")
	if len(s) != 1 {
		t.Fatalf("want 1 sentence, got %d", len(s))
	}
	if got := s[0].Text(); got != "This camera takes excellent pictures." {
		t.Errorf("Text() = %q", got)
	}
}

func TestEmptyAndWhitespaceInput(t *testing.T) {
	tk := New()
	if got := tk.Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v", got)
	}
	if got := tk.Sentences("   \n\t  "); len(got) != 0 {
		t.Errorf("Sentences(whitespace) = %v", got)
	}
}

func TestIsCapitalized(t *testing.T) {
	if !(Token{Text: "Canon"}).IsCapitalized() {
		t.Error("Canon should be capitalized")
	}
	if (Token{Text: "canon"}).IsCapitalized() {
		t.Error("canon should not be capitalized")
	}
	if (Token{Text: ""}).IsCapitalized() {
		t.Error("empty token should not be capitalized")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Word: "Word", Number: "Number", Punct: "Punct", Symbol: "Symbol", Kind(99): "Unknown"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// Property: token spans are non-overlapping, monotonically increasing, and
// stay within bounds for arbitrary input.
func TestQuickTokenSpansMonotonic(t *testing.T) {
	tk := New()
	f := func(s string) bool {
		toks := tk.Tokenize(s)
		prevEnd := 0
		for _, tok := range toks {
			if tok.Start < prevEnd || tok.End > len(s) || tok.Start > tok.End {
				return false
			}
			if tok.End > tok.Start {
				prevEnd = tok.End
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: every non-space ASCII letter of the input is covered by some
// token span.
func TestQuickLettersCovered(t *testing.T) {
	tk := New()
	f := func(s string) bool {
		toks := tk.Tokenize(s)
		covered := make([]bool, len(s))
		for _, tok := range toks {
			for i := tok.Start; i < tok.End && i < len(s); i++ {
				covered[i] = true
			}
		}
		for i := 0; i < len(s); i++ {
			c := s[i]
			if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
				if !covered[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: sentence splitting partitions the token stream (no token lost,
// none duplicated, order preserved).
func TestQuickSplitPartitionsTokens(t *testing.T) {
	tk := New()
	f := func(s string) bool {
		toks := tk.Tokenize(s)
		sents := tk.Split(toks)
		var flat []Token
		for _, sent := range sents {
			flat = append(flat, sent.Tokens...)
		}
		if len(flat) != len(toks) {
			return false
		}
		for i := range flat {
			if flat[i] != toks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTokenizeURLs(t *testing.T) {
	tk := New()
	cases := []struct {
		in, wantTok string
	}{
		{"See http://reviews.example/nr70 for details.", "http://reviews.example/nr70"},
		{"Posted at https://forum.example/t/123, yesterday.", "https://forum.example/t/123"},
		{"Visit www.dpreview.com today.", "www.dpreview.com"},
	}
	for _, c := range cases {
		toks := tk.Tokenize(c.in)
		found := false
		for _, tok := range toks {
			if tok.Text == c.wantTok && tok.Kind == Symbol {
				found = true
			}
		}
		if !found {
			t.Errorf("Tokenize(%q): URL token %q missing in %v", c.in, c.wantTok, texts(toks))
		}
	}
}

func TestTokenizeURLDoesNotEatSentenceBoundary(t *testing.T) {
	tk := New()
	sents := tk.Sentences("Read http://a.example/x. The review continues.")
	if len(sents) != 2 {
		t.Fatalf("got %d sentences: %v", len(sents), sents)
	}
}

func TestTokenizeEmail(t *testing.T) {
	tk := New()
	toks := tk.Tokenize("Contact support@maker.example for a refund.")
	found := false
	for _, tok := range toks {
		if tok.Text == "support@maker.example" && tok.Kind == Symbol {
			found = true
		}
	}
	if !found {
		t.Errorf("email token missing: %v", texts(toks))
	}
}

func TestTokenizeNonEmailAtSign(t *testing.T) {
	tk := New()
	toks := texts(tk.Tokenize("meet @ noon"))
	joined := strings.Join(toks, "|")
	if joined != "meet|@|noon" {
		t.Errorf("got %v", toks)
	}
}
