package services

import (
	"net"
	"strings"
	"testing"
	"time"

	"webfountain/internal/index"
	"webfountain/internal/store"
	"webfountain/internal/vinci"
)

func localSetup() (*vinci.Registry, *store.Store, *index.Index, *index.SentimentIndex) {
	reg := vinci.NewRegistry()
	st := store.New(4)
	ix := index.New()
	sidx := index.NewSentimentIndex()
	RegisterStore(reg, st)
	RegisterIndex(reg, ix)
	RegisterSentiment(reg, sidx)
	return reg, st, ix, sidx
}

func TestStoreServiceRoundTrip(t *testing.T) {
	reg, _, _, _ := localSetup()
	c := StoreClient{C: vinci.NewLocalClient(reg)}

	e := &store.Entity{ID: "d1", Source: "review", Title: "T", Text: "The NR70 takes excellent pictures."}
	e.Annotate(store.Annotation{Miner: "spotter", Type: "spot", Key: "nr70", Sentence: 0, Start: 1, End: 2})
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("d1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Text != e.Text || len(got.Annotations) != 1 || got.Annotations[0].Key != "nr70" {
		t.Errorf("got %+v", got)
	}
	n, err := c.Count()
	if err != nil || n != 1 {
		t.Errorf("count = %d, %v", n, err)
	}
	if err := c.Delete("d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("d1"); err == nil {
		t.Error("get after delete should fail")
	}
}

func TestStoreServiceErrors(t *testing.T) {
	reg, _, _, _ := localSetup()
	c := StoreClient{C: vinci.NewLocalClient(reg)}
	if err := c.Put(&store.Entity{}); err == nil {
		t.Error("put without ID should fail")
	}
	resp, _ := vinci.NewLocalClient(reg).Call(vinci.Request{Service: StoreService, Op: "bogus"})
	if resp.OK || !strings.Contains(resp.Error, "unknown op") {
		t.Errorf("resp = %+v", resp)
	}
}

func TestIndexService(t *testing.T) {
	reg, _, ix, _ := localSetup()
	ix.Add("d1", strings.Fields("excellent camera zoom"))
	ix.Add("d2", strings.Fields("terrible camera menu"))
	ix.Add("d3", strings.Fields("battery life is short"))
	c := IndexClient{C: vinci.NewLocalClient(reg)}

	ids, err := c.Search("all", "camera")
	if err != nil || len(ids) != 2 {
		t.Errorf("all camera = %v, %v", ids, err)
	}
	ids, err = c.Search("any", "zoom", "menu")
	if err != nil || len(ids) != 2 {
		t.Errorf("any = %v, %v", ids, err)
	}
	ids, err = c.Search("phrase", "battery", "life")
	if err != nil || len(ids) != 1 || ids[0] != "d3" {
		t.Errorf("phrase = %v, %v", ids, err)
	}
	ids, err = c.Search("all", "nomatch")
	if err != nil || ids != nil {
		t.Errorf("empty result = %v, %v", ids, err)
	}
	df, err := c.DocFreq("camera")
	if err != nil || df != 2 {
		t.Errorf("docfreq = %d, %v", df, err)
	}
	if _, err := c.Search("bogusmode", "x"); err == nil {
		t.Error("bad mode should fail")
	}
	if _, err := c.Search("all"); err == nil {
		t.Error("empty terms should fail")
	}
}

func TestSentimentService(t *testing.T) {
	reg, _, _, sidx := localSetup()
	sidx.Add(index.SentimentEntry{DocID: "d1", Sentence: 0, Subject: "nr70", Polarity: 1, Snippet: "great"})
	sidx.Add(index.SentimentEntry{DocID: "d2", Sentence: 3, Subject: "nr70", Polarity: -1, Snippet: "bad"})
	c := SentimentClient{C: vinci.NewLocalClient(reg)}

	entries, err := c.Query("NR70")
	if err != nil || len(entries) != 2 {
		t.Fatalf("entries = %+v, %v", entries, err)
	}
	if entries[0].Snippet != "great" || entries[1].Polarity != -1 {
		t.Errorf("entries = %+v", entries)
	}
	pos, neg, err := c.Counts("nr70")
	if err != nil || pos != 1 || neg != 1 {
		t.Errorf("counts = %d/%d, %v", pos, neg, err)
	}
	if _, err := c.Query(""); err == nil {
		t.Error("empty subject should fail")
	}
}

// TestServicesOverTCP exercises the full remote path: the same typed
// clients over a real network connection.
func TestServicesOverTCP(t *testing.T) {
	reg, _, ix, sidx := localSetup()
	ix.Add("d1", strings.Fields("remote access works"))
	sidx.Add(index.SentimentEntry{DocID: "d1", Subject: "platform", Polarity: 1, Snippet: "works"})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := vinci.NewServer(reg)
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	defer func() { srv.Close(); <-done }()

	conn, err := vinci.Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	sc := StoreClient{C: conn}
	if err := sc.Put(&store.Entity{ID: "remote", Text: "hello over tcp"}); err != nil {
		t.Fatal(err)
	}
	got, err := sc.Get("remote")
	if err != nil || got.Text != "hello over tcp" {
		t.Errorf("got %+v, %v", got, err)
	}

	icl := IndexClient{C: conn}
	ids, err := icl.Search("all", "remote")
	if err != nil || len(ids) != 1 {
		t.Errorf("search = %v, %v", ids, err)
	}

	scl := SentimentClient{C: conn}
	pos, neg, err := scl.Counts("platform")
	if err != nil || pos != 1 || neg != 0 {
		t.Errorf("counts = %d/%d, %v", pos, neg, err)
	}
	entries, err := scl.Query("platform")
	if err != nil || len(entries) != 1 || entries[0].Snippet != "works" {
		t.Errorf("entries = %+v, %v", entries, err)
	}
}
