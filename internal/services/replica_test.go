package services

import (
	"fmt"
	"testing"

	"webfountain/internal/store"
	"webfountain/internal/vinci"
)

func replicaFixture(t *testing.T, n int) (*store.Store, ReplicaClient) {
	t.Helper()
	st := store.New(2)
	for i := 0; i < n; i++ {
		if err := st.Put(&store.Entity{
			ID:   fmt.Sprintf("doc-%06d", i),
			Text: fmt.Sprintf("text %d", i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	reg := vinci.NewRegistry()
	RegisterReplica(reg, st, StoreHooks{})
	return st, ReplicaClient{C: vinci.NewLocalClient(reg)}
}

func TestReplicaIDsAndShipAll(t *testing.T) {
	_, rc := replicaFixture(t, 5)
	ids, err := rc.IDs()
	if err != nil || len(ids) != 5 {
		t.Fatalf("ids=%v err=%v", ids, err)
	}
	frames, err := rc.Ship(nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := store.New(4)
	if applied, err := store.ApplyFrames(dst, frames); err != nil || applied != 5 {
		t.Fatalf("applied=%d err=%v", applied, err)
	}
	if dst.Len() != 5 {
		t.Fatalf("dst.Len=%d, want 5", dst.Len())
	}
}

func TestReplicaShipSelectedAndApply(t *testing.T) {
	_, src := replicaFixture(t, 10)
	frames, err := src.Ship([]string{"doc-000001", "doc-000003", "doc-999999"}) // missing ID skipped
	if err != nil {
		t.Fatal(err)
	}
	dstStore := store.New(1)
	var indexed []string
	reg := vinci.NewRegistry()
	RegisterReplica(reg, dstStore, StoreHooks{
		OnPut: func(e *store.Entity) { indexed = append(indexed, e.ID) },
	})
	dst := ReplicaClient{C: vinci.NewLocalClient(reg)}
	applied, err := dst.Apply(frames)
	if err != nil || applied != 2 {
		t.Fatalf("applied=%d err=%v, want 2", applied, err)
	}
	if len(indexed) != 2 {
		t.Fatalf("OnPut hook fired %d times, want 2 (got %v)", len(indexed), indexed)
	}
	if _, ok := dstStore.Get("doc-000003"); !ok {
		t.Fatal("shipped entity missing at destination")
	}
}

func TestReplicaApplyRejectsCorruptBatch(t *testing.T) {
	_, src := replicaFixture(t, 2)
	frames, err := src.Ship(nil)
	if err != nil {
		t.Fatal(err)
	}
	frames[len(frames)-1] ^= 0xff
	dstStore := store.New(1)
	reg := vinci.NewRegistry()
	RegisterReplica(reg, dstStore, StoreHooks{})
	dst := ReplicaClient{C: vinci.NewLocalClient(reg)}
	if _, err := dst.Apply(frames); err == nil {
		t.Fatal("corrupt batch must be rejected")
	}
}

func TestStoreServiceIDsOp(t *testing.T) {
	st := store.New(1)
	for i := 0; i < 3; i++ {
		if err := st.Put(&store.Entity{ID: fmt.Sprintf("doc-%06d", i), Text: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	reg := vinci.NewRegistry()
	RegisterStore(reg, st)
	sc := StoreClient{C: vinci.NewLocalClient(reg)}
	ids, err := sc.IDs()
	if err != nil || len(ids) != 3 || ids[0] != "doc-000000" {
		t.Fatalf("ids=%v err=%v", ids, err)
	}
}

func TestStoreServiceHooks(t *testing.T) {
	st := store.New(1)
	var puts, dels []string
	reg := vinci.NewRegistry()
	RegisterStoreWith(reg, st, StoreHooks{
		OnPut:    func(e *store.Entity) { puts = append(puts, e.ID) },
		OnDelete: func(id string) { dels = append(dels, id) },
	})
	sc := StoreClient{C: vinci.NewLocalClient(reg)}
	if err := sc.Put(&store.Entity{ID: "doc-000001", Text: "hello"}); err != nil {
		t.Fatal(err)
	}
	if err := sc.Delete("doc-000001"); err != nil {
		t.Fatal(err)
	}
	if len(puts) != 1 || len(dels) != 1 {
		t.Fatalf("hooks: puts=%v dels=%v", puts, dels)
	}
}

func TestHealthReportsTopology(t *testing.T) {
	reg := vinci.NewRegistry()
	RegisterHealth(reg, HealthOptions{
		Node: "node-1",
		Topology: func() TopologyInfo {
			return TopologyInfo{Epoch: 7, Digest: "abc123", Primaries: 12, Replicas: 9}
		},
	})
	hc := HealthClient{C: vinci.NewLocalClient(reg)}
	st, err := hc.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Topology == nil {
		t.Fatal("status missing topology")
	}
	if st.Topology.Epoch != 7 || st.Topology.Digest != "abc123" ||
		st.Topology.Primaries != 12 || st.Topology.Replicas != 9 {
		t.Fatalf("topology = %+v", *st.Topology)
	}
	if got := st.Topology.Role(); got != "primary" {
		t.Fatalf("role = %q, want primary", got)
	}
	// Ping carries the epoch and role too — the one-shot probe an
	// operator runs with wfnode -ping.
	resp, err := hc.C.Call(vinci.Request{Service: HealthService, Op: "ping"})
	if err != nil || !resp.OK {
		t.Fatalf("ping: %v %+v", err, resp)
	}
	if resp.Fields["ring_epoch"] != "7" || resp.Fields["role"] != "primary" {
		t.Fatalf("ping fields = %+v", resp.Fields)
	}
}

func TestHealthWithoutTopologyOmitsIt(t *testing.T) {
	reg := vinci.NewRegistry()
	RegisterHealth(reg, HealthOptions{Node: "solo"})
	hc := HealthClient{C: vinci.NewLocalClient(reg)}
	st, err := hc.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Topology != nil {
		t.Fatalf("single-node status should omit topology, got %+v", *st.Topology)
	}
}

func TestTopologyInfoRole(t *testing.T) {
	if (TopologyInfo{}).Role() != "idle" {
		t.Fatal("empty info should be idle")
	}
	if (TopologyInfo{Replicas: 3}).Role() != "replica" {
		t.Fatal("replica-only info should be replica")
	}
}

func TestReplicaTombstonesOp(t *testing.T) {
	st, rc := replicaFixture(t, 3)
	tids, err := rc.Tombstones()
	if err != nil || len(tids) != 0 {
		t.Fatalf("tombs=%v err=%v, want none before any delete", tids, err)
	}
	if err := st.Delete("doc-000001"); err != nil {
		t.Fatal(err)
	}
	tids, err = rc.Tombstones()
	if err != nil || len(tids) != 1 || tids[0] != "doc-000001" {
		t.Fatalf("tombs=%v err=%v, want [doc-000001]", tids, err)
	}
}

func TestReplicaVersionCensusOps(t *testing.T) {
	st, rc := replicaFixture(t, 0)
	if err := st.Put(&store.Entity{ID: "doc-a", Text: "a", Version: 7}); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(&store.Entity{ID: "doc@odd", Text: "b", Version: 9}); err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteVersioned("doc-gone", 12); err != nil {
		t.Fatal(err)
	}

	versions, err := rc.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 2 || versions["doc-a"] != 7 || versions["doc@odd"] != 9 {
		t.Fatalf("versions = %v", versions)
	}
	tombs, err := rc.TombstonesVersioned()
	if err != nil {
		t.Fatal(err)
	}
	if len(tombs) != 1 || tombs["doc-gone"] != 12 {
		t.Fatalf("tombsv = %v", tombs)
	}

	d1, err := rc.VersionDigest()
	if err != nil || len(d1) != 64 {
		t.Fatalf("digest %q err %v", d1, err)
	}
	want := st.VersionDigest()
	if d1 != fmt.Sprintf("%x", want) {
		t.Fatalf("digest mismatch: wire %s, local %x", d1, want)
	}
	// Digest moves with state.
	if err := st.Put(&store.Entity{ID: "doc-a", Text: "a2", Version: 20}); err != nil {
		t.Fatal(err)
	}
	d2, err := rc.VersionDigest()
	if err != nil || d2 == d1 {
		t.Fatalf("digest did not move: %q vs %q (err %v)", d1, d2, err)
	}
}

func TestStoreServiceVersionedDelete(t *testing.T) {
	st := store.New(1)
	if err := st.Put(&store.Entity{ID: "doc-a", Text: "a", Version: 30}); err != nil {
		t.Fatal(err)
	}
	reg := vinci.NewRegistry()
	var deleted []string
	RegisterStoreWith(reg, st, StoreHooks{OnDelete: func(id string) { deleted = append(deleted, id) }})
	sc := StoreClient{C: vinci.NewLocalClient(reg)}

	// Stale delete is fenced by the store.
	if err := sc.DeleteVersioned("doc-a", 25); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("doc-a"); !ok {
		t.Fatal("stale wire delete removed newer copy")
	}
	// Newer delete applies and records the versioned tombstone.
	if err := sc.DeleteVersioned("doc-a", 35); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("doc-a"); ok {
		t.Fatal("versioned wire delete did not apply")
	}
	if v := st.TombstonesVersioned()["doc-a"]; v != 35 {
		t.Fatalf("tombstone version = %d, want 35", v)
	}
	if len(deleted) != 2 {
		t.Fatalf("OnDelete hook fired %d times, want 2", len(deleted))
	}
}
