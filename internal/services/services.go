// Package services exposes the platform components as Vinci services —
// the paper's "collection of Web service APIs" that let application
// developers use the platform remotely. Each component registers a
// handler on a vinci.Registry; typed clients wrap a vinci.Client (local
// or TCP) so remote and in-process use look identical.
package services

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"webfountain/internal/index"
	"webfountain/internal/store"
	"webfountain/internal/vinci"
)

// Service names.
const (
	StoreService     = "store"
	IndexService     = "index"
	SentimentService = "sentiment"
)

// Idempotent reports whether a service is safe to hedge: its ops are
// read-only, so a duplicated call changes nothing. The store service is
// excluded because put/delete mutate. Client-side hedging gates on this
// (vinci.HedgeOptions.IsIdempotent); the server-side registration
// mirrors it via RegisterIdempotent.
func Idempotent(service string) bool {
	return service == IndexService || service == SentimentService
}

// --- store service ---

// StoreHooks observe mutations that arrive through the store service or
// the replica service, letting a node keep derived state (its inverted
// index) in step with writes it did not originate — the replicated
// write path routes puts at nodes directly, not through the local
// ingest pipeline.
type StoreHooks struct {
	// OnPut runs after a put is durably applied.
	OnPut func(e *store.Entity)
	// OnDelete runs after a delete is applied.
	OnDelete func(id string)
}

// RegisterStore exposes an entity store: ops get, put, delete, count,
// ids. Entities travel as XML (the store's native representation).
func RegisterStore(reg *vinci.Registry, st *store.Store) {
	RegisterStoreWith(reg, st, StoreHooks{})
}

// RegisterStoreWith is RegisterStore with mutation hooks.
func RegisterStoreWith(reg *vinci.Registry, st *store.Store, hooks StoreHooks) {
	reg.Register(StoreService, func(req vinci.Request) vinci.Response {
		switch req.Op {
		case "get":
			e, ok := st.Get(req.Param("id"))
			if !ok {
				return vinci.Errorf("store: no entity %q", req.Param("id"))
			}
			data, err := e.MarshalIndent()
			if err != nil {
				return vinci.Errorf("store: encode: %v", err)
			}
			return vinci.OKResponse(map[string]string{"entity": string(data)})
		case "put":
			e, err := store.ParseEntity([]byte(req.Param("entity")))
			if err != nil {
				return vinci.Errorf("store: %v", err)
			}
			if err := st.Put(e); err != nil {
				return vinci.Errorf("store: %v", err)
			}
			if hooks.OnPut != nil {
				hooks.OnPut(e)
			}
			return vinci.OKResponse(map[string]string{"id": e.ID})
		case "delete":
			// An optional version param makes the delete an HLC-fenced
			// versioned delete (see store.DeleteVersioned); without it the
			// delete is unconditional, preserving single-node semantics.
			if vs := req.Param("version"); vs != "" {
				v, err := strconv.ParseUint(vs, 10, 64)
				if err != nil {
					return vinci.Errorf("store: bad version %q: %v", vs, err)
				}
				if err := st.DeleteVersioned(req.Param("id"), v); err != nil {
					return vinci.Errorf("store: %v", err)
				}
			} else if err := st.Delete(req.Param("id")); err != nil {
				return vinci.Errorf("store: %v", err)
			}
			if hooks.OnDelete != nil {
				hooks.OnDelete(req.Param("id"))
			}
			return vinci.OKResponse(nil)
		case "count":
			return vinci.OKResponse(map[string]string{"count": strconv.Itoa(st.Len())})
		case "ids":
			return vinci.OKResponse(map[string]string{"ids": strings.Join(st.IDs(), " ")})
		}
		return vinci.Errorf("store: unknown op %q", req.Op)
	})
}

// StoreClient is the typed client for the store service.
type StoreClient struct{ C vinci.Client }

// Get fetches an entity by ID.
func (sc StoreClient) Get(id string) (*store.Entity, error) {
	resp, err := sc.C.Call(vinci.Request{Service: StoreService, Op: "get", Params: map[string]string{"id": id}})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("%s", resp.Error)
	}
	return store.ParseEntity([]byte(resp.Fields["entity"]))
}

// Put stores an entity.
func (sc StoreClient) Put(e *store.Entity) error {
	data, err := e.MarshalIndent()
	if err != nil {
		return err
	}
	resp, err := sc.C.Call(vinci.Request{Service: StoreService, Op: "put", Params: map[string]string{"entity": string(data)}})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("%s", resp.Error)
	}
	return nil
}

// Delete removes an entity.
func (sc StoreClient) Delete(id string) error {
	resp, err := sc.C.Call(vinci.Request{Service: StoreService, Op: "delete", Params: map[string]string{"id": id}})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("%s", resp.Error)
	}
	return nil
}

// DeleteVersioned removes an entity under an HLC version stamp; the
// node fences the delete against newer held copies and records a
// versioned tombstone (store.DeleteVersioned).
func (sc StoreClient) DeleteVersioned(id string, version uint64) error {
	resp, err := sc.C.Call(vinci.Request{Service: StoreService, Op: "delete", Params: map[string]string{
		"id":      id,
		"version": strconv.FormatUint(version, 10),
	}})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("%s", resp.Error)
	}
	return nil
}

// IDs returns every stored entity ID, sorted.
func (sc StoreClient) IDs() ([]string, error) {
	resp, err := sc.C.Call(vinci.Request{Service: StoreService, Op: "ids"})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("%s", resp.Error)
	}
	if resp.Fields["ids"] == "" {
		return nil, nil
	}
	return strings.Fields(resp.Fields["ids"]), nil
}

// Count returns the entity count.
func (sc StoreClient) Count() (int, error) {
	resp, err := sc.C.Call(vinci.Request{Service: StoreService, Op: "count"})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, fmt.Errorf("%s", resp.Error)
	}
	return strconv.Atoi(resp.Fields["count"])
}

// --- index service ---

// RegisterIndex exposes an inverted index: ops search (mode=all|any|
// phrase over space-separated terms), docfreq and numdocs. The service
// is read-only and registered idempotent, so clients may hedge it; a
// search carrying a deadline budget is evaluated under that deadline
// and shed with a deadline-exceeded response when it cannot finish in
// time.
func RegisterIndex(reg *vinci.Registry, ix *index.Index) {
	reg.RegisterIdempotent(IndexService, func(req vinci.Request) vinci.Response {
		switch req.Op {
		case "search":
			terms := strings.Fields(req.Param("terms"))
			if len(terms) == 0 {
				return vinci.Errorf("index: empty terms")
			}
			var q index.Query
			switch mode := req.Param("mode"); mode {
			case "", "all":
				qs := make([]index.Query, len(terms))
				for i, t := range terms {
					qs[i] = index.Term(t)
				}
				q = index.And(qs...)
			case "any":
				qs := make([]index.Query, len(terms))
				for i, t := range terms {
					qs[i] = index.Term(t)
				}
				q = index.Or(qs...)
			case "phrase":
				q = index.Phrase(terms...)
			default:
				return vinci.Errorf("index: unknown mode %q", mode)
			}
			deadline, _ := req.Deadline()
			ids, err := ix.SearchWithDeadline(q, deadline)
			if err != nil {
				return vinci.DeadlineExceededResponse("index: search shed: " + err.Error())
			}
			return vinci.OKResponse(map[string]string{
				"ids":   strings.Join(ids, " "),
				"count": strconv.Itoa(len(ids)),
			})
		case "docfreq":
			return vinci.OKResponse(map[string]string{"count": strconv.Itoa(ix.DocFreq(req.Param("term")))})
		case "numdocs":
			return vinci.OKResponse(map[string]string{"count": strconv.Itoa(ix.NumDocs())})
		}
		return vinci.Errorf("index: unknown op %q", req.Op)
	})
}

// IndexClient is the typed client for the index service.
type IndexClient struct{ C vinci.Client }

// Search runs a term query; mode is "all", "any" or "phrase".
func (ic IndexClient) Search(mode string, terms ...string) ([]string, error) {
	resp, err := ic.C.Call(vinci.Request{Service: IndexService, Op: "search", Params: map[string]string{
		"mode":  mode,
		"terms": strings.Join(terms, " "),
	}})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("%s", resp.Error)
	}
	if resp.Fields["ids"] == "" {
		return nil, nil
	}
	return strings.Fields(resp.Fields["ids"]), nil
}

// DocFreq returns the document frequency of a term.
func (ic IndexClient) DocFreq(term string) (int, error) {
	resp, err := ic.C.Call(vinci.Request{Service: IndexService, Op: "docfreq", Params: map[string]string{"term": term}})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, fmt.Errorf("%s", resp.Error)
	}
	return strconv.Atoi(resp.Fields["count"])
}

// --- sentiment service ---

// RegisterSentiment exposes a sentiment index: ops query and counts.
// Entries travel as JSON inside one response field. Both ops are pure
// reads, so the service is registered idempotent and safe to hedge.
func RegisterSentiment(reg *vinci.Registry, sidx *index.SentimentIndex) {
	reg.RegisterIdempotent(SentimentService, func(req vinci.Request) vinci.Response {
		subject := req.Param("subject")
		if subject == "" {
			return vinci.Errorf("sentiment: missing subject")
		}
		switch req.Op {
		case "query":
			entries := sidx.Query(subject)
			data, err := json.Marshal(entries)
			if err != nil {
				return vinci.Errorf("sentiment: encode: %v", err)
			}
			return vinci.OKResponse(map[string]string{"entries": string(data)})
		case "counts":
			c := sidx.Counts(subject)
			return vinci.OKResponse(map[string]string{
				"positive": strconv.Itoa(c.Positive),
				"negative": strconv.Itoa(c.Negative),
			})
		}
		return vinci.Errorf("sentiment: unknown op %q", req.Op)
	})
}

// SentimentClient is the typed client for the sentiment service.
type SentimentClient struct{ C vinci.Client }

// Query fetches a subject's indexed sentiment entries.
func (sc SentimentClient) Query(subject string) ([]index.SentimentEntry, error) {
	resp, err := sc.C.Call(vinci.Request{Service: SentimentService, Op: "query", Params: map[string]string{"subject": subject}})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("%s", resp.Error)
	}
	var entries []index.SentimentEntry
	if err := json.Unmarshal([]byte(resp.Fields["entries"]), &entries); err != nil {
		return nil, fmt.Errorf("sentiment: decode: %w", err)
	}
	return entries, nil
}

// Counts fetches a subject's aggregate sentiment.
func (sc SentimentClient) Counts(subject string) (positive, negative int, err error) {
	resp, err := sc.C.Call(vinci.Request{Service: SentimentService, Op: "counts", Params: map[string]string{"subject": subject}})
	if err != nil {
		return 0, 0, err
	}
	if !resp.OK {
		return 0, 0, fmt.Errorf("%s", resp.Error)
	}
	positive, err = strconv.Atoi(resp.Fields["positive"])
	if err != nil {
		return 0, 0, err
	}
	negative, err = strconv.Atoi(resp.Fields["negative"])
	return positive, negative, err
}
