package services

import (
	"strings"
	"testing"

	"webfountain/internal/metrics"
	"webfountain/internal/vinci"
)

func TestMetricsServiceRoundTrip(t *testing.T) {
	reg := vinci.NewRegistry()
	r := metrics.NewRegistry()
	r.Counter("node.requests").Add(3)
	r.Gauge("node.depth").Set(2)
	r.Histogram("node.lat.ns").Observe(1000)
	RegisterMetrics(reg, r)
	mc := MetricsClient{C: vinci.NewLocalClient(reg)}

	text, err := mc.Text()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "counter node.requests 3") {
		t.Errorf("text dump missing counter:\n%s", text)
	}

	snap, err := mc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["node.requests"] != 3 {
		t.Errorf("snapshot counter = %d, want 3", snap.Counters["node.requests"])
	}
	if snap.Gauges["node.depth"] != 2 {
		t.Errorf("snapshot gauge = %d, want 2", snap.Gauges["node.depth"])
	}
	if snap.Histograms["node.lat.ns"].Count != 1 {
		t.Errorf("snapshot histogram count = %d, want 1", snap.Histograms["node.lat.ns"].Count)
	}
}

func TestMetricsServiceUnknownOp(t *testing.T) {
	reg := vinci.NewRegistry()
	RegisterMetrics(reg, metrics.NewRegistry())
	c := vinci.NewLocalClient(reg)
	resp, err := c.Call(vinci.Request{Service: MetricsService, Op: "bogus"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Error("unknown op should fail")
	}
}
