package services

import (
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"webfountain/internal/store"
	"webfountain/internal/vinci"
)

// ReplicaService is the shard-handoff service: it ships store state
// between nodes as WAL frames (see store/replicate.go) so a draining or
// recovering node can catch up on every write it missed before it is
// re-admitted to its replica sets. The service is deliberately not
// idempotent-registered: apply mutates, and ship of a live store is a
// point-in-time read that should not be hedged against itself.
const ReplicaService = "replica"

// RegisterReplica exposes handoff ops on a node's store:
//
//	ids     — every entity ID the node holds (the diff base for catch-up)
//	tombs   — retained tombstones: IDs deleted on this node, so catch-up
//	          can tell "deleted while you were down" from "sole copy"
//	ship    — a WAL-frame batch for the requested IDs (or everything)
//	apply   — install a shipped batch through the normal mutation path
//	vdigest — sha256 over the node's (id, version) census including
//	          versioned tombstones; the anti-entropy fast path (equal
//	          digests = nothing to exchange)
//	versions — the full id@version census of held entities
//	tombsv   — retained tombstones as id@version pairs
//
// Frames travel base64-encoded inside the XML response/params; their
// own CRCs still detect corruption end to end. hooks keep the node's
// derived state (index) in step with applied catch-up writes.
func RegisterReplica(reg *vinci.Registry, st *store.Store, hooks StoreHooks) {
	reg.Register(ReplicaService, func(req vinci.Request) vinci.Response {
		switch req.Op {
		case "ids":
			return vinci.OKResponse(map[string]string{"ids": strings.Join(st.IDs(), " ")})
		case "tombs":
			return vinci.OKResponse(map[string]string{"ids": strings.Join(st.Tombstones(), " ")})
		case "vdigest":
			d := st.VersionDigest()
			return vinci.OKResponse(map[string]string{"digest": hex.EncodeToString(d[:])})
		case "versions":
			return vinci.OKResponse(map[string]string{"versions": encodeVersionCensus(st.Versions())})
		case "tombsv":
			return vinci.OKResponse(map[string]string{"versions": encodeVersionCensus(st.TombstonesVersioned())})
		case "ship":
			var batch []byte
			var err error
			if want := strings.Fields(req.Param("ids")); len(want) > 0 {
				for _, id := range want {
					e, ok := st.Get(id)
					if !ok {
						continue // deleted since the diff; the batch omits it
					}
					if batch, err = store.AppendPutFrame(batch, e); err != nil {
						return vinci.Errorf("replica: %v", err)
					}
				}
			} else if batch, err = st.SnapshotFrames(nil); err != nil {
				return vinci.Errorf("replica: %v", err)
			}
			return vinci.OKResponse(map[string]string{
				"frames": base64.StdEncoding.EncodeToString(batch),
			})
		case "apply":
			batch, err := base64.StdEncoding.DecodeString(req.Param("frames"))
			if err != nil {
				return vinci.Errorf("replica: bad frame encoding: %v", err)
			}
			applied, err := store.ApplyFramesObserved(st, batch, func(id string, e *store.Entity) {
				if e != nil {
					if hooks.OnPut != nil {
						hooks.OnPut(e)
					}
				} else if hooks.OnDelete != nil {
					hooks.OnDelete(id)
				}
			})
			if err != nil {
				return vinci.Errorf("replica: apply failed after %d frames: %v", applied, err)
			}
			return vinci.OKResponse(map[string]string{"applied": strconv.Itoa(applied)})
		}
		return vinci.Errorf("replica: unknown op %q", req.Op)
	})
}

// encodeVersionCensus renders id->version as sorted space-separated
// id@version pairs — the same space-separated-IDs idiom the ids op
// uses, with the version suffixed after an @ (IDs with spaces are
// already unrepresentable in this protocol; @ splits on the last
// occurrence so IDs containing @ survive).
func encodeVersionCensus(m map[string]uint64) string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(id)
		b.WriteByte('@')
		b.WriteString(strconv.FormatUint(m[id], 10))
	}
	return b.String()
}

// decodeVersionCensus parses encodeVersionCensus output.
func decodeVersionCensus(s string) (map[string]uint64, error) {
	out := map[string]uint64{}
	for _, pair := range strings.Fields(s) {
		at := strings.LastIndexByte(pair, '@')
		if at < 0 {
			return nil, fmt.Errorf("replica: bad census pair %q", pair)
		}
		v, err := strconv.ParseUint(pair[at+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("replica: bad census pair %q: %v", pair, err)
		}
		out[pair[:at]] = v
	}
	return out, nil
}

// ReplicaClient is the typed client for the replica service.
type ReplicaClient struct{ C vinci.Client }

// VersionDigest fetches the node's version-census digest (hex sha256).
func (rc ReplicaClient) VersionDigest() (string, error) {
	resp, err := rc.C.Call(vinci.Request{Service: ReplicaService, Op: "vdigest"})
	if err != nil {
		return "", err
	}
	if !resp.OK {
		return "", fmt.Errorf("%s", resp.Error)
	}
	return resp.Fields["digest"], nil
}

// Versions fetches the node's full id -> version census.
func (rc ReplicaClient) Versions() (map[string]uint64, error) {
	resp, err := rc.C.Call(vinci.Request{Service: ReplicaService, Op: "versions"})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("%s", resp.Error)
	}
	return decodeVersionCensus(resp.Fields["versions"])
}

// TombstonesVersioned fetches the node's retained tombstones with
// their delete versions.
func (rc ReplicaClient) TombstonesVersioned() (map[string]uint64, error) {
	resp, err := rc.C.Call(vinci.Request{Service: ReplicaService, Op: "tombsv"})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("%s", resp.Error)
	}
	return decodeVersionCensus(resp.Fields["versions"])
}

// IDs lists every entity ID the node holds, sorted.
func (rc ReplicaClient) IDs() ([]string, error) {
	resp, err := rc.C.Call(vinci.Request{Service: ReplicaService, Op: "ids"})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("%s", resp.Error)
	}
	if resp.Fields["ids"] == "" {
		return nil, nil
	}
	return strings.Fields(resp.Fields["ids"]), nil
}

// Tombstones lists the node's retained deleted IDs, sorted.
func (rc ReplicaClient) Tombstones() ([]string, error) {
	resp, err := rc.C.Call(vinci.Request{Service: ReplicaService, Op: "tombs"})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("%s", resp.Error)
	}
	if resp.Fields["ids"] == "" {
		return nil, nil
	}
	return strings.Fields(resp.Fields["ids"]), nil
}

// Ship fetches a WAL-frame batch for the given IDs (all state when ids
// is empty).
func (rc ReplicaClient) Ship(ids []string) ([]byte, error) {
	resp, err := rc.C.Call(vinci.Request{Service: ReplicaService, Op: "ship", Params: map[string]string{
		"ids": strings.Join(ids, " "),
	}})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("%s", resp.Error)
	}
	return base64.StdEncoding.DecodeString(resp.Fields["frames"])
}

// Apply installs a shipped frame batch on the node and returns how many
// frames landed.
func (rc ReplicaClient) Apply(frames []byte) (int, error) {
	resp, err := rc.C.Call(vinci.Request{Service: ReplicaService, Op: "apply", Params: map[string]string{
		"frames": base64.StdEncoding.EncodeToString(frames),
	}})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, fmt.Errorf("%s", resp.Error)
	}
	return strconv.Atoi(resp.Fields["applied"])
}
