package services

import (
	"encoding/json"
	"fmt"

	"webfountain/internal/metrics"
	"webfountain/internal/vinci"
)

// MetricsService exposes a node's metrics registry over Vinci, so an
// operator (or another node) can pull the same counters and latency
// histograms the HTTP endpoint serves without needing HTTP enabled.
const MetricsService = "metrics"

// RegisterMetrics exposes a registry: op "text" returns the sorted
// plain-text dump, op "json" the full snapshot as JSON.
func RegisterMetrics(reg *vinci.Registry, r *metrics.Registry) {
	reg.Register(MetricsService, func(req vinci.Request) vinci.Response {
		switch req.Op {
		case "text":
			return vinci.OKResponse(map[string]string{"metrics": r.Text()})
		case "json":
			data, err := json.Marshal(r.Snapshot())
			if err != nil {
				return vinci.Errorf("metrics: encode: %v", err)
			}
			return vinci.OKResponse(map[string]string{"snapshot": string(data)})
		}
		return vinci.Errorf("metrics: unknown op %q", req.Op)
	})
}

// MetricsClient is the typed client for the metrics service.
type MetricsClient struct{ C vinci.Client }

// Text fetches the node's plain-text metrics dump.
func (mc MetricsClient) Text() (string, error) {
	resp, err := mc.C.Call(vinci.Request{Service: MetricsService, Op: "text"})
	if err != nil {
		return "", err
	}
	if !resp.OK {
		return "", fmt.Errorf("%s", resp.Error)
	}
	return resp.Fields["metrics"], nil
}

// Snapshot fetches the node's full metrics snapshot.
func (mc MetricsClient) Snapshot() (metrics.Snapshot, error) {
	resp, err := mc.C.Call(vinci.Request{Service: MetricsService, Op: "json"})
	if err != nil {
		return metrics.Snapshot{}, err
	}
	if !resp.OK {
		return metrics.Snapshot{}, fmt.Errorf("%s", resp.Error)
	}
	var s metrics.Snapshot
	if err := json.Unmarshal([]byte(resp.Fields["snapshot"]), &s); err != nil {
		return metrics.Snapshot{}, fmt.Errorf("metrics: decode: %w", err)
	}
	return s, nil
}
