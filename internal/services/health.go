package services

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"webfountain/internal/vinci"
)

// HealthService is the liveness/readiness service every node exposes.
// In a 500+ node deployment, callers probe a node before committing a
// mining run to it; a node that cannot answer ping is skipped rather
// than discovered mid-run.
const HealthService = "health"

// HealthOptions configures the health service.
type HealthOptions struct {
	// Node is the node's self-reported name (default "wfnode").
	Node string
	// Registry, when set, lets the status op report the services the
	// node serves.
	Registry *vinci.Registry
	// Entities, when set, lets the status op report the entity count.
	Entities func() int
	// Degraded, when set, lets the status op report that the node's
	// store has entered degraded read-only mode (its write-ahead log
	// failed) and why. A degraded node still answers reads; callers use
	// the flag to route writes and mining runs elsewhere.
	Degraded func() (bool, string)
	// Topology, when set, lets ping and status report the node's place
	// in the ring: the ring epoch it is serving under and how many shard
	// ranges it holds as primary vs replica. Operators reading a flat
	// "ok" from a node that silently dropped out of its replica sets was
	// exactly the blind spot this closes.
	Topology func() TopologyInfo
	// Clock, when set, lets ping and status report the node's hybrid
	// logical clock: the newest version stamp it has issued or observed,
	// and how far that runs ahead of the wall clock. A large offset
	// flags a clock-skewed peer somewhere in the cluster before it
	// starts winning last-writer-wins races it shouldn't.
	Clock func() ClockInfo
	// now overrides the clock in tests.
	now func() time.Time
}

// ClockInfo is a node's self-reported HLC state.
type ClockInfo struct {
	// Last is the newest HLC timestamp issued or observed.
	Last uint64
	// Offset is how far the HLC's physical component runs ahead of the
	// node's wall clock (0 when tracking real time).
	Offset time.Duration
}

// TopologyInfo is a node's self-reported ring position.
type TopologyInfo struct {
	// Epoch is the ring generation the node is serving under.
	Epoch uint64
	// Digest is the ring's canonical placement digest.
	Digest string
	// Primaries and Replicas count the virtual-node ranges the node
	// serves in each role.
	Primaries int
	Replicas  int
}

// Role summarizes the node's shard role for display: "primary" when it
// owns any range as primary, "replica" when it only follows, "idle"
// when it holds no ranges.
func (ti TopologyInfo) Role() string {
	switch {
	case ti.Primaries > 0:
		return "primary"
	case ti.Replicas > 0:
		return "replica"
	default:
		return "idle"
	}
}

// RegisterHealth exposes node liveness: ops ping, status and uptime.
// Uptime is measured from registration time.
func RegisterHealth(reg *vinci.Registry, opts HealthOptions) {
	if opts.Node == "" {
		opts.Node = "wfnode"
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	start := opts.now()
	reg.Register(HealthService, func(req vinci.Request) vinci.Response {
		switch req.Op {
		case "ping":
			fields := map[string]string{"pong": "1", "node": opts.Node}
			if opts.Topology != nil {
				ti := opts.Topology()
				fields["ring_epoch"] = strconv.FormatUint(ti.Epoch, 10)
				fields["role"] = ti.Role()
			}
			if opts.Clock != nil {
				ci := opts.Clock()
				fields["hlc"] = strconv.FormatUint(ci.Last, 10)
				fields["hlc_offset_ms"] = strconv.FormatInt(ci.Offset.Milliseconds(), 10)
			}
			return vinci.OKResponse(fields)
		case "uptime":
			up := opts.now().Sub(start)
			return vinci.OKResponse(map[string]string{
				"seconds": strconv.FormatInt(int64(up/time.Second), 10),
			})
		case "status":
			fields := map[string]string{
				"node":    opts.Node,
				"seconds": strconv.FormatInt(int64(opts.now().Sub(start)/time.Second), 10),
			}
			if opts.Registry != nil {
				fields["services"] = strings.Join(opts.Registry.Services(), " ")
			}
			if opts.Entities != nil {
				fields["entities"] = strconv.Itoa(opts.Entities())
			}
			if opts.Degraded != nil {
				if deg, reason := opts.Degraded(); deg {
					fields["degraded"] = "1"
					fields["degraded_reason"] = reason
				} else {
					fields["degraded"] = "0"
				}
			}
			if opts.Topology != nil {
				ti := opts.Topology()
				fields["ring_epoch"] = strconv.FormatUint(ti.Epoch, 10)
				fields["ring_digest"] = ti.Digest
				fields["role"] = ti.Role()
				fields["shard_primaries"] = strconv.Itoa(ti.Primaries)
				fields["shard_replicas"] = strconv.Itoa(ti.Replicas)
			}
			if opts.Clock != nil {
				ci := opts.Clock()
				fields["hlc"] = strconv.FormatUint(ci.Last, 10)
				fields["hlc_offset_ms"] = strconv.FormatInt(ci.Offset.Milliseconds(), 10)
			}
			return vinci.OKResponse(fields)
		}
		return vinci.Errorf("health: unknown op %q", req.Op)
	})
}

// NodeStatus is a node's self-reported health.
type NodeStatus struct {
	// Node is the node's name.
	Node string
	// Services are the vinci services the node serves.
	Services []string
	// Entities is the node's entity count (-1 when not reported).
	Entities int
	// Uptime is how long the node has served, at second granularity.
	Uptime time.Duration
	// Degraded reports the node's store is in read-only mode;
	// DegradedReason says why.
	Degraded       bool
	DegradedReason string
	// Topology is the node's self-reported ring position, nil when the
	// node is not part of a replicated deployment.
	Topology *TopologyInfo
	// Clock is the node's self-reported HLC state, nil when the node
	// does not run a hybrid logical clock.
	Clock *ClockInfo
}

// HealthClient is the typed client for the health service.
type HealthClient struct{ C vinci.Client }

// Ping checks liveness.
func (hc HealthClient) Ping() error {
	resp, err := hc.C.Call(vinci.Request{Service: HealthService, Op: "ping"})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("%s", resp.Error)
	}
	if resp.Fields["pong"] != "1" {
		return fmt.Errorf("health: bad ping response %+v", resp.Fields)
	}
	return nil
}

// Uptime reports how long the node has served.
func (hc HealthClient) Uptime() (time.Duration, error) {
	resp, err := hc.C.Call(vinci.Request{Service: HealthService, Op: "uptime"})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, fmt.Errorf("%s", resp.Error)
	}
	secs, err := strconv.ParseInt(resp.Fields["seconds"], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("health: bad uptime: %w", err)
	}
	return time.Duration(secs) * time.Second, nil
}

// Status fetches the node's full health report.
func (hc HealthClient) Status() (NodeStatus, error) {
	resp, err := hc.C.Call(vinci.Request{Service: HealthService, Op: "status"})
	if err != nil {
		return NodeStatus{}, err
	}
	if !resp.OK {
		return NodeStatus{}, fmt.Errorf("%s", resp.Error)
	}
	st := NodeStatus{Node: resp.Fields["node"], Entities: -1}
	if v := resp.Fields["services"]; v != "" {
		st.Services = strings.Fields(v)
	}
	if v, ok := resp.Fields["entities"]; ok {
		if n, err := strconv.Atoi(v); err == nil {
			st.Entities = n
		}
	}
	if secs, err := strconv.ParseInt(resp.Fields["seconds"], 10, 64); err == nil {
		st.Uptime = time.Duration(secs) * time.Second
	}
	if resp.Fields["degraded"] == "1" {
		st.Degraded = true
		st.DegradedReason = resp.Fields["degraded_reason"]
	}
	if v, ok := resp.Fields["ring_epoch"]; ok {
		ti := &TopologyInfo{Digest: resp.Fields["ring_digest"]}
		if epoch, err := strconv.ParseUint(v, 10, 64); err == nil {
			ti.Epoch = epoch
		}
		if n, err := strconv.Atoi(resp.Fields["shard_primaries"]); err == nil {
			ti.Primaries = n
		}
		if n, err := strconv.Atoi(resp.Fields["shard_replicas"]); err == nil {
			ti.Replicas = n
		}
		st.Topology = ti
	}
	if v, ok := resp.Fields["hlc"]; ok {
		ci := &ClockInfo{}
		if last, err := strconv.ParseUint(v, 10, 64); err == nil {
			ci.Last = last
		}
		if ms, err := strconv.ParseInt(resp.Fields["hlc_offset_ms"], 10, 64); err == nil {
			ci.Offset = time.Duration(ms) * time.Millisecond
		}
		st.Clock = ci
	}
	return st, nil
}

// Probe verifies a node is alive and serving before work is committed
// to it — the client-side gate run before mining against a remote
// store. It pings the health service and, when required services are
// named, checks each appears in the node's status report.
func Probe(c vinci.Client, required ...string) error {
	hc := HealthClient{C: c}
	if err := hc.Ping(); err != nil {
		return fmt.Errorf("health probe: %w", err)
	}
	if len(required) == 0 {
		return nil
	}
	st, err := hc.Status()
	if err != nil {
		return fmt.Errorf("health probe: %w", err)
	}
	serving := make(map[string]bool, len(st.Services))
	for _, s := range st.Services {
		serving[s] = true
	}
	for _, want := range required {
		if !serving[want] {
			return fmt.Errorf("health probe: node %s does not serve %q (serves %v)",
				st.Node, want, st.Services)
		}
	}
	return nil
}
