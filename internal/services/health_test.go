package services

import (
	"net"
	"strings"
	"testing"
	"time"

	"webfountain/internal/vinci"
)

func healthRegistry(entities int) *vinci.Registry {
	reg := vinci.NewRegistry()
	reg.Register("store", func(vinci.Request) vinci.Response { return vinci.OKResponse(nil) })
	RegisterHealth(reg, HealthOptions{
		Node:     "node-a",
		Registry: reg,
		Entities: func() int { return entities },
	})
	return reg
}

func TestHealthPing(t *testing.T) {
	c := vinci.NewLocalClient(healthRegistry(7))
	if err := (HealthClient{C: c}).Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestHealthStatus(t *testing.T) {
	c := vinci.NewLocalClient(healthRegistry(7))
	st, err := HealthClient{C: c}.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Node != "node-a" || st.Entities != 7 {
		t.Errorf("status = %+v", st)
	}
	found := false
	for _, s := range st.Services {
		if s == "store" {
			found = true
		}
	}
	if !found {
		t.Errorf("services = %v, want store listed", st.Services)
	}
}

func TestHealthUptimeAdvances(t *testing.T) {
	reg := vinci.NewRegistry()
	now := time.Unix(1000, 0)
	RegisterHealth(reg, HealthOptions{Node: "n", now: func() time.Time { return now }})
	c := vinci.NewLocalClient(reg)
	now = now.Add(90 * time.Second)
	up, err := HealthClient{C: c}.Uptime()
	if err != nil {
		t.Fatal(err)
	}
	if up != 90*time.Second {
		t.Errorf("uptime = %v, want 90s", up)
	}
}

func TestHealthUnknownOp(t *testing.T) {
	c := vinci.NewLocalClient(healthRegistry(0))
	resp, _ := c.Call(vinci.Request{Service: HealthService, Op: "nope"})
	if resp.OK || !strings.Contains(resp.Error, "unknown op") {
		t.Errorf("resp = %+v", resp)
	}
}

func TestProbeHealthyNode(t *testing.T) {
	c := vinci.NewLocalClient(healthRegistry(3))
	if err := Probe(c); err != nil {
		t.Fatal(err)
	}
	if err := Probe(c, "store"); err != nil {
		t.Fatal(err)
	}
}

func TestProbeMissingService(t *testing.T) {
	c := vinci.NewLocalClient(healthRegistry(3))
	err := Probe(c, "index")
	if err == nil || !strings.Contains(err.Error(), `does not serve "index"`) {
		t.Errorf("err = %v", err)
	}
}

func TestProbeNodeWithoutHealthService(t *testing.T) {
	reg := vinci.NewRegistry()
	err := Probe(vinci.NewLocalClient(reg))
	if err == nil || !strings.Contains(err.Error(), "health probe") {
		t.Errorf("err = %v", err)
	}
}

// TestProbeOverTCP exercises the probe end to end, the way wfnode's
// client mode gates operations on node health.
func TestProbeOverTCP(t *testing.T) {
	reg := healthRegistry(5)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := vinci.NewServer(reg)
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	defer func() { srv.Close(); <-done }()

	c, err := vinci.Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := Probe(c, "store", HealthService); err != nil {
		t.Fatal(err)
	}
}

// TestHealthDegradedStatus: the status op surfaces the store's degraded
// read-only flag and its reason, and stays "0" while healthy.
func TestHealthDegradedStatus(t *testing.T) {
	degraded, reason := false, ""
	reg := vinci.NewRegistry()
	RegisterHealth(reg, HealthOptions{
		Node:     "node-a",
		Degraded: func() (bool, string) { return degraded, reason },
	})
	c := vinci.NewLocalClient(reg)

	st, err := HealthClient{C: c}.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Degraded || st.DegradedReason != "" {
		t.Errorf("healthy node reported degraded: %+v", st)
	}

	degraded, reason = true, "wal append: disk full"
	st, err = HealthClient{C: c}.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Degraded || st.DegradedReason != "wal append: disk full" {
		t.Errorf("degraded node status = %+v", st)
	}
}

// TestHealthStatusOmitsDegradedWhenUnwired: nodes without a durable
// store (no Degraded hook) report no degraded field at all.
func TestHealthStatusOmitsDegradedWhenUnwired(t *testing.T) {
	c := vinci.NewLocalClient(healthRegistry(1))
	resp, err := c.Call(vinci.Request{Service: HealthService, Op: "status"})
	if err != nil || !resp.OK {
		t.Fatalf("status: %v %+v", err, resp)
	}
	if _, ok := resp.Fields["degraded"]; ok {
		t.Error("degraded field present without a Degraded hook")
	}
}
