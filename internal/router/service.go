package router

import (
	"fmt"
	"strconv"
	"strings"

	"webfountain/internal/services"
	"webfountain/internal/vinci"
)

// TopologyService is the router's own Vinci service: cluster status,
// placement queries, and membership operations (join by address, drain,
// rejoin). wfrouter serves it; wfnode -join calls it.
const TopologyService = "topology"

// RegisterTopology exposes the router's control plane on a registry.
func (r *Router) RegisterTopology(reg *vinci.Registry) {
	reg.Register(TopologyService, func(req vinci.Request) vinci.Response {
		switch req.Op {
		case "status":
			ring := r.Ring()
			return vinci.OKResponse(map[string]string{
				"epoch":    strconv.FormatUint(ring.Epoch(), 10),
				"digest":   ring.Digest(),
				"members":  strings.Join(ring.Members(), " "),
				"suspects": strings.Join(r.Suspects(), " "),
				"replicas": strconv.Itoa(ring.Replicas()),
			})
		case "node":
			name := req.Param("node")
			if name == "" {
				return vinci.Errorf("topology: missing node")
			}
			ti := r.TopologyInfoFor(name)
			return vinci.OKResponse(map[string]string{
				"ring_epoch":      strconv.FormatUint(ti.Epoch, 10),
				"ring_digest":     ti.Digest,
				"shard_primaries": strconv.Itoa(ti.Primaries),
				"shard_replicas":  strconv.Itoa(ti.Replicas),
				"role":            ti.Role(),
			})
		case "place":
			key := req.Param("key")
			if key == "" {
				return vinci.Errorf("topology: missing key")
			}
			return vinci.OKResponse(map[string]string{
				"replicas": strings.Join(r.Ring().ReplicaSet(key), " "),
			})
		case "join":
			name, addr := req.Param("node"), req.Param("addr")
			if name == "" || addr == "" {
				return vinci.Errorf("topology: join needs node and addr")
			}
			if r.opts.Dial == nil {
				return vinci.Errorf("topology: router cannot dial (no dialer configured)")
			}
			c, err := r.opts.Dial(addr)
			if err != nil {
				return vinci.Errorf("topology: dial %s: %v", addr, err)
			}
			if err := r.JoinAddr(name, addr, c); err != nil {
				c.Close()
				return vinci.Errorf("topology: %v", err)
			}
			// A join accepted by this router must reach its peers, or two
			// routers would route under different memberships — the
			// single-authority footgun. The node is admitted either way
			// (the ring moved), but the caller hears about the split
			// loudly instead of discovering it as data loss.
			if berr := r.BroadcastRing(); berr != nil {
				return vinci.Errorf("topology: join admitted %s (epoch %d) but peer routers did not converge: %v",
					name, r.Ring().Epoch(), berr)
			}
			return vinci.OKResponse(map[string]string{
				"epoch": strconv.FormatUint(r.Ring().Epoch(), 10),
			})
		case "drain":
			if err := r.Drain(req.Param("node")); err != nil {
				return vinci.Errorf("topology: %v", err)
			}
			if berr := r.BroadcastRing(); berr != nil {
				return vinci.Errorf("topology: drain applied (epoch %d) but peer routers did not converge: %v",
					r.Ring().Epoch(), berr)
			}
			return vinci.OKResponse(map[string]string{
				"epoch": strconv.FormatUint(r.Ring().Epoch(), 10),
			})
		case "rejoin":
			if err := r.Rejoin(req.Param("node")); err != nil {
				return vinci.Errorf("topology: %v", err)
			}
			if berr := r.BroadcastRing(); berr != nil {
				return vinci.Errorf("topology: rejoin applied (epoch %d) but peer routers did not converge: %v",
					r.Ring().Epoch(), berr)
			}
			return vinci.OKResponse(map[string]string{
				"epoch": strconv.FormatUint(r.Ring().Epoch(), 10),
			})
		case "ring":
			return vinci.OKResponse(r.RingSpec().fields())
		case "adopt":
			spec, err := parseRingSpec(req.Params)
			if err != nil {
				return vinci.Errorf("topology: %v", err)
			}
			if _, err := r.OfferRing(spec); err != nil {
				return vinci.Errorf("topology: adopt: %v", err)
			}
			// Answer with our own (possibly just-adopted) spec: when the
			// offer lost the resolution rule, this is how the offering
			// router learns it is the one behind.
			return vinci.OKResponse(r.RingSpec().fields())
		}
		return vinci.Errorf("topology: unknown op %q", req.Op)
	})
}

// TopologyStatus is the router's self-reported cluster state.
type TopologyStatus struct {
	Epoch    uint64
	Digest   string
	Members  []string
	Suspects []string
	Replicas int
}

// TopologyClient is the typed client for the topology service.
type TopologyClient struct{ C vinci.Client }

// Status fetches the cluster status.
func (tc TopologyClient) Status() (TopologyStatus, error) {
	resp, err := tc.C.Call(vinci.Request{Service: TopologyService, Op: "status"})
	if err != nil {
		return TopologyStatus{}, err
	}
	if !resp.OK {
		return TopologyStatus{}, fmt.Errorf("%s", resp.Error)
	}
	st := TopologyStatus{Digest: resp.Fields["digest"]}
	st.Epoch, _ = strconv.ParseUint(resp.Fields["epoch"], 10, 64)
	st.Replicas, _ = strconv.Atoi(resp.Fields["replicas"])
	st.Members = strings.Fields(resp.Fields["members"])
	st.Suspects = strings.Fields(resp.Fields["suspects"])
	return st, nil
}

// Node returns a member's shard roles and the ring epoch — what a
// joined storage node folds into its own health reports.
func (tc TopologyClient) Node(name string) (services.TopologyInfo, error) {
	resp, err := tc.C.Call(vinci.Request{Service: TopologyService, Op: "node",
		Params: map[string]string{"node": name}})
	if err != nil {
		return services.TopologyInfo{}, err
	}
	if !resp.OK {
		return services.TopologyInfo{}, fmt.Errorf("%s", resp.Error)
	}
	ti := services.TopologyInfo{Digest: resp.Fields["ring_digest"]}
	ti.Epoch, _ = strconv.ParseUint(resp.Fields["ring_epoch"], 10, 64)
	ti.Primaries, _ = strconv.Atoi(resp.Fields["shard_primaries"])
	ti.Replicas, _ = strconv.Atoi(resp.Fields["shard_replicas"])
	return ti, nil
}

// Place returns the replica set for a key, primary first.
func (tc TopologyClient) Place(key string) ([]string, error) {
	resp, err := tc.C.Call(vinci.Request{Service: TopologyService, Op: "place",
		Params: map[string]string{"key": key}})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("%s", resp.Error)
	}
	return strings.Fields(resp.Fields["replicas"]), nil
}

// Join asks the router to admit the named node at addr.
func (tc TopologyClient) Join(node, addr string) error {
	resp, err := tc.C.Call(vinci.Request{Service: TopologyService, Op: "join",
		Params: map[string]string{"node": node, "addr": addr}})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("%s", resp.Error)
	}
	return nil
}

// Drain asks the router to retire the named node.
func (tc TopologyClient) Drain(node string) error {
	resp, err := tc.C.Call(vinci.Request{Service: TopologyService, Op: "drain",
		Params: map[string]string{"node": node}})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("%s", resp.Error)
	}
	return nil
}

// RingSpec fetches the router's active ring as a wire spec.
func (tc TopologyClient) RingSpec() (RingSpec, error) {
	resp, err := tc.C.Call(vinci.Request{Service: TopologyService, Op: "ring"})
	if err != nil {
		return RingSpec{}, err
	}
	if !resp.OK {
		return RingSpec{}, fmt.Errorf("%s", resp.Error)
	}
	return parseRingSpec(resp.Fields)
}

// OfferRing advertises a ring to the router and returns the ring the
// router is left serving (the offered one if it won resolution, the
// router's own — possibly ahead — otherwise).
func (tc TopologyClient) OfferRing(spec RingSpec) (RingSpec, error) {
	resp, err := tc.C.Call(vinci.Request{Service: TopologyService, Op: "adopt",
		Params: spec.fields()})
	if err != nil {
		return RingSpec{}, err
	}
	if !resp.OK {
		return RingSpec{}, fmt.Errorf("%s", resp.Error)
	}
	return parseRingSpec(resp.Fields)
}

// Rejoin asks the router to catch the named member up after recovery.
func (tc TopologyClient) Rejoin(node string) error {
	resp, err := tc.C.Call(vinci.Request{Service: TopologyService, Op: "rejoin",
		Params: map[string]string{"node": node}})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("%s", resp.Error)
	}
	return nil
}
