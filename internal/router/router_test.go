package router

import (
	"fmt"
	"testing"

	"webfountain/internal/faults"
	"webfountain/internal/index"
	"webfountain/internal/services"
	"webfountain/internal/store"
	"webfountain/internal/tokenize"
	"webfountain/internal/vinci"
)

// testNode is one in-process storage node: store, index, sentiment
// index, and the full service surface, reachable only through a fault
// gate so tests can kill and partition it.
type testNode struct {
	name string
	st   *store.Store
	ix   *index.Index
	sx   *index.SentimentIndex
	gate *faults.Gate
	c    vinci.Client
}

func newTestNode(name string) *testNode {
	n := &testNode{
		name: name,
		st:   store.New(4),
		ix:   index.New(),
		sx:   index.NewSentimentIndex(),
		gate: faults.NewGate(name),
	}
	tk := tokenize.New()
	hooks := services.StoreHooks{
		OnPut: func(e *store.Entity) {
			toks := tk.Tokenize(e.Text)
			words := make([]string, len(toks))
			for i := range toks {
				words[i] = toks[i].Text
			}
			n.ix.Add(e.ID, words)
		},
		OnDelete: func(id string) { n.ix.Remove(id) },
	}
	reg := vinci.NewRegistry()
	services.RegisterStoreWith(reg, n.st, hooks)
	services.RegisterIndex(reg, n.ix)
	services.RegisterSentiment(reg, n.sx)
	services.RegisterReplica(reg, n.st, hooks)
	services.RegisterHealth(reg, services.HealthOptions{Node: name})
	n.c = n.gate.Client(vinci.NewLocalClient(reg))
	return n
}

// cluster is a router over in-process nodes.
type cluster struct {
	r     *Router
	nodes map[string]*testNode
}

func newCluster(t *testing.T, names []string, opts Options) *cluster {
	t.Helper()
	c := &cluster{nodes: map[string]*testNode{}}
	var handles []NodeHandle
	for _, name := range names {
		n := newTestNode(name)
		c.nodes[name] = n
		handles = append(handles, NodeHandle{Name: name, Client: n.c})
	}
	c.r = New(handles, opts)
	t.Cleanup(func() { c.r.Close() })
	return c
}

func testEntity(i int) *store.Entity {
	return &store.Entity{
		ID:   fmt.Sprintf("doc-%06d", i),
		Text: fmt.Sprintf("document number %d about topic%d", i, i%5),
	}
}

func (c *cluster) put(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := c.r.Put(testEntity(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
}

// holders counts which nodes physically hold an ID.
func (c *cluster) holders(id string) []string {
	var out []string
	for name, n := range c.nodes {
		if _, ok := n.st.Get(id); ok {
			out = append(out, name)
		}
	}
	return out
}

func TestRouterReplicatesWrites(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2", "n3"}, Options{Replicas: 2, Seed: 42})
	c.put(t, 50)
	for i := 0; i < 50; i++ {
		id := testEntity(i).ID
		holders := c.holders(id)
		if len(holders) != 2 {
			t.Fatalf("%s held by %v, want exactly R=2 nodes", id, holders)
		}
		want := c.r.Ring().ReplicaSet(id)
		for _, h := range holders {
			if !containsStr(want, h) {
				t.Fatalf("%s held by %s, outside its replica set %v", id, h, want)
			}
		}
		e, err := c.r.Get(id)
		if err != nil || e.ID != id {
			t.Fatalf("get %s: %v", id, err)
		}
	}
	n, err := c.r.NumEntities()
	if err != nil || n != 50 {
		t.Fatalf("NumEntities=%d err=%v, want 50", n, err)
	}
}

func TestRouterGetNotFoundIsDefinitive(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2"}, Options{Seed: 1})
	if _, err := c.r.Get("doc-999999"); !IsNotFound(err) {
		t.Fatalf("err=%v, want definitive not-found", err)
	}
}

func TestRouterReadFailoverAfterKill(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2", "n3"}, Options{Replicas: 2, Seed: 42})
	c.put(t, 30)
	// Kill the primary of one key and read it: the answer must come from
	// the surviving replica on the very next call.
	id := testEntity(7).ID
	victim := c.r.Ring().Primary(id)
	c.nodes[victim].gate.Kill()
	e, err := c.r.Get(id)
	if err != nil || e.ID != id {
		t.Fatalf("get with dead primary: %v", err)
	}
	// The failed call was itself the probe: one round later the detector
	// holds the suspicion, and reads stop paying the refused attempt.
	c.r.ProbeOnce()
	if !c.r.det.Suspect(victim) {
		t.Fatalf("%s not suspected within one probe of the kill", victim)
	}
	c.nodes[victim].gate.ResetCounts()
	for i := 0; i < 30; i++ {
		if _, err := c.r.Get(id); err != nil {
			t.Fatalf("read %d with suspected primary: %v", i, err)
		}
	}
	if _, refused := c.nodes[victim].gate.Counts(); refused != 0 {
		t.Fatalf("suspected node still fielding %d read attempts", refused)
	}
}

func TestRouterWriteSurvivesDeadReplicaAndRejoinCatchesUp(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2", "n3"}, Options{Replicas: 2, Seed: 7, WriteQuorum: 1})
	c.put(t, 10)
	victim := "n2"
	c.nodes[victim].gate.Kill()
	epochBefore := c.r.Ring().Epoch()
	c.put(t, 40) // 30 new writes, all acked despite the dead node
	// While the node is down, rejoin must fail and must not bump the epoch.
	if err := c.r.Rejoin(victim); err == nil {
		t.Fatal("rejoin of a dead node must fail")
	}
	if got := c.r.Ring().Epoch(); got != epochBefore {
		t.Fatalf("failed rejoin bumped epoch %d→%d", epochBefore, got)
	}
	c.nodes[victim].gate.Revive()
	if err := c.r.Rejoin(victim); err != nil {
		t.Fatalf("rejoin after revive: %v", err)
	}
	if got := c.r.Ring().Epoch(); got != epochBefore+1 {
		t.Fatalf("successful rejoin: epoch %d, want %d", got, epochBefore+1)
	}
	// The revived node now holds every entity it owns, including writes
	// it missed while dead.
	for i := 0; i < 40; i++ {
		id := testEntity(i).ID
		if !c.r.Ring().Owns(victim, id) {
			continue
		}
		if _, ok := c.nodes[victim].st.Get(id); !ok {
			t.Fatalf("rejoined %s missing owned entity %s", victim, id)
		}
	}
}

func TestRouterRejoinReconcilesTombstones(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2", "n3"}, Options{Replicas: 2, Seed: 11, WriteQuorum: 1})
	c.put(t, 20)
	// Find an entity the victim owns, delete it while the victim is down.
	victim := "n3"
	var id string
	for i := 0; i < 20; i++ {
		if cand := testEntity(i).ID; c.r.Ring().Owns(victim, cand) {
			id = cand
			break
		}
	}
	if id == "" {
		t.Skip("victim owns nothing in this placement")
	}
	c.nodes[victim].gate.Kill()
	if err := c.r.Delete(id); err != nil {
		t.Fatalf("delete with dead replica: %v", err)
	}
	c.nodes[victim].gate.Revive()
	if err := c.r.Rejoin(victim); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.nodes[victim].st.Get(id); ok {
		t.Fatalf("deleted entity %s resurrected on rejoined node", id)
	}
	if n, err := c.r.NumEntities(); err != nil || n != 19 {
		t.Fatalf("NumEntities=%d err=%v, want 19", n, err)
	}
}

func TestRouterSearchFansAcrossNodes(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2", "n3"}, Options{Replicas: 2, Seed: 42})
	c.put(t, 25)
	ids, err := c.r.Search("all", "topic1")
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 25; i++ {
		if i%5 == 1 {
			want++
		}
	}
	if len(ids) != want {
		t.Fatalf("search found %d docs, want %d (replica dedup broken?)", len(ids), want)
	}
	// Search still answers with a node down.
	c.nodes["n1"].gate.Kill()
	if _, err := c.r.Search("all", "document"); err != nil {
		t.Fatalf("search with dead node: %v", err)
	}
}

func TestRouterSentimentMergeDedupes(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2"}, Options{Replicas: 2, Seed: 3})
	entry := index.SentimentEntry{DocID: "doc-000001", Sentence: 0, Subject: "phones", Polarity: 1, Snippet: "great phones"}
	// Both replicas indexed the same document and produced the identical
	// entry; the merged answer must count it once.
	c.nodes["n1"].sx.Add(entry)
	c.nodes["n2"].sx.Add(entry)
	c.nodes["n2"].sx.Add(index.SentimentEntry{DocID: "doc-000002", Sentence: 1, Subject: "phones", Polarity: -1, Snippet: "bad phones"})
	entries, err := c.r.SentimentQuery("phones")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("merged %d entries, want 2 (replica copies deduped): %+v", len(entries), entries)
	}
	pos, neg, err := c.r.SentimentCounts("phones")
	if err != nil || pos != 1 || neg != 1 {
		t.Fatalf("counts=%d/%d err=%v, want 1/1", pos, neg, err)
	}
}

func TestRouterJoinHandoff(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2"}, Options{Replicas: 2, Seed: 42})
	c.put(t, 40)
	n3 := newTestNode("n3")
	c.nodes["n3"] = n3
	epochBefore := c.r.Ring().Epoch()
	if err := c.r.Join("n3", n3.c); err != nil {
		t.Fatal(err)
	}
	if got := c.r.Ring().Epoch(); got != epochBefore+1 {
		t.Fatalf("join epoch %d, want %d", got, epochBefore+1)
	}
	if !c.r.Ring().Has("n3") {
		t.Fatal("ring missing joined node")
	}
	// The new node holds exactly what it now owns (catch-up shipped it).
	for i := 0; i < 40; i++ {
		id := testEntity(i).ID
		_, has := n3.st.Get(id)
		if c.r.Ring().Owns("n3", id) && !has {
			t.Fatalf("joined node missing owned entity %s", id)
		}
	}
	// And its index was maintained through the catch-up hooks.
	if got, err := (services.IndexClient{C: n3.c}).Search("all", "document"); err != nil || len(got) == 0 {
		t.Fatalf("joined node index empty: %v %v", got, err)
	}
	// Reads and counts still correct cluster-wide.
	if n, err := c.r.NumEntities(); err != nil || n != 40 {
		t.Fatalf("NumEntities=%d err=%v", n, err)
	}
}

func TestRouterJoinAbortsCleanlyWhenTargetDies(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2"}, Options{Replicas: 2, Seed: 42})
	c.put(t, 30)
	n3 := newTestNode("n3")
	n3.gate.Kill() // dies before catch-up can reach it
	epochBefore := c.r.Ring().Epoch()
	digestBefore := c.r.Ring().Digest()
	if err := c.r.Join("n3", n3.c); err == nil {
		t.Fatal("join of a dead node must abort")
	}
	if c.r.Ring().Epoch() != epochBefore || c.r.Ring().Digest() != digestBefore {
		t.Fatal("aborted join must not move the ring")
	}
	if c.r.Ring().Has("n3") {
		t.Fatal("aborted join left a ghost member")
	}
	// Writes during/after the aborted attempt are unaffected.
	c.put(t, 35)
	// Retry after revival converges.
	n3.gate.Revive()
	c.nodes["n3"] = n3
	if err := c.r.Join("n3", n3.c); err != nil {
		t.Fatalf("retried join: %v", err)
	}
	if c.r.Ring().Epoch() != epochBefore+1 {
		t.Fatalf("epoch after one aborted and one successful join = %d, want %d (aborts must not count)",
			c.r.Ring().Epoch(), epochBefore+1)
	}
}

func TestRouterDrain(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2", "n3"}, Options{Replicas: 2, Seed: 42})
	c.put(t, 40)
	if err := c.r.Drain("n2"); err != nil {
		t.Fatal(err)
	}
	if c.r.Ring().Has("n2") {
		t.Fatal("drained node still in ring")
	}
	// Every entity is still fully replicated among survivors, and no
	// acked write was lost.
	for i := 0; i < 40; i++ {
		id := testEntity(i).ID
		e, err := c.r.Get(id)
		if err != nil || e.ID != id {
			t.Fatalf("get %s after drain: %v", id, err)
		}
		holders := 0
		for _, name := range []string{"n1", "n3"} {
			if _, ok := c.nodes[name].st.Get(id); ok {
				holders++
			}
		}
		if holders != 2 {
			t.Fatalf("%s on %d survivors, want full R=2 replication after drain", id, holders)
		}
	}
	if err := c.r.Drain("n1"); err == nil {
		// n1 and n3 remain; draining down to one member is allowed...
		if err := c.r.Drain("n3"); err == nil {
			t.Fatal("draining the last member must fail")
		}
	}
}

func TestRouterPartitionHealsWithoutDataLoss(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2", "n3"}, Options{Replicas: 2, Seed: 9, WriteQuorum: 1})
	c.put(t, 15)
	c.nodes["n1"].gate.Partition()
	c.put(t, 30) // writes flow during the partition
	for i := 0; i < 30; i++ {
		if _, err := c.r.Get(testEntity(i).ID); err != nil {
			t.Fatalf("read during partition: %v", err)
		}
	}
	c.nodes["n1"].gate.Heal()
	if err := c.r.Rejoin("n1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		id := testEntity(i).ID
		if c.r.Ring().Owns("n1", id) {
			if _, ok := c.nodes["n1"].st.Get(id); !ok {
				t.Fatalf("healed node missing owned entity %s", id)
			}
		}
	}
}

func TestTopologyServiceOps(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2"}, Options{Replicas: 2, Seed: 5})
	c.put(t, 10)
	reg := vinci.NewRegistry()
	c.r.RegisterTopology(reg)
	tc := TopologyClient{C: vinci.NewLocalClient(reg)}
	st, err := tc.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 0 || len(st.Members) != 2 || st.Replicas != 2 || st.Digest == "" {
		t.Fatalf("status = %+v", st)
	}
	set, err := tc.Place("doc-000001")
	if err != nil || len(set) != 2 {
		t.Fatalf("place = %v err=%v", set, err)
	}
	if set[0] != c.r.Ring().Primary("doc-000001") {
		t.Fatal("place order must be primary-first")
	}
	if err := tc.Rejoin("n1"); err != nil {
		t.Fatal(err)
	}
	if st2, _ := tc.Status(); st2.Epoch != 1 {
		t.Fatalf("rejoin via service: epoch %d, want 1", st2.Epoch)
	}
	if err := tc.Drain("n2"); err != nil {
		t.Fatal(err)
	}
	if st3, _ := tc.Status(); len(st3.Members) != 1 {
		t.Fatalf("drain via service left members %v", st3.Members)
	}
}

func TestRouterTopologyInfoFor(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2", "n3"}, Options{Replicas: 2, Seed: 42})
	ti := c.r.TopologyInfoFor("n1")
	if ti.Epoch != 0 || ti.Digest == "" || ti.Primaries == 0 || ti.Replicas == 0 {
		t.Fatalf("topology info = %+v", ti)
	}
	if ti.Role() != "primary" {
		t.Fatalf("role = %s", ti.Role())
	}
}

// TestRouterRejoinKeepsSoleCopy: a write that acked on exactly one
// replica (the peer dropped it) and then rode that node through a
// crash must survive reconciliation — with no tombstone on any live
// peer there is no delete evidence, so catch-up keeps the sole copy
// and re-replicates it to the entity's other owners.
func TestRouterRejoinKeepsSoleCopy(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2", "n3"}, Options{Replicas: 2, Seed: 11})
	c.put(t, 20)
	victim := "n3"
	var id string
	for i := 1000; id == ""; i++ {
		if cand := testEntity(i).ID; c.r.Ring().Owns(victim, cand) {
			id = cand
		}
	}
	// The acked-on-one write: only the victim holds it, nobody holds a
	// tombstone for it.
	if err := c.nodes[victim].st.Put(&store.Entity{ID: id, Text: "sole survivor", Version: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.r.Rejoin(victim); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.nodes[victim].st.Get(id); !ok {
		t.Fatalf("reconciliation destroyed the sole copy of %s", id)
	}
	// Re-replication restored R copies on the entity's replica set.
	holders := c.holders(id)
	if len(holders) != 2 {
		t.Fatalf("%s held by %v after rejoin, want full R=2", id, holders)
	}
	want := c.r.Ring().ReplicaSet(id)
	for _, h := range holders {
		if !containsStr(want, h) {
			t.Fatalf("%s re-replicated to %s, outside replica set %v", id, h, want)
		}
	}
	e, err := c.r.Get(id)
	if err != nil || e.Text != "sole survivor" {
		t.Fatalf("get %s after rejoin: %+v %v", id, e, err)
	}
}
