// Package router is the stateless routing tier of a replicated
// WebFountain deployment. A Router owns no data: it holds a consistent-
// hash ring (internal/topology), a Vinci client per storage node, and a
// failure detector, and forwards every operation to the replica set the
// ring assigns. Writes fan to all replicas of the key (primary first)
// and acknowledge on the first success; reads race the first two live
// replicas through the hedged-read machinery and fall back across the
// rest, so a node kill costs at most one failed attempt before the
// answer comes from a live replica. Because placement is a pure
// function of the ring, any number of routers compute identical routing
// without coordinating — the tier scales by just starting more of them.
package router

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"webfountain/internal/index"
	"webfountain/internal/services"
	"webfountain/internal/store"
	"webfountain/internal/topology"
	"webfountain/internal/vinci"
)

// NodeHandle names a storage node and the client the router reaches it
// through.
type NodeHandle struct {
	Name   string
	Client vinci.Client
}

// Options tunes a Router. The zero value is usable for tests.
type Options struct {
	// Replicas is the replica-set size R (default 2).
	Replicas int
	// VNodes is the virtual-node count per member (default 64).
	VNodes int
	// Seed fixes shard placement (see topology.Config.Seed).
	Seed int64
	// ProbeInterval is the background health-probe cadence; 0 disables
	// the probe loop (every routed call still feeds the detector, so
	// detection works — just without the idle-cluster heartbeat).
	ProbeInterval time.Duration
	// HedgeAfter is the fixed hedge trigger for replica-fanned reads
	// (0 selects the adaptive p95 trigger).
	HedgeAfter time.Duration
	// Detector tunes failure detection.
	Detector topology.DetectorOptions
	// Dial, when set, lets the topology service's join op connect to a
	// new node by address.
	Dial func(addr string) (vinci.Client, error)
}

func (o Options) normalized() Options {
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.VNodes <= 0 {
		o.VNodes = 64
	}
	return o
}

// node is one storage node as the router sees it: its name and its
// detector-reporting client.
type node struct {
	name string
	c    vinci.Client
}

// Router routes platform operations across a replicated node set.
type Router struct {
	opts Options
	det  *topology.Detector

	// ring is the active placement; pending is non-nil only while a
	// handoff is in flight, and carries the membership being moved to
	// (writes dual-target both rings so nothing lands only on the old
	// layout). Both swap atomically: a request sees exactly one epoch.
	ring    atomic.Pointer[topology.Ring]
	pending atomic.Pointer[topology.Ring]

	// mu serializes membership operations (join/drain/rejoin); nmu
	// guards the nodes map for the hot read/write paths.
	mu    sync.Mutex
	nmu   sync.RWMutex
	nodes map[string]*node

	// seq stamps Entity.Version on every Put, making writes of one ID
	// totally ordered so replication catch-up can refuse to roll a newer
	// copy back to an older shipped frame. The counter is router-local:
	// a deployment running several routers concurrently would need a
	// shared sequence (or per-key vector) for the same guarantee.
	seq atomic.Uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

// reportingClient feeds every call outcome into the failure detector:
// transport errors are failure evidence, anything the node answered
// (even an application error or a shed) proves it alive. Routing
// through it makes every request double as a probe, so detection
// latency is one call, not one timer tick.
type reportingClient struct {
	c    vinci.Client
	det  *topology.Detector
	node string
}

func (rc *reportingClient) Call(req vinci.Request) (vinci.Response, error) {
	resp, err := rc.c.Call(req)
	if err != nil {
		rc.det.ReportFailure(rc.node)
	} else {
		rc.det.ReportSuccess(rc.node)
	}
	return resp, err
}

func (rc *reportingClient) Close() error { return rc.c.Close() }

// New builds a router over the given nodes. The router does not take
// ownership of the clients; Close stops probing but leaves them open.
func New(handles []NodeHandle, opts Options) *Router {
	opts = opts.normalized()
	r := &Router{
		opts:  opts,
		det:   topology.NewDetector(opts.Detector),
		nodes: make(map[string]*node, len(handles)),
		stop:  make(chan struct{}),
	}
	names := make([]string, 0, len(handles))
	for _, h := range handles {
		names = append(names, h.Name)
		r.nodes[h.Name] = &node{name: h.Name, c: &reportingClient{c: h.Client, det: r.det, node: h.Name}}
	}
	r.ring.Store(topology.New(names, topology.Config{
		VNodes:   opts.VNodes,
		Replicas: opts.Replicas,
		Seed:     opts.Seed,
	}))
	if opts.ProbeInterval > 0 {
		r.wg.Add(1)
		go r.probeLoop()
	}
	return r
}

// Close stops the probe loop. Node clients stay open (the caller owns
// them).
func (r *Router) Close() error {
	close(r.stop)
	r.wg.Wait()
	return nil
}

// Ring returns the active ring.
func (r *Router) Ring() *topology.Ring { return r.ring.Load() }

// Detector exposes the failure detector (read-only use: status, tests).
func (r *Router) Detector() *topology.Detector { return r.det }

// Suspects lists currently suspected members, sorted.
func (r *Router) Suspects() []string {
	var out []string
	for _, h := range r.det.Snapshot() {
		if h.Suspected && r.Ring().Has(h.Node) {
			out = append(out, h.Node)
		}
	}
	return out
}

// TopologyInfoFor summarizes a node's place in the active ring — what
// the node's health service reports.
func (r *Router) TopologyInfoFor(name string) services.TopologyInfo {
	ring := r.Ring()
	p, rep := ring.RoleCounts(name)
	return services.TopologyInfo{Epoch: ring.Epoch(), Digest: ring.Digest(), Primaries: p, Replicas: rep}
}

// probeLoop pings every node each interval. The reporting clients do
// the bookkeeping; a killed node accrues failures here even when no
// requests are flowing, which bounds failover latency for idle shards
// to one probe interval.
func (r *Router) probeLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			var wg sync.WaitGroup
			for _, n := range r.snapshotNodes() {
				wg.Add(1)
				go func(n *node) {
					defer wg.Done()
					_ = services.HealthClient{C: n.c}.Ping()
				}(n)
			}
			wg.Wait()
		}
	}
}

// ProbeOnce runs one synchronous probe round — the deterministic
// alternative the chaos harness uses instead of racing the ticker.
func (r *Router) ProbeOnce() {
	for _, n := range r.snapshotNodes() {
		_ = services.HealthClient{C: n.c}.Ping()
	}
}

func (r *Router) snapshotNodes() []*node {
	r.nmu.RLock()
	defer r.nmu.RUnlock()
	out := make([]*node, 0, len(r.nodes))
	for _, n := range r.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (r *Router) lookup(name string) (*node, bool) {
	r.nmu.RLock()
	defer r.nmu.RUnlock()
	n, ok := r.nodes[name]
	return n, ok
}

// writeSet resolves a key's write targets: the union of its replica
// sets under the active and (during handoff) pending rings, primary
// first. Every target is attempted — even suspected ones, whose refusal
// is cheap — because a write that skips a merely-slow replica creates
// the stale copy failover would later read.
func (r *Router) writeSet(key string) []*node {
	names := r.ring.Load().ReplicaSet(key)
	if p := r.pending.Load(); p != nil {
		for _, n := range p.ReplicaSet(key) {
			if !containsStr(names, n) {
				names = append(names, n)
			}
		}
	}
	out := make([]*node, 0, len(names))
	for _, name := range names {
		if n, ok := r.lookup(name); ok {
			out = append(out, n)
		}
	}
	return out
}

// readOrder resolves a key's read candidates: the active replica set
// with suspected nodes demoted to the back (still tried last — a
// suspect may be falsely accused, and a wrong answer beats none).
func (r *Router) readOrder(key string) []*node {
	names := r.ring.Load().ReplicaSet(key)
	live := make([]*node, 0, len(names))
	var suspected []*node
	for _, name := range names {
		n, ok := r.lookup(name)
		if !ok {
			continue
		}
		if r.det.Suspect(name) {
			suspected = append(suspected, n)
		} else {
			live = append(live, n)
		}
	}
	return append(live, suspected...)
}

func containsStr(set []string, s string) bool {
	for _, v := range set {
		if v == s {
			return true
		}
	}
	return false
}

// --- write path ---

// Put replicates an entity to every node in its write set and
// acknowledges once at least one replica accepted it. Failed replicas
// are reported to the detector and caught up at rejoin; an
// acknowledged Put therefore survives any failure that leaves one
// acking replica recoverable.
func (r *Router) Put(e *store.Entity) error {
	targets := r.writeSet(e.ID)
	if len(targets) == 0 {
		return fmt.Errorf("router: put %s: no nodes", e.ID)
	}
	e.Version = r.seq.Add(1)
	acks := 0
	var lastErr error
	for _, n := range targets {
		if err := (services.StoreClient{C: n.c}).Put(e); err != nil {
			lastErr = err
		} else {
			acks++
		}
	}
	if acks == 0 {
		return fmt.Errorf("router: put %s: no replica acked: %w", e.ID, lastErr)
	}
	return nil
}

// Delete removes an entity from every node in its write set; like Put
// it acknowledges on the first success.
func (r *Router) Delete(id string) error {
	targets := r.writeSet(id)
	if len(targets) == 0 {
		return fmt.Errorf("router: delete %s: no nodes", id)
	}
	acks := 0
	var lastErr error
	for _, n := range targets {
		if err := (services.StoreClient{C: n.c}).Delete(id); err != nil {
			lastErr = err
		} else {
			acks++
		}
	}
	if acks == 0 {
		return fmt.Errorf("router: delete %s: no replica acked: %w", id, lastErr)
	}
	return nil
}

// --- read path ---

// errNotFound distinguishes "every replica answered and none has it"
// from "no replica reachable".
type errNotFound struct{ id string }

func (e errNotFound) Error() string { return fmt.Sprintf("router: no entity %q", e.id) }

// IsNotFound reports whether err is a definitive not-found answer.
func IsNotFound(err error) bool {
	_, ok := err.(errNotFound)
	return ok
}

// getFrom fetches id through one client, separating transport failure
// (try elsewhere), authoritative not-found (this replica answered), and
// success.
func getFrom(c vinci.Client, id string) (*store.Entity, bool, error) {
	resp, err := c.Call(vinci.Request{Service: services.StoreService, Op: "get",
		Params: map[string]string{"id": id}})
	if err != nil {
		return nil, false, err
	}
	if !resp.OK {
		return nil, false, nil // answered: not here (possibly a stale replica mid-catch-up)
	}
	e, perr := store.ParseEntity([]byte(resp.Fields["entity"]))
	if perr != nil {
		return nil, false, perr
	}
	return e, true, nil
}

// Get reads an entity from its replica set. With two or more live
// replicas the first two race through the hedged-read machinery (both
// transports are different nodes, so the hedge is also the failover);
// remaining replicas are tried in order. A replica that answers
// not-found does not end the read — during catch-up a just-revived
// node is authoritative about nothing except what it has.
func (r *Router) Get(id string) (*store.Entity, error) {
	candidates := r.readOrder(id)
	if len(candidates) == 0 {
		return nil, fmt.Errorf("router: get %s: no nodes", id)
	}
	if len(candidates) >= 2 {
		h := vinci.NewHedged(candidates[0].c, candidates[1].c, vinci.HedgeOptions{
			After: r.opts.HedgeAfter,
			// The router only routes the read-only get op through this
			// client, so it is idempotent regardless of the store service's
			// blanket (write-bearing) classification.
			IsIdempotent: func(string) bool { return true },
		})
		if e, found, err := getFrom(h, id); err == nil && found {
			return e, nil
		}
		// Hedge inconclusive (both down, or fastest answered not-found):
		// fall through to the ordered scan for the authoritative answer.
	}
	answered := false
	var lastErr error
	for _, n := range candidates {
		e, found, err := getFrom(n.c, id)
		if err != nil {
			lastErr = err
			continue
		}
		if found {
			return e, nil
		}
		answered = true
	}
	if answered {
		return nil, errNotFound{id: id}
	}
	return nil, fmt.Errorf("router: get %s: no replica reachable: %w", id, lastErr)
}

// --- fan-out queries ---

// liveFirst returns all nodes, non-suspected first, each group sorted
// by name.
func (r *Router) liveFirst() []*node {
	all := r.snapshotNodes()
	live := make([]*node, 0, len(all))
	var suspected []*node
	for _, n := range all {
		if r.det.Suspect(n.name) {
			suspected = append(suspected, n)
		} else {
			live = append(live, n)
		}
	}
	return append(live, suspected...)
}

// Search fans a query across every node (each node indexes only the
// entities it stores) and unions the results. Suspected nodes are
// still consulted last — their shard may have no other live index —
// but their failure does not fail the query as long as someone
// answered.
func (r *Router) Search(mode string, terms ...string) ([]string, error) {
	seen := map[string]bool{}
	answered := 0
	var lastErr error
	for _, n := range r.liveFirst() {
		ids, err := services.IndexClient{C: n.c}.Search(mode, terms...)
		if err != nil {
			lastErr = err
			continue
		}
		answered++
		for _, id := range ids {
			seen[id] = true
		}
	}
	if answered == 0 {
		return nil, fmt.Errorf("router: search: no node answered: %w", lastErr)
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// IDs returns the sorted distinct entity IDs across the cluster
// (replicas hold copies, so per-node listings cannot just be
// concatenated).
func (r *Router) IDs() ([]string, error) {
	seen := map[string]bool{}
	answered := 0
	var lastErr error
	for _, n := range r.liveFirst() {
		ids, err := services.StoreClient{C: n.c}.IDs()
		if err != nil {
			lastErr = err
			continue
		}
		answered++
		for _, id := range ids {
			seen[id] = true
		}
	}
	if answered == 0 {
		return nil, fmt.Errorf("router: ids: no node answered: %w", lastErr)
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// NumEntities counts distinct entities across the cluster.
func (r *Router) NumEntities() (int, error) {
	ids, err := r.IDs()
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

// SentimentQuery fans a subject query across the cluster and merges
// per-replica answers. Entries are deduplicated structurally — a
// sentiment entry is a pure function of the document text, so replicas
// of one document produce identical entries — and returned in the same
// total order a single node would use.
func (r *Router) SentimentQuery(subject string) ([]index.SentimentEntry, error) {
	seen := map[index.SentimentEntry]bool{}
	answered := 0
	var lastErr error
	for _, n := range r.liveFirst() {
		entries, err := services.SentimentClient{C: n.c}.Query(subject)
		if err != nil {
			lastErr = err
			continue
		}
		answered++
		for _, e := range entries {
			seen[e] = true
		}
	}
	if answered == 0 {
		return nil, fmt.Errorf("router: sentiment: no node answered: %w", lastErr)
	}
	out := make([]index.SentimentEntry, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.DocID != b.DocID {
			return a.DocID < b.DocID
		}
		if a.Sentence != b.Sentence {
			return a.Sentence < b.Sentence
		}
		if a.Polarity != b.Polarity {
			return a.Polarity < b.Polarity
		}
		return a.Snippet < b.Snippet
	})
	return out, nil
}

// SentimentCounts aggregates a subject's sentiment across the cluster,
// counting each distinct entry once.
func (r *Router) SentimentCounts(subject string) (positive, negative int, err error) {
	entries, err := r.SentimentQuery(subject)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		if e.Polarity > 0 {
			positive++
		} else if e.Polarity < 0 {
			negative++
		}
	}
	return positive, negative, nil
}
