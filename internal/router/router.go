// Package router is the stateless routing tier of a replicated
// WebFountain deployment. A Router owns no data: it holds a consistent-
// hash ring (internal/topology), a Vinci client per storage node, and a
// failure detector, and forwards every operation to the replica set the
// ring assigns. Writes are stamped with hybrid-logical-clock versions
// (internal/hlc), fan to all replicas of the key in parallel, and
// acknowledge once WriteQuorum replicas accepted (stragglers complete
// in the background); reads consult ReadQuorum replicas, return the
// newest version and asynchronously repair stale ones, with a
// background anti-entropy sweep converging whatever the synchronous
// paths missed. Because placement is a pure function of the ring, any
// number of routers compute identical routing without coordinating —
// the tier scales by just starting more of them, with ring epochs kept
// in agreement through the topology control service (peers.go).
package router

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"webfountain/internal/hlc"
	"webfountain/internal/index"
	"webfountain/internal/services"
	"webfountain/internal/store"
	"webfountain/internal/topology"
	"webfountain/internal/vinci"
)

// NodeHandle names a storage node and the client the router reaches it
// through. Addr, when known, is the node's dialable address — what a
// peer router adopting this router's ring uses to connect to members
// it has never met.
type NodeHandle struct {
	Name   string
	Client vinci.Client
	Addr   string
}

// Options tunes a Router. The zero value is usable for tests.
type Options struct {
	// Replicas is the replica-set size R (default 2).
	Replicas int
	// VNodes is the virtual-node count per member (default 64).
	VNodes int
	// Seed fixes shard placement (see topology.Config.Seed).
	Seed int64
	// ProbeInterval is the background health-probe cadence; 0 disables
	// the probe loop (every routed call still feeds the detector, so
	// detection works — just without the idle-cluster heartbeat).
	ProbeInterval time.Duration
	// HedgeAfter is the fixed hedge trigger for replica-fanned reads
	// (0 selects the adaptive p95 trigger).
	HedgeAfter time.Duration
	// Detector tunes failure detection.
	Detector topology.DetectorOptions
	// Dial, when set, lets the topology service's join op connect to a
	// new node by address (and lets ring adoption from a peer router
	// reach members this router has never met).
	Dial func(addr string) (vinci.Client, error)
	// WriteQuorum is W: how many replicas must accept a put/delete
	// before it is acknowledged (default 2, clamped to the write set).
	// W=1 is availability mode — the pre-quorum first-ack behavior,
	// where a partition can strand the only acked copy until
	// anti-entropy heals it.
	WriteQuorum int
	// ReadQuorum is R: how many replicas a Get consults before
	// answering (default 1). With R>1 the newest version wins and stale
	// replicas are repaired asynchronously; R+W > Replicas makes reads
	// see every acknowledged write outside failure windows.
	ReadQuorum int
	// WriteTimeout is the per-replica deadline budget stamped on quorum
	// write attempts (0: no per-attempt deadline). It bounds how long a
	// slow replica can hold the quorum count below W before the write
	// fails over to the remaining targets.
	WriteTimeout time.Duration
	// AntiEntropyInterval is the background divergence-sweep cadence; 0
	// disables the loop (AntiEntropyOnce can still be called manually).
	AntiEntropyInterval time.Duration
	// Clock, when set, replaces the router's hybrid logical clock —
	// shared with the embedding process so health reports and routed
	// writes agree on one timeline.
	Clock *hlc.Clock
}

func (o Options) normalized() Options {
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.VNodes <= 0 {
		o.VNodes = 64
	}
	if o.WriteQuorum <= 0 {
		o.WriteQuorum = 2
	}
	if o.ReadQuorum <= 0 {
		o.ReadQuorum = 1
	}
	if o.Clock == nil {
		o.Clock = hlc.New(nil)
	}
	return o
}

// node is one storage node as the router sees it: its name, its
// detector-reporting client, and (when known) its dialable address.
type node struct {
	name string
	addr string
	c    vinci.Client
}

// Router routes platform operations across a replicated node set.
type Router struct {
	opts Options
	det  *topology.Detector

	// ring is the active placement; pending is non-nil only while a
	// handoff is in flight, and carries the membership being moved to
	// (writes dual-target both rings so nothing lands only on the old
	// layout). Both swap atomically: a request sees exactly one epoch.
	ring    atomic.Pointer[topology.Ring]
	pending atomic.Pointer[topology.Ring]

	// mu serializes membership operations (join/drain/rejoin); nmu
	// guards the nodes map for the hot read/write paths.
	mu    sync.Mutex
	nmu   sync.RWMutex
	nodes map[string]*node

	// clock stamps Entity.Version on every put and delete with a hybrid
	// logical timestamp, making writes of one ID totally ordered across
	// routers and across restarts: every version a router reads or
	// receives from a peer is folded back in via Observe, so a write
	// stamped after any observation of version v carries a version > v.
	clock *hlc.Clock

	// stale is set when a peer router proves this router's ring is
	// behind (higher epoch elsewhere) and ring adoption has not yet
	// succeeded. A stale router refuses to ack writes — acking under a
	// retired placement could land writes on nodes the current ring no
	// longer consults — but keeps serving reads.
	stale atomic.Bool

	// peers are other routers this one exchanges ring epochs with.
	pmu   sync.Mutex
	peers map[string]vinci.Client

	// inflight tracks write attempts that kept running after their
	// quorum was reached; Close waits for them so node clients are not
	// used after teardown.
	inflight sync.WaitGroup

	// aeDigests remembers each node's version digest at the end of the
	// last fully-converged anti-entropy sweep, enabling the digest fast
	// path (nothing changed anywhere -> nothing to diff).
	aeMu      sync.Mutex
	aeDigests map[string]string

	stop chan struct{}
	wg   sync.WaitGroup
}

// reportingClient feeds every call outcome into the failure detector:
// transport errors are failure evidence, anything the node answered
// (even an application error or a shed) proves it alive. Routing
// through it makes every request double as a probe, so detection
// latency is one call, not one timer tick.
type reportingClient struct {
	c    vinci.Client
	det  *topology.Detector
	node string
}

func (rc *reportingClient) Call(req vinci.Request) (vinci.Response, error) {
	resp, err := rc.c.Call(req)
	if err != nil {
		rc.det.ReportFailure(rc.node)
	} else {
		rc.det.ReportSuccess(rc.node)
	}
	return resp, err
}

func (rc *reportingClient) Close() error { return rc.c.Close() }

// New builds a router over the given nodes. The router does not take
// ownership of the clients; Close stops probing but leaves them open.
func New(handles []NodeHandle, opts Options) *Router {
	opts = opts.normalized()
	r := &Router{
		opts:  opts,
		det:   topology.NewDetector(opts.Detector),
		nodes: make(map[string]*node, len(handles)),
		peers: map[string]vinci.Client{},
		clock: opts.Clock,
		stop:  make(chan struct{}),
	}
	names := make([]string, 0, len(handles))
	for _, h := range handles {
		names = append(names, h.Name)
		r.nodes[h.Name] = &node{name: h.Name, addr: h.Addr, c: &reportingClient{c: h.Client, det: r.det, node: h.Name}}
	}
	r.ring.Store(topology.New(names, topology.Config{
		VNodes:   opts.VNodes,
		Replicas: opts.Replicas,
		Seed:     opts.Seed,
	}))
	if opts.ProbeInterval > 0 {
		r.wg.Add(1)
		go r.probeLoop()
	}
	if opts.AntiEntropyInterval > 0 {
		r.wg.Add(1)
		go r.antiEntropyLoop()
	}
	return r
}

// Close stops the probe and anti-entropy loops and waits for
// background write attempts (quorum stragglers, read repairs) to
// finish. Node clients stay open (the caller owns them).
func (r *Router) Close() error {
	close(r.stop)
	r.wg.Wait()
	r.inflight.Wait()
	return nil
}

// Clock exposes the router's hybrid logical clock (health reporting).
func (r *Router) Clock() *hlc.Clock { return r.clock }

// Quiesce blocks until every background write attempt currently in
// flight (quorum stragglers, read repairs) has completed. Determinism
// checkpoints use it: evidence from a straggler that completed before
// a fault can otherwise surface after it.
func (r *Router) Quiesce() { r.inflight.Wait() }

// Stale reports whether this router has refused writes since learning
// its ring is behind a peer's (see peers.go).
func (r *Router) Stale() bool { return r.stale.Load() }

// Ring returns the active ring.
func (r *Router) Ring() *topology.Ring { return r.ring.Load() }

// Detector exposes the failure detector (read-only use: status, tests).
func (r *Router) Detector() *topology.Detector { return r.det }

// Suspects lists currently suspected members, sorted.
func (r *Router) Suspects() []string {
	var out []string
	for _, h := range r.det.Snapshot() {
		if h.Suspected && r.Ring().Has(h.Node) {
			out = append(out, h.Node)
		}
	}
	return out
}

// TopologyInfoFor summarizes a node's place in the active ring — what
// the node's health service reports.
func (r *Router) TopologyInfoFor(name string) services.TopologyInfo {
	ring := r.Ring()
	p, rep := ring.RoleCounts(name)
	return services.TopologyInfo{Epoch: ring.Epoch(), Digest: ring.Digest(), Primaries: p, Replicas: rep}
}

// probeLoop pings every node each interval. The reporting clients do
// the bookkeeping; a killed node accrues failures here even when no
// requests are flowing, which bounds failover latency for idle shards
// to one probe interval.
func (r *Router) probeLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			var wg sync.WaitGroup
			for _, n := range r.snapshotNodes() {
				wg.Add(1)
				go func(n *node) {
					defer wg.Done()
					_ = services.HealthClient{C: n.c}.Ping()
				}(n)
			}
			wg.Wait()
		}
	}
}

// ProbeOnce runs one synchronous probe round — the deterministic
// alternative the chaos harness uses instead of racing the ticker.
func (r *Router) ProbeOnce() {
	for _, n := range r.snapshotNodes() {
		_ = services.HealthClient{C: n.c}.Ping()
	}
}

func (r *Router) snapshotNodes() []*node {
	r.nmu.RLock()
	defer r.nmu.RUnlock()
	out := make([]*node, 0, len(r.nodes))
	for _, n := range r.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (r *Router) lookup(name string) (*node, bool) {
	r.nmu.RLock()
	defer r.nmu.RUnlock()
	n, ok := r.nodes[name]
	return n, ok
}

// writeSet resolves a key's write targets: the union of its replica
// sets under the active and (during handoff) pending rings, primary
// first. Every target is attempted — even suspected ones, whose refusal
// is cheap — because a write that skips a merely-slow replica creates
// the stale copy failover would later read.
func (r *Router) writeSet(key string) []*node {
	names := r.ring.Load().ReplicaSet(key)
	if p := r.pending.Load(); p != nil {
		for _, n := range p.ReplicaSet(key) {
			if !containsStr(names, n) {
				names = append(names, n)
			}
		}
	}
	out := make([]*node, 0, len(names))
	for _, name := range names {
		if n, ok := r.lookup(name); ok {
			out = append(out, n)
		}
	}
	return out
}

// readOrder resolves a key's read candidates: the active replica set
// with suspected nodes demoted to the back (still tried last — a
// suspect may be falsely accused, and a wrong answer beats none).
func (r *Router) readOrder(key string) []*node {
	names := r.ring.Load().ReplicaSet(key)
	live := make([]*node, 0, len(names))
	var suspected []*node
	for _, name := range names {
		n, ok := r.lookup(name)
		if !ok {
			continue
		}
		if r.det.Suspect(name) {
			suspected = append(suspected, n)
		} else {
			live = append(live, n)
		}
	}
	return append(live, suspected...)
}

func containsStr(set []string, s string) bool {
	for _, v := range set {
		if v == s {
			return true
		}
	}
	return false
}

// --- write path ---

// ErrStaleRouter reports a write refused because this router has
// learned (from a peer) that its ring is behind and has not yet
// adopted the current one. Retry after the ring re-pull; reads keep
// working in the meantime.
var ErrStaleRouter = fmt.Errorf("router: ring is stale; refusing writes until current ring is adopted")

// quorumFan runs one write attempt against every target in parallel
// and returns once quorum targets acked (nil) or every target has
// answered with fewer than quorum acks (the last error). Attempts
// still in flight when quorum is reached keep running in the
// background — the write is already durable on W replicas, and letting
// the stragglers land keeps replicas convergent without waiting for
// anti-entropy. Close waits for them.
func (r *Router) quorumFan(targets []*node, quorum int, attempt func(*node) error) error {
	if quorum > len(targets) {
		quorum = len(targets)
	}
	results := make(chan error, len(targets))
	for _, n := range targets {
		r.inflight.Add(1)
		go func(n *node) {
			defer r.inflight.Done()
			results <- attempt(n)
		}(n)
	}
	acks := 0
	var lastErr error
	for i := 0; i < len(targets); i++ {
		if err := <-results; err != nil {
			lastErr = err
		} else {
			acks++
			if acks >= quorum {
				return nil
			}
		}
	}
	return lastErr
}

// writeReq stamps the per-replica deadline budget onto a write request.
func (r *Router) writeReq(req vinci.Request) vinci.Request {
	if r.opts.WriteTimeout > 0 {
		return vinci.WithDeadlineBudget(req, r.opts.WriteTimeout)
	}
	return req
}

// Put replicates an entity to every node in its write set and
// acknowledges once WriteQuorum replicas accepted it (clamped to the
// write-set size). The entity version is stamped from the router's
// hybrid logical clock, so versions are comparable across routers;
// replicas fence stale frames and deletes against it. With W=2 an
// acknowledged Put survives the loss or isolation of any single
// replica — including the first one to ack.
func (r *Router) Put(e *store.Entity) error {
	if r.stale.Load() {
		return fmt.Errorf("put %s: %w", e.ID, ErrStaleRouter)
	}
	targets := r.writeSet(e.ID)
	if len(targets) == 0 {
		return fmt.Errorf("router: put %s: no nodes", e.ID)
	}
	e.Version = r.clock.Now()
	data, err := e.MarshalIndent()
	if err != nil {
		return fmt.Errorf("router: put %s: %w", e.ID, err)
	}
	req := r.writeReq(vinci.Request{Service: services.StoreService, Op: "put",
		Params: map[string]string{"entity": string(data)}})
	ferr := r.quorumFan(targets, r.opts.WriteQuorum, func(n *node) error {
		resp, cerr := n.c.Call(req)
		if cerr != nil {
			return cerr
		}
		if !resp.OK {
			return fmt.Errorf("%s", resp.Error)
		}
		return nil
	})
	if ferr != nil {
		return fmt.Errorf("router: put %s: quorum not reached: %w", e.ID, ferr)
	}
	return nil
}

// Delete removes an entity from every node in its write set under a
// fresh HLC stamp, acknowledging once WriteQuorum replicas accepted.
// Replicas record the stamp as a versioned tombstone, which fences any
// stale put frame that would otherwise resurrect the entity.
func (r *Router) Delete(id string) error {
	if r.stale.Load() {
		return fmt.Errorf("delete %s: %w", id, ErrStaleRouter)
	}
	targets := r.writeSet(id)
	if len(targets) == 0 {
		return fmt.Errorf("router: delete %s: no nodes", id)
	}
	version := r.clock.Now()
	req := r.writeReq(vinci.Request{Service: services.StoreService, Op: "delete",
		Params: map[string]string{"id": id, "version": strconv.FormatUint(version, 10)}})
	ferr := r.quorumFan(targets, r.opts.WriteQuorum, func(n *node) error {
		resp, cerr := n.c.Call(req)
		if cerr != nil {
			return cerr
		}
		if !resp.OK {
			return fmt.Errorf("%s", resp.Error)
		}
		return nil
	})
	if ferr != nil {
		return fmt.Errorf("router: delete %s: quorum not reached: %w", id, ferr)
	}
	return nil
}

// --- read path ---

// errNotFound distinguishes "every replica answered and none has it"
// from "no replica reachable".
type errNotFound struct{ id string }

func (e errNotFound) Error() string { return fmt.Sprintf("router: no entity %q", e.id) }

// IsNotFound reports whether err is a definitive not-found answer.
func IsNotFound(err error) bool {
	_, ok := err.(errNotFound)
	return ok
}

// getFrom fetches id through one client, separating transport failure
// (try elsewhere), authoritative not-found (this replica answered), and
// success.
func getFrom(c vinci.Client, id string) (*store.Entity, bool, error) {
	resp, err := c.Call(vinci.Request{Service: services.StoreService, Op: "get",
		Params: map[string]string{"id": id}})
	if err != nil {
		return nil, false, err
	}
	if !resp.OK {
		return nil, false, nil // answered: not here (possibly a stale replica mid-catch-up)
	}
	e, perr := store.ParseEntity([]byte(resp.Fields["entity"]))
	if perr != nil {
		return nil, false, perr
	}
	return e, true, nil
}

// Get reads an entity from its replica set. With ReadQuorum 1 (the
// default) and two or more live replicas, the first two race through
// the hedged-read machinery (both transports are different nodes, so
// the hedge is also the failover) and remaining replicas are tried in
// order. With ReadQuorum > 1 the first R candidates are consulted in
// parallel, the newest version wins, and replicas that answered with a
// stale or missing copy are repaired asynchronously through the fenced
// replica-apply path. In both modes a replica that answers not-found
// does not end the read — during catch-up a just-revived node is
// authoritative about nothing except what it has. Every version read
// is folded into the router's clock, so subsequent writes order after
// it.
func (r *Router) Get(id string) (*store.Entity, error) {
	candidates := r.readOrder(id)
	if len(candidates) == 0 {
		return nil, fmt.Errorf("router: get %s: no nodes", id)
	}
	if r.opts.ReadQuorum > 1 && len(candidates) > 1 {
		return r.quorumGet(id, candidates)
	}
	if len(candidates) >= 2 {
		h := vinci.NewHedged(candidates[0].c, candidates[1].c, vinci.HedgeOptions{
			After: r.opts.HedgeAfter,
			// The router only routes the read-only get op through this
			// client, so it is idempotent regardless of the store service's
			// blanket (write-bearing) classification.
			IsIdempotent: func(string) bool { return true },
		})
		if e, found, err := getFrom(h, id); err == nil && found {
			r.clock.Observe(e.Version)
			return e, nil
		}
		// Hedge inconclusive (both down, or fastest answered not-found):
		// fall through to the ordered scan for the authoritative answer.
	}
	answered := false
	var lastErr error
	for _, n := range candidates {
		e, found, err := getFrom(n.c, id)
		if err != nil {
			lastErr = err
			continue
		}
		if found {
			r.clock.Observe(e.Version)
			return e, nil
		}
		answered = true
	}
	if answered {
		return nil, errNotFound{id: id}
	}
	return nil, fmt.Errorf("router: get %s: no replica reachable: %w", id, lastErr)
}

// readAnswer is one replica's response to a quorum read.
type readAnswer struct {
	n *node
	e *store.Entity // nil: answered not-found
}

// quorumGet consults up to ReadQuorum replicas in parallel, extends to
// the remaining candidates if too few were reachable (availability
// beats a strict R when replicas are down — the chosen answer is still
// the newest of everything read), returns the highest-version copy and
// fires read-repair at every consulted replica that returned something
// older or nothing.
func (r *Router) quorumGet(id string, candidates []*node) (*store.Entity, error) {
	quorum := r.opts.ReadQuorum
	if quorum > len(candidates) {
		quorum = len(candidates)
	}
	answers := make([]readAnswer, 0, quorum)
	var lastErr error

	type result struct {
		n     *node
		e     *store.Entity
		found bool
		err   error
	}
	results := make(chan result, len(candidates))
	ask := func(n *node) {
		e, found, err := getFrom(n.c, id)
		results <- result{n: n, e: e, found: found, err: err}
	}
	for _, n := range candidates[:quorum] {
		go ask(n)
	}
	launched := quorum
	for pending := quorum; pending > 0; pending-- {
		res := <-results
		if res.err != nil {
			lastErr = res.err
			// A consulted replica was unreachable: pull in the next unasked
			// candidate so the read still gathers R answers when the ring
			// has them to give.
			if launched < len(candidates) {
				go ask(candidates[launched])
				launched++
				pending++
			}
			continue
		}
		if res.found {
			answers = append(answers, readAnswer{n: res.n, e: res.e})
		} else {
			answers = append(answers, readAnswer{n: res.n})
		}
	}
	if len(answers) == 0 {
		return nil, fmt.Errorf("router: get %s: no replica reachable: %w", id, lastErr)
	}

	var newest *store.Entity
	for _, a := range answers {
		if a.e != nil && (newest == nil || a.e.Version > newest.Version) {
			newest = a.e
		}
	}
	if newest == nil {
		return nil, errNotFound{id: id}
	}
	r.clock.Observe(newest.Version)
	r.repairStale(newest, answers)
	return newest, nil
}

// repairStale pushes the winning copy of a quorum read to every
// consulted replica that answered with an older version or not-found.
// The repair travels as a replica-apply frame, not a plain put: the
// receiving store fences it against newer versions and versioned
// tombstones, so a repair racing a fresher write (or a delete the
// reader had not seen) can never roll state back. Repairs run in the
// background — the read already answered — and Close waits for them.
func (r *Router) repairStale(newest *store.Entity, answers []readAnswer) {
	frame, err := store.EncodePutFrame(newest)
	if err != nil {
		return
	}
	for _, a := range answers {
		if a.e != nil && a.e.Version >= newest.Version {
			continue
		}
		n := a.n
		r.inflight.Add(1)
		go func() {
			defer r.inflight.Done()
			_, _ = (services.ReplicaClient{C: n.c}).Apply(frame)
		}()
	}
}

// --- fan-out queries ---

// liveFirst returns all nodes, non-suspected first, each group sorted
// by name.
func (r *Router) liveFirst() []*node {
	all := r.snapshotNodes()
	live := make([]*node, 0, len(all))
	var suspected []*node
	for _, n := range all {
		if r.det.Suspect(n.name) {
			suspected = append(suspected, n)
		} else {
			live = append(live, n)
		}
	}
	return append(live, suspected...)
}

// Search fans a query across every node (each node indexes only the
// entities it stores) and unions the results. Suspected nodes are
// still consulted last — their shard may have no other live index —
// but their failure does not fail the query as long as someone
// answered.
func (r *Router) Search(mode string, terms ...string) ([]string, error) {
	seen := map[string]bool{}
	answered := 0
	var lastErr error
	for _, n := range r.liveFirst() {
		ids, err := services.IndexClient{C: n.c}.Search(mode, terms...)
		if err != nil {
			lastErr = err
			continue
		}
		answered++
		for _, id := range ids {
			seen[id] = true
		}
	}
	if answered == 0 {
		return nil, fmt.Errorf("router: search: no node answered: %w", lastErr)
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// IDs returns the sorted distinct entity IDs across the cluster
// (replicas hold copies, so per-node listings cannot just be
// concatenated).
func (r *Router) IDs() ([]string, error) {
	seen := map[string]bool{}
	answered := 0
	var lastErr error
	for _, n := range r.liveFirst() {
		ids, err := services.StoreClient{C: n.c}.IDs()
		if err != nil {
			lastErr = err
			continue
		}
		answered++
		for _, id := range ids {
			seen[id] = true
		}
	}
	if answered == 0 {
		return nil, fmt.Errorf("router: ids: no node answered: %w", lastErr)
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// NumEntities counts distinct entities across the cluster.
func (r *Router) NumEntities() (int, error) {
	ids, err := r.IDs()
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

// SentimentQuery fans a subject query across the cluster and merges
// per-replica answers. Entries are deduplicated structurally — a
// sentiment entry is a pure function of the document text, so replicas
// of one document produce identical entries — and returned in the same
// total order a single node would use.
func (r *Router) SentimentQuery(subject string) ([]index.SentimentEntry, error) {
	seen := map[index.SentimentEntry]bool{}
	answered := 0
	var lastErr error
	for _, n := range r.liveFirst() {
		entries, err := services.SentimentClient{C: n.c}.Query(subject)
		if err != nil {
			lastErr = err
			continue
		}
		answered++
		for _, e := range entries {
			seen[e] = true
		}
	}
	if answered == 0 {
		return nil, fmt.Errorf("router: sentiment: no node answered: %w", lastErr)
	}
	out := make([]index.SentimentEntry, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.DocID != b.DocID {
			return a.DocID < b.DocID
		}
		if a.Sentence != b.Sentence {
			return a.Sentence < b.Sentence
		}
		if a.Polarity != b.Polarity {
			return a.Polarity < b.Polarity
		}
		return a.Snippet < b.Snippet
	})
	return out, nil
}

// SentimentCounts aggregates a subject's sentiment across the cluster,
// counting each distinct entry once.
func (r *Router) SentimentCounts(subject string) (positive, negative int, err error) {
	entries, err := r.SentimentQuery(subject)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		if e.Polarity > 0 {
			positive++
		} else if e.Polarity < 0 {
			negative++
		}
	}
	return positive, negative, nil
}
