package router

import (
	"fmt"
	"sort"
	"time"

	"webfountain/internal/services"
	"webfountain/internal/store"
)

// Anti-entropy is the convergence path of last resort: quorum writes
// leave stragglers, partitions strand acked copies on one side, and
// read-repair only heals keys somebody reads. The sweep compares
// per-node version censuses through the replica service and ships only
// the divergent entities, so replicas converge without waiting for a
// handoff or a lucky read.
//
// The sweep has a digest fast path: each node's replica service
// fingerprints its (id, version, tombstone) census as one sha256
// (store.VersionDigest). When every live node's digest matches what it
// was at the end of the last fully-converged sweep, nothing changed
// anywhere and the sweep is a handful of tiny RPCs. Only when a digest
// moves does the sweep pull full censuses and diff them.
//
// Resolution is per ID, deterministic, and version-driven:
//
//   - the newest put version across all holders is the winning copy
//   - a tombstone at version >= the winning put supersedes it: the ID
//     is deleted (with the tombstone's stamp) wherever it survives
//   - otherwise every ring owner missing the winning version receives
//     it as a fenced replica frame, shipped from a holder of that
//     version, batched per (source, destination) pair
//
// Everything travels through the same fenced frame path read-repair
// uses, so a sweep racing live writes can only lose to them, never
// undo them.

// antiEntropyLoop runs AntiEntropyOnce on a fixed cadence until Close.
func (r *Router) antiEntropyLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.opts.AntiEntropyInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			if r.stale.Load() {
				// A stale router re-pulls the ring on the sweep cadence so
				// the write refusal is bounded by peer reachability, not by
				// an operator noticing.
				_ = r.SyncPeersOnce()
			}
			_, _ = r.AntiEntropyOnce()
		}
	}
}

// nodeCensus is one node's replicated-state census as the sweep sees
// it.
type nodeCensus struct {
	n        *node
	digest   string
	versions map[string]uint64
	tombs    map[string]uint64
}

// AntiEntropyOnce runs one divergence sweep across all reachable
// nodes and returns how many repair operations (entity ships plus
// propagated deletes) it performed. Unreachable nodes are skipped —
// they will be swept after they return, and the digest memory ensures
// the next sweep does not fast-path past them (their digest entry is
// cleared).
func (r *Router) AntiEntropyOnce() (repaired int, err error) {
	nodes := r.snapshotNodes()
	if len(nodes) == 0 {
		return 0, nil
	}

	// Phase 1: digests. Reachability and change detection in one cheap
	// round.
	digests := make(map[string]string, len(nodes))
	var reachable []*node
	for _, n := range nodes {
		d, derr := (services.ReplicaClient{C: n.c}).VersionDigest()
		if derr != nil {
			continue
		}
		digests[n.name] = d
		reachable = append(reachable, n)
	}
	if len(reachable) < 2 {
		// Nothing to converge against; do not record digests so the next
		// sweep with more nodes up does a real pass.
		r.aeMu.Lock()
		r.aeDigests = nil
		r.aeMu.Unlock()
		return 0, nil
	}
	r.aeMu.Lock()
	fastPath := r.aeDigests != nil && len(r.aeDigests) == len(digests)
	if fastPath {
		for name, d := range digests {
			if r.aeDigests[name] != d {
				fastPath = false
				break
			}
		}
	}
	r.aeMu.Unlock()
	if fastPath {
		return 0, nil
	}

	// Phase 2: full censuses from every reachable node.
	censuses := make([]nodeCensus, 0, len(reachable))
	for _, n := range reachable {
		rc := services.ReplicaClient{C: n.c}
		versions, verr := rc.Versions()
		if verr != nil {
			continue
		}
		tombs, terr := rc.TombstonesVersioned()
		if terr != nil {
			continue
		}
		censuses = append(censuses, nodeCensus{n: n, digest: digests[n.name], versions: versions, tombs: tombs})
	}
	if len(censuses) < 2 {
		return 0, nil
	}

	// Global resolution: newest put version + holder, newest tombstone.
	newest := map[string]uint64{}
	holder := map[string]*node{}
	tombV := map[string]uint64{}
	for _, c := range censuses {
		for id, v := range c.versions {
			if cur, ok := newest[id]; !ok || v > cur || (v == cur && holder[id].name > c.n.name) {
				// Deterministic tie-break on equal versions: lowest node name
				// ships, so two runs of one seed repair identically.
				newest[id] = v
				holder[id] = c.n
			}
		}
		for id, v := range c.tombs {
			if cur, ok := tombV[id]; !ok || v > cur {
				tombV[id] = v
			}
		}
	}

	ids := make([]string, 0, len(newest))
	for id := range newest {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Phase 3: plan repairs. shipPlan[src][dst] = ids to copy src->dst.
	type pair struct{ src, dst *node }
	shipPlan := map[pair][]string{}
	ring := r.ring.Load()
	byName := make(map[string]nodeCensus, len(censuses))
	for _, c := range censuses {
		byName[c.n.name] = c
	}
	var firstErr error
	for _, id := range ids {
		winV := newest[id]
		if tv, dead := tombV[id]; dead && tv >= winV && tv > 0 {
			// The delete wins: propagate the versioned tombstone to every
			// reachable node still holding a copy it supersedes.
			frame := store.EncodeDeleteFrame(id, tv)
			for _, c := range censuses {
				if hv, held := c.versions[id]; held && hv <= tv {
					if _, aerr := (services.ReplicaClient{C: c.n.c}).Apply(frame); aerr != nil {
						if firstErr == nil {
							firstErr = fmt.Errorf("anti-entropy: delete %s on %s: %w", id, c.n.name, aerr)
						}
						continue
					}
					repaired++
				}
			}
			continue
		}
		// The put wins: every ring owner must hold the winning version.
		src := holder[id]
		for _, owner := range ring.ReplicaSet(id) {
			c, reachableOwner := byName[owner]
			if !reachableOwner || owner == src.name {
				continue
			}
			if hv, held := c.versions[id]; !held || hv < winV {
				p := pair{src: src, dst: c.n}
				shipPlan[p] = append(shipPlan[p], id)
			}
		}
	}

	// Phase 4: execute ships in deterministic (src, dst) order.
	pairs := make([]pair, 0, len(shipPlan))
	for p := range shipPlan {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].src.name != pairs[j].src.name {
			return pairs[i].src.name < pairs[j].src.name
		}
		return pairs[i].dst.name < pairs[j].dst.name
	})
	for _, p := range pairs {
		want := shipPlan[p]
		sort.Strings(want)
		frames, serr := (services.ReplicaClient{C: p.src.c}).Ship(want)
		if serr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("anti-entropy: ship from %s: %w", p.src.name, serr)
			}
			continue
		}
		if _, aerr := (services.ReplicaClient{C: p.dst.c}).Apply(frames); aerr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("anti-entropy: apply on %s: %w", p.dst.name, aerr)
			}
			continue
		}
		repaired += len(want)
	}

	// Keep the clock ahead of everything the sweep saw, so writes
	// stamped after a sweep order after every version it touched.
	var maxSeen uint64
	for _, id := range ids {
		if newest[id] > maxSeen {
			maxSeen = newest[id]
		}
	}
	for id, v := range tombV {
		_ = id
		if v > maxSeen {
			maxSeen = v
		}
	}
	if maxSeen > 0 {
		r.clock.Observe(maxSeen)
	}

	// Remember the post-sweep digests only when the sweep finished clean
	// and actually converged (a sweep that repaired something changed
	// digests; re-pull them so the fast path keys on converged state).
	if firstErr == nil {
		fresh := make(map[string]string, len(reachable))
		complete := true
		for _, n := range reachable {
			d, derr := (services.ReplicaClient{C: n.c}).VersionDigest()
			if derr != nil {
				complete = false
				break
			}
			fresh[n.name] = d
		}
		r.aeMu.Lock()
		if complete {
			r.aeDigests = fresh
		} else {
			r.aeDigests = nil
		}
		r.aeMu.Unlock()
	} else {
		r.aeMu.Lock()
		r.aeDigests = nil
		r.aeMu.Unlock()
	}
	return repaired, firstErr
}
