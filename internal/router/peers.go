// Multi-router ring-epoch agreement. Any number of routers can front
// one node set because placement is a pure function of (members, seed,
// vnodes, replicas, epoch) — but only if they agree on those inputs.
// Routers registered as peers exchange ring specs through the topology
// control service: a membership change on one router is offered to the
// others (BroadcastRing), and a router can pull and reconcile on demand
// (SyncPeersOnce) or automatically while stale (the anti-entropy loop
// re-pulls).
//
// Resolution is deterministic and symmetric: the higher epoch wins;
// at equal epochs with different digests (a fork — two routers changed
// membership independently), the lexically smaller digest wins. Both
// sides evaluate the same rule, so exactly one yields.
//
// A router that learns it is behind but cannot adopt the current ring
// (a member it cannot reach and cannot dial) marks itself stale:
// it refuses writes — acking under a retired placement could land
// writes on nodes the current ring no longer consults — but keeps
// serving reads. Stale clears on the next successful adoption or on a
// clean sync that proves no peer is ahead.
package router

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"webfountain/internal/topology"
	"webfountain/internal/vinci"
)

// RingSpec is a ring as advertised on the wire: everything a peer
// needs to rebuild it byte-for-byte (epoch, placement config, member
// set) plus the addresses to reach members it has never met and the
// advertising router's HLC reading, folded into the receiver's clock
// so version stamps stay ordered across routers.
type RingSpec struct {
	Epoch    uint64
	Digest   string
	Seed     int64
	VNodes   int
	Replicas int
	HLC      uint64
	// Members maps member name to dialable address ("" when the
	// advertising router only knows the member by handle).
	Members map[string]string
}

// fields serializes the spec for a vinci response or request.
func (s RingSpec) fields() map[string]string {
	members := make([]string, 0, len(s.Members))
	for name, addr := range s.Members {
		members = append(members, name+"="+addr)
	}
	sort.Strings(members)
	return map[string]string{
		"epoch":    strconv.FormatUint(s.Epoch, 10),
		"digest":   s.Digest,
		"seed":     strconv.FormatInt(s.Seed, 10),
		"vnodes":   strconv.Itoa(s.VNodes),
		"replicas": strconv.Itoa(s.Replicas),
		"hlc":      strconv.FormatUint(s.HLC, 10),
		"members":  strings.Join(members, " "),
	}
}

// parseRingSpec is the inverse of fields.
func parseRingSpec(f map[string]string) (RingSpec, error) {
	var s RingSpec
	var err error
	if s.Epoch, err = strconv.ParseUint(f["epoch"], 10, 64); err != nil {
		return s, fmt.Errorf("ring spec: bad epoch %q", f["epoch"])
	}
	if s.Digest = f["digest"]; s.Digest == "" {
		return s, fmt.Errorf("ring spec: missing digest")
	}
	if s.Seed, err = strconv.ParseInt(f["seed"], 10, 64); err != nil {
		return s, fmt.Errorf("ring spec: bad seed %q", f["seed"])
	}
	if s.VNodes, err = strconv.Atoi(f["vnodes"]); err != nil || s.VNodes <= 0 {
		return s, fmt.Errorf("ring spec: bad vnodes %q", f["vnodes"])
	}
	if s.Replicas, err = strconv.Atoi(f["replicas"]); err != nil || s.Replicas <= 0 {
		return s, fmt.Errorf("ring spec: bad replicas %q", f["replicas"])
	}
	s.HLC, _ = strconv.ParseUint(f["hlc"], 10, 64)
	s.Members = map[string]string{}
	for _, tok := range strings.Fields(f["members"]) {
		i := strings.IndexByte(tok, '=')
		if i <= 0 {
			return s, fmt.Errorf("ring spec: bad member %q", tok)
		}
		s.Members[tok[:i]] = tok[i+1:]
	}
	if len(s.Members) == 0 {
		return s, fmt.Errorf("ring spec: no members")
	}
	return s, nil
}

// RingSpec snapshots this router's active ring as a wire spec.
func (r *Router) RingSpec() RingSpec {
	ring := r.Ring()
	s := RingSpec{
		Epoch:    ring.Epoch(),
		Digest:   ring.Digest(),
		Seed:     ring.Seed(),
		VNodes:   ring.VNodes(),
		Replicas: ring.Replicas(),
		HLC:      r.clock.Last(),
		Members:  make(map[string]string, ring.NumMembers()),
	}
	for _, m := range ring.Members() {
		s.Members[m] = r.addrOf(m)
	}
	return s
}

func (r *Router) addrOf(name string) string {
	r.nmu.RLock()
	defer r.nmu.RUnlock()
	if n, ok := r.nodes[name]; ok {
		return n.addr
	}
	return ""
}

// AddPeer registers another router to exchange ring epochs with. The
// router does not take ownership of the client.
func (r *Router) AddPeer(name string, c vinci.Client) {
	r.pmu.Lock()
	defer r.pmu.Unlock()
	r.peers[name] = c
}

// Peers lists registered peer routers, sorted.
func (r *Router) Peers() []string {
	r.pmu.Lock()
	defer r.pmu.Unlock()
	out := make([]string, 0, len(r.peers))
	for name := range r.peers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

type peerHandle struct {
	name string
	c    vinci.Client
}

func (r *Router) snapshotPeers() []peerHandle {
	r.pmu.Lock()
	defer r.pmu.Unlock()
	out := make([]peerHandle, 0, len(r.peers))
	for name, c := range r.peers {
		out = append(out, peerHandle{name: name, c: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// remoteWins is the fork-resolution rule, evaluated identically on
// both sides: higher epoch wins; at equal epochs with differing
// digests the lexically smaller digest wins, so exactly one router
// yields and the pair converges in one exchange.
func remoteWins(local *topology.Ring, spec RingSpec) bool {
	if spec.Epoch != local.Epoch() {
		return spec.Epoch > local.Epoch()
	}
	if spec.Digest == local.Digest() {
		return false
	}
	return spec.Digest < local.Digest()
}

// OfferRing is the receiving half of ring gossip: a peer advertised
// spec. If the rule says the remote ring wins, this router adopts it;
// otherwise the offer is a no-op (the response carries this router's
// own spec, which is how the offering peer learns it is the one
// behind). The peer's HLC reading is folded in either way.
func (r *Router) OfferRing(spec RingSpec) (adopted bool, err error) {
	if spec.HLC > 0 {
		r.clock.Observe(spec.HLC)
	}
	if !remoteWins(r.Ring(), spec) {
		return false, nil
	}
	if err := r.adoptRing(spec); err != nil {
		return false, err
	}
	return true, nil
}

// adoptRing installs a peer's winning ring: rebuild it from the spec
// (placement is a pure function of the inputs), verify the digest
// byte-for-byte, make sure every member has a reachable handle
// (dialing by advertised address when needed), then swap it in
// atomically. Any failure leaves the old ring active and marks the
// router stale, because it now *knows* it is behind.
func (r *Router) adoptRing(spec RingSpec) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !remoteWins(r.ring.Load(), spec) {
		return nil // lost a race with another adoption or a local change
	}
	members := make([]string, 0, len(spec.Members))
	for m := range spec.Members {
		members = append(members, m)
	}
	ring := topology.Restore(members, topology.Config{
		VNodes:   spec.VNodes,
		Replicas: spec.Replicas,
		Seed:     spec.Seed,
	}, spec.Epoch)
	if ring.Digest() != spec.Digest {
		r.stale.Store(true)
		return fmt.Errorf("router: adopt epoch %d: rebuilt digest %.12s != advertised %.12s (placement config differs)",
			spec.Epoch, ring.Digest(), spec.Digest)
	}
	for name, addr := range spec.Members {
		if _, ok := r.lookup(name); ok {
			continue
		}
		if addr == "" || r.opts.Dial == nil {
			r.stale.Store(true)
			return fmt.Errorf("router: adopt epoch %d: no handle or dialable address for member %s", spec.Epoch, name)
		}
		c, derr := r.opts.Dial(addr)
		if derr != nil {
			r.stale.Store(true)
			return fmt.Errorf("router: adopt epoch %d: dial %s (%s): %w", spec.Epoch, name, addr, derr)
		}
		r.nmu.Lock()
		r.nodes[name] = &node{name: name, addr: addr, c: &reportingClient{c: c, det: r.det, node: name}}
		r.nmu.Unlock()
	}
	r.ring.Store(ring)
	// Retired members lose their handles, like a local drain.
	r.nmu.Lock()
	for name := range r.nodes {
		if !ring.Has(name) {
			delete(r.nodes, name)
			r.det.Forget(name)
		}
	}
	r.nmu.Unlock()
	r.stale.Store(false)
	return nil
}

// BroadcastRing offers this router's ring to every registered peer —
// called after a local membership change so peers converge without
// waiting for their next pull. If a peer's response shows *it* is the
// one ahead, this router adopts from the response instead. Returns the
// first failure; a caller that must guarantee convergence (the join
// path) surfaces it loudly rather than leaving routers split.
func (r *Router) BroadcastRing() error {
	var firstErr error
	record := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	for _, p := range r.snapshotPeers() {
		peerSpec, err := (TopologyClient{C: p.c}).OfferRing(r.RingSpec())
		if err != nil {
			record(fmt.Errorf("router: peer %s: %w", p.name, err))
			continue
		}
		if remoteWins(r.Ring(), peerSpec) {
			if _, aerr := r.OfferRing(peerSpec); aerr != nil {
				record(fmt.Errorf("router: peer %s: %w", p.name, aerr))
			}
		}
	}
	return firstErr
}

// SyncPeersOnce pulls every peer's ring and reconciles both ways:
// adopt when the peer is ahead, push ours when the peer is behind. A
// round that reconciles every peer without error proves no peer is
// ahead, so the stale flag clears. The anti-entropy loop calls this
// while the router is stale; it is also the manual re-pull.
func (r *Router) SyncPeersOnce() error {
	var firstErr error
	record := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	for _, p := range r.snapshotPeers() {
		tc := TopologyClient{C: p.c}
		spec, err := tc.RingSpec()
		if err != nil {
			record(fmt.Errorf("router: peer %s: %w", p.name, err))
			continue
		}
		if spec.HLC > 0 {
			r.clock.Observe(spec.HLC)
		}
		local := r.Ring()
		switch {
		case remoteWins(local, spec):
			if _, aerr := r.OfferRing(spec); aerr != nil {
				record(fmt.Errorf("router: peer %s: %w", p.name, aerr))
			}
		case spec.Epoch != local.Epoch() || spec.Digest != local.Digest():
			if _, oerr := tc.OfferRing(r.RingSpec()); oerr != nil {
				record(fmt.Errorf("router: peer %s: %w", p.name, oerr))
			}
		}
	}
	if firstErr == nil {
		r.stale.Store(false)
	}
	return firstErr
}

// JoinAddr is Join for a node reached by address: the address is
// recorded on the handle so peer routers adopting this ring can dial
// the member themselves.
func (r *Router) JoinAddr(name, addr string, c vinci.Client) error {
	if err := r.Join(name, c); err != nil {
		return err
	}
	r.nmu.Lock()
	if n, ok := r.nodes[name]; ok {
		n.addr = addr
	}
	r.nmu.Unlock()
	return nil
}

// AddHandle registers a node client without changing membership — how
// an embedding process pre-wires handles for members this router will
// adopt from a peer (in-process tests, static deployments without a
// dialer). An existing handle for the name is kept.
func (r *Router) AddHandle(h NodeHandle) {
	r.nmu.Lock()
	defer r.nmu.Unlock()
	if _, ok := r.nodes[h.Name]; !ok {
		r.nodes[h.Name] = &node{name: h.Name, addr: h.Addr, c: &reportingClient{c: h.Client, det: r.det, node: h.Name}}
	}
}
