// Online shard handoff: membership changes move data while writes keep
// flowing, in three steps —
//
//  1. dual-write: the target ring is published as pending, so every
//     write lands on the union of old and new replica sets;
//  2. catch-up: each node gaining ownership pulls the entities it is
//     missing from a live current holder, shipped as CRC-checked WAL
//     frames (internal/store replication codec);
//  3. epoch bump: the target ring replaces the active ring in one
//     atomic swap.
//
// A handoff that fails at any step aborts WITHOUT the epoch bump — the
// cluster stays on the old ring, acked writes are all on old-ring
// replicas (dual-writing only ever adds copies), and a retry starts
// clean. Because aborted attempts never bump the epoch, the epoch a
// deployment converges to is a function of the failures' shape, not of
// how many retries recovery took — the property the chaos harness pins
// down as byte-deterministic per seed.
package router

import (
	"fmt"
	"sort"

	"webfountain/internal/services"
	"webfountain/internal/topology"
	"webfountain/internal/vinci"
)

// Join adds a node to the ring: dual-write, bulk catch-up of every
// shard range the node acquires, then the epoch bump. The node serves
// reads for its ranges only after the bump; until then it is a write
// target only.
func (r *Router) Join(name string, c vinci.Client) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	active := r.ring.Load()
	if active.Has(name) {
		return nil
	}
	n := &node{name: name, c: &reportingClient{c: c, det: r.det, node: name}}
	r.nmu.Lock()
	r.nodes[name] = n
	r.nmu.Unlock()
	target := active.WithNode(name)
	r.pending.Store(target)
	if err := r.catchUp(target, []string{name}); err != nil {
		// Abort: the node never became a read target and the epoch never
		// moved; remove the handle so placement math doesn't see a ghost.
		r.pending.Store(nil)
		r.nmu.Lock()
		delete(r.nodes, name)
		r.nmu.Unlock()
		r.det.Forget(name)
		return fmt.Errorf("router: join %s aborted: %w", name, err)
	}
	// Publish the new ring BEFORE retiring the pending one: a concurrent
	// Put resolving its write set in between sees (old ring + pending) or
	// (new ring + pending) — both cover the new owners. Clearing pending
	// first would open a window where writes resolve from the old ring
	// alone and never reach the node that just finished catch-up.
	r.ring.Store(target)
	r.pending.Store(nil)
	return nil
}

// Drain removes a node gracefully: the shrunken ring is published as
// pending, every remaining node catches up on the ranges it inherits
// (pulling from the draining node while it still serves), and the
// epoch bump retires the node. The drained handle is dropped; the node
// itself keeps running and can be stopped or rejoined later.
func (r *Router) Drain(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	active := r.ring.Load()
	if !active.Has(name) {
		return fmt.Errorf("router: drain %s: not a member", name)
	}
	if active.NumMembers() == 1 {
		return fmt.Errorf("router: drain %s: last member", name)
	}
	target := active.WithoutNode(name)
	r.pending.Store(target)
	if err := r.catchUp(target, target.Members()); err != nil {
		r.pending.Store(nil)
		return fmt.Errorf("router: drain %s aborted: %w", name, err)
	}
	// Same publish order as Join: new ring first, then retire pending, so
	// no concurrent write ever resolves from the old ring alone and skips
	// the owners that inherit the drained node's ranges.
	r.ring.Store(target)
	r.pending.Store(nil)
	r.nmu.Lock()
	delete(r.nodes, name)
	r.nmu.Unlock()
	r.det.Forget(name)
	return nil
}

// Rejoin catches a recovered member up on every write it missed while
// down, then bumps the epoch on the unchanged membership — the
// cluster-visible acknowledgement that the node is a full replica
// again. A failed catch-up leaves the epoch alone; the caller retries
// once the node is truly reachable.
func (r *Router) Rejoin(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	active := r.ring.Load()
	if !active.Has(name) {
		return fmt.Errorf("router: rejoin %s: not a member", name)
	}
	if err := r.catchUp(active, []string{name}); err != nil {
		return fmt.Errorf("router: rejoin %s failed: %w", name, err)
	}
	r.ring.Store(active.NextEpoch())
	return nil
}

// catchUp brings each node in fill up to its obligations under the
// target ring: every entity the ring assigns it that it does not hold
// is shipped from a live current holder. An entity it holds that no
// live holder still has is reconciled against real tombstones: if a
// censused peer recorded the delete, the copy is removed (it was
// deleted cluster-wide while the node was down); with no delete
// evidence the copy is conservatively kept — it may be the sole
// survivor of an acked write — and re-replicated to the entity's other
// live owners so it regains R copies. Shipping is batched per source
// node and iterated in sorted order, so a given cluster state produces
// one deterministic transfer.
func (r *Router) catchUp(target *topology.Ring, fill []string) error {
	// Holdings + tombstone census. A fill node must answer (we cannot
	// diff against a node we cannot reach); other nodes are best-effort
	// sources, and a peer that cannot report tombstones just contributes
	// none, which only makes reconciliation more conservative.
	holdings := map[string]map[string]bool{}
	tombs := map[string]map[string]bool{}
	for _, n := range r.snapshotNodes() {
		ids, err := services.ReplicaClient{C: n.c}.IDs()
		if err != nil {
			if containsStr(fill, n.name) {
				return fmt.Errorf("census of %s: %w", n.name, err)
			}
			continue
		}
		set := make(map[string]bool, len(ids))
		for _, id := range ids {
			set[id] = true
		}
		holdings[n.name] = set
		if tids, terr := (services.ReplicaClient{C: n.c}).Tombstones(); terr == nil {
			tset := make(map[string]bool, len(tids))
			for _, id := range tids {
				tset[id] = true
			}
			tombs[n.name] = tset
		}
	}
	all := map[string]bool{}
	for _, set := range holdings {
		for id := range set {
			all[id] = true
		}
	}
	allSorted := make([]string, 0, len(all))
	for id := range all {
		allSorted = append(allSorted, id)
	}
	sort.Strings(allSorted)

	for _, f := range fill {
		fnode, ok := r.lookup(f)
		if !ok {
			return fmt.Errorf("fill node %s: no handle", f)
		}
		have := holdings[f]
		// Missing entities, grouped by the source that will ship them.
		bySource := map[string][]string{}
		var extras, soleCopies []string
		for _, id := range allSorted {
			if !target.Owns(f, id) {
				continue
			}
			if have[id] {
				if heldElsewhere(holdings, f, id) {
					continue
				}
				// Nobody else holds it. A peer's tombstone is proof it was
				// deleted cluster-wide while this node was down; absent that
				// evidence the copy may be the only survivor of an acked
				// write, so it is kept and re-replicated below.
				if tombstonedElsewhere(tombs, f, id) {
					extras = append(extras, id)
				} else {
					soleCopies = append(soleCopies, id)
				}
				continue
			}
			src := pickSource(holdings, target.ReplicaSet(id), f, id)
			if src == "" {
				return fmt.Errorf("entity %s: no live source", id)
			}
			bySource[src] = append(bySource[src], id)
		}
		sources := make([]string, 0, len(bySource))
		for s := range bySource {
			sources = append(sources, s)
		}
		sort.Strings(sources)
		for _, src := range sources {
			snode, ok := r.lookup(src)
			if !ok {
				return fmt.Errorf("source %s: no handle", src)
			}
			frames, err := services.ReplicaClient{C: snode.c}.Ship(bySource[src])
			if err != nil {
				return fmt.Errorf("ship from %s: %w", src, err)
			}
			if _, err := (services.ReplicaClient{C: fnode.c}).Apply(frames); err != nil {
				return fmt.Errorf("apply to %s: %w", f, err)
			}
		}
		for _, id := range extras {
			if err := (services.StoreClient{C: fnode.c}).Delete(id); err != nil {
				return fmt.Errorf("reconcile tombstone %s on %s: %w", id, f, err)
			}
		}
		// Restore the replication factor of kept sole copies: ship each
		// one from its holder to the entity's other censused owners.
		spread := map[string][]string{}
		for _, id := range soleCopies {
			for _, owner := range target.ReplicaSet(id) {
				if owner == f {
					continue
				}
				if _, censused := holdings[owner]; !censused {
					continue // unreachable; it catches up on its own rejoin
				}
				spread[owner] = append(spread[owner], id)
			}
		}
		dests := make([]string, 0, len(spread))
		for d := range spread {
			dests = append(dests, d)
		}
		sort.Strings(dests)
		for _, dst := range dests {
			dnode, ok := r.lookup(dst)
			if !ok {
				return fmt.Errorf("re-replication target %s: no handle", dst)
			}
			frames, err := services.ReplicaClient{C: fnode.c}.Ship(spread[dst])
			if err != nil {
				return fmt.Errorf("ship sole copies from %s: %w", f, err)
			}
			if _, err := (services.ReplicaClient{C: dnode.c}).Apply(frames); err != nil {
				return fmt.Errorf("apply sole copies to %s: %w", dst, err)
			}
			for _, id := range spread[dst] {
				holdings[dst][id] = true
			}
		}
	}
	return nil
}

// tombstonedElsewhere reports whether any censused node besides f
// retains a tombstone for id.
func tombstonedElsewhere(tombs map[string]map[string]bool, f, id string) bool {
	for name, set := range tombs {
		if name != f && set[id] {
			return true
		}
	}
	return false
}

// heldElsewhere reports whether any censused node besides f holds id.
func heldElsewhere(holdings map[string]map[string]bool, f, id string) bool {
	for name, set := range holdings {
		if name != f && set[id] {
			return true
		}
	}
	return false
}

// pickSource chooses the shipping source for id: the first censused
// holder in the key's replica-set order (stable, so transfers are
// deterministic), falling back to any holder.
func pickSource(holdings map[string]map[string]bool, replicaSet []string, f, id string) string {
	for _, name := range replicaSet {
		if name != f && holdings[name][id] {
			return name
		}
	}
	names := make([]string, 0, len(holdings))
	for name := range holdings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if name != f && holdings[name][id] {
			return name
		}
	}
	return ""
}
