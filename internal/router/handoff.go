// Online shard handoff: membership changes move data while writes keep
// flowing, in three steps —
//
//  1. dual-write: the target ring is published as pending, so every
//     write lands on the union of old and new replica sets;
//  2. catch-up: each node gaining ownership pulls the entities it is
//     missing from a live current holder, shipped as CRC-checked WAL
//     frames (internal/store replication codec);
//  3. epoch bump: the target ring replaces the active ring in one
//     atomic swap.
//
// A handoff that fails at any step aborts WITHOUT the epoch bump — the
// cluster stays on the old ring, acked writes are all on old-ring
// replicas (dual-writing only ever adds copies), and a retry starts
// clean. Because aborted attempts never bump the epoch, the epoch a
// deployment converges to is a function of the failures' shape, not of
// how many retries recovery took — the property the chaos harness pins
// down as byte-deterministic per seed.
package router

import (
	"fmt"
	"sort"

	"webfountain/internal/services"
	"webfountain/internal/topology"
	"webfountain/internal/vinci"
)

// Join adds a node to the ring: dual-write, bulk catch-up of every
// shard range the node acquires, then the epoch bump. The node serves
// reads for its ranges only after the bump; until then it is a write
// target only.
func (r *Router) Join(name string, c vinci.Client) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	active := r.ring.Load()
	if active.Has(name) {
		return nil
	}
	n := &node{name: name, c: &reportingClient{c: c, det: r.det, node: name}}
	r.nmu.Lock()
	r.nodes[name] = n
	r.nmu.Unlock()
	target := active.WithNode(name)
	r.pending.Store(target)
	if err := r.catchUp(target, []string{name}); err != nil {
		// Abort: the node never became a read target and the epoch never
		// moved; remove the handle so placement math doesn't see a ghost.
		r.pending.Store(nil)
		r.nmu.Lock()
		delete(r.nodes, name)
		r.nmu.Unlock()
		r.det.Forget(name)
		return fmt.Errorf("router: join %s aborted: %w", name, err)
	}
	// Publish the new ring BEFORE retiring the pending one: a concurrent
	// Put resolving its write set in between sees (old ring + pending) or
	// (new ring + pending) — both cover the new owners. Clearing pending
	// first would open a window where writes resolve from the old ring
	// alone and never reach the node that just finished catch-up.
	r.ring.Store(target)
	r.pending.Store(nil)
	return nil
}

// Drain removes a node gracefully: the shrunken ring is published as
// pending, every remaining node catches up on the ranges it inherits
// (pulling from the draining node while it still serves), and the
// epoch bump retires the node. The drained handle is dropped; the node
// itself keeps running and can be stopped or rejoined later.
func (r *Router) Drain(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	active := r.ring.Load()
	if !active.Has(name) {
		return fmt.Errorf("router: drain %s: not a member", name)
	}
	if active.NumMembers() == 1 {
		return fmt.Errorf("router: drain %s: last member", name)
	}
	target := active.WithoutNode(name)
	r.pending.Store(target)
	if err := r.catchUp(target, target.Members()); err != nil {
		r.pending.Store(nil)
		return fmt.Errorf("router: drain %s aborted: %w", name, err)
	}
	// Same publish order as Join: new ring first, then retire pending, so
	// no concurrent write ever resolves from the old ring alone and skips
	// the owners that inherit the drained node's ranges.
	r.ring.Store(target)
	r.pending.Store(nil)
	r.nmu.Lock()
	delete(r.nodes, name)
	r.nmu.Unlock()
	r.det.Forget(name)
	return nil
}

// Rejoin catches a recovered member up on every write it missed while
// down, then bumps the epoch on the unchanged membership — the
// cluster-visible acknowledgement that the node is a full replica
// again. A failed catch-up leaves the epoch alone; the caller retries
// once the node is truly reachable.
func (r *Router) Rejoin(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	active := r.ring.Load()
	if !active.Has(name) {
		return fmt.Errorf("router: rejoin %s: not a member", name)
	}
	if err := r.catchUp(active, []string{name}); err != nil {
		return fmt.Errorf("router: rejoin %s failed: %w", name, err)
	}
	r.ring.Store(active.NextEpoch())
	return nil
}

// catchUp brings each node in fill up to its obligations under the
// target ring: every entity the ring assigns it that it does not hold
// — or holds at a version older than a live peer's — is shipped from
// the holder of the newest version. An entity it holds that no live
// holder still has is reconciled against real tombstones, by version:
// a peer tombstone at or above the copy's version is proof the delete
// superseded it (removed, carrying the tombstone's stamp); a tombstone
// below the copy's version means the copy was re-created after the
// delete and is kept. With no delete evidence the copy is
// conservatively kept — it may be the sole survivor of an acked write
// — and re-replicated to the entity's other live owners so it regains
// R copies. Shipping is batched per source node and iterated in sorted
// order, so a given cluster state produces one deterministic transfer.
func (r *Router) catchUp(target *topology.Ring, fill []string) error {
	// Version + tombstone census — from EVERY node, or the catch-up
	// aborts. A census silently missing a live node loses its tombstone
	// evidence (a kept stale copy resurrects an acked delete) or its
	// holdings (an acked write never ships), and no later step can tell
	// that from a clean sweep. Each node gets a few tries to ride out
	// transient network faults; a node that stays unreachable fails this
	// attempt, and the caller retries once the cluster is whole (an
	// aborted attempt never bumps the epoch, so retries are free).
	holdings := map[string]map[string]uint64{}
	tombs := map[string]map[string]uint64{}
	for _, n := range r.snapshotNodes() {
		versions, tv, err := censusOf(n)
		if err != nil {
			return fmt.Errorf("census of %s: %w", n.name, err)
		}
		holdings[n.name] = versions
		tombs[n.name] = tv
	}
	all := map[string]bool{}
	for _, set := range holdings {
		for id := range set {
			all[id] = true
		}
	}
	allSorted := make([]string, 0, len(all))
	for id := range all {
		allSorted = append(allSorted, id)
	}
	sort.Strings(allSorted)

	for _, f := range fill {
		fnode, ok := r.lookup(f)
		if !ok {
			return fmt.Errorf("fill node %s: no handle", f)
		}
		have := holdings[f]
		// Entities to ship to f, grouped by the source that will ship them.
		bySource := map[string][]string{}
		type tombedCopy struct {
			id string
			v  uint64 // the superseding tombstone's version
		}
		var extras []tombedCopy
		var soleCopies []string
		for _, id := range allSorted {
			if !target.Owns(f, id) {
				continue
			}
			hv, held := have[id]
			newestV, heldByPeer := newestElsewhere(holdings, f, id)
			if held {
				if heldByPeer {
					if newestV > hv {
						// Stale copy: pull the newer version (fenced apply, so a
						// concurrent even-newer write still wins).
						src := pickSource(holdings, target.ReplicaSet(id), f, id, newestV)
						if src != "" {
							bySource[src] = append(bySource[src], id)
						}
					}
					continue
				}
				// Nobody else holds it. A peer tombstone at or above this
				// copy's version is proof it was deleted cluster-wide while
				// this node was down; absent that evidence the copy may be the
				// only survivor of an acked write, so it is kept and
				// re-replicated below.
				if tv, dead := tombstonedElsewhere(tombs, f, id, hv); dead {
					extras = append(extras, tombedCopy{id: id, v: tv})
				} else {
					soleCopies = append(soleCopies, id)
				}
				continue
			}
			// f is missing the entity. If the newest surviving copy is itself
			// superseded by a tombstone, shipping it would only create work
			// for the next sweep; skip it.
			if tv, dead := tombstonedElsewhere(tombs, f, id, newestV); dead && tv > 0 {
				continue
			}
			src := pickSource(holdings, target.ReplicaSet(id), f, id, newestV)
			if src == "" {
				return fmt.Errorf("entity %s: no live source", id)
			}
			bySource[src] = append(bySource[src], id)
		}
		sources := make([]string, 0, len(bySource))
		for s := range bySource {
			sources = append(sources, s)
		}
		sort.Strings(sources)
		for _, src := range sources {
			snode, ok := r.lookup(src)
			if !ok {
				return fmt.Errorf("source %s: no handle", src)
			}
			frames, err := services.ReplicaClient{C: snode.c}.Ship(bySource[src])
			if err != nil {
				return fmt.Errorf("ship from %s: %w", src, err)
			}
			if _, err := (services.ReplicaClient{C: fnode.c}).Apply(frames); err != nil {
				return fmt.Errorf("apply to %s: %w", f, err)
			}
		}
		for _, ex := range extras {
			var err error
			if ex.v > 0 {
				// Carry the delete's stamp so the fill node's tombstone fences
				// stale puts exactly as the deleting node's does.
				err = (services.StoreClient{C: fnode.c}).DeleteVersioned(ex.id, ex.v)
			} else {
				err = (services.StoreClient{C: fnode.c}).Delete(ex.id)
			}
			if err != nil {
				return fmt.Errorf("reconcile tombstone %s on %s: %w", ex.id, f, err)
			}
		}
		// Restore the replication factor of kept sole copies: ship each
		// one from its holder to the entity's other censused owners.
		spread := map[string][]string{}
		for _, id := range soleCopies {
			for _, owner := range target.ReplicaSet(id) {
				if owner == f {
					continue
				}
				if _, censused := holdings[owner]; !censused {
					continue // unreachable; it catches up on its own rejoin
				}
				spread[owner] = append(spread[owner], id)
			}
		}
		dests := make([]string, 0, len(spread))
		for d := range spread {
			dests = append(dests, d)
		}
		sort.Strings(dests)
		for _, dst := range dests {
			dnode, ok := r.lookup(dst)
			if !ok {
				return fmt.Errorf("re-replication target %s: no handle", dst)
			}
			frames, err := services.ReplicaClient{C: fnode.c}.Ship(spread[dst])
			if err != nil {
				return fmt.Errorf("ship sole copies from %s: %w", f, err)
			}
			if _, err := (services.ReplicaClient{C: dnode.c}).Apply(frames); err != nil {
				return fmt.Errorf("apply sole copies to %s: %w", dst, err)
			}
			for _, id := range spread[dst] {
				holdings[dst][id] = have[id]
			}
		}
	}
	return nil
}

// censusOf pulls one node's (versions, tombstones) census, retrying a
// few times so a single dropped call under network weather does not
// abort a whole catch-up attempt. Retries are read-only and idempotent.
func censusOf(n *node) (map[string]uint64, map[string]uint64, error) {
	rc := services.ReplicaClient{C: n.c}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		versions, err := rc.Versions()
		if err != nil {
			lastErr = err
			continue
		}
		tv, err := rc.TombstonesVersioned()
		if err != nil {
			lastErr = err
			continue
		}
		return versions, tv, nil
	}
	return nil, nil, lastErr
}

// tombstonedElsewhere reports whether any censused node besides f
// retains a tombstone for id that supersedes a copy at version hv
// (tombstone version >= hv; unversioned tombstones supersede only
// unversioned copies, preserving the conservative pre-HLC behavior).
// It returns the newest such tombstone's version.
func tombstonedElsewhere(tombs map[string]map[string]uint64, f, id string, hv uint64) (uint64, bool) {
	var best uint64
	found := false
	for name, set := range tombs {
		if name == f {
			continue
		}
		if tv, ok := set[id]; ok && tv >= hv {
			found = true
			if tv > best {
				best = tv
			}
		}
	}
	return best, found
}

// newestElsewhere returns the highest version any censused node
// besides f holds for id, and whether any such holder exists.
func newestElsewhere(holdings map[string]map[string]uint64, f, id string) (uint64, bool) {
	var best uint64
	found := false
	for name, set := range holdings {
		if name == f {
			continue
		}
		if v, ok := set[id]; ok {
			found = true
			if v > best {
				best = v
			}
		}
	}
	return best, found
}

// pickSource chooses the shipping source for id among holders of the
// newest version (wantV): the first such holder in the key's
// replica-set order (stable, so transfers are deterministic), falling
// back to any newest-version holder by name.
func pickSource(holdings map[string]map[string]uint64, replicaSet []string, f, id string, wantV uint64) string {
	holds := func(name string) bool {
		v, ok := holdings[name][id]
		return ok && v >= wantV
	}
	for _, name := range replicaSet {
		if name != f && holds(name) {
			return name
		}
	}
	names := make([]string, 0, len(holdings))
	for name := range holdings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if name != f && holds(name) {
			return name
		}
	}
	return ""
}
