package router

import (
	"encoding/json"
	"strconv"
	"strings"

	"webfountain/internal/services"
	"webfountain/internal/store"
	"webfountain/internal/vinci"
)

// RegisterRouted exposes the cluster behind the router on the SAME
// wire protocol a single storage node speaks: the store, index and
// sentiment services with their usual ops. A client pointed at a
// wfrouter instead of a wfnode sees one logical store — puts are
// replicated to the shard's replica set, gets are hedged across
// replicas, queries fan out and merge — without changing a line.
//
// Ops that only make sense against one physical index (docfreq,
// numdocs' per-shard meaning) report an explicit error rather than a
// silently wrong cross-replica sum.
func (r *Router) RegisterRouted(reg *vinci.Registry) {
	reg.Register(services.StoreService, func(req vinci.Request) vinci.Response {
		switch req.Op {
		case "get":
			e, err := r.Get(req.Param("id"))
			if IsNotFound(err) {
				return vinci.Errorf("store: no entity %q", req.Param("id"))
			}
			if err != nil {
				return vinci.Errorf("store: %v", err)
			}
			data, err := e.MarshalIndent()
			if err != nil {
				return vinci.Errorf("store: encode: %v", err)
			}
			return vinci.OKResponse(map[string]string{"entity": string(data)})
		case "put":
			e, err := store.ParseEntity([]byte(req.Param("entity")))
			if err != nil {
				return vinci.Errorf("store: %v", err)
			}
			if err := r.Put(e); err != nil {
				return vinci.Errorf("store: %v", err)
			}
			return vinci.OKResponse(map[string]string{"id": e.ID})
		case "delete":
			if err := r.Delete(req.Param("id")); err != nil {
				return vinci.Errorf("store: %v", err)
			}
			return vinci.OKResponse(nil)
		case "count":
			n, err := r.NumEntities()
			if err != nil {
				return vinci.Errorf("store: %v", err)
			}
			return vinci.OKResponse(map[string]string{"count": strconv.Itoa(n)})
		case "ids":
			ids, err := r.IDs()
			if err != nil {
				return vinci.Errorf("store: %v", err)
			}
			return vinci.OKResponse(map[string]string{"ids": strings.Join(ids, " ")})
		}
		return vinci.Errorf("store: unknown op %q", req.Op)
	})

	reg.RegisterIdempotent(services.IndexService, func(req vinci.Request) vinci.Response {
		switch req.Op {
		case "search":
			terms := strings.Fields(req.Param("terms"))
			if len(terms) == 0 {
				return vinci.Errorf("index: empty terms")
			}
			mode := req.Param("mode")
			if mode == "" {
				mode = "all"
			}
			ids, err := r.Search(mode, terms...)
			if err != nil {
				return vinci.Errorf("index: %v", err)
			}
			return vinci.OKResponse(map[string]string{
				"ids":   strings.Join(ids, " "),
				"count": strconv.Itoa(len(ids)),
			})
		case "numdocs":
			n, err := r.NumEntities()
			if err != nil {
				return vinci.Errorf("index: %v", err)
			}
			return vinci.OKResponse(map[string]string{"count": strconv.Itoa(n)})
		case "docfreq":
			return vinci.Errorf("index: docfreq is per-shard; ask a node directly")
		}
		return vinci.Errorf("index: unknown op %q", req.Op)
	})

	reg.RegisterIdempotent(services.SentimentService, func(req vinci.Request) vinci.Response {
		subject := req.Param("subject")
		if subject == "" {
			return vinci.Errorf("sentiment: missing subject")
		}
		switch req.Op {
		case "query":
			entries, err := r.SentimentQuery(subject)
			if err != nil {
				return vinci.Errorf("sentiment: %v", err)
			}
			data, err := json.Marshal(entries)
			if err != nil {
				return vinci.Errorf("sentiment: encode: %v", err)
			}
			return vinci.OKResponse(map[string]string{"entries": string(data)})
		case "counts":
			pos, neg, err := r.SentimentCounts(subject)
			if err != nil {
				return vinci.Errorf("sentiment: %v", err)
			}
			return vinci.OKResponse(map[string]string{
				"positive": strconv.Itoa(pos),
				"negative": strconv.Itoa(neg),
			})
		}
		return vinci.Errorf("sentiment: unknown op %q", req.Op)
	})
}
