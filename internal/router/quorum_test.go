package router

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"webfountain/internal/store"
	"webfountain/internal/vinci"
)

// waitFor polls cond until it holds or the deadline passes — for
// observing background work (quorum stragglers, read repairs) without
// racing it.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestQuorumWriteRequiresW(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2", "n3"}, Options{Replicas: 2, Seed: 42, WriteQuorum: 2})
	id := testEntity(0).ID
	set := c.r.Ring().ReplicaSet(id)
	if len(set) != 2 {
		t.Fatalf("replica set %v, want 2", set)
	}
	// Both replicas up: the write reaches quorum and lands on both.
	if err := c.r.Put(testEntity(0)); err != nil {
		t.Fatalf("put with full replica set: %v", err)
	}
	if h := c.holders(id); len(h) != 2 {
		t.Fatalf("holders %v, want both replicas", h)
	}
	// One replica down: W=2 cannot be met and the write must refuse —
	// that refusal is what makes an ack survive any single replica loss.
	c.nodes[set[1]].gate.Kill()
	if err := c.r.Put(testEntity(0)); err == nil {
		t.Fatal("put acked with only 1 of W=2 replicas reachable")
	}
}

func TestQuorumAckSurvivesFirstAckerLoss(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2", "n3"}, Options{Replicas: 2, Seed: 42, WriteQuorum: 2})
	c.put(t, 20)
	// Every acked write is on W=2 replicas, so losing ANY one node —
	// including whichever acked first — leaves a readable copy.
	for _, victim := range []string{"n1", "n2", "n3"} {
		c.nodes[victim].gate.Kill()
		for i := 0; i < 20; i++ {
			id := testEntity(i).ID
			if e, err := c.r.Get(id); err != nil || e.ID != id {
				t.Fatalf("get %s with %s dead: %v", id, victim, err)
			}
		}
		c.nodes[victim].gate.Revive()
	}
}

func TestQuorumGetNewestWinsAndRepairs(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2", "n3"},
		Options{Replicas: 2, Seed: 42, WriteQuorum: 1, ReadQuorum: 2})
	id := testEntity(3).ID
	if err := c.r.Put(testEntity(3)); err != nil {
		t.Fatal(err)
	}
	set := c.r.Ring().ReplicaSet(id)
	stale := set[1]
	// Strand an old version: kill one replica, update under W=1, revive
	// without a rejoin. The revived node still serves its stale copy.
	c.nodes[stale].gate.Kill()
	waitFor(t, "straggler settles", func() bool {
		e, ok := c.nodes[set[0]].st.Get(id)
		return ok && e != nil
	})
	updated := &store.Entity{ID: id, Text: "updated text after the kill"}
	if err := c.r.Put(updated); err != nil {
		t.Fatalf("put update with dead replica under W=1: %v", err)
	}
	c.nodes[stale].gate.Revive()
	oldE, ok := c.nodes[stale].st.Get(id)
	if !ok {
		t.Fatalf("stale replica lost its copy entirely")
	}
	// A quorum read consults both replicas, answers with the newest
	// version, and repairs the stale one in the background.
	got, err := c.r.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text != updated.Text {
		t.Fatalf("quorum read returned stale text %q", got.Text)
	}
	if got.Version <= oldE.Version {
		t.Fatalf("updated version %d not newer than stale %d", got.Version, oldE.Version)
	}
	waitFor(t, "read-repair lands", func() bool {
		e, ok := c.nodes[stale].st.Get(id)
		return ok && e.Version == got.Version
	})
}

func TestQuorumGetAnswersWithReplicaDown(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2", "n3"},
		Options{Replicas: 2, Seed: 42, WriteQuorum: 1, ReadQuorum: 2})
	c.put(t, 10)
	id := testEntity(4).ID
	c.nodes[c.r.Ring().ReplicaSet(id)[0]].gate.Kill()
	// R=2 with only one replica reachable: availability beats strict R.
	if e, err := c.r.Get(id); err != nil || e.ID != id {
		t.Fatalf("quorum get with one replica down: %v", err)
	}
}

func TestAntiEntropyConvergesMissedWritesAndDeletes(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2", "n3"}, Options{Replicas: 2, Seed: 7, WriteQuorum: 1})
	c.put(t, 20)
	victim := "n2"
	c.nodes[victim].gate.Kill()
	c.put(t, 40) // 20 new writes the victim misses
	// Delete something the victim holds, while it is down.
	var deleted string
	for i := 0; i < 20; i++ {
		if cand := testEntity(i).ID; c.r.Ring().Owns(victim, cand) {
			deleted = cand
			break
		}
	}
	if deleted != "" {
		if err := c.r.Delete(deleted); err != nil {
			t.Fatal(err)
		}
	}
	c.nodes[victim].gate.Revive()
	// No rejoin, no reads: the sweep alone must converge the victim.
	repaired, err := c.r.AntiEntropyOnce()
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if repaired == 0 {
		t.Fatal("sweep repaired nothing despite a node full of missed writes")
	}
	for i := 0; i < 40; i++ {
		id := testEntity(i).ID
		if !c.r.Ring().Owns(victim, id) || id == deleted {
			continue
		}
		if _, ok := c.nodes[victim].st.Get(id); !ok {
			t.Fatalf("after sweep, %s still missing owned entity %s", victim, id)
		}
	}
	if deleted != "" {
		if _, ok := c.nodes[victim].st.Get(deleted); ok {
			t.Fatalf("after sweep, %s still holds deleted entity %s", victim, deleted)
		}
	}
}

func TestAntiEntropyDigestFastPath(t *testing.T) {
	c := newCluster(t, []string{"n1", "n2", "n3"}, Options{Replicas: 2, Seed: 7})
	c.put(t, 15)
	// First sweep does the full census and remembers converged digests.
	if _, err := c.r.AntiEntropyOnce(); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes {
		n.gate.ResetCounts()
	}
	// Second sweep over unchanged state: one digest call per node and
	// nothing else.
	repaired, err := c.r.AntiEntropyOnce()
	if err != nil || repaired != 0 {
		t.Fatalf("idle sweep: repaired=%d err=%v", repaired, err)
	}
	for name, n := range c.nodes {
		if delivered, _ := n.gate.Counts(); delivered != 1 {
			t.Fatalf("fast-path sweep made %d calls to %s, want exactly 1 (the digest)", delivered, name)
		}
	}
	// A write moves one digest; the next sweep must notice (not fast-path
	// into ignoring it) and still end converged.
	if err := c.r.Put(testEntity(99)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.r.AntiEntropyOnce(); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes {
		n.gate.ResetCounts()
	}
	if repaired, err := c.r.AntiEntropyOnce(); err != nil || repaired != 0 {
		t.Fatalf("post-write sweep: repaired=%d err=%v", repaired, err)
	}
	for name, n := range c.nodes {
		if delivered, _ := n.gate.Counts(); delivered != 1 {
			t.Fatalf("sweep after re-convergence made %d calls to %s, want 1", delivered, name)
		}
	}
}

// --- multi-router epoch agreement ---

// topoClient exposes a router's topology service as an in-process
// vinci client — how peer routers reach each other in tests.
func topoClient(t *testing.T, r *Router) vinci.Client {
	t.Helper()
	reg := vinci.NewRegistry()
	r.RegisterTopology(reg)
	return vinci.NewLocalClient(reg)
}

// newPeerRouter builds a second router over the same node set with the
// same placement inputs, so both start on byte-identical rings.
func newPeerRouter(t *testing.T, c *cluster, names []string, opts Options) *Router {
	t.Helper()
	var handles []NodeHandle
	for _, name := range names {
		handles = append(handles, NodeHandle{Name: name, Client: c.nodes[name].c})
	}
	r := New(handles, opts)
	t.Cleanup(func() { r.Close() })
	return r
}

func TestPeerRoutersConvergeOnJoin(t *testing.T) {
	names := []string{"n1", "n2"}
	dialable := map[string]vinci.Client{}
	opts := Options{Replicas: 2, Seed: 42,
		Dial: func(addr string) (vinci.Client, error) {
			if c, ok := dialable[addr]; ok {
				return c, nil
			}
			return nil, fmt.Errorf("no route to %s", addr)
		}}
	c := newCluster(t, names, opts)
	rb := newPeerRouter(t, c, names, opts)
	c.r.AddPeer("rb", topoClient(t, rb))
	rb.AddPeer("ra", topoClient(t, c.r))
	if c.r.Ring().Digest() != rb.Ring().Digest() {
		t.Fatal("peer routers must start on identical rings")
	}
	// A node joins through router A only. The broadcast must carry the
	// new member (with its address) to router B, which has never met it.
	n3 := newTestNode("n3")
	dialable["addr:n3"] = n3.c
	if err := c.r.JoinAddr("n3", "addr:n3", n3.c); err != nil {
		t.Fatal(err)
	}
	if err := c.r.BroadcastRing(); err != nil {
		t.Fatalf("broadcast after join: %v", err)
	}
	if got, want := rb.Ring().Epoch(), c.r.Ring().Epoch(); got != want {
		t.Fatalf("peer epoch %d, want %d", got, want)
	}
	if rb.Ring().Digest() != c.r.Ring().Digest() {
		t.Fatal("peer adopted a different ring than it was offered")
	}
	// Router B can now route writes to the member it just learned about.
	if err := rb.Put(testEntity(5)); err != nil {
		t.Fatalf("put through adopting router: %v", err)
	}
}

func TestPeerForkResolvesDeterministically(t *testing.T) {
	names := []string{"n1", "n2", "n3"}
	dialable := map[string]vinci.Client{}
	opts := Options{Replicas: 2, Seed: 7,
		Dial: func(addr string) (vinci.Client, error) {
			if c, ok := dialable[addr]; ok {
				return c, nil
			}
			return nil, fmt.Errorf("no route to %s", addr)
		}}
	// Every node gets a dialable address, so whichever fork loses can
	// re-acquire members it dropped (or never met).
	var handles []NodeHandle
	for _, name := range names {
		n := newTestNode(name)
		dialable["addr:"+name] = n.c
		handles = append(handles, NodeHandle{Name: name, Client: n.c, Addr: "addr:" + name})
	}
	ra := New(handles, opts)
	t.Cleanup(func() { ra.Close() })
	rb := New(handles, opts)
	t.Cleanup(func() { rb.Close() })
	ra.AddPeer("rb", topoClient(t, rb))
	rb.AddPeer("ra", topoClient(t, ra))
	// Fork: both routers change membership independently (a split), so
	// both sit at epoch 1 with different digests.
	n4 := newTestNode("n4")
	dialable["addr:n4"] = n4.c
	if err := ra.JoinAddr("n4", "addr:n4", n4.c); err != nil {
		t.Fatal(err)
	}
	if err := rb.Drain("n3"); err != nil {
		t.Fatal(err)
	}
	if ra.Ring().Epoch() != 1 || rb.Ring().Epoch() != 1 {
		t.Fatalf("fork setup: epochs %d/%d, want 1/1", ra.Ring().Epoch(), rb.Ring().Epoch())
	}
	if ra.Ring().Digest() == rb.Ring().Digest() {
		t.Fatal("fork setup: digests should differ")
	}
	// The rule (equal epoch: smaller digest wins) is symmetric, so one
	// sync from either side converges both.
	winner := ra.Ring().Digest()
	if rb.Ring().Digest() < winner {
		winner = rb.Ring().Digest()
	}
	if err := ra.SyncPeersOnce(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if got := ra.Ring().Digest(); got != winner {
		t.Fatalf("router A on digest %.12s, want winner %.12s", got, winner)
	}
	if got := rb.Ring().Digest(); got != winner {
		t.Fatalf("router B on digest %.12s, want winner %.12s", got, winner)
	}
}

func TestStaleRouterRefusesWritesUntilAdoption(t *testing.T) {
	names := []string{"n1", "n2"}
	opts := Options{Replicas: 2, Seed: 42} // no Dial: adoption of unknown members must fail
	c := newCluster(t, names, opts)
	rb := newPeerRouter(t, c, names, opts)
	c.r.AddPeer("rb", topoClient(t, rb))
	rb.AddPeer("ra", topoClient(t, c.r))
	c.put(t, 5)
	// Router A admits a node router B can neither reach nor dial. The
	// broadcast must fail loudly, and B — now knowing it is behind —
	// must refuse writes but keep serving reads.
	n3 := newTestNode("n3")
	if err := c.r.Join("n3", n3.c); err != nil {
		t.Fatal(err)
	}
	if err := c.r.BroadcastRing(); err == nil {
		t.Fatal("broadcast to a peer that cannot adopt must report failure")
	}
	if !rb.Stale() {
		t.Fatal("peer that failed adoption of a winning ring must mark itself stale")
	}
	if err := rb.Put(testEntity(0)); !errors.Is(err, ErrStaleRouter) {
		t.Fatalf("stale router write: err=%v, want ErrStaleRouter", err)
	}
	if _, err := rb.Get(testEntity(0).ID); err != nil {
		t.Fatalf("stale router must keep serving reads: %v", err)
	}
	// Once the member is reachable (pre-wired handle), a re-pull adopts
	// the current ring and clears the refusal.
	rb.AddHandle(NodeHandle{Name: "n3", Client: n3.c})
	if err := rb.SyncPeersOnce(); err != nil {
		t.Fatalf("re-pull: %v", err)
	}
	if rb.Stale() {
		t.Fatal("stale flag did not clear after successful adoption")
	}
	if rb.Ring().Digest() != c.r.Ring().Digest() {
		t.Fatal("re-pull did not converge the rings")
	}
	if err := rb.Put(testEntity(0)); err != nil {
		t.Fatalf("put after adoption: %v", err)
	}
}
