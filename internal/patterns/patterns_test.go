package patterns

import (
	"strings"
	"testing"

	"webfountain/internal/chunk"
	"webfountain/internal/lexicon"
)

func TestDefaultDatabaseLoads(t *testing.T) {
	db := Default()
	if db.Len() < 80 {
		t.Errorf("default DB has %d predicates, want >= 80", db.Len())
	}
	if db.Patterns() < db.Len() {
		t.Error("pattern count below predicate count")
	}
}

func TestPaperExamplePatterns(t *testing.T) {
	db := Default()

	// impress + PP(by;with)
	var passive *Pattern
	for i, p := range db.Lookup("impress") {
		if p.Target.Role == chunk.RolePP {
			passive = &db.Lookup("impress")[i]
		}
	}
	if passive == nil {
		t.Fatal("no impress PP pattern")
	}
	if passive.Fixed != lexicon.Positive {
		t.Error("impress should be fixed positive")
	}
	if !passive.Target.MatchesPrep("by") || !passive.Target.MatchesPrep("with") {
		t.Error("impress target should accept by/with")
	}
	if passive.Target.MatchesPrep("against") {
		t.Error("impress target should reject other prepositions")
	}

	// be CP SP
	bePs := db.Lookup("be")
	if len(bePs) != 1 {
		t.Fatalf("be patterns = %d, want 1", len(bePs))
	}
	be := bePs[0]
	if !be.IsTrans() || be.Source.Role != chunk.RoleCP || be.Target.Role != chunk.RoleSP {
		t.Errorf("be pattern = %+v", be)
	}

	// offer OP SP
	offer := db.Lookup("offer")[0]
	if !offer.IsTrans() || offer.Source.Role != chunk.RoleOP || offer.Target.Role != chunk.RoleSP {
		t.Errorf("offer pattern = %+v", offer)
	}
}

func TestParseNotationRoundTrip(t *testing.T) {
	cases := []string{
		"impress + PP(by;with)",
		"be CP SP",
		"offer OP SP",
		"fail - SP",
		"avoid ~OP SP",
	}
	for _, c := range cases {
		ps, err := Parse(strings.NewReader(c))
		if err != nil {
			t.Errorf("Parse(%q): %v", c, err)
			continue
		}
		if got := ps[0].String(); got != c {
			t.Errorf("round trip %q -> %q", c, got)
		}
	}
}

func TestParseInvertedSource(t *testing.T) {
	ps, err := Parse(strings.NewReader("avoid ~OP SP"))
	if err != nil {
		t.Fatal(err)
	}
	p := ps[0]
	if !p.IsTrans() || !p.InvertSource || p.Source.Role != chunk.RoleOP {
		t.Errorf("pattern = %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"impress +",        // missing target
		"impress + CP",     // CP cannot be target
		"impress ? SP",     // bad category
		"impress + XX",     // unknown role
		"impress + PP(by",  // unterminated prep list
		"impress + SP(by)", // preps on non-PP
		"a b c d",          // too many fields
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	in := "\n# comment\n\nbe CP SP\n"
	ps, err := Parse(strings.NewReader(in))
	if err != nil || len(ps) != 1 {
		t.Fatalf("got %d patterns, err=%v", len(ps), err)
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	db := Default()
	if len(db.Lookup("IMPRESS")) == 0 {
		t.Error("lookup should be case-insensitive")
	}
	if len(db.Lookup("nonexistentverb")) != 0 {
		t.Error("unknown predicate should return nil")
	}
}

func TestLoadAppends(t *testing.T) {
	db := NewDB()
	if err := db.Load(strings.NewReader("wow + SP")); err != nil {
		t.Fatal(err)
	}
	if len(db.Lookup("wow")) != 1 {
		t.Error("loaded pattern missing")
	}
}

func TestRoleSpecString(t *testing.T) {
	rs := RoleSpec{Role: chunk.RolePP, Preps: []string{"by", "with"}}
	if rs.String() != "PP(by;with)" {
		t.Errorf("String() = %q", rs.String())
	}
	rs2 := RoleSpec{Role: chunk.RoleSP}
	if rs2.String() != "SP" {
		t.Errorf("String() = %q", rs2.String())
	}
}

func TestMatchesPrepUnrestricted(t *testing.T) {
	rs := RoleSpec{Role: chunk.RolePP}
	if !rs.MatchesPrep("from") {
		t.Error("unrestricted PP should match any prep")
	}
	sp := RoleSpec{Role: chunk.RoleSP}
	if !sp.MatchesPrep("anything") {
		t.Error("non-PP roles ignore preps")
	}
}
