// Package patterns implements the sentiment pattern database: the second
// linguistic resource of the sentiment miner, defining how a sentence
// predicate assigns sentiment to a grammatical target.
//
// Each entry follows the paper's notation
//
//	<predicate> <sent_category> <target>
//
// where predicate is a verb lemma, sent_category is either a fixed
// polarity (+ or -) or a source role (SP, OP, CP or PP, optionally
// prefixed with ~ to flip the source's polarity), and target is the role
// the sentiment is directed to (SP, OP or PP, where PP may restrict the
// preposition: PP(by;with)).
//
// Examples from the paper:
//
//	impress  +  PP(by;with)   // "I am impressed by the picture quality."
//	be       CP SP            // "The colors are vibrant."
//	offer    OP SP            // "The company offers mediocre services."
//
// Verbs like be or offer carry no polarity of their own — the paper calls
// them trans verbs — and transfer the polarity of the source phrase to the
// target.
package patterns

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"

	"webfountain/internal/chunk"
	"webfountain/internal/lexicon"
)

// RoleSpec names a grammatical role with an optional preposition
// restriction for PP roles.
type RoleSpec struct {
	Role chunk.Role
	// Preps restricts PP roles to these prepositions (lower-cased). Empty
	// means any preposition.
	Preps []string
}

// MatchesPrep reports whether a PP with the given preposition satisfies
// the spec.
func (rs RoleSpec) MatchesPrep(prep string) bool {
	if rs.Role != chunk.RolePP || len(rs.Preps) == 0 {
		return true
	}
	prep = strings.ToLower(prep)
	for _, p := range rs.Preps {
		if p == prep {
			return true
		}
	}
	return false
}

// String renders the spec in the paper's notation.
func (rs RoleSpec) String() string {
	if rs.Role == chunk.RolePP && len(rs.Preps) > 0 {
		return "PP(" + strings.Join(rs.Preps, ";") + ")"
	}
	return rs.Role.String()
}

// Pattern is one sentiment extraction pattern for a predicate.
type Pattern struct {
	// Predicate is the verb lemma the pattern applies to.
	Predicate string
	// Fixed is the predicate's own polarity. When Neutral, the predicate
	// is a trans verb and Source defines where polarity comes from.
	Fixed lexicon.Polarity
	// Source is the component whose sentiment transfers to the target
	// (only meaningful when Fixed == Neutral).
	Source RoleSpec
	// InvertSource flips the source polarity (the paper's ~ prefix).
	InvertSource bool
	// Target is the component the sentiment is directed to.
	Target RoleSpec

	// str caches the notation rendering. DB.Add fills it so the hot
	// analyzer path never re-renders per assignment.
	str string
}

// IsTrans reports whether the pattern transfers sentiment from a source
// phrase rather than carrying fixed polarity.
func (p Pattern) IsTrans() bool { return p.Fixed == lexicon.Neutral }

// String renders the pattern in the paper's notation.
func (p Pattern) String() string {
	if p.str != "" {
		return p.str
	}
	return p.render()
}

func (p Pattern) render() string {
	cat := p.Fixed.String()
	if p.IsTrans() {
		cat = p.Source.String()
		if p.InvertSource {
			cat = "~" + cat
		}
	}
	return fmt.Sprintf("%s %s %s", p.Predicate, cat, p.Target)
}

// DB is a sentiment pattern database keyed by predicate lemma.
type DB struct {
	byPredicate map[string][]Pattern
}

// NewDB returns an empty pattern database.
func NewDB() *DB { return &DB{byPredicate: make(map[string][]Pattern)} }

// Default returns a database populated with the embedded patterns.
func Default() *DB {
	db := NewDB()
	for _, p := range defaultPatterns() {
		db.Add(p)
	}
	return db
}

var shared = sync.OnceValue(Default)

// Shared returns a process-wide database of the embedded patterns, built
// once. Callers must treat it as read-only; anyone needing extra patterns
// builds their own DB via Default + Add/Load.
func Shared() *DB { return shared() }

// Add inserts a pattern. Multiple patterns per predicate are allowed; the
// analyzer picks the best structural match.
func (db *DB) Add(p Pattern) {
	p.Predicate = strings.ToLower(p.Predicate)
	p.str = p.render()
	db.byPredicate[p.Predicate] = append(db.byPredicate[p.Predicate], p)
}

// Lookup returns all patterns for a predicate lemma.
func (db *DB) Lookup(lemma string) []Pattern {
	return db.byPredicate[strings.ToLower(lemma)]
}

// Len returns the number of predicates with at least one pattern.
func (db *DB) Len() int { return len(db.byPredicate) }

// Predicates returns the number of patterns in total.
func (db *DB) Patterns() int {
	n := 0
	for _, ps := range db.byPredicate {
		n += len(ps)
	}
	return n
}

// Parse reads patterns in the paper's line format, one per line:
//
//	impress + PP(by;with)
//	be CP SP
//	offer OP SP
//	avoid ~OP SP
//
// Lines starting with # and blank lines are skipped.
func Parse(r io.Reader) ([]Pattern, error) {
	var out []Pattern
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("pattern line %d: %w", lineNo, err)
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pattern read: %w", err)
	}
	return out, nil
}

func parseLine(line string) (Pattern, error) {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return Pattern{}, fmt.Errorf("want 3 fields, got %d in %q", len(fields), line)
	}
	p := Pattern{Predicate: strings.ToLower(fields[0])}

	cat := fields[1]
	switch cat {
	case "+":
		p.Fixed = lexicon.Positive
	case "-":
		p.Fixed = lexicon.Negative
	default:
		if strings.HasPrefix(cat, "~") {
			p.InvertSource = true
			cat = cat[1:]
		}
		src, err := parseRoleSpec(cat)
		if err != nil {
			return Pattern{}, fmt.Errorf("bad source %q: %w", fields[1], err)
		}
		p.Source = src
	}

	tgt, err := parseRoleSpec(fields[2])
	if err != nil {
		return Pattern{}, fmt.Errorf("bad target %q: %w", fields[2], err)
	}
	if tgt.Role == chunk.RoleCP {
		return Pattern{}, fmt.Errorf("CP cannot be a target in %q", line)
	}
	p.Target = tgt
	return p, nil
}

func parseRoleSpec(s string) (RoleSpec, error) {
	var preps []string
	if i := strings.Index(s, "("); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return RoleSpec{}, fmt.Errorf("unterminated preposition list in %q", s)
		}
		for _, p := range strings.Split(s[i+1:len(s)-1], ";") {
			p = strings.TrimSpace(strings.ToLower(p))
			if p != "" {
				preps = append(preps, p)
			}
		}
		s = s[:i]
	}
	var role chunk.Role
	switch s {
	case "SP":
		role = chunk.RoleSP
	case "OP":
		role = chunk.RoleOP
	case "CP":
		role = chunk.RoleCP
	case "PP":
		role = chunk.RolePP
	default:
		return RoleSpec{}, fmt.Errorf("unknown role %q", s)
	}
	if role != chunk.RolePP && len(preps) > 0 {
		return RoleSpec{}, fmt.Errorf("preposition list on non-PP role %q", s)
	}
	return RoleSpec{Role: role, Preps: preps}, nil
}

// Load parses patterns from r and adds them to the database.
func (db *DB) Load(r io.Reader) error {
	ps, err := Parse(r)
	if err != nil {
		return err
	}
	for _, p := range ps {
		db.Add(p)
	}
	return nil
}
