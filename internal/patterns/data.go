package patterns

import "strings"

// defaultPatternSource is the embedded predicate pattern database in the
// paper's textual notation. It covers the trans verbs (be, offer, take,
// ...) whose polarity comes from a source phrase, and the self-polar
// predicates (impress, disappoint, fail, ...).
const defaultPatternSource = `
# --- trans verbs: copulas transfer the complement's polarity to the subject
be CP SP
seem CP SP
look CP SP
sound CP SP
feel CP SP
appear CP SP
remain CP SP
stay CP SP
become CP SP
get CP SP
turn CP SP
prove CP SP
taste CP SP
smell CP SP

# --- trans verbs: the object's polarity flows to the subject
offer OP SP
provide OP SP
deliver OP SP
produce OP SP
give OP SP
take OP SP
make OP SP
have OP SP
feature OP SP
include OP SP
boast OP SP
show OP SP
display OP SP
exhibit OP SP
yield OP SP
generate OP SP
capture OP SP
record OP SP
render OP SP
sport OP SP
pack OP SP
carry OP SP
add OP SP
bring OP SP
contain OP SP
hold OP SP
post OP SP
report OP SP
announce OP SP
achieve OP SP
earn OP SP
win OP SP
receive OP SP
gain OP SP
see OP SP

# --- trans via prepositional source
come PP(with) SP
ship PP(with) SP
arrive PP(with) SP

# --- fixed-polarity predicates, sentiment directed at the subject
excel + SP
shine + SP
impress + SP
outperform + SP
surpass + SP
exceed + SP
succeed + SP
thrive + SP
flourish + SP
improve + SP
satisfy + SP
delight + SP
please + SP
fail - SP
lack - SP
suffer - SP
struggle - SP
disappoint - SP
frustrate - SP
annoy - SP
irritate - SP
break - SP
crash - SP
freeze - SP
malfunction - SP
overheat - SP
jam - SP
rattle - SP
stall - SP
die - SP
drain - SP
deteriorate - SP
degrade - SP
worsen - SP
decline - SP
leak - SP
spill - SP
require - SP
need - SP
underperform - SP
misfire - SP

# --- fixed-polarity predicates, sentiment directed at the object
love + OP
adore + OP
enjoy + OP
admire + OP
appreciate + OP
praise + OP
recommend + OP
applaud + OP
celebrate + OP
endorse + OP
favor + OP
prefer + OP
like + OP
treasure + OP
hate - OP
dislike - OP
despise - OP
loathe - OP
detest - OP
regret - OP
criticize - OP
condemn - OP
denounce - OP
blame - OP
avoid - OP
dread - OP
ridicule - OP
pan - OP
slam - OP
dismiss - OP
ruin - OP
destroy - OP
damage - OP
harm - OP
hurt - OP
botch - OP
bungle - OP

# --- passive attributions: the by/with phrase names what caused the feeling
impress + PP(by;with)
delight + PP(by;with)
please + PP(by;with)
satisfy + PP(by;with)
amaze + PP(by;with)
thrill + PP(by;with)
disappoint - PP(by;with)
frustrate - PP(by;with)
annoy - PP(by;with)
irritate - PP(by;with)
disgust - PP(by;with)
appall - PP(by;with)
underwhelm - PP(by;with)
bother - PP(by;with)
trouble - PP(by;with)

# --- suffer/benefit with prepositional cause, sentiment on subject
benefit PP(from) SP
`

// defaultPatterns parses the embedded database; the source is a compile-
// time constant, so parsing cannot fail after the package's own tests run.
func defaultPatterns() []Pattern {
	ps, err := Parse(strings.NewReader(defaultPatternSource))
	if err != nil {
		panic("patterns: embedded database invalid: " + err.Error())
	}
	return ps
}
