package ingest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webfountain/internal/corpus"
	"webfountain/internal/store"
)

func TestFromCorpusStreamsAll(t *testing.T) {
	docs := corpus.DigitalCameraReviews(1, 10)
	src := FromCorpus("reviews", docs)
	if src.Name() != "reviews" {
		t.Errorf("name = %q", src.Name())
	}
	n := 0
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if e.ID == "" || e.Text == "" || e.Source != "review" {
			t.Errorf("bad entity: %+v", e)
		}
		n++
	}
	if n != 10 {
		t.Errorf("streamed %d docs, want 10", n)
	}
	if _, ok := src.Next(); ok {
		t.Error("exhausted source yielded more")
	}
}

func TestIngestorRunStoresEverything(t *testing.T) {
	st := store.New(8)
	ing := New(st, 4)
	stats, err := ing.Run(
		FromCorpus("reviews", corpus.DigitalCameraReviews(1, 25)),
		FromCorpus("webcrawl", corpus.PetroleumWeb(2, 15)),
		FromCorpus("newsfeed", corpus.PetroleumNews(3, 10)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Documents != 50 || st.Len() != 50 {
		t.Errorf("documents = %d, store = %d", stats.Documents, st.Len())
	}
	if stats.Bytes <= 0 {
		t.Error("no bytes counted")
	}
	if stats.BySource["reviews"] != 25 || stats.BySource["webcrawl"] != 15 || stats.BySource["newsfeed"] != 10 {
		t.Errorf("by source = %v", stats.BySource)
	}
}

func TestIngestorWorkerDefault(t *testing.T) {
	ing := New(store.New(1), 0)
	if ing.workers != 4 {
		t.Errorf("workers = %d", ing.workers)
	}
}

// badSource produces an entity the store rejects (empty ID).
type badSource struct{ done bool }

func (b *badSource) Name() string { return "bad" }
func (b *badSource) Next() (*store.Entity, bool) {
	if b.done {
		return nil, false
	}
	b.done = true
	return &store.Entity{}, true
}

func TestIngestorPropagatesStoreErrors(t *testing.T) {
	ing := New(store.New(1), 1)
	if _, err := ing.Run(&badSource{}); err == nil {
		t.Error("expected error for invalid entity")
	}
}

// TestIngestorWithIndexerIndexesEveryStoredDoc: the indexer callback
// must see exactly the documents that were stored, even with many
// workers calling it concurrently.
func TestIngestorWithIndexerIndexesEveryStoredDoc(t *testing.T) {
	st := store.New(8)
	var (
		mu      sync.Mutex
		indexed = map[string]bool{}
	)
	ing := New(st, 4).WithIndexer(func(e *store.Entity) {
		mu.Lock()
		indexed[e.ID] = true
		mu.Unlock()
	})
	stats, err := ing.Run(FromCorpus("reviews", corpus.DigitalCameraReviews(1, 40)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Documents != 40 || len(indexed) != 40 {
		t.Fatalf("stored %d, indexed %d, want 40/40", stats.Documents, len(indexed))
	}
	for _, id := range st.IDs() {
		if !indexed[id] {
			t.Errorf("stored doc %s never reached the indexer", id)
		}
	}
}

// failFirstSource yields one entity the store rejects (empty ID), then
// a long stream of slow valid documents — the shape that exposes
// workers ploughing on after a sibling's failure.
type failFirstSource struct {
	pos   atomic.Int64
	total int64
}

func (s *failFirstSource) Name() string { return "failfirst" }
func (s *failFirstSource) Next() (*store.Entity, bool) {
	n := s.pos.Add(1)
	if n > s.total {
		return nil, false
	}
	if n == 1 {
		return &store.Entity{}, true // rejected: no ID
	}
	time.Sleep(time.Millisecond)
	return &store.Entity{ID: fmt.Sprintf("doc-%04d", n), Text: "body"}, true
}

// TestIngestorAbortStopsSiblingWorkers: after one worker's Put fails,
// the shared abort flag must stop the other workers long before they
// drain the source — a degraded store is not hammered with doomed
// writes.
func TestIngestorAbortStopsSiblingWorkers(t *testing.T) {
	const total = 2000
	src := &failFirstSource{total: total}
	ing := New(store.New(4), 4)
	stats, err := ing.Run(src)
	if err == nil {
		t.Fatal("expected the first document's store error")
	}
	// Workers in flight when the failure lands may each finish their
	// current document; anything near the full stream means the abort
	// flag did not propagate.
	if stats.Documents > total/10 {
		t.Fatalf("ingested %d of %d documents after a fatal store error", stats.Documents, total)
	}
}
