package ingest

import (
	"testing"

	"webfountain/internal/corpus"
	"webfountain/internal/store"
)

func TestFromCorpusStreamsAll(t *testing.T) {
	docs := corpus.DigitalCameraReviews(1, 10)
	src := FromCorpus("reviews", docs)
	if src.Name() != "reviews" {
		t.Errorf("name = %q", src.Name())
	}
	n := 0
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if e.ID == "" || e.Text == "" || e.Source != "review" {
			t.Errorf("bad entity: %+v", e)
		}
		n++
	}
	if n != 10 {
		t.Errorf("streamed %d docs, want 10", n)
	}
	if _, ok := src.Next(); ok {
		t.Error("exhausted source yielded more")
	}
}

func TestIngestorRunStoresEverything(t *testing.T) {
	st := store.New(8)
	ing := New(st, 4)
	stats, err := ing.Run(
		FromCorpus("reviews", corpus.DigitalCameraReviews(1, 25)),
		FromCorpus("webcrawl", corpus.PetroleumWeb(2, 15)),
		FromCorpus("newsfeed", corpus.PetroleumNews(3, 10)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Documents != 50 || st.Len() != 50 {
		t.Errorf("documents = %d, store = %d", stats.Documents, st.Len())
	}
	if stats.Bytes <= 0 {
		t.Error("no bytes counted")
	}
	if stats.BySource["reviews"] != 25 || stats.BySource["webcrawl"] != 15 || stats.BySource["newsfeed"] != 10 {
		t.Errorf("by source = %v", stats.BySource)
	}
}

func TestIngestorWorkerDefault(t *testing.T) {
	ing := New(store.New(1), 0)
	if ing.workers != 4 {
		t.Errorf("workers = %d", ing.workers)
	}
}

// badSource produces an entity the store rejects (empty ID).
type badSource struct{ done bool }

func (b *badSource) Name() string { return "bad" }
func (b *badSource) Next() (*store.Entity, bool) {
	if b.done {
		return nil, false
	}
	b.done = true
	return &store.Entity{}, true
}

func TestIngestorPropagatesStoreErrors(t *testing.T) {
	ing := New(store.New(1), 1)
	if _, err := ing.Run(&badSource{}); err == nil {
		t.Error("expected error for invalid entity")
	}
}
