// Package ingest simulates WebFountain's data acquisition layer: the web
// crawler and the per-source ingestors that feed documents into the data
// store. Each source has its own delivery format; adapters normalize them
// into store entities. A worker pool drains all sources concurrently, as
// the production gatherers do.
package ingest

import (
	"fmt"
	"sync"
	"sync/atomic"

	"webfountain/internal/corpus"
	"webfountain/internal/metrics"
	"webfountain/internal/store"
)

// Package-level metric handles: the per-document loop pays one clock
// read and three atomic adds per stored document.
var (
	ingestDocs   = metrics.Default().Counter("ingest.docs")
	ingestBytes  = metrics.Default().Counter("ingest.bytes")
	ingestErrors = metrics.Default().Counter("ingest.errors")
	ingestDocNs  = metrics.Default().Histogram("ingest.doc.ns")
)

// Source streams documents from one acquisition channel.
type Source interface {
	// Name identifies the channel ("webcrawl", "newsfeed", "reviews").
	Name() string
	// Next returns the next entity, or ok=false when the source is
	// exhausted. Implementations must be safe for concurrent Next calls.
	Next() (e *store.Entity, ok bool)
}

// corpusSource adapts a generated corpus into a Source.
type corpusSource struct {
	name string
	mu   sync.Mutex
	docs []corpus.Document
	pos  int
}

// FromCorpus wraps generated documents as a source.
func FromCorpus(name string, docs []corpus.Document) Source {
	return &corpusSource{name: name, docs: docs}
}

func (s *corpusSource) Name() string { return s.name }

func (s *corpusSource) Next() (*store.Entity, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pos >= len(s.docs) {
		return nil, false
	}
	d := &s.docs[s.pos]
	s.pos++
	return &store.Entity{
		ID:     d.ID,
		URL:    fmt.Sprintf("http://%s.example/%s", d.Domain, d.ID),
		Source: d.Source,
		Title:  d.Title,
		Date:   d.Date,
		Text:   d.Text(),
		Links:  append([]string(nil), d.Links...),
	}, true
}

// Stats summarizes one ingestion run.
type Stats struct {
	// Documents is the total number of entities stored.
	Documents int
	// Bytes is the total text volume.
	Bytes int64
	// BySource counts documents per source name.
	BySource map[string]int
}

// IndexFunc receives each successfully stored entity so acquisition can
// feed the inverted index in the same pass that stores the document,
// instead of leaving ingested sources unsearchable until a separate
// full-store indexing sweep. It is called from the worker goroutine
// that stored the entity, so implementations must be safe for
// concurrent calls (the platform's sharded index is).
type IndexFunc func(*store.Entity)

// Ingestor drains sources into a store with a worker pool.
type Ingestor struct {
	store   *store.Store
	workers int
	index   IndexFunc
}

// New builds an ingestor over the store (workers < 1 selects 4). Without
// WithIndexer the ingestor is store-only and documents must be indexed
// by a later sweep.
func New(st *store.Store, workers int) *Ingestor {
	if workers < 1 {
		workers = 4
	}
	return &Ingestor{store: st, workers: workers}
}

// WithIndexer routes every stored entity through fn — the platform
// indexing path — and returns the ingestor for chaining.
func (ing *Ingestor) WithIndexer(fn IndexFunc) *Ingestor {
	ing.index = fn
	return ing
}

// Run ingests every document of every source. Sources are drained
// concurrently; the first storage error aborts the run — a shared abort
// flag stops sibling workers from continuing to Put after the failure,
// so a degraded store is not hammered with doomed writes. Workers
// accumulate their stats locally and merge once on exit, keeping the
// shared critical section off the per-document path.
func (ing *Ingestor) Run(sources ...Source) (Stats, error) {
	stats := Stats{BySource: make(map[string]int)}
	var (
		mu       sync.Mutex
		firstErr error
		aborted  atomic.Bool
		wg       sync.WaitGroup
	)
	for _, src := range sources {
		for w := 0; w < ing.workers; w++ {
			wg.Add(1)
			go func(src Source) {
				defer wg.Done()
				local := Stats{BySource: make(map[string]int)}
				for !aborted.Load() {
					e, ok := src.Next()
					if !ok {
						break
					}
					if aborted.Load() {
						break
					}
					span := ingestDocNs.Start()
					if err := ing.store.Put(e); err != nil {
						ingestErrors.Inc()
						aborted.Store(true)
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("ingest %s: %w", src.Name(), err)
						}
						mu.Unlock()
						break
					}
					if ing.index != nil {
						ing.index(e)
					}
					span.End()
					ingestDocs.Inc()
					ingestBytes.Add(int64(len(e.Text)))
					local.Documents++
					local.Bytes += int64(len(e.Text))
					local.BySource[src.Name()]++
				}
				mu.Lock()
				stats.Documents += local.Documents
				stats.Bytes += local.Bytes
				for name, n := range local.BySource {
					stats.BySource[name] += n
				}
				mu.Unlock()
			}(src)
		}
	}
	wg.Wait()
	return stats, firstErr
}
