// Package ingest simulates WebFountain's data acquisition layer: the web
// crawler and the per-source ingestors that feed documents into the data
// store. Each source has its own delivery format; adapters normalize them
// into store entities. A worker pool drains all sources concurrently, as
// the production gatherers do.
package ingest

import (
	"fmt"
	"sync"

	"webfountain/internal/corpus"
	"webfountain/internal/store"
)

// Source streams documents from one acquisition channel.
type Source interface {
	// Name identifies the channel ("webcrawl", "newsfeed", "reviews").
	Name() string
	// Next returns the next entity, or ok=false when the source is
	// exhausted. Implementations must be safe for concurrent Next calls.
	Next() (e *store.Entity, ok bool)
}

// corpusSource adapts a generated corpus into a Source.
type corpusSource struct {
	name string
	mu   sync.Mutex
	docs []corpus.Document
	pos  int
}

// FromCorpus wraps generated documents as a source.
func FromCorpus(name string, docs []corpus.Document) Source {
	return &corpusSource{name: name, docs: docs}
}

func (s *corpusSource) Name() string { return s.name }

func (s *corpusSource) Next() (*store.Entity, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pos >= len(s.docs) {
		return nil, false
	}
	d := &s.docs[s.pos]
	s.pos++
	return &store.Entity{
		ID:     d.ID,
		URL:    fmt.Sprintf("http://%s.example/%s", d.Domain, d.ID),
		Source: d.Source,
		Title:  d.Title,
		Date:   d.Date,
		Text:   d.Text(),
		Links:  append([]string(nil), d.Links...),
	}, true
}

// Stats summarizes one ingestion run.
type Stats struct {
	// Documents is the total number of entities stored.
	Documents int
	// Bytes is the total text volume.
	Bytes int64
	// BySource counts documents per source name.
	BySource map[string]int
}

// Ingestor drains sources into a store with a worker pool.
type Ingestor struct {
	store   *store.Store
	workers int
}

// New builds an ingestor over the store (workers < 1 selects 4).
func New(st *store.Store, workers int) *Ingestor {
	if workers < 1 {
		workers = 4
	}
	return &Ingestor{store: st, workers: workers}
}

// Run ingests every document of every source. Sources are drained
// concurrently; the first storage error aborts the run.
func (ing *Ingestor) Run(sources ...Source) (Stats, error) {
	stats := Stats{BySource: make(map[string]int)}
	var mu sync.Mutex
	var firstErr error

	var wg sync.WaitGroup
	for _, src := range sources {
		for w := 0; w < ing.workers; w++ {
			wg.Add(1)
			go func(src Source) {
				defer wg.Done()
				for {
					e, ok := src.Next()
					if !ok {
						return
					}
					err := ing.store.Put(e)
					mu.Lock()
					if err != nil {
						if firstErr == nil {
							firstErr = fmt.Errorf("ingest %s: %w", src.Name(), err)
						}
						mu.Unlock()
						return
					}
					stats.Documents++
					stats.Bytes += int64(len(e.Text))
					stats.BySource[src.Name()]++
					mu.Unlock()
				}
			}(src)
		}
	}
	wg.Wait()
	return stats, firstErr
}
