package faults

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"webfountain/internal/cluster"
	"webfountain/internal/store"
	"webfountain/internal/vinci"
)

func echoRegistry() *vinci.Registry {
	reg := vinci.NewRegistry()
	reg.Register("echo", func(req vinci.Request) vinci.Response {
		return vinci.OKResponse(map[string]string{"op": req.Op})
	})
	return reg
}

func seededStore(n, shards int) *store.Store {
	st := store.New(shards)
	for i := 0; i < n; i++ {
		st.Put(&store.Entity{ID: fmt.Sprintf("doc%03d", i), Text: fmt.Sprintf("text %d", i)})
	}
	return st
}

// TestInjectorDeterministicSequence: the same seed yields the same
// fault decisions, call by call, and therefore the same stats.
func TestInjectorDeterministicSequence(t *testing.T) {
	cfg := Config{Seed: 99, DropRate: 0.15, DelayRate: 0.1, Delay: time.Microsecond,
		TransientRate: 0.2, PermanentRate: 0.05}
	run := func() ([]string, Stats) {
		in := New(cfg)
		var outcomes []string
		for i := 0; i < 200; i++ {
			err := in.MinerFault()
			switch {
			case err == nil:
				outcomes = append(outcomes, "ok")
			case err.(*Error).Transient:
				outcomes = append(outcomes, "transient")
			default:
				outcomes = append(outcomes, "permanent")
			}
		}
		return outcomes, in.Stats()
	}
	a, sa := run()
	b, sb := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: %s vs %s (same seed must replay the same faults)", i, a[i], b[i])
		}
	}
	if sa != sb {
		t.Errorf("stats diverged: %v vs %v", sa, sb)
	}
	if sa.Total() == 0 {
		t.Error("no faults injected at 50% combined rate over 200 calls")
	}
}

// TestSeedsDiverge: different seeds explore different fault sequences.
func TestSeedsDiverge(t *testing.T) {
	outcomes := func(seed int64) string {
		in := New(Config{Seed: seed, TransientRate: 0.5})
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if in.MinerFault() == nil {
				b.WriteByte('.')
			} else {
				b.WriteByte('x')
			}
		}
		return b.String()
	}
	if outcomes(1) == outcomes(2) {
		t.Error("seeds 1 and 2 produced identical 64-call fault sequences")
	}
}

// TestFaultyClientWrapper: injected call faults carry the right
// transience and pass-through calls reach the registry.
func TestFaultyClientWrapper(t *testing.T) {
	in := New(Config{Seed: 3, TransientRate: 1})
	c := in.Client(vinci.NewLocalClient(echoRegistry()))
	_, err := c.Call(vinci.Request{Service: "echo", Op: "x"})
	var fe *Error
	if err == nil {
		t.Fatal("TransientRate 1 must fail every call")
	}
	if !vinci.IsRetryable(err) {
		t.Errorf("injected transient fault should classify retryable: %v", err)
	}
	if ok := errorsAs(err, &fe); !ok || !fe.Transient {
		t.Errorf("err = %#v", err)
	}

	quiet := New(Config{Seed: 3})
	c2 := quiet.Client(vinci.NewLocalClient(echoRegistry()))
	resp, err := c2.Call(vinci.Request{Service: "echo", Op: "through"})
	if err != nil || !resp.OK || resp.Fields["op"] != "through" {
		t.Errorf("pass-through call: %+v, %v", resp, err)
	}
}

func errorsAs(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

// TestCallbackWrapper: injected callback faults surface through store
// iteration error paths.
func TestCallbackWrapper(t *testing.T) {
	st := seededStore(4, 1)
	in := New(Config{Seed: 5, PermanentRate: 1})
	err := st.ForEach(in.Callback(func(e *store.Entity) error { return nil }))
	if err == nil || !strings.Contains(err.Error(), "injected permanent callback") {
		t.Errorf("err = %v", err)
	}
}

// startFaultyServer runs a plain vinci server; faults are injected on
// the client side of the link.
func startFaultyServer(t *testing.T) (addr string, shutdown func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := vinci.NewServer(echoRegistry())
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	return ln.Addr().String(), func() { srv.Close(); <-done }
}

// TestAcceptanceTransportFaults is the ISSUE acceptance scenario for
// the transport: with 20% of frames dropped or delayed, every client
// operation still completes through retries.
func TestAcceptanceTransportFaults(t *testing.T) {
	addr, shutdown := startFaultyServer(t)
	defer shutdown()

	in := New(Config{Seed: 2026, DropRate: 0.10, DelayRate: 0.10, Delay: time.Millisecond})
	c, err := vinci.DialWith(addr, vinci.DialOptions{
		CallTimeout: 500 * time.Millisecond,
		Retry:       vinci.RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond, Jitter: 0.2, Seed: 7},
		Dialer:      in.Dialer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 60; i++ {
		op := fmt.Sprintf("op%d", i)
		resp, err := c.Call(vinci.Request{Service: "echo", Op: op})
		if err != nil {
			t.Fatalf("call %d failed through 20%% drop/delay: %v", i, err)
		}
		if !resp.OK || resp.Fields["op"] != op {
			t.Fatalf("call %d: %+v", i, resp)
		}
	}
	st := in.Stats()
	if st.Drops == 0 || st.Delays == 0 {
		t.Errorf("expected both drops and delays to fire: %v", st)
	}
}

// TestAcceptanceCorruptedFrames: corrupted frames are retried via the
// protocol-integrity classification instead of surfacing as failures.
func TestAcceptanceCorruptedFrames(t *testing.T) {
	addr, shutdown := startFaultyServer(t)
	defer shutdown()

	in := New(Config{Seed: 11, CorruptRate: 0.15})
	// CallTimeout is the total per-call budget across attempts;
	// AttemptTimeout bounds each stalled exchange (a corrupted length
	// prefix can leave the server waiting for bytes that never come) so
	// the budget is spent on retries, not on one dead read.
	c, err := vinci.DialWith(addr, vinci.DialOptions{
		CallTimeout:    2 * time.Second,
		AttemptTimeout: 100 * time.Millisecond,
		Retry:          vinci.RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Millisecond, Seed: 8},
		Dialer:         in.Dialer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 40; i++ {
		resp, err := c.Call(vinci.Request{Service: "echo", Op: "x"})
		if err != nil {
			t.Fatalf("call %d failed through corruption: %v", i, err)
		}
		if !resp.OK {
			t.Fatalf("call %d returned application error for transport fault: %+v", i, resp)
		}
	}
	if in.Stats().Corruptions == 0 {
		t.Error("no corruption injected at 15% over 40+ frames")
	}
}

// TestAcceptanceClusterTransientFaults is the ISSUE acceptance scenario
// for the miner runtime: 10% of entity-miner calls fail transiently,
// and RunEntityMiner still completes with zero net failures.
func TestAcceptanceClusterTransientFaults(t *testing.T) {
	st := seededStore(200, 8)
	in := New(Config{Seed: 13, TransientRate: 0.10})
	c := cluster.NewWithConfig(st, cluster.Config{
		Workers: 4,
		Retry:   cluster.RetryPolicy{MaxAttempts: 6, Backoff: 100 * time.Microsecond},
	})
	m := in.Miner(cluster.MinerFunc{MinerName: "resilient", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		return []store.Annotation{{Type: "seen", Key: e.ID}}, nil
	}})
	stats, err := c.RunEntityMiner(m)
	if err != nil {
		t.Fatalf("run with 10%% transient faults must complete: %v", err)
	}
	if stats.Entities != 200 || stats.Failures != 0 || stats.Annotations != 200 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Retries == 0 {
		t.Error("no retries recorded despite injected transients")
	}
	if in.Stats().Transients == 0 {
		t.Error("injector reports no transients")
	}
	// Every entity carries its annotation.
	count := 0
	st.ForEach(func(e *store.Entity) error {
		if len(e.AnnotationsBy("resilient")) != 1 {
			t.Errorf("entity %s missing annotation", e.ID)
		}
		count++
		return nil
	})
	if count != 200 {
		t.Errorf("visited %d entities", count)
	}
}

// TestAcceptanceBreakerUnderPermanentFaults: when faults are permanent
// the breaker trips at the budget and the trip is visible in Stats.
func TestAcceptanceBreakerUnderPermanentFaults(t *testing.T) {
	st := seededStore(80, 1)
	in := New(Config{Seed: 17, PermanentRate: 1})
	c := cluster.NewWithConfig(st, cluster.Config{
		Workers:     1,
		Retry:       cluster.RetryPolicy{MaxAttempts: 3},
		ErrorBudget: 4,
	})
	m := in.Miner(cluster.MinerFunc{MinerName: "doomed", Fn: func(e *store.Entity) ([]store.Annotation, error) {
		return []store.Annotation{{Type: "never"}}, nil
	}})
	stats, err := c.RunEntityMiner(m)
	if err == nil || !strings.Contains(err.Error(), "breaker tripped") {
		t.Fatalf("err = %v", err)
	}
	if !stats.BreakerTripped || stats.Failures != 4 || stats.Skipped != 76 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Retries != 0 {
		t.Errorf("permanent faults must not be retried: %+v", stats)
	}
}

// TestClusterRunDeterministicUnderSeed: a single-worker run under a
// fixed seed reproduces identical stats, including retry counts.
func TestClusterRunDeterministicUnderSeed(t *testing.T) {
	run := func() cluster.Stats {
		st := seededStore(100, 4)
		in := New(Config{Seed: 21, TransientRate: 0.15, PermanentRate: 0.02})
		c := cluster.NewWithConfig(st, cluster.Config{
			Workers: 1, // sequential: the fault stream maps 1:1 onto entities
			Retry:   cluster.RetryPolicy{MaxAttempts: 3},
		})
		m := in.Miner(cluster.MinerFunc{MinerName: "det", Fn: func(e *store.Entity) ([]store.Annotation, error) {
			return []store.Annotation{{Type: "t"}}, nil
		}})
		stats, _ := c.RunEntityMiner(m)
		stats.Elapsed = 0  // wall clock and the per-deployment trace ID
		stats.TraceID = "" // are the intentionally nondeterministic fields
		return stats
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed, different outcomes:\n  %+v\n  %+v", a, b)
	}
	if a.Retries == 0 {
		t.Error("expected some retries in the deterministic run")
	}
}
