package faults

import (
	"sync"

	"webfountain/internal/vinci"
)

// Gate models node-level failures for in-process cluster chaos. Where
// the Injector faults individual operations probabilistically, a Gate
// fails a whole node deterministically: killed (crashed — every call
// refused until revived) or partitioned (unreachable — same refusal,
// but conceptually the node is still running). In both cases the node
// keeps its store, so a revive models crash-plus-durable-recovery and
// the rejoin path must ship only the writes the node missed.
//
// The gate counts traffic on both sides of the boundary, which is what
// lets the chaos harness assert failover latency: after a kill, the
// number of calls the router still sends at the dead node before
// routing around it is exactly the detection cost, and must stay within
// one probe interval's worth of attempts.
type Gate struct {
	name string

	mu          sync.Mutex
	killed      bool
	partitioned bool
	delivered   uint64 // calls passed through while up
	refused     uint64 // calls refused while down
}

// NewGate builds an open gate for the named node.
func NewGate(name string) *Gate { return &Gate{name: name} }

// Name is the node the gate guards.
func (g *Gate) Name() string { return g.name }

// Kill crashes the node: every call through the gate is refused until
// Revive.
func (g *Gate) Kill() {
	g.mu.Lock()
	g.killed = true
	g.mu.Unlock()
}

// Revive restarts the node (its durable state intact).
func (g *Gate) Revive() {
	g.mu.Lock()
	g.killed = false
	g.mu.Unlock()
}

// Partition cuts the node off the network; Heal reconnects it.
func (g *Gate) Partition() {
	g.mu.Lock()
	g.partitioned = true
	g.mu.Unlock()
}

// Heal ends a partition.
func (g *Gate) Heal() {
	g.mu.Lock()
	g.partitioned = false
	g.mu.Unlock()
}

// Down reports whether calls are currently refused.
func (g *Gate) Down() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.killed || g.partitioned
}

// Counts returns how many calls the gate delivered (node up) and
// refused (node down) so far.
func (g *Gate) Counts() (delivered, refused uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.delivered, g.refused
}

// ResetCounts zeroes the traffic counters — called at a kill boundary
// so the refused count measures detection cost for that kill alone.
func (g *Gate) ResetCounts() {
	g.mu.Lock()
	g.delivered, g.refused = 0, 0
	g.mu.Unlock()
}

// Client wraps a node's vinci client behind the gate.
func (g *Gate) Client(c vinci.Client) vinci.Client { return &gatedClient{g: g, c: c} }

type gatedClient struct {
	g *Gate
	c vinci.Client
}

func (gc *gatedClient) Call(req vinci.Request) (vinci.Response, error) {
	gc.g.mu.Lock()
	down := gc.g.killed || gc.g.partitioned
	if down {
		gc.g.refused++
	} else {
		gc.g.delivered++
	}
	gc.g.mu.Unlock()
	if down {
		// Transient: the node may come back, so retry layers are allowed
		// to try again — against a live replica, if the router is doing
		// its job.
		return vinci.Response{}, &Error{Op: "node:" + gc.g.name, Transient: true}
	}
	return gc.c.Call(req)
}

func (gc *gatedClient) Close() error { return gc.c.Close() }
