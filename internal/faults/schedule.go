package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"webfountain/internal/metrics"
)

// Schedule composes faults across layers into one deterministic chaos
// timeline: a seeded sequence of phases, each activating a fault mix
// (network drops and delays, disk faults, worker stalls) on whatever
// injector-wrapped surfaces the test wired up. The timeline itself is a
// pure function of the seed — NewSchedule(seed, d) always builds the
// same phases — so a failing chaos run names its seed and is re-run
// with the identical storm.
//
// Two layers of determinism compose here: the schedule fixes *when*
// each fault mix is active, and the injector's single seeded PRNG fixes
// *which* operations fault within a mix. A sequential workload replays
// byte-for-byte; a concurrent one replays the same storm shape with
// scheduling-dependent placement (see the package comment).
type Schedule struct {
	// Seed generated this timeline.
	Seed int64
	// Phases run in order, each switching the injector's config.
	Phases []Phase
}

// Phase is one window of the chaos timeline.
type Phase struct {
	// Name labels the archetype for logs and failure reports.
	Name string
	// Duration is how long the phase's fault mix stays active.
	Duration time.Duration
	// Config is the injector fault mix active during the phase.
	Config Config
}

// phase archetypes: each models one production failure pattern. Rates
// are kept below the levels that would starve a retrying workload —
// chaos that nothing survives proves nothing.
var archetypes = []struct {
	name string
	cfg  func(rng *rand.Rand) Config
}{
	{"quiet", func(*rand.Rand) Config { return Config{} }},
	{"net-flaky", func(rng *rand.Rand) Config {
		return Config{
			DropRate:  0.02 + 0.04*rng.Float64(),
			DelayRate: 0.05 + 0.10*rng.Float64(),
			Delay:     time.Duration(1+rng.Intn(3)) * time.Millisecond,
		}
	}},
	{"net-corrupt", func(rng *rand.Rand) Config {
		return Config{
			CorruptRate: 0.02 + 0.04*rng.Float64(),
			DelayRate:   0.05,
			Delay:       time.Millisecond,
		}
	}},
	{"worker-stall", func(rng *rand.Rand) Config {
		return Config{
			DelayRate: 0.20 + 0.20*rng.Float64(),
			Delay:     time.Duration(4+rng.Intn(8)) * time.Millisecond,
		}
	}},
	{"miner-transient", func(rng *rand.Rand) Config {
		return Config{TransientRate: 0.10 + 0.20*rng.Float64()}
	}},
	{"disk-degraded", func(rng *rand.Rand) Config {
		return Config{
			TornWriteRate: 0.05 + 0.10*rng.Float64(),
			SyncFailRate:  0.02 + 0.05*rng.Float64(),
		}
	}},
}

var (
	scheduleTransitions = metrics.Default().Counter("faults.schedule.transitions")
	schedulePhase       = metrics.Default().Gauge("faults.schedule.phase")
)

// NewSchedule builds a deterministic timeline of at least total duration
// from the seed. Phases alternate quiet windows with fault archetypes so
// the workload sees both storms and room to recover.
func NewSchedule(seed int64, total time.Duration) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed}
	var covered time.Duration
	for i := 0; covered < total; i++ {
		var name string
		var cfg Config
		if i%2 == 0 {
			// Even slots are always a fault archetype, odd slots draw
			// freely (and may be quiet): storms never fully saturate the
			// timeline.
			a := archetypes[1+rng.Intn(len(archetypes)-1)]
			name, cfg = a.name, a.cfg(rng)
		} else {
			a := archetypes[rng.Intn(len(archetypes))]
			name, cfg = a.name, a.cfg(rng)
		}
		d := time.Duration(10+rng.Intn(40)) * time.Millisecond
		s.Phases = append(s.Phases, Phase{
			Name:     fmt.Sprintf("%02d-%s", i, name),
			Duration: d,
			Config:   cfg,
		})
		covered += d
	}
	return s
}

// Total is the timeline's summed duration.
func (s *Schedule) Total() time.Duration {
	var d time.Duration
	for _, p := range s.Phases {
		d += p.Duration
	}
	return d
}

// String renders the timeline compactly.
func (s *Schedule) String() string {
	return fmt.Sprintf("schedule(seed=%d, %d phases, %v)", s.Seed, len(s.Phases), s.Total())
}

// Start drives the injector through the timeline in real time: the
// injector's config is swapped at each phase boundary, and reset to
// quiet when the timeline ends or stop is called. stop blocks until the
// driver goroutine has exited; it is safe to call exactly once.
func (s *Schedule) Start(in *Injector) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		timer := time.NewTimer(0)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
		for i, p := range s.Phases {
			in.SetConfig(p.Config)
			schedulePhase.Set(int64(i))
			scheduleTransitions.Inc()
			timer.Reset(p.Duration)
			select {
			case <-done:
				return
			case <-timer.C:
			}
		}
		// Timeline exhausted: go quiet and wait for stop.
		in.SetConfig(Config{})
		<-done
	}()
	return func() {
		close(done)
		wg.Wait()
		in.SetConfig(Config{})
		schedulePhase.Set(-1)
	}
}
