package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"webfountain/internal/metrics"
)

// Schedule composes faults across layers into one deterministic chaos
// timeline: a seeded sequence of phases, each activating a fault mix
// (network drops and delays, disk faults, worker stalls) on whatever
// injector-wrapped surfaces the test wired up. The timeline itself is a
// pure function of the seed — NewSchedule(seed, d) always builds the
// same phases — so a failing chaos run names its seed and is re-run
// with the identical storm.
//
// Two layers of determinism compose here: the schedule fixes *when*
// each fault mix is active, and the injector's single seeded PRNG fixes
// *which* operations fault within a mix. A sequential workload replays
// byte-for-byte; a concurrent one replays the same storm shape with
// scheduling-dependent placement (see the package comment).
type Schedule struct {
	// Seed generated this timeline.
	Seed int64
	// Phases run in order, each switching the injector's config.
	Phases []Phase
}

// Phase is one window of the chaos timeline.
type Phase struct {
	// Name labels the archetype for logs and failure reports.
	Name string
	// Duration is how long the phase's fault mix stays active.
	Duration time.Duration
	// Config is the injector fault mix active during the phase.
	Config Config
}

// phase archetypes: each models one production failure pattern. Rates
// are kept below the levels that would starve a retrying workload —
// chaos that nothing survives proves nothing.
var archetypes = []struct {
	name string
	cfg  func(rng *rand.Rand) Config
}{
	{"quiet", func(*rand.Rand) Config { return Config{} }},
	{"net-flaky", func(rng *rand.Rand) Config {
		return Config{
			DropRate:  0.02 + 0.04*rng.Float64(),
			DelayRate: 0.05 + 0.10*rng.Float64(),
			Delay:     time.Duration(1+rng.Intn(3)) * time.Millisecond,
		}
	}},
	{"net-corrupt", func(rng *rand.Rand) Config {
		return Config{
			CorruptRate: 0.02 + 0.04*rng.Float64(),
			DelayRate:   0.05,
			Delay:       time.Millisecond,
		}
	}},
	{"worker-stall", func(rng *rand.Rand) Config {
		return Config{
			DelayRate: 0.20 + 0.20*rng.Float64(),
			Delay:     time.Duration(4+rng.Intn(8)) * time.Millisecond,
		}
	}},
	{"miner-transient", func(rng *rand.Rand) Config {
		return Config{TransientRate: 0.10 + 0.20*rng.Float64()}
	}},
	{"disk-degraded", func(rng *rand.Rand) Config {
		return Config{
			TornWriteRate: 0.05 + 0.10*rng.Float64(),
			SyncFailRate:  0.02 + 0.05*rng.Float64(),
		}
	}},
}

var (
	scheduleTransitions = metrics.Default().Counter("faults.schedule.transitions")
	schedulePhase       = metrics.Default().Gauge("faults.schedule.phase")
)

// NewSchedule builds a deterministic timeline of at least total duration
// from the seed. Phases alternate quiet windows with fault archetypes so
// the workload sees both storms and room to recover.
func NewSchedule(seed int64, total time.Duration) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed}
	var covered time.Duration
	for i := 0; covered < total; i++ {
		var name string
		var cfg Config
		if i%2 == 0 {
			// Even slots are always a fault archetype, odd slots draw
			// freely (and may be quiet): storms never fully saturate the
			// timeline.
			a := archetypes[1+rng.Intn(len(archetypes)-1)]
			name, cfg = a.name, a.cfg(rng)
		} else {
			a := archetypes[rng.Intn(len(archetypes))]
			name, cfg = a.name, a.cfg(rng)
		}
		d := time.Duration(10+rng.Intn(40)) * time.Millisecond
		s.Phases = append(s.Phases, Phase{
			Name:     fmt.Sprintf("%02d-%s", i, name),
			Duration: d,
			Config:   cfg,
		})
		covered += d
	}
	return s
}

// Total is the timeline's summed duration.
func (s *Schedule) Total() time.Duration {
	var d time.Duration
	for _, p := range s.Phases {
		d += p.Duration
	}
	return d
}

// String renders the timeline compactly.
func (s *Schedule) String() string {
	return fmt.Sprintf("schedule(seed=%d, %d phases, %v)", s.Seed, len(s.Phases), s.Total())
}

// --- cluster chaos plans ---

// Cluster archetype names — the distributed failure patterns the root
// chaos harness drives against a replicated deployment.
const (
	// ArchetypeNodeKill crashes a victim node mid-workload, revives it
	// after a downtime, and rejoins it via catch-up — possibly several
	// rounds.
	ArchetypeNodeKill = "node-kill"
	// ArchetypePartition cuts a victim off the network without crashing
	// it; on heal the node has missed writes and must catch up exactly
	// like a crashed one.
	ArchetypePartition = "network-partition"
	// ArchetypeKillDuringHandoff kills the victim while a shard handoff
	// involving it is in flight: the handoff must abort without bumping
	// the ring epoch, then converge when retried after revival.
	ArchetypeKillDuringHandoff = "kill-during-handoff"
	// ArchetypeQuorumPartition partitions the first-acking replica of
	// quorum-acked (W=2) writes: every write acked before the cut must
	// survive it, because the quorum forced a second copy before the ack.
	ArchetypeQuorumPartition = "partition-during-quorum-write"
	// ArchetypeRouterSplit forks two peered routers onto divergent rings
	// (same epoch, different membership) and requires the fork to resolve
	// deterministically, with no acked write lost on either side.
	ArchetypeRouterSplit = "two-router-split"
	// ArchetypeAntiEntropyRejoin revives a crashed replica WITHOUT the
	// ring-level rejoin: the background anti-entropy sweep alone must
	// converge the divergence — missed writes shipped, acked deletes
	// enforced by tombstone — with the ring epoch untouched.
	ArchetypeAntiEntropyRejoin = "anti-entropy-after-rejoin"
)

// ClusterPlan is the deterministic decision set for one distributed
// chaos run: which node dies, when, for how long, how many times, and
// what background network weather blows while it happens. The plan is a
// pure function of (seed, archetype, node set) — the harness sequences
// the events itself (kill, wait, revive, rejoin), so every timing that
// matters for convergence is test-driven rather than wall-clock-raced,
// and two runs of one seed make identical decisions.
type ClusterPlan struct {
	// Seed and Archetype generated this plan.
	Seed      int64
	Archetype string
	// Victim is the node the archetype targets.
	Victim string
	// WarmWrites is how many acknowledged writes precede the first
	// failure — the state the victim must prove it can recover.
	WarmWrites int
	// Downtime is how long the victim stays down each round.
	Downtime time.Duration
	// Rounds is how many kill/revive (or partition/heal) cycles run.
	Rounds int
	// Net is the background network fault mix active during the storm
	// (zero for a clean-network run), applied to an Injector wrapped
	// around the inter-node transports.
	Net Config
}

// NewClusterPlan draws a plan for the archetype over the node set.
func NewClusterPlan(seed int64, archetype string, nodes []string) ClusterPlan {
	// Mix the archetype name into the seed so the three archetypes of one
	// chaos seed make independent choices.
	mixed := seed
	for i := 0; i < len(archetype); i++ {
		mixed = mixed*131 + int64(archetype[i])
	}
	rng := rand.New(rand.NewSource(mixed))
	p := ClusterPlan{
		Seed:       seed,
		Archetype:  archetype,
		Victim:     nodes[rng.Intn(len(nodes))],
		WarmWrites: 20 + rng.Intn(20),
		Downtime:   time.Duration(20+rng.Intn(30)) * time.Millisecond,
		Rounds:     1,
	}
	if archetype == ArchetypeNodeKill {
		p.Rounds = 1 + rng.Intn(2)
	}
	if rng.Intn(2) == 0 {
		// Half of all plans run under flaky-network weather so failover
		// and catch-up are exercised against drops and stalls, not just a
		// clean victim crash.
		p.Net = Config{
			DropRate:  0.01 + 0.02*rng.Float64(),
			DelayRate: 0.05 + 0.05*rng.Float64(),
			Delay:     time.Duration(1+rng.Intn(2)) * time.Millisecond,
		}
	}
	return p
}

// String renders the plan for the invariant log.
func (p ClusterPlan) String() string {
	return fmt.Sprintf("plan(seed=%d, %s, victim=%s, warm=%d, down=%v, rounds=%d, net-drop=%.3f)",
		p.Seed, p.Archetype, p.Victim, p.WarmWrites, p.Downtime, p.Rounds, p.Net.DropRate)
}

// Start drives the injector through the timeline in real time: the
// injector's config is swapped at each phase boundary, and reset to
// quiet when the timeline ends or stop is called. stop blocks until the
// driver goroutine has exited; it is safe to call exactly once.
func (s *Schedule) Start(in *Injector) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		timer := time.NewTimer(0)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
		for i, p := range s.Phases {
			in.SetConfig(p.Config)
			schedulePhase.Set(int64(i))
			scheduleTransitions.Inc()
			timer.Reset(p.Duration)
			select {
			case <-done:
				return
			case <-timer.C:
			}
		}
		// Timeline exhausted: go quiet and wait for stop.
		in.SetConfig(Config{})
		<-done
	}()
	return func() {
		close(done)
		wg.Wait()
		in.SetConfig(Config{})
		schedulePhase.Set(-1)
	}
}
