// Package faults is a deterministic, seedable fault injector for
// exercising the platform's failure paths. The paper's miner ran on a
// 500+ node cluster where node, link and miner failures were routine;
// this package makes every such failure mode reproducible in tests by
// deriving all fault decisions from one seeded PRNG.
//
// An Injector wraps the three surfaces where production failures enter
// the system:
//
//   - vinci.Client — calls fail with transient or permanent errors, or
//     are delayed (Injector.Client);
//   - net.Conn — frames are dropped (connection killed), delayed, or
//     corrupted in transit (Injector.Conn, Injector.Dialer);
//   - miner and store callbacks — per-entity processing fails with
//     transient or permanent errors (Injector.Miner, Injector.Callback).
//
// Decisions are drawn from a single mutex-guarded PRNG, so a sequential
// workload replays the exact fault sequence under a fixed seed; a
// concurrent workload replays the same fault *mix* (counts converge)
// with scheduling-dependent placement.
package faults

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"webfountain/internal/store"
	"webfountain/internal/vinci"
)

// Config selects fault rates; all rates are probabilities in [0, 1] and
// independent (checked in the order drop, delay, corrupt, transient,
// permanent).
type Config struct {
	// Seed fixes the fault sequence; the zero seed is used as-is so the
	// default config is still deterministic.
	Seed int64
	// DropRate kills the connection (conn faults) or fails the call
	// with a transient error (call/miner faults) instead of delivering.
	DropRate float64
	// DelayRate stalls the operation for Delay before delivering.
	DelayRate float64
	// Delay is the injected stall (default 5ms when DelayRate > 0).
	Delay time.Duration
	// CorruptRate flips one byte of a frame in transit (conn faults).
	CorruptRate float64
	// TransientRate fails the operation with an error marked
	// Temporary() == true — a retry is expected to succeed.
	TransientRate float64
	// PermanentRate fails the operation with a non-temporary error.
	PermanentRate float64

	// Disk-fault rates, drawn by the Writer/File wrappers (see disk.go).

	// TornWriteRate persists only a prefix of a Write and fails it — the
	// on-disk effect of a crash mid-append.
	TornWriteRate float64
	// TornWriteBytes caps the persisted prefix of a torn write (0: any
	// prefix strictly shorter than the buffer).
	TornWriteBytes int
	// ShortReadRate makes a Read return fewer bytes than requested with
	// io.ErrUnexpectedEOF — a truncated or failing device.
	ShortReadRate float64
	// BitFlipRate flips one bit of the data moved by a Read or Write —
	// silent media corruption.
	BitFlipRate float64
	// SyncFailRate fails a Sync call: the data may not be durable.
	SyncFailRate float64
}

// Stats counts injected faults.
type Stats struct {
	Drops       int
	Delays      int
	Corruptions int
	Transients  int
	Permanents  int

	// Disk-fault counters (Writer/File wrappers).
	TornWrites   int
	ShortReads   int
	BitFlips     int
	SyncFailures int
}

// Total is the number of faults injected so far.
func (s Stats) Total() int {
	return s.Drops + s.Delays + s.Corruptions + s.Transients + s.Permanents +
		s.TornWrites + s.ShortReads + s.BitFlips + s.SyncFailures
}

// String renders the stats in one line.
func (s Stats) String() string {
	out := fmt.Sprintf("faults: %d drops, %d delays, %d corruptions, %d transient, %d permanent",
		s.Drops, s.Delays, s.Corruptions, s.Transients, s.Permanents)
	if disk := s.TornWrites + s.ShortReads + s.BitFlips + s.SyncFailures; disk > 0 {
		out += fmt.Sprintf("; disk: %d torn writes, %d short reads, %d bit flips, %d sync failures",
			s.TornWrites, s.ShortReads, s.BitFlips, s.SyncFailures)
	}
	return out
}

// Error is an injected failure.
type Error struct {
	// Op names the faulted surface ("call", "conn", "miner", "callback").
	Op string
	// Transient reports whether a retry is expected to succeed.
	Transient bool
}

// Error implements error.
func (e *Error) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("faults: injected %s %s failure", kind, e.Op)
}

// Temporary lets retry layers classify the failure.
func (e *Error) Temporary() bool { return e.Transient }

// Injector draws fault decisions from one seeded PRNG.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// New returns an injector for the config.
func New(cfg Config) *Injector {
	if cfg.Delay <= 0 {
		cfg.Delay = 5 * time.Millisecond
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Config returns a snapshot of the injector's current fault mix.
func (in *Injector) Config() Config {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cfg
}

// SetConfig swaps the injector's fault mix in place. The PRNG stream and
// the stats keep running — a chaos schedule moving through phases draws
// from one deterministic decision sequence, it only changes the rates
// each draw is tested against. The new config's Seed field is ignored.
func (in *Injector) SetConfig(cfg Config) {
	if cfg.Delay <= 0 {
		cfg.Delay = 5 * time.Millisecond
	}
	in.mu.Lock()
	in.cfg = cfg
	in.mu.Unlock()
}

// delay reads the configured stall under the lock (the config may be
// swapped concurrently by a running schedule).
func (in *Injector) delay() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cfg.Delay
}

// decision is one draw from the PRNG.
type decision int

const (
	deliver decision = iota
	drop
	delay
	corrupt
	transient
	permanent
)

// decide draws the next fault decision; conn selects the conn-level
// fault set (drop/delay/corrupt), otherwise the call-level set
// (drop/delay/transient/permanent).
func (in *Injector) decide(conn bool) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.rng.Float64()
	cum := in.cfg.DropRate
	if r < cum {
		in.stats.Drops++
		return drop
	}
	cum += in.cfg.DelayRate
	if r < cum {
		in.stats.Delays++
		return delay
	}
	if conn {
		cum += in.cfg.CorruptRate
		if r < cum {
			in.stats.Corruptions++
			return corrupt
		}
		return deliver
	}
	cum += in.cfg.TransientRate
	if r < cum {
		in.stats.Transients++
		return transient
	}
	cum += in.cfg.PermanentRate
	if r < cum {
		in.stats.Permanents++
		return permanent
	}
	return deliver
}

// --- vinci.Client wrapper ---

type faultyClient struct {
	in *Injector
	c  vinci.Client
}

// Client wraps a vinci client so each Call may fail or stall before it
// reaches the transport.
func (in *Injector) Client(c vinci.Client) vinci.Client { return &faultyClient{in: in, c: c} }

func (fc *faultyClient) Call(req vinci.Request) (vinci.Response, error) {
	switch fc.in.decide(false) {
	case drop, transient:
		return vinci.Response{}, &Error{Op: "call", Transient: true}
	case permanent:
		return vinci.Response{}, &Error{Op: "call", Transient: false}
	case delay:
		time.Sleep(fc.in.delay())
	}
	return fc.c.Call(req)
}

func (fc *faultyClient) Close() error { return fc.c.Close() }

// --- net.Conn wrapper ---

type faultyConn struct {
	net.Conn
	in *Injector
}

// Conn wraps a connection so each Write may drop the link, stall, or
// corrupt one byte of the outgoing frame. Reads pass through: faulting
// the sending side of each peer covers both directions without double-
// charging a frame.
func (in *Injector) Conn(c net.Conn) net.Conn { return &faultyConn{Conn: c, in: in} }

func (fc *faultyConn) Write(p []byte) (int, error) {
	switch fc.in.decide(true) {
	case drop:
		fc.Conn.Close()
		return 0, &Error{Op: "conn", Transient: true}
	case delay:
		time.Sleep(fc.in.delay())
	case corrupt:
		corrupted := make([]byte, len(p))
		copy(corrupted, p)
		if len(corrupted) > 0 {
			fc.in.mu.Lock()
			i := fc.in.rng.Intn(len(corrupted))
			fc.in.mu.Unlock()
			corrupted[i] ^= 0xFF
		}
		return fc.Conn.Write(corrupted)
	}
	return fc.Conn.Write(p)
}

// Dialer returns a vinci DialOptions.Dialer that wraps every new
// connection with this injector, so faults persist across reconnects.
func (in *Injector) Dialer() func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		return in.Conn(conn), nil
	}
}

// --- miner and store-callback wrappers ---

// MinerFault returns the error to inject into the current entity-miner
// call, or nil to let it proceed (delays are applied inline). Exposed
// so any per-entity code path can share the injector's decision stream.
func (in *Injector) MinerFault() error {
	switch in.decide(false) {
	case drop, transient:
		return &Error{Op: "miner", Transient: true}
	case permanent:
		return &Error{Op: "miner", Transient: false}
	case delay:
		time.Sleep(in.delay())
	}
	return nil
}

// EntityProcessor matches cluster.EntityMiner without importing it
// (faults is below the cluster runtime in the dependency order).
type EntityProcessor interface {
	Name() string
	Process(e *store.Entity) ([]store.Annotation, error)
}

type faultyMiner struct {
	in *Injector
	m  EntityProcessor
}

// Miner wraps an entity miner so each Process call may fail with a
// transient or permanent injected error before the real miner runs.
func (in *Injector) Miner(m EntityProcessor) EntityProcessor { return &faultyMiner{in: in, m: m} }

func (fm *faultyMiner) Name() string { return fm.m.Name() }

func (fm *faultyMiner) Process(e *store.Entity) ([]store.Annotation, error) {
	if err := fm.in.MinerFault(); err != nil {
		return nil, err
	}
	return fm.m.Process(e)
}

// Callback wraps a store iteration callback so each invocation may fail
// with an injected error, exercising ForEach/ForEachInShard error paths.
func (in *Injector) Callback(fn func(*store.Entity) error) func(*store.Entity) error {
	return func(e *store.Entity) error {
		switch in.decide(false) {
		case drop, transient:
			return &Error{Op: "callback", Transient: true}
		case permanent:
			return &Error{Op: "callback", Transient: false}
		case delay:
			time.Sleep(in.delay())
		}
		return fn(e)
	}
}
