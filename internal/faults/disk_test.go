package faults

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// memFile is an in-memory File: Writes append, Reads drain, Sync counts.
type memFile struct {
	buf    bytes.Buffer
	syncs  int
	closed bool
}

func (m *memFile) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memFile) Read(p []byte) (int, error)  { return m.buf.Read(p) }
func (m *memFile) Sync() error                 { m.syncs++; return nil }
func (m *memFile) Close() error                { m.closed = true; return nil }

func TestFileTornWrite(t *testing.T) {
	mem := &memFile{}
	f := New(Config{TornWriteRate: 1}).File(mem)
	payload := []byte("0123456789abcdef")
	n, err := f.Write(payload)
	var ferr *Error
	if !errors.As(err, &ferr) || ferr.Op != "disk-write" {
		t.Fatalf("torn write err = %v, want injected disk-write", err)
	}
	if ferr.Temporary() {
		t.Error("torn write reported as transient")
	}
	if n >= len(payload) || n < 0 {
		t.Fatalf("torn write persisted n = %d, want a strict prefix of %d", n, len(payload))
	}
	// Exactly the reported prefix reaches the underlying file.
	if got := mem.buf.Bytes(); !bytes.Equal(got, payload[:n]) {
		t.Errorf("underlying file has %q, want the %d-byte prefix %q", got, n, payload[:n])
	}
}

func TestFileTornWriteBytesCap(t *testing.T) {
	in := New(Config{TornWriteRate: 1, TornWriteBytes: 3})
	for i := 0; i < 50; i++ {
		mem := &memFile{}
		n, err := in.File(mem).Write([]byte("a long buffer that must be cut short"))
		if err == nil {
			t.Fatal("torn write did not fail")
		}
		if n > 3 {
			t.Fatalf("torn write persisted %d bytes, cap is 3", n)
		}
		if mem.buf.Len() != n {
			t.Fatalf("underlying wrote %d bytes, reported %d", mem.buf.Len(), n)
		}
	}
}

func TestFileBitFlipOnWrite(t *testing.T) {
	mem := &memFile{}
	f := New(Config{BitFlipRate: 1}).File(mem)
	payload := []byte("pristine payload bytes")
	n, err := f.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("bit-flip write = %d, %v (silent corruption must still succeed)", n, err)
	}
	diff := 0
	for i, b := range mem.buf.Bytes() {
		if x := b ^ payload[i]; x != 0 {
			diff++
			if x&(x-1) != 0 {
				t.Errorf("byte %d differs by more than one bit: %08b", i, x)
			}
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes corrupted, want exactly 1", diff)
	}
	// The caller's buffer must not be mutated.
	if !bytes.Equal(payload, []byte("pristine payload bytes")) {
		t.Error("caller's buffer mutated")
	}
}

func TestFileShortRead(t *testing.T) {
	mem := &memFile{}
	mem.buf.WriteString("plenty of bytes to read from this buffer")
	f := New(Config{ShortReadRate: 1}).File(mem)
	p := make([]byte, 16)
	n, err := f.Read(p)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short read err = %v, want io.ErrUnexpectedEOF", err)
	}
	if n <= 0 || n >= len(p) {
		t.Errorf("short read n = %d, want 0 < n < %d", n, len(p))
	}
}

func TestFileSyncFailure(t *testing.T) {
	mem := &memFile{}
	f := New(Config{SyncFailRate: 1}).File(mem)
	err := f.Sync()
	var ferr *Error
	if !errors.As(err, &ferr) || ferr.Op != "disk-sync" {
		t.Fatalf("sync err = %v, want injected disk-sync", err)
	}
	if mem.syncs != 0 {
		t.Error("failed sync reached the underlying file")
	}
	if err := f.Close(); err != nil || !mem.closed {
		t.Errorf("close passthrough: err=%v closed=%v", err, mem.closed)
	}
}

func TestFilePassthroughWithoutRates(t *testing.T) {
	mem := &memFile{}
	f := New(Config{}).File(mem)
	if n, err := f.Write([]byte("clean")); n != 5 || err != nil {
		t.Fatalf("write = %d, %v", n, err)
	}
	p := make([]byte, 5)
	if n, err := f.Read(p); n != 5 || err != nil || string(p) != "clean" {
		t.Fatalf("read = %d, %v, %q", n, err, p)
	}
	if err := f.Sync(); err != nil || mem.syncs != 1 {
		t.Fatalf("sync = %v, syncs = %d", err, mem.syncs)
	}
}

// TestFileDeterministicReplay: two injectors with the same seed place
// identical faults over an identical sequential workload.
func TestFileDeterministicReplay(t *testing.T) {
	run := func() ([]byte, Stats, []string) {
		in := New(Config{Seed: 42, TornWriteRate: 0.2, BitFlipRate: 0.2, SyncFailRate: 0.2})
		mem := &memFile{}
		f := in.File(mem)
		var errs []string
		for i := 0; i < 40; i++ {
			if _, err := f.Write([]byte("record payload with enough bytes")); err != nil {
				errs = append(errs, err.Error())
			}
			if err := f.Sync(); err != nil {
				errs = append(errs, err.Error())
			}
		}
		return mem.buf.Bytes(), in.Stats(), errs
	}
	bytesA, statsA, errsA := run()
	bytesB, statsB, errsB := run()
	if !bytes.Equal(bytesA, bytesB) {
		t.Error("same seed produced different on-disk bytes")
	}
	if statsA != statsB {
		t.Errorf("same seed produced different stats: %v vs %v", statsA, statsB)
	}
	if len(errsA) != len(errsB) {
		t.Errorf("same seed produced different error sequences: %d vs %d", len(errsA), len(errsB))
	}
	if statsA.TornWrites == 0 || statsA.BitFlips == 0 || statsA.SyncFailures == 0 {
		t.Errorf("expected all fault kinds at these rates over 40 ops: %v", statsA)
	}
}

func TestDiskStatsCounting(t *testing.T) {
	in := New(Config{ShortReadRate: 1})
	mem := &memFile{}
	mem.buf.WriteString("some data")
	f := in.File(mem)
	p := make([]byte, 4)
	f.Read(p)
	f.Read(p)
	st := in.Stats()
	if st.ShortReads != 2 {
		t.Errorf("ShortReads = %d, want 2", st.ShortReads)
	}
	if st.Total() != 2 {
		t.Errorf("Total() = %d, want 2", st.Total())
	}
	if s := st.String(); !bytes.Contains([]byte(s), []byte("2 short reads")) {
		t.Errorf("String() missing disk section: %q", s)
	}
}

// closeWriter adapts a bytes.Buffer to io.WriteCloser for the Writer wrapper.
type closeWriter struct {
	bytes.Buffer
	closed bool
}

func (c *closeWriter) Close() error { c.closed = true; return nil }

func TestWriterWrapper(t *testing.T) {
	sink := &closeWriter{}
	w := New(Config{TornWriteRate: 1}).Writer(sink)
	n, err := w.Write([]byte("payload going through Writer"))
	if err == nil {
		t.Fatal("torn write did not fail through Writer")
	}
	if sink.Len() != n {
		t.Errorf("sink has %d bytes, reported %d", sink.Len(), n)
	}
	if err := w.Close(); err != nil || !sink.closed {
		t.Errorf("close passthrough: err=%v closed=%v", err, sink.closed)
	}

	// Clean config: Writer is a transparent passthrough.
	sink2 := &closeWriter{}
	w2 := New(Config{}).Writer(sink2)
	if n, err := w2.Write([]byte("clean")); n != 5 || err != nil || sink2.String() != "clean" {
		t.Fatalf("clean write = %d, %v, %q", n, err, sink2.String())
	}
}
