package faults

import (
	"io"
)

// Disk-fault injection: deterministic wrappers over the file surfaces the
// durable store writes through, mirroring the Conn/Client wrappers. Four
// fault shapes cover how real disks lose data:
//
//   - torn write  — a Write persists only a prefix and fails: the on-disk
//     image a crash mid-append leaves behind;
//   - short read  — a Read returns fewer bytes than available with
//     io.ErrUnexpectedEOF;
//   - bit flip    — one bit of the moved data is flipped silently;
//   - sync fail   — Sync errors, so acknowledged data may not be durable.
//
// All decisions come from the injector's single seeded PRNG, so a
// sequential writer (the store's WAL appends are serialized) replays the
// exact same fault placement under a fixed seed — which is what lets a
// crash-recovery scenario be re-run byte-for-byte.

// Disk-fault decisions, disjoint from the transport decision set.
const (
	tornWrite decision = iota + 100
	shortRead
	bitFlip
	syncFail
)

// diskOp selects which fault set a disk operation draws from.
type diskOp int

const (
	diskWrite diskOp = iota
	diskRead
	diskSync
)

// decideDisk draws the next disk fault decision for one operation.
func (in *Injector) decideDisk(op diskOp) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.rng.Float64()
	switch op {
	case diskWrite:
		cum := in.cfg.TornWriteRate
		if r < cum {
			in.stats.TornWrites++
			return tornWrite
		}
		cum += in.cfg.BitFlipRate
		if r < cum {
			in.stats.BitFlips++
			return bitFlip
		}
	case diskRead:
		cum := in.cfg.ShortReadRate
		if r < cum {
			in.stats.ShortReads++
			return shortRead
		}
		cum += in.cfg.BitFlipRate
		if r < cum {
			in.stats.BitFlips++
			return bitFlip
		}
	case diskSync:
		if r < in.cfg.SyncFailRate {
			in.stats.SyncFailures++
			return syncFail
		}
	}
	return deliver
}

// tornWriteBytes reads the torn-write cap under the lock (the config
// may be swapped concurrently by a running schedule).
func (in *Injector) tornWriteBytes() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cfg.TornWriteBytes
}

// intn draws a bounded int from the injector's PRNG (n must be > 0).
func (in *Injector) intn(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n)
}

// File is the durable-storage surface the injector wraps: the subset of
// *os.File the store's WAL and snapshot paths use. It structurally
// satisfies store.WALFile, so an injected file drops straight into
// store.Options.WrapWAL.
type File interface {
	io.Reader
	io.Writer
	Sync() error
	Close() error
}

type faultyFile struct {
	in *Injector
	f  File
}

// File wraps a file so Writes may be torn or bit-flipped, Reads may come
// up short or bit-flipped, and Syncs may fail.
func (in *Injector) File(f File) File { return &faultyFile{in: in, f: f} }

func (ff *faultyFile) Write(p []byte) (int, error) {
	switch ff.in.decideDisk(diskWrite) {
	case tornWrite:
		n := 0
		if len(p) > 0 {
			n = ff.in.intn(len(p))
			if max := ff.in.tornWriteBytes(); max > 0 && n > max {
				n = max
			}
		}
		if n > 0 {
			if wn, err := ff.f.Write(p[:n]); err != nil {
				return wn, err
			}
		}
		return n, &Error{Op: "disk-write", Transient: false}
	case bitFlip:
		flipped := make([]byte, len(p))
		copy(flipped, p)
		if len(flipped) > 0 {
			flipped[ff.in.intn(len(flipped))] ^= 1 << uint(ff.in.intn(8))
		}
		return ff.f.Write(flipped)
	}
	return ff.f.Write(p)
}

func (ff *faultyFile) Read(p []byte) (int, error) {
	switch ff.in.decideDisk(diskRead) {
	case shortRead:
		if len(p) > 1 {
			p = p[:1+ff.in.intn(len(p)-1)]
		}
		n, err := ff.f.Read(p)
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return n, err
	case bitFlip:
		n, err := ff.f.Read(p)
		if n > 0 {
			p[ff.in.intn(n)] ^= 1 << uint(ff.in.intn(8))
		}
		return n, err
	}
	return ff.f.Read(p)
}

func (ff *faultyFile) Sync() error {
	if ff.in.decideDisk(diskSync) == syncFail {
		return &Error{Op: "disk-sync", Transient: false}
	}
	return ff.f.Sync()
}

func (ff *faultyFile) Close() error { return ff.f.Close() }

type faultyWriter struct {
	in *Injector
	w  io.WriteCloser
}

// Writer wraps a write-only sink with the write-side disk faults (torn
// writes, bit flips) for code paths that never read back or sync.
func (in *Injector) Writer(w io.WriteCloser) io.WriteCloser {
	return &faultyWriter{in: in, w: w}
}

func (fw *faultyWriter) Write(p []byte) (int, error) {
	ff := faultyFile{in: fw.in, f: writerFile{fw.w}}
	return ff.Write(p)
}

func (fw *faultyWriter) Close() error { return fw.w.Close() }

// writerFile adapts an io.WriteCloser to the File surface.
type writerFile struct{ io.WriteCloser }

func (writerFile) Read([]byte) (int, error) { return 0, io.EOF }
func (writerFile) Sync() error              { return nil }
