package faults

import (
	"reflect"
	"testing"
	"time"
)

// TestScheduleDeterministicPerSeed: the timeline is a pure function of
// the seed.
func TestScheduleDeterministicPerSeed(t *testing.T) {
	for _, seed := range []int64{1, 42, 7777} {
		a := NewSchedule(seed, 300*time.Millisecond)
		b := NewSchedule(seed, 300*time.Millisecond)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %d: schedules differ:\n%+v\n%+v", seed, a.Phases, b.Phases)
		}
		if a.Total() < 300*time.Millisecond {
			t.Errorf("seed %d: total %v under requested 300ms", seed, a.Total())
		}
	}
	if reflect.DeepEqual(NewSchedule(1, 300*time.Millisecond), NewSchedule(2, 300*time.Millisecond)) {
		t.Error("different seeds produced identical timelines")
	}
}

// TestScheduleAlternatesStormsWithRecovery: even slots are always fault
// archetypes, so a timeline is never all-quiet, and rates stay inside
// the survivable band.
func TestScheduleAlternatesStormsWithRecovery(t *testing.T) {
	s := NewSchedule(99, 500*time.Millisecond)
	stormy := 0
	for i, p := range s.Phases {
		zero := p.Config == Config{}
		if i%2 == 0 && zero {
			t.Errorf("phase %d (%s): even slot is quiet", i, p.Name)
		}
		if !zero {
			stormy++
		}
		for _, r := range []float64{p.Config.DropRate, p.Config.DelayRate, p.Config.CorruptRate,
			p.Config.TransientRate, p.Config.PermanentRate, p.Config.TornWriteRate, p.Config.SyncFailRate} {
			if r < 0 || r > 0.5 {
				t.Errorf("phase %d (%s): rate %v outside survivable band", i, p.Name, r)
			}
		}
		if p.Duration <= 0 {
			t.Errorf("phase %d: non-positive duration", i)
		}
	}
	if stormy == 0 {
		t.Error("timeline has no fault phases at all")
	}
}

// TestScheduleStartSwapsInjectorConfig: running the timeline switches
// the injector's live config at phase boundaries and stop restores
// quiet.
func TestScheduleStartSwapsInjectorConfig(t *testing.T) {
	s := &Schedule{Seed: 1, Phases: []Phase{
		{Name: "storm", Duration: 40 * time.Millisecond, Config: Config{DropRate: 0.5}},
		{Name: "calm", Duration: time.Hour, Config: Config{DelayRate: 0.25}},
	}}
	in := New(Config{})
	stop := s.Start(in)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && in.Config().DropRate != 0.5 {
		time.Sleep(time.Millisecond)
	}
	if got := in.Config().DropRate; got != 0.5 {
		t.Fatalf("first phase config not applied: DropRate = %v", got)
	}
	for time.Now().Before(deadline) && in.Config().DelayRate != 0.25 {
		time.Sleep(time.Millisecond)
	}
	if got := in.Config().DelayRate; got != 0.25 {
		t.Fatalf("second phase config not applied: DelayRate = %v", got)
	}
	stop()
	cfg := in.Config()
	if cfg.DropRate != 0 || cfg.DelayRate != 0 {
		t.Errorf("stop did not restore the quiet config: %+v", cfg)
	}
}

// TestScheduleStopMidPhase: stop returns promptly even when the current
// phase nominally lasts an hour.
func TestScheduleStopMidPhase(t *testing.T) {
	s := &Schedule{Seed: 1, Phases: []Phase{{Name: "long", Duration: time.Hour, Config: Config{DropRate: 0.1}}}}
	in := New(Config{})
	stop := s.Start(in)
	start := time.Now()
	stop()
	if e := time.Since(start); e > time.Second {
		t.Errorf("stop took %v, want immediate", e)
	}
}
