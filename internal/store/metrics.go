package store

import "webfountain/internal/metrics"

// Package-level metric handles, resolved once so the WAL hot path pays
// only atomic increments. The degraded gauge is authoritative for the
// whole process: any shard store flipping read-only raises it.
var (
	walAppends      = metrics.Default().Counter("store.wal.appends")
	walSyncs        = metrics.Default().Counter("store.wal.syncs")
	walFsyncNs      = metrics.Default().Histogram("store.wal.fsync.ns")
	walBatchRecords = metrics.Default().SizeHistogram("store.wal.batch.records")
	compactions     = metrics.Default().Counter("store.compactions")
	degradedGauge   = metrics.Default().Gauge("store.degraded")
)

// degrade flips the store into read-only mode (caller holds d.mu) and
// raises the process-wide degraded gauge. Idempotent per store: only the
// first degradation counts.
func (d *durability) degrade(reason string) {
	if d.degraded == "" {
		degradedGauge.Add(1)
	}
	d.degraded = reason
}
