package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

func TestWALRecordRoundTrip(t *testing.T) {
	cases := []struct {
		op   byte
		body string
	}{
		{opPut, "<entity id=\"a\"><text>hello</text></entity>"},
		{opDelete, "doc-000042"},
		{opAnnotate, "<annotate id=\"a\"></annotate>"},
		{opPut, ""},
		{opDelete, "\x00\xff binary \xfe"},
	}
	for _, c := range cases {
		rec := encodeWALRecord(c.op, []byte(c.body))
		op, body, n, err := decodeWALRecord(rec)
		if err != nil {
			t.Fatalf("decode(%q): %v", c.body, err)
		}
		if op != c.op || string(body) != c.body || n != len(rec) {
			t.Errorf("round trip: op=%d body=%q n=%d, want op=%d body=%q n=%d",
				op, body, n, c.op, c.body, len(rec))
		}
	}
}

func TestWALRecordTornTail(t *testing.T) {
	rec := encodeWALRecord(opPut, []byte("some payload body"))
	// Every strict prefix of a record is a torn tail.
	for l := 0; l < len(rec); l++ {
		_, _, n, err := decodeWALRecord(rec[:l])
		if !errors.Is(err, errTornRecord) {
			t.Fatalf("prefix %d: err = %v, want torn", l, err)
		}
		if n != l {
			t.Fatalf("prefix %d: n = %d, want %d (whole remainder)", l, n, l)
		}
	}
}

func TestWALRecordCorrupt(t *testing.T) {
	rec := encodeWALRecord(opAnnotate, []byte("payload to rot"))
	// Flip one bit in every payload and payload-checksum byte: each must
	// surface as a corrupt (not torn) record spanning the full frame.
	for i := 8; i < len(rec); i++ {
		bad := append([]byte(nil), rec...)
		bad[i] ^= 0x10
		_, _, n, err := decodeWALRecord(bad)
		if !errors.Is(err, errCorruptRecord) {
			t.Fatalf("flip at %d: err = %v, want corrupt", i, err)
		}
		if n != len(rec) {
			t.Fatalf("flip at %d: n = %d, want %d", i, n, len(rec))
		}
	}
}

func TestWALRecordBadHeader(t *testing.T) {
	rec := encodeWALRecord(opPut, []byte("framed payload"))
	// Flip one bit in every length and length-checksum byte: the frame
	// cannot be trusted, so each must surface as a bad header spanning
	// all remaining bytes — never as a torn tail, which recovery would
	// silently truncate.
	for i := 0; i < 8; i++ {
		bad := append([]byte(nil), rec...)
		bad[i] ^= 0x10
		_, _, n, err := decodeWALRecord(bad)
		if !errors.Is(err, errBadHeader) {
			t.Fatalf("flip at %d: err = %v, want bad header", i, err)
		}
		if n != len(bad) {
			t.Fatalf("flip at %d: n = %d, want %d (whole remainder)", i, n, len(bad))
		}
	}
}

func TestWALRecordImplausibleLength(t *testing.T) {
	// A checksum-valid header carrying a length the writer never emits is
	// framing corruption, not a torn tail.
	reframe := func(rec []byte, ln uint32) []byte {
		bad := append([]byte(nil), rec...)
		binary.LittleEndian.PutUint32(bad, ln)
		binary.LittleEndian.PutUint32(bad[4:], crc32.ChecksumIEEE(bad[:4]))
		return bad
	}
	rec := encodeWALRecord(opPut, []byte("x"))
	if _, _, _, err := decodeWALRecord(reframe(rec, maxWALRecord+1)); !errors.Is(err, errBadHeader) {
		t.Errorf("oversized length: err = %v, want bad header", err)
	}
	if _, _, _, err := decodeWALRecord(reframe(rec, 0)); !errors.Is(err, errBadHeader) {
		t.Errorf("zero length: err = %v, want bad header", err)
	}
}

func TestWALRecordSequence(t *testing.T) {
	var log []byte
	recs := []struct {
		op   byte
		body string
	}{
		{opPut, "<entity id=\"a\"></entity>"},
		{opAnnotate, "<annotate id=\"a\"></annotate>"},
		{opDelete, "a"},
	}
	for _, r := range recs {
		log = append(log, encodeWALRecord(r.op, []byte(r.body))...)
	}
	off, i := 0, 0
	for off < len(log) {
		op, body, n, err := decodeWALRecord(log[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if op != recs[i].op || string(body) != recs[i].body {
			t.Fatalf("record %d: op=%d body=%q", i, op, body)
		}
		off += n
		i++
	}
	if i != len(recs) {
		t.Fatalf("decoded %d records, want %d", i, len(recs))
	}
}

// FuzzWALRecord asserts the codec never panics on arbitrary bytes, and
// that anything it accepts re-encodes to the exact bytes it consumed.
func FuzzWALRecord(f *testing.F) {
	f.Add(encodeWALRecord(opPut, []byte("<entity id=\"a\"><text>t</text></entity>")))
	f.Add(encodeWALRecord(opDelete, []byte("doc-000001")))
	f.Add(encodeWALRecord(opAnnotate, []byte("<annotate id=\"x\"></annotate>")))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		op, body, n, err := decodeWALRecord(data)
		if n < 0 || n > len(data) {
			t.Fatalf("n = %d out of range [0,%d]", n, len(data))
		}
		if err != nil {
			if !errors.Is(err, errTornRecord) && !errors.Is(err, errCorruptRecord) && !errors.Is(err, errBadHeader) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if !bytes.Equal(encodeWALRecord(op, body), data[:n]) {
			t.Fatalf("accepted record does not re-encode to its input")
		}
	})
}
