package store

import (
	"encoding/xml"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// scriptOp is one mutation in a scripted workload, applied identically to
// a durable store (logging to disk) and an in-memory reference.
type scriptOp struct {
	kind string // "put", "del", "ann"
	e    *Entity
	id   string
	anns []Annotation
}

// crashScript is the workload every recovery test replays: puts,
// overwrites, deletes and annotations, with short bodies so the byte-
// level truncation matrix stays fast.
func crashScript() []scriptOp {
	ann := func(key, val string, sent int) Annotation {
		return Annotation{Miner: "sentiment", Type: "polarity", Key: key, Value: val, Sentence: sent, Start: 0, End: 2}
	}
	return []scriptOp{
		{kind: "put", e: &Entity{ID: "e1", Source: "review", Date: "2004-06-01", Text: "alpha alpha"}},
		{kind: "put", e: &Entity{ID: "e2", Source: "web", Text: "beta", Links: []string{"e1"}}},
		{kind: "ann", id: "e1", anns: []Annotation{ann("nr70", "+", 0)}},
		{kind: "put", e: &Entity{ID: "e3", Source: "news", Date: "2004-07-02", Text: "gamma gamma"}},
		{kind: "del", id: "e2"},
		{kind: "put", e: &Entity{ID: "e2", Source: "web", Text: "beta rewritten"}},
		{kind: "ann", id: "e3", anns: []Annotation{ann("d100", "-", 1), ann("d100", "+", 2)}},
		{kind: "put", e: &Entity{ID: "e4", Text: "delta"}},
		{kind: "ann", id: "e1", anns: []Annotation{ann("nr70", "-", 3)}},
		{kind: "del", id: "e4"},
		{kind: "put", e: &Entity{ID: "e5", URL: "http://x.example/5", Text: "epsilon"}},
		{kind: "put", e: &Entity{ID: "e1", Source: "review", Text: "alpha replaced"}},
	}
}

// applyOp applies one script op, failing the test on unexpected errors.
func applyOp(t *testing.T, s *Store, op scriptOp) {
	t.Helper()
	switch op.kind {
	case "put":
		if err := s.Put(op.e); err != nil {
			t.Fatalf("put %s: %v", op.e.ID, err)
		}
	case "del":
		if err := s.Delete(op.id); err != nil {
			t.Fatalf("delete %s: %v", op.id, err)
		}
	case "ann":
		if _, err := s.Annotate(op.id, op.anns); err != nil {
			t.Fatalf("annotate %s: %v", op.id, err)
		}
	}
}

// referenceAfter replays the first n script ops into an in-memory store.
func referenceAfter(t *testing.T, ops []scriptOp, n int) *Store {
	t.Helper()
	ref := New(4)
	for _, op := range ops[:n] {
		applyOp(t, ref, op)
	}
	return ref
}

// requireEqualStores asserts two stores hold identical entities.
// XMLName is normalized: entities that travelled through XML carry it,
// freshly Put ones do not, and it is not part of the data.
func requireEqualStores(t *testing.T, label string, got, want *Store) {
	t.Helper()
	gotIDs, wantIDs := got.IDs(), want.IDs()
	if !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Fatalf("%s: IDs = %v, want %v", label, gotIDs, wantIDs)
	}
	for _, id := range wantIDs {
		g, _ := got.Get(id)
		w, _ := want.Get(id)
		g.XMLName, w.XMLName = xml.Name{}, xml.Name{}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: entity %s = %+v, want %+v", label, id, g, w)
		}
	}
}

// runScript runs the whole script against a fresh durable store in dir,
// recording the WAL size after each acknowledged op, and returns the WAL
// bytes plus those per-op boundaries.
func runScript(t *testing.T, dir string) (walBytes []byte, boundaries []int) {
	t.Helper()
	st, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "wal-00000000.log")
	for _, op := range crashScript() {
		applyOp(t, st, op)
		fi, err := os.Stat(wal)
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, int(fi.Size()))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	walBytes, err = os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if len(walBytes) != boundaries[len(boundaries)-1] {
		t.Fatalf("wal is %d bytes, last boundary %d", len(walBytes), boundaries[len(boundaries)-1])
	}
	return walBytes, boundaries
}

// TestCrashRecoveryMatrix is the acceptance matrix: the WAL is cut off at
// every possible byte offset — every torn-write point a crash could leave
// behind — and recovery must restore exactly the acknowledged prefix of
// operations: nothing acknowledged lost, no torn record surfaced.
func TestCrashRecoveryMatrix(t *testing.T) {
	ops := crashScript()
	walBytes, boundaries := runScript(t, t.TempDir())

	for cut := 0; cut <= len(walBytes); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-00000000.log"), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Open(dir, Options{Shards: 4})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		acked := 0
		for acked < len(boundaries) && boundaries[acked] <= cut {
			acked++
		}
		label := fmt.Sprintf("cut=%d acked=%d", cut, acked)
		requireEqualStores(t, label, rec, referenceAfter(t, ops, acked))

		ds := rec.Durability()
		if ds.Replayed != countApplied(ops[:acked]) {
			t.Fatalf("%s: replayed %d records, want %d", label, ds.Replayed, countApplied(ops[:acked]))
		}
		wantTrunc := cut
		if acked > 0 {
			wantTrunc = cut - boundaries[acked-1]
		}
		if ds.TruncatedBytes != wantTrunc {
			t.Fatalf("%s: truncated %d bytes, want %d", label, ds.TruncatedBytes, wantTrunc)
		}
		if ds.Quarantined != 0 {
			t.Fatalf("%s: quarantined %d records from a pure truncation", label, ds.Quarantined)
		}
		if err := rec.Close(); err != nil {
			t.Fatalf("%s: close: %v", label, err)
		}

		// A second crash at the same point must recover identically: the
		// torn tail was physically truncated, so the reopened store sees
		// a clean log.
		if cut%7 == 0 {
			again, err := Open(dir, Options{Shards: 4})
			if err != nil {
				t.Fatalf("%s: reopen: %v", label, err)
			}
			requireEqualStores(t, label+" reopen", again, referenceAfter(t, ops, acked))
			if ds2 := again.Durability(); ds2.TruncatedBytes != 0 {
				t.Fatalf("%s: reopen truncated %d more bytes", label, ds2.TruncatedBytes)
			}
			again.Close()
		}
	}
}

// countApplied counts the script ops that produce a WAL record (all of
// them — annotates in the script always target live entities).
func countApplied(ops []scriptOp) int { return len(ops) }

// TestRecoveryAppendsAfterCrash proves the store is writable after a
// torn-tail recovery: new acknowledged ops land after the truncation
// point and survive the next reopen.
func TestRecoveryAppendsAfterCrash(t *testing.T) {
	ops := crashScript()
	walBytes, boundaries := runScript(t, t.TempDir())

	cut := boundaries[5] + 3 // mid-record: op 6 torn, ops 0..5 acked
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-00000000.log"), walBytes[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Put(&Entity{ID: "post-crash", Text: "written after recovery"}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	again, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	want := referenceAfter(t, ops, 6)
	if err := want.Put(&Entity{ID: "post-crash", Text: "written after recovery"}); err != nil {
		t.Fatal(err)
	}
	requireEqualStores(t, "post-crash append", again, want)
}

// walRecordOffsets parses record boundaries out of raw WAL bytes.
func walRecordOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	var offs []int
	off := 0
	for off < len(data) {
		offs = append(offs, off)
		_, _, n, err := decodeWALRecord(data[off:])
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		off += n
	}
	return offs
}

// TestBitRotQuarantinesRecord flips a byte inside one complete record:
// recovery must quarantine exactly that record and still apply every
// other, rather than aborting or truncating the rest of the log.
func TestBitRotQuarantinesRecord(t *testing.T) {
	ops := crashScript()
	walBytes, _ := runScript(t, t.TempDir())
	offs := walRecordOffsets(t, walBytes)

	const victim = 6 // the two-annotation record for e3
	dir := t.TempDir()
	rotted := append([]byte(nil), walBytes...)
	rotted[offs[victim]+walHeaderSize+2] ^= 0x40
	if err := os.WriteFile(filepath.Join(dir, "wal-00000000.log"), rotted, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	want := New(4)
	for i, op := range ops {
		if i == victim {
			continue
		}
		applyOp(t, want, op)
	}
	requireEqualStores(t, "bit rot", rec, want)

	ds := rec.Durability()
	if ds.Quarantined != 1 {
		t.Fatalf("quarantined %d records, want 1", ds.Quarantined)
	}
	if ds.Replayed != len(ops)-1 {
		t.Fatalf("replayed %d records, want %d", ds.Replayed, len(ops)-1)
	}
	q, err := os.ReadFile(filepath.Join(dir, "quarantine.log"))
	if err != nil {
		t.Fatalf("quarantine.log: %v", err)
	}
	if len(q) == 0 {
		t.Fatal("quarantine.log is empty")
	}
}

// TestCompactAndRecover: compaction folds the log into a checksummed
// snapshot; recovery loads the snapshot and replays only the records
// appended since.
func TestCompactAndRecover(t *testing.T) {
	ops := crashScript()
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[:6] {
		applyOp(t, st, op)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[6:] {
		applyOp(t, st, op)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(filepath.Join(dir, "snapshot-00000001.xml")); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	// The previous generation's WAL is kept as fallback history.
	if _, err := os.Stat(filepath.Join(dir, "wal-00000000.log")); err != nil {
		t.Fatalf("previous wal pruned too early: %v", err)
	}

	rec, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	requireEqualStores(t, "compacted", rec, referenceAfter(t, ops, len(ops)))
	ds := rec.Durability()
	if !ds.SnapshotLoaded || ds.Generation != 1 {
		t.Fatalf("stats = %+v, want snapshot loaded at gen 1", ds)
	}
	if ds.Replayed != len(ops)-6 {
		t.Fatalf("replayed %d, want %d (post-compaction records only)", ds.Replayed, len(ops)-6)
	}
}

// TestCompactPrunesOldGenerations: a second compaction removes files
// older than the previous generation.
func TestCompactPrunesOldGenerations(t *testing.T) {
	ops := crashScript()
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[:4] {
		applyOp(t, st, op)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[4:8] {
		applyOp(t, st, op)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[8:] {
		applyOp(t, st, op)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(filepath.Join(dir, "wal-00000000.log")); !os.IsNotExist(err) {
		t.Error("gen-0 wal should be pruned after second compaction")
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-00000001.log")); err != nil {
		t.Errorf("gen-1 wal (previous generation) should be kept: %v", err)
	}

	rec, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	requireEqualStores(t, "twice compacted", rec, referenceAfter(t, ops, len(ops)))
}

// TestHeaderRotQuarantinesTailAndDegrades: a bit flip in a record's
// length prefix destroys framing for every record after it. Recovery
// must not silently truncate that tail — the acked records it holds
// would vanish uncounted. Instead it applies the intact prefix,
// preserves the whole tail in quarantine.log, and opens the store
// degraded so the loss is surfaced.
func TestHeaderRotQuarantinesTailAndDegrades(t *testing.T) {
	ops := crashScript()
	walBytes, _ := runScript(t, t.TempDir())
	offs := walRecordOffsets(t, walBytes)

	const victim = 4 // framing lost here; ops 0..3 must still replay
	dir := t.TempDir()
	rotted := append([]byte(nil), walBytes...)
	rotted[offs[victim]] ^= 0x04 // length byte
	if err := os.WriteFile(filepath.Join(dir, "wal-00000000.log"), rotted, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if deg, reason := rec.Degraded(); !deg || reason == "" {
		t.Fatalf("Degraded() = %v, %q after framing loss", deg, reason)
	}
	requireEqualStores(t, "prefix before header rot", rec, referenceAfter(t, ops, victim))

	ds := rec.Durability()
	if ds.Replayed != victim {
		t.Fatalf("replayed %d records, want %d", ds.Replayed, victim)
	}
	if ds.Quarantined != 1 {
		t.Fatalf("quarantined %d, want 1 (the unframeable tail)", ds.Quarantined)
	}
	q, err := os.ReadFile(filepath.Join(dir, "quarantine.log"))
	if err != nil {
		t.Fatalf("quarantine.log: %v", err)
	}
	if len(q) != len(walBytes)-offs[victim] {
		t.Fatalf("quarantine holds %d bytes, want the full %d-byte tail", len(q), len(walBytes)-offs[victim])
	}
	fi, err := os.Stat(filepath.Join(dir, "wal-00000000.log"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(offs[victim]) {
		t.Fatalf("wal is %d bytes after recovery, want truncated to %d", fi.Size(), offs[victim])
	}
	if err := rec.Put(&Entity{ID: "z", Text: "t"}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("put after framing loss: err = %v, want ErrReadOnly", err)
	}
}

// TestCompactFailureKeepsAckedWritesRecoverable: a compaction that fails
// mid-way (here: the next generation's WAL cannot be created) must leave
// the store entirely on the old generation — no snapshot published, not
// degraded — so writes acknowledged afterwards keep landing in the old
// WAL and recovery replays every one of them.
func TestCompactFailureKeepsAckedWritesRecoverable(t *testing.T) {
	ops := crashScript()
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[:6] {
		applyOp(t, st, op)
	}
	// Block the gen-1 WAL with a directory: rotation fails before the
	// snapshot is renamed into place.
	blocker := filepath.Join(dir, "wal-00000001.log")
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err == nil {
		t.Fatal("compact with a blocked wal rotation should fail")
	}
	if deg, reason := st.Degraded(); deg {
		t.Fatalf("cleanly undone compaction failure degraded the store: %s", reason)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot-00000001.xml")); !os.IsNotExist(err) {
		t.Fatalf("failed compaction published a snapshot (stat err = %v)", err)
	}
	if g := st.Durability().Generation; g != 0 {
		t.Fatalf("generation = %d after failed compaction, want 0", g)
	}
	// Later writes must still be acknowledged and recoverable.
	for _, op := range ops[6:] {
		applyOp(t, st, op)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	requireEqualStores(t, "after failed compaction", rec, referenceAfter(t, ops, len(ops)))
}

// TestCorruptSnapshotFallsBack: when the newest snapshot fails its
// checksum, recovery quarantines it and reconstructs the same state from
// the previous generation's WAL plus the current one.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	ops := crashScript()
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[:6] {
		applyOp(t, st, op)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[6:] {
		applyOp(t, st, op)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	snap := filepath.Join(dir, "snapshot-00000001.xml")
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	requireEqualStores(t, "snapshot fallback", rec, referenceAfter(t, ops, len(ops)))
	if _, err := os.Stat(snap + ".corrupt"); err != nil {
		t.Errorf("corrupt snapshot not quarantined: %v", err)
	}
	ds := rec.Durability()
	if ds.SnapshotLoaded {
		t.Error("corrupt snapshot reported as loaded")
	}
	if ds.Quarantined == 0 {
		t.Error("corrupt snapshot not counted as quarantined")
	}
}

// TestAutoCompact: CompactEvery triggers compaction from the append path.
func TestAutoCompact(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 2, CompactEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := st.Put(&Entity{ID: fmt.Sprintf("d%02d", i), Text: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	if g := st.Durability().Generation; g < 2 {
		t.Fatalf("generation = %d after 12 puts with CompactEvery=5, want >= 2", g)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != 12 {
		t.Fatalf("recovered %d entities, want 12", rec.Len())
	}
}

// failingWAL fails every write after the first failAfter succeed.
type failingWAL struct {
	WALFile
	failAfter int
	writes    int
	failSync  bool
}

func (f *failingWAL) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > f.failAfter {
		return 0, errors.New("simulated disk failure")
	}
	return f.WALFile.Write(p)
}

func (f *failingWAL) Sync() error {
	if f.failSync && f.writes >= f.failAfter {
		return errors.New("simulated sync failure")
	}
	return f.WALFile.Sync()
}

// TestDegradedReadOnlyOnAppendFailure: a failed WAL append flips the
// store into degraded read-only mode — the failed op is not applied, no
// later write is accepted, reads keep serving the recovered state, and a
// clean reopen recovers exactly the acknowledged ops.
func TestDegradedReadOnlyOnAppendFailure(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 2, WrapWAL: func(w WALFile) WALFile {
		return &failingWAL{WALFile: w, failAfter: 2}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(&Entity{ID: "a", Text: "first"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(&Entity{ID: "b", Text: "second"}); err != nil {
		t.Fatal(err)
	}
	err = st.Put(&Entity{ID: "c", Text: "third"})
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("third put: err = %v, want ErrReadOnly", err)
	}
	if deg, reason := st.Degraded(); !deg || reason == "" {
		t.Fatalf("Degraded() = %v, %q after append failure", deg, reason)
	}
	// The failed mutation must not be visible.
	if _, ok := st.Get("c"); ok {
		t.Fatal("unacknowledged put is visible")
	}
	// Reads keep working; all further mutations are rejected.
	if _, ok := st.Get("a"); !ok {
		t.Fatal("degraded store lost reads")
	}
	if err := st.Delete("a"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("delete in degraded mode: %v", err)
	}
	if _, err := st.Annotate("a", []Annotation{{Miner: "m"}}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("annotate in degraded mode: %v", err)
	}
	if err := st.Compact(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("compact in degraded mode: %v", err)
	}
	st.Close()

	rec, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != 2 {
		t.Fatalf("recovered %d entities, want the 2 acknowledged", rec.Len())
	}
}

// TestDegradedReadOnlyOnSyncFailure: a failed sync equally degrades.
func TestDegradedReadOnlyOnSyncFailure(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 2, WrapWAL: func(w WALFile) WALFile {
		return &failingWAL{WALFile: w, failAfter: 1, failSync: true}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(&Entity{ID: "a", Text: "x"}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("put with failing sync: err = %v, want ErrReadOnly", err)
	}
	if deg, reason := st.Degraded(); !deg || reason == "" {
		t.Fatalf("Degraded() = %v, %q after sync failure", deg, reason)
	}
	st.Close()
}

// TestDurableUpdateSurvivesReopen: Update on a durable store re-logs the
// whole entity, so the mutation is recoverable.
func TestDurableUpdateSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(&Entity{ID: "a", Text: "before"}); err != nil {
		t.Fatal(err)
	}
	if !st.Update("a", func(e *Entity) { e.Text = "after" }) {
		t.Fatal("update failed")
	}
	if st.Update("missing", func(*Entity) {}) {
		t.Fatal("update of missing ID should report false")
	}
	st.Close()

	rec, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	e, ok := rec.Get("a")
	if !ok || e.Text != "after" {
		t.Fatalf("recovered entity = %+v, %v", e, ok)
	}
}

// TestConcurrentUpdateAndAnnotate: Update's read-modify-write runs under
// the WAL mutex, so an Annotate acknowledged while an Update is in
// flight is never overwritten by the Update's stale full-entity re-log —
// neither in memory nor after replay.
func TestConcurrentUpdateAndAnnotate(t *testing.T) {
	const n = 100
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(&Entity{ID: "a", Text: "t"}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if _, err := st.Annotate("a", []Annotation{{Miner: "m", Key: fmt.Sprintf("k%03d", i)}}); err != nil {
				t.Errorf("annotate %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if !st.Update("a", func(e *Entity) { e.Title = fmt.Sprintf("rev %d", i) }) {
				t.Errorf("update %d failed", i)
				return
			}
		}
	}()
	wg.Wait()
	e, ok := st.Get("a")
	if !ok || len(e.Annotations) != n {
		t.Fatalf("in-memory: %d annotations survived, want %d", len(e.Annotations), n)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	e, ok = rec.Get("a")
	if !ok || len(e.Annotations) != n {
		t.Fatalf("after replay: %d annotations survived, want %d", len(e.Annotations), n)
	}
}

// TestOpenEmptyDir: opening a fresh directory yields an empty, writable
// store with a live gen-0 WAL.
func TestOpenEmptyDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "data")
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 0 || !st.Durable() {
		t.Fatalf("Len=%d Durable=%v", st.Len(), st.Durable())
	}
	if deg, _ := st.Degraded(); deg {
		t.Fatal("fresh store is degraded")
	}
	if err := st.Put(&Entity{ID: "a", Text: "t"}); err != nil {
		t.Fatal(err)
	}
	if ds := st.Durability(); ds.Appended != 1 || ds.Syncs != 1 || ds.Generation != 0 {
		t.Fatalf("stats = %+v", ds)
	}
}

func TestDurableStoreRecoversTombstones(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(&Entity{ID: "doc-01", Text: "body"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("doc-01"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// WAL replay re-runs the delete, so the tombstone survives a restart
	// (until a compaction drops the delete record from the log).
	s2, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.HasTombstone("doc-01") {
		t.Fatal("tombstone lost across restart")
	}
}
