package store

import (
	"bytes"
	"fmt"
	"testing"
)

func versionedEntity(id string, version uint64) *Entity {
	return &Entity{ID: id, Text: fmt.Sprintf("body of %s at %d", id, version), Version: version}
}

func TestVersionedPutFenceLastWriterWins(t *testing.T) {
	s := New(4)
	if err := s.Put(versionedEntity("doc-a", 10)); err != nil {
		t.Fatal(err)
	}
	// Stale replica of an older write arrives after the newer one.
	if err := s.Put(versionedEntity("doc-a", 5)); err != nil {
		t.Fatal(err)
	}
	e, ok := s.Get("doc-a")
	if !ok || e.Version != 10 {
		t.Fatalf("stale put rolled back the newer copy: got %+v", e)
	}
	// A genuinely newer write replaces.
	if err := s.Put(versionedEntity("doc-a", 11)); err != nil {
		t.Fatal(err)
	}
	if e, _ := s.Get("doc-a"); e.Version != 11 {
		t.Fatalf("newer put did not install: got version %d", e.Version)
	}
}

func TestUnversionedPutAlwaysInstalls(t *testing.T) {
	s := New(4)
	if err := s.Put(versionedEntity("doc-a", 10)); err != nil {
		t.Fatal(err)
	}
	// Single-process deployments never stamp versions; arrival order is
	// write order and a version-0 put must not be fenced.
	if err := s.Put(&Entity{ID: "doc-a", Text: "local overwrite"}); err != nil {
		t.Fatal(err)
	}
	if e, _ := s.Get("doc-a"); e.Text != "local overwrite" {
		t.Fatalf("unversioned put was fenced: %+v", e)
	}
}

func TestDeleteVersionedFencesAndTombstones(t *testing.T) {
	s := New(4)
	if err := s.Put(versionedEntity("doc-a", 20)); err != nil {
		t.Fatal(err)
	}

	// Stale delete (older than the held copy): no-op, no tombstone.
	if err := s.DeleteVersioned("doc-a", 15); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("doc-a"); !ok {
		t.Fatal("stale delete removed a newer copy")
	}
	if s.HasTombstone("doc-a") {
		t.Fatal("stale delete recorded a tombstone")
	}

	// Newer delete applies and records its version.
	if err := s.DeleteVersioned("doc-a", 25); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("doc-a"); ok {
		t.Fatal("versioned delete did not remove the entity")
	}
	if v := s.TombstonesVersioned()["doc-a"]; v != 25 {
		t.Fatalf("tombstone version = %d, want 25", v)
	}

	// A put older than the tombstone must not resurrect the entity.
	if err := s.Put(versionedEntity("doc-a", 22)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("doc-a"); ok {
		t.Fatal("put older than tombstone resurrected the entity")
	}
	if !s.HasTombstone("doc-a") {
		t.Fatal("fenced put withdrew the tombstone")
	}

	// A put newer than the tombstone re-creates and clears it.
	if err := s.Put(versionedEntity("doc-a", 30)); err != nil {
		t.Fatal(err)
	}
	if e, ok := s.Get("doc-a"); !ok || e.Version != 30 {
		t.Fatalf("newer put did not re-create: %+v", e)
	}
	if s.HasTombstone("doc-a") {
		t.Fatal("tombstone survived a newer put")
	}
}

func TestRedeleteKeepsNewestTombstoneVersion(t *testing.T) {
	s := New(4)
	if err := s.DeleteVersioned("doc-a", 40); err != nil {
		t.Fatal(err)
	}
	// An unversioned re-delete (local operator action) must not erase the
	// versioned evidence.
	if err := s.Delete("doc-a"); err != nil {
		t.Fatal(err)
	}
	if v := s.TombstonesVersioned()["doc-a"]; v != 40 {
		t.Fatalf("unversioned re-delete degraded tombstone version to %d", v)
	}
	// Nor may a stale versioned re-delete.
	if err := s.DeleteVersioned("doc-a", 35); err != nil {
		t.Fatal(err)
	}
	if v := s.TombstonesVersioned()["doc-a"]; v != 40 {
		t.Fatalf("stale re-delete degraded tombstone version to %d", v)
	}
}

func TestApplyFramesVersionedDeleteFences(t *testing.T) {
	s := New(4)
	if err := s.Put(versionedEntity("doc-a", 50)); err != nil {
		t.Fatal(err)
	}

	// Stale versioned delete frame: fenced, copy survives.
	if _, err := ApplyFrames(s, EncodeDeleteFrame("doc-a", 45)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("doc-a"); !ok {
		t.Fatal("stale delete frame removed a newer copy")
	}

	// Newer versioned delete frame applies.
	if _, err := ApplyFrames(s, EncodeDeleteFrame("doc-a", 55)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("doc-a"); ok {
		t.Fatal("newer delete frame did not apply")
	}

	// A put frame older than the tombstone must not resurrect.
	frame, err := EncodePutFrame(versionedEntity("doc-a", 52))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyFrames(s, frame); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("doc-a"); ok {
		t.Fatal("put frame older than tombstone resurrected the entity")
	}

	// A put frame newer than the tombstone re-creates.
	frame, err = EncodePutFrame(versionedEntity("doc-a", 60))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyFrames(s, frame); err != nil {
		t.Fatal(err)
	}
	if e, ok := s.Get("doc-a"); !ok || e.Version != 60 {
		t.Fatalf("newer put frame did not re-create: %+v", e)
	}
}

func TestVersionSurvivesWALReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(versionedEntity("doc-keep", 70)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(versionedEntity("doc-gone", 71)); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteVersioned("doc-gone", 75); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	e, ok := s2.Get("doc-keep")
	if !ok || e.Version != 70 {
		t.Fatalf("version lost across replay: %+v", e)
	}
	if _, ok := s2.Get("doc-gone"); ok {
		t.Fatal("versioned delete lost across replay")
	}
	if v := s2.TombstonesVersioned()["doc-gone"]; v != 75 {
		t.Fatalf("tombstone version lost across replay: %d", v)
	}
	// The fences must hold against the replayed state exactly as against
	// the original: version comparison is meaningful across restarts.
	if err := s2.Put(versionedEntity("doc-gone", 73)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("doc-gone"); ok {
		t.Fatal("stale put resurrected entity after replay")
	}
	if err := s2.Put(versionedEntity("doc-keep", 65)); err != nil {
		t.Fatal(err)
	}
	if e, _ := s2.Get("doc-keep"); e.Version != 70 {
		t.Fatalf("stale put rolled back replayed copy to %d", e.Version)
	}
}

func TestVersionDigestTracksDivergence(t *testing.T) {
	a, b := New(4), New(4)
	for i := 0; i < 20; i++ {
		e := versionedEntity(fmt.Sprintf("doc-%03d", i), uint64(100+i))
		if err := a.Put(e); err != nil {
			t.Fatal(err)
		}
		if err := b.Put(e.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	da, db := a.VersionDigest(), b.VersionDigest()
	if !bytes.Equal(da[:], db[:]) {
		t.Fatal("identical stores produced different digests")
	}

	// A version bump on one side diverges the digests.
	if err := a.Put(versionedEntity("doc-003", 200)); err != nil {
		t.Fatal(err)
	}
	da = a.VersionDigest()
	if bytes.Equal(da[:], db[:]) {
		t.Fatal("digest blind to a version change")
	}

	// Converge b and the digests match again.
	if err := b.Put(versionedEntity("doc-003", 200)); err != nil {
		t.Fatal(err)
	}
	db = b.VersionDigest()
	if !bytes.Equal(da[:], db[:]) {
		t.Fatal("converged stores still differ")
	}

	// Tombstones are part of the digest: a delete on one side diverges
	// even though both sides stop holding the entity.
	if err := a.DeleteVersioned("doc-007", 300); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete("doc-007"); err != nil { // unversioned: tombstone v0
		t.Fatal(err)
	}
	da, db = a.VersionDigest(), b.VersionDigest()
	if bytes.Equal(da[:], db[:]) {
		t.Fatal("digest blind to tombstone version difference")
	}
}

// FuzzApplyFrames asserts the version-carrying replica frame path never
// panics on arbitrary bytes, never reports more frames than it was
// given, and fails with ErrCorruptFrame (not a silent partial state) on
// anything malformed.
func FuzzApplyFrames(f *testing.F) {
	seedPut, _ := EncodePutFrame(versionedEntity("doc-a", 42))
	f.Add(seedPut)
	f.Add(EncodeDeleteFrame("doc-a", 43))
	f.Add(EncodeDeleteFrame("doc-a", 0))
	f.Add(append(append([]byte{}, seedPut...), EncodeDeleteFrame("doc-b", 7)...))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New(2)
		applied, err := ApplyFrames(s, data)
		if applied < 0 {
			t.Fatalf("negative applied count %d", applied)
		}
		if err == nil {
			// Re-applying a fully accepted batch must be idempotent: same
			// count, same resulting version census.
			before := s.VersionDigest()
			applied2, err2 := ApplyFrames(s, data)
			if err2 != nil || applied2 != applied {
				t.Fatalf("re-apply diverged: applied %d/%v, want %d/nil", applied2, err2, applied)
			}
			after := s.VersionDigest()
			if !bytes.Equal(before[:], after[:]) {
				t.Fatal("re-applying an accepted batch changed state")
			}
		}
	})
}
