package store_test

// Crash-recovery under the deterministic disk-fault injector: the WAL is
// wrapped with faults.Injector.File, a scripted workload runs until the
// injected torn write or sync failure degrades the store, and recovery
// must restore exactly the acknowledged operations. The test lives in an
// external package because faults imports store.

import (
	"errors"
	"fmt"
	"testing"

	"webfountain/internal/faults"
	"webfountain/internal/store"
)

// runFaultedWorkload puts docs into a durable store in dir whose WAL is
// wrapped by a fresh injector for cfg. It returns the IDs of the puts
// that were acknowledged (nil error) before the store degraded, plus the
// ID of the put whose ack failed, if any: that op is in limbo — a torn
// write destroys it, but a sync failure may leave it fully on disk, so
// recovery may legitimately surface it. The opts' shard count and WAL
// wrapper are overridden; everything else (group commit, sync policy)
// runs as given, so the same workload exercises every write path.
func runFaultedWorkload(t *testing.T, dir string, cfg faults.Config, docs int, opts store.Options) (acked []string, inFlight string, stats faults.Stats) {
	t.Helper()
	in := faults.New(cfg)
	opts.Shards = 4
	opts.WrapWAL = func(w store.WALFile) store.WALFile {
		return in.File(w.(faults.File))
	}
	st, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < docs; i++ {
		id := fmt.Sprintf("doc-%03d", i)
		err := st.Put(&store.Entity{ID: id, Source: "review", Text: fmt.Sprintf("body of %s", id)})
		if err == nil {
			acked = append(acked, id)
			continue
		}
		if !errors.Is(err, store.ErrReadOnly) {
			t.Fatalf("put %s: unexpected error class: %v", id, err)
		}
		inFlight = id
		// First failure flips the store read-only; every later write
		// must be rejected without touching the log.
		for j := i; j < docs; j++ {
			if werr := st.Put(&store.Entity{ID: "late", Text: "x"}); !errors.Is(werr, store.ErrReadOnly) {
				t.Fatalf("write after degradation: %v", werr)
			}
		}
		break
	}
	return acked, inFlight, in.Stats()
}

// TestCrashRecoveryUnderInjectedDiskFaults: across many seeds, a torn
// write or sync failure injected at an arbitrary point must never lose
// an acknowledged put, and recovery must surface exactly the acked set.
func TestCrashRecoveryUnderInjectedDiskFaults(t *testing.T) {
	crashRecoveryMatrix(t, store.Options{})
}

// TestCrashRecoveryUnderInjectedDiskFaultsGroupCommit runs the same
// fault matrix through the group-commit write path: batching the
// append+fsync must not change what an acknowledgement promises.
func TestCrashRecoveryUnderInjectedDiskFaultsGroupCommit(t *testing.T) {
	crashRecoveryMatrix(t, store.Options{GroupCommit: true})
}

func crashRecoveryMatrix(t *testing.T, opts store.Options) {
	const docs = 40
	for seed := int64(1); seed <= 25; seed++ {
		cfg := faults.Config{Seed: seed, TornWriteRate: 0.06, SyncFailRate: 0.04}
		dir := t.TempDir()
		acked, inFlight, stats := runFaultedWorkload(t, dir, cfg, docs, opts)

		rec, err := store.Open(dir, store.Options{Shards: 4})
		if err != nil {
			t.Fatalf("seed %d: recovery open: %v", seed, err)
		}
		for _, id := range acked {
			if _, ok := rec.Get(id); !ok {
				t.Fatalf("seed %d: acknowledged put %s lost (injected %v)", seed, id, stats)
			}
		}
		// Everything recovered beyond the acked set must be the one
		// in-flight op whose ack failed (sync failure after a complete
		// WAL append) — never an op the workload was told failed earlier
		// and never data from nowhere.
		want := len(acked)
		if inFlight != "" {
			if _, ok := rec.Get(inFlight); ok {
				want++
			}
		}
		if got := rec.Len(); got != want {
			t.Fatalf("seed %d: recovered %d entities, acked %d, in-flight %q (injected %v)",
				seed, got, len(acked), inFlight, stats)
		}
		if deg, _ := rec.Degraded(); deg {
			t.Fatalf("seed %d: recovered store should be healthy", seed)
		}
		rec.Close()
	}
}

// TestInjectedFaultsAreDeterministic: the same seed must place the same
// faults at the same operations — the property that lets a crash
// scenario replay exactly.
func TestInjectedFaultsAreDeterministic(t *testing.T) {
	cfg := faults.Config{Seed: 7, TornWriteRate: 0.08, SyncFailRate: 0.05}
	ackedA, _, statsA := runFaultedWorkload(t, t.TempDir(), cfg, 40, store.Options{})
	ackedB, _, statsB := runFaultedWorkload(t, t.TempDir(), cfg, 40, store.Options{})
	if len(ackedA) != len(ackedB) {
		t.Fatalf("same seed, different acked counts: %d vs %d", len(ackedA), len(ackedB))
	}
	if statsA != statsB {
		t.Fatalf("same seed, different fault stats: %v vs %v", statsA, statsB)
	}
}
