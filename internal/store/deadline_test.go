package store

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestForEachWithDeadlineExpired: an already-expired deadline stops the
// scan with ErrDeadlineExceeded before visiting every entity.
func TestForEachWithDeadlineExpired(t *testing.T) {
	st := New(4)
	for i := 0; i < 40; i++ {
		st.Put(&Entity{ID: fmt.Sprintf("doc%03d", i), Text: "x"})
	}
	visited := 0
	err := st.ForEachWithDeadline(time.Now().Add(-time.Millisecond), func(e *Entity) error {
		visited++
		return nil
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if visited != 0 {
		t.Errorf("visited = %d, want 0 under an expired deadline", visited)
	}
}

// TestForEachWithDeadlineMidScan: a deadline that expires partway
// through sheds the tail of the scan.
func TestForEachWithDeadlineMidScan(t *testing.T) {
	st := New(1)
	for i := 0; i < 20; i++ {
		st.Put(&Entity{ID: fmt.Sprintf("doc%03d", i), Text: "x"})
	}
	visited := 0
	err := st.ForEachInShardWithDeadline(0, time.Now().Add(15*time.Millisecond), func(e *Entity) error {
		visited++
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if visited == 0 || visited >= 20 {
		t.Errorf("visited = %d, want a strict subset of the 20 entities", visited)
	}
}

// TestForEachZeroDeadlineUnbounded: the plain iterators are unchanged.
func TestForEachZeroDeadlineUnbounded(t *testing.T) {
	st := New(4)
	for i := 0; i < 10; i++ {
		st.Put(&Entity{ID: fmt.Sprintf("doc%03d", i), Text: "x"})
	}
	visited := 0
	if err := st.ForEach(func(e *Entity) error { visited++; return nil }); err != nil {
		t.Fatal(err)
	}
	if visited != 10 {
		t.Errorf("visited = %d, want 10", visited)
	}
}
