package store

import (
	"encoding/binary"
	"encoding/xml"
	"errors"
	"fmt"
	"hash/crc32"
)

// The write-ahead log is a sequence of length-prefixed, checksummed
// records, one per acknowledged mutation:
//
//	[4B little-endian payload length][4B CRC32-IEEE of the length bytes]
//	[4B CRC32-IEEE of payload][payload]
//
// where payload is one op byte followed by the op body:
//
//	opPut      — the entity, as compact XML
//	opDelete   — the raw entity ID
//	opAnnotate — an <annotate id="..."> element listing annotations
//	opDeleteV  — 8-byte big-endian HLC version, then the raw entity ID
//
// The length prefix gives resync-free sequential scanning, and the two
// checksums split corruption into three distinguishable classes: a
// record that runs past the end of the file under a valid header is a
// torn tail (a crash mid-append — truncated away); a framed record whose
// payload checksum fails is bit rot (quarantined, scanning continues);
// and a header whose own checksum fails means the length cannot be
// trusted — framing is lost for everything after it. Without the header
// checksum a single bit flip in a length field would misframe the rest
// of the log and masquerade as a torn tail, silently truncating
// acknowledged records.

// WAL op codes.
const (
	opPut      byte = 1
	opDelete   byte = 2
	opAnnotate byte = 3
	opDeleteV  byte = 4
)

// encodeDeleteV frames a versioned delete's body: the 8-byte version
// stamp followed by the ID bytes.
func encodeDeleteV(id string, version uint64) []byte {
	body := make([]byte, 8+len(id))
	binary.BigEndian.PutUint64(body, version)
	copy(body[8:], id)
	return body
}

// decodeDeleteV parses a versioned delete body.
func decodeDeleteV(body []byte) (id string, version uint64, err error) {
	if len(body) < 8 {
		return "", 0, fmt.Errorf("store: short versioned-delete body (%d bytes)", len(body))
	}
	return string(body[8:]), binary.BigEndian.Uint64(body), nil
}

// walHeaderSize is the length prefix plus the header and payload
// checksums.
const walHeaderSize = 12

// maxWALRecord bounds one record's payload; a length above it is treated
// as framing corruption rather than a record to allocate for.
const maxWALRecord = 64 << 20

var (
	// errTornRecord reports a record that runs past the end of the log
	// under a valid header: the tail of a crashed append. Recovery
	// truncates the log here.
	errTornRecord = errors.New("store: torn wal record")
	// errCorruptRecord reports a complete record whose payload checksum
	// does not match: bit rot. Recovery quarantines it and keeps
	// scanning.
	errCorruptRecord = errors.New("store: corrupt wal record")
	// errBadHeader reports a header whose self-checksum fails (or a
	// checksum-valid header carrying a length the writer never emits):
	// the length cannot be trusted, so framing is lost for every byte
	// after it. Recovery quarantines the remaining tail and degrades.
	errBadHeader = errors.New("store: corrupt wal record header")
)

// encodeWALRecord frames one op into a WAL record.
func encodeWALRecord(op byte, body []byte) []byte {
	payload := make([]byte, 1+len(body))
	payload[0] = op
	copy(payload[1:], body)
	rec := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(rec[0:4]))
	binary.LittleEndian.PutUint32(rec[8:], crc32.ChecksumIEEE(payload))
	copy(rec[walHeaderSize:], payload)
	return rec
}

// decodeWALRecord parses the first record in data. n is the number of
// bytes the record occupies: the full frame on success or payload
// checksum failure (the caller can skip it), and the remaining byte
// count on a torn tail or corrupt header (the caller truncates or
// quarantines the rest). The returned body aliases data.
func decodeWALRecord(data []byte) (op byte, body []byte, n int, err error) {
	if len(data) < walHeaderSize {
		return 0, nil, len(data), errTornRecord
	}
	ln := binary.LittleEndian.Uint32(data)
	if crc32.ChecksumIEEE(data[:4]) != binary.LittleEndian.Uint32(data[4:8]) {
		return 0, nil, len(data), fmt.Errorf("%w: length checksum mismatch", errBadHeader)
	}
	if ln == 0 || ln > maxWALRecord {
		return 0, nil, len(data), fmt.Errorf("%w: implausible length %d", errBadHeader, ln)
	}
	total := walHeaderSize + int(ln)
	if len(data) < total {
		return 0, nil, len(data), errTornRecord
	}
	payload := data[walHeaderSize:total]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[8:12]) {
		return 0, nil, total, errCorruptRecord
	}
	return payload[0], payload[1:], total, nil
}

// annotateRecord is the XML body of an opAnnotate record.
type annotateRecord struct {
	XMLName     xml.Name     `xml:"annotate"`
	ID          string       `xml:"id,attr"`
	Annotations []Annotation `xml:"annotation"`
}

// encodeAnnotate renders an opAnnotate body.
func encodeAnnotate(id string, anns []Annotation) ([]byte, error) {
	return xml.Marshal(annotateRecord{ID: id, Annotations: anns})
}

// decodeAnnotate parses an opAnnotate body.
func decodeAnnotate(body []byte) (annotateRecord, error) {
	var rec annotateRecord
	if err := xml.Unmarshal(body, &rec); err != nil {
		return rec, fmt.Errorf("store: decode annotate record: %w", err)
	}
	return rec, nil
}
