package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// slowSyncWAL delays every Sync, widening the window in which other
// writers queue behind the batch leader — the forcing function for the
// coalescing assertions below.
type slowSyncWAL struct {
	inner WALFile
	delay time.Duration
}

func (w *slowSyncWAL) Write(p []byte) (int, error) { return w.inner.Write(p) }
func (w *slowSyncWAL) Sync() error {
	time.Sleep(w.delay)
	return w.inner.Sync()
}
func (w *slowSyncWAL) Close() error { return w.inner.Close() }

// failSyncWAL fails every Sync after passing the data through, the
// shape of a disk that accepts writes but cannot make them durable.
type failSyncWAL struct {
	inner WALFile
}

func (w *failSyncWAL) Write(p []byte) (int, error) { return w.inner.Write(p) }
func (w *failSyncWAL) Sync() error                 { return fmt.Errorf("injected sync failure") }
func (w *failSyncWAL) Close() error                { return w.inner.Close() }

// tornBatchWAL writes normally until the Nth Write call, which persists
// only the first half of the buffer and then errors — a crash in the
// middle of a group-commit batch append.
type tornBatchWAL struct {
	inner  WALFile
	failOn int
	writes int
}

func (w *tornBatchWAL) Write(p []byte) (int, error) {
	w.writes++
	if w.writes == w.failOn {
		n, _ := w.inner.Write(p[:len(p)/2])
		return n, fmt.Errorf("injected torn batch write")
	}
	return w.inner.Write(p)
}
func (w *tornBatchWAL) Sync() error  { return w.inner.Sync() }
func (w *tornBatchWAL) Close() error { return w.inner.Close() }

// groupPut runs writers×perWriter concurrent puts and returns the IDs
// whose puts were acknowledged.
func groupPut(t *testing.T, st *Store, writers, perWriter int) []string {
	t.Helper()
	var (
		mu    sync.Mutex
		acked []string
		wg    sync.WaitGroup
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-doc-%03d", w, i)
				err := st.Put(&Entity{ID: id, Source: "review", Text: "body of " + id})
				if err == nil {
					mu.Lock()
					acked = append(acked, id)
					mu.Unlock()
				} else if !errors.Is(err, ErrReadOnly) {
					t.Errorf("put %s: unexpected error class: %v", id, err)
				}
			}
		}(w)
	}
	wg.Wait()
	return acked
}

// TestGroupCommitConcurrentPutsDurableAndBatched: every concurrent put
// is acknowledged and recoverable, and the fsync count proves that
// batches actually coalesced — fewer syncs than records.
func TestGroupCommitConcurrentPutsDurableAndBatched(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{
		Shards:            4,
		GroupCommit:       true,
		GroupCommitWindow: 2 * time.Millisecond,
		WrapWAL:           func(w WALFile) WALFile { return &slowSyncWAL{inner: w, delay: time.Millisecond} },
	})
	if err != nil {
		t.Fatal(err)
	}
	acked := groupPut(t, st, 8, 25)
	if len(acked) != 200 {
		t.Fatalf("acked %d of 200 puts", len(acked))
	}
	ds := st.Durability()
	if ds.Appended != 200 {
		t.Fatalf("Appended = %d, want 200", ds.Appended)
	}
	if ds.Batches < 1 || ds.Batches >= 200 {
		t.Fatalf("Batches = %d: want at least one multi-record batch out of 200 records", ds.Batches)
	}
	if ds.Syncs != ds.Batches {
		t.Fatalf("Syncs = %d, Batches = %d: group commit must sync exactly once per batch", ds.Syncs, ds.Batches)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != 200 {
		t.Fatalf("recovered %d entities, want 200", rec.Len())
	}
	for _, id := range acked {
		if _, ok := rec.Get(id); !ok {
			t.Fatalf("acknowledged put %s lost", id)
		}
	}
}

// TestGroupCommitSyncFailureFailsWholeBatchUnapplied: when the batch
// fsync fails, every writer in the batch gets ErrReadOnly, none of the
// mutations is applied, and the store stays degraded for later writes.
func TestGroupCommitSyncFailureFailsWholeBatchUnapplied(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{
		Shards:      4,
		GroupCommit: true,
		WrapWAL:     func(w WALFile) WALFile { return &failSyncWAL{inner: w} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	acked := groupPut(t, st, 4, 5)
	if len(acked) != 0 {
		t.Fatalf("%d puts acked despite failing syncs: %v", len(acked), acked)
	}
	// Failed batches must not have been applied: the in-memory store is
	// exactly the (empty) recovered state.
	if st.Len() != 0 {
		t.Fatalf("store applied %d entities from failed batches", st.Len())
	}
	if deg, reason := st.Degraded(); !deg || reason == "" {
		t.Fatalf("store not degraded after batch sync failure (deg=%v reason=%q)", deg, reason)
	}
	if err := st.Put(&Entity{ID: "late", Text: "x"}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write after degradation: %v", err)
	}
}

// TestGroupCommitTornBatchWriteCrashRecovery: a torn write in the
// middle of a batch append degrades the store; recovery truncates the
// torn tail and surfaces every acknowledged record — plus possibly a
// prefix of the failed batch, whose members were never acked, so no ack
// is ever contradicted.
func TestGroupCommitTornBatchWriteCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{
		Shards:      4,
		GroupCommit: true,
		WrapWAL:     func(w WALFile) WALFile { return &tornBatchWAL{inner: w, failOn: 4} },
	})
	if err != nil {
		t.Fatal(err)
	}
	acked := groupPut(t, st, 4, 10)
	if len(acked) == 0 {
		t.Fatal("no puts acked before the injected torn write")
	}
	if len(acked) == 40 {
		t.Fatal("torn write never fired: all 40 puts acked")
	}
	if deg, _ := st.Degraded(); !deg {
		t.Fatal("store not degraded after torn batch write")
	}
	st.Close() // crash: the degraded close does not repair the torn tail

	rec, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	for _, id := range acked {
		if _, ok := rec.Get(id); !ok {
			t.Fatalf("acknowledged put %s lost to torn batch write", id)
		}
	}
	// Recovery may surface unacked members of the torn batch whose
	// records landed before the tear, but nothing else — and the torn
	// tail itself must have been truncated, leaving a healthy store.
	if got := rec.Len(); got < len(acked) || got > 40 {
		t.Fatalf("recovered %d entities, acked %d of 40", got, len(acked))
	}
	if deg, reason := rec.Degraded(); deg {
		t.Fatalf("recovered store degraded: %s", reason)
	}
}

// TestGroupCommitWindowZeroStillBatches: with no window configured,
// writers arriving while a leader is inside its append+fsync still form
// the next batch — coalescing is the natural consequence of the
// leader's fsync, not of the window.
func TestGroupCommitWindowZeroStillBatches(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{
		Shards:      4,
		GroupCommit: true,
		WrapWAL:     func(w WALFile) WALFile { return &slowSyncWAL{inner: w, delay: 2 * time.Millisecond} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	acked := groupPut(t, st, 8, 10)
	if len(acked) != 80 {
		t.Fatalf("acked %d of 80 puts", len(acked))
	}
	ds := st.Durability()
	if ds.Batches >= 80 {
		t.Fatalf("Batches = %d out of 80 records: no coalescing happened", ds.Batches)
	}
}

// TestGroupCommitSerialWriterMatchesPerRecordContract: a single writer
// under group commit sees the exact per-record behavior — one record,
// one batch, one sync, ack after durable.
func TestGroupCommitSerialWriterMatchesPerRecordContract(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 4, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := st.Put(&Entity{ID: fmt.Sprintf("doc-%02d", i), Text: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	ds := st.Durability()
	if ds.Batches != 10 || ds.Syncs != 10 || ds.Appended != 10 {
		t.Fatalf("serial group commit: batches=%d syncs=%d appended=%d, want 10/10/10",
			ds.Batches, ds.Syncs, ds.Appended)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != 10 {
		t.Fatalf("recovered %d entities, want 10", rec.Len())
	}
}

// TestGroupCommitCloseWaitsForInFlightBatch: Close must let an
// in-flight batch finish (its writers were promised durable acks), not
// yank the WAL handle out from under the leader.
func TestGroupCommitCloseWaitsForInFlightBatch(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{
		Shards:            4,
		GroupCommit:       true,
		GroupCommitWindow: 5 * time.Millisecond,
		WrapWAL:           func(w WALFile) WALFile { return &slowSyncWAL{inner: w, delay: 2 * time.Millisecond} },
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = st.Put(&Entity{ID: fmt.Sprintf("doc-%02d", i), Text: "t"})
		}(i)
	}
	time.Sleep(time.Millisecond) // let the batch leader start its window
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	acked := 0
	for i, err := range errs {
		if err == nil {
			acked++
		} else if !errors.Is(err, ErrReadOnly) && err.Error() != "store: closed" {
			t.Errorf("put %d: unexpected error: %v", i, err)
		}
	}
	rec, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() < acked {
		t.Fatalf("recovered %d entities but %d puts were acked before Close", rec.Len(), acked)
	}
}
