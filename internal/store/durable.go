package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The durable store keeps its state in one data directory:
//
//	snapshot-<gen>.xml   — compacted, checksum-trailed snapshots
//	wal-<gen>.log        — the write-ahead log built on snapshot <gen>
//	quarantine.log       — raw bytes of corrupt records, for forensics
//	*.corrupt            — snapshots that failed checksum verification
//
// Open loads the newest snapshot that verifies, replays every WAL whose
// generation is at least the snapshot's (ascending), truncates torn
// tails, quarantines corrupt records, and then appends new mutations to
// the highest-generation WAL. Compact writes snapshot gen+1, rotates to
// wal gen+1, and prunes everything older than the previous generation —
// keeping one snapshot+WAL pair of history so a snapshot that rots on
// disk can still be reconstructed from its predecessor plus that WAL.

// ErrReadOnly is wrapped by every mutation rejected because the store is
// in degraded read-only mode: the WAL could not be appended or synced, so
// accepting more writes would acknowledge data that cannot be recovered.
var ErrReadOnly = errors.New("store: degraded read-only mode")

// WALFile is the file surface the write-ahead log appends to — the
// subset of *os.File the store needs. Tests substitute fault-injecting
// implementations via Options.WrapWAL.
type WALFile interface {
	io.Writer
	Sync() error
	Close() error
}

// Options tunes a durable store opened with Open. The zero value selects
// 16 shards and a sync on every record.
type Options struct {
	// Shards is the number of store shards (default 16).
	Shards int
	// SyncEvery syncs the WAL to stable storage after every Nth appended
	// record (default and minimum 1: every record). Larger values trade
	// a window of acknowledged-but-unsynced writes for throughput.
	SyncEvery int
	// CompactEvery, when positive, compacts automatically after that
	// many records have been appended since the last compaction
	// (0: compaction only happens via explicit Compact calls).
	CompactEvery int
	// GroupCommit coalesces concurrent mutations into shared WAL
	// batches: the first writer to arrive becomes the batch leader,
	// writes every queued record in one append and fsyncs once for all
	// of them. Each caller still returns only after its own record is
	// durable — ack-after-durable is preserved; what changes is that one
	// fsync amortizes over the batch. SyncEvery is ignored in this mode
	// (every batch syncs). Default off: each record appends and syncs
	// individually, exactly the pre-group-commit contract.
	GroupCommit bool
	// GroupCommitWindow, when positive, makes a batch leader wait that
	// long for followers to queue before committing, trading latency for
	// larger batches. The default 0 commits as soon as the leader runs:
	// under concurrency batches still form naturally, because writers
	// arriving while a leader is inside its append+fsync queue up for
	// the next batch.
	GroupCommitWindow time.Duration
	// WrapWAL, when set, wraps the live WAL file handle — the hook the
	// deterministic disk-fault injector uses in crash-recovery tests.
	WrapWAL func(WALFile) WALFile
}

// DurabilityStats describes a durable store's persistence state.
type DurabilityStats struct {
	// Dir is the data directory.
	Dir string
	// Generation is the current snapshot/WAL generation.
	Generation uint64
	// SnapshotLoaded reports whether recovery loaded a snapshot.
	SnapshotLoaded bool
	// Replayed is the number of WAL records applied during recovery.
	Replayed int
	// Quarantined counts corrupt records, snapshots, and unframeable log
	// tails set aside during recovery instead of being applied.
	Quarantined int
	// TruncatedBytes is the torn-tail byte count dropped at recovery.
	TruncatedBytes int
	// Appended is the number of records logged since open or the last
	// compaction.
	Appended int
	// Syncs is the number of WAL syncs since open.
	Syncs int
	// Batches is the number of group-commit batches committed since
	// open (0 unless Options.GroupCommit).
	Batches int
	// Degraded reports read-only mode; Reason says why.
	Degraded bool
	Reason   string
}

// durability is the persistence state of a durable store.
type durability struct {
	mu   sync.Mutex
	dir  string
	opts Options

	gen     uint64
	wal     WALFile
	walPath string

	appended  int
	sinceSync int
	syncs     int

	replayed    int
	quarantined int
	truncated   int
	snapLoaded  bool

	// Group-commit state: writers queue requests on pending; the writer
	// that finds no leader active becomes the leader, takes the whole
	// queue, and commits it as one append+fsync. commitIdle is signalled
	// when a leader finishes, so Close and Compact can wait out an
	// in-flight batch.
	pending    []*walReq
	committing bool
	commitIdle *sync.Cond
	batches    int

	degraded string // reason; "" while healthy
	closed   bool
}

// walReq is one writer's queued record in a group-commit batch.
type walReq struct {
	rec   []byte
	apply func()
	done  chan error
}

func snapshotPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snapshot-%08d.xml", gen))
}

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", gen))
}

// listGens returns the generations of files named <prefix>-<gen><suffix>
// in dir, ascending.
func listGens(dir, prefix, suffix string) []uint64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, prefix+"-") || !strings.HasSuffix(name, suffix) {
			continue
		}
		mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix+"-"), suffix)
		g, err := strconv.ParseUint(mid, 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// Open creates or recovers a durable store rooted at dir. Recovery loads
// the newest snapshot that passes checksum verification (quarantining
// ones that do not), replays the write-ahead logs on top of it, truncates
// any torn tail left by a crash mid-append, quarantines corrupt records,
// and leaves the store ready to append. Every mutation acknowledged
// before a crash is present afterwards (subject to Options.SyncEvery).
func Open(dir string, opts Options) (*Store, error) {
	if opts.Shards < 1 {
		opts.Shards = 16
	}
	if opts.SyncEvery < 1 {
		opts.SyncEvery = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	// Recovery applies through the plain in-memory paths; the durability
	// state is attached only once the store is caught up, so replay never
	// re-logs.
	s := New(opts.Shards)
	d := &durability{dir: dir, opts: opts}
	d.commitIdle = sync.NewCond(&d.mu)

	// Load the newest verifiable snapshot.
	snapGens := listGens(dir, "snapshot", ".xml")
	for i := len(snapGens) - 1; i >= 0; i-- {
		g := snapGens[i]
		path := snapshotPath(dir, g)
		data, err := os.ReadFile(path)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			// A read error (EIO, EPERM, a flaky mount) is not evidence
			// the snapshot is bad: failing Open beats demoting a
			// possibly-good snapshot and losing the records only it holds.
			return nil, fmt.Errorf("store: open %s: read snapshot gen %d: %w", dir, g, err)
		}
		body, verr := VerifySnapshot(data)
		if verr != nil {
			// Failed verification: set it aside and try older.
			_ = os.Rename(path, path+".corrupt")
			d.quarantined++
			continue
		}
		if _, rerr := s.Restore(bytes.NewReader(body)); rerr != nil {
			return nil, fmt.Errorf("store: open %s: snapshot gen %d: %w", dir, g, rerr)
		}
		d.gen = g
		d.snapLoaded = true
		break
	}

	// Replay WALs from the loaded generation forward. A framing loss
	// (corrupt record header) degrades the store and ends replay: the
	// records after the loss — in this log and any later generation —
	// cannot be trusted to form a consistent history.
	for _, g := range listGens(dir, "wal", ".log") {
		if g < d.gen {
			continue
		}
		if err := d.replayWAL(s, walPath(dir, g)); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
		if g > d.gen {
			d.gen = g
		}
		if d.degraded != "" {
			break
		}
	}

	// Append to the current generation's WAL from here on.
	d.walPath = walPath(dir, d.gen)
	f, err := os.OpenFile(d.walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	// O_CREATE may have made a new directory entry; fsync the directory
	// so a fresh WAL cannot vanish in a power cut after writes were
	// acknowledged into it.
	if err := syncDir(dir); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	d.wal = WALFile(f)
	if opts.WrapWAL != nil {
		d.wal = opts.WrapWAL(d.wal)
	}
	s.dur = d
	return s, nil
}

// replayWAL applies one WAL file to the store: valid records are applied
// in order, a corrupt record is quarantined and skipped, a torn tail
// truncates the file in place so the next append starts on a record
// boundary, and a corrupt record header — framing lost mid-file —
// quarantines the whole remaining tail and degrades the store rather
// than silently dropping the acknowledged records the tail may hold.
func (d *durability) replayWAL(s *Store, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("replay %s: %w", filepath.Base(path), err)
	}
	off := 0
	for off < len(data) {
		op, body, n, derr := decodeWALRecord(data[off:])
		switch {
		case errors.Is(derr, errCorruptRecord):
			d.quarantine(data[off : off+n])
			off += n
			continue
		case errors.Is(derr, errBadHeader):
			// The length field cannot be trusted, so nothing after this
			// point can be reframed reliably. Preserve the tail for
			// forensics, truncate so the file ends on a record boundary,
			// and refuse further writes: the loss must be surfaced, not
			// papered over.
			d.quarantine(data[off:])
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return fmt.Errorf("replay %s: truncate corrupt tail: %w", filepath.Base(path), terr)
			}
			d.degrade(fmt.Sprintf("wal framing lost: %s offset %d: %v", filepath.Base(path), off, derr))
			return nil
		case derr != nil:
			// Torn tail: drop it so appends resume on a clean boundary.
			d.truncated += len(data) - off
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return fmt.Errorf("replay %s: truncate torn tail: %w", filepath.Base(path), terr)
			}
			return nil
		}
		if aerr := applyRecord(s, op, body); aerr != nil {
			d.quarantine(data[off : off+n])
		} else {
			d.replayed++
		}
		off += n
	}
	return nil
}

// syncDir fsyncs a directory so recently created or renamed entries in
// it survive a power failure — syncing a file's data does not make its
// name durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("sync dir %s: %w", dir, err)
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("sync dir %s: %w", dir, err)
	}
	return nil
}

// applyRecord applies one decoded WAL record through the in-memory paths.
func applyRecord(s *Store, op byte, body []byte) error {
	switch op {
	case opPut:
		e, err := ParseEntity(body)
		if err != nil {
			return err
		}
		s.applyPut(e)
		return nil
	case opDelete:
		s.applyDelete(string(body))
		return nil
	case opDeleteV:
		id, v, err := decodeDeleteV(body)
		if err != nil {
			return err
		}
		s.applyDeleteVersioned(id, v)
		return nil
	case opAnnotate:
		rec, err := decodeAnnotate(body)
		if err != nil {
			return err
		}
		sh := s.shardFor(rec.ID)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		// Annotating an entity deleted later in the original timeline is
		// impossible here (records replay in order); a missing ID means
		// the record raced a delete at log time and is a no-op.
		if e, ok := sh.entities[rec.ID]; ok {
			e.Annotations = append(e.Annotations, rec.Annotations...)
		}
		return nil
	}
	return fmt.Errorf("store: unknown wal op %d", op)
}

// quarantine appends the raw bytes of a corrupt record to quarantine.log
// (best effort) and counts it.
func (d *durability) quarantine(rec []byte) {
	d.quarantined++
	f, err := os.OpenFile(filepath.Join(d.dir, "quarantine.log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	_, _ = f.Write(rec)
}

// logged appends one record and, if the append is durable, applies the
// mutation. The WAL mutex serializes log order with apply order so replay
// reconstructs exactly the in-memory history. Any append or sync failure
// flips the store into degraded read-only mode: the mutation is NOT
// applied, the caller gets ErrReadOnly, and no later write is accepted —
// readers keep working from the recovered state.
func (s *Store) logged(op byte, body []byte, apply func()) error {
	d := s.dur
	if d.opts.GroupCommit {
		return s.loggedGroup(op, body, apply)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return s.loggedLocked(op, body, apply)
}

// loggedGroup is the group-commit write path: the record joins the
// pending batch, and either this writer becomes the batch leader —
// committing everything queued with one append and one fsync — or it
// waits for the current leader to commit on its behalf. Either way the
// call returns only once the record is durable (or the store degraded),
// so the ack-after-durable contract is identical to the per-record path.
func (s *Store) loggedGroup(op byte, body []byte, apply func()) error {
	d := s.dur
	req := &walReq{rec: encodeWALRecord(op, body), apply: apply, done: make(chan error, 1)}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return fmt.Errorf("store: closed")
	}
	if d.degraded != "" {
		reason := d.degraded
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrReadOnly, reason)
	}
	d.pending = append(d.pending, req)
	if d.committing {
		// A leader is already collecting or committing; it will take
		// this request in its batch (if still collecting) or the next
		// writer to arrive after it finishes will.
		d.mu.Unlock()
		return <-req.done
	}
	d.committing = true
	d.mu.Unlock()
	if w := d.opts.GroupCommitWindow; w > 0 {
		time.Sleep(w)
	}
	d.mu.Lock()
	batch := d.pending
	d.pending = nil
	s.commitBatchLocked(batch)
	d.committing = false
	d.commitIdle.Broadcast()
	d.mu.Unlock()
	return <-req.done
}

// commitBatchLocked writes every queued record in one WAL append, syncs
// once, applies the mutations in log order, and completes each waiter.
// A failed append or sync degrades the store and fails the whole batch
// un-applied: none of those writers were acknowledged, so recovery
// surfacing any prefix of the batch (what made it to disk before the
// failure) never contradicts an ack. The caller holds d.mu.
func (s *Store) commitBatchLocked(batch []*walReq) {
	d := s.dur
	fail := func(err error) {
		for _, r := range batch {
			r.done <- err
		}
	}
	if len(batch) == 0 {
		return
	}
	if d.degraded != "" {
		fail(fmt.Errorf("%w: %s", ErrReadOnly, d.degraded))
		return
	}
	total := 0
	for _, r := range batch {
		total += len(r.rec)
	}
	buf := make([]byte, 0, total)
	for _, r := range batch {
		buf = append(buf, r.rec...)
	}
	if _, err := d.wal.Write(buf); err != nil {
		d.degrade("wal append failed: " + err.Error())
		fail(fmt.Errorf("%w: %s", ErrReadOnly, d.degraded))
		return
	}
	span := walFsyncNs.Start()
	if err := d.wal.Sync(); err != nil {
		d.degrade("wal sync failed: " + err.Error())
		fail(fmt.Errorf("%w: %s", ErrReadOnly, d.degraded))
		return
	}
	span.End()
	walAppends.Add(int64(len(batch)))
	walSyncs.Inc()
	walBatchRecords.Observe(int64(len(batch)))
	d.appended += len(batch)
	d.sinceSync = 0
	d.syncs++
	d.batches++
	for _, r := range batch {
		r.apply()
		r.done <- nil
	}
	if d.opts.CompactEvery > 0 && d.appended >= d.opts.CompactEvery {
		if err := s.compactLocked(); err != nil {
			d.degrade("compaction failed: " + err.Error())
		}
	}
}

// loggedLocked is logged for callers that already hold d.mu — Update
// uses it to keep its read-modify-write atomic with respect to every
// other logged mutation.
func (s *Store) loggedLocked(op byte, body []byte, apply func()) error {
	d := s.dur
	if d.closed {
		return fmt.Errorf("store: closed")
	}
	if d.degraded != "" {
		return fmt.Errorf("%w: %s", ErrReadOnly, d.degraded)
	}
	rec := encodeWALRecord(op, body)
	if _, err := d.wal.Write(rec); err != nil {
		d.degrade("wal append failed: " + err.Error())
		return fmt.Errorf("%w: %s", ErrReadOnly, d.degraded)
	}
	walAppends.Inc()
	d.appended++
	d.sinceSync++
	if d.sinceSync >= d.opts.SyncEvery {
		span := walFsyncNs.Start()
		if err := d.wal.Sync(); err != nil {
			d.degrade("wal sync failed: " + err.Error())
			return fmt.Errorf("%w: %s", ErrReadOnly, d.degraded)
		}
		span.End()
		walSyncs.Inc()
		d.sinceSync = 0
		d.syncs++
	}
	apply()
	if d.opts.CompactEvery > 0 && d.appended >= d.opts.CompactEvery {
		if err := s.compactLocked(); err != nil {
			d.degrade("compaction failed: " + err.Error())
		}
	}
	return nil
}

// Compact writes a checksummed snapshot of the current state as the next
// generation, rotates the WAL, and prunes files older than the previous
// generation. A successful compaction bounds recovery time to one
// snapshot load plus the records appended since.
func (s *Store) Compact() error {
	d := s.dur
	if d == nil {
		return fmt.Errorf("store: compact: not a durable store")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.committing {
		d.commitIdle.Wait()
	}
	if d.closed {
		return fmt.Errorf("store: closed")
	}
	if d.degraded != "" {
		return fmt.Errorf("%w: %s", ErrReadOnly, d.degraded)
	}
	return s.compactLocked()
}

// compactLocked does the compaction work; the caller holds d.mu.
//
// Failure atomicity: every fallible step runs BEFORE the snapshot is
// renamed into place, and each undoes cleanly — on error the store is
// still entirely on the old generation, appending to the old WAL, and
// recovery (which would load the old snapshot and replay the old WAL)
// loses nothing, so the caller may keep acknowledging writes. Renaming
// the snapshot first and opening the new WAL after would open a window
// where a rotation failure leaves acked writes flowing into wal-oldGen
// while recovery, seeing snapshot-newGen, skips that log entirely.
func (s *Store) compactLocked() error {
	d := s.dur
	newGen := d.gen + 1

	// Snapshot to a temp file and sync it, so a crash mid-write never
	// leaves a half-snapshot under the real name.
	snapPath := snapshotPath(d.dir, newGen)
	tmp, err := os.CreateTemp(d.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	tmpName := tmp.Name()
	if err := s.Snapshot(tmp); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("store: compact: %w", err)
	}

	// Create the next generation's WAL and make its directory entry
	// durable before the snapshot becomes visible: once snapshot-newGen
	// exists, recovery roots there, so wal-newGen must be guaranteed to
	// survive a power cut too.
	newWalPath := walPath(d.dir, newGen)
	newWal, err := os.OpenFile(newWalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("store: compact: rotate wal: %w", err)
	}
	if err := syncDir(d.dir); err == nil {
		err = os.Rename(tmpName, snapPath)
	}
	if err != nil {
		_ = newWal.Close()
		_ = os.Remove(newWalPath)
		_ = os.Remove(tmpName)
		return fmt.Errorf("store: compact: %w", err)
	}

	// The snapshot is in place: switch appends to the new generation.
	_ = d.wal.Sync()
	_ = d.wal.Close()
	d.wal = WALFile(newWal)
	if d.opts.WrapWAL != nil {
		d.wal = d.opts.WrapWAL(d.wal)
	}
	d.walPath = newWalPath
	d.gen = newGen
	d.appended = 0
	d.sinceSync = 0

	if err := syncDir(d.dir); err != nil {
		// The snapshot rename may not be durable. The on-disk state is
		// still recoverable (the fallback generation is kept below), but
		// a directory that cannot fsync cannot be trusted with further
		// acknowledgements.
		d.degrade("compaction failed: " + err.Error())
		return fmt.Errorf("store: compact: %w", err)
	}

	// Prune history older than the newest PREVIOUS snapshot still on
	// disk: if snapshot-newGen rots, recovery falls back to that
	// snapshot, so every WAL from its generation forward must survive.
	// Normally that is generation newGen-1; after a crashed compaction
	// that bumped the WAL generation without publishing a snapshot, it
	// is older, and keying the prune off the snapshot actually present
	// keeps the whole fallback chain intact.
	prev, havePrev := uint64(0), false
	for _, g := range listGens(d.dir, "snapshot", ".xml") {
		if g < newGen && (!havePrev || g > prev) {
			prev, havePrev = g, true
		}
	}
	if havePrev {
		for _, g := range listGens(d.dir, "snapshot", ".xml") {
			if g < prev {
				_ = os.Remove(snapshotPath(d.dir, g))
			}
		}
		for _, g := range listGens(d.dir, "wal", ".log") {
			if g < prev {
				_ = os.Remove(walPath(d.dir, g))
			}
		}
	}
	compactions.Inc()
	return nil
}

// Close flushes and closes the WAL. A durable store must not be mutated
// after Close; reads keep working. Closing an in-memory store is a no-op.
func (s *Store) Close() error {
	d := s.dur
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// An in-flight group-commit batch finishes first: its writers were
	// promised a durable ack and the leader needs the WAL handle.
	for d.committing {
		d.commitIdle.Wait()
	}
	if d.closed {
		return nil
	}
	d.closed = true
	var err error
	if d.degraded == "" && d.sinceSync > 0 {
		err = d.wal.Sync()
		d.sinceSync = 0
		d.syncs++
	}
	if cerr := d.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// Degraded reports whether the store is in degraded read-only mode and
// why. In-memory stores are never degraded.
func (s *Store) Degraded() (bool, string) {
	d := s.dur
	if d == nil {
		return false, ""
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.degraded != "", d.degraded
}

// Durable reports whether the store persists mutations to disk.
func (s *Store) Durable() bool { return s.dur != nil }

// Durability returns a snapshot of the persistence counters. The zero
// value is returned for in-memory stores.
func (s *Store) Durability() DurabilityStats {
	d := s.dur
	if d == nil {
		return DurabilityStats{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return DurabilityStats{
		Dir:            d.dir,
		Generation:     d.gen,
		SnapshotLoaded: d.snapLoaded,
		Replayed:       d.replayed,
		Quarantined:    d.quarantined,
		TruncatedBytes: d.truncated,
		Appended:       d.appended,
		Syncs:          d.syncs,
		Batches:        d.batches,
		Degraded:       d.degraded != "",
		Reason:         d.degraded,
	}
}
