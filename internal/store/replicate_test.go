package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func replicaEntity(i int) *Entity {
	return &Entity{
		ID:    fmt.Sprintf("doc-%06d", i),
		URL:   fmt.Sprintf("http://example.com/%d", i),
		Title: fmt.Sprintf("title %d", i),
		Text:  fmt.Sprintf("body text %d", i),
		Annotations: []Annotation{
			{Miner: "sentiment", Key: "polarity", Value: "positive"},
		},
	}
}

func TestReplicationFramesRoundTrip(t *testing.T) {
	src := New(4)
	for i := 0; i < 25; i++ {
		if err := src.Put(replicaEntity(i)); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := src.SnapshotFrames(nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := New(2) // different shard count must not matter
	applied, err := ApplyFrames(dst, batch)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 25 || dst.Len() != 25 {
		t.Fatalf("applied=%d len=%d, want 25/25", applied, dst.Len())
	}
	for i := 0; i < 25; i++ {
		want := replicaEntity(i)
		got, ok := dst.Get(want.ID)
		if !ok {
			t.Fatalf("missing %s after catch-up", want.ID)
		}
		if got.Text != want.Text || got.Title != want.Title {
			t.Fatalf("entity %s mangled: %+v", want.ID, got)
		}
		if len(got.Annotations) != 1 || got.Annotations[0].Value != "positive" {
			t.Fatalf("annotations lost for %s: %+v", want.ID, got.Annotations)
		}
	}
}

func TestReplicationFramesFiltered(t *testing.T) {
	src := New(2)
	for i := 0; i < 10; i++ {
		if err := src.Put(replicaEntity(i)); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := src.SnapshotFrames(func(id string) bool { return id < "doc-000005" })
	if err != nil {
		t.Fatal(err)
	}
	dst := New(2)
	if applied, err := ApplyFrames(dst, batch); err != nil || applied != 5 {
		t.Fatalf("applied=%d err=%v, want 5/nil", applied, err)
	}
}

func TestReplicationFramesDeterministic(t *testing.T) {
	build := func() []byte {
		s := New(3)
		for i := 9; i >= 0; i-- { // insertion order must not matter
			if err := s.Put(replicaEntity(i)); err != nil {
				t.Fatal(err)
			}
		}
		b, err := s.SnapshotFrames(nil)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("same state produced different frame bytes")
	}
}

func TestReplicationDeleteFrame(t *testing.T) {
	dst := New(1)
	if err := dst.Put(replicaEntity(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyFrames(dst, EncodeDeleteFrame("doc-000001", 0)); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 0 {
		t.Fatal("delete frame did not remove the entity")
	}
}

func TestReplicationCorruptFrameDetected(t *testing.T) {
	frame, err := EncodePutFrame(replicaEntity(1))
	if err != nil {
		t.Fatal(err)
	}
	good, err := EncodePutFrame(replicaEntity(2))
	if err != nil {
		t.Fatal(err)
	}
	flipped := append(append([]byte(nil), frame...), good...)
	flipped[len(flipped)-1] ^= 0xff // rot the second frame's payload in "transit"
	dst := New(1)
	applied, err := ApplyFrames(dst, flipped)
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("corrupt batch: applied=%d err=%v, want ErrCorruptFrame", applied, err)
	}
	if applied != 1 || dst.Len() != 1 {
		t.Fatalf("frames before the corruption should apply: applied=%d len=%d", applied, dst.Len())
	}
	// Idempotent retry of the repaired batch converges.
	whole := append(append([]byte(nil), frame...), good...)
	if applied, err := ApplyFrames(dst, whole); err != nil || applied != 2 {
		t.Fatalf("retry: applied=%d err=%v", applied, err)
	}
	if dst.Len() != 2 {
		t.Fatalf("after retry len=%d, want 2", dst.Len())
	}
}

func TestReplicationTruncatedBatchDetected(t *testing.T) {
	frame, err := EncodePutFrame(replicaEntity(1))
	if err != nil {
		t.Fatal(err)
	}
	dst := New(1)
	if _, err := ApplyFrames(dst, frame[:len(frame)-3]); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("truncated batch err=%v, want ErrCorruptFrame", err)
	}
}

func TestReplicationIntoDurableStoreRelogs(t *testing.T) {
	src := New(1)
	for i := 0; i < 8; i++ {
		if err := src.Put(replicaEntity(i)); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := src.SnapshotFrames(nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dst, err := Open(dir, Options{Shards: 2, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyFrames(dst, batch); err != nil {
		t.Fatal(err)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	// The receiver re-logged what it caught up on: reopen and recover.
	re, err := Open(dir, Options{Shards: 2, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 8 {
		t.Fatalf("after crash-recovery of caught-up node: len=%d, want 8", re.Len())
	}
}

func TestReplicationApplySkipsStaleVersions(t *testing.T) {
	src := New(2)
	if err := src.Put(&Entity{ID: "doc-01", Text: "old body", Version: 3}); err != nil {
		t.Fatal(err)
	}
	frames, err := src.SnapshotFrames(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The receiver already holds a newer copy (a dual-write that landed
	// after the frame was shipped); applying must not roll it back.
	dst := New(2)
	if err := dst.Put(&Entity{ID: "doc-01", Text: "new body", Version: 5}); err != nil {
		t.Fatal(err)
	}
	applied, err := ApplyFrames(dst, frames)
	if err != nil || applied != 1 {
		t.Fatalf("applied=%d err=%v, want the stale frame consumed cleanly", applied, err)
	}
	e, ok := dst.Get("doc-01")
	if !ok || e.Text != "new body" || e.Version != 5 {
		t.Fatalf("stale frame rolled the newer copy back: %+v", e)
	}
	// A genuinely newer frame still replaces.
	src2 := New(2)
	if err := src2.Put(&Entity{ID: "doc-01", Text: "newest body", Version: 6}); err != nil {
		t.Fatal(err)
	}
	frames2, err := src2.SnapshotFrames(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyFrames(dst, frames2); err != nil {
		t.Fatal(err)
	}
	if e, _ := dst.Get("doc-01"); e.Text != "newest body" || e.Version != 6 {
		t.Fatalf("newer frame not installed: %+v", e)
	}
}
