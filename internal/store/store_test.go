package store

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New(4)
	e := &Entity{ID: "doc1", URL: "http://example.com", Source: "web", Title: "T", Text: "hello"}
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("doc1")
	if !ok || got.Text != "hello" || got.URL != "http://example.com" {
		t.Errorf("Get = %+v, %v", got, ok)
	}
}

func TestPutRequiresID(t *testing.T) {
	s := New(1)
	if err := s.Put(&Entity{}); err == nil {
		t.Error("empty ID should fail")
	}
	if err := s.Put(nil); err == nil {
		t.Error("nil entity should fail")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New(2)
	if err := s.Put(&Entity{ID: "a", Text: "original"}); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("a")
	got.Text = "mutated"
	got.Annotate(Annotation{Miner: "evil"})
	again, _ := s.Get("a")
	if again.Text != "original" || len(again.Annotations) != 0 {
		t.Error("store leaked internal state")
	}
}

func TestPutStoresCopy(t *testing.T) {
	s := New(2)
	e := &Entity{ID: "a", Text: "original"}
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	e.Text = "mutated after put"
	got, _ := s.Get("a")
	if got.Text != "original" {
		t.Error("caller mutation leaked into store")
	}
}

func TestDelete(t *testing.T) {
	s := New(2)
	s.Put(&Entity{ID: "a", Text: "x"})
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Error("deleted entity still present")
	}
	s.Delete("missing") // no-op
}

func TestUpdateAtomic(t *testing.T) {
	s := New(2)
	s.Put(&Entity{ID: "a", Text: "x"})
	ok := s.Update("a", func(e *Entity) {
		e.Annotate(Annotation{Miner: "m", Type: "t", Key: "k"})
	})
	if !ok {
		t.Fatal("update failed")
	}
	got, _ := s.Get("a")
	if len(got.Annotations) != 1 {
		t.Errorf("annotations = %+v", got.Annotations)
	}
	if s.Update("missing", func(*Entity) {}) {
		t.Error("update of missing ID should return false")
	}
}

func TestLenAndIDs(t *testing.T) {
	s := New(8)
	for i := 0; i < 20; i++ {
		s.Put(&Entity{ID: fmt.Sprintf("doc%02d", i)})
	}
	if s.Len() != 20 {
		t.Errorf("Len = %d", s.Len())
	}
	ids := s.IDs()
	if len(ids) != 20 || ids[0] != "doc00" || ids[19] != "doc19" {
		t.Errorf("IDs = %v", ids)
	}
}

func TestForEachDeterministicAndComplete(t *testing.T) {
	s := New(4)
	for i := 0; i < 50; i++ {
		s.Put(&Entity{ID: fmt.Sprintf("d%03d", i)})
	}
	var order1, order2 []string
	s.ForEach(func(e *Entity) error { order1 = append(order1, e.ID); return nil })
	s.ForEach(func(e *Entity) error { order2 = append(order2, e.ID); return nil })
	if len(order1) != 50 || strings.Join(order1, ",") != strings.Join(order2, ",") {
		t.Error("iteration not deterministic or incomplete")
	}
}

func TestForEachInShardPartition(t *testing.T) {
	s := New(4)
	for i := 0; i < 40; i++ {
		s.Put(&Entity{ID: fmt.Sprintf("d%03d", i)})
	}
	seen := map[string]int{}
	for i := 0; i < s.NumShards(); i++ {
		err := s.ForEachInShard(i, func(e *Entity) error { seen[e.ID]++; return nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 40 {
		t.Errorf("saw %d entities", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("%s visited %d times", id, n)
		}
	}
	if err := s.ForEachInShard(99, func(*Entity) error { return nil }); err == nil {
		t.Error("out-of-range shard should error")
	}
}

func TestForEachStopsOnError(t *testing.T) {
	s := New(1)
	for i := 0; i < 10; i++ {
		s.Put(&Entity{ID: fmt.Sprintf("d%d", i)})
	}
	count := 0
	err := s.ForEach(func(e *Entity) error {
		count++
		if count == 3 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || count != 3 {
		t.Errorf("err=%v count=%d", err, count)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	e := &Entity{
		ID: "doc1", URL: "http://x", Source: "review", Title: "Review of NR70",
		Text: "The NR70 takes excellent pictures.",
	}
	e.Annotate(Annotation{Miner: "spotter", Type: "spot", Key: "nr70", Sentence: 0, Start: 1, End: 2})
	e.Annotate(Annotation{Miner: "sentiment", Type: "polarity", Key: "nr70", Value: "+", Sentence: 0, Start: 0, End: 2})
	data, err := e.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `miner="sentiment"`) {
		t.Errorf("xml missing annotation: %s", data)
	}
	back, err := ParseEntity(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != e.ID || back.Text != e.Text || len(back.Annotations) != 2 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Annotations[1].Value != "+" {
		t.Errorf("annotation value lost: %+v", back.Annotations[1])
	}
}

func TestParseEntityError(t *testing.T) {
	if _, err := ParseEntity([]byte("not xml <<")); err == nil {
		t.Error("bad xml should fail")
	}
}

func TestAnnotationsBy(t *testing.T) {
	e := &Entity{ID: "a"}
	e.Annotate(Annotation{Miner: "x", Key: "1"})
	e.Annotate(Annotation{Miner: "y", Key: "2"})
	e.Annotate(Annotation{Miner: "x", Key: "3"})
	if got := e.AnnotationsBy("x"); len(got) != 2 {
		t.Errorf("got %+v", got)
	}
	if got := e.AnnotationsBy("z"); len(got) != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("w%d-d%d", w, i)
				s.Put(&Entity{ID: id, Text: "t"})
				s.Get(id)
				s.Update(id, func(e *Entity) { e.Annotate(Annotation{Miner: "m"}) })
				if i%3 == 0 {
					s.Delete(id)
				}
			}
		}(w)
	}
	wg.Wait()
	// 8 workers * 200 docs, every third deleted: 8 * (200 - 67).
	want := 8 * (200 - 67)
	if got := s.Len(); got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
}

func TestZeroShardClamped(t *testing.T) {
	s := New(0)
	if s.NumShards() != 1 {
		t.Errorf("NumShards = %d", s.NumShards())
	}
	s.Put(&Entity{ID: "a"})
	if _, ok := s.Get("a"); !ok {
		t.Error("single-shard store broken")
	}
}

// Property: put/get round-trips arbitrary IDs and text.
func TestQuickPutGet(t *testing.T) {
	s := New(16)
	f := func(id, text string) bool {
		if id == "" {
			return true
		}
		if err := s.Put(&Entity{ID: id, Text: text}); err != nil {
			return false
		}
		got, ok := s.Get(id)
		return ok && got.Text == text && got.ID == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := New(4)
	for i := 0; i < 25; i++ {
		e := &Entity{
			ID:     fmt.Sprintf("doc%02d", i),
			URL:    fmt.Sprintf("http://x.example/%d", i),
			Source: "review",
			Title:  fmt.Sprintf("title %d", i),
			Date:   "2004-06-01",
			Text:   fmt.Sprintf("body of document %d with <xml> & special chars", i),
			Links:  []string{"doc00"},
		}
		e.Annotate(Annotation{Miner: "sentiment", Type: "polarity", Key: "nr70", Value: "+", Sentence: i})
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	var buf strings.Builder
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New(8) // different shard count must not matter
	n, err := restored.Restore(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 || restored.Len() != 25 {
		t.Fatalf("restored %d entities, store has %d", n, restored.Len())
	}
	orig, _ := s.Get("doc07")
	back, _ := restored.Get("doc07")
	if back == nil || back.Text != orig.Text || back.Date != orig.Date ||
		len(back.Links) != 1 || len(back.Annotations) != 1 ||
		back.Annotations[0].Value != "+" {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	s := New(4)
	for i := 0; i < 10; i++ {
		s.Put(&Entity{ID: fmt.Sprintf("d%d", i), Text: "t"})
	}
	var a, b strings.Builder
	if err := s.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("snapshots differ between runs")
	}
}

func TestRestoreMalformed(t *testing.T) {
	s := New(1)
	if _, err := s.Restore(strings.NewReader("<snapshot><entity id=>broken")); err == nil {
		t.Error("malformed snapshot should fail")
	}
	// Empty input restores zero entities without error.
	n, err := s.Restore(strings.NewReader(""))
	if err != nil || n != 0 {
		t.Errorf("empty restore = %d, %v", n, err)
	}
}

func TestHost(t *testing.T) {
	cases := map[string]string{
		"http://reviews.example/page1": "reviews.example",
		"https://a.b.example:8080/x":   "a.b.example",
		"reviews.example/no-scheme":    "reviews.example",
		"":                             "",
		"http://bare.example":          "bare.example",
	}
	for url, want := range cases {
		e := &Entity{URL: url}
		if got := e.Host(); got != want {
			t.Errorf("Host(%q) = %q, want %q", url, got, want)
		}
	}
}

func TestStoreTombstones(t *testing.T) {
	s := New(2)
	if err := s.Put(&Entity{ID: "doc-a", Text: "x"}); err != nil {
		t.Fatal(err)
	}
	if s.HasTombstone("doc-a") {
		t.Fatal("tombstone before any delete")
	}
	if err := s.Delete("doc-a"); err != nil {
		t.Fatal(err)
	}
	if !s.HasTombstone("doc-a") {
		t.Fatal("delete did not record a tombstone")
	}
	// A delete of a never-held ID still records: a replica that missed
	// the put but received the delete is evidence catch-up needs.
	if err := s.Delete("doc-ghost"); err != nil {
		t.Fatal(err)
	}
	if got := s.Tombstones(); len(got) != 2 || got[0] != "doc-a" || got[1] != "doc-ghost" {
		t.Fatalf("tombstones = %v, want [doc-a doc-ghost]", got)
	}
	// Re-creating the entity withdraws the tombstone.
	if err := s.Put(&Entity{ID: "doc-a", Text: "y"}); err != nil {
		t.Fatal(err)
	}
	if s.HasTombstone("doc-a") {
		t.Fatal("put did not withdraw the tombstone")
	}
}

func TestStoreTombstoneRetentionCap(t *testing.T) {
	s := New(1)
	// "keep" gets deleted, re-created, deleted again: its first FIFO slot
	// is superseded and must not evict the live tombstone when it ages out.
	if err := s.Delete("keep"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(&Entity{ID: "keep", Text: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("keep"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxTombstones-1; i++ {
		if err := s.Delete(fmt.Sprintf("doc-%06d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// The superseded slot has been pushed out; the live one has not.
	if !s.HasTombstone("keep") {
		t.Fatal("superseded FIFO slot evicted a live tombstone")
	}
	// One more delete pushes the live "keep" slot out of retention.
	if err := s.Delete("doc-overflow"); err != nil {
		t.Fatal(err)
	}
	if s.HasTombstone("keep") {
		t.Fatal("tombstone survived past the retention cap")
	}
	if !s.HasTombstone("doc-overflow") || !s.HasTombstone("doc-000000") {
		t.Fatal("recent tombstones must survive eviction of older ones")
	}
}
