package store

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
)

// Snapshot streams the whole store to w as an XML document:
//
//	<snapshot count="N">
//	  <entity id="...">...</entity>
//	  ...
//	</snapshot>
//
// Entities are written in deterministic (ID-sorted) order, so identical
// stores produce identical snapshots.
func (s *Store) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "<snapshot count=\"%d\">\n", s.Len()); err != nil {
		return err
	}
	enc := xml.NewEncoder(bw)
	enc.Indent("  ", "  ")
	err := s.ForEach(func(e *Entity) error {
		return enc.Encode(e)
	})
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := enc.Flush(); err != nil {
		return err
	}
	if _, err := io.WriteString(bw, "\n</snapshot>\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// Restore reads a snapshot produced by Snapshot and puts every entity into
// the store (existing entities with the same IDs are replaced). It returns
// the number of entities restored.
func (s *Store) Restore(r io.Reader) (int, error) {
	dec := xml.NewDecoder(bufio.NewReader(r))
	n := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("store: restore: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok || start.Name.Local != "entity" {
			continue
		}
		var e Entity
		if err := dec.DecodeElement(&e, &start); err != nil {
			return n, fmt.Errorf("store: restore entity %d: %w", n, err)
		}
		if err := s.Put(&e); err != nil {
			return n, fmt.Errorf("store: restore entity %d: %w", n, err)
		}
		n++
	}
}
