package store

import (
	"bufio"
	"bytes"
	"encoding/xml"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
)

// snapshotTrailerPrefix starts the checksum trailer line that closes
// every snapshot. The trailer is an XML comment, so decoders that do not
// verify checksums (Restore) still parse the document unchanged.
const snapshotTrailerPrefix = "<!-- crc32:"

// Snapshot streams the whole store to w as an XML document:
//
//	<snapshot count="N">
//	  <entity id="...">...</entity>
//	  ...
//	</snapshot>
//	<!-- crc32:xxxxxxxx -->
//
// Entities are written in deterministic (ID-sorted) order, so identical
// stores produce identical snapshots. The trailing comment carries the
// CRC32-IEEE checksum of every byte before it; VerifySnapshot and
// RestoreVerified check it, while Restore ignores it.
func (s *Store) Snapshot(w io.Writer) error {
	h := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, h))
	if _, err := fmt.Fprintf(bw, "<snapshot count=\"%d\">\n", s.Len()); err != nil {
		return err
	}
	enc := xml.NewEncoder(bw)
	enc.Indent("  ", "  ")
	// Iterate in globally ID-sorted order (not ForEach's shard-grouped
	// order) so stores holding the same entities emit identical bytes
	// regardless of their shard counts.
	for _, id := range s.IDs() {
		e, ok := s.Get(id)
		if !ok {
			continue // deleted concurrently
		}
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("store: snapshot: %w", err)
		}
	}
	if err := enc.Flush(); err != nil {
		return err
	}
	if _, err := io.WriteString(bw, "\n</snapshot>\n"); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s%08x -->\n", snapshotTrailerPrefix, h.Sum32())
	return err
}

// VerifySnapshot checks a snapshot's checksum trailer and returns the
// document body it covers. It fails when the trailer is missing,
// unparsable, or does not match the body — the signal to quarantine the
// snapshot and fall back to an older one during recovery.
func VerifySnapshot(data []byte) ([]byte, error) {
	idx := bytes.LastIndex(data, []byte(snapshotTrailerPrefix))
	if idx < 0 {
		return nil, fmt.Errorf("store: snapshot missing checksum trailer")
	}
	rest := data[idx+len(snapshotTrailerPrefix):]
	if len(rest) < 8 {
		return nil, fmt.Errorf("store: snapshot checksum trailer truncated")
	}
	want, err := strconv.ParseUint(string(rest[:8]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot checksum trailer unparsable: %w", err)
	}
	body := data[:idx]
	if got := crc32.ChecksumIEEE(body); got != uint32(want) {
		return nil, fmt.Errorf("store: snapshot checksum mismatch: have %08x, trailer says %08x", got, want)
	}
	return body, nil
}

// Restore reads a snapshot produced by Snapshot and puts every entity into
// the store (existing entities with the same IDs are replaced). It returns
// the number of entities restored. The checksum trailer, if present, is
// not verified — use RestoreVerified when integrity matters.
func (s *Store) Restore(r io.Reader) (int, error) {
	dec := xml.NewDecoder(bufio.NewReader(r))
	n := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("store: restore: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok || start.Name.Local != "entity" {
			continue
		}
		var e Entity
		if err := dec.DecodeElement(&e, &start); err != nil {
			return n, fmt.Errorf("store: restore entity %d: %w", n, err)
		}
		if err := s.Put(&e); err != nil {
			return n, fmt.Errorf("store: restore entity %d: %w", n, err)
		}
		n++
	}
}

// RestoreVerified reads the whole snapshot, verifies its checksum
// trailer, and only then restores it. A snapshot that fails verification
// restores nothing.
func (s *Store) RestoreVerified(r io.Reader) (int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, fmt.Errorf("store: restore: %w", err)
	}
	body, err := VerifySnapshot(data)
	if err != nil {
		return 0, err
	}
	return s.Restore(bytes.NewReader(body))
}
