// Package store implements the WebFountain data store: a sharded,
// concurrency-safe repository of entities.
//
// An entity is a referenceable unit of information such as a web page,
// represented in XML. The store supports put/get/delete, per-shard
// iteration (the unit of parallelism for the cluster runtime), and miner
// annotations attached to entities. Sharding is by FNV hash of the entity
// ID, mirroring the shared-nothing layout of the production system where
// each node owns a disjoint slice of the corpus.
package store

import (
	"encoding/xml"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// ErrDeadlineExceeded reports a scan abandoned because its deadline
// passed before it finished.
var ErrDeadlineExceeded = errors.New("store: scan deadline exceeded")

// Annotation is one miner-produced mark on an entity: a spot, a named
// entity, a sentiment, etc. Positions are token indices.
type Annotation struct {
	// Miner names the producer ("spotter", "sentiment", "ne", ...).
	Miner string `xml:"miner,attr"`
	// Type is the annotation kind within the miner's vocabulary.
	Type string `xml:"type,attr"`
	// Key is the annotation's subject (synonym set ID, entity name, ...).
	Key string `xml:"key,attr"`
	// Value is the payload ("+", "-", a score, ...).
	Value string `xml:"value,attr,omitempty"`
	// Sentence is the sentence index, -1 when not sentence-scoped.
	Sentence int `xml:"sentence,attr"`
	// Start and End are token indices within the sentence (half-open).
	Start int `xml:"start,attr"`
	End   int `xml:"end,attr"`
}

// Entity is a referenceable unit of information (a web page, a news
// article, a review).
type Entity struct {
	XMLName xml.Name `xml:"entity"`
	// ID is the unique entity identifier.
	ID string `xml:"id,attr"`
	// URL is the acquisition source address.
	URL string `xml:"url,attr,omitempty"`
	// Source classifies the ingestion channel: "web", "news", "review",
	// "bboard", "customer".
	Source string `xml:"source,attr,omitempty"`
	// Title is the document title.
	Title string `xml:"title,omitempty"`
	// Date is the acquisition or publication date in YYYY-MM-DD form,
	// empty when unknown. Corpus-level miners (trending) bucket by it.
	Date string `xml:"date,attr,omitempty"`
	// Text is the document body.
	Text string `xml:"text"`
	// Links are the IDs of entities this one links to (the hyperlink
	// graph the page-ranking miner consumes).
	Links []string `xml:"links>link,omitempty"`
	// Version orders replicated writes of one ID: the routing tier stamps
	// every Put with a monotonically increasing sequence, and replication
	// catch-up (ApplyFrames) discards frames older than the copy a node
	// already holds, so a frame shipped before a dual-write landed cannot
	// roll the newer copy back. Zero on entities that never passed
	// through a router (single-process deployments), where arrival order
	// is write order and no comparison is needed.
	Version uint64 `xml:"version,attr,omitempty"`
	// Annotations are miner outputs attached to the entity.
	Annotations []Annotation `xml:"annotations>annotation,omitempty"`
}

// Clone returns a deep copy of the entity.
func (e *Entity) Clone() *Entity {
	cp := *e
	cp.Links = append([]string(nil), e.Links...)
	cp.Annotations = append([]Annotation(nil), e.Annotations...)
	return &cp
}

// Host returns the host part of the entity's URL ("" when unparsable).
func (e *Entity) Host() string {
	u := e.URL
	if i := indexOf(u, "://"); i >= 0 {
		u = u[i+3:]
	}
	for i := 0; i < len(u); i++ {
		if u[i] == '/' || u[i] == ':' {
			return u[:i]
		}
	}
	return u
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Annotate appends an annotation.
func (e *Entity) Annotate(a Annotation) { e.Annotations = append(e.Annotations, a) }

// AnnotationsBy returns the annotations produced by one miner.
func (e *Entity) AnnotationsBy(miner string) []Annotation {
	var out []Annotation
	for _, a := range e.Annotations {
		if a.Miner == miner {
			out = append(out, a)
		}
	}
	return out
}

// MarshalIndent renders the entity as indented XML.
func (e *Entity) MarshalIndent() ([]byte, error) {
	return xml.MarshalIndent(e, "", "  ")
}

// ParseEntity decodes an entity from its XML representation.
func ParseEntity(data []byte) (*Entity, error) {
	var e Entity
	if err := xml.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("store: decode entity: %w", err)
	}
	return &e, nil
}

// shard is one mutex-guarded slice of the keyspace.
type shard struct {
	mu       sync.RWMutex
	entities map[string]*Entity
}

// Store is a sharded entity repository, safe for concurrent use. A store
// built with New is purely in-memory; one built with Open additionally
// write-ahead-logs every mutation to disk and recovers it on restart.
type Store struct {
	shards []*shard
	// dur is the durability state, nil for in-memory stores.
	dur *durability

	// Tombstones: every Delete records the ID so replication catch-up can
	// distinguish "deleted cluster-wide while you were down" (a live peer
	// holds the tombstone) from "you hold the only surviving copy of an
	// acked write" (nobody does). A versioned delete (DeleteVersioned)
	// additionally records the delete's HLC version, which anti-entropy
	// and the ApplyFrames fences compare against put versions to decide
	// whether a delete supersedes a copy or vice versa. Retention is a
	// bounded FIFO (maxTombstones); on a durable store the WAL replays
	// deletes through applyDelete/applyDeleteVersioned, so tombstones
	// younger than the last compaction survive a restart.
	tmu       sync.Mutex
	tombs     map[string]tombstone // id -> its newest tombstone
	tombSeq   uint64
	tombOrder []tombEntry
}

// tombstone is one retained delete: the FIFO admission seq plus the
// delete's version (0 for an unversioned local delete).
type tombstone struct {
	seq     uint64
	version uint64
}

// tombEntry is one FIFO slot in the tombstone retention queue. The seq
// lets eviction skip slots that were superseded (the ID was re-deleted
// after an intervening put, so a newer slot exists further back).
type tombEntry struct {
	id  string
	seq uint64
}

// maxTombstones bounds per-store tombstone retention. Beyond it the
// oldest tombstones are forgotten, after which catch-up treats the ID's
// sole copies conservatively (kept, not deleted).
const maxTombstones = 8192

// New creates an in-memory store with the given number of shards
// (minimum 1).
func New(numShards int) *Store {
	if numShards < 1 {
		numShards = 1
	}
	s := &Store{shards: make([]*shard, numShards)}
	for i := range s.shards {
		s.shards[i] = &shard{entities: make(map[string]*Entity)}
	}
	return s
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

func (s *Store) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// Put stores (or replaces) an entity. The store keeps its own copy; later
// mutations of the caller's value do not leak in. On a durable store the
// entity is appended to the write-ahead log before it becomes visible;
// a Put that returns nil is recoverable after a crash (subject to the
// sync policy).
func (s *Store) Put(e *Entity) error {
	if e == nil || e.ID == "" {
		return fmt.Errorf("store: entity must have an ID")
	}
	if s.dur == nil {
		s.applyPut(e)
		return nil
	}
	body, err := xml.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: encode entity %s: %w", e.ID, err)
	}
	return s.logged(opPut, body, func() { s.applyPut(e) })
}

// applyPut installs a copy of the entity in its shard, bypassing the
// WAL. Versioned puts (Version > 0) are fenced: a put older than the
// copy already held, or older than a versioned tombstone for the ID, is
// a stale replica of a superseded write and is dropped rather than
// installed — last-writer-wins by HLC version. Unversioned puts
// (single-process deployments, where arrival order is write order)
// always install.
func (s *Store) applyPut(e *Entity) {
	if e.Version > 0 {
		if tv, ok := s.tombstoneVersion(e.ID); ok && tv >= e.Version {
			return
		}
	}
	sh := s.shardFor(e.ID)
	sh.mu.Lock()
	if cur, ok := sh.entities[e.ID]; ok && e.Version > 0 && cur.Version > e.Version {
		sh.mu.Unlock()
		return
	}
	sh.entities[e.ID] = e.Clone()
	sh.mu.Unlock()
	s.clearTombstone(e.ID)
}

// Get returns a copy of the entity with the given ID.
func (s *Store) Get(id string) (*Entity, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.entities[id]
	if !ok {
		return nil, false
	}
	return e.Clone(), true
}

// View runs fn on the live stored entity under its shard's read lock,
// skipping the defensive clone Get makes — the read path for scans
// that visit many entities and only look (the serving tier's startup
// repair walks the whole corpus through it). fn must not mutate the
// entity or retain it (or its slices) past the call; retaining plain
// string fields is fine, strings are immutable. fn must not call back
// into the store — the shard lock is held. Returns false when the ID
// is absent.
func (s *Store) View(id string, fn func(*Entity)) bool {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.entities[id]
	if !ok {
		return false
	}
	fn(e)
	return true
}

// Delete removes an entity; deleting a missing ID is a no-op. On a
// durable store the delete is write-ahead-logged first; the error is
// non-nil only when the log cannot be appended (degraded mode).
func (s *Store) Delete(id string) error {
	if s.dur == nil {
		s.applyDelete(id)
		return nil
	}
	return s.logged(opDelete, []byte(id), func() { s.applyDelete(id) })
}

// applyDelete removes the entity from its shard, bypassing the WAL.
func (s *Store) applyDelete(id string) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	delete(sh.entities, id)
	sh.mu.Unlock()
	s.recordTombstone(id, 0)
}

// DeleteVersioned removes an entity under an HLC version stamp. The
// delete is fenced: if the held copy is newer than the stamp, the
// delete is a stale replica of a superseded operation and becomes a
// no-op (no tombstone either — the newer put wins). An applied delete
// records a versioned tombstone, which fences later stale puts of the
// same ID. On a durable store the delete is write-ahead-logged first.
func (s *Store) DeleteVersioned(id string, version uint64) error {
	if s.dur == nil {
		s.applyDeleteVersioned(id, version)
		return nil
	}
	return s.logged(opDeleteV, encodeDeleteV(id, version), func() { s.applyDeleteVersioned(id, version) })
}

// applyDeleteVersioned is the fenced delete path, bypassing the WAL.
func (s *Store) applyDeleteVersioned(id string, version uint64) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	if cur, ok := sh.entities[id]; ok && version > 0 && cur.Version > version {
		sh.mu.Unlock()
		return
	}
	delete(sh.entities, id)
	sh.mu.Unlock()
	s.recordTombstone(id, version)
}

// recordTombstone remembers that id was deleted (at the given version,
// 0 for unversioned deletes), evicting the oldest tombstones past the
// retention cap. Deletes of never-held IDs still record — a replica
// that missed the original put but received the delete is exactly the
// evidence catch-up needs.
func (s *Store) recordTombstone(id string, version uint64) {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if s.tombs == nil {
		s.tombs = map[string]tombstone{}
	}
	// A re-delete never moves the ID's tombstone backwards in version:
	// an unversioned delete refreshes retention but keeps the versioned
	// evidence, and a stale versioned delete keeps the newer stamp.
	if cur, ok := s.tombs[id]; ok && cur.version > version {
		version = cur.version
	}
	s.tombSeq++
	s.tombs[id] = tombstone{seq: s.tombSeq, version: version}
	s.tombOrder = append(s.tombOrder, tombEntry{id: id, seq: s.tombSeq})
	for len(s.tombOrder) > maxTombstones {
		old := s.tombOrder[0]
		s.tombOrder = s.tombOrder[1:]
		// Only forget the ID if this slot is still its newest tombstone;
		// a superseded slot (re-deleted later) must not evict the live one.
		if s.tombs[old.id].seq == old.seq {
			delete(s.tombs, old.id)
		}
	}
}

// clearTombstone withdraws a tombstone: the ID was re-created, so its
// absence elsewhere no longer means "deleted".
func (s *Store) clearTombstone(id string) {
	s.tmu.Lock()
	delete(s.tombs, id)
	s.tmu.Unlock()
}

// Tombstones returns the retained deleted IDs, sorted.
func (s *Store) Tombstones() []string {
	s.tmu.Lock()
	out := make([]string, 0, len(s.tombs))
	for id := range s.tombs {
		out = append(out, id)
	}
	s.tmu.Unlock()
	sort.Strings(out)
	return out
}

// TombstonesVersioned returns the retained tombstones as id -> delete
// version (0 for unversioned deletes).
func (s *Store) TombstonesVersioned() map[string]uint64 {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	out := make(map[string]uint64, len(s.tombs))
	for id, t := range s.tombs {
		out[id] = t.version
	}
	return out
}

// HasTombstone reports whether a retained tombstone exists for id.
func (s *Store) HasTombstone(id string) bool {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	_, ok := s.tombs[id]
	return ok
}

// tombstoneVersion returns the retained delete version for id.
func (s *Store) tombstoneVersion(id string) (uint64, bool) {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	t, ok := s.tombs[id]
	return t.version, ok
}

// Versions returns every held entity's version keyed by ID — the
// census anti-entropy diffs between replicas to find divergence.
func (s *Store) Versions() map[string]uint64 {
	out := make(map[string]uint64)
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id, e := range sh.entities {
			out[id] = e.Version
		}
		sh.mu.RUnlock()
	}
	return out
}

// Annotate appends annotations to a stored entity — the miner write-back
// path. It reports whether the entity existed; on a durable store the
// annotations are write-ahead-logged before they become visible, and the
// error is non-nil when the log cannot be appended (degraded mode).
func (s *Store) Annotate(id string, anns []Annotation) (bool, error) {
	if len(anns) == 0 {
		_, ok := s.Get(id)
		return ok, nil
	}
	if s.dur == nil {
		// Inlined apply: the closure below would heap-allocate per call
		// on this hot path just to be invoked immediately.
		sh := s.shardFor(id)
		sh.mu.Lock()
		e, ok := sh.entities[id]
		if ok {
			e.Annotations = append(e.Annotations, anns...)
		}
		sh.mu.Unlock()
		return ok, nil
	}
	found := false
	apply := func() {
		sh := s.shardFor(id)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if e, ok := sh.entities[id]; ok {
			e.Annotations = append(e.Annotations, anns...)
			found = true
		}
	}
	// Skip logging a record for an entity that is already gone; the
	// existence re-check inside apply still guards the racing delete.
	if _, ok := s.Get(id); !ok {
		return false, nil
	}
	body, err := encodeAnnotate(id, anns)
	if err != nil {
		return false, fmt.Errorf("store: encode annotations for %s: %w", id, err)
	}
	if err := s.logged(opAnnotate, body, apply); err != nil {
		return false, err
	}
	return found, nil
}

// Update applies fn to the stored entity, persisting the mutation
// atomically with respect to other writers. It returns false if the ID is
// unknown. On a durable store the mutated entity is re-logged in full (a
// read-modify-write), so prefer Annotate for the hot append-annotations
// path. The read, fn, and re-log run under the WAL mutex, so a
// concurrent Annotate or Update acknowledged in between cannot be
// overwritten by a stale full-entity put.
func (s *Store) Update(id string, fn func(*Entity)) bool {
	if s.dur == nil {
		sh := s.shardFor(id)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		e, ok := sh.entities[id]
		if !ok {
			return false
		}
		fn(e)
		return true
	}
	d := s.dur
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := s.Get(id)
	if !ok {
		return false
	}
	fn(e)
	body, err := xml.Marshal(e)
	if err != nil {
		return false
	}
	return s.loggedLocked(opPut, body, func() { s.applyPut(e) }) == nil
}

// Len returns the total number of stored entities.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.entities)
		sh.mu.RUnlock()
	}
	return n
}

// ForEachInShard iterates the entities of one shard in deterministic
// (ID-sorted) order, passing copies to fn. Iteration stops at the first
// error, which is returned.
func (s *Store) ForEachInShard(shardIdx int, fn func(*Entity) error) error {
	return s.ForEachInShardWithDeadline(shardIdx, time.Time{}, fn)
}

// ForEachInShardWithDeadline is ForEachInShard under an absolute
// deadline (zero = unbounded). The deadline is polled once per entity;
// when it passes, iteration stops and ErrDeadlineExceeded is returned so
// a deadline-bounded caller sheds the rest of the scan instead of
// finishing it late.
func (s *Store) ForEachInShardWithDeadline(shardIdx int, deadline time.Time, fn func(*Entity) error) error {
	if shardIdx < 0 || shardIdx >= len(s.shards) {
		return fmt.Errorf("store: shard %d out of range [0,%d)", shardIdx, len(s.shards))
	}
	sh := s.shards[shardIdx]
	sh.mu.RLock()
	ids := make([]string, 0, len(sh.entities))
	for id := range sh.entities {
		ids = append(ids, id)
	}
	sh.mu.RUnlock()
	sort.Strings(ids)
	for _, id := range ids {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return ErrDeadlineExceeded
		}
		e, ok := s.Get(id)
		if !ok {
			continue // deleted concurrently
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// ForEach iterates every entity across all shards in deterministic order.
func (s *Store) ForEach(fn func(*Entity) error) error {
	return s.ForEachWithDeadline(time.Time{}, fn)
}

// ForEachWithDeadline is ForEach under an absolute deadline (zero =
// unbounded); see ForEachInShardWithDeadline.
func (s *Store) ForEachWithDeadline(deadline time.Time, fn func(*Entity) error) error {
	for i := range s.shards {
		if err := s.ForEachInShardWithDeadline(i, deadline, fn); err != nil {
			return err
		}
	}
	return nil
}

// IDs returns all entity IDs, sorted.
func (s *Store) IDs() []string {
	var ids []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id := range sh.entities {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}
