package store

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenStore builds the fixed corpus behind testdata/snapshot.golden:
// entities exercising every field that must survive a snapshot byte-
// identically — annotations, links, dates, URLs and XML-hostile text.
func goldenStore(shards int) *Store {
	s := New(shards)
	e1 := &Entity{
		ID: "doc-01", URL: "http://reviews.example/nr70", Source: "review",
		Title: "Review of the NR70", Date: "2004-06-01",
		Text:  "The NR70 takes excellent pictures & costs < $500.",
		Links: []string{"doc-02", "doc-03"},
	}
	e1.Annotate(Annotation{Miner: "spotter", Type: "spot", Key: "nr70", Sentence: 0, Start: 1, End: 2})
	e1.Annotate(Annotation{Miner: "sentiment", Type: "polarity", Key: "nr70", Value: "+", Sentence: 0, Start: 0, End: 4})
	e2 := &Entity{
		ID: "doc-02", URL: "http://bboard.example/t/9", Source: "bboard",
		Date: "2004-06-12", Text: "battery life is terrible",
	}
	e2.Annotate(Annotation{Miner: "sentiment", Type: "polarity", Key: "battery life", Value: "-", Sentence: 0, Start: 0, End: 2})
	e3 := &Entity{ID: "doc-03", Source: "news", Title: "Untitled", Text: "plain body, no annotations"}
	for _, e := range []*Entity{e1, e2, e3} {
		if err := s.Put(e); err != nil {
			panic(err)
		}
	}
	return s
}

// TestSnapshotGolden pins the snapshot byte format: the same corpus must
// serialize to exactly testdata/snapshot.golden, so format drift is a
// deliberate, reviewed change (regenerate with -update-golden).
func TestSnapshotGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenStore(4).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "snapshot.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with go test -run TestSnapshotGolden -update-golden ./internal/store)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("snapshot differs from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestSnapshotIdenticalStoresIdenticalBytes: two independently built but
// identical stores — even with different shard counts — emit the same
// snapshot bytes.
func TestSnapshotIdenticalStoresIdenticalBytes(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenStore(4).Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := goldenStore(9).Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical stores emitted different snapshot bytes")
	}
}

// TestSnapshotRestoreByteIdentical: snapshot → restore → snapshot is a
// byte-identical round trip, proving annotations, links and dates all
// survive with full fidelity.
func TestSnapshotRestoreByteIdentical(t *testing.T) {
	var first bytes.Buffer
	if err := goldenStore(4).Snapshot(&first); err != nil {
		t.Fatal(err)
	}
	restored := New(7)
	n, err := restored.Restore(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("restored %d entities, want 3", n)
	}
	var second bytes.Buffer
	if err := restored.Snapshot(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("snapshot→restore→snapshot not byte-identical:\n--- first ---\n%s\n--- second ---\n%s",
			first.Bytes(), second.Bytes())
	}
	// Spot-check the fields the round trip must preserve.
	e, ok := restored.Get("doc-01")
	if !ok || e.Date != "2004-06-01" || len(e.Links) != 2 || len(e.Annotations) != 2 ||
		e.Annotations[1].Value != "+" {
		t.Errorf("restored entity lost data: %+v", e)
	}
}

// TestVerifySnapshotTrailer covers the checksum trailer: verification
// passes on intact bytes, pinpoints any single-byte corruption, and
// rejects snapshots without a trailer.
func TestVerifySnapshotTrailer(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenStore(4).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := VerifySnapshot(data); err != nil {
		t.Fatalf("intact snapshot failed verification: %v", err)
	}
	for _, pos := range []int{0, len(data) / 3, len(data) / 2} {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0x20
		if _, err := VerifySnapshot(bad); err == nil {
			t.Errorf("corruption at byte %d not detected", pos)
		}
	}
	if _, err := VerifySnapshot([]byte("<snapshot count=\"0\">\n</snapshot>\n")); err == nil {
		t.Error("trailer-less snapshot accepted")
	}

	// RestoreVerified refuses corrupted input outright...
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x01
	s := New(2)
	if _, err := s.RestoreVerified(bytes.NewReader(bad)); err == nil {
		t.Error("RestoreVerified accepted corrupt snapshot")
	}
	if s.Len() != 0 {
		t.Error("failed RestoreVerified left partial state")
	}
	// ...and accepts intact input.
	if n, err := s.RestoreVerified(bytes.NewReader(data)); err != nil || n != 3 {
		t.Errorf("RestoreVerified = %d, %v", n, err)
	}
}

// TestRestoreIgnoresTrailer: the lenient Restore path stays compatible
// with both trailered and legacy trailer-less snapshots.
func TestRestoreIgnoresTrailer(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenStore(4).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	legacy := buf.String()
	if i := strings.LastIndex(legacy, snapshotTrailerPrefix); i >= 0 {
		legacy = legacy[:i]
	}
	for _, in := range []string{buf.String(), legacy} {
		s := New(2)
		if n, err := s.Restore(strings.NewReader(in)); err != nil || n != 3 {
			t.Errorf("Restore = %d, %v", n, err)
		}
	}
}
