package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
)

// Shard handoff ships state between nodes as WAL frames — the same
// length-prefixed, double-checksummed records the durable log already
// uses on disk (see wal.go). Reusing the codec buys the transfer path
// the WAL's corruption taxonomy for free: a frame torn or bit-flipped in
// transit fails its checksum at the receiver instead of installing a
// silently wrong entity, and the catch-up protocol can retry the batch.
// The receiver applies frames through the store's normal mutation path,
// so a durable receiver re-logs everything it catches up on and the
// shipped state survives the receiver's own next crash.

// ErrCorruptFrame reports a replication batch whose framing or checksums
// did not survive transit. Nothing after the corrupt frame is applied.
var ErrCorruptFrame = errors.New("store: corrupt replication frame")

// EncodePutFrame renders one entity as a shippable opPut WAL frame.
func EncodePutFrame(e *Entity) ([]byte, error) {
	body, err := xml.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("store: encode replication frame for %s: %w", e.ID, err)
	}
	return encodeWALRecord(opPut, body), nil
}

// EncodeDeleteFrame renders one tombstone as a shippable delete frame.
// A nonzero version produces a versioned (opDeleteV) frame, which the
// receiver fences against newer held copies; version 0 produces the
// legacy unconditional opDelete frame.
func EncodeDeleteFrame(id string, version uint64) []byte {
	if version > 0 {
		return encodeWALRecord(opDeleteV, encodeDeleteV(id, version))
	}
	return encodeWALRecord(opDelete, []byte(id))
}

// AppendPutFrame appends e's opPut frame to buf — the batch-builder used
// when shipping a whole shard range.
func AppendPutFrame(buf []byte, e *Entity) ([]byte, error) {
	frame, err := EncodePutFrame(e)
	if err != nil {
		return buf, err
	}
	return append(buf, frame...), nil
}

// ApplyFrames decodes every WAL frame in data and applies it to the
// store through the normal mutation path (Put/Delete — WAL-logged again
// on a durable store). It returns the number of frames consumed; a put
// frame older than the locally-held copy (Entity.Version) is skipped
// rather than installed, but still counts. On a checksum or framing
// failure it stops and returns ErrCorruptFrame (wrapped); frames before
// the corruption remain applied, so a retried batch converges (puts and
// deletes are idempotent).
func ApplyFrames(s *Store, data []byte) (applied int, err error) {
	return ApplyFramesObserved(s, data, nil)
}

// ApplyFramesObserved is ApplyFrames with a per-frame observer: observe
// is called after each frame lands, with the mutated entity for a put
// (nil for a delete or annotate). A receiving node uses it to keep its
// inverted index in step with the state it catches up on.
func ApplyFramesObserved(s *Store, data []byte, observe func(id string, e *Entity)) (applied int, err error) {
	for len(data) > 0 {
		op, body, n, derr := decodeWALRecord(data)
		if derr != nil {
			return applied, fmt.Errorf("%w: frame %d: %v", ErrCorruptFrame, applied, derr)
		}
		switch op {
		case opPut:
			e, perr := ParseEntity(body)
			if perr != nil {
				return applied, fmt.Errorf("%w: frame %d: %v", ErrCorruptFrame, applied, perr)
			}
			// Version fences: a frame is a point-in-time read of the source,
			// and a dual-written update — or a versioned delete — may have
			// landed here after the frame was shipped. Installing the older
			// frame would roll the newer copy back (or resurrect a deleted
			// entity), so it is skipped (still counted — the batch converged
			// for this ID).
			if cur, ok := s.Get(e.ID); ok && cur.Version > e.Version {
				applied++
				data = data[n:]
				continue
			}
			if tv, ok := s.tombstoneVersion(e.ID); ok && e.Version > 0 && tv >= e.Version {
				applied++
				data = data[n:]
				continue
			}
			if perr := s.Put(e); perr != nil {
				return applied, fmt.Errorf("store: apply replication frame %d: %w", applied, perr)
			}
			if observe != nil {
				observe(e.ID, e)
			}
		case opDelete:
			if derr := s.Delete(string(body)); derr != nil {
				return applied, fmt.Errorf("store: apply replication frame %d: %w", applied, derr)
			}
			if observe != nil {
				observe(string(body), nil)
			}
		case opDeleteV:
			id, v, verr := decodeDeleteV(body)
			if verr != nil {
				return applied, fmt.Errorf("%w: frame %d: %v", ErrCorruptFrame, applied, verr)
			}
			// Stale-delete fence: a copy newer than the delete stamp means a
			// later put superseded the delete; keep the copy.
			if cur, ok := s.Get(id); ok && cur.Version > v {
				applied++
				data = data[n:]
				continue
			}
			if derr := s.DeleteVersioned(id, v); derr != nil {
				return applied, fmt.Errorf("store: apply replication frame %d: %w", applied, derr)
			}
			if observe != nil {
				observe(id, nil)
			}
		case opAnnotate:
			rec, aerr := decodeAnnotate(body)
			if aerr != nil {
				return applied, fmt.Errorf("%w: frame %d: %v", ErrCorruptFrame, applied, aerr)
			}
			if _, aerr := s.Annotate(rec.ID, rec.Annotations); aerr != nil {
				return applied, fmt.Errorf("store: apply replication frame %d: %w", applied, aerr)
			}
			if observe != nil {
				observe(rec.ID, nil)
			}
		default:
			return applied, fmt.Errorf("%w: frame %d: unknown op %d", ErrCorruptFrame, applied, op)
		}
		applied++
		data = data[n:]
	}
	return applied, nil
}

// VersionDigest fingerprints the store's replicated state: a sha256
// over every held (id, version) pair and every retained versioned
// tombstone, in sorted-ID order. Two replicas with equal digests hold
// byte-identical version censuses, so anti-entropy can skip the full
// census exchange — the fast path of the sweep. Annotations and entity
// bodies are deliberately outside the digest: the version stamp already
// changes on every routed write, and hashing bodies would make the
// sweep cost proportional to corpus size instead of corpus count.
func (s *Store) VersionDigest() [32]byte {
	versions := s.Versions()
	ids := make([]string, 0, len(versions))
	for id := range versions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	tombs := s.TombstonesVersioned()
	tids := make([]string, 0, len(tombs))
	for id := range tombs {
		tids = append(tids, id)
	}
	sort.Strings(tids)

	h := sha256.New()
	var num [8]byte
	writePair := func(id string, v uint64) {
		binary.BigEndian.PutUint64(num[:], uint64(len(id)))
		h.Write(num[:])
		h.Write([]byte(id))
		binary.BigEndian.PutUint64(num[:], v)
		h.Write(num[:])
	}
	binary.BigEndian.PutUint64(num[:], uint64(len(ids)))
	h.Write(num[:])
	for _, id := range ids {
		writePair(id, versions[id])
	}
	binary.BigEndian.PutUint64(num[:], uint64(len(tids)))
	h.Write(num[:])
	for _, id := range tids {
		writePair(id, tombs[id])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// SnapshotFrames renders the store's full contents (or, with filter
// non-nil, the entities it selects) as a concatenated frame batch in
// sorted-ID order — deterministic bytes for a deterministic state, which
// the chaos harness leans on when comparing two runs of one seed.
func (s *Store) SnapshotFrames(filter func(id string) bool) ([]byte, error) {
	ids := s.IDs()
	var buf []byte
	for _, id := range ids {
		if filter != nil && !filter(id) {
			continue
		}
		e, ok := s.Get(id)
		if !ok {
			continue // raced with a delete; the frame batch just omits it
		}
		var err error
		if buf, err = AppendPutFrame(buf, e); err != nil {
			return nil, err
		}
	}
	return buf, nil
}
