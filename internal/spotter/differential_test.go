// The corpus package imports spotter, so this differential test lives in
// the external test package to break the cycle.
package spotter_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"webfountain/internal/corpus"
	"webfountain/internal/spotter"
	"webfountain/internal/tokenize"
)

type SynonymSet = spotter.SynonymSet

type Spot = spotter.Spot

// termWords mirrors the spotter's registration-time term tokenization.
func termWords(term string) []string {
	toks := tokenize.New().Tokenize(strings.ToLower(term))
	words := make([]string, 0, len(toks))
	for _, t := range toks {
		words = append(words, t.Text)
	}
	return words
}

// sortSpots mirrors the spotter's documented output ordering.
func sortSpots(spots []Spot) {
	sort.Slice(spots, func(i, j int) bool {
		if spots[i].Sentence != spots[j].Sentence {
			return spots[i].Sentence < spots[j].Sentence
		}
		if spots[i].Start != spots[j].Start {
			return spots[i].Start < spots[j].Start
		}
		if spots[i].End != spots[j].End {
			return spots[i].End > spots[j].End // longest first
		}
		if spots[i].SetID != spots[j].SetID {
			return spots[i].SetID < spots[j].SetID
		}
		return spots[i].Term < spots[j].Term
	})
}

// This file preserves the pre-DFA spotter — the per-token map-lookup
// Aho-Corasick over *node pointers — as a reference implementation, and
// proves the shared-automaton spotter emits byte-identical spans over the
// seeded corpus. If the DFA path ever diverges (span, term, set, order),
// these tests name the first differing spot.

type refNode struct {
	next    map[string]*refNode
	fail    *refNode
	outputs []refOutput
}

type refOutput struct {
	setID  string
	term   string
	length int
}

type refSpotter struct {
	root *refNode
}

func newRefSpotter(sets []SynonymSet) *refSpotter {
	sp := &refSpotter{root: &refNode{next: make(map[string]*refNode)}}
	for _, set := range sets {
		for _, term := range set.Terms {
			words := termWords(term)
			if len(words) == 0 {
				continue
			}
			sp.insert(set.ID, strings.Join(words, " "), words)
		}
	}
	sp.buildFailureLinks()
	return sp
}

func (sp *refSpotter) insert(setID, term string, words []string) {
	cur := sp.root
	for _, w := range words {
		nxt, ok := cur.next[w]
		if !ok {
			nxt = &refNode{next: make(map[string]*refNode)}
			cur.next[w] = nxt
		}
		cur = nxt
	}
	cur.outputs = append(cur.outputs, refOutput{setID: setID, term: term, length: len(words)})
}

func (sp *refSpotter) buildFailureLinks() {
	var queue []*refNode
	for _, child := range sp.root.next {
		child.fail = sp.root
		queue = append(queue, child)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for sym, child := range cur.next {
			f := cur.fail
			for f != nil {
				if nxt, ok := f.next[sym]; ok {
					child.fail = nxt
					break
				}
				f = f.fail
			}
			if child.fail == nil {
				child.fail = sp.root
			}
			child.outputs = append(child.outputs, child.fail.outputs...)
			queue = append(queue, child)
		}
	}
}

func (sp *refSpotter) spotTokens(tokens []tokenize.Token, sentence int) []Spot {
	var spots []Spot
	cur := sp.root
	for i, tok := range tokens {
		sym := strings.ToLower(tok.Text)
		for cur != sp.root && cur.next[sym] == nil {
			cur = cur.fail
		}
		if nxt, ok := cur.next[sym]; ok {
			cur = nxt
		}
		for _, out := range cur.outputs {
			spots = append(spots, Spot{
				SetID:    out.setID,
				Term:     out.term,
				Start:    i - out.length + 1,
				End:      i + 1,
				Sentence: sentence,
			})
		}
	}
	sortSpots(spots)
	return spots
}

func spotFingerprint(spots []Spot) string {
	var b strings.Builder
	for _, s := range spots {
		fmt.Fprintf(&b, "%s|%s|%d|%d|%d\n", s.SetID, s.Term, s.Start, s.End, s.Sentence)
	}
	return b.String()
}

// TestDFAMatchesMapLookupOverCorpus runs both spotters over every document
// of the seeded digital-camera corpus for three seeds and requires
// byte-identical spot streams.
func TestDFAMatchesMapLookupOverCorpus(t *testing.T) {
	terms := append(append([]string{}, corpus.CameraProducts...), corpus.CameraFeatures...)
	sets := corpus.SynonymSets(terms)
	dfa := spotter.New(sets)
	ref := newRefSpotter(sets)
	tk := tokenize.New()

	for _, seed := range []int64{1, 42, 20050405} {
		docs := corpus.DigitalCameraReviews(seed, 25)
		for di, doc := range docs {
			toks := tk.Tokenize(doc.Text())

			got := dfa.SpotTokens(toks)
			want := ref.spotTokens(toks, -1)
			if gf, wf := spotFingerprint(got), spotFingerprint(want); gf != wf {
				t.Fatalf("seed %d doc %d: token-scan spots diverge\nDFA:\n%s\nmap-lookup:\n%s", seed, di, gf, wf)
			}

			sents := tk.Split(toks)
			var wantSent []Spot
			for _, s := range sents {
				wantSent = append(wantSent, ref.spotTokens(s.Tokens, s.Index)...)
			}
			sortSpots(wantSent)
			gotSent := dfa.SpotSentences(sents)
			if gf, wf := spotFingerprint(gotSent), spotFingerprint(wantSent); gf != wf {
				t.Fatalf("seed %d doc %d: sentence-scan spots diverge\nDFA:\n%s\nmap-lookup:\n%s", seed, di, gf, wf)
			}
		}
	}
}

// TestDFAMatchesMapLookupCaseAndOverlap hand-picks the awkward shapes:
// case variants, shared suffixes, overlapping multi-word terms, and a term
// that is a prefix of another.
func TestDFAMatchesMapLookupCaseAndOverlap(t *testing.T) {
	sets := []SynonymSet{
		{ID: "clie", Canonical: "CLIE", Terms: []string{"CLIE", "Sony CLIE", "T series CLIEs"}},
		{ID: "battery", Canonical: "battery life", Terms: []string{"battery", "battery life"}},
		{ID: "series", Canonical: "series", Terms: []string{"series", "T series"}},
	}
	dfa := spotter.New(sets)
	ref := newRefSpotter(sets)
	tk := tokenize.New()

	for _, text := range []string{
		"The Sony CLIE beats the T series CLIEs on battery life.",
		"BATTERY battery Battery life LIFE",
		"T series T series CLIEs series",
		"Nothing relevant here at all.",
		"",
		"CLIE CLIE CLIE",
	} {
		toks := tk.Tokenize(text)
		got := dfa.SpotTokens(toks)
		want := ref.spotTokens(toks, -1)
		if gf, wf := spotFingerprint(got), spotFingerprint(want); gf != wf {
			t.Fatalf("%q: spots diverge\nDFA:\n%s\nmap-lookup:\n%s", text, gf, wf)
		}
	}
}
