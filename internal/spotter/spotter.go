// Package spotter implements the general-purpose term spotter miner: it
// identifies occurrences of arbitrary terms or phrases within documents
// and tags them with the synonym set they belong to.
//
// Subject terms are grouped into synonym sets ("Sony PDA", "CLIE" and
// "Sony CLIE" may all map to one subject) so that analytics over a subject
// count all its name variants together. Matching is case-insensitive and
// token-based, using an Aho-Corasick automaton over token sequences so a
// document is scanned once regardless of how many terms are registered.
package spotter

import (
	"sort"
	"strings"

	"webfountain/internal/tokenize"
)

// SynonymSet groups the name variants of one subject under a stable ID.
type SynonymSet struct {
	// ID identifies the subject (e.g. "nr70").
	ID string
	// Canonical is the display name of the subject.
	Canonical string
	// Terms are the surface variants to spot, each possibly multi-word.
	Terms []string
}

// Spot is one occurrence of a registered term.
type Spot struct {
	// SetID is the synonym set the matched term belongs to.
	SetID string
	// Term is the matched variant (lower-cased).
	Term string
	// Start and End are token indices of the match within the scanned
	// token slice (half-open).
	Start, End int
	// Sentence is the sentence index for sentence-based scans, -1 for raw
	// token scans.
	Sentence int
}

// node is one Aho-Corasick trie state.
type node struct {
	next map[string]*node
	fail *node
	// outputs are (setID, term, length-in-tokens) for terms ending here.
	outputs []output
}

type output struct {
	setID  string
	term   string
	length int
}

// Spotter is an immutable, compiled term matcher. Build one with New and
// reuse it across documents; it is safe for concurrent use.
type Spotter struct {
	root *node
	sets map[string]SynonymSet
}

// New compiles the synonym sets into a spotter. Empty terms are ignored;
// duplicate terms across sets match for every set that registered them.
func New(sets []SynonymSet) *Spotter {
	sp := &Spotter{
		root: &node{next: make(map[string]*node)},
		sets: make(map[string]SynonymSet, len(sets)),
	}
	for _, set := range sets {
		sp.sets[set.ID] = set
		for _, term := range set.Terms {
			words := termWords(term)
			if len(words) == 0 {
				continue
			}
			sp.insert(set.ID, strings.Join(words, " "), words)
		}
	}
	sp.buildFailureLinks()
	return sp
}

// termWords tokenizes a registered term the same way documents are
// tokenized, so "T series CLIEs" matches the token stream.
func termWords(term string) []string {
	toks := tokenize.New().Tokenize(strings.ToLower(term))
	words := make([]string, 0, len(toks))
	for _, t := range toks {
		words = append(words, t.Text)
	}
	return words
}

func (sp *Spotter) insert(setID, term string, words []string) {
	cur := sp.root
	for _, w := range words {
		nxt, ok := cur.next[w]
		if !ok {
			nxt = &node{next: make(map[string]*node)}
			cur.next[w] = nxt
		}
		cur = nxt
	}
	cur.outputs = append(cur.outputs, output{setID: setID, term: term, length: len(words)})
}

// buildFailureLinks runs the standard BFS construction.
func (sp *Spotter) buildFailureLinks() {
	var queue []*node
	for _, child := range sp.root.next {
		child.fail = sp.root
		queue = append(queue, child)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for sym, child := range cur.next {
			f := cur.fail
			for f != nil {
				if nxt, ok := f.next[sym]; ok {
					child.fail = nxt
					break
				}
				f = f.fail
			}
			if child.fail == nil {
				child.fail = sp.root
			}
			child.outputs = append(child.outputs, child.fail.outputs...)
			queue = append(queue, child)
		}
	}
}

// Set returns the synonym set registered under id.
func (sp *Spotter) Set(id string) (SynonymSet, bool) {
	s, ok := sp.sets[id]
	return s, ok
}

// Sets returns the number of registered synonym sets.
func (sp *Spotter) Sets() int { return len(sp.sets) }

// SpotTokens scans a token slice and returns all matches, ordered by start
// position (longest first at equal starts). Sentence is -1 on every spot.
func (sp *Spotter) SpotTokens(tokens []tokenize.Token) []Spot {
	spots := sp.scan(tokens, -1)
	sortSpots(spots)
	return spots
}

// SpotSentences scans each sentence and annotates spots with the sentence
// index.
func (sp *Spotter) SpotSentences(sents []tokenize.Sentence) []Spot {
	var all []Spot
	for _, s := range sents {
		all = append(all, sp.scan(s.Tokens, s.Index)...)
	}
	sortSpots(all)
	return all
}

func (sp *Spotter) scan(tokens []tokenize.Token, sentence int) []Spot {
	var spots []Spot
	cur := sp.root
	for i, tok := range tokens {
		sym := strings.ToLower(tok.Text)
		for cur != sp.root && cur.next[sym] == nil {
			cur = cur.fail
		}
		if nxt, ok := cur.next[sym]; ok {
			cur = nxt
		}
		for _, out := range cur.outputs {
			spots = append(spots, Spot{
				SetID:    out.setID,
				Term:     out.term,
				Start:    i - out.length + 1,
				End:      i + 1,
				Sentence: sentence,
			})
		}
	}
	return spots
}

func sortSpots(spots []Spot) {
	sort.Slice(spots, func(i, j int) bool {
		if spots[i].Sentence != spots[j].Sentence {
			return spots[i].Sentence < spots[j].Sentence
		}
		if spots[i].Start != spots[j].Start {
			return spots[i].Start < spots[j].Start
		}
		if spots[i].End != spots[j].End {
			return spots[i].End > spots[j].End // longest first
		}
		return spots[i].SetID < spots[j].SetID
	})
}

// CountBySet tallies spots per synonym set ID.
func CountBySet(spots []Spot) map[string]int {
	counts := make(map[string]int)
	for _, s := range spots {
		counts[s.SetID]++
	}
	return counts
}
