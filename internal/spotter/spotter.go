// Package spotter implements the general-purpose term spotter miner: it
// identifies occurrences of arbitrary terms or phrases within documents
// and tags them with the synonym set they belong to.
//
// Subject terms are grouped into synonym sets ("Sony PDA", "CLIE" and
// "Sony CLIE" may all map to one subject) so that analytics over a subject
// count all its name variants together. Matching is case-insensitive and
// token-based, using an Aho-Corasick automaton over token sequences so a
// document is scanned once regardless of how many terms are registered.
package spotter

import (
	"sort"
	"strings"

	"webfountain/internal/match"
	"webfountain/internal/tokenize"
)

// SynonymSet groups the name variants of one subject under a stable ID.
type SynonymSet struct {
	// ID identifies the subject (e.g. "nr70").
	ID string
	// Canonical is the display name of the subject.
	Canonical string
	// Terms are the surface variants to spot, each possibly multi-word.
	Terms []string
}

// Spot is one occurrence of a registered term.
type Spot struct {
	// SetID is the synonym set the matched term belongs to.
	SetID string
	// Term is the matched variant (lower-cased).
	Term string
	// Start and End are token indices of the match within the scanned
	// token slice (half-open).
	Start, End int
	// Sentence is the sentence index for sentence-based scans, -1 for raw
	// token scans.
	Sentence int
}

// output records the synonym set and surface term behind one compiled
// pattern, indexed by the matcher's pattern ID.
type output struct {
	setID string
	term  string
}

// Spotter is an immutable, compiled term matcher. Build one with New and
// reuse it across documents; it is safe for concurrent use. Matching runs
// on a shared Aho-Corasick automaton over interned word symbols
// (internal/match) built once at construction, so a document scan does no
// per-token map lookups or case-folding allocations.
type Spotter struct {
	m    *match.Matcher
	outs []output
	sets map[string]SynonymSet
}

// New compiles the synonym sets into a spotter. Empty terms are ignored;
// duplicate terms across sets match for every set that registered them.
func New(sets []SynonymSet) *Spotter {
	sp := &Spotter{sets: make(map[string]SynonymSet, len(sets))}
	b := match.NewBuilder()
	for _, set := range sets {
		sp.sets[set.ID] = set
		for _, term := range set.Terms {
			words := termWords(term)
			if len(words) == 0 {
				continue
			}
			b.Add(words)
			sp.outs = append(sp.outs, output{setID: set.ID, term: strings.Join(words, " ")})
		}
	}
	sp.m = b.Compile()
	return sp
}

// termWords tokenizes a registered term the same way documents are
// tokenized, so "T series CLIEs" matches the token stream.
func termWords(term string) []string {
	toks := tokenize.New().Tokenize(strings.ToLower(term))
	words := make([]string, 0, len(toks))
	for _, t := range toks {
		words = append(words, t.Text)
	}
	return words
}

// Set returns the synonym set registered under id.
func (sp *Spotter) Set(id string) (SynonymSet, bool) {
	s, ok := sp.sets[id]
	return s, ok
}

// Sets returns the number of registered synonym sets.
func (sp *Spotter) Sets() int { return len(sp.sets) }

// SpotTokens scans a token slice and returns all matches, ordered by start
// position (longest first at equal starts). Sentence is -1 on every spot.
func (sp *Spotter) SpotTokens(tokens []tokenize.Token) []Spot {
	spots := sp.AppendSpots(nil, tokens, -1)
	sortSpots(spots)
	return spots
}

// SpotSentences scans each sentence and annotates spots with the sentence
// index.
func (sp *Spotter) SpotSentences(sents []tokenize.Sentence) []Spot {
	var all []Spot
	for _, s := range sents {
		all = sp.AppendSpots(all, s.Tokens, s.Index)
	}
	sortSpots(all)
	return all
}

// AppendSpots scans tokens through the automaton and appends matches to
// dst in automaton emission order (by end position, longest first at equal
// ends). Callers wanting the documented SpotTokens ordering must sort; the
// scan itself allocates nothing beyond dst growth.
func (sp *Spotter) AppendSpots(dst []Spot, tokens []tokenize.Token, sentence int) []Spot {
	sp.m.Scan(len(tokens),
		func(i int) uint32 { return sp.m.Sym(tokens[i].Text) },
		func(mt match.Match) {
			o := &sp.outs[mt.Pattern]
			dst = append(dst, Spot{
				SetID:    o.setID,
				Term:     o.term,
				Start:    mt.Start,
				End:      mt.End,
				Sentence: sentence,
			})
		})
	return dst
}

// Sort orders spots by (Sentence, Start, longest-first End, SetID, Term)
// — the documented SpotTokens/SpotSentences ordering — so callers of
// AppendSpots can restore it over a reused buffer.
func Sort(spots []Spot) { sortSpots(spots) }

func sortSpots(spots []Spot) {
	sort.Slice(spots, func(i, j int) bool {
		if spots[i].Sentence != spots[j].Sentence {
			return spots[i].Sentence < spots[j].Sentence
		}
		if spots[i].Start != spots[j].Start {
			return spots[i].Start < spots[j].Start
		}
		if spots[i].End != spots[j].End {
			return spots[i].End > spots[j].End // longest first
		}
		if spots[i].SetID != spots[j].SetID {
			return spots[i].SetID < spots[j].SetID
		}
		return spots[i].Term < spots[j].Term
	})
}

// CountBySet tallies spots per synonym set ID.
func CountBySet(spots []Spot) map[string]int {
	counts := make(map[string]int)
	for _, s := range spots {
		counts[s.SetID]++
	}
	return counts
}
