package spotter

import (
	"strings"
	"testing"
	"testing/quick"

	"webfountain/internal/tokenize"
)

var tk = tokenize.New()

func TestSpotSingleWordTerm(t *testing.T) {
	sp := New([]SynonymSet{{ID: "nr70", Canonical: "NR70", Terms: []string{"NR70"}}})
	spots := sp.SpotTokens(tk.Tokenize("The NR70 is a great PDA. I like the NR70."))
	if len(spots) != 2 {
		t.Fatalf("got %d spots, want 2: %+v", len(spots), spots)
	}
	for _, s := range spots {
		if s.SetID != "nr70" || s.Term != "nr70" {
			t.Errorf("spot = %+v", s)
		}
	}
}

func TestSpotMultiWordTerm(t *testing.T) {
	sp := New([]SynonymSet{{ID: "clie", Terms: []string{"T series CLIEs"}}})
	toks := tk.Tokenize("Unlike the more recent T series CLIEs, the NR70 shines.")
	spots := sp.SpotTokens(toks)
	if len(spots) != 1 {
		t.Fatalf("got %+v", spots)
	}
	s := spots[0]
	if s.End-s.Start != 3 {
		t.Errorf("span = [%d,%d), want 3 tokens", s.Start, s.End)
	}
	if got := toks[s.Start].Text; got != "T" {
		t.Errorf("match starts at %q", got)
	}
}

func TestSpotSynonymVariantsShareSet(t *testing.T) {
	sp := New([]SynonymSet{{
		ID:        "sonypda",
		Canonical: "Sony PDA",
		Terms:     []string{"Sony PDA", "CLIE", "Sony CLIE"},
	}})
	spots := sp.SpotTokens(tk.Tokenize("The Sony PDA line and the CLIE both impressed."))
	counts := CountBySet(spots)
	if counts["sonypda"] != 2 {
		t.Errorf("counts = %v, want 2 for sonypda", counts)
	}
}

func TestSpotCaseInsensitive(t *testing.T) {
	sp := New([]SynonymSet{{ID: "canon", Terms: []string{"Canon"}}})
	spots := sp.SpotTokens(tk.Tokenize("CANON, canon and Canon"))
	if len(spots) != 3 {
		t.Errorf("got %d spots, want 3", len(spots))
	}
}

func TestSpotOverlappingTermsBothReported(t *testing.T) {
	sp := New([]SynonymSet{
		{ID: "life", Terms: []string{"battery life"}},
		{ID: "batt", Terms: []string{"battery"}},
	})
	spots := sp.SpotTokens(tk.Tokenize("The battery life is short."))
	if len(spots) != 2 {
		t.Fatalf("got %+v, want both the nested and the longer match", spots)
	}
	// Longest first at equal start.
	if spots[0].SetID != "life" || spots[1].SetID != "batt" {
		t.Errorf("order = %+v", spots)
	}
}

func TestSpotSentencesCarriesIndex(t *testing.T) {
	sp := New([]SynonymSet{{ID: "zoom", Terms: []string{"zoom"}}})
	sents := tk.Sentences("The zoom works. The menu lags. The zoom shines.")
	spots := sp.SpotSentences(sents)
	if len(spots) != 2 {
		t.Fatalf("got %+v", spots)
	}
	if spots[0].Sentence != 0 || spots[1].Sentence != 2 {
		t.Errorf("sentence indices = %d, %d", spots[0].Sentence, spots[1].Sentence)
	}
}

func TestSpotNoMatches(t *testing.T) {
	sp := New([]SynonymSet{{ID: "x", Terms: []string{"frobnicator"}}})
	if spots := sp.SpotTokens(tk.Tokenize("Nothing to see here.")); len(spots) != 0 {
		t.Errorf("got %+v", spots)
	}
}

func TestSpotEmptyAndDegenerate(t *testing.T) {
	sp := New([]SynonymSet{{ID: "x", Terms: []string{"", "   "}}})
	if spots := sp.SpotTokens(tk.Tokenize("anything at all")); len(spots) != 0 {
		t.Errorf("degenerate terms matched: %+v", spots)
	}
	if sp.Sets() != 1 {
		t.Errorf("Sets = %d", sp.Sets())
	}
}

func TestSetLookup(t *testing.T) {
	sp := New([]SynonymSet{{ID: "a", Canonical: "Alpha", Terms: []string{"alpha"}}})
	got, ok := sp.Set("a")
	if !ok || got.Canonical != "Alpha" {
		t.Errorf("Set(a) = %+v, %v", got, ok)
	}
	if _, ok := sp.Set("missing"); ok {
		t.Error("missing set found")
	}
}

func TestAhoCorasickSuffixMatches(t *testing.T) {
	// "picture quality" and "quality" — scanning "picture quality" must
	// emit the suffix match via failure links.
	sp := New([]SynonymSet{
		{ID: "pq", Terms: []string{"picture quality"}},
		{ID: "q", Terms: []string{"quality"}},
	})
	spots := sp.SpotTokens(tk.Tokenize("the picture quality rocks"))
	counts := CountBySet(spots)
	if counts["pq"] != 1 || counts["q"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

// Property: every reported span is in bounds and the matched tokens join
// to the registered term.
func TestQuickSpansMatchTerm(t *testing.T) {
	sp := New([]SynonymSet{
		{ID: "a", Terms: []string{"battery life", "zoom", "picture quality"}},
	})
	f := func(s string) bool {
		toks := tk.Tokenize(s)
		for _, spot := range sp.SpotTokens(toks) {
			if spot.Start < 0 || spot.End > len(toks) || spot.Start >= spot.End {
				return false
			}
			var words []string
			for _, tok := range toks[spot.Start:spot.End] {
				words = append(words, strings.ToLower(tok.Text))
			}
			if strings.Join(words, " ") != spot.Term {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: spotting is insensitive to preceding junk — appending a prefix
// shifts spans but keeps counts per set for text containing registered
// terms.
func TestQuickPrefixInvariance(t *testing.T) {
	sp := New([]SynonymSet{{ID: "z", Terms: []string{"zoom"}}})
	base := "the zoom is great and the zoom is fast"
	want := len(sp.SpotTokens(tk.Tokenize(base)))
	f := func(prefix string) bool {
		// Strip the registered word from the random prefix to keep counts.
		p := strings.ReplaceAll(strings.ToLower(prefix), "zoom", "")
		got := sp.SpotTokens(tk.Tokenize(p + " . " + base))
		return len(got) >= want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
