package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"webfountain/internal/metrics"
)

// Gateway metrics, alongside the cache and limiter counters.
var (
	gwRequests  = metrics.Default().Counter("serve.gateway.requests")
	gwRequestNs = metrics.Default().Histogram("serve.gateway.request.ns")
	gwIngested  = metrics.Default().Counter("serve.gateway.ingest.docs")
	gwPanics    = metrics.Default().Counter("serve.gateway.panics")
	gwStale     = metrics.Default().Counter("serve.gateway.stale")
)

// Entry is one sentiment-bearing mention as served by the gateway.
type Entry struct {
	Subject  string `json:"subject"`
	Polarity string `json:"polarity"` // "+" or "-"
	Doc      string `json:"doc"`
	Sentence int    `json:"sentence"`
	Snippet  string `json:"snippet"`
	Feature  string `json:"feature,omitempty"`
}

// Doc is one document submitted through the gateway's ingest endpoint.
type Doc struct {
	ID     string `json:"id,omitempty"`
	Source string `json:"source,omitempty"`
	Title  string `json:"title,omitempty"`
	Date   string `json:"date,omitempty"`
	Text   string `json:"text"`
}

// Backend is what the gateway serves: a live platform + miner behind
// the aggregate layer. webfountain.ServingTier is the production
// implementation.
type Backend interface {
	// View returns the current aggregate snapshot.
	View() *View
	// Entries returns a subject's sentiment-bearing mentions. The
	// context carries the request deadline; a backend may return a
	// partial (or empty) answer once it expires.
	Entries(ctx context.Context, subject string) []Entry
	// Ingest stores, indexes and mines new documents online, folds the
	// extracted facts into the aggregates and bumps the generation. It
	// returns the assigned IDs and the number of facts mined. The
	// context carries the request deadline: a batch whose deadline
	// expires mid-mine keeps its durably-acked prefix and reports
	// context.DeadlineExceeded for the rest.
	Ingest(ctx context.Context, docs []Doc) (ids []string, facts int, err error)
	// Degraded reports the store's degraded read-only mode.
	Degraded() (bool, string)
	// NumDocs returns the number of stored documents.
	NumDocs() int
}

// GatewayConfig tunes the gateway. Zero values select defaults.
type GatewayConfig struct {
	// CacheEntries bounds the LRU result cache (default 256; negative
	// disables caching).
	CacheEntries int
	// TenantRate and TenantBurst configure the per-tenant token
	// buckets; see LimiterConfig (defaults 50/s, burst 100).
	TenantRate  float64
	TenantBurst int
	// MaxTenants bounds the tracked tenant buckets (default 1024).
	MaxTenants int
	// Clock overrides the limiter clock, for tests.
	Clock func() time.Time
	// RequestTimeout bounds every request's handling time; the deadline
	// propagates into backend calls via the request context (default 0:
	// no gateway-imposed deadline). A client may tighten — never
	// loosen — it per request with an x-deadline-ms header.
	RequestTimeout time.Duration
	// MaxIngestBytes bounds the POST /api/ingest request body; an
	// oversized body is refused with 413 (default 8 MiB; negative
	// disables the bound).
	MaxIngestBytes int64
}

// Gateway is the HTTP/JSON query API of the live serving tier:
//
//	GET  /api/subjects        — subject list with counts and share
//	GET  /api/sentiment?name= — sentiment-bearing mentions of a subject
//	GET  /api/trend?name=     — materialized monthly sentiment series
//	GET  /api/aspects?name=   — per-feature (aspect) counts
//	GET  /api/overview        — corpus totals and aggregate generation
//	POST /api/ingest          — ingest + mine documents online
//	GET  /healthz             — liveness; 503 in degraded read-only mode
//
// GET responses are cached in a bounded LRU keyed on the request and
// the aggregate generation, so a response can never be staler than one
// ingest batch; every /api request draws a per-tenant rate-limit token
// (the x-tenant header names the tenant, "" is the default bucket) and
// is answered 429 when the bucket is empty.
type Gateway struct {
	backend   Backend
	cache     *Cache
	limit     *Limiter
	mux       *http.ServeMux
	timeout   time.Duration
	maxIngest int64
}

// NewGateway builds a gateway over a backend.
func NewGateway(b Backend, cfg GatewayConfig) *Gateway {
	entries := cfg.CacheEntries
	if entries == 0 {
		entries = 256
	}
	maxIngest := cfg.MaxIngestBytes
	if maxIngest == 0 {
		maxIngest = 8 << 20
	}
	g := &Gateway{
		backend: b,
		cache:   NewCache(entries),
		limit: NewLimiter(LimiterConfig{
			Rate: cfg.TenantRate, Burst: cfg.TenantBurst,
			MaxTenants: cfg.MaxTenants, Now: cfg.Clock,
		}),
		mux:       http.NewServeMux(),
		timeout:   cfg.RequestTimeout,
		maxIngest: maxIngest,
	}
	g.mux.HandleFunc("/api/subjects", g.limited(g.cached(g.handleSubjects)))
	g.mux.HandleFunc("/api/sentiment", g.limited(g.cached(g.handleSentiment)))
	g.mux.HandleFunc("/api/trend", g.limited(g.cached(g.handleTrend)))
	g.mux.HandleFunc("/api/aspects", g.limited(g.cached(g.handleAspects)))
	g.mux.HandleFunc("/api/overview", g.limited(g.cached(g.handleOverview)))
	g.mux.HandleFunc("/api/ingest", g.limited(g.handleIngest))
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	return g
}

// Cache exposes the result cache (for stats and tests).
func (g *Gateway) Cache() *Cache { return g.cache }

// ServeHTTP implements http.Handler. It is the gateway's failure
// envelope: a handler panic is recovered into a 500 (counted in
// serve.gateway.panics) so one poisoned request cannot take the server
// down, and the per-request deadline — the tighter of RequestTimeout
// and the client's x-deadline-ms header — is installed on the request
// context here so every backend call downstream observes it.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	gwRequests.Inc()
	span := gwRequestNs.Start()
	defer span.End()
	defer func() {
		if p := recover(); p != nil {
			gwPanics.Inc()
			jsonError(w, http.StatusInternalServerError,
				fmt.Sprintf("internal error: %v", p))
		}
	}()
	if d := g.deadlineFor(r); d > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		r = r.WithContext(ctx)
	}
	g.mux.ServeHTTP(w, r)
}

// deadlineFor resolves a request's handling budget: the configured
// RequestTimeout, tightened (never loosened) by an x-deadline-ms
// header. Zero means no deadline.
func (g *Gateway) deadlineFor(r *http.Request) time.Duration {
	d := g.timeout
	if h := r.Header.Get("x-deadline-ms"); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			if hd := time.Duration(ms) * time.Millisecond; d == 0 || hd < d {
				d = hd
			}
		}
	}
	return d
}

// jsonError writes a JSON error body with the given status.
func jsonError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// limited wraps a handler with the per-tenant token bucket.
func (g *Gateway) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !g.limit.Allow(r.Header.Get("x-tenant")) {
			w.Header().Set("Retry-After", "1")
			jsonError(w, http.StatusTooManyRequests, "tenant rate limit exceeded")
			return
		}
		h(w, r)
	}
}

// renderFunc renders one endpoint against an aggregate snapshot. A nil
// body with a non-zero status means "error already described".
type renderFunc func(v *View, r *http.Request) (body any, status int, errMsg string)

// cached wraps a render function with the generation-keyed LRU: a hit
// serves the stored bytes; a miss renders against the snapshot the
// generation was read from, then stores the bytes under that
// generation. The snapshot is immutable, so a response and its cache
// tag can never disagree about which ingest batch they reflect.
func (g *Gateway) cached(render renderFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		v := g.backend.View()
		// Serve-stale: a degraded (read-only) store stops ingest, not
		// reads — the last-good aggregate snapshot keeps answering, and
		// the X-Stale header tells the client why the data has stopped
		// moving instead of the read erroring out.
		if deg, _ := g.backend.Degraded(); deg {
			w.Header().Set("X-Stale", "store-degraded")
			gwStale.Inc()
		}
		key := r.URL.Path + "?" + r.URL.RawQuery
		if body, ok := g.cache.Get(key, v.Generation()); ok {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Cache", "hit")
			w.Write(body)
			return
		}
		obj, status, errMsg := render(v, r)
		if errMsg != "" {
			jsonError(w, status, errMsg)
			return
		}
		body, err := json.Marshal(obj)
		if err != nil {
			jsonError(w, http.StatusInternalServerError, err.Error())
			return
		}
		body = append(body, '\n')
		g.cache.Put(key, v.Generation(), body)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "miss")
		w.Write(body)
	}
}

// subjectRow is the wire schema of one /api/subjects row. The explicit
// tags are load-bearing: without them the wire format mixed "subject"
// with Go-cased "Positive"/"Negative", and the schema compat test pins
// the lower-case form.
type subjectRow struct {
	Subject  string `json:"subject"`
	Positive int    `json:"positive"`
	Negative int    `json:"negative"`
	Share    int    `json:"share"`
}

func (g *Gateway) handleSubjects(v *View, _ *http.Request) (any, int, string) {
	rows := make([]subjectRow, 0, len(v.Subjects()))
	for _, s := range v.Subjects() {
		c := v.Counts(s)
		rows = append(rows, subjectRow{
			Subject: s, Positive: c.Positive, Negative: c.Negative, Share: c.Share(),
		})
	}
	return rows, http.StatusOK, ""
}

// name extracts the required ?name= parameter.
func name(r *http.Request) (string, string) {
	n := r.URL.Query().Get("name")
	if n == "" {
		return "", "missing name parameter"
	}
	return n, ""
}

func (g *Gateway) handleSentiment(_ *View, r *http.Request) (any, int, string) {
	n, errMsg := name(r)
	if errMsg != "" {
		return nil, http.StatusBadRequest, errMsg
	}
	entries := g.backend.Entries(r.Context(), n)
	if entries == nil {
		entries = []Entry{}
	}
	return entries, http.StatusOK, ""
}

func (g *Gateway) handleTrend(v *View, r *http.Request) (any, int, string) {
	n, errMsg := name(r)
	if errMsg != "" {
		return nil, http.StatusBadRequest, errMsg
	}
	series := v.Series(n)
	if series == nil {
		series = []Bucket{}
	}
	return struct {
		Subject string   `json:"subject"`
		Series  []Bucket `json:"series"`
	}{n, series}, http.StatusOK, ""
}

func (g *Gateway) handleAspects(v *View, r *http.Request) (any, int, string) {
	n, errMsg := name(r)
	if errMsg != "" {
		return nil, http.StatusBadRequest, errMsg
	}
	aspects := v.Aspects(n)
	if aspects == nil {
		aspects = []AspectCount{}
	}
	return struct {
		Subject string        `json:"subject"`
		Aspects []AspectCount `json:"aspects"`
	}{n, aspects}, http.StatusOK, ""
}

func (g *Gateway) handleOverview(v *View, _ *http.Request) (any, int, string) {
	t := v.Totals()
	return struct {
		Documents  int    `json:"documents"`
		Subjects   int    `json:"subjects"`
		Facts      int    `json:"facts"`
		Generation uint64 `json:"generation"`
		Positive   int    `json:"positive"`
		Negative   int    `json:"negative"`
		Share      int    `json:"share"`
	}{g.backend.NumDocs(), len(v.Subjects()), v.Facts(), v.Generation(),
		t.Positive, t.Negative, t.Share()}, http.StatusOK, ""
}

func (g *Gateway) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if deg, reason := g.backend.Degraded(); deg {
		jsonError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("store degraded (read-only): %s", reason))
		return
	}
	if g.maxIngest > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, g.maxIngest)
	}
	var req struct {
		Docs []Doc `json:"docs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			jsonError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		jsonError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Docs) == 0 {
		jsonError(w, http.StatusBadRequest, "no documents")
		return
	}
	ids, facts, err := g.backend.Ingest(r.Context(), req.Docs)
	if err != nil {
		// A deadline that expired mid-batch is not a server fault: the
		// acked prefix is durable and will be mined; tell the client
		// which documents made it.
		if errors.Is(err, context.DeadlineExceeded) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusGatewayTimeout)
			json.NewEncoder(w).Encode(struct {
				Error string   `json:"error"`
				IDs   []string `json:"ids"`
			}{err.Error(), ids})
			return
		}
		jsonError(w, http.StatusInternalServerError, err.Error())
		return
	}
	gwIngested.Add(int64(len(ids)))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		IDs        []string `json:"ids"`
		Facts      int      `json:"facts"`
		Generation uint64   `json:"generation"`
	}{ids, facts, g.backend.View().Generation()})
}

// handleHealthz mirrors wfrouter's health semantics: a healthy node
// answers 200, a degraded one answers 503 with the reason, so a load
// balancer rotates it out instead of sending writes at a read-only
// store.
func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	v := g.backend.View()
	if deg, reason := g.backend.Degraded(); deg {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(struct {
			Status     string `json:"status"`
			Reason     string `json:"reason"`
			Documents  int    `json:"documents"`
			Generation uint64 `json:"generation"`
		}{"degraded", reason, g.backend.NumDocs(), v.Generation()})
		return
	}
	json.NewEncoder(w).Encode(struct {
		Status     string `json:"status"`
		Documents  int    `json:"documents"`
		Generation uint64 `json:"generation"`
	}{"ok", g.backend.NumDocs(), v.Generation()})
}
