package serve

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Fact is one extracted sentiment mention, the unit the aggregate layer
// consumes at ingest: who it is about, which feature phrase the
// sentiment was directed at, when the document was published and which
// way the sentiment points.
type Fact struct {
	// Subject is the subject the sentiment is about (case-insensitive;
	// normalized to lower case on apply).
	Subject string
	// Feature is the target phrase the sentiment was directed at ("")
	// when the miner did not resolve one). It is the paper's
	// feature-level dimension: "battery life" vs the camera itself.
	Feature string
	// Date is the document's publication date in YYYY-MM-DD form; facts
	// without a parseable month count toward totals and aspects but not
	// toward any time bucket.
	Date string
	// Positive is the polarity (false = negative).
	Positive bool
}

// Bucket is one month of a subject's materialized sentiment series.
type Bucket struct {
	// Month is "YYYY-MM".
	Month string `json:"month"`
	Counts
}

// AspectCount is one feature's tally within a subject.
type AspectCount struct {
	// Feature is the sentiment target phrase.
	Feature string `json:"feature"`
	Counts
}

// subjectAgg is one subject's cells: the polarity totals, the per-month
// time buckets and the per-feature aspect tallies. Once published in a
// View it is immutable — Apply clones touched subjects before mutating.
type subjectAgg struct {
	total   Counts
	months  map[string]Counts
	aspects map[string]Counts
}

func (s *subjectAgg) clone() *subjectAgg {
	c := &subjectAgg{
		total:   s.total,
		months:  make(map[string]Counts, len(s.months)),
		aspects: make(map[string]Counts, len(s.aspects)),
	}
	for k, v := range s.months {
		c.months[k] = v
	}
	for k, v := range s.aspects {
		c.aspects[k] = v
	}
	return c
}

// View is an immutable snapshot of the materialized aggregates. Readers
// obtain one with Aggregates.View — a single atomic pointer load, the
// same reader discipline as the inverted index's posting snapshots —
// and may then query it without any locking for as long as they like.
type View struct {
	gen      uint64
	subjects map[string]*subjectAgg
	names    []string // sorted subject keys
	totals   Counts
	facts    int
}

// Generation is the ingest-batch counter the view was built at. Every
// applied batch — even an empty one — bumps it, so a cached response
// tagged with a generation is provably no staler than one ingest batch.
func (v *View) Generation() uint64 { return v.gen }

// Facts returns the number of facts folded into the view.
func (v *View) Facts() int { return v.facts }

// Totals returns the corpus-wide polarity tally.
func (v *View) Totals() Counts { return v.totals }

// Subjects returns every aggregated subject, sorted. The slice is
// shared with the view and must not be mutated.
func (v *View) Subjects() []string { return v.names }

// Counts returns a subject's polarity totals (zero when unknown).
func (v *View) Counts(subject string) Counts {
	if s := v.subjects[strings.ToLower(subject)]; s != nil {
		return s.total
	}
	return Counts{}
}

// Series returns a subject's monthly sentiment buckets, chronologically
// — the materialized equivalent of the offline trend miner's Series.
func (v *View) Series(subject string) []Bucket {
	s := v.subjects[strings.ToLower(subject)]
	if s == nil {
		return nil
	}
	out := make([]Bucket, 0, len(s.months))
	for m, c := range s.months {
		out = append(out, Bucket{Month: m, Counts: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Month < out[j].Month })
	return out
}

// Aspects returns a subject's per-feature tallies, most-mentioned
// first (ties by feature name, so the order is total).
func (v *View) Aspects(subject string) []AspectCount {
	s := v.subjects[strings.ToLower(subject)]
	if s == nil {
		return nil
	}
	out := make([]AspectCount, 0, len(s.aspects))
	for f, c := range s.aspects {
		out = append(out, AspectCount{Feature: f, Counts: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total() != out[j].Total() {
			return out[i].Total() > out[j].Total()
		}
		return out[i].Feature < out[j].Feature
	})
	return out
}

// Aggregates maintains the materialized sentiment aggregates. Writers
// (ingest batches) serialize on a mutex and publish copy-on-write
// snapshots; readers load the current View with one atomic pointer
// load and never block a writer or another reader.
type Aggregates struct {
	mu   sync.Mutex
	view atomic.Pointer[View]
}

// NewAggregates returns an empty aggregate store at generation 0.
func NewAggregates() *Aggregates {
	a := &Aggregates{}
	a.view.Store(&View{subjects: map[string]*subjectAgg{}})
	return a
}

// View returns the current immutable snapshot (never nil).
func (a *Aggregates) View() *View { return a.view.Load() }

// Apply folds one ingest batch's facts into the aggregates and
// publishes a new snapshot, returning its generation. The generation
// bumps even for an empty batch: the corpus changed (documents were
// ingested), so every cached response keyed on the old generation must
// re-render. Only subjects touched by the batch are cloned; untouched
// subjects are shared structurally with the previous view.
func (a *Aggregates) Apply(facts []Fact) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	old := a.view.Load()
	next := &View{
		gen:      old.gen + 1,
		subjects: make(map[string]*subjectAgg, len(old.subjects)+4),
		totals:   old.totals,
		facts:    old.facts + len(facts),
	}
	for k, v := range old.subjects {
		next.subjects[k] = v
	}
	cloned := map[string]bool{}
	for _, f := range facts {
		key := strings.ToLower(f.Subject)
		s := next.subjects[key]
		switch {
		case s == nil:
			s = &subjectAgg{months: map[string]Counts{}, aspects: map[string]Counts{}}
			next.subjects[key] = s
			cloned[key] = true
		case !cloned[key]:
			s = s.clone()
			next.subjects[key] = s
			cloned[key] = true
		}
		bump := func(c *Counts) {
			if f.Positive {
				c.Positive++
			} else {
				c.Negative++
			}
		}
		bump(&s.total)
		bump(&next.totals)
		if m := monthOf(f.Date); m != "" {
			mc := s.months[m]
			bump(&mc)
			s.months[m] = mc
		}
		if f.Feature != "" {
			ac := s.aspects[strings.ToLower(f.Feature)]
			bump(&ac)
			s.aspects[strings.ToLower(f.Feature)] = ac
		}
	}
	if len(cloned) == 0 {
		next.names = old.names
	} else {
		next.names = make([]string, 0, len(next.subjects))
		for k := range next.subjects {
			next.names = append(next.names, k)
		}
		sort.Strings(next.names)
	}
	a.view.Store(next)
	return next.gen
}

// monthOf extracts "YYYY-MM" from a "YYYY-MM-DD" date ("" if
// malformed) — the same bucketing rule as the offline trend miner.
func monthOf(date string) string {
	if len(date) < 7 || date[4] != '-' {
		return ""
	}
	return date[:7]
}
